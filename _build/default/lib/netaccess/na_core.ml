module Sim = Engine.Sim
module Proc = Engine.Proc

let log = Logs.Src.create "netaccess.core"

module Log = (val Logs.src_log log : Logs.LOG)

type kind = Madio_work | Sysio_work

type policy = { madio_quantum : int; sysio_quantum : int }

let default_policy = { madio_quantum = 4; sysio_quantum = 4 }

type item = { work : unit -> unit; posted_at : int }

type queue_state = {
  items : item Queue.t;
  mutable count : int; (* dispatched *)
  mutable waited : float; (* cumulated queueing time, ns *)
}

type t = {
  dnode : Simnet.Node.t;
  sim : Sim.t;
  mutable pol : policy;
  madio : queue_state;
  sysio : queue_state;
  mutable waker : (unit -> unit) option; (* resumes the idle dispatcher *)
}

let dispatchers : (int, t) Hashtbl.t = Hashtbl.create 16

let node t = t.dnode

let set_policy t p =
  if p.madio_quantum < 1 || p.sysio_quantum < 1 then
    invalid_arg "Na_core.set_policy: quanta must be >= 1";
  t.pol <- p

let policy t = t.pol

let qstate t = function Madio_work -> t.madio | Sysio_work -> t.sysio

let run_item t q =
  match Queue.take_opt q.items with
  | None -> false
  | Some { work; posted_at } ->
    q.count <- q.count + 1;
    q.waited <- q.waited +. float_of_int (Sim.now t.sim - posted_at);
    (try work ()
     with e ->
       Log.err (fun m ->
           m "%s: dispatched handler raised %s"
             (Simnet.Node.name t.dnode)
             (Printexc.to_string e)));
    true

(* The unique receipt loop: alternate between the two subsystems according
   to the policy, then sleep until new work is posted. *)
let dispatcher_loop t () =
  let rec wait_for_work () =
    if Queue.is_empty t.madio.items && Queue.is_empty t.sysio.items then begin
      Proc.suspend (fun resume -> t.waker <- Some resume);
      wait_for_work ()
    end
  in
  while true do
    wait_for_work ();
    (* One interleaving round. Scanning the socket subsystem costs a poll
       pass (select()-like); MadIO completion polling is cheap and charged
       inside the MadIO costs, keeping the MadIO-over-Madeleine overhead at
       its measured < 0.1 us. *)
    let rec drain q n = if n > 0 && run_item t q then drain q (n - 1) in
    if not (Queue.is_empty t.madio.items) then drain t.madio t.pol.madio_quantum;
    if not (Queue.is_empty t.sysio.items) then begin
      Simnet.Node.cpu t.dnode Calib.sysio_poll_ns;
      drain t.sysio t.pol.sysio_quantum
    end;
    (* Yield so co-located processes make progress between rounds. *)
    Proc.yield t.sim
  done

let get dnode =
  let id = Simnet.Node.uid dnode in
  match Hashtbl.find_opt dispatchers id with
  | Some t -> t
  | None ->
    let t =
      { dnode; sim = Simnet.Node.sim dnode; pol = default_policy;
        madio = { items = Queue.create (); count = 0; waited = 0.0 };
        sysio = { items = Queue.create (); count = 0; waited = 0.0 };
        waker = None }
    in
    Hashtbl.replace dispatchers id t;
    ignore (Simnet.Node.spawn dnode ~name:"netaccess" (dispatcher_loop t));
    t

let post t kind work =
  let q = qstate t kind in
  Queue.push { work; posted_at = Sim.now t.sim } q.items;
  match t.waker with
  | Some resume ->
    t.waker <- None;
    resume ()
  | None -> ()

let dispatched t kind = (qstate t kind).count

let queue_depth t kind = Queue.length (qstate t kind).items

let mean_wait_ns t kind =
  let q = qstate t kind in
  if q.count = 0 then 0.0 else q.waited /. float_of_int q.count
