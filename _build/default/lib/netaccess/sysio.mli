(** NetAccess SysIO: arbitrated access to distributed-oriented resources.

    Using the socket API directly does not give reentrance or fair
    multiplexing: middleware using signal-driven I/O misbehaves, and one
    middleware busy-polling starves another using blocking I/O. SysIO
    instead manages a {e unique receipt loop} (the NetAccess dispatcher)
    that watches all open sockets and invokes user-registered callbacks when
    a socket becomes ready; callbacks are serialized, so there are no
    reentrance issues and no signals. *)

type t

val get : Simnet.Node.t -> t
(** The node's SysIO subsystem (created on first use). *)

val node : t -> Simnet.Node.t

val stack_on : t -> Simnet.Segment.t -> Drivers.Tcp.stack
(** TCP stack of this node on a (LAN/WAN/loopback) segment, creating it on
    first use. *)

val udp_on : t -> Simnet.Segment.t -> Drivers.Udp.t

val watch : t -> Drivers.Tcp.conn -> (Drivers.Tcp.event -> unit) -> unit
(** Register the connection with the receipt loop: every TCP event is
    dispatched through the arbitration core to the (non-blocking)
    callback. *)

val unwatch : t -> Drivers.Tcp.conn -> unit
(** Stop dispatching events for this connection. *)

val listen :
  t -> Drivers.Tcp.stack -> port:int -> (Drivers.Tcp.conn -> unit) -> unit
(** Arbitrated accept loop: new connections are handed to the callback from
    the dispatcher. The callback typically calls {!watch} on the new
    connection. *)

val connect :
  t ->
  Drivers.Tcp.stack ->
  dst:int ->
  port:int ->
  (Drivers.Tcp.conn -> Drivers.Tcp.event -> unit) ->
  Drivers.Tcp.conn
(** Active open with the event stream (including [Established]) routed
    through the dispatcher. *)

val watch_udp :
  t ->
  Drivers.Udp.t ->
  port:int ->
  (src:int -> src_port:int -> Engine.Bytebuf.t -> unit) ->
  unit

val events_dispatched : t -> int
