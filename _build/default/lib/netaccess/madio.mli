(** NetAccess MadIO: multiplexed access to parallel-oriented hardware.

    Madeleine exposes no more channels than the hardware allows (2 on
    Myrinet, 1 on SCI). MadIO adds a logical multiplexing facility allowing
    an {e arbitrary} number of communication channels on top of one hardware
    channel. Multiplexing needs a per-message header; MadIO {e combines}
    headers — the 16-byte multiplexing header travels inside the first
    packet of the message it describes (via Madeleine's incremental packing)
    — so that multiplexing costs < 0.1 µs instead of a second message
    (ablation: {!set_header_combining}). *)

type t

type lchannel
(** A logical channel. Any number may be open. *)

val init : Madeleine.Mad.t -> t
(** Take over the node's Madeleine instance (claims hardware channel 0).
    Idempotent per Madeleine instance. *)

val node : t -> Simnet.Node.t
val mad : t -> Madeleine.Mad.t

val open_lchannel : t -> id:int -> lchannel
(** Open logical channel [id] (0 ≤ id < 65536). Raises when already open. *)

val close_lchannel : lchannel -> unit
val lchannel_id : lchannel -> int
val lchannels_open : t -> int

val sendv : lchannel -> dst:int -> Engine.Bytebuf.t list -> unit
(** Send a logical message as a gathered iovec (no copies added). *)

val send : lchannel -> dst:int -> Engine.Bytebuf.t -> unit

val set_recv : lchannel -> (src:int -> Engine.Bytebuf.t -> unit) -> unit
(** Delivery happens through the NetAccess dispatcher (arbitrated). The
    callback must not block. *)

val set_header_combining : t -> bool -> unit
(** Default [true]. [false] sends the multiplexing header as its own
    Madeleine message — the ablation measured by experiment E3. *)

val header_combining : t -> bool

val messages_sent : t -> int
val messages_received : t -> int
