(** NetAccess core: the per-node arbitration dispatcher.

    The paper's arbitration layer provides "a consistent, reentrant and
    multiplexed access to every networking resource": all network events of
    a node — MadIO message arrivals and SysIO socket readiness — are funneled
    through a {e single} dispatcher process, so middleware systems never poll
    competitively, never race, and never starve each other. The interleaving
    between the two subsystems is a user-tunable policy ("to give more
    priority to system sockets or high performance network depending on the
    application").

    Work items posted here must be {e non-blocking} (callback-based, à la
    Active Message, as the paper prescribes): an item that suspends would
    stall the whole node's network dispatch. *)

type t

type kind = Madio_work | Sysio_work

type policy = {
  madio_quantum : int;  (** MadIO items dispatched per round *)
  sysio_quantum : int;  (** SysIO items dispatched per round *)
}

val default_policy : policy

val get : Simnet.Node.t -> t
(** The node's dispatcher; created (and its process spawned) on first use. *)

val node : t -> Simnet.Node.t

val set_policy : t -> policy -> unit
val policy : t -> policy

val post : t -> kind -> (unit -> unit) -> unit
(** Enqueue a work item; the dispatcher wakes if idle. Exceptions raised by
    items are caught and logged, never propagated. *)

val dispatched : t -> kind -> int
(** Items dispatched so far (fairness observability, experiment E6). *)

val queue_depth : t -> kind -> int

val mean_wait_ns : t -> kind -> float
(** Average virtual time items of [kind] spent queued before dispatch. *)
