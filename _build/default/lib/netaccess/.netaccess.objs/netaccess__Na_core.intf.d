lib/netaccess/na_core.mli: Simnet
