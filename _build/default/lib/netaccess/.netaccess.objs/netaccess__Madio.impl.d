lib/netaccess/madio.ml: Calib Engine Hashtbl List Logs Madeleine Na_core Printf Simnet
