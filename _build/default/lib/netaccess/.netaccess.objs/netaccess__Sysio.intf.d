lib/netaccess/sysio.mli: Drivers Engine Simnet
