lib/netaccess/madio.mli: Engine Madeleine Simnet
