lib/netaccess/na_core.ml: Calib Engine Hashtbl Logs Printexc Queue Simnet
