lib/netaccess/sysio.ml: Calib Drivers Hashtbl Na_core Simnet
