module Bytebuf = Engine.Bytebuf

type key = int64

let overhead = 4

let key_of_string s =
  let h = ref 0x3bf29ce484222325L in
  String.iter
    (fun c ->
       h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c)))
           0x100000001b3L)
    s;
  !h

let derive k ~salt =
  Int64.mul (Int64.logxor k (Int64.of_int salt)) 0x9E3779B97F4A7C15L

(* Keyed xorshift64 keystream. *)
let keystream k =
  let state = ref (Int64.logor k 1L) in
  fun () ->
    let x = !state in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    state := x;
    Int64.to_int (Int64.logand x 0xffL)

let checksum k buf =
  let acc = ref (Int64.to_int (Int64.logand k 0xffffffL)) in
  for i = 0 to Bytebuf.length buf - 1 do
    acc := (!acc * 131) + Bytebuf.get_u8 buf i land 0x3fffffff
  done;
  !acc land 0xffffffff

let encrypt k buf =
  let n = Bytebuf.length buf in
  let out = Bytebuf.create (n + overhead) in
  let ks = keystream k in
  for i = 0 to n - 1 do
    Bytebuf.set_u8 out i (Bytebuf.get_u8 buf i lxor ks ())
  done;
  Bytebuf.set_u32 out n (checksum k (Bytebuf.sub out 0 n));
  out

let decrypt k buf =
  let total = Bytebuf.length buf in
  if total < overhead then Result.Error "Crypto: frame too short"
  else begin
    let n = total - overhead in
    let body = Bytebuf.sub buf 0 n in
    if Bytebuf.get_u32 buf n <> checksum k body then
      Result.Error "Crypto: authentication failed"
    else begin
      let out = Bytebuf.create n in
      let ks = keystream k in
      for i = 0 to n - 1 do
        Bytebuf.set_u8 out i (Bytebuf.get_u8 body i lxor ks ())
      done;
      Result.Ok out
    end
  end
