(** AdOC-style adaptive online compression (Jeannot, Knutsson & Björkman,
    2002): compress a stream chunk by chunk, but only while the CPU can
    compress faster than the network drains — on fast links compression is
    skipped automatically, on slow links it multiplies the effective
    bandwidth of compressible data.

    This module is the pure part: framing and the adaptation policy. The
    {!Vl_adoc} VLink driver wires it to a transport. *)

(** Per-chunk decision state. *)
type t

val create : ?chunk:int -> link_bandwidth_bps:float -> unit -> t
(** [chunk] is the compression block size (default 16 KiB);
    [link_bandwidth_bps] the estimated drain rate of the underlying link. *)

val chunk_size : t -> int

type decision = Compress | Pass

val decide : t -> decision
(** Current policy: compress while the compressor's throughput
    ({!Calib.compress_per_byte_ns}) exceeds the link drain rate, or while
    recent ratio shows the data is compressible enough that
    [compressed_bytes / compress_time] beats the link rate. *)

val observe : t -> original:int -> compressed:int -> unit
(** Feed back the outcome of a compressed chunk (moving-average ratio). *)

val recent_ratio : t -> float
(** compressed/original moving average (optimistic 0.5 prior). *)

(** {1 Framing} *)

val encode :
  t -> Engine.Bytebuf.t -> Engine.Bytebuf.t * decision
(** Frame one chunk: [u8 flag | u32 len | body]. When [Compress] is chosen
    but the output would be larger than the input, the frame silently falls
    back to [Pass] (flag says which). *)

val frame_header_len : int

(** Stateful decoder for the receiving side: feed arbitrary stream slices,
    get decoded chunks out. *)
module Decoder : sig
  type d

  val create : unit -> d

  val feed : d -> Engine.Bytebuf.t -> Engine.Bytebuf.t list
  (** Returns the plaintext chunks completed by this input slice, in
      order. Raises [Invalid_argument] on corrupt framing. *)

  val pending_bytes : d -> int

  val decompressed_chunks : d -> int
  (** Number of chunks that arrived compressed (ablation metric). *)
end
