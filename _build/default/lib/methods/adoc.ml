module Bytebuf = Engine.Bytebuf

type t = {
  chunk : int;
  link_bandwidth_bps : float;
  mutable ratio : float; (* moving average of compressed/original *)
}

type decision = Compress | Pass

let create ?(chunk = 16_384) ~link_bandwidth_bps () =
  if chunk <= 0 then invalid_arg "Adoc.create: chunk must be positive";
  (* Optimistic prior: assume data halves until observations say otherwise,
     so slow links start compressing and adapt away if the data proves
     incompressible. *)
  { chunk; link_bandwidth_bps; ratio = 0.5 }

let chunk_size t = t.chunk

let recent_ratio t = t.ratio

(* Compressing pays off when the bytes saved per second of CPU exceed what
   the link can drain: effective send rate with compression is
   min(compressor rate, link rate / ratio); without it, the link rate. *)
let decide t =
  let compressor_bps = 1e9 /. Calib.compress_per_byte_ns in
  let with_compression =
    Float.min compressor_bps (t.link_bandwidth_bps /. Float.max 0.01 t.ratio)
  in
  if with_compression > t.link_bandwidth_bps *. 1.05 then Compress else Pass

let observe t ~original ~compressed =
  if original > 0 then begin
    let r = float_of_int compressed /. float_of_int original in
    t.ratio <- (0.75 *. t.ratio) +. (0.25 *. r)
  end

let frame_header_len = 5

let frame flag body =
  let len = Bytebuf.length body in
  let out = Bytebuf.create (frame_header_len + len) in
  Bytebuf.set_u8 out 0 flag;
  Bytebuf.set_u32 out 1 len;
  Bytebuf.blit ~src:body ~src_off:0 ~dst:out ~dst_off:frame_header_len ~len;
  out

let encode t chunk =
  match decide t with
  | Pass -> (frame 0 chunk, Pass)
  | Compress ->
    let packed = Lz.compress chunk in
    observe t ~original:(Bytebuf.length chunk)
      ~compressed:(Bytebuf.length packed);
    if Bytebuf.length packed >= Bytebuf.length chunk then (frame 0 chunk, Pass)
    else (frame 1 packed, Compress)

module Decoder = struct
  type d = {
    mutable acc : Bytebuf.t list; (* reversed pending slices *)
    mutable acc_len : int;
    mutable inflated : int;
  }

  let create () = { acc = []; acc_len = 0; inflated = 0 }

  let pending_bytes d = d.acc_len

  let decompressed_chunks d = d.inflated

  let feed d slice =
    d.acc <- slice :: d.acc;
    d.acc_len <- d.acc_len + Bytebuf.length slice;
    (* Work on a contiguous view; keep the tail for next time. *)
    let buf = Bytebuf.concat (List.rev d.acc) in
    let out = ref [] in
    let pos = ref 0 in
    let total = Bytebuf.length buf in
    let continue = ref true in
    while !continue do
      if total - !pos < frame_header_len then continue := false
      else begin
        let flag = Bytebuf.get_u8 buf !pos in
        let len = Bytebuf.get_u32 buf (!pos + 1) in
        if flag <> 0 && flag <> 1 then
          invalid_arg "Adoc.Decoder: corrupt frame flag";
        if total - !pos - frame_header_len < len then continue := false
        else begin
          let body = Bytebuf.sub buf (!pos + frame_header_len) len in
          let chunk =
            if flag = 1 then begin
              d.inflated <- d.inflated + 1;
              Lz.decompress body
            end
            else body
          in
          out := chunk :: !out;
          pos := !pos + frame_header_len + len
        end
      end
    done;
    if !pos = 0 then begin
      (* Nothing complete: keep the concatenated view to bound list growth. *)
      d.acc <- [ buf ];
      d.acc_len <- total
    end
    else begin
      let rest = Bytebuf.sub buf !pos (total - !pos) in
      d.acc <- (if Bytebuf.length rest = 0 then [] else [ rest ]);
      d.acc_len <- Bytebuf.length rest
    end;
    List.rev !out
end
