lib/methods/crypto.ml: Char Engine Int64 Result String
