lib/methods/adoc.mli: Engine
