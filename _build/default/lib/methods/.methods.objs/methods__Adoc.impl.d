lib/methods/adoc.ml: Calib Engine Float List Lz
