lib/methods/vrp.ml: Calib Drivers Engine Float Hashtbl Int64 List Logs Netaccess Queue Simnet
