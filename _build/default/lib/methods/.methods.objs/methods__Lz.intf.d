lib/methods/lz.mli: Engine
