lib/methods/crypto.mli: Engine
