lib/methods/vrp.mli: Drivers Engine Netaccess
