lib/methods/lz.ml: Array Buffer Char Engine
