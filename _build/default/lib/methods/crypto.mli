(** Toy confidentiality/authentication adapter for the security-adaptation
    mechanism ("if the network is secure, it is useless to cipher data").

    NOT real cryptography — the paper leaves GSI/IPsec integration as future
    work; what we reproduce is the {e selector-driven adaptation}: the
    cipher adapter is inserted only on untrusted links, and it costs CPU per
    byte. The cipher is a keyed xorshift stream with a 4-byte keyed checksum
    trailer so tampering and key mismatch are detectable in tests. *)

type key

val key_of_string : string -> key
val derive : key -> salt:int -> key

val encrypt : key -> Engine.Bytebuf.t -> Engine.Bytebuf.t
(** Adds a 4-byte authentication trailer. *)

val decrypt : key -> Engine.Bytebuf.t -> (Engine.Bytebuf.t, string) result
(** Fails on checksum mismatch (wrong key or corruption). *)

val overhead : int
