(** LZ77-class byte compressor (FastLZ-style), used by the AdOC adapter.

    A real compressor, not a stub: literals and back-references (offset up
    to 8 KiB, length 3–264) selected through a rolling 3-byte hash. The
    format is self-describing; [decompress (compress b) = b] for any
    input. Incompressible data expands slightly — callers compare sizes and
    may ship the original instead (see {!Adoc}). *)

val compress : Engine.Bytebuf.t -> Engine.Bytebuf.t
val decompress : Engine.Bytebuf.t -> Engine.Bytebuf.t
(** Raises [Invalid_argument] on corrupt input. *)

val compress_bound : int -> int
(** Worst-case compressed size for an input of the given length. *)
