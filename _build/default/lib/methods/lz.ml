module Bytebuf = Engine.Bytebuf

(* Format: [u32 original-length] then a token stream. Each group starts with
   a control byte: bit i set means item i is a match, clear means a literal
   run follows. A literal item is [u8 runlen-1][bytes]. A match item is
   [u16 offset][u8 len-3] with len in 3..258. *)

let hash_size = 4096

let max_offset = 8192

let max_match = 258

let min_match = 3

let compress_bound n = n + (n / 128) + 16

let compress (src : Bytebuf.t) =
  let n = Bytebuf.length src in
  let out = Buffer.create (n / 2 + 16) in
  Buffer.add_char out (Char.chr (n land 0xff));
  Buffer.add_char out (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char out (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char out (Char.chr ((n lsr 24) land 0xff));
  if n > 0 then begin
    let table = Array.make hash_size (-1) in
    let hash i =
      let a = Bytebuf.get_u8 src i
      and b = Bytebuf.get_u8 src (i + 1)
      and c = Bytebuf.get_u8 src (i + 2) in
      (a lxor (b lsl 4) lxor (c lsl 8)) * 2654435761 land (hash_size - 1)
    in
    (* Tokens are buffered in groups of 8 under one control byte. *)
    let group = Buffer.create 64 in
    let control = ref 0 in
    let items = ref 0 in
    let flush_group () =
      if !items > 0 then begin
        Buffer.add_char out (Char.chr !control);
        Buffer.add_buffer out group;
        Buffer.clear group;
        control := 0;
        items := 0
      end
    in
    let add_item is_match emit =
      if !items = 8 then flush_group ();
      if is_match then control := !control lor (1 lsl !items);
      emit group;
      incr items
    in
    let lit_start = ref 0 in
    let flush_literals upto =
      let pos = ref !lit_start in
      while !pos < upto do
        let run = min 256 (upto - !pos) in
        let p = !pos in
        add_item false (fun g ->
            Buffer.add_char g (Char.chr (run - 1));
            for j = p to p + run - 1 do
              Buffer.add_char g (Bytebuf.get src j)
            done);
        pos := !pos + run
      done;
      lit_start := upto
    in
    let i = ref 0 in
    while !i < n do
      if !i + min_match <= n then begin
        let h = hash !i in
        let cand = table.(h) in
        table.(h) <- !i;
        if cand >= 0 && !i - cand <= max_offset
           && Bytebuf.get src cand = Bytebuf.get src !i
           && Bytebuf.get src (cand + 1) = Bytebuf.get src (!i + 1)
           && Bytebuf.get src (cand + 2) = Bytebuf.get src (!i + 2)
        then begin
          (* Extend the match. *)
          let len = ref min_match in
          while
            !i + !len < n && !len < max_match
            && Bytebuf.get src (cand + !len) = Bytebuf.get src (!i + !len)
          do
            incr len
          done;
          flush_literals !i;
          let off = !i - cand and mlen = !len in
          add_item true (fun g ->
              Buffer.add_char g (Char.chr (off land 0xff));
              Buffer.add_char g (Char.chr ((off lsr 8) land 0xff));
              Buffer.add_char g (Char.chr (mlen - min_match)));
          i := !i + !len;
          lit_start := !i
        end
        else incr i
      end
      else incr i
    done;
    flush_literals n;
    flush_group ()
  end;
  Bytebuf.of_string (Buffer.contents out)

let decompress (src : Bytebuf.t) =
  if Bytebuf.length src < 4 then invalid_arg "Lz.decompress: truncated input";
  let n =
    Bytebuf.get_u8 src 0
    lor (Bytebuf.get_u8 src 1 lsl 8)
    lor (Bytebuf.get_u8 src 2 lsl 16)
    lor (Bytebuf.get_u8 src 3 lsl 24)
  in
  let out = Bytebuf.create n in
  let len = Bytebuf.length src in
  let pos = ref 4 in
  let opos = ref 0 in
  let byte () =
    if !pos >= len then invalid_arg "Lz.decompress: truncated input";
    let b = Bytebuf.get_u8 src !pos in
    incr pos;
    b
  in
  while !opos < n do
    let control = byte () in
    let item = ref 0 in
    while !item < 8 && !opos < n do
      if control land (1 lsl !item) <> 0 then begin
        (* Explicit sequencing: argument evaluation order is unspecified. *)
        let lo = byte () in
        let hi = byte () in
        let off = lo lor (hi lsl 8) in
        let mlen = byte () + min_match in
        if off <= 0 || off > !opos || !opos + mlen > n then
          invalid_arg "Lz.decompress: corrupt match";
        for j = 0 to mlen - 1 do
          Bytebuf.set out (!opos + j) (Bytebuf.get out (!opos - off + j))
        done;
        opos := !opos + mlen
      end
      else begin
        let run = byte () + 1 in
        if !opos + run > n then invalid_arg "Lz.decompress: corrupt literals";
        for j = 0 to run - 1 do
          Bytebuf.set out (!opos + j) (Char.chr (byte ()))
        done;
        opos := !opos + run
      end;
      incr item
    done
  done;
  out
