lib/engine/bytebuf.mli: Rng
