lib/engine/proc.mli: Sim
