lib/engine/bytebuf.ml: Bytes Char Int64 List Printf Rng
