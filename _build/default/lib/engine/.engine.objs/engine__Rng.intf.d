lib/engine/rng.mli:
