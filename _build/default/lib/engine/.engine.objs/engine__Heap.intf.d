lib/engine/heap.mli:
