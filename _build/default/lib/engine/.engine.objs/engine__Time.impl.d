lib/engine/time.ml: Format
