lib/engine/sim.ml: Heap Printf Rng
