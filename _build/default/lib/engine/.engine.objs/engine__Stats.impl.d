lib/engine/stats.ml: Array Format Stdlib
