lib/engine/proc.ml: Effect List Logs Printexc Queue Sim
