type t = {
  mutable clock : int;
  events : (unit -> unit) Heap.t;
  root_rng : Rng.t;
  mutable stopped : bool;
}

let create ?(seed = 42) () =
  { clock = 0; events = Heap.create (); root_rng = Rng.create seed;
    stopped = false }

let now t = t.clock

let rng t = t.root_rng

let at t time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.at: time %d is in the past (now %d)" time t.clock);
  Heap.push t.events ~prio:time f

let after t dt f =
  let dt = if dt < 0 then 0 else dt in
  Heap.push t.events ~prio:(t.clock + dt) f

let pending t = Heap.length t.events

let step t =
  match Heap.pop t.events with
  | None -> false
  | Some (time, f) ->
    t.clock <- time;
    f ();
    true

let run ?until t =
  t.stopped <- false;
  let continue = ref true in
  while !continue do
    if t.stopped then continue := false
    else
      match Heap.peek_prio t.events with
      | None -> continue := false
      | Some time ->
        (match until with
         | Some u when time > u ->
           t.clock <- u;
           continue := false
         | _ -> ignore (step t))
  done

let stop t = t.stopped <- true
