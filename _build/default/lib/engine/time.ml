let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let sec x = x * 1_000_000_000

let of_float_sec s = int_of_float ((s *. 1e9) +. 0.5)

let to_float_sec t = float_of_int t /. 1e9
let to_float_us t = float_of_int t /. 1e3
let to_float_ms t = float_of_int t /. 1e6

let pp fmt t =
  let f = float_of_int t in
  if t < 1_000 then Format.fprintf fmt "%dns" t
  else if t < 1_000_000 then Format.fprintf fmt "%.2fus" (f /. 1e3)
  else if t < 1_000_000_000 then Format.fprintf fmt "%.2fms" (f /. 1e6)
  else Format.fprintf fmt "%.3fs" (f /. 1e9)
