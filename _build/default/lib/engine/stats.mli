(** Measurement helpers: counters, online mean/deviation, histograms and
    throughput series used by the benchmark harness. *)

module Counter : sig
  type t

  val create : string -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string
  val reset : t -> unit
end

(** Welford online mean / variance accumulator. *)
module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val n : t -> int
  val mean : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
end

(** Power-of-two bucketed histogram for latency distributions. *)
module Histogram : sig
  type t

  val create : unit -> t
  val add : t -> int -> unit
  val count : t -> int
  val percentile : t -> float -> int
  (** [percentile h 0.99] is an upper bound of the requested quantile
      (bucket resolution). *)

  val pp : Format.formatter -> t -> unit
end

val bandwidth_mb_s : bytes_transferred:int -> elapsed_ns:int -> float
(** Bandwidth in MB/s (1 MB = 1e6 bytes, matching the paper's axes). *)
