type 'a entry = { prio : int; seq : int; value : 'a }

type 'a t = {
  mutable arr : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { arr = [||]; size = 0; next_seq = 0 }

let length h = h.size

let is_empty h = h.size = 0

(* [lt a b] orders by priority then insertion sequence, so equal-priority
   entries come out FIFO. *)
let lt a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow h =
  let cap = Array.length h.arr in
  let new_cap = if cap = 0 then 64 else cap * 2 in
  (* Dummy entry to fill the spare slots; never observed because [size]
     bounds all accesses. *)
  let dummy = h.arr.(0) in
  let arr = Array.make new_cap dummy in
  Array.blit h.arr 0 arr 0 h.size;
  h.arr <- arr

let push h ~prio value =
  let e = { prio; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  if Array.length h.arr = 0 then h.arr <- Array.make 64 e
  else if h.size = Array.length h.arr then grow h;
  h.arr.(h.size) <- e;
  h.size <- h.size + 1;
  (* Sift up. *)
  let i = ref (h.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    lt h.arr.(!i) h.arr.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = h.arr.(parent) in
    h.arr.(parent) <- h.arr.(!i);
    h.arr.(!i) <- tmp;
    i := parent
  done

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.arr.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.arr.(0) <- h.arr.(h.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && lt h.arr.(l) h.arr.(!smallest) then smallest := l;
        if r < h.size && lt h.arr.(r) h.arr.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.arr.(!smallest) in
          h.arr.(!smallest) <- h.arr.(!i);
          h.arr.(!i) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.prio, top.value)
  end

let peek_prio h = if h.size = 0 then None else Some h.arr.(0).prio

let clear h =
  h.size <- 0;
  h.arr <- [||]
