(** Discrete-event simulator core: a virtual clock and an event queue.

    All times are integer {e nanoseconds} of virtual time. The simulator is
    single-threaded and deterministic: events scheduled for the same instant
    fire in scheduling order. *)

type t

val create : ?seed:int -> unit -> t
(** [create ?seed ()] is a fresh simulator with its clock at 0. [seed]
    (default 42) seeds the root {!Rng.t}. *)

val now : t -> int
(** Current virtual time in nanoseconds. *)

val rng : t -> Rng.t
(** The simulator's root random generator. *)

val at : t -> int -> (unit -> unit) -> unit
(** [at t time f] schedules [f] to run at absolute virtual [time]. Scheduling
    in the past raises [Invalid_argument]. *)

val after : t -> int -> (unit -> unit) -> unit
(** [after t dt f] schedules [f] at [now t + dt]. [dt] is clamped to 0. *)

val pending : t -> int
(** Number of queued events. *)

val run : ?until:int -> t -> unit
(** [run t] dispatches events in time order until the queue is empty or the
    clock passes [until] (events strictly after [until] stay queued). *)

val step : t -> bool
(** [step t] dispatches one event; [false] if the queue was empty. *)

val stop : t -> unit
(** [stop t] makes the current [run] return after the ongoing event. *)
