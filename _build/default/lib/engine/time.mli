(** Virtual-time unit helpers. The simulator counts integer nanoseconds. *)

val ns : int -> int
val us : int -> int
val ms : int -> int
val sec : int -> int

val of_float_sec : float -> int
(** [of_float_sec s] is [s] seconds as nanoseconds, rounded to nearest. *)

val to_float_sec : int -> float
val to_float_us : int -> float
val to_float_ms : int -> float

val pp : Format.formatter -> int -> unit
(** Pretty-print a duration with an adaptive unit (ns/µs/ms/s). *)
