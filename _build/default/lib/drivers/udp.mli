(** UDP-like datagram driver over any segment.

    Unreliable, unordered beyond what the segment provides, bounded by the
    MTU. VRP (the tunable-loss protocol) builds on this. *)

type t
(** A UDP endpoint: one node's datagram service on one segment. *)

val attach : Simnet.Segment.t -> Simnet.Node.t -> t
(** One endpoint per (segment, node); idempotent. *)

val node : t -> Simnet.Node.t
val segment : t -> Simnet.Segment.t

val max_payload : t -> int
(** MTU minus the 28-byte UDP/IP header. *)

val bind :
  t -> port:int -> (src:int -> src_port:int -> Engine.Bytebuf.t -> unit) -> unit
(** Register the receive callback for a local port. Raises
    [Invalid_argument] when the port is taken. *)

val unbind : t -> port:int -> unit

val sendto :
  t -> dst:int -> dst_port:int -> src_port:int -> Engine.Bytebuf.t -> unit
(** Send one datagram. Raises [Invalid_argument] beyond {!max_payload}. *)

val datagrams_sent : t -> int
val datagrams_received : t -> int
