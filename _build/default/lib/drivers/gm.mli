(** GM-like system-level driver for SAN segments (Myrinet, SCI).

    Message-based, reliable, in-order, zero-copy: large messages are
    fragmented to the hardware MTU and reassembled by DMA into the
    destination buffer without host copies. The defining constraint the
    paper builds on: the hardware offers only a {e bounded number of
    channels} (2 on Myrinet, 1 on SCI), which is why NetAccess/MadIO must
    add logical multiplexing above. *)

type t
(** A GM port: one node's endpoint on one SAN segment. *)

type channel

exception No_channel_left
(** Raised by {!open_channel} when the hardware channels are exhausted. *)

val attach : Simnet.Segment.t -> Simnet.Node.t -> t
(** [attach seg node] opens the GM port of [node] on [seg]. One port per
    (segment, node); re-attaching returns the existing port. *)

val node : t -> Simnet.Node.t
val segment : t -> Simnet.Segment.t

val max_channels : t -> int
(** Hardware channel budget: 2 for Myrinet, 1 for SCI, 8 for loopback. *)

val open_channel : t -> id:int -> channel
(** Open hardware channel [id] (same [id] on every node forms one
    communication space). Raises {!No_channel_left} when [id] is outside the
    hardware budget, [Invalid_argument] if already open. *)

val close_channel : channel -> unit
val channel_id : channel -> int
val channels_in_use : t -> int

val send : channel -> dst:int -> Engine.Bytebuf.t -> unit
(** Post a message send towards node [dst]. Fragmentation, per-fragment DMA
    cost and wire time are modeled; completion is implicit (reliable SAN). *)

val sendv : channel -> dst:int -> Engine.Bytebuf.t list -> unit
(** Scatter/gather send: the iovec is walked without copying (the NIC
    gathers). The receiver gets one contiguous message. This is what lets
    MadIO prepend its multiplexing header in the same first packet (header
    combining). *)

val set_recv : channel -> (src:int -> Engine.Bytebuf.t -> unit) -> unit
(** Register the message receive handler for this channel on this port. *)

val messages_sent : t -> int
val messages_received : t -> int
