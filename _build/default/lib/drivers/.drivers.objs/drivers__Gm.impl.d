lib/drivers/gm.ml: Calib Engine Hashtbl List Printf Simnet
