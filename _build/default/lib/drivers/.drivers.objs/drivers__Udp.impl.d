lib/drivers/udp.ml: Calib Engine Hashtbl Printf Simnet
