lib/drivers/gm.mli: Engine Simnet
