lib/drivers/udp.mli: Engine Simnet
