lib/drivers/tcp.ml: Bytes Calib Engine Float Hashtbl List Logs Printf Queue Simnet
