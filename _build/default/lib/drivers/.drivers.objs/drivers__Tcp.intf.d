lib/drivers/tcp.mli: Engine Simnet
