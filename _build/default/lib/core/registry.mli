(** Dynamic module registry — the OCaml counterpart of PadicoTM's
    dynamically loadable modules: drivers, adapters, personalities and
    middleware announce themselves here and can be enumerated or looked up
    at runtime. *)

type kind = Driver | Adapter | Personality | Middleware

type entry = {
  name : string;
  kind : kind;
  description : string;
  paradigm : [ `Parallel | `Distributed | `Both ];
}

val register : entry -> unit
(** Re-registration under the same name replaces the entry. *)

val find : string -> entry option
val all : unit -> entry list
val by_kind : kind -> entry list
val kind_to_string : kind -> string
val pp_entry : Format.formatter -> entry -> unit
