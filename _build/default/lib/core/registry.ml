type kind = Driver | Adapter | Personality | Middleware

type entry = {
  name : string;
  kind : kind;
  description : string;
  paradigm : [ `Parallel | `Distributed | `Both ];
}

let table : (string, entry) Hashtbl.t = Hashtbl.create 32

let register e = Hashtbl.replace table e.name e

let find name = Hashtbl.find_opt table name

let all () =
  Hashtbl.fold (fun _ e acc -> e :: acc) table []
  |> List.sort (fun a b -> compare a.name b.name)

let by_kind kind = List.filter (fun e -> e.kind = kind) (all ())

let kind_to_string = function
  | Driver -> "driver"
  | Adapter -> "adapter"
  | Personality -> "personality"
  | Middleware -> "middleware"

let pp_entry fmt e =
  Format.fprintf fmt "%-12s %-11s %-11s %s" e.name (kind_to_string e.kind)
    (match e.paradigm with
     | `Parallel -> "parallel"
     | `Distributed -> "distributed"
     | `Both -> "both")
    e.description
