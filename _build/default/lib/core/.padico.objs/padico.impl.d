lib/core/padico.ml: Array Circuit Engine Hashtbl List Logs Madeleine Methods Netaccess Printf Registry Selector Simnet Vlink
