lib/core/padico.mli: Circuit Engine Netaccess Registry Selector Simnet Vlink
