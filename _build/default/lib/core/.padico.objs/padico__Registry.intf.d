lib/core/registry.mli: Format
