lib/core/registry.ml: Format Hashtbl List
