(** Straight Circuit adapter: parallel interface on parallel hardware,
    through MadIO's logical multiplexing. One MadIO logical channel per
    circuit. *)

val bind :
  Ct.t -> Netaccess.Madio.t -> lchannel_id:int -> ranks:int list -> unit
(** Bind the links towards [ranks] to this MadIO instance, and register the
    circuit's receive path on logical channel [lchannel_id] (which must be
    the same on every member). All [ranks] must be reachable on the MadIO
    segment. *)

val adapter_name : string
