module Madio = Netaccess.Madio

let adapter_name = "madio"

let bind ct mio ~lchannel_id ~ranks =
  let lchan = Madio.open_lchannel mio ~id:lchannel_id in
  (* Node id -> rank for the receive path. *)
  let rank_of_node = Hashtbl.create 16 in
  for r = 0 to Ct.size ct - 1 do
    Hashtbl.replace rank_of_node (Simnet.Node.id (Ct.node_of_rank ct r)) r
  done;
  Madio.set_recv lchan (fun ~src payload ->
      match Hashtbl.find_opt rank_of_node src with
      | Some rank -> Ct.deliver ct ~src:rank payload
      | None -> ());
  List.iter
    (fun dst ->
       let dst_node = Simnet.Node.id (Ct.node_of_rank ct dst) in
       Ct.set_link ct ~dst
         { Ct.a_name = adapter_name;
           a_sendv = (fun iov -> Madio.sendv lchan ~dst:dst_node iov) })
    ranks
