(** Circuit adapter over an arbitrary VLink — the composition that lets a
    parallel runtime exploit the alternate VLink methods (parallel streams,
    AdOC compression, ciphering) on the links that need them, e.g. the
    inter-cluster WAN links of a grid-spanning group. *)

val bind_link : Ct.t -> dst:int -> Vlink.Vl.t -> unit
(** Bind the link towards rank [dst] to an (already connecting or
    connected) VLink. Both members must bind their end. *)

val adapter_name : string
