lib/circuit/ct.mli: Engine Simnet
