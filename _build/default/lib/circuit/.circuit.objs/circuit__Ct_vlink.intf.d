lib/circuit/ct_vlink.mli: Ct Vlink
