lib/circuit/ct_loopback.mli: Ct
