lib/circuit/ct.ml: Array Calib Engine Hashtbl Int64 List Printf Queue Simnet
