lib/circuit/ct_vlink.ml: Ct Engine List Vlink
