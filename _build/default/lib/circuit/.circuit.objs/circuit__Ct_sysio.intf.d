lib/circuit/ct_sysio.mli: Ct Drivers Netaccess
