lib/circuit/ct_sysio.ml: Ct Drivers Engine List Netaccess Simnet Vlink
