lib/circuit/ct_madio.mli: Ct Netaccess
