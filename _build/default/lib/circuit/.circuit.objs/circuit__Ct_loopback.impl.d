lib/circuit/ct_loopback.ml: Ct Engine Hashtbl Simnet
