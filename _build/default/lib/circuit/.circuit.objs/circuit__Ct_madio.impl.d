lib/circuit/ct_madio.ml: Ct Hashtbl List Netaccess Simnet
