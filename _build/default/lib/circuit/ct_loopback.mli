(** Intra-node Circuit adapter: rank-to-self link (also used when two ranks
    share a node). *)

val bind : Ct.t -> dst:int -> unit
(** [dst] must live on the same node as the local rank. *)

val adapter_name : string
