lib/simnet/node.mli: Engine Format
