lib/simnet/node.ml: Engine Format
