lib/simnet/segment.ml: Engine Hashtbl Linkmodel Logs Node Packet Printf
