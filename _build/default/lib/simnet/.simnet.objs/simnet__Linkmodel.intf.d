lib/simnet/linkmodel.mli: Format
