lib/simnet/net.mli: Engine Linkmodel Node Segment
