lib/simnet/presets.ml: Linkmodel
