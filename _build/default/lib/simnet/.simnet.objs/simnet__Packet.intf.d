lib/simnet/packet.mli: Engine Format
