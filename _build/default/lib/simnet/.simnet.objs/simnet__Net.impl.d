lib/simnet/net.ml: Engine Hashtbl Linkmodel List Node Presets Segment
