lib/simnet/segment.mli: Engine Linkmodel Node Packet
