lib/simnet/linkmodel.ml: Engine Format
