lib/simnet/presets.mli: Linkmodel
