lib/simnet/packet.ml: Engine Format
