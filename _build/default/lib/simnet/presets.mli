(** Calibrated link models for the networks of the paper's evaluation
    (dual-PIII 1 GHz testbed, Linux 2.2, IPDPS 2004).

    The raw numbers anchor to the paper: Myrinet-2000 peaks at 250 MB/s and
    the best middleware reach 240 MB/s (96 %); TCP/Ethernet-100 is the
    reference curve of Figure 3; VTHD gives ≈ 9–12 MB/s at 8 ms; the
    transcontinental path runs at a few hundred KB/s with 5–10 % loss. *)

val myrinet2000 : Linkmodel.t
(** 250 MB/s SAN, sub-2 µs hardware latency, no loss, 32 KB frames (GM-style
    large messages), trusted. *)

val sci : Linkmodel.t
(** SCI SAN: lower bandwidth, very low latency, 8 KB frames. *)

val ethernet100 : Linkmodel.t
(** Switched Fast Ethernet: 12.5 MB/s, ~30 µs port-to-port, MTU 1500. *)

val gigabit_lan : Linkmodel.t
(** A faster LAN used in extension scenarios. *)

val vthd : Linkmodel.t
(** VTHD-like WAN: nodes access it through Ethernet-100 so the bottleneck is
    12.5 MB/s; 4 ms one-way; rare loss that stalls a single TCP stream. *)

val transcontinental : Linkmodel.t
(** Slow intercontinental Internet path: ~600 KB/s, 25 ms one-way, 5 % base
    loss (benchmarks sweep the loss), untrusted. *)

val transcontinental_loss : float -> Linkmodel.t
(** Same path with an explicit loss rate. *)

val modem : Linkmodel.t
(** Very slow access link where online compression pays off. *)

val loopback : Linkmodel.t
(** Intra-node loopback. *)
