(** Frames carried by a segment.

    The frame body is an extensible variant: each driver (GM, TCP, UDP, …)
    extends {!content} with its own frame structure, so no driver pays
    serialization costs in host time while the {e wire} size is still modeled
    exactly through [size]. [proto] demultiplexes frames between drivers
    sharing a segment (e.g. TCP and UDP on the same Ethernet). *)

type content = ..

type content += Raw of Engine.Bytebuf.t

type t = {
  src : int;  (** sender node id *)
  dst : int;  (** destination node id *)
  proto : int;  (** driver protocol number (cf. {!Proto}) *)
  size : int;  (** payload bytes on the wire (headers included by sender) *)
  content : content;
}

(** Well-known protocol numbers. *)
module Proto : sig
  val gm : int
  val tcp : int
  val udp : int
end

val make : src:int -> dst:int -> proto:int -> size:int -> content -> t
val pp : Format.formatter -> t -> unit
