(** A network segment: a set of node ports sharing one {!Linkmodel}.

    A point-to-point link is a 2-port segment; a switched Ethernet or a SAN
    fabric is an n-port segment. Each port serializes frames at the model's
    bandwidth on egress and on ingress, so two senders targeting the same
    receiver contend for its input port — the effect the NetAccess
    arbitration experiment (E6) relies on. Frames are dropped independently
    with the model's loss probability. *)

type t

val create : Engine.Sim.t -> Linkmodel.t -> name:string -> t

val name : t -> string
val model : t -> Linkmodel.t
val sim : t -> Engine.Sim.t

val uid : t -> int
(** Process-wide unique identity (distinct across simulations). *)

val attach : t -> Node.t -> unit
(** Give [node] a port on this segment. Idempotent. *)

val attached : t -> Node.t -> bool
val nodes : t -> Node.t list

val set_handler : t -> Node.t -> proto:int -> (Packet.t -> unit) -> unit
(** Register the receive callback for frames of protocol [proto] arriving at
    [node]'s port. One handler per (port, proto); re-registration replaces.
    Frames with no handler are counted and dropped. *)

val clear_handler : t -> Node.t -> proto:int -> unit

val send : t -> Packet.t -> unit
(** Inject a frame at the source port. Raises [Invalid_argument] when source
    or destination is not attached, or when the frame exceeds the MTU. The
    frame is delivered asynchronously (or lost). *)

(** Observability for tests and benchmarks. *)
val frames_sent : t -> int
val frames_lost : t -> int
val frames_delivered : t -> int
val frames_unclaimed : t -> int
val bytes_sent : t -> int
