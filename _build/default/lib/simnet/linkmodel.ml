type link_class = San | Lan | Wan | Lossy_wan | Loop

type t = {
  name : string;
  class_ : link_class;
  bandwidth_bps : float;
  latency_ns : int;
  jitter_ns : int;
  loss : float;
  mtu : int;
  frame_overhead : int;
  turnaround_ns : int;
  trusted : bool;
}

let serialization_ns m bytes =
  let wire_bytes = bytes + m.frame_overhead in
  int_of_float ((float_of_int wire_bytes /. m.bandwidth_bps *. 1e9) +. 0.5)

let class_to_string = function
  | San -> "SAN"
  | Lan -> "LAN"
  | Wan -> "WAN"
  | Lossy_wan -> "lossy-WAN"
  | Loop -> "loopback"

let pp fmt m =
  Format.fprintf fmt "%s(%s, %.1f MB/s, %a lat, %.2f%% loss, mtu %d)" m.name
    (class_to_string m.class_)
    (m.bandwidth_bps /. 1e6)
    Engine.Time.pp m.latency_ns (m.loss *. 100.0) m.mtu
