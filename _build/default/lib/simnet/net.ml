type t = {
  sim : Engine.Sim.t;
  mutable nodes : Node.t list;
  mutable segments : Segment.t list;
  loopbacks : (int, Segment.t) Hashtbl.t;
  mutable next_id : int;
}

let create ?seed () =
  let sim = Engine.Sim.create ?seed () in
  { sim; nodes = []; segments = []; loopbacks = Hashtbl.create 16;
    next_id = 0 }

let sim t = t.sim

let add_node t name =
  let node = Node.create t.sim ~id:t.next_id ~name in
  t.next_id <- t.next_id + 1;
  t.nodes <- t.nodes @ [ node ];
  let lo =
    Segment.create t.sim Presets.loopback ~name:(name ^ "/lo")
  in
  Segment.attach lo node;
  Hashtbl.replace t.loopbacks (Node.id node) lo;
  t.segments <- t.segments @ [ lo ];
  node

let add_segment t model ?name nodes =
  let name = match name with Some n -> n | None -> model.Linkmodel.name in
  let seg = Segment.create t.sim model ~name in
  List.iter (Segment.attach seg) nodes;
  t.segments <- t.segments @ [ seg ];
  seg

let nodes t = t.nodes
let segments t = t.segments

let node_by_id t id = List.find_opt (fun n -> Node.id n = id) t.nodes

let loopback_of t node =
  match Hashtbl.find_opt t.loopbacks (Node.id node) with
  | Some s -> s
  | None -> invalid_arg "Net.loopback_of: unknown node"

let links_between t a b =
  if Node.id a = Node.id b then [ loopback_of t a ]
  else begin
    let both s = Segment.attached s a && Segment.attached s b in
    let links = List.filter both t.segments in
    List.sort
      (fun s1 s2 ->
         compare
           (Segment.model s2).Linkmodel.bandwidth_bps
           (Segment.model s1).Linkmodel.bandwidth_bps)
      links
  end

let best_link t a b =
  match links_between t a b with [] -> None | s :: _ -> Some s

let run ?until t = Engine.Sim.run ?until t.sim

let spawn t node ?name f =
  ignore t;
  Node.spawn node ?name f
