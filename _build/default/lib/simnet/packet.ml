type content = ..

type content += Raw of Engine.Bytebuf.t

type t = { src : int; dst : int; proto : int; size : int; content : content }

module Proto = struct
  let gm = 1
  let tcp = 6
  let udp = 17
end

let make ~src ~dst ~proto ~size content =
  assert (size >= 0);
  { src; dst; proto; size; content }

let pp fmt p =
  Format.fprintf fmt "pkt[%d->%d proto=%d %dB]" p.src p.dst p.proto p.size
