lib/madeleine/mad.ml: Calib Drivers Engine Hashtbl List Printf Simnet
