lib/madeleine/mad.mli: Engine Simnet
