(** AdOC VLink adapter: adaptive online compression stacked over any other
    VLink (typically SysIO/TCP on a slow WAN). Both ends must use the
    adapter. Compression CPU time is charged; the decision to compress is
    re-evaluated per chunk (see {!Methods.Adoc}). *)

val wrap : ?chunk:int -> link_bandwidth_bps:float -> Vl.t -> Vl.t
(** [wrap inner] returns a descriptor whose writes are compressed
    (adaptively) and whose reads are decompressed. Closing the wrapper
    closes [inner]. *)

val driver_name : string
