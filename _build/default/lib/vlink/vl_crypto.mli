(** Cipher VLink adapter: authenticated stream encryption stacked over any
    other VLink. The selector inserts it automatically on untrusted links
    ("if the network is secure, it is useless to cipher data"). *)

val wrap : key:Methods.Crypto.key -> Vl.t -> Vl.t

val driver_name : string
