module Bytebuf = Engine.Bytebuf

type t = { chunks : Bytebuf.t Queue.t; mutable len : int }

let create () = { chunks = Queue.create (); len = 0 }

let push t b =
  if Bytebuf.length b > 0 then begin
    Queue.push b t.chunks;
    t.len <- t.len + Bytebuf.length b
  end

let pop t ~max =
  if t.len = 0 || max <= 0 then None
  else begin
    let head = Queue.pop t.chunks in
    let hlen = Bytebuf.length head in
    let out =
      if hlen <= max then head
      else begin
        let a, b = Bytebuf.split head max in
        (* Reinsert the remainder at the front. *)
        let rest = Queue.create () in
        Queue.push b rest;
        Queue.transfer t.chunks rest;
        Queue.transfer rest t.chunks;
        a
      end
    in
    t.len <- t.len - Bytebuf.length out;
    Some out
  end

let pop_exact t n =
  if n > t.len then invalid_arg "Streamq.pop_exact: not enough bytes";
  match pop t ~max:n with
  | Some first when Bytebuf.length first = n -> first
  | Some first ->
    let out = Bytebuf.create n in
    Bytebuf.blit_dma ~src:first ~src_off:0 ~dst:out ~dst_off:0
      ~len:(Bytebuf.length first);
    let filled = ref (Bytebuf.length first) in
    while !filled < n do
      match pop t ~max:(n - !filled) with
      | Some part ->
        Bytebuf.blit_dma ~src:part ~src_off:0 ~dst:out ~dst_off:!filled
          ~len:(Bytebuf.length part);
        filled := !filled + Bytebuf.length part
      | None -> invalid_arg "Streamq.pop_exact: queue underflow"
    done;
    out
  | None -> invalid_arg "Streamq.pop_exact: queue underflow"

let length t = t.len

let is_empty t = t.len = 0
