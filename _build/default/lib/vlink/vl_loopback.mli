(** Intra-node loopback VLink driver: a crossed pair of in-memory byte
    queues with a small per-operation cost. *)

val pair : Simnet.Node.t -> Vl.t * Vl.t
(** Two directly connected descriptors on the same node. *)

val listen : Simnet.Node.t -> port:int -> (Vl.t -> unit) -> unit
val unlisten : Simnet.Node.t -> port:int -> unit
val connect : Simnet.Node.t -> port:int -> Vl.t

val driver_name : string
