(** VLink driver over NetAccess MadIO — the {e cross-paradigm} adapter:
    distributed semantics (dynamic client/server connections, byte
    streaming) on parallel hardware (Myrinet/SCI through Madeleine).

    This is the adapter that lets a CORBA implementation "believe it is
    using TCP/IP" while actually running at Myrinet speed — without
    PadicoTM "no CORBA implementation is able to utilize a Myrinet-2000
    network".

    One reserved logical channel per node carries the connection-management
    and data messages of all VLink-over-MadIO connections. *)

val connect : Netaccess.Madio.t -> dst:Simnet.Node.t -> port:int -> Vl.t
val listen : Netaccess.Madio.t -> port:int -> (Vl.t -> unit) -> unit
val unlisten : Netaccess.Madio.t -> port:int -> unit

val driver_name : string

val control_lchannel : int
(** The reserved MadIO logical channel id. *)
