(** In-memory byte-stream queue shared by memory-backed VLink drivers
    (MadIO, loopback, parallel streams, AdOC, VRP). Chunks in, bounded
    byte reads out, without copying. *)

type t

val create : unit -> t
val push : t -> Engine.Bytebuf.t -> unit
val pop : t -> max:int -> Engine.Bytebuf.t option
(** Up to [max] bytes; [None] when empty. Single-chunk pops are no-copy. *)

val pop_exact : t -> int -> Engine.Bytebuf.t
(** Exactly [n] bytes. Raises [Invalid_argument] when fewer are queued.
    No-copy when the front chunk suffices. *)

val length : t -> int
val is_empty : t -> bool
