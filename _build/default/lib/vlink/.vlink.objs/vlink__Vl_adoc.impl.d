lib/vlink/vl_adoc.ml: Calib Engine List Methods Simnet Stdlib Streamq Vl
