lib/vlink/vl.ml: Calib Engine List Logs Queue Simnet
