lib/vlink/vl_sysio.ml: Drivers Netaccess Vl
