lib/vlink/vl_vrp.ml: Drivers Engine List Methods Option Streamq Vl
