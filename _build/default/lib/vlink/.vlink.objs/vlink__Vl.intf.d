lib/vlink/vl.mli: Engine Simnet
