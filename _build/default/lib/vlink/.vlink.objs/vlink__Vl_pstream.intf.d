lib/vlink/vl_pstream.mli: Drivers Netaccess Vl
