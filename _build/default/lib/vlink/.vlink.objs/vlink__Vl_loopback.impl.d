lib/vlink/vl_loopback.ml: Calib Engine Hashtbl Printf Simnet Streamq Vl
