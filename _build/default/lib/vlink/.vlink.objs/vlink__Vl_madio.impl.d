lib/vlink/vl_madio.ml: Engine Hashtbl Logs Madeleine Netaccess Printf Simnet Streamq Vl
