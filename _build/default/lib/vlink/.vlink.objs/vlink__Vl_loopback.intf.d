lib/vlink/vl_loopback.mli: Simnet Vl
