lib/vlink/vl_pstream.ml: Array Drivers Engine Hashtbl List Logs Netaccess Simnet Streamq Vl
