lib/vlink/streamq.mli: Engine
