lib/vlink/streamq.ml: Engine Queue
