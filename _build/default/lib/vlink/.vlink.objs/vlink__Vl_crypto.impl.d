lib/vlink/vl_crypto.ml: Calib Engine List Logs Methods Simnet Stdlib Streamq Vl
