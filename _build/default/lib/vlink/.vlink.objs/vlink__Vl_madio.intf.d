lib/vlink/vl_madio.mli: Netaccess Simnet Vl
