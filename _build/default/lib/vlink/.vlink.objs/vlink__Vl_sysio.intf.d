lib/vlink/vl_sysio.mli: Drivers Netaccess Vl
