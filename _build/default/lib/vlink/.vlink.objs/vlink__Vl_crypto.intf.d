lib/vlink/vl_crypto.mli: Methods Vl
