lib/vlink/vl_adoc.mli: Vl
