lib/vlink/vl_vrp.mli: Drivers Methods Netaccess Vl
