lib/selector/prefs.ml:
