lib/selector/prefs.mli:
