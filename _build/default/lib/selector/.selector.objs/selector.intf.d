lib/selector/selector.mli: Format Prefs Simnet
