lib/selector/selector.ml: Format List Prefs Printf Simnet
