type t = {
  forced_driver : string option;
  pstream_on_wan : bool;
  pstream_streams : int;
  adoc_on_slow : bool;
  adoc_threshold_bps : float;
  vrp_on_lossy : bool;
  vrp_tolerance : float;
  cipher_untrusted : bool;
  cipher_key : string;
}

let default =
  { forced_driver = None; pstream_on_wan = false; pstream_streams = 4;
    adoc_on_slow = false; adoc_threshold_bps = 1e6; vrp_on_lossy = false;
    vrp_tolerance = 0.1; cipher_untrusted = true;
    cipher_key = "padico-default-key" }

let wan_optimized =
  { default with pstream_on_wan = true; adoc_on_slow = true;
    vrp_on_lossy = true }
