(** User-defined preferences steering the selector ("a knowledge base of
    the network topology managed by PadicoTM and user-defined
    preferences"). *)

type t = {
  forced_driver : string option;
      (** bypass selection entirely ("madio", "sysio", …) *)
  pstream_on_wan : bool;  (** stripe WAN links over parallel sockets *)
  pstream_streams : int;
  adoc_on_slow : bool;  (** online compression on slow links *)
  adoc_threshold_bps : float;
      (** links at or below this rate are "slow" for AdOC *)
  vrp_on_lossy : bool;  (** tunable-reliability transport on lossy WANs *)
  vrp_tolerance : float;
  cipher_untrusted : bool;
      (** cipher on untrusted links only — security adaptation *)
  cipher_key : string;
}

val default : t
(** Conservative defaults: straight adapters everywhere, ciphering on
    untrusted links, no WAN methods unless enabled. *)

val wan_optimized : t
(** Parallel streams + AdOC + VRP enabled. *)
