lib/middleware/dsm/dsm.mli: Circuit Engine
