lib/middleware/dsm/dsm.ml: Array Circuit Engine Fun Hashtbl List Printf Simnet
