module Bytebuf = Engine.Bytebuf
module Ct = Circuit.Ct
module Proc = Engine.Proc

(* Protocol messages (first int = kind, then page, then request id):
   1 READ_REQ   requester -> home
   2 WRITE_REQ  requester -> home
   3 REPLY      home -> requester (payload: page data)
   4 RECALL_S   home -> owner (downgrade to Shared, return data)
   5 RECALL_I   home -> owner (invalidate, return data)
   6 RECALL_ACK owner -> home (payload: page data)
   7 INVAL      home -> sharer
   8 INVAL_ACK  sharer -> home *)

type page_state = Invalid | Shared | Exclusive

type cached = { mutable cstate : page_state; mutable cdata : Bytebuf.t }

type dir = {
  master : Bytebuf.t;
  mutable owner : int option;
  mutable sharers : int list; (* excluding home *)
  lock : Proc.Semaphore.t;
}

type t = {
  ct : Ct.t;
  npages : int;
  psize : int;
  cache : cached array;
  dirs : (int, dir) Hashtbl.t; (* pages homed here *)
  mutable next_req : int;
  pending : (int, Bytebuf.t -> unit) Hashtbl.t; (* reqid -> resume *)
  mutable hits : int;
  mutable fetches : int;
  mutable invals : int;
}

let rank t = Ct.rank t.ct

let size t = Ct.size t.ct

let pages t = t.npages

let page_size t = t.psize

let home_of t page = page mod size t

let local_hits t = t.hits

let remote_fetches t = t.fetches

let invalidations_received t = t.invals

let send t ~dst ~kind ~page ~reqid payload =
  let out = Ct.begin_packing t.ct ~dst in
  Ct.pack_int out kind;
  Ct.pack_int out page;
  Ct.pack_int out reqid;
  (match payload with Some b -> Ct.pack out b | None -> ());
  Ct.end_packing out

let fresh_req t k =
  let id = t.next_req in
  t.next_req <- id + 1;
  Hashtbl.replace t.pending id k;
  id

let await_reply t ~dst ~kind ~page payload =
  Proc.suspend (fun resume ->
      let reqid = fresh_req t resume in
      send t ~dst ~kind ~page ~reqid payload)

let complete t reqid data =
  match Hashtbl.find_opt t.pending reqid with
  | Some k ->
    Hashtbl.remove t.pending reqid;
    k data
  | None -> ()

(* --- directory-side request processing (runs in its own process) --- *)

let dir_of t page =
  match Hashtbl.find_opt t.dirs page with
  | Some d -> d
  | None -> invalid_arg "Dsm: not the home of this page"

(* Pull the latest data back from an exclusive owner, if any. *)
let recall t d ~page ~invalidate =
  match d.owner with
  | None -> ()
  | Some o ->
    let kind = if invalidate then 5 else 4 in
    let data =
      if o = rank t then begin
        (* Owner is the home itself: act locally. *)
        let c = t.cache.(page) in
        c.cstate <- (if invalidate then Invalid else Shared);
        c.cdata
      end
      else await_reply t ~dst:o ~kind ~page None
    in
    Bytebuf.blit ~src:data ~src_off:0 ~dst:d.master ~dst_off:0 ~len:t.psize;
    d.owner <- None;
    if (not invalidate) && o <> rank t then d.sharers <- o :: d.sharers

let invalidate_sharers t d ~page ~except =
  let victims = List.filter (fun r -> r <> except) d.sharers in
  List.iter
    (fun v ->
       if v = rank t then begin
         t.cache.(page).cstate <- Invalid;
         t.invals <- t.invals + 1
       end
       else ignore (await_reply t ~dst:v ~kind:7 ~page None))
    victims;
  d.sharers <- List.filter (fun r -> r = except) d.sharers

let process_read t ~page ~requester ~reqid =
  let d = dir_of t page in
  Proc.Semaphore.acquire d.lock;
  Fun.protect
    ~finally:(fun () -> Proc.Semaphore.release d.lock)
    (fun () ->
       recall t d ~page ~invalidate:false;
       if requester <> rank t && not (List.mem requester d.sharers) then
         d.sharers <- requester :: d.sharers;
       send t ~dst:requester ~kind:3 ~page ~reqid (Some d.master))

let process_write t ~page ~requester ~reqid =
  let d = dir_of t page in
  Proc.Semaphore.acquire d.lock;
  Fun.protect
    ~finally:(fun () -> Proc.Semaphore.release d.lock)
    (fun () ->
       recall t d ~page ~invalidate:true;
       invalidate_sharers t d ~page ~except:requester;
       (* Home's own copy becomes invalid unless home is the writer. *)
       if requester <> rank t then t.cache.(page).cstate <- Invalid;
       d.owner <- Some requester;
       send t ~dst:requester ~kind:3 ~page ~reqid (Some d.master))

let on_message t inc =
  let kind = Ct.unpack_int inc in
  let page = Ct.unpack_int inc in
  let reqid = Ct.unpack_int inc in
  let src = Ct.incoming_src inc in
  let payload () = Ct.unpack inc (Ct.remaining inc) in
  match kind with
  | 1 ->
    ignore
      (Simnet.Node.spawn (Ct.node t.ct) ~name:"dsm-read" (fun () ->
           process_read t ~page ~requester:src ~reqid))
  | 2 ->
    ignore
      (Simnet.Node.spawn (Ct.node t.ct) ~name:"dsm-write" (fun () ->
           process_write t ~page ~requester:src ~reqid))
  | 3 -> complete t reqid (payload ())
  | 4 | 5 ->
    (* Recall: answer inline with the current copy, then downgrade. *)
    let c = t.cache.(page) in
    let data = c.cdata in
    c.cstate <- (if kind = 5 then Invalid else Shared);
    if kind = 5 then t.invals <- t.invals + 1;
    send t ~dst:src ~kind:6 ~page ~reqid (Some data)
  | 6 -> complete t reqid (payload ())
  | 7 ->
    t.cache.(page).cstate <- Invalid;
    t.invals <- t.invals + 1;
    send t ~dst:src ~kind:8 ~page ~reqid None
  | 8 -> complete t reqid (Bytebuf.create 0)
  | k -> invalid_arg (Printf.sprintf "Dsm: unknown message kind %d" k)

let create cts ~pages ~page_size =
  if pages <= 0 || page_size <= 0 then invalid_arg "Dsm.create: bad geometry";
  Array.map
    (fun ct ->
       let n = Array.length cts in
       let t =
         { ct; npages = pages; psize = page_size;
           cache =
             Array.init pages (fun _ ->
                 { cstate = Invalid; cdata = Bytebuf.create page_size });
           dirs = Hashtbl.create 16; next_req = 0; pending = Hashtbl.create 16;
           hits = 0; fetches = 0; invals = 0 }
       in
       for p = 0 to pages - 1 do
         if p mod n = Ct.rank ct then
           Hashtbl.replace t.dirs p
             { master = Bytebuf.create page_size; owner = None; sharers = [];
               lock = Proc.Semaphore.create 1 }
       done;
       Ct.set_recv ct (on_message t);
       t)
    cts

let check_page t page =
  if page < 0 || page >= t.npages then invalid_arg "Dsm: page out of range"

let read t ~page =
  check_page t page;
  let c = t.cache.(page) in
  match c.cstate with
  | Shared | Exclusive ->
    t.hits <- t.hits + 1;
    c.cdata
  | Invalid ->
    t.fetches <- t.fetches + 1;
    let home = home_of t page in
    let data =
      if home = rank t then begin
        (* Local home: run the directory logic directly. *)
        let d = dir_of t page in
        Proc.Semaphore.acquire d.lock;
        Fun.protect
          ~finally:(fun () -> Proc.Semaphore.release d.lock)
          (fun () ->
             recall t d ~page ~invalidate:false;
             Bytebuf.copy d.master)
      end
      else await_reply t ~dst:home ~kind:1 ~page None
    in
    Bytebuf.blit ~src:data ~src_off:0 ~dst:c.cdata ~dst_off:0 ~len:t.psize;
    c.cstate <- Shared;
    c.cdata

let write t ~page mutate =
  check_page t page;
  let c = t.cache.(page) in
  (match c.cstate with
   | Exclusive -> t.hits <- t.hits + 1
   | Shared | Invalid ->
     t.fetches <- t.fetches + 1;
     let home = home_of t page in
     let data =
       if home = rank t then begin
         let d = dir_of t page in
         Proc.Semaphore.acquire d.lock;
         Fun.protect
           ~finally:(fun () -> Proc.Semaphore.release d.lock)
           (fun () ->
              recall t d ~page ~invalidate:true;
              invalidate_sharers t d ~page ~except:(rank t);
              d.owner <- Some (rank t);
              Bytebuf.copy d.master)
       end
       else await_reply t ~dst:home ~kind:2 ~page None
     in
     Bytebuf.blit ~src:data ~src_off:0 ~dst:c.cdata ~dst_off:0 ~len:t.psize;
     c.cstate <- Exclusive);
  mutate c.cdata

let read_u32 t ~page ~off =
  let data = read t ~page in
  Bytebuf.get_u32 data off

let write_u32 t ~page ~off v =
  write t ~page (fun data -> Bytebuf.set_u32 data off v)
