(** Page-based distributed shared memory over Circuit — the parallel,
    non-message-based middleware the paper counts among PadicoTM's
    supported systems.

    Home-based write-invalidate protocol with a directory at each page's
    home rank: reads cache pages [Shared]; writes obtain an [Exclusive]
    copy after the home recalls the previous owner and invalidates all
    sharers. Single-writer / multiple-reader coherence; all blocking calls
    run in process context. *)

type t
(** One rank's DSM handle. *)

val create :
  Circuit.Ct.t array -> pages:int -> page_size:int -> t array
(** Shared space of [pages] pages; page [p]'s home is rank [p mod n]. *)

val rank : t -> int
val pages : t -> int
val page_size : t -> int

val read : t -> page:int -> Engine.Bytebuf.t
(** A readable snapshot of the page (do not mutate). *)

val write : t -> page:int -> (Engine.Bytebuf.t -> unit) -> unit
(** Obtain exclusive ownership and apply the mutation. *)

val read_u32 : t -> page:int -> off:int -> int
val write_u32 : t -> page:int -> off:int -> int -> unit

(** {1 Coherence statistics} *)

val local_hits : t -> int
val remote_fetches : t -> int
val invalidations_received : t -> int
