(** Grid naming service — the paper's future-work "global addressing
    (without being tied to the IP system)": services register string names
    bound to (node, port) endpoints; clients resolve names instead of
    addresses. A small line-oriented protocol over VLink, so it works
    across every driver (SAN, WAN, tunnels).

    Names are flat UTF-8 strings without newlines, e.g.
    ["corba:simulation/solver"]. *)

type server

val start : Padico.t -> Simnet.Node.t -> port:int -> server
val entries : server -> (string * int * int) list
(** (name, node id, port), unsorted. *)

type client

val connect : Padico.t -> src:Simnet.Node.t -> ns:Simnet.Node.t -> port:int ->
  client
(** Blocking (process context). *)

val register : client -> name:string -> node:Simnet.Node.t -> port:int ->
  (unit, string) result
(** Fails when the name is already bound to a different endpoint. *)

val lookup : client -> name:string -> (Simnet.Node.t * int, string) result
val unregister : client -> name:string -> (unit, string) result
val list_names : client -> prefix:string -> (string list, string) result
val close : client -> unit
