module Bb = Engine.Bytebuf
module Vio = Personalities.Vio
module Vl = Vlink.Vl

(* Line protocol (one request per line, one reply per line):
   REG <name> <node> <port>   -> OK | ERR <why>
   GET <name>                 -> OK <node> <port> | ERR <why>
   DEL <name>                 -> OK | ERR <why>
   LST <prefix>               -> OK <name>*                         *)

type server = {
  snode : Simnet.Node.t;
  table : (string, int * int) Hashtbl.t;
}

let entries s =
  Hashtbl.fold (fun name (node, port) acc -> (name, node, port) :: acc)
    s.table []

let valid_name name =
  name <> "" && not (String.contains name ' ')
  && not (String.contains name '\n')

let handle s line =
  match String.split_on_char ' ' line with
  | [ "REG"; name; node; port ] ->
    (match (int_of_string_opt node, int_of_string_opt port) with
     | Some n, Some p when valid_name name ->
       (match Hashtbl.find_opt s.table name with
        | Some existing when existing <> (n, p) -> "ERR name already bound"
        | Some _ | None ->
          Hashtbl.replace s.table name (n, p);
          "OK")
     | _ -> "ERR bad register request")
  | [ "GET"; name ] ->
    (match Hashtbl.find_opt s.table name with
     | Some (n, p) -> Printf.sprintf "OK %d %d" n p
     | None -> "ERR unknown name")
  | [ "DEL"; name ] ->
    if Hashtbl.mem s.table name then begin
      Hashtbl.remove s.table name;
      "OK"
    end
    else "ERR unknown name"
  | "LST" :: rest ->
    let prefix = String.concat " " rest in
    let plen = String.length prefix in
    let names =
      Hashtbl.fold
        (fun name _ acc ->
           if String.length name >= plen && String.sub name 0 plen = prefix
           then name :: acc
           else acc)
        s.table []
    in
    String.concat " " ("OK" :: List.sort compare names)
  | _ -> "ERR bad request"

let start grid node ~port =
  let s = { snode = node; table = Hashtbl.create 32 } in
  Padico.listen grid node ~port (fun vl ->
      ignore
        (Simnet.Node.spawn node ~name:"nameserver" (fun () ->
             let rec loop () =
               match Vio.read_line vl with
               | None -> Vio.close vl
               | Some line ->
                 Simnet.Node.cpu node Calib.personality_ns;
                 ignore (Vio.write_string vl (handle s line ^ "\n"));
                 loop ()
             in
             loop ())));
  s

type client = { grid : Padico.t; vl : Vl.t }

let connect grid ~src ~ns ~port =
  let vl = Padico.connect grid ~src ~dst:ns ~port in
  (match Vio.connect_wait vl with
   | Ok () -> ()
   | Error e -> failwith ("Nameserver.connect: " ^ e));
  { grid; vl }

let request c line =
  ignore (Vio.write_string c.vl (line ^ "\n"));
  match Vio.read_line c.vl with
  | None -> Error "connection closed"
  | Some reply ->
    (match String.split_on_char ' ' reply with
     | "OK" :: rest -> Ok rest
     | "ERR" :: why -> Error (String.concat " " why)
     | _ -> Error ("malformed reply: " ^ reply))

let register c ~name ~node ~port =
  match
    request c
      (Printf.sprintf "REG %s %d %d" name (Simnet.Node.id node) port)
  with
  | Ok _ -> Ok ()
  | Error e -> Error e

let lookup c ~name =
  match request c ("GET " ^ name) with
  | Ok [ node; port ] ->
    (match
       ( Simnet.Net.node_by_id (Padico.net c.grid) (int_of_string node),
         int_of_string_opt port )
     with
     | Some n, Some p -> Ok (n, p)
     | _ -> Error "dangling name: node no longer exists")
  | Ok _ -> Error "malformed lookup reply"
  | Error e -> Error e

let unregister c ~name =
  match request c ("DEL " ^ name) with
  | Ok _ -> Ok ()
  | Error e -> Error e

let list_names c ~prefix =
  match request c ("LST " ^ prefix) with
  | Ok names -> Ok (List.filter (fun n -> n <> "") names)
  | Error e -> Error e

let close c = Vio.close c.vl
