lib/middleware/ns/nameserver.mli: Padico Simnet
