lib/middleware/ns/nameserver.ml: Calib Engine Hashtbl List Padico Personalities Printf Simnet String Vlink
