type t =
  | Element of string * (string * string) list * t list
  | Text of string

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
       match c with
       | '<' -> Buffer.add_string buf "&lt;"
       | '>' -> Buffer.add_string buf "&gt;"
       | '&' -> Buffer.add_string buf "&amp;"
       | '"' -> Buffer.add_string buf "&quot;"
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '&' then begin
      let entity_end =
        try String.index_from s !i ';' with Not_found -> n - 1
      in
      let entity = String.sub s !i (entity_end - !i + 1) in
      (match entity with
       | "&lt;" -> Buffer.add_char buf '<'
       | "&gt;" -> Buffer.add_char buf '>'
       | "&amp;" -> Buffer.add_char buf '&'
       | "&quot;" -> Buffer.add_char buf '"'
       | other -> Buffer.add_string buf other);
      i := entity_end + 1
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let rec write buf = function
  | Text s -> Buffer.add_string buf (escape s)
  | Element (name, attrs, children) ->
    Buffer.add_char buf '<';
    Buffer.add_string buf name;
    List.iter
      (fun (k, v) ->
         Buffer.add_char buf ' ';
         Buffer.add_string buf k;
         Buffer.add_string buf "=\"";
         Buffer.add_string buf (escape v);
         Buffer.add_char buf '"')
      attrs;
    if children = [] then Buffer.add_string buf "/>"
    else begin
      Buffer.add_char buf '>';
      List.iter (write buf) children;
      Buffer.add_string buf "</";
      Buffer.add_string buf name;
      Buffer.add_char buf '>'
    end

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let skip_ws p =
  while
    p.pos < String.length p.src
    && (match p.src.[p.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    advance p
  done

let read_name p =
  let start = p.pos in
  while
    p.pos < String.length p.src
    &&
    match p.src.[p.pos] with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | ':' | '.' -> true
    | _ -> false
  do
    advance p
  done;
  if p.pos = start then raise (Parse_error "expected name");
  String.sub p.src start (p.pos - start)

let expect p c =
  match peek p with
  | Some x when x = c -> advance p
  | _ -> raise (Parse_error (Printf.sprintf "expected %c at %d" c p.pos))

let read_attrs p =
  let attrs = ref [] in
  let continue = ref true in
  while !continue do
    skip_ws p;
    match peek p with
    | Some ('>' | '/') | None -> continue := false
    | Some _ ->
      let name = read_name p in
      expect p '=';
      expect p '"';
      let start = p.pos in
      while peek p <> Some '"' && peek p <> None do
        advance p
      done;
      let v = String.sub p.src start (p.pos - start) in
      expect p '"';
      attrs := (name, unescape v) :: !attrs
  done;
  List.rev !attrs

let rec read_node p =
  match peek p with
  | Some '<' ->
    advance p;
    let name = read_name p in
    let attrs = read_attrs p in
    (match peek p with
     | Some '/' ->
       advance p;
       expect p '>';
       Element (name, attrs, [])
     | Some '>' ->
       advance p;
       let children = read_children p in
       (* closing tag: "</name>" *)
       expect p '<';
       expect p '/';
       let close = read_name p in
       if close <> name then
         raise (Parse_error (Printf.sprintf "mismatched </%s>" close));
       skip_ws p;
       expect p '>';
       Element (name, attrs, children)
     | _ -> raise (Parse_error "malformed tag"))
  | _ -> raise (Parse_error "expected element")

and read_children p =
  let children = ref [] in
  let continue = ref true in
  while !continue do
    if p.pos + 1 < String.length p.src && p.src.[p.pos] = '<'
       && p.src.[p.pos + 1] = '/'
    then continue := false
    else
      match peek p with
      | Some '<' -> children := read_node p :: !children
      | Some _ ->
        let start = p.pos in
        while peek p <> Some '<' && peek p <> None do
          advance p
        done;
        let text = unescape (String.sub p.src start (p.pos - start)) in
        if String.trim text <> "" || text <> "" then
          children := Text text :: !children
      | None -> raise (Parse_error "unexpected end of input")
  done;
  List.rev !children

let of_string s =
  let p = { src = s; pos = 0 } in
  try
    skip_ws p;
    let node = read_node p in
    Ok node
  with Parse_error e -> Error e

let find_child t name =
  match t with
  | Element (_, _, children) ->
    List.find_opt
      (function Element (n, _, _) -> n = name | Text _ -> false)
      children
  | Text _ -> None

let text_of t =
  match t with
  | Element (_, _, children) ->
    String.concat ""
      (List.filter_map (function Text s -> Some s | Element _ -> None) children)
  | Text s -> s
