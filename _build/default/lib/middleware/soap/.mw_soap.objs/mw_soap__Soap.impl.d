lib/middleware/soap/soap.ml: Buffer Calib Char Engine Hashtbl List Logs Option Padico Personalities Printf Simnet String Sxml Vlink
