lib/middleware/soap/sxml.ml: Buffer List Printf String
