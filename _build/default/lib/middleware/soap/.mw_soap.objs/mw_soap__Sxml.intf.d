lib/middleware/soap/sxml.mli:
