lib/middleware/soap/soap.mli: Engine Padico Simnet
