(** Minimal XML for the SOAP middleware: elements, attributes, text;
    writer and a small recursive-descent parser. *)

type t =
  | Element of string * (string * string) list * t list
  | Text of string

val to_string : t -> string
val of_string : string -> (t, string) result
val escape : string -> string

val find_child : t -> string -> t option
val text_of : t -> string
(** Concatenated text children. *)
