module Bytebuf = Engine.Bytebuf
module Vio = Personalities.Vio
module Vl = Vlink.Vl

let log = Logs.Src.create "soap"

module Log = (val Logs.src_log log : Logs.LOG)

type value =
  | SString of string
  | SInt of int
  | SFloat of float
  | SBytes of Bytebuf.t

type handler = value list -> (value list, string) result

(* ---------- base64 ---------- *)

let b64_alphabet =
  "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let base64_encode s =
  let n = String.length s in
  let buf = Buffer.create ((n + 2) / 3 * 4) in
  let i = ref 0 in
  while !i + 2 < n do
    let a = Char.code s.[!i]
    and b = Char.code s.[!i + 1]
    and c = Char.code s.[!i + 2] in
    Buffer.add_char buf b64_alphabet.[a lsr 2];
    Buffer.add_char buf b64_alphabet.[((a land 3) lsl 4) lor (b lsr 4)];
    Buffer.add_char buf b64_alphabet.[((b land 15) lsl 2) lor (c lsr 6)];
    Buffer.add_char buf b64_alphabet.[c land 63];
    i := !i + 3
  done;
  (match n - !i with
   | 1 ->
     let a = Char.code s.[!i] in
     Buffer.add_char buf b64_alphabet.[a lsr 2];
     Buffer.add_char buf b64_alphabet.[(a land 3) lsl 4];
     Buffer.add_string buf "=="
   | 2 ->
     let a = Char.code s.[!i] and b = Char.code s.[!i + 1] in
     Buffer.add_char buf b64_alphabet.[a lsr 2];
     Buffer.add_char buf b64_alphabet.[((a land 3) lsl 4) lor (b lsr 4)];
     Buffer.add_char buf b64_alphabet.[(b land 15) lsl 2];
     Buffer.add_char buf '='
   | _ -> ());
  Buffer.contents buf

let b64_value c =
  match c with
  | 'A' .. 'Z' -> Char.code c - 65
  | 'a' .. 'z' -> Char.code c - 97 + 26
  | '0' .. '9' -> Char.code c - 48 + 52
  | '+' -> 62
  | '/' -> 63
  | _ -> -1

let base64_decode s =
  let n = String.length s in
  if n mod 4 <> 0 then Error "base64: bad length"
  else begin
    let buf = Buffer.create (n / 4 * 3) in
    let error = ref None in
    let i = ref 0 in
    while !error = None && !i < n do
      let quad = String.sub s !i 4 in
      let pad =
        if quad.[3] = '=' then if quad.[2] = '=' then 2 else 1 else 0
      in
      let v j =
        if j >= 4 - pad then 0
        else begin
          let v = b64_value quad.[j] in
          if v < 0 then begin
            error := Some "base64: bad character";
            0
          end
          else v
        end
      in
      let bits = (v 0 lsl 18) lor (v 1 lsl 12) lor (v 2 lsl 6) lor v 3 in
      Buffer.add_char buf (Char.chr ((bits lsr 16) land 0xff));
      if pad < 2 then Buffer.add_char buf (Char.chr ((bits lsr 8) land 0xff));
      if pad < 1 then Buffer.add_char buf (Char.chr (bits land 0xff));
      i := !i + 4
    done;
    match !error with Some e -> Error e | None -> Ok (Buffer.contents buf)
  end

(* ---------- envelopes ---------- *)

let value_to_xml v =
  match v with
  | SString s -> Sxml.Element ("param", [ ("type", "string") ], [ Sxml.Text s ])
  | SInt i ->
    Sxml.Element ("param", [ ("type", "int") ], [ Sxml.Text (string_of_int i) ])
  | SFloat f ->
    Sxml.Element
      ("param", [ ("type", "double") ],
       [ Sxml.Text (Printf.sprintf "%.17g" f) ])
  | SBytes b ->
    Sxml.Element
      ("param", [ ("type", "base64") ],
       [ Sxml.Text (base64_encode (Bytebuf.to_string b)) ])

let value_of_xml node =
  match node with
  | Sxml.Element ("param", attrs, _) ->
    let text = Sxml.text_of node in
    (match List.assoc_opt "type" attrs with
     | Some "string" -> Ok (SString text)
     | Some "int" ->
       (match int_of_string_opt (String.trim text) with
        | Some i -> Ok (SInt i)
        | None -> Error "bad int")
     | Some "double" ->
       (match float_of_string_opt (String.trim text) with
        | Some f -> Ok (SFloat f)
        | None -> Error "bad double")
     | Some "base64" ->
       (match base64_decode (String.trim text) with
        | Ok s -> Ok (SBytes (Bytebuf.of_string s))
        | Error e -> Error e)
     | Some other -> Error ("unknown type " ^ other)
     | None -> Error "missing type attribute")
  | Sxml.Element _ | Sxml.Text _ -> Error "expected <param>"

let envelope body =
  Sxml.Element
    ("Envelope", [ ("xmlns", "http://schemas.xmlsoap.org/soap/envelope/") ],
     [ Sxml.Element ("Body", [], [ body ]) ])

let encode_call ~name params =
  Sxml.to_string (envelope (Sxml.Element (name, [], List.map value_to_xml params)))

let params_of children =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | node :: rest ->
      (match node with
       | Sxml.Text t when String.trim t = "" -> go acc rest
       | _ ->
         (match value_of_xml node with
          | Ok v -> go (v :: acc) rest
          | Error e -> Error e))
  in
  go [] children

let body_of_string s =
  match Sxml.of_string s with
  | Error e -> Error ("xml: " ^ e)
  | Ok root ->
    (match Sxml.find_child root "Body" with
     | Some (Sxml.Element (_, _, [ body ])) -> Ok body
     | Some (Sxml.Element (_, _, children)) ->
       (match
          List.find_opt
            (function Sxml.Element _ -> true | Sxml.Text _ -> false)
            children
        with
        | Some body -> Ok body
        | None -> Error "empty Body")
     | Some (Sxml.Text _) | None -> Error "missing Body")

let decode_call s =
  match body_of_string s with
  | Error e -> Error e
  | Ok (Sxml.Element (name, _, children)) ->
    (match params_of children with
     | Ok params -> Ok (name, params)
     | Error e -> Error e)
  | Ok (Sxml.Text _) -> Error "malformed call body"

let encode_response result =
  let body =
    match result with
    | Ok values -> Sxml.Element ("Response", [], List.map value_to_xml values)
    | Error e ->
      Sxml.Element
        ("Fault", [], [ Sxml.Element ("faultstring", [], [ Sxml.Text e ]) ])
  in
  Sxml.to_string (envelope body)

let decode_response s =
  match body_of_string s with
  | Error e -> Error e
  | Ok (Sxml.Element ("Response", _, children)) -> params_of children
  | Ok (Sxml.Element ("Fault", _, _) as fault) ->
    (match Sxml.find_child fault "faultstring" with
     | Some fs -> Error (Sxml.text_of fs)
     | None -> Error "unknown fault")
  | Ok _ -> Error "malformed response body"

(* ---------- HTTP-1.0-ish transport over VIO ---------- *)

let charge node len =
  Simnet.Node.cpu node
    (Calib.soap_ns
     + int_of_float (Calib.soap_per_byte_ns *. float_of_int len))

let send_http vl ~start_line ~payload =
  let msg =
    Printf.sprintf "%s\r\nContent-Length: %d\r\n\r\n%s" start_line
      (String.length payload) payload
  in
  ignore (Vio.write vl (Bytebuf.of_string msg))

let recv_http vl =
  (* Read header lines until the blank line, then Content-Length bytes. *)
  let rec headers acc =
    match Vio.read_line vl with
    | None -> None
    | Some line ->
      let line = String.trim line in
      if line = "" then Some (List.rev acc) else headers (line :: acc)
  in
  match headers [] with
  | None | Some [] -> None
  | Some lines ->
    let content_length =
      List.fold_left
        (fun acc line ->
           match String.index_opt line ':' with
           | Some i
             when String.lowercase_ascii (String.sub line 0 i)
                  = "content-length" ->
             int_of_string_opt
               (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
             |> Option.value ~default:acc
           | _ -> acc)
        0 lines
    in
    let body = Bytebuf.create content_length in
    if content_length > 0 && not (Vio.read_exact vl body) then None
    else Some (Bytebuf.to_string body)

(* ---------- server ---------- *)

type server = {
  snode : Simnet.Node.t;
  handlers : (string, handler) Hashtbl.t;
  mutable served : int;
}

let register s ~name h = Hashtbl.replace s.handlers name h

let requests_served s = s.served

let serve grid node ~port =
  let s = { snode = node; handlers = Hashtbl.create 8; served = 0 } in
  Padico.listen grid node ~port (fun vl ->
      ignore
        (Simnet.Node.spawn node ~name:"soap-conn" (fun () ->
             let rec loop () =
               match recv_http vl with
               | None -> Vio.close vl
               | Some request ->
                 charge node (String.length request);
                 let result =
                   match decode_call request with
                   | Error e -> Error ("client error: " ^ e)
                   | Ok (name, params) ->
                     (match Hashtbl.find_opt s.handlers name with
                      | None -> Error ("no such method: " ^ name)
                      | Some h -> h params)
                 in
                 s.served <- s.served + 1;
                 let payload = encode_response result in
                 charge node (String.length payload);
                 send_http vl ~start_line:"HTTP/1.0 200 OK" ~payload;
                 loop ()
             in
             loop ())));
  s

(* ---------- client ---------- *)

type client = { cnode : Simnet.Node.t; vl : Vl.t }

let connect grid ~src ~dst ~port =
  let vl = Padico.connect grid ~src ~dst ~port in
  (match Vio.connect_wait vl with
   | Ok () -> ()
   | Error e -> failwith ("Soap.connect: " ^ e));
  { cnode = src; vl }

let call c ~name params =
  let payload = encode_call ~name params in
  charge c.cnode (String.length payload);
  send_http c.vl ~start_line:"POST /soap HTTP/1.0" ~payload;
  match recv_http c.vl with
  | None -> Error "connection closed"
  | Some response ->
    charge c.cnode (String.length response);
    decode_response response

let close c = Vio.close c.vl
