(** gSOAP-style middleware: XML-envelope RPC over an HTTP/1.0-like POST
    exchange, running on the VIO personality. Typical grid use: the
    SOAP-based monitoring of an MPI computation (paper §2.1), exercised in
    the [grid_monitor] example.

    Verbose text marshalling costs per-byte CPU ({!Calib.soap_per_byte_ns})
    — SOAP is the slowest stack by design, but it rides the same selector
    and can therefore also cross Myrinet or striped WAN links. *)

type value =
  | SString of string
  | SInt of int
  | SFloat of float
  | SBytes of Engine.Bytebuf.t  (** base64-encoded on the wire *)

type handler = value list -> (value list, string) result

(** {1 Server} *)

type server

val serve : Padico.t -> Simnet.Node.t -> port:int -> server
val register : server -> name:string -> handler -> unit
val requests_served : server -> int

(** {1 Client} *)

type client

val connect : Padico.t -> src:Simnet.Node.t -> dst:Simnet.Node.t -> port:int ->
  client

val call : client -> name:string -> value list -> (value list, string) result
(** Blocking RPC (process context). *)

val close : client -> unit

(** {1 Wire helpers (exposed for tests)} *)

val encode_call : name:string -> value list -> string
val decode_call : string -> (string * value list, string) result
val encode_response : (value list, string) result -> string
val decode_response : string -> (value list, string) result
val base64_encode : string -> string
val base64_decode : string -> (string, string) result
