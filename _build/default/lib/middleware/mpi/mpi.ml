module Bytebuf = Engine.Bytebuf
module Ct = Circuit.Ct
module Madpers = Personalities.Madpers
module Proc = Engine.Proc

let any_source = -1

let any_tag = -1

(* Internal tag space: user tags must stay below; collectives use the top. *)
let coll_tag_base = 0x4000_0000

type message = { m_src : int; m_tag : int; m_payload : Bytebuf.t }

type pending_recv = {
  p_source : int;
  p_tag : int;
  mutable p_result : message option;
  mutable p_waiter : (message -> unit) option;
}

type t = {
  mp : Madpers.t;
  unexpected : message Queue.t;
  mutable posted : pending_recv list; (* in post order *)
}

type request =
  | Rsend
  | Rrecv of pending_recv

let rank t = Madpers.rank t.mp

let size t = Madpers.size t.mp

let node t = Ct.node (Madpers.circuit t.mp)

let matches ~source ~tag (m : message) =
  (source = any_source || source = m.m_src)
  && (tag = any_tag || tag = m.m_tag)

let charge t = Simnet.Node.cpu (node t) Calib.mpi_ns

let charge_async t = Simnet.Node.cpu_async (node t) Calib.mpi_ns (fun () -> ())

let on_message t (m : message) =
  (* Match against posted receives in post order. *)
  let rec find acc = function
    | [] ->
      Queue.push m t.unexpected;
      t.posted <- List.rev acc
    | p :: rest ->
      if p.p_result = None && matches ~source:p.p_source ~tag:p.p_tag m then begin
        p.p_result <- Some m;
        t.posted <- List.rev_append acc rest;
        match p.p_waiter with
        | Some k ->
          p.p_waiter <- None;
          k m
        | None -> ()
      end
      else find (p :: acc) rest
  in
  find [] t.posted

let init cts =
  Array.map
    (fun ct ->
       let mp = Madpers.attach ct in
       let t = { mp; unexpected = Queue.create (); posted = [] } in
       Madpers.set_recv mp (fun ~src inc ->
           let tag = Ct.unpack_int inc in
           let payload = Ct.unpack inc (Ct.remaining inc) in
           Simnet.Node.cpu_async (node t) Calib.mpi_ns (fun () ->
               on_message t { m_src = src; m_tag = tag; m_payload = payload }));
       t)
    cts

let send t ~dst ~tag payload =
  if tag < 0 || tag >= coll_tag_base * 2 then invalid_arg "Mpi.send: bad tag";
  charge t;
  let out = Madpers.begin_packing t.mp ~dst in
  let tagbuf = Bytebuf.create 8 in
  Bytebuf.set_i64 tagbuf 0 (Int64.of_int tag);
  Madpers.pack out tagbuf;
  Madpers.pack out payload;
  Madpers.end_packing out

let isend t ~dst ~tag payload =
  charge_async t;
  let out = Madpers.begin_packing t.mp ~dst in
  let tagbuf = Bytebuf.create 8 in
  Bytebuf.set_i64 tagbuf 0 (Int64.of_int tag);
  Madpers.pack out tagbuf;
  Madpers.pack out payload;
  Madpers.end_packing out;
  Rsend

let take_unexpected t ~source ~tag =
  (* First match in arrival order. *)
  let n = Queue.length t.unexpected in
  let result = ref None in
  for _ = 1 to n do
    let m = Queue.pop t.unexpected in
    if !result = None && matches ~source ~tag m then result := Some m
    else Queue.push m t.unexpected
  done;
  !result

let irecv t ?(source = any_source) ?(tag = any_tag) () =
  let p = { p_source = source; p_tag = tag; p_result = None; p_waiter = None } in
  (match take_unexpected t ~source ~tag with
   | Some m -> p.p_result <- Some m
   | None -> t.posted <- t.posted @ [ p ]);
  Rrecv p

let unpack_result (m : message) = (m.m_src, m.m_tag, m.m_payload)

let test = function
  | Rsend -> Some (-1, -1, Bytebuf.create 0)
  | Rrecv p -> Option.map unpack_result p.p_result

let wait = function
  | Rsend -> (-1, -1, Bytebuf.create 0)
  | Rrecv p ->
    (match p.p_result with
     | Some m -> unpack_result m
     | None ->
       unpack_result
         (Proc.suspend (fun resume -> p.p_waiter <- Some resume)))

let waitall reqs = List.map wait reqs

let recv t ?(source = any_source) ?(tag = any_tag) () =
  (* The delivery path already charged the per-message cost. *)
  wait (irecv t ~source ~tag ())

let probe t ?(source = any_source) ?(tag = any_tag) () =
  let found = ref None in
  Queue.iter
    (fun m ->
       if !found = None && matches ~source ~tag m then
         found := Some (m.m_src, m.m_tag))
    t.unexpected;
  !found

(* ---------- collectives ---------- *)

type op = Sum | Max | Min

type datatype = Int_t | Float_t

let floats_to_buf v =
  let b = Bytebuf.create (8 * Array.length v) in
  Array.iteri (fun i x -> Bytebuf.set_i64 b (8 * i) (Int64.bits_of_float x)) v;
  b

let floats_of_buf b =
  let n = Bytebuf.length b / 8 in
  Array.init n (fun i -> Int64.float_of_bits (Bytebuf.get_i64 b (8 * i)))

let ints_to_buf v =
  let b = Bytebuf.create (8 * Array.length v) in
  Array.iteri (fun i x -> Bytebuf.set_i64 b (8 * i) (Int64.of_int x)) v;
  b

let ints_of_buf b =
  let n = Bytebuf.length b / 8 in
  Array.init n (fun i -> Int64.to_int (Bytebuf.get_i64 b (8 * i)))

let combine ~op ~datatype a b =
  let fop : float -> float -> float =
    match op with Sum -> ( +. ) | Max -> Float.max | Min -> Float.min
  in
  let iop : int -> int -> int =
    match op with Sum -> ( + ) | Max -> max | Min -> min
  in
  match datatype with
  | Float_t ->
    let va = floats_of_buf a and vb = floats_of_buf b in
    floats_to_buf (Array.mapi (fun i x -> fop x vb.(i)) va)
  | Int_t ->
    let va = ints_of_buf a and vb = ints_of_buf b in
    ints_to_buf (Array.mapi (fun i x -> iop x vb.(i)) va)

(* Internal point-to-point on reserved tags. *)
let csend t ~dst ~tag payload =
  let out = Madpers.begin_packing t.mp ~dst in
  let tagbuf = Bytebuf.create 8 in
  Bytebuf.set_i64 tagbuf 0 (Int64.of_int tag);
  Madpers.pack out tagbuf;
  Madpers.pack out payload;
  Madpers.end_packing out

let crecv t ~source ~tag =
  let _, _, payload = wait (irecv t ~source ~tag ()) in
  payload

(* Dissemination barrier: round k, exchange with rank +/- 2^k. *)
let barrier t =
  charge t;
  let n = size t and r = rank t in
  if n > 1 then begin
    let tag0 = coll_tag_base + 1 in
    let k = ref 0 in
    while 1 lsl !k < n do
      let dist = 1 lsl !k in
      let dst = (r + dist) mod n in
      let src = (r - dist + n) mod n in
      csend t ~dst ~tag:(tag0 + !k) (Bytebuf.create 0);
      ignore (crecv t ~source:src ~tag:(tag0 + !k));
      incr k
    done
  end

(* Binomial broadcast rooted anywhere (ranks rotated around the root). *)
let bcast t ~root data =
  charge t;
  let n = size t and r = rank t in
  let vrank = (r - root + n) mod n in
  let tag = coll_tag_base + 32 in
  let buf = ref (match data with Some b -> b | None -> Bytebuf.create 0) in
  if n > 1 then begin
    (match data with
     | None when vrank <> 0 -> ()
     | None -> invalid_arg "Mpi.bcast: root must supply data"
     | Some _ when vrank = 0 -> ()
     | Some _ -> () (* non-root data ignored *));
    (* Receive from parent. *)
    if vrank <> 0 then begin
      (* Parent clears the lowest set bit. *)
      let parent_v = vrank land (vrank - 1) in
      let parent = (parent_v + root) mod n in
      buf := crecv t ~source:parent ~tag
    end;
    (* Forward to children: set bits above the lowest set bit of vrank. *)
    let low = if vrank = 0 then n else vrank land (-vrank) in
    let mask = ref 1 in
    while !mask < low && vrank + !mask < n do
      let child = (vrank + !mask + root) mod n in
      csend t ~dst:child ~tag !buf;
      mask := !mask lsl 1
    done
  end;
  !buf

(* Binomial-tree reduce (commutative ops). *)
let reduce t ~root ~op ~datatype data =
  charge t;
  let n = size t and r = rank t in
  let vrank = (r - root + n) mod n in
  let tag = coll_tag_base + 64 in
  let acc = ref data in
  if n > 1 then begin
    let mask = ref 1 in
    let continue = ref true in
    while !continue && !mask < n do
      if vrank land !mask <> 0 then begin
        (* Send to parent and leave. *)
        let parent = (vrank - !mask + root) mod n in
        csend t ~dst:parent ~tag !acc;
        continue := false
      end
      else if vrank + !mask < n then begin
        let child = (vrank + !mask + root) mod n in
        let contrib = crecv t ~source:child ~tag in
        acc := combine ~op ~datatype !acc contrib
      end;
      mask := !mask lsl 1
    done
  end;
  if r = root then Some !acc else None

let allreduce t ~op ~datatype data =
  match reduce t ~root:0 ~op ~datatype data with
  | Some combined when rank t = 0 -> bcast t ~root:0 (Some combined)
  | _ -> bcast t ~root:0 None

let gather t ~root data =
  charge t;
  let n = size t and r = rank t in
  let tag = coll_tag_base + 96 in
  if r = root then begin
    let out = Array.make n (Bytebuf.create 0) in
    out.(r) <- data;
    for _ = 1 to n - 1 do
      let src, _, payload = wait (irecv t ~source:any_source ~tag ()) in
      out.(src) <- payload
    done;
    Some out
  end
  else begin
    csend t ~dst:root ~tag data;
    None
  end

let scatter t ~root parts =
  charge t;
  let n = size t and r = rank t in
  let tag = coll_tag_base + 128 in
  if r = root then begin
    match parts with
    | None -> invalid_arg "Mpi.scatter: root must supply parts"
    | Some parts ->
      if Array.length parts <> n then
        invalid_arg "Mpi.scatter: need one part per rank";
      for dst = 0 to n - 1 do
        if dst <> r then csend t ~dst ~tag parts.(dst)
      done;
      parts.(r)
  end
  else crecv t ~source:root ~tag

let alltoall t parts =
  charge t;
  let n = size t and r = rank t in
  if Array.length parts <> n then
    invalid_arg "Mpi.alltoall: need one part per rank";
  let tag = coll_tag_base + 160 in
  let out = Array.make n (Bytebuf.create 0) in
  out.(r) <- parts.(r);
  for dst = 0 to n - 1 do
    if dst <> r then csend t ~dst ~tag parts.(dst)
  done;
  for _ = 1 to n - 1 do
    let src, _, payload = wait (irecv t ~source:any_source ~tag ()) in
    out.(src) <- payload
  done;
  out
