(** Mini-MPI: a message-passing runtime in the MPICH/Madeleine mould,
    running over the virtual-Madeleine personality of Circuit — exactly the
    stack the paper benchmarks as "MPICH" (Table 1: 12.06 µs, 238.7 MB/s
    over Myrinet-2000).

    Point-to-point with tag/source matching (blocking + nonblocking), and
    the classic collectives (binomial trees, dissemination barrier). All
    blocking calls must run in process ({!Engine.Proc}) context. *)

type t
(** One rank's communicator handle. *)

val any_source : int
val any_tag : int

val init : Circuit.Ct.t array -> t array
(** One handle per rank, over an existing circuit. *)

val rank : t -> int
val size : t -> int
val node : t -> Simnet.Node.t

(** {1 Point-to-point} *)

val send : t -> dst:int -> tag:int -> Engine.Bytebuf.t -> unit
(** Buffered send: returns once the message is handed to the circuit. *)

val recv :
  t -> ?source:int -> ?tag:int -> unit -> int * int * Engine.Bytebuf.t
(** Blocking receive; returns (source, tag, payload). Defaults match any
    source / any tag. *)

type request

val isend : t -> dst:int -> tag:int -> Engine.Bytebuf.t -> request
val irecv : t -> ?source:int -> ?tag:int -> unit -> request
val test : request -> (int * int * Engine.Bytebuf.t) option
val wait : request -> int * int * Engine.Bytebuf.t
val waitall : request list -> (int * int * Engine.Bytebuf.t) list

val probe : t -> ?source:int -> ?tag:int -> unit -> (int * int) option
(** Non-blocking probe: (source, tag) of a matching queued message. *)

(** {1 Collectives} *)

type op = Sum | Max | Min
type datatype = Int_t | Float_t

val barrier : t -> unit
(** Dissemination barrier: ⌈log2 n⌉ rounds. *)

val bcast : t -> root:int -> Engine.Bytebuf.t option -> Engine.Bytebuf.t
(** Binomial-tree broadcast; non-roots pass [None]. *)

val reduce :
  t -> root:int -> op:op -> datatype:datatype -> Engine.Bytebuf.t ->
  Engine.Bytebuf.t option
(** Binomial-tree reduction; the root gets the combined vector. *)

val allreduce :
  t -> op:op -> datatype:datatype -> Engine.Bytebuf.t -> Engine.Bytebuf.t

val gather : t -> root:int -> Engine.Bytebuf.t -> Engine.Bytebuf.t array option
val scatter : t -> root:int -> Engine.Bytebuf.t array option -> Engine.Bytebuf.t
val alltoall : t -> Engine.Bytebuf.t array -> Engine.Bytebuf.t array

(** {1 Vector helpers for reductions} *)

val floats_to_buf : float array -> Engine.Bytebuf.t
val floats_of_buf : Engine.Bytebuf.t -> float array
val ints_to_buf : int array -> Engine.Bytebuf.t
val ints_of_buf : Engine.Bytebuf.t -> int array
