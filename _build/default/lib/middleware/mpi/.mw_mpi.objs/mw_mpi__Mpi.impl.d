lib/middleware/mpi/mpi.ml: Array Calib Circuit Engine Float Int64 List Option Personalities Queue Simnet
