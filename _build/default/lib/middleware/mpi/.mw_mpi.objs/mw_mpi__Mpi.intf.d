lib/middleware/mpi/mpi.mli: Circuit Engine Simnet
