(** Java-sockets middleware: the [java.net.Socket]/[ServerSocket] +
    stream API as exposed by a JVM (Kaffe in the paper) running on
    PadicoTM. The JVM's interpreter/JNI crossing costs dominate latency
    (Table 1: 40 µs) while bandwidth stays near the wire (237.9 MB/s) —
    both reproduced through {!Calib.java_ns} / {!Calib.java_per_byte_ns}.

    Blocking calls; process context. *)

type server_socket
type socket

val server_socket : Padico.t -> Simnet.Node.t -> port:int -> server_socket
val accept : server_socket -> socket

val connect : Padico.t -> src:Simnet.Node.t -> dst:Simnet.Node.t -> port:int ->
  socket

val input_read : socket -> Engine.Bytebuf.t -> int
(** [InputStream.read(buf)]: ≥ 1 bytes, or -1 at end of stream. *)

val input_read_fully : socket -> Engine.Bytebuf.t -> bool
val output_write : socket -> Engine.Bytebuf.t -> unit
val close : socket -> unit

val vlink : socket -> Vlink.Vl.t
