lib/middleware/java/jsock.ml: Calib Engine Padico Personalities Queue Simnet Vlink
