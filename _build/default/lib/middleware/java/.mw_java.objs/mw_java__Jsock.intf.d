lib/middleware/java/jsock.mli: Engine Padico Simnet Vlink
