module Bytebuf = Engine.Bytebuf
module Vio = Personalities.Vio
module Vl = Vlink.Vl
module Proc = Engine.Proc

type socket = { jnode : Simnet.Node.t; vl : Vl.t }

type server_socket = {
  snode : Simnet.Node.t;
  pending : Vl.t Queue.t;
  mutable waiter : (Vl.t -> unit) option;
}

let charge node bytes =
  Simnet.Node.cpu node
    (Calib.java_ns + int_of_float (Calib.java_per_byte_ns *. float_of_int bytes))

let server_socket grid node ~port =
  let s = { snode = node; pending = Queue.create (); waiter = None } in
  Padico.listen grid node ~port (fun vl ->
      match s.waiter with
      | Some k ->
        s.waiter <- None;
        k vl
      | None -> Queue.push vl s.pending);
  s

let accept s =
  charge s.snode 0;
  let vl =
    if Queue.is_empty s.pending then
      Proc.suspend (fun resume -> s.waiter <- Some resume)
    else Queue.pop s.pending
  in
  { jnode = s.snode; vl }

let connect grid ~src ~dst ~port =
  charge src 0;
  let vl = Padico.connect grid ~src ~dst ~port in
  (match Vio.connect_wait vl with
   | Ok () -> ()
   | Error e -> failwith ("Jsock.connect: " ^ e));
  { jnode = src; vl }

let input_read sock buf =
  let n = Vio.read sock.vl buf in
  charge sock.jnode n;
  if n = 0 then -1 else n

let input_read_fully sock buf =
  let total = Bytebuf.length buf in
  let rec go filled =
    if filled >= total then true
    else begin
      let n = input_read sock (Bytebuf.sub buf filled (total - filled)) in
      if n < 0 then false else go (filled + n)
    end
  in
  go 0

let output_write sock buf =
  charge sock.jnode (Bytebuf.length buf);
  ignore (Vio.write sock.vl buf)

let close sock = Vio.close sock.vl

let vlink sock = sock.vl
