module Bytebuf = Engine.Bytebuf
module Vio = Personalities.Vio
module Vl = Vlink.Vl
module Proc = Engine.Proc

let log = Logs.Src.create "hla"

module Log = (val Logs.src_log log : Logs.LOG)

(* Message kinds. federate -> rtig: *)
let k_join = 1

let k_publish = 2

let k_subscribe = 3

let k_update = 4

let k_tar = 5

let k_resign = 6

(* rtig -> federate: *)
let k_joined = 10

let k_reflect = 11

let k_grant = 12

(* ---------- framing: [u32 len | u8 kind | body] ---------- *)

let w_string buf s =
  Buffer.add_char buf (Char.chr (String.length s land 0xff));
  Buffer.add_char buf (Char.chr ((String.length s lsr 8) land 0xff));
  Buffer.add_string buf s

let w_f64 buf f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr
         (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff))
  done

let send_msg vl ~kind body =
  let frame = Bytebuf.create (5 + String.length body) in
  Bytebuf.set_u32 frame 0 (1 + String.length body);
  Bytebuf.set_u8 frame 4 kind;
  String.iteri (fun i c -> Bytebuf.set frame (5 + i) c) body;
  ignore (Vio.write vl frame)

let recv_msg vl =
  let hdr = Bytebuf.create 4 in
  if not (Vio.read_exact vl hdr) then None
  else begin
    let len = Bytebuf.get_u32 hdr 0 in
    let body = Bytebuf.create len in
    if len > 0 && not (Vio.read_exact vl body) then None
    else Some (Bytebuf.get_u8 body 0, Bytebuf.sub body 1 (len - 1))
  end

type reader = { rbuf : Bytebuf.t; mutable rpos : int }

let r_string r =
  let n =
    Bytebuf.get_u8 r.rbuf r.rpos lor (Bytebuf.get_u8 r.rbuf (r.rpos + 1) lsl 8)
  in
  r.rpos <- r.rpos + 2;
  let s = Bytebuf.to_string (Bytebuf.sub r.rbuf r.rpos n) in
  r.rpos <- r.rpos + n;
  s

let r_f64 r =
  let bits = ref 0L in
  for i = 7 downto 0 do
    bits :=
      Int64.logor
        (Int64.shift_left !bits 8)
        (Int64.of_int (Bytebuf.get_u8 r.rbuf (r.rpos + i)))
  done;
  r.rpos <- r.rpos + 8;
  Int64.float_of_bits !bits

let r_rest r = Bytebuf.sub r.rbuf r.rpos (Bytebuf.length r.rbuf - r.rpos)

(* ---------- RTI gateway ---------- *)

type fed_entry = {
  fe_name : string;
  fe_vl : Vl.t;
  mutable fe_pending_tar : float option;
  mutable fe_time : float;
}

type federation = {
  mutable feds : fed_entry list;
  subs : (string, string list ref) Hashtbl.t; (* class -> federate names *)
}

let try_grant (fedn : federation) =
  (* Conservative lockstep: grant when every federate has a pending
     request; everyone advances to the minimum requested time. *)
  if fedn.feds <> [] && List.for_all (fun f -> f.fe_pending_tar <> None) fedn.feds
  then begin
    let t_min =
      List.fold_left
        (fun acc f ->
           match f.fe_pending_tar with
           | Some t -> Float.min acc t
           | None -> acc)
        infinity fedn.feds
    in
    List.iter
      (fun f ->
         f.fe_pending_tar <- None;
         f.fe_time <- t_min;
         let buf = Buffer.create 16 in
         w_f64 buf t_min;
         send_msg f.fe_vl ~kind:k_grant (Buffer.contents buf))
      fedn.feds
  end

let start_rtig grid node ~port =
  let federations : (string, federation) Hashtbl.t = Hashtbl.create 4 in
  Padico.listen grid node ~port (fun vl ->
      ignore
        (Simnet.Node.spawn node ~name:"rtig-conn" (fun () ->
             let me : fed_entry option ref = ref None in
             let my_fedn : federation option ref = ref None in
             let rec loop () =
               match recv_msg vl with
               | None -> cleanup ()
               | Some (kind, body) ->
                 let r = { rbuf = body; rpos = 0 } in
                 if kind = k_join then begin
                   let federation = r_string r in
                   let name = r_string r in
                   let fedn =
                     match Hashtbl.find_opt federations federation with
                     | Some f -> f
                     | None ->
                       let f = { feds = []; subs = Hashtbl.create 8 } in
                       Hashtbl.replace federations federation f;
                       f
                   in
                   let fe =
                     { fe_name = name; fe_vl = vl; fe_pending_tar = None;
                       fe_time = 0.0 }
                   in
                   fedn.feds <- fe :: fedn.feds;
                   me := Some fe;
                   my_fedn := Some fedn;
                   send_msg vl ~kind:k_joined "";
                   loop ()
                 end
                 else begin
                   match (!me, !my_fedn) with
                   | Some fe, Some fedn ->
                     if kind = k_publish then ignore (r_string r)
                     else if kind = k_subscribe then begin
                       let class_ = r_string r in
                       let subs =
                         match Hashtbl.find_opt fedn.subs class_ with
                         | Some l -> l
                         | None ->
                           let l = ref [] in
                           Hashtbl.replace fedn.subs class_ l;
                           l
                       in
                       if not (List.mem fe.fe_name !subs) then
                         subs := fe.fe_name :: !subs
                     end
                     else if kind = k_update then begin
                       let class_ = r_string r in
                       let payload = r_rest r in
                       match Hashtbl.find_opt fedn.subs class_ with
                       | None -> ()
                       | Some subs ->
                         List.iter
                           (fun other ->
                              if other.fe_name <> fe.fe_name
                                 && List.mem other.fe_name !subs
                              then begin
                                let buf = Buffer.create 64 in
                                w_string buf class_;
                                w_string buf fe.fe_name;
                                Buffer.add_string buf (Bytebuf.to_string payload);
                                send_msg other.fe_vl ~kind:k_reflect
                                  (Buffer.contents buf)
                              end)
                           fedn.feds
                     end
                     else if kind = k_tar then begin
                       fe.fe_pending_tar <- Some (r_f64 r);
                       try_grant fedn
                     end
                     else if kind = k_resign then begin
                       cleanup ();
                       raise Exit
                     end;
                     loop ()
                   | _ ->
                     Log.err (fun m -> m "rtig: message before join");
                     loop ()
                 end
             and cleanup () =
               match (!me, !my_fedn) with
               | Some fe, Some fedn ->
                 fedn.feds <-
                   List.filter (fun f -> f.fe_name <> fe.fe_name) fedn.feds;
                 try_grant fedn
               | _ -> ()
             in
             (try loop () with Exit -> ()))))

(* ---------- federate ---------- *)

type federate = {
  fnode : Simnet.Node.t;
  fvl : Vl.t;
  fname : string;
  callbacks :
    (string, class_:string -> from:string -> Bytebuf.t -> unit) Hashtbl.t;
  mutable time : float;
  mutable grant_waiter : (float -> unit) option;
  mutable reflected : int;
}

let reader_process fed =
  let rec loop () =
    match recv_msg fed.fvl with
    | None -> ()
    | Some (kind, body) ->
      let r = { rbuf = body; rpos = 0 } in
      if kind = k_reflect then begin
        let class_ = r_string r in
        let from = r_string r in
        let payload = r_rest r in
        fed.reflected <- fed.reflected + 1;
        (match Hashtbl.find_opt fed.callbacks class_ with
         | Some cb -> cb ~class_ ~from payload
         | None -> ());
        loop ()
      end
      else if kind = k_grant then begin
        let t = r_f64 r in
        fed.time <- t;
        (match fed.grant_waiter with
         | Some k ->
           fed.grant_waiter <- None;
           k t
         | None -> ());
        loop ()
      end
      else loop ()
  in
  loop ()

let join grid ~src ~rtig ~port ~federation ~name =
  let vl = Padico.connect grid ~src ~dst:rtig ~port in
  (match Vio.connect_wait vl with
   | Ok () -> ()
   | Error e -> failwith ("Hla.join: " ^ e));
  let buf = Buffer.create 64 in
  w_string buf federation;
  w_string buf name;
  send_msg vl ~kind:k_join (Buffer.contents buf);
  (match recv_msg vl with
   | Some (k, _) when k = k_joined -> ()
   | Some _ | None -> failwith "Hla.join: no JOINED ack");
  let fed =
    { fnode = src; fvl = vl; fname = name; callbacks = Hashtbl.create 8;
      time = 0.0; grant_waiter = None; reflected = 0 }
  in
  ignore (Simnet.Node.spawn src ~name:(name ^ "-hla-reader") (fun () ->
      reader_process fed));
  fed

let publish fed ~class_ =
  let buf = Buffer.create 32 in
  w_string buf class_;
  send_msg fed.fvl ~kind:k_publish (Buffer.contents buf)

let subscribe fed ~class_ cb =
  Hashtbl.replace fed.callbacks class_ cb;
  let buf = Buffer.create 32 in
  w_string buf class_;
  send_msg fed.fvl ~kind:k_subscribe (Buffer.contents buf)

let update_attributes fed ~class_ payload =
  let buf = Buffer.create 64 in
  w_string buf class_;
  Buffer.add_string buf (Bytebuf.to_string payload);
  send_msg fed.fvl ~kind:k_update (Buffer.contents buf)

let time_advance_request fed t =
  let rec request () =
    let buf = Buffer.create 16 in
    w_f64 buf t;
    send_msg fed.fvl ~kind:k_tar (Buffer.contents buf);
    let granted =
      Proc.suspend (fun resume -> fed.grant_waiter <- Some resume)
    in
    if granted +. 1e-9 < t then request () else granted
  in
  request ()

let current_time fed = fed.time

let resign fed =
  send_msg fed.fvl ~kind:k_resign "";
  Vio.close fed.fvl

let updates_reflected fed = fed.reflected
