lib/middleware/hla/hla.mli: Engine Padico Simnet
