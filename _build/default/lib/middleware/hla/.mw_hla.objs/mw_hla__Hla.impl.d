lib/middleware/hla/hla.ml: Buffer Char Engine Float Hashtbl Int64 List Logs Padico Personalities Simnet String Vlink
