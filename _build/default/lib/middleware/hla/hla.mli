(** Mini HLA-RTI (IEEE 1516 flavour, Certi-style): a central RTI gateway
    process plus federates connected over VLink. Supports federation
    join/resign, class publication/subscription, attribute updates
    (reflected to subscribers) and conservative time management
    (time-advance requests granted at the minimum requested time across
    federates). A distributed-paradigm middleware coexisting with MPI et
    al. on the same PadicoTM node — the paper's multi-middleware story. *)

(** {1 RTI gateway} *)

val start_rtig : Padico.t -> Simnet.Node.t -> port:int -> unit
(** Run the RTI gateway service on a node. *)

(** {1 Federate} *)

type federate

val join :
  Padico.t -> src:Simnet.Node.t -> rtig:Simnet.Node.t -> port:int ->
  federation:string -> name:string -> federate
(** Blocking join (process context). *)

val publish : federate -> class_:string -> unit
val subscribe : federate -> class_:string ->
  (class_:string -> from:string -> Engine.Bytebuf.t -> unit) -> unit

val update_attributes : federate -> class_:string -> Engine.Bytebuf.t -> unit
(** Reflected asynchronously to all subscribed federates. *)

val time_advance_request : federate -> float -> float
(** Blocks until the RTI grants; returns the granted time (conservative:
    min of all federates' pending requests). *)

val current_time : federate -> float
val resign : federate -> unit
val updates_reflected : federate -> int
