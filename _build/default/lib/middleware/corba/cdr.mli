(** CDR-style marshalling for the mini-ORB, with per-implementation
    {e marshalling profiles}.

    The paper's Figure 3 spread — omniORB at ~238 MB/s versus Mico at
    55 MB/s and ORBacus at 63 MB/s over the same PadicoTM/Myrinet stack —
    comes from the ORBs' internal design: "unlike omniORB, they always copy
    data for marshalling and unmarshalling". Profiles make that structural
    difference real here: zero-copy profiles emit large octet sequences by
    reference (iovec) and decode them as slices; copying profiles marshal
    into contiguous buffers, perform their extra copies (visible to
    {!Engine.Bytebuf.copies_performed}), and pay per-byte CPU. *)

type value =
  | VNull
  | VBool of bool
  | VLong of int
  | VDouble of float
  | VString of string
  | VOctets of Engine.Bytebuf.t
  | VSeq of value list
  | VStruct of (string * value) list

type profile = {
  pname : string;
  fixed_ns : int;  (** per-message marshal (and unmarshal) fixed cost *)
  marshal_per_byte_ns : float;
  unmarshal_per_byte_ns : float;
  marshal_copies : int;  (** extra bulk copies really performed on send *)
  unmarshal_copies : int;
  zero_copy : bool;  (** reference large octet payloads instead of copying *)
}

val omniorb4 : profile
val omniorb3 : profile
val mico : profile
val orbacus : profile
val profile_of_name : string -> profile option
val profiles : profile list

val encoded_size : value -> int
val bulk_size : value -> int
(** Bytes held in [VOctets] payloads (the "data" the ORBs copy or not). *)

val encode_iov : profile -> value -> Engine.Bytebuf.t list
(** Marshal. Zero-copy profiles reference octet payloads; copying profiles
    return one contiguous buffer after performing their extra copies. *)

val decode : profile -> Engine.Bytebuf.t -> value
(** Unmarshal (copying profiles copy octet payloads out). Raises
    [Invalid_argument] on corrupt input. *)

val equal_value : value -> value -> bool
val pp_value : Format.formatter -> value -> unit
