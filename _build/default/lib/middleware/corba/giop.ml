module Bytebuf = Engine.Bytebuf

type msg_type = Request | Reply

type header = {
  msg_type : msg_type;
  oneway : bool;
  request_id : int;
  body_len : int;
}

let header_len = 16

let magic = "GIOP"

let encode_header h =
  let b = Bytebuf.create header_len in
  String.iteri (fun i c -> Bytebuf.set b i c) magic;
  Bytebuf.set_u8 b 4 1 (* version *);
  Bytebuf.set_u8 b 5 (match h.msg_type with Request -> 0 | Reply -> 1);
  Bytebuf.set_u8 b 6 (if h.oneway then 1 else 0);
  Bytebuf.set_u8 b 7 0;
  Bytebuf.set_u32 b 8 h.request_id;
  Bytebuf.set_u32 b 12 h.body_len;
  b

let decode_header b =
  if Bytebuf.length b <> header_len then
    invalid_arg "Giop.decode_header: bad length";
  for i = 0 to 3 do
    if Bytebuf.get b i <> magic.[i] then
      invalid_arg "Giop.decode_header: bad magic"
  done;
  let msg_type =
    match Bytebuf.get_u8 b 5 with
    | 0 -> Request
    | 1 -> Reply
    | _ -> invalid_arg "Giop.decode_header: bad message type"
  in
  { msg_type; oneway = Bytebuf.get_u8 b 6 = 1;
    request_id = Bytebuf.get_u32 b 8; body_len = Bytebuf.get_u32 b 12 }

let prefix ~key ~op =
  let b = Bytebuf.create (4 + String.length key + String.length op) in
  Bytebuf.set_u16 b 0 (String.length key);
  Bytebuf.set_u16 b 2 (String.length op);
  String.iteri (fun i c -> Bytebuf.set b (4 + i) c) key;
  String.iteri (fun i c -> Bytebuf.set b (4 + String.length key + i) c) op;
  b

let encode_request ~profile ~key ~op ~args =
  prefix ~key ~op :: Cdr.encode_iov profile args

let decode_request ~profile body =
  if Bytebuf.length body < 4 then invalid_arg "Giop.decode_request: short";
  let klen = Bytebuf.get_u16 body 0 in
  let olen = Bytebuf.get_u16 body 2 in
  if Bytebuf.length body < 4 + klen + olen then
    invalid_arg "Giop.decode_request: short";
  let key = Bytebuf.to_string (Bytebuf.sub body 4 klen) in
  let op = Bytebuf.to_string (Bytebuf.sub body (4 + klen) olen) in
  let args =
    Cdr.decode profile
      (Bytebuf.sub body (4 + klen + olen)
         (Bytebuf.length body - 4 - klen - olen))
  in
  (key, op, args)

let encode_reply ~profile ~result =
  let status = Bytebuf.create 1 in
  (match result with
   | Ok v ->
     Bytebuf.set_u8 status 0 0;
     status :: Cdr.encode_iov profile v
   | Error e ->
     Bytebuf.set_u8 status 0 1;
     status :: Cdr.encode_iov profile (Cdr.VString e))

let decode_reply ~profile body =
  if Bytebuf.length body < 1 then invalid_arg "Giop.decode_reply: short";
  let rest = Bytebuf.sub body 1 (Bytebuf.length body - 1) in
  match Bytebuf.get_u8 body 0 with
  | 0 -> Ok (Cdr.decode profile rest)
  | 1 ->
    (match Cdr.decode profile rest with
     | Cdr.VString e -> Error e
     | _ -> invalid_arg "Giop.decode_reply: bad exception body")
  | _ -> invalid_arg "Giop.decode_reply: bad status"
