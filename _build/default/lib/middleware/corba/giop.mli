(** GIOP-like wire protocol: message header and request/reply bodies over a
    byte stream. *)

type msg_type = Request | Reply

type header = {
  msg_type : msg_type;
  oneway : bool;
  request_id : int;
  body_len : int;
}

val header_len : int
val encode_header : header -> Engine.Bytebuf.t
val decode_header : Engine.Bytebuf.t -> header
(** Raises [Invalid_argument] on bad magic/version. *)

val encode_request :
  profile:Cdr.profile -> key:string -> op:string -> args:Cdr.value ->
  Engine.Bytebuf.t list
(** Request body as an iovec (zero-copy profiles pass bulk by reference). *)

val decode_request :
  profile:Cdr.profile -> Engine.Bytebuf.t -> string * string * Cdr.value
(** (object key, operation, arguments). *)

val encode_reply :
  profile:Cdr.profile -> result:(Cdr.value, string) result ->
  Engine.Bytebuf.t list

val decode_reply :
  profile:Cdr.profile -> Engine.Bytebuf.t -> (Cdr.value, string) result
