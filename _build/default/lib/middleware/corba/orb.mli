(** Mini-ORB: servants, IORs, proxies, synchronous and oneway invocations.

    The ORB runs unmodified on PadicoTM through the SysWrap personality —
    it believes it is using plain sockets; the selector transparently puts
    it on MadIO/Myrinet, parallel streams, or TCP. Choose a marshalling
    {!Cdr.profile} to get the behaviour of omniORB 3/4, Mico or ORBacus. *)

type t

val init : ?profile:Cdr.profile -> Padico.t -> Simnet.Node.t -> t
(** One ORB per (node, profile). Default profile: omniORB4. *)

val node : t -> Simnet.Node.t
val profile : t -> Cdr.profile

type servant = op:string -> Cdr.value -> (Cdr.value, string) result

val activate : t -> key:string -> servant -> unit
(** Register an object implementation under an object key. *)

val deactivate : t -> key:string -> unit

val serve : t -> port:int -> unit
(** Start accepting GIOP connections on [port] (spawns server processes).
    One call per port. *)

(** {1 Client side} *)

type ior = { ior_node : Simnet.Node.t; ior_port : int; ior_key : string }

val ior_to_string : ior -> string
val ior_of_string : Padico.t -> string -> ior option

type proxy

val resolve : t -> ior -> proxy
(** Connects lazily on first invocation. *)

val invoke : proxy -> op:string -> Cdr.value -> (Cdr.value, string) result
(** Synchronous invocation (process context). Concurrent invocations on one
    proxy are serialized, as on a real GIOP connection. *)

val invoke_oneway : proxy -> op:string -> Cdr.value -> unit
(** Fire-and-forget request (used by the bandwidth benchmarks). *)

val proxy_driver : proxy -> string option
(** Which VLink driver the proxy's connection ended up on (None before the
    first invocation). *)

val requests_served : t -> int
