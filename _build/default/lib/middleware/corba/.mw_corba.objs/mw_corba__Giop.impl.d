lib/middleware/corba/giop.ml: Cdr Engine String
