lib/middleware/corba/cdr.ml: Buffer Calib Char Engine Format Int64 List String
