lib/middleware/corba/orb.ml: Buffer Cdr Engine Fun Giop Hashtbl List Logs Padico Personalities Printexc Printf Simnet String Vlink
