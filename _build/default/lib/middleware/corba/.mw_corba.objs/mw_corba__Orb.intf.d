lib/middleware/corba/orb.mli: Cdr Padico Simnet
