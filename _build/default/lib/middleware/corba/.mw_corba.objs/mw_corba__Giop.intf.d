lib/middleware/corba/giop.mli: Cdr Engine
