lib/middleware/corba/cdr.mli: Engine Format
