module Bytebuf = Engine.Bytebuf

type value =
  | VNull
  | VBool of bool
  | VLong of int
  | VDouble of float
  | VString of string
  | VOctets of Bytebuf.t
  | VSeq of value list
  | VStruct of (string * value) list

type profile = {
  pname : string;
  fixed_ns : int;
  marshal_per_byte_ns : float;
  unmarshal_per_byte_ns : float;
  marshal_copies : int;
  unmarshal_copies : int;
  zero_copy : bool;
}

(* Fixed costs calibrated against Table 1 one-way latencies (see Calib);
   per-byte costs against the Figure 3 plateaus. *)
let omniorb4 =
  { pname = "omniORB-4.0.0"; fixed_ns = Calib.corba_omniorb4_ns;
    marshal_per_byte_ns = 0.0; unmarshal_per_byte_ns = 0.0;
    marshal_copies = 0; unmarshal_copies = 0; zero_copy = true }

let omniorb3 =
  { pname = "omniORB-3.0.2"; fixed_ns = Calib.corba_omniorb3_ns;
    marshal_per_byte_ns = 0.1; unmarshal_per_byte_ns = 0.1;
    marshal_copies = 0; unmarshal_copies = 0; zero_copy = true }

let mico =
  { pname = "Mico-2.3.7"; fixed_ns = Calib.corba_mico_ns;
    marshal_per_byte_ns = Calib.corba_mico_per_byte_ns;
    unmarshal_per_byte_ns = Calib.corba_mico_per_byte_ns *. 0.7;
    marshal_copies = 2; unmarshal_copies = 2; zero_copy = false }

let orbacus =
  { pname = "ORBacus-4.0.5"; fixed_ns = Calib.corba_orbacus_ns;
    marshal_per_byte_ns = Calib.corba_orbacus_per_byte_ns;
    unmarshal_per_byte_ns = Calib.corba_orbacus_per_byte_ns *. 0.7;
    marshal_copies = 1; unmarshal_copies = 1; zero_copy = false }

let profiles = [ omniorb4; omniorb3; mico; orbacus ]

let profile_of_name n = List.find_opt (fun p -> p.pname = n) profiles

let zero_copy_threshold = 256

let rec encoded_size = function
  | VNull -> 1
  | VBool _ -> 2
  | VLong _ | VDouble _ -> 9
  | VString s -> 5 + String.length s
  | VOctets b -> 5 + Bytebuf.length b
  | VSeq items -> 5 + List.fold_left (fun a v -> a + encoded_size v) 0 items
  | VStruct fields ->
    5
    + List.fold_left
        (fun a (name, v) -> a + 5 + String.length name + encoded_size v)
        0 fields

let rec bulk_size = function
  | VNull | VBool _ | VLong _ | VDouble _ | VString _ -> 0
  | VOctets b -> Bytebuf.length b
  | VSeq items -> List.fold_left (fun a v -> a + bulk_size v) 0 items
  | VStruct fields -> List.fold_left (fun a (_, v) -> a + bulk_size v) 0 fields

(* Writer that accumulates small data contiguously and can emit large octet
   payloads by reference. *)
type writer = {
  mutable parts : Bytebuf.t list; (* reversed *)
  mutable cur : Buffer.t;
  by_ref : bool;
}

let writer ~by_ref = { parts = []; cur = Buffer.create 256; by_ref }

let flush_cur w =
  if Buffer.length w.cur > 0 then begin
    w.parts <- Bytebuf.of_string (Buffer.contents w.cur) :: w.parts;
    w.cur <- Buffer.create 256
  end

let w_u8 w v = Buffer.add_char w.cur (Char.chr (v land 0xff))

let w_u32 w v =
  w_u8 w v;
  w_u8 w (v lsr 8);
  w_u8 w (v lsr 16);
  w_u8 w (v lsr 24)

let w_i64 w v =
  w_u32 w (Int64.to_int (Int64.logand v 0xffffffffL));
  w_u32 w (Int64.to_int (Int64.shift_right_logical v 32))

let w_string w s =
  w_u32 w (String.length s);
  Buffer.add_string w.cur s

let w_bytes w (b : Bytebuf.t) =
  if w.by_ref && Bytebuf.length b >= zero_copy_threshold then begin
    flush_cur w;
    w.parts <- b :: w.parts
  end
  else Buffer.add_string w.cur (Bytebuf.to_string b)

let rec w_value w = function
  | VNull -> w_u8 w 0
  | VBool b ->
    w_u8 w 1;
    w_u8 w (if b then 1 else 0)
  | VLong v ->
    w_u8 w 2;
    w_i64 w (Int64.of_int v)
  | VDouble f ->
    w_u8 w 3;
    w_i64 w (Int64.bits_of_float f)
  | VString s ->
    w_u8 w 4;
    w_string w s
  | VOctets b ->
    w_u8 w 5;
    w_u32 w (Bytebuf.length b);
    w_bytes w b
  | VSeq items ->
    w_u8 w 6;
    w_u32 w (List.length items);
    List.iter (w_value w) items
  | VStruct fields ->
    w_u8 w 7;
    w_u32 w (List.length fields);
    List.iter
      (fun (name, v) ->
         w_string w name;
         w_value w v)
      fields

let encode_iov p v =
  let w = writer ~by_ref:p.zero_copy in
  w_value w v;
  flush_cur w;
  let iov = List.rev w.parts in
  if p.zero_copy then iov
  else begin
    (* Copying ORBs materialize contiguous buffers — and then copy them
       again through their internal request queues. *)
    let one = Bytebuf.concat iov in
    let extra = ref one in
    for _ = 2 to p.marshal_copies do
      extra := Bytebuf.copy !extra
    done;
    [ !extra ]
  end

(* Reader over one contiguous buffer. *)
type reader = { buf : Bytebuf.t; mutable pos : int; copy_out : bool }

let fail () = invalid_arg "Cdr.decode: corrupt input"

let r_u8 r =
  if r.pos >= Bytebuf.length r.buf then fail ();
  let v = Bytebuf.get_u8 r.buf r.pos in
  r.pos <- r.pos + 1;
  v

let r_u32 r =
  let a = r_u8 r in
  let b = r_u8 r in
  let c = r_u8 r in
  let d = r_u8 r in
  a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)

let r_i64 r =
  let lo = r_u32 r in
  let hi = r_u32 r in
  Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int hi) 32)

let r_slice r n =
  if n < 0 || r.pos + n > Bytebuf.length r.buf then fail ();
  let b = Bytebuf.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  b

let r_string r =
  let n = r_u32 r in
  Bytebuf.to_string (r_slice r n)

let rec r_value r =
  match r_u8 r with
  | 0 -> VNull
  | 1 -> VBool (r_u8 r = 1)
  | 2 -> VLong (Int64.to_int (r_i64 r))
  | 3 -> VDouble (Int64.float_of_bits (r_i64 r))
  | 4 -> VString (r_string r)
  | 5 ->
    let n = r_u32 r in
    let slice = r_slice r n in
    VOctets (if r.copy_out then Bytebuf.copy slice else slice)
  | 6 ->
    let n = r_u32 r in
    VSeq (List.init n (fun _ -> r_value r))
  | 7 ->
    let n = r_u32 r in
    VStruct
      (List.init n (fun _ ->
           let name = r_string r in
           (name, r_value r)))
  | _ -> fail ()

let decode p buf =
  let buf =
    (* Copying ORBs drag the request through internal buffers first. *)
    if p.unmarshal_copies > 1 then begin
      let b = ref buf in
      for _ = 2 to p.unmarshal_copies do
        b := Bytebuf.copy !b
      done;
      !b
    end
    else buf
  in
  let r = { buf; pos = 0; copy_out = not p.zero_copy } in
  let v = r_value r in
  if r.pos <> Bytebuf.length buf then fail ();
  v

let rec equal_value a b =
  match (a, b) with
  | VNull, VNull -> true
  | VBool x, VBool y -> x = y
  | VLong x, VLong y -> x = y
  | VDouble x, VDouble y -> x = y
  | VString x, VString y -> x = y
  | VOctets x, VOctets y -> Bytebuf.equal x y
  | VSeq x, VSeq y ->
    List.length x = List.length y && List.for_all2 equal_value x y
  | VStruct x, VStruct y ->
    List.length x = List.length y
    && List.for_all2
         (fun (n1, v1) (n2, v2) -> n1 = n2 && equal_value v1 v2)
         x y
  | (VNull | VBool _ | VLong _ | VDouble _ | VString _ | VOctets _ | VSeq _
    | VStruct _), _ ->
    false

let rec pp_value fmt = function
  | VNull -> Format.fprintf fmt "null"
  | VBool b -> Format.fprintf fmt "%b" b
  | VLong v -> Format.fprintf fmt "%d" v
  | VDouble f -> Format.fprintf fmt "%g" f
  | VString s -> Format.fprintf fmt "%S" s
  | VOctets b -> Format.fprintf fmt "<%d octets>" (Bytebuf.length b)
  | VSeq items ->
    Format.fprintf fmt "[@[%a@]]"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";@ ")
         pp_value)
      items
  | VStruct fields ->
    Format.fprintf fmt "{@[%a@]}"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";@ ")
         (fun f (n, v) -> Format.fprintf f "%s=%a" n pp_value v))
      fields
