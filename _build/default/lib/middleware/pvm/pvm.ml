module Bytebuf = Engine.Bytebuf
module Ct = Circuit.Ct
module Madpers = Personalities.Madpers
module Proc = Engine.Proc

(* PVM-style task ids: a base offset plus the rank, so code cannot confuse
   tids with ranks. *)
let tid_base = 0x40000

(* Typed pack stream: each item is [u8 kind | payload]. Kinds: 1 int,
   2 double, 3 string, 4 bytes. *)
let k_int = 1

let k_double = 2

let k_str = 3

let k_bytes = 4

type message = { m_tid : int; m_tag : int; m_payload : Bytebuf.t }

type pending = {
  p_tid : int;
  p_tag : int;
  mutable p_result : message option;
  mutable p_waiter : (message -> unit) option;
}

type t = {
  mp : Madpers.t;
  unexpected : message Queue.t;
  mutable posted : pending list;
}

type sendbuf = { owner : t; buf : Buffer.t; mutable consumed : bool }

type recvbuf = { src_tid : int; tag : int; data : Bytebuf.t; mutable pos : int }

let rank t = Madpers.rank t.mp

let size t = Madpers.size t.mp

let node t = Ct.node (Madpers.circuit t.mp)

let mytid t = tid_base + rank t

let tid_of_rank t r =
  if r < 0 || r >= size t then invalid_arg "Pvm.tid_of_rank";
  tid_base + r

let tids t = Array.init (size t) (fun r -> tid_base + r)

let rank_of_tid t tid =
  let r = tid - tid_base in
  if r < 0 || r >= size t then invalid_arg "Pvm: bad task id";
  r

let matches ~tid ~tag (m : message) =
  (tid = -1 || tid = m.m_tid) && (tag = -1 || tag = m.m_tag)

let on_message t m =
  let rec find acc = function
    | [] ->
      Queue.push m t.unexpected;
      t.posted <- List.rev acc
    | p :: rest ->
      if p.p_result = None && matches ~tid:p.p_tid ~tag:p.p_tag m then begin
        p.p_result <- Some m;
        t.posted <- List.rev_append acc rest;
        match p.p_waiter with
        | Some k ->
          p.p_waiter <- None;
          k m
        | None -> ()
      end
      else find (p :: acc) rest
  in
  find [] t.posted

let init cts =
  Array.map
    (fun ct ->
       let mp = Madpers.attach ct in
       let t = { mp; unexpected = Queue.create (); posted = [] } in
       Madpers.set_recv mp (fun ~src inc ->
           let tag = Ct.unpack_int inc in
           let payload = Ct.unpack inc (Ct.remaining inc) in
           Simnet.Node.cpu_async (node t) Calib.mpi_ns (fun () ->
               on_message t
                 { m_tid = tid_base + src; m_tag = tag; m_payload = payload }));
       t)
    cts

(* ---------- packing ---------- *)

let initsend t = { owner = t; buf = Buffer.create 256; consumed = false }

let add_u32 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))

let add_i64 b v =
  add_u32 b (Int64.to_int (Int64.logand v 0xffffffffL));
  add_u32 b (Int64.to_int (Int64.shift_right_logical v 32))

let check_open sb = if sb.consumed then invalid_arg "Pvm: send buffer consumed"

let pkint sb v =
  check_open sb;
  Buffer.add_char sb.buf (Char.chr k_int);
  add_i64 sb.buf (Int64.of_int v)

let pkdouble sb v =
  check_open sb;
  Buffer.add_char sb.buf (Char.chr k_double);
  add_i64 sb.buf (Int64.bits_of_float v)

let pkstr sb s =
  check_open sb;
  Buffer.add_char sb.buf (Char.chr k_str);
  add_u32 sb.buf (String.length s);
  Buffer.add_string sb.buf s

let pkbytes sb b =
  check_open sb;
  Buffer.add_char sb.buf (Char.chr k_bytes);
  add_u32 sb.buf (Bytebuf.length b);
  Buffer.add_string sb.buf (Bytebuf.to_string b)

let emit sb ~dst_rank ~tag =
  let t = sb.owner in
  Simnet.Node.cpu (node t) Calib.mpi_ns;
  let out = Madpers.begin_packing t.mp ~dst:dst_rank in
  let tagbuf = Bytebuf.create 8 in
  Bytebuf.set_i64 tagbuf 0 (Int64.of_int tag);
  Madpers.pack out tagbuf;
  Madpers.pack out (Bytebuf.of_string (Buffer.contents sb.buf));
  Madpers.end_packing out

let send sb ~tid ~tag =
  check_open sb;
  sb.consumed <- true;
  emit sb ~dst_rank:(rank_of_tid sb.owner tid) ~tag

let mcast sb ~tids ~tag =
  check_open sb;
  sb.consumed <- true;
  List.iter (fun tid -> emit sb ~dst_rank:(rank_of_tid sb.owner tid) ~tag) tids

(* ---------- receiving ---------- *)

let take_unexpected t ~tid ~tag =
  let n = Queue.length t.unexpected in
  let result = ref None in
  for _ = 1 to n do
    let m = Queue.pop t.unexpected in
    if !result = None && matches ~tid ~tag m then result := Some m
    else Queue.push m t.unexpected
  done;
  !result

let to_recvbuf (m : message) =
  { src_tid = m.m_tid; tag = m.m_tag; data = m.m_payload; pos = 0 }

let nrecv t ?(tid = -1) ?(tag = -1) () =
  Option.map to_recvbuf (take_unexpected t ~tid ~tag)

let recv t ?(tid = -1) ?(tag = -1) () =
  match take_unexpected t ~tid ~tag with
  | Some m -> to_recvbuf m
  | None ->
    let p = { p_tid = tid; p_tag = tag; p_result = None; p_waiter = None } in
    t.posted <- t.posted @ [ p ];
    to_recvbuf (Proc.suspend (fun resume -> p.p_waiter <- Some resume))

let probe t ?(tid = -1) ?(tag = -1) () =
  Queue.fold (fun acc m -> acc || matches ~tid ~tag m) false t.unexpected

let bufinfo rb = (rb.src_tid, rb.tag)

let expect rb kind what =
  if rb.pos >= Bytebuf.length rb.data then
    invalid_arg (Printf.sprintf "Pvm.upk%s: buffer exhausted" what);
  let k = Bytebuf.get_u8 rb.data rb.pos in
  if k <> kind then
    invalid_arg (Printf.sprintf "Pvm.upk%s: type mismatch (found kind %d)" what k);
  rb.pos <- rb.pos + 1

let upkint rb =
  expect rb k_int "int";
  let v = Int64.to_int (Bytebuf.get_i64 rb.data rb.pos) in
  rb.pos <- rb.pos + 8;
  v

let upkdouble rb =
  expect rb k_double "double";
  let v = Int64.float_of_bits (Bytebuf.get_i64 rb.data rb.pos) in
  rb.pos <- rb.pos + 8;
  v

let upkstr rb =
  expect rb k_str "str";
  let n = Bytebuf.get_u32 rb.data rb.pos in
  rb.pos <- rb.pos + 4;
  let s = Bytebuf.to_string (Bytebuf.sub rb.data rb.pos n) in
  rb.pos <- rb.pos + n;
  s

let upkbytes rb =
  expect rb k_bytes "bytes";
  let n = Bytebuf.get_u32 rb.data rb.pos in
  rb.pos <- rb.pos + 4;
  let b = Bytebuf.sub rb.data rb.pos n in
  rb.pos <- rb.pos + n;
  b

(* Dissemination barrier on a reserved tag. *)
let barrier_tag = 0x7FFF_0000

let barrier t =
  let n = size t and r = rank t in
  if n > 1 then begin
    let k = ref 0 in
    while 1 lsl !k < n do
      let dist = 1 lsl !k in
      let sb = initsend t in
      pkint sb !k;
      send sb ~tid:(tid_of_rank t ((r + dist) mod n)) ~tag:(barrier_tag + !k);
      ignore
        (recv t
           ~tid:(tid_of_rank t ((r - dist + n) mod n))
           ~tag:(barrier_tag + !k) ());
      incr k
    done
  end
