lib/middleware/pvm/pvm.ml: Array Buffer Calib Char Circuit Engine Int64 List Option Personalities Printf Queue Simnet String
