lib/middleware/pvm/pvm.mli: Circuit Engine Simnet
