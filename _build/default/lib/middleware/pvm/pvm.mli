(** Mini-PVM: the other parallel middleware the paper names alongside MPI
    ("a MPI-based component could be connected to a PVM-based component").

    PVM semantics differ from MPI where it matters: tasks are addressed by
    {e task id} (tid) rather than rank; messages are built in a pack
    buffer ([initsend] / [pk*] / [send]) and read back with [upk*] after a
    receive; [mcast] sends one message to an explicit tid list. Runs over
    the Circuit parallel abstract interface like the MPI port. Blocking
    calls run in process context. *)

type t

val init : Circuit.Ct.t array -> t array
(** One task handle per circuit member. Tids are dense but not equal to
    ranks (they carry a PVM-style base offset). *)

val mytid : t -> int
val tids : t -> int array
(** All task ids of the group, in rank order. *)

val tid_of_rank : t -> int -> int
val node : t -> Simnet.Node.t

(** {1 Send buffers} *)

type sendbuf

val initsend : t -> sendbuf
val pkint : sendbuf -> int -> unit
val pkdouble : sendbuf -> float -> unit
val pkstr : sendbuf -> string -> unit
val pkbytes : sendbuf -> Engine.Bytebuf.t -> unit

val send : sendbuf -> tid:int -> tag:int -> unit
(** Emit the packed message to one task. The buffer is consumed. *)

val mcast : sendbuf -> tids:int list -> tag:int -> unit
(** Emit the packed message to several tasks. The buffer is consumed. *)

(** {1 Receiving} *)

type recvbuf

val recv : t -> ?tid:int -> ?tag:int -> unit -> recvbuf
(** Blocking receive; [tid]/[tag] default to wildcards (-1). *)

val nrecv : t -> ?tid:int -> ?tag:int -> unit -> recvbuf option
(** Non-blocking receive. *)

val probe : t -> ?tid:int -> ?tag:int -> unit -> bool
val bufinfo : recvbuf -> int * int
(** (source tid, tag). *)

val upkint : recvbuf -> int
val upkdouble : recvbuf -> float
val upkstr : recvbuf -> string
val upkbytes : recvbuf -> Engine.Bytebuf.t
(** Each [upk*] must mirror the corresponding [pk*]; raises
    [Invalid_argument] on a type mismatch (as real PVM corrupts, we
    check). *)

(** {1 Group operations} *)

val barrier : t -> unit
