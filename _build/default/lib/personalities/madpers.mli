(** Virtual-Madeleine personality over Circuit: the Madeleine packing API
    (begin_packing / pack / end_packing, message callback with unpack
    cursor) re-exposed on top of the abstract parallel interface — what
    lets the existing MPICH/Madeleine port run unchanged inside PadicoTM.
    Adds a blocking receive for process-style runtimes. *)

type t

val attach : Circuit.Ct.t -> t
val circuit : t -> Circuit.Ct.t
val rank : t -> int
val size : t -> int

type outgoing

val begin_packing : t -> dst:int -> outgoing
val pack : outgoing -> ?mode:Madeleine.Mad.pack_mode -> Engine.Bytebuf.t -> unit
val end_packing : outgoing -> unit

val set_recv : t -> (src:int -> Circuit.Ct.incoming -> unit) -> unit
(** Callback style (non-blocking context). *)

val recv_blocking : t -> int * Circuit.Ct.incoming
(** Blocking style (process context): next message (source, cursor), in
    arrival order. Mutually exclusive with {!set_recv}. *)
