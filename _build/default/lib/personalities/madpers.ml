module Bytebuf = Engine.Bytebuf
module Ct = Circuit.Ct
module Proc = Engine.Proc

type mode = Cb of (src:int -> Ct.incoming -> unit) | Queueing

type t = {
  ct : Ct.t;
  inbox : (int * Ct.incoming) Proc.Mailbox.t;
  mutable mode : mode;
}

type outgoing = { out : Ct.outgoing; t : t }

let charge t = Simnet.Node.cpu_async (Ct.node t.ct) Calib.personality_ns (fun () -> ())

let attach ct =
  let t = { ct; inbox = Proc.Mailbox.create (); mode = Queueing } in
  Ct.set_recv ct (fun inc ->
      match t.mode with
      | Cb f -> f ~src:(Ct.incoming_src inc) inc
      | Queueing -> Proc.Mailbox.send t.inbox (Ct.incoming_src inc, inc));
  t

let circuit t = t.ct
let rank t = Ct.rank t.ct
let size t = Ct.size t.ct

let begin_packing t ~dst =
  charge t;
  { out = Ct.begin_packing t.ct ~dst; t }

let pack o ?(mode = Madeleine.Mad.Send_cheaper) piece =
  let piece =
    match mode with
    | Madeleine.Mad.Send_safer -> Bytebuf.copy piece
    | Madeleine.Mad.Send_later | Madeleine.Mad.Send_cheaper -> piece
  in
  Ct.pack o.out piece

let end_packing o = Ct.end_packing o.out

let set_recv t f = t.mode <- Cb f

let recv_blocking t =
  (match t.mode with
   | Cb _ -> invalid_arg "Madpers.recv_blocking: callback mode active"
   | Queueing -> ());
  Proc.Mailbox.recv t.inbox
