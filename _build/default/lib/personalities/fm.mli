(** FastMessage 2.0-style personality over Circuit: active messages with
    registered handlers. [FM_begin_message dest handler] / piece sends /
    [FM_end_message]; on the receiver the registered handler runs with a
    stream cursor. *)

type t

val attach : Circuit.Ct.t -> t
(** Takes over the circuit's receive path. *)

val register_handler :
  t -> id:int -> (src:int -> Circuit.Ct.incoming -> unit) -> unit

type stream

val begin_message : t -> dest:int -> handler:int -> stream
val send_piece : stream -> Engine.Bytebuf.t -> unit
val send_piece_int : stream -> int -> unit
val end_message : stream -> unit

val messages_handled : t -> int
