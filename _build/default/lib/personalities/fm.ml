module Bytebuf = Engine.Bytebuf
module Ct = Circuit.Ct

type t = {
  ct : Ct.t;
  handlers : (int, src:int -> Ct.incoming -> unit) Hashtbl.t;
  mutable handled : int;
}

type stream = { out : Ct.outgoing }

let charge ct = Simnet.Node.cpu_async (Ct.node ct) Calib.personality_ns (fun () -> ())

let attach ct =
  let t = { ct; handlers = Hashtbl.create 16; handled = 0 } in
  Ct.set_recv ct (fun inc ->
      let id = Ct.unpack_int inc in
      match Hashtbl.find_opt t.handlers id with
      | Some h ->
        t.handled <- t.handled + 1;
        h ~src:(Ct.incoming_src inc) inc
      | None -> ());
  t

let register_handler t ~id h = Hashtbl.replace t.handlers id h

let begin_message t ~dest ~handler =
  charge t.ct;
  let out = Ct.begin_packing t.ct ~dst:dest in
  Ct.pack_int out handler;
  { out }

let send_piece st piece = Ct.pack st.out piece

let send_piece_int st v = Ct.pack_int st.out v

let end_message st = Ct.end_packing st.out

let messages_handled t = t.handled
