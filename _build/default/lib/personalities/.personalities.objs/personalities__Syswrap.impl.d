lib/personalities/syswrap.ml: Calib Engine Hashtbl Padico Queue Simnet Vlink
