lib/personalities/fm.mli: Circuit Engine
