lib/personalities/syswrap.mli: Engine Padico Simnet Vlink
