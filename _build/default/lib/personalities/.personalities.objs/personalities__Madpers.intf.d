lib/personalities/madpers.mli: Circuit Engine Madeleine
