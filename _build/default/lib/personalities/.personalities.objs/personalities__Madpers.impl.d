lib/personalities/madpers.ml: Calib Circuit Engine Madeleine Simnet
