lib/personalities/aio.mli: Engine Vlink
