lib/personalities/fm.ml: Calib Circuit Engine Hashtbl Simnet
