lib/personalities/vio.ml: Buffer Calib Engine Simnet Vlink
