lib/personalities/vio.mli: Engine Vlink
