lib/personalities/aio.ml: Calib Engine List Simnet Vlink
