examples/lossy_stream.mli:
