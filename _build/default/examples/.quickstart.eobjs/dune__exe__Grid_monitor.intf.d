examples/grid_monitor.mli:
