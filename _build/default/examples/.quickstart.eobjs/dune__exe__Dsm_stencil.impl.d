examples/dsm_stencil.ml: Array Engine List Mw_dsm Padico Printexc Printf Simnet
