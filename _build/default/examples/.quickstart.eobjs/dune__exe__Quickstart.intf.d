examples/quickstart.mli:
