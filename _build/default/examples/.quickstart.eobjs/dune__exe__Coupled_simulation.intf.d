examples/coupled_simulation.mli:
