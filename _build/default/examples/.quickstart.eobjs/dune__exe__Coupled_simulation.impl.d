examples/coupled_simulation.ml: Array Engine Float Format List Mw_corba Mw_mpi Padico Printf Simnet
