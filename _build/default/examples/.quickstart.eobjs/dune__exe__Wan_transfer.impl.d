examples/wan_transfer.ml: Engine Padico Personalities Printf Selector Simnet
