examples/dsm_stencil.mli:
