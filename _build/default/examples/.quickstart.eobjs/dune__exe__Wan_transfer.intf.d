examples/wan_transfer.mli:
