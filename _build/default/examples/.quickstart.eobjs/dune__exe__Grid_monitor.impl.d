examples/grid_monitor.ml: Array Engine List Mw_mpi Mw_soap Padico Printf Simnet
