examples/lossy_stream.ml: Drivers Engine List Methods Netaccess Printf Simnet
