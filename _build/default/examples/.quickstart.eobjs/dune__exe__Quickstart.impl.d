examples/quickstart.ml: Array Circuit Engine Format Padico Personalities Printf Selector Simnet Vlink
