(* Loss-tolerant media streaming with VRP across a lossy intercontinental
   link: a "camera" pushes fixed-rate frames; the viewer tolerates a
   bounded fraction of dropped frames in exchange for 3x the goodput TCP
   would deliver on the same link.

     dune exec examples/lossy_stream.exe *)

module Bb = Engine.Bytebuf
module Vrp = Methods.Vrp

let frame_size = 10_000

let frames = 400

let stream ~tolerance =
  let net = Simnet.Net.create () in
  let cam = Simnet.Net.add_node net "camera" in
  let viewer = Simnet.Net.add_node net "viewer" in
  let seg =
    Simnet.Net.add_segment net (Simnet.Presets.transcontinental_loss 0.07)
      [ cam; viewer ]
  in
  let ucam = Drivers.Udp.attach seg cam in
  let uview = Drivers.Udp.attach seg viewer in
  let receiver =
    Vrp.create_receiver (Netaccess.Sysio.get viewer) uview ~port:554 ()
  in
  let sender =
    Vrp.create_sender (Netaccess.Sysio.get cam) ucam
      ~dst:(Simnet.Node.id viewer) ~dst_port:554 ~tolerance ~rate_bps:560e3
  in
  ignore
    (Simnet.Node.spawn cam ~name:"camera" (fun () ->
         let frame = Bb.create frame_size in
         for i = 1 to frames do
           Bb.set_u32 frame 0 i;
           Vrp.send sender frame;
           (* ~17 ms per frame: a 60-fps-ish capture rate, the network is
              the bottleneck. *)
           Engine.Proc.sleep (Simnet.Net.sim net) 17_000_000
         done;
         Vrp.finish sender));
  Simnet.Net.run net ~until:(Engine.Time.sec 600);
  let elapsed = Engine.Sim.now (Simnet.Net.sim net) in
  Printf.printf
    "tolerance %3.0f%%: delivered %5.2f MB, lost %5.1f%% of bytes, \
     %4.0f KB/s goodput, retx %d, abandoned %d, done in %4.1f s\n"
    (tolerance *. 100.0)
    (float_of_int (Vrp.delivered_bytes receiver) /. 1e6)
    (Vrp.observed_loss_ratio receiver *. 100.0)
    (float_of_int (Vrp.delivered_bytes receiver)
     /. Engine.Time.to_float_sec elapsed /. 1e3)
    (Vrp.chunks_retransmitted sender)
    (Vrp.chunks_abandoned sender)
    (Engine.Time.to_float_sec elapsed)

let () =
  Printf.printf
    "Streaming %d frames of %d bytes over a 7%%-loss intercontinental link\n\n"
    frames frame_size;
  List.iter (fun t -> stream ~tolerance:t) [ 0.0; 0.05; 0.10; 0.20 ];
  print_newline ();
  print_endline
    "tolerance 0 behaves like a reliable protocol (every gap repaired);";
  print_endline
    "a 10-20% budget keeps the sender at full rate through random loss —";
  print_endline "the paper's 150 KB/s (TCP) vs 500 KB/s (VRP) tradeoff."
