(* The paper's §2.1 monitoring scenario: "a grid application which supports
   connection and disconnection from the user to visualize and/or monitor
   the ongoing computation... likely to use at least two middleware
   systems". Here: an MPI job instrumented with a SOAP status service; a
   user connects mid-run over the WAN, polls, disconnects, reconnects.

     dune exec examples/grid_monitor.exe *)

module Bb = Engine.Bytebuf
module Mpi = Mw_mpi.Mpi
module Soap = Mw_soap.Soap

let np = 3

let () =
  let grid = Padico.create () in
  let cluster =
    List.init np (fun i -> Padico.add_node grid (Printf.sprintf "w%d" i))
  in
  let laptop = Padico.add_node grid "laptop" in
  ignore (Padico.add_segment grid Simnet.Presets.myrinet2000 cluster);
  ignore
    (Padico.add_segment grid Simnet.Presets.vthd (laptop :: cluster));
  let cts = Padico.circuit grid ~name:"job" cluster in
  let comms = Mpi.init cts in

  (* The computation: iterative all-reduce "residual" shrinking each step. *)
  let progress = ref 0 in
  let residual = ref 1.0 in
  let worker rank comm () =
    let local = ref (1.0 +. (0.1 *. float_of_int rank)) in
    for step = 1 to 120 do
      (* Fake local work. *)
      Simnet.Node.cpu (Mpi.node comm) (Engine.Time.us 500);
      local := !local *. 0.95;
      let combined =
        Mpi.allreduce comm ~op:Mpi.Max ~datatype:Mpi.Float_t
          (Mpi.floats_to_buf [| !local |])
      in
      if rank = 0 then begin
        progress := step;
        residual := (Mpi.floats_of_buf combined).(0)
      end
    done
  in
  List.iteri
    (fun rank node ->
       ignore
         (Padico.spawn grid node
            ~name:(Printf.sprintf "worker%d" rank)
            (worker rank comms.(rank))))
    cluster;

  (* The SOAP monitoring endpoint on the master worker. *)
  let master = List.hd cluster in
  let server = Soap.serve grid master ~port:8080 in
  Soap.register server ~name:"progress" (fun _ ->
      Ok [ Soap.SInt !progress; Soap.SFloat !residual ]);

  (* The user's laptop: connect, poll a few times, disconnect, reconnect
     later — dynamic connections are the point of the distributed side. *)
  ignore
    (Padico.spawn grid laptop ~name:"user" (fun () ->
         let session label polls =
           let c = Soap.connect grid ~src:laptop ~dst:master ~port:8080 in
           for _ = 1 to polls do
             (match Soap.call c ~name:"progress" [] with
              | Ok [ Soap.SInt step; Soap.SFloat r ] ->
                Printf.printf "[%s] step %3d, residual %.4f\n" label step r
              | Ok _ | Error _ -> print_endline "unexpected reply");
             Engine.Proc.sleep (Simnet.Node.sim laptop) (Engine.Time.ms 20)
           done;
           Soap.close c
         in
         session "session-1" 4;
         Printf.printf "[user] disconnecting for a while...\n";
         Engine.Proc.sleep (Simnet.Node.sim laptop) (Engine.Time.ms 60);
         session "session-2" 4));

  Padico.run grid;
  Printf.printf "job finished: %d steps, final residual %.4f, %d SOAP polls\n"
    !progress !residual
    (Soap.requests_served server)
