(* Distributed shared memory: a block-partitioned stencil where neighbours
   read each other's border pages through DSM coherence instead of message
   passing — the non-message-based parallel middleware the paper lists
   among PadicoTM's supported systems.

     dune exec examples/dsm_stencil.exe *)

module Bb = Engine.Bytebuf
module Dsm = Mw_dsm.Dsm

let np = 4

let rounds = 12

let () =
  let grid = Padico.create () in
  let nodes =
    List.init np (fun i -> Padico.add_node grid (Printf.sprintf "n%d" i))
  in
  ignore (Padico.add_segment grid Simnet.Presets.myrinet2000 nodes);
  let cts = Padico.circuit grid ~name:"dsm" nodes in
  (* One page per rank holding its current value (u32 fixed-point). *)
  let dsms = Dsm.create cts ~pages:np ~page_size:4096 in
  let phase node k =
    Engine.Proc.sleep (Simnet.Node.sim node) (k * 5_000_000)
  in
  let handles =
    List.mapi
      (fun rank node ->
         Padico.spawn grid node ~name:(Printf.sprintf "stencil%d" rank)
           (fun () ->
              let d = List.nth (Array.to_list dsms) rank in
              (* Initial value: 1000 * (rank+1). *)
              Dsm.write_u32 d ~page:rank ~off:0 (1000 * (rank + 1));
              for r = 1 to rounds do
                phase node (2 * r);
                (* Read both neighbours' pages through coherence. *)
                let left = Dsm.read_u32 d ~page:((rank + np - 1) mod np) ~off:0 in
                let right = Dsm.read_u32 d ~page:((rank + 1) mod np) ~off:0 in
                let mine = Dsm.read_u32 d ~page:rank ~off:0 in
                phase node ((2 * r) + 1);
                Dsm.write_u32 d ~page:rank ~off:0 ((left + right + mine) / 3)
              done))
      nodes
  in
  Padico.run grid;
  List.iter
    (fun h ->
       match Engine.Proc.result h with
       | Some (Ok ()) -> ()
       | Some (Error e) -> failwith (Printexc.to_string e)
       | None -> failwith "stencil rank did not finish")
    handles;
  (* Everyone converges towards the average (2500). *)
  Array.iteri
    (fun rank d ->
       Printf.printf
         "rank %d: value %4d   (local hits %d, remote fetches %d, \
          invalidations %d)\n"
         rank
         (Dsm.read_u32 d ~page:rank ~off:0)
         (Dsm.local_hits d) (Dsm.remote_fetches d)
         (Dsm.invalidations_received d))
    dsms;
  print_endline "values converge toward 2500 via DSM coherence traffic only"
