(* Code coupling, GridCCM-style (the paper's §2.1 component scenario):

   - a parallel "solver" component: 4 MPI ranks on cluster A running a 1-D
     Jacobi heat diffusion with halo exchange over Myrinet;
   - its master rank exposes a CORBA interface (get_state / set_boundary);
   - a "visualization" component on cluster B, across a WAN, steering the
     simulation through CORBA while the solver keeps exchanging halos.

   Two middleware systems, two paradigms, one PadicoTM runtime.

     dune exec examples/coupled_simulation.exe *)

module Bb = Engine.Bytebuf
module Mpi = Mw_mpi.Mpi
module Orb = Mw_corba.Orb
module Cdr = Mw_corba.Cdr

let cells_per_rank = 64

let np = 4

let () =
  (* Grid: cluster A (4 nodes, Myrinet + LAN), remote user b1 via WAN. *)
  let grid = Padico.create () in
  let cluster =
    List.init np (fun i -> Padico.add_node grid (Printf.sprintf "a%d" i))
  in
  let user = Padico.add_node grid "viz" in
  ignore (Padico.add_segment grid Simnet.Presets.myrinet2000 cluster);
  ignore (Padico.add_segment grid Simnet.Presets.vthd (user :: cluster));
  let cts = Padico.circuit grid ~name:"solver" cluster in
  let comms = Mpi.init cts in

  (* Shared control cell on the master: boundary temperature, set remotely. *)
  let boundary = ref 100.0 in
  let iterations_done = ref 0 in
  let snapshot = ref [||] in

  (* The solver ranks: Jacobi sweeps with halo exchange, gather to master. *)
  let solver rank comm () =
    let u = Array.make cells_per_rank 0.0 in
    let tag_halo_l = 1 and tag_halo_r = 2 and tag_ctl = 3 in
    for iter = 1 to 200 do
      (* Local compute for this sweep (keeps virtual time realistic so the
         remote monitor observes the run in progress). *)
      Simnet.Node.cpu (Mpi.node comm) (Engine.Time.us 1_500);
      (* Master broadcasts the current boundary value (steering input). *)
      let ctl =
        if rank = 0 then Some (Mpi.floats_to_buf [| !boundary |]) else None
      in
      let ctl = Mpi.bcast comm ~root:0 ctl in
      let b = (Mpi.floats_of_buf ctl).(0) in
      ignore tag_ctl;
      (* Halo exchange with neighbours. *)
      let left = rank - 1 and right = rank + 1 in
      if left >= 0 then
        Mpi.send comm ~dst:left ~tag:tag_halo_l (Mpi.floats_to_buf [| u.(0) |]);
      if right < np then
        Mpi.send comm ~dst:right ~tag:tag_halo_r
          (Mpi.floats_to_buf [| u.(cells_per_rank - 1) |]);
      let halo_r =
        if right < np then
          (Mpi.floats_of_buf
             (let _, _, d = Mpi.recv comm ~source:right ~tag:tag_halo_l () in
              d)).(0)
        else b (* right boundary held at the steered temperature *)
      in
      let halo_l =
        if left >= 0 then
          (Mpi.floats_of_buf
             (let _, _, d = Mpi.recv comm ~source:left ~tag:tag_halo_r () in
              d)).(0)
        else 0.0 (* left boundary fixed cold *)
      in
      (* Jacobi sweep. *)
      let next = Array.make cells_per_rank 0.0 in
      for i = 0 to cells_per_rank - 1 do
        let l = if i = 0 then halo_l else u.(i - 1) in
        let r = if i = cells_per_rank - 1 then halo_r else u.(i + 1) in
        next.(i) <- 0.5 *. (l +. r)
      done;
      Array.blit next 0 u 0 cells_per_rank;
      (* Periodic gather so the master can serve fresh state. *)
      if iter mod 10 = 0 then begin
        match Mpi.gather comm ~root:0 (Mpi.floats_to_buf u) with
        | Some parts ->
          snapshot :=
            Array.concat (Array.to_list (Array.map Mpi.floats_of_buf parts));
          iterations_done := iter
        | None -> ()
      end
    done
  in
  List.iteri
    (fun rank node ->
       ignore
         (Padico.spawn grid node
            ~name:(Printf.sprintf "solver-%d" rank)
            (solver rank comms.(rank))))
    cluster;

  (* CORBA face of the component, served by the master node. *)
  let master = List.hd cluster in
  let orb = Orb.init grid master in
  Orb.activate orb ~key:"solver" (fun ~op args ->
      match (op, args) with
      | "get_state", _ ->
        Ok
          (Cdr.VStruct
             [ ("iteration", Cdr.VLong !iterations_done);
               ("cells", Cdr.VLong (Array.length !snapshot));
               ("t_mid",
                Cdr.VDouble
                  (if Array.length !snapshot = 0 then 0.0
                   else !snapshot.(Array.length !snapshot / 2)));
               ("t_max",
                Cdr.VDouble (Array.fold_left Float.max 0.0 !snapshot)) ])
      | "set_boundary", Cdr.VDouble t ->
        boundary := t;
        Ok Cdr.VNull
      | _ -> Error "BAD_OPERATION");
  Orb.serve orb ~port:6000;

  (* The remote visualization/steering client, across the WAN. *)
  ignore
    (Padico.spawn grid user ~name:"viz" (fun () ->
         let viz_orb = Orb.init grid user in
         let proxy =
           Orb.resolve viz_orb
             { Orb.ior_node = master; ior_port = 6000; ior_key = "solver" }
         in
         for poll = 1 to 8 do
           Engine.Proc.sleep (Simnet.Node.sim user) (Engine.Time.ms 30);
           (match Orb.invoke proxy ~op:"get_state" Cdr.VNull with
            | Ok state ->
              Printf.printf "[viz %d] %s\n" poll
                (Format.asprintf "%a" Cdr.pp_value state)
            | Error e -> Printf.printf "[viz %d] error: %s\n" poll e);
           (* Crank the boundary temperature halfway through. *)
           if poll = 4 then begin
             Printf.printf "[viz] steering: boundary := 500.0\n";
             ignore (Orb.invoke proxy ~op:"set_boundary" (Cdr.VDouble 500.0))
           end
         done));

  Padico.run grid;
  Printf.printf
    "solver finished %d gathered iterations; final mid-cell %.2f (max %.2f)\n"
    !iterations_done
    (if Array.length !snapshot = 0 then 0.0
     else !snapshot.(Array.length !snapshot / 2))
    (Array.fold_left Float.max 0.0 !snapshot)
