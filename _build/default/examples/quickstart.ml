(* Quickstart: bring up a two-node grid with both a SAN and a LAN, let the
   selector pick transports, and talk through the two abstract interfaces.

     dune exec examples/quickstart.exe *)

module Bb = Engine.Bytebuf
module Vio = Personalities.Vio
module Ct = Circuit.Ct

let () =
  (* 1. Describe the grid: two nodes sharing Myrinet and Ethernet. *)
  let grid = Padico.create () in
  let a = Padico.add_node grid "node-a" in
  let b = Padico.add_node grid "node-b" in
  ignore (Padico.add_segment grid Simnet.Presets.myrinet2000 [ a; b ]);
  ignore (Padico.add_segment grid Simnet.Presets.ethernet100 [ a; b ]);

  (* 2. Distributed paradigm: a VLink service. The selector routes the
     connection over the SAN even though the API looks like sockets. *)
  Padico.listen grid b ~port:4000 (fun vl ->
      ignore
        (Padico.spawn grid b ~name:"server" (fun () ->
             let buf = Bb.create 64 in
             let n = Vio.read vl buf in
             Printf.printf "[server] got %S via driver %s\n"
               (Bb.to_string (Bb.sub buf 0 n))
               (Vlink.Vl.driver_name vl);
             ignore (Vio.write_string vl "hello from node-b"))));
  ignore
    (Padico.spawn grid a ~name:"client" (fun () ->
         let choice = Padico.connect_choice grid ~src:a ~dst:b in
         Printf.printf "[client] selector chose: %s\n"
           (Format.asprintf "%a" Selector.pp_choice choice);
         let vl = Padico.connect grid ~src:a ~dst:b ~port:4000 in
         (match Vio.connect_wait vl with
          | Ok () -> ()
          | Error e -> failwith e);
         ignore (Vio.write_string vl "hello from node-a");
         let buf = Bb.create 64 in
         let n = Vio.read vl buf in
         Printf.printf "[client] reply: %S\n" (Bb.to_string (Bb.sub buf 0 n))));

  (* 3. Parallel paradigm: a circuit over the same grid. *)
  let cts = Padico.circuit grid ~name:"quickstart" [ a; b ] in
  Ct.set_recv cts.(1) (fun inc ->
      Printf.printf "[rank 1] received %d bytes from rank %d (adapter %s)\n"
        (Ct.remaining inc) (Ct.incoming_src inc)
        (Ct.link_adapter_name cts.(1) ~dst:0));
  let out = Ct.begin_packing cts.(0) ~dst:1 in
  Ct.pack out (Bb.of_string "parallel hello");
  Ct.end_packing out;

  Padico.run grid;
  Printf.printf "done at virtual time %s\n"
    (Format.asprintf "%a" Engine.Time.pp (Padico.now grid))
