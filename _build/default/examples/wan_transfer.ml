(* GridFTP-flavoured bulk transfer across a high-latency WAN: the same
   application code, three deployments — plain TCP, parallel streams, and
   parallel streams + adaptive compression (for compressible data). The
   methods are chosen in the preferences; the transfer code never changes.

     dune exec examples/wan_transfer.exe *)

module Bb = Engine.Bytebuf
module Vio = Personalities.Vio
module Prefs = Selector.Prefs

let megabytes = 16

let transfer ~prefs ~compressible ~label =
  let grid = Padico.create ~prefs () in
  let a = Padico.add_node grid "site-a" in
  let b = Padico.add_node grid "site-b" in
  ignore (Padico.add_segment grid Simnet.Presets.vthd [ a; b ]);
  let total = megabytes * 1_000_000 in
  let received = ref 0 in
  let finished = ref 0 in
  Padico.listen grid b ~port:2811 (fun vl ->
      ignore
        (Padico.spawn grid b ~name:"ftp-server" (fun () ->
             let buf = Bb.create 65_536 in
             let rec loop () =
               let n = Vio.read vl buf in
               if n > 0 then begin
                 received := !received + n;
                 if !received >= total then finished := Padico.now grid
                 else loop ()
               end
             in
             loop ())));
  ignore
    (Padico.spawn grid a ~name:"ftp-client" (fun () ->
         let vl = Padico.connect grid ~src:a ~dst:b ~port:2811 in
         (match Vio.connect_wait vl with
          | Ok () -> ()
          | Error e -> failwith e);
         let chunk = Bb.create 65_536 in
         if not compressible then
           Bb.fill_random chunk (Engine.Rng.create 42);
         let sent = ref 0 in
         while !sent < total do
           ignore (Vio.write vl chunk);
           sent := !sent + Bb.length chunk
         done));
  Padico.run grid ~until:(Engine.Time.sec 600);
  if !finished = 0 then Printf.printf "%-44s did not finish\n" label
  else
    Printf.printf "%-44s %6.2f s   (%5.2f MB/s)\n" label
      (Engine.Time.to_float_sec !finished)
      (Engine.Stats.bandwidth_mb_s ~bytes_transferred:total
         ~elapsed_ns:!finished)

let () =
  Printf.printf "Transferring %d MB across the VTHD WAN (8 ms RTT):\n\n"
    megabytes;
  let base = { Prefs.default with Prefs.cipher_untrusted = false } in
  transfer ~prefs:base ~compressible:false
    ~label:"plain TCP stream (incompressible)";
  transfer
    ~prefs:{ base with Prefs.pstream_on_wan = true; pstream_streams = 4 }
    ~compressible:false ~label:"4 parallel streams (incompressible)";
  transfer
    ~prefs:
      { base with Prefs.pstream_on_wan = true; pstream_streams = 4;
        adoc_on_slow = true; adoc_threshold_bps = 15e6 }
    ~compressible:true
    ~label:"4 parallel streams + AdOC (compressible)";
  print_newline ();
  Printf.printf
    "Same deployment, but the site link is untrusted and ciphering is on:\n";
  transfer
    ~prefs:{ Prefs.default with Prefs.pstream_on_wan = true }
    ~compressible:false
    ~label:"4 parallel streams + cipher (untrusted)"
