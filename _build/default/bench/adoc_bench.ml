(* Experiment E7 — AdOC-class adapter swap: online compression pays on slow
   links for compressible data and stays out of the way otherwise; the
   swap is invisible to the application (same Vio code). *)

module Bb = Engine.Bytebuf
module Vio = Personalities.Vio

let goodput ~model ~adoc ~compressible ~total () =
  let prefs =
    { Selector.Prefs.default with
      Selector.Prefs.adoc_on_slow = adoc;
      adoc_threshold_bps = 15e6;
      cipher_untrusted = false;
      vrp_on_lossy = false }
  in
  let grid, a, b = Bhelp.pair model ~prefs () in
  let t0 = ref 0 and t1 = ref 0 in
  let received = ref 0 in
  Padico.listen grid b ~port:5000 (fun vl ->
      ignore
        (Padico.spawn grid b ~name:"sink" (fun () ->
             let buf = Bb.create 65_536 in
             let rec loop () =
               let n = Vio.read vl buf in
               if n > 0 then begin
                 if !received = 0 then t0 := Padico.now grid;
                 received := !received + n;
                 if !received >= total then t1 := Padico.now grid else loop ()
               end
             in
             loop ())));
  let h =
    Padico.spawn grid a ~name:"src" (fun () ->
        let vl = Padico.connect grid ~src:a ~dst:b ~port:5000 in
        (match Vio.connect_wait vl with Ok () -> () | Error e -> failwith e);
        let rng = Engine.Rng.create 7 in
        let chunk = Bb.create 65_536 in
        if compressible then Bb.fill_zero chunk else Bb.fill_random chunk rng;
        let sent = ref 0 in
        while !sent < total do
          let n = min 65_536 (total - !sent) in
          ignore (Vio.write vl (Bb.sub chunk 0 n));
          sent := !sent + n
        done)
  in
  Padico.run grid ~until:(Engine.Time.sec 3000);
  Bhelp.fail_on_error h;
  if !received < total then nan
  else Bhelp.mb_s total (!t1 - !t0)

let run () =
  Bhelp.print_header
    "E7 — adaptive online compression (AdOC adapter), application goodput (MB/s)";
  let cases =
    [ ("modem (56kb/s)", Simnet.Presets.modem, 200_000);
      ("Ethernet-100", Simnet.Presets.ethernet100, 8_000_000) ]
  in
  List.iter
    (fun (name, model, total) ->
       Printf.printf "%s:\n" name;
       List.iter
         (fun (dname, compressible) ->
            let plain = goodput ~model ~adoc:false ~compressible ~total () in
            let with_adoc = goodput ~model ~adoc:true ~compressible ~total () in
            Printf.printf "  %-22s straight %8.3f   adoc %8.3f\n" dname plain
              with_adoc;
            flush stdout)
         [ ("compressible data", true); ("incompressible data", false) ])
    cases;
  print_endline
    "expected shape: adoc multiplies goodput for compressible data on the";
  print_endline
    "slow link, and never hurts elsewhere (adaptivity turns it off)."
