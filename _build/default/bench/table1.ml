(* Experiment E2 — Table 1: one-way latency and maximum bandwidth of the
   abstract interfaces and middleware over Myrinet-2000. *)

module Bb = Engine.Bytebuf
module Cdr = Mw_corba.Cdr
module Ct = Circuit.Ct
module Madpers = Personalities.Madpers

let iters = 2000

(* Circuit: raw abstract-interface ping-pong. *)
let circuit_latency () =
  let grid, a, b = Bhelp.myrinet_pair () in
  let cts = Padico.circuit grid ~name:"t1" [ a; b ] in
  let mp0 = Madpers.attach cts.(0) in
  let mp1 = Madpers.attach cts.(1) in
  let result = ref nan in
  ignore
    (Padico.spawn grid b ~name:"echo" (fun () ->
         let rec loop () =
           let src, inc = Madpers.recv_blocking mp1 in
           let data = Ct.unpack inc (Ct.remaining inc) in
           let out = Madpers.begin_packing mp1 ~dst:src in
           Madpers.pack out data;
           Madpers.end_packing out;
           loop ()
         in
         loop ()));
  let h =
    Padico.spawn grid a ~name:"ping" (fun () ->
        let small = Bb.create 4 in
        let round () =
          let out = Madpers.begin_packing mp0 ~dst:1 in
          Madpers.pack out small;
          Madpers.end_packing out;
          ignore (Madpers.recv_blocking mp0)
        in
        for _ = 1 to 10 do round () done;
        let t0 = Padico.now grid in
        for _ = 1 to iters do round () done;
        let t1 = Padico.now grid in
        result := float_of_int (t1 - t0) /. float_of_int iters /. 2.0 /. 1e3)
  in
  Bhelp.run grid;
  Bhelp.fail_on_error h;
  !result

let circuit_bandwidth () =
  let grid, a, b = Bhelp.myrinet_pair () in
  let cts = Padico.circuit grid ~name:"t1bw" [ a; b ] in
  let count = 64 in
  let size = 1_000_000 in
  let t0 = ref 0 and t1 = ref 0 in
  let seen = ref 0 in
  Ct.set_recv cts.(1) (fun inc ->
      ignore (Ct.unpack inc (Ct.remaining inc));
      if !seen = 0 then t0 := Padico.now grid;
      incr seen;
      if !seen = count then t1 := Padico.now grid);
  let payload = Bb.create size in
  for _ = 1 to count do
    let out = Ct.begin_packing cts.(0) ~dst:1 in
    Ct.pack out payload;
    Ct.end_packing out
  done;
  Bhelp.run grid;
  Bhelp.mb_s (size * (count - 1)) (!t1 - !t0)

let vlink_latency () =
  let grid, a, b = Bhelp.myrinet_pair () in
  Bhelp.vio_latency grid ~src:a ~dst:b ~port:4000 ~size:4 ~iters

let vlink_bandwidth () =
  let grid, a, b = Bhelp.myrinet_pair () in
  Bhelp.vio_stream_bw grid ~src:a ~dst:b ~port:4000 ~total:64_000_000
    ~chunk:1_000_000

let mpi_latency () =
  let grid, a, b = Bhelp.myrinet_pair () in
  let comms = Bhelp.mpi_pair grid a b in
  Bhelp.mpi_latency grid comms ~a ~b ~iters

let mpi_bandwidth () =
  let grid, a, b = Bhelp.myrinet_pair () in
  let comms = Bhelp.mpi_pair grid a b in
  Bhelp.mpi_stream_bw grid comms ~a ~b ~size:1_000_000 ~count:64

let corba_latency profile () =
  let grid, a, b = Bhelp.myrinet_pair () in
  Bhelp.corba_latency ~profile grid ~a ~b ~port:3000 ~iters:1000

let corba_bandwidth profile () =
  let grid, a, b = Bhelp.myrinet_pair () in
  Bhelp.corba_stream_bw ~profile grid ~a ~b ~port:3000 ~size:1_000_000
    ~count:64

let java_latency () =
  let grid, a, b = Bhelp.myrinet_pair () in
  Bhelp.java_latency grid ~a ~b ~port:7000 ~iters:1000

let java_bandwidth () =
  let grid, a, b = Bhelp.myrinet_pair () in
  Bhelp.java_stream_bw grid ~a ~b ~port:7000 ~size:1_000_000 ~count:64

let rows =
  [ ("Circuit", circuit_latency, circuit_bandwidth, 8.4, 240.0);
    ("VLink", vlink_latency, vlink_bandwidth, 10.2, 239.0);
    ("MPICH-1.2.5", mpi_latency, mpi_bandwidth, 12.06, 238.7);
    ("omniORB 3", corba_latency Cdr.omniorb3, corba_bandwidth Cdr.omniorb3,
     20.3, 238.4);
    ("omniORB 4", corba_latency Cdr.omniorb4, corba_bandwidth Cdr.omniorb4,
     18.4, 235.8);
    ("Java sockets", java_latency, java_bandwidth, 40.0, 237.9) ]

let run () =
  Bhelp.print_header
    "E2 / Table 1 — one-way latency (us) and max bandwidth (MB/s) over Myrinet-2000";
  Printf.printf "%-14s %10s %10s %12s %12s\n" "API/middleware" "lat (us)"
    "paper" "bw (MB/s)" "paper";
  List.iter
    (fun (name, lat, bw, plat, pbw) ->
       let l = lat () in
       let b = bw () in
       Printf.printf "%-14s %s %10.2f %s %12.1f\n" name (Bhelp.pp_us l) plat
         (Bhelp.pp_mb b) pbw;
       flush stdout)
    rows
