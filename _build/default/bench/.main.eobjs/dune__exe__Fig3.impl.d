bench/fig3.ml: Bhelp List Mw_corba Printf Simnet
