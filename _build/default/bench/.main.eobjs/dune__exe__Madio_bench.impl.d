bench/madio_bench.ml: Bhelp Engine Madeleine Netaccess Option Padico Printf Simnet
