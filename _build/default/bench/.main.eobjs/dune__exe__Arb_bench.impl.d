bench/arb_bench.ml: Array Bhelp Engine List Mw_corba Mw_mpi Netaccess Padico Printf Simnet
