bench/vrp_bench.ml: Bhelp Drivers Engine List Methods Option Padico Printf Selector Simnet
