bench/copies_bench.ml: Bhelp Calib Engine List Mw_corba Printf
