bench/wan_bench.ml: Bhelp List Mw_corba Printf Selector Simnet
