bench/micro_bench.ml: Analyze Bechamel Benchmark Bhelp Engine Hashtbl Instance Measure Methods Mw_corba Mw_soap Printf Staged Test Time Toolkit
