bench/bhelp.ml: Scenario
