bench/table1.ml: Array Bhelp Circuit Engine List Mw_corba Padico Personalities Printf
