bench/adoc_bench.ml: Bhelp Engine List Padico Personalities Printf Selector Simnet
