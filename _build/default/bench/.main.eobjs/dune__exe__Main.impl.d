bench/main.ml: Adoc_bench Arb_bench Copies_bench Fig3 List Madio_bench Micro_bench Printexc Printf Sys Table1 Vrp_bench Wan_bench
