bench/main.mli:
