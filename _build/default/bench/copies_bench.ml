(* Experiment E8 — ablation behind Figure 3's ORB spread: marshalling copy
   strategy. Synthetic ORB profiles with k extra copies (k per-byte cost at
   the memcpy rate) show the bandwidth collapse Mico/ORBacus suffer. *)

module Cdr = Mw_corba.Cdr

let profile_with_copies k =
  { Cdr.pname = Printf.sprintf "synthetic-%d-copies" k;
    fixed_ns = Calib.corba_omniorb4_ns;
    marshal_per_byte_ns = float_of_int k *. Calib.memcpy_per_byte_ns *. 6.0;
    unmarshal_per_byte_ns = float_of_int k *. Calib.memcpy_per_byte_ns *. 4.0;
    marshal_copies = k; unmarshal_copies = k;
    zero_copy = (k = 0) }

let bw profile =
  let grid, a, b = Bhelp.myrinet_pair () in
  Bhelp.corba_stream_bw ~profile grid ~a ~b ~port:3000 ~size:1_000_000
    ~count:48

let run () =
  Bhelp.print_header
    "E8 — ablation: ORB marshalling copies vs bandwidth (1 MB payloads, Myrinet)";
  List.iter
    (fun k ->
       let p = profile_with_copies k in
       Engine.Bytebuf.reset_copy_counter ();
       let b = bw p in
       Printf.printf "  %d extra cop%s   %s MB/s   (%d MB actually copied)\n" k
         (if k = 1 then "y " else "ies")
         (Bhelp.pp_mb b)
         (Engine.Bytebuf.copies_performed () / 1_000_000);
       flush stdout)
    [ 0; 1; 2; 3 ];
  print_endline
    "expected shape: zero-copy saturates the SAN; each copy stage cuts";
  print_endline "bandwidth further — the Mico (2 copies) / ORBacus (1) story."
