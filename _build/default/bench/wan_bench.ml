(* Experiment E4 — §5, VTHD WAN: every middleware gets roughly the same
   ~9 MB/s (software overhead is negligible next to the network), and
   Parallel Streams raise the bandwidth to ~12 MB/s, the access-link
   maximum. *)

module Cdr = Mw_corba.Cdr

let total = 24_000_000

let no_crypto =
  { Selector.Prefs.default with Selector.Prefs.cipher_untrusted = false }

let vthd_pair () = Bhelp.pair Simnet.Presets.vthd ~prefs:no_crypto ()

let mpi_bw () =
  let grid, a, b = vthd_pair () in
  let comms = Bhelp.mpi_pair grid a b in
  Bhelp.mpi_stream_bw grid comms ~a ~b ~size:100_000 ~count:(total / 100_000)

let corba_bw () =
  let grid, a, b = vthd_pair () in
  Bhelp.corba_stream_bw ~profile:Cdr.omniorb4 grid ~a ~b ~port:3000
    ~size:100_000 ~count:(total / 100_000)

let java_bw () =
  let grid, a, b = vthd_pair () in
  Bhelp.java_stream_bw grid ~a ~b ~port:7000 ~size:100_000
    ~count:(total / 100_000)

let vio_bw () =
  let grid, a, b = vthd_pair () in
  Bhelp.vio_stream_bw grid ~src:a ~dst:b ~port:5000 ~total ~chunk:65_536

let pstream_bw n () =
  let prefs =
    { no_crypto with Selector.Prefs.pstream_on_wan = n > 1;
      pstream_streams = n }
  in
  let grid, a, b = Bhelp.pair Simnet.Presets.vthd ~prefs () in
  Bhelp.vio_stream_bw grid ~src:a ~dst:b ~port:5100 ~total ~chunk:65_536

let run () =
  Bhelp.print_header "E4 — VTHD WAN (8 ms RTT): middleware bandwidth (MB/s)";
  let rows =
    [ ("MPI", mpi_bw); ("omniORB 4", corba_bw); ("Java sockets", java_bw);
      ("VLink/VIO", vio_bw) ]
  in
  List.iter
    (fun (name, f) ->
       Printf.printf "%-16s %s\n" name (Bhelp.pp_mb (f ()));
       flush stdout)
    rows;
  Printf.printf "paper: all middleware ~9 MB/s on VTHD\n\n";
  Printf.printf "Parallel streams (single logical VLink striped over n sockets):\n";
  List.iter
    (fun n ->
       Printf.printf "  n = %d streams   %s MB/s\n" n
         (Bhelp.pp_mb (pstream_bw n ()));
       flush stdout)
    [ 1; 2; 4; 8 ];
  Printf.printf
    "paper: Parallel Streams raise ~9 -> ~12 MB/s (Ethernet-100 access limit)\n"
