(* Experiment E1 — Figure 3: bandwidth of various middleware systems in
   PadicoTM over Myrinet-2000, message sizes 32 B .. 1 MB, plus the
   TCP/Ethernet-100 reference curve. *)

module Cdr = Mw_corba.Cdr

let sizes =
  [ 32; 128; 512; 2_048; 8_192; 32_768; 131_072; 524_288; 1_048_576 ]

let corba_point profile size =
  let grid, a, b = Bhelp.myrinet_pair () in
  Bhelp.corba_stream_bw ~profile grid ~a ~b ~port:3000 ~size
    ~count:(Bhelp.count_for size)

let mpi_point size =
  let grid, a, b = Bhelp.myrinet_pair () in
  let comms = Bhelp.mpi_pair grid a b in
  Bhelp.mpi_stream_bw grid comms ~a ~b ~size ~count:(Bhelp.count_for size)

let java_point size =
  let grid, a, b = Bhelp.myrinet_pair () in
  Bhelp.java_stream_bw grid ~a ~b ~port:7000 ~size
    ~count:(Bhelp.count_for size)

let tcp_eth_point size =
  let grid, a, b = Bhelp.pair Simnet.Presets.ethernet100 () in
  Bhelp.vio_stream_bw grid ~src:a ~dst:b ~port:5000
    ~total:(size * Bhelp.count_for size) ~chunk:size

let series : (string * (int -> float)) list =
  [ ("omniORB-3.0.2/Myrinet", corba_point Cdr.omniorb3);
    ("omniORB-4.0.0/Myrinet", corba_point Cdr.omniorb4);
    ("Mico-2.3.7/Myrinet", corba_point Cdr.mico);
    ("ORBacus-4.0.5/Myrinet", corba_point Cdr.orbacus);
    ("MPICH/Myrinet", mpi_point);
    ("Java socket/Myrinet", java_point);
    ("TCP/Ethernet-100 (ref)", tcp_eth_point) ]

let run () =
  Bhelp.print_header
    "E1 / Figure 3 — bandwidth (MB/s) over Myrinet-2000 vs message size";
  Printf.printf "%-24s" "series \\ size";
  List.iter (fun s -> Printf.printf "%9d" s) sizes;
  print_newline ();
  List.iter
    (fun (name, point) ->
       Printf.printf "%-24s" name;
       List.iter (fun s -> Printf.printf "  %s" (Bhelp.pp_mb (point s))) sizes;
       print_newline ();
       flush stdout)
    series;
  print_newline ();
  print_endline
    "paper anchors: omniORB/MPICH/Java plateau ~238-240; Mico ~55; ORBacus ~63;";
  print_endline "TCP/Ethernet-100 reference ~11.6 at large sizes."
