(* Experiment E5 — §5, VRP on a lossy transcontinental link (5-10 % loss):
   TCP collapses to ~150 KB/s; VRP with a 10 % loss budget sustains
   ~500 KB/s, three times more. *)

module Bb = Engine.Bytebuf
module Vrp = Methods.Vrp

let total = 4_000_000

let tcp_goodput ~loss () =
  let grid, a, b =
    Bhelp.pair (Simnet.Presets.transcontinental_loss loss)
      ~prefs:
        { Selector.Prefs.default with Selector.Prefs.cipher_untrusted = false }
      ()
  in
  Bhelp.vio_stream_bw grid ~src:a ~dst:b ~port:5000 ~total:(total / 2)
    ~chunk:65_536
  *. 1000.0 (* KB/s *)

let vrp_goodput ~loss ~tolerance () =
  let grid, a, b =
    Bhelp.pair (Simnet.Presets.transcontinental_loss loss) ()
  in
  let net = Padico.net grid in
  let seg = Option.get (Simnet.Net.best_link net a b) in
  let ua = Drivers.Udp.attach seg a in
  let ub = Drivers.Udp.attach seg b in
  let receiver =
    Vrp.create_receiver (Padico.sysio b) ub ~port:99 ()
  in
  let t0 = Padico.now grid in
  let sender =
    Vrp.create_sender (Padico.sysio a) ua ~dst:(Simnet.Node.id b) ~dst_port:99
      ~tolerance ~rate_bps:570e3
  in
  Vrp.send sender (Bb.create total);
  Vrp.finish sender;
  Bhelp.run grid;
  if not (Vrp.complete receiver) then nan
  else begin
    let elapsed = Padico.now grid - t0 in
    float_of_int (Vrp.delivered_bytes receiver)
    /. (float_of_int elapsed /. 1e9)
    /. 1e3 (* KB/s *)
  end

let run () =
  Bhelp.print_header
    "E5 — lossy transcontinental link: TCP vs VRP goodput (KB/s)";
  List.iter
    (fun loss ->
       Printf.printf "loss = %.0f%%\n" (loss *. 100.0);
       Printf.printf "  %-28s %8.0f KB/s\n" "TCP (plain sockets)"
         (tcp_goodput ~loss ());
       flush stdout;
       List.iter
         (fun tolerance ->
            Printf.printf "  %-28s %8.0f KB/s\n"
              (Printf.sprintf "VRP (tolerance %.0f%%)" (tolerance *. 100.0))
              (vrp_goodput ~loss ~tolerance ());
            flush stdout)
         [ 0.0; 0.05; 0.10; 0.20 ])
    [ 0.05; 0.10 ];
  Printf.printf
    "paper: TCP ~150 KB/s; VRP with 10%% tolerated loss ~500 KB/s (3x)\n"
