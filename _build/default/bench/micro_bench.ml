(* Wall-clock micro-benchmarks (Bechamel): the real CPU cost of the
   framework's hot paths — marshalling, compression, ciphering, the event
   queue. These are host-time measurements, complementary to the
   virtual-time experiments. *)

module Bb = Engine.Bytebuf
module Cdr = Mw_corba.Cdr

open Bechamel
open Toolkit

let payload_64k = Bb.create 65_536

let () = Bb.fill_pattern payload_64k ~seed:3

let compressible_64k =
  let b = Bb.create 65_536 in
  (* Mildly repetitive content. *)
  for i = 0 to Bb.length b - 1 do
    Bb.set_u8 b i (i mod 61)
  done;
  b

let lz_packed = Methods.Lz.compress compressible_64k

let crypto_key = Methods.Crypto.key_of_string "bench"

let value_64k = Cdr.VOctets payload_64k

let test_lz_compress =
  Test.make ~name:"lz.compress 64KB"
    (Staged.stage (fun () -> ignore (Methods.Lz.compress compressible_64k)))

let test_lz_decompress =
  Test.make ~name:"lz.decompress 64KB"
    (Staged.stage (fun () -> ignore (Methods.Lz.decompress lz_packed)))

let test_cdr_encode_zero_copy =
  Test.make ~name:"cdr.encode omniORB4 64KB"
    (Staged.stage (fun () -> ignore (Cdr.encode_iov Cdr.omniorb4 value_64k)))

let test_cdr_encode_copying =
  Test.make ~name:"cdr.encode Mico 64KB"
    (Staged.stage (fun () -> ignore (Cdr.encode_iov Cdr.mico value_64k)))

let test_crypto =
  Test.make ~name:"crypto.encrypt 64KB"
    (Staged.stage (fun () -> ignore (Methods.Crypto.encrypt crypto_key payload_64k)))

let test_heap =
  Test.make ~name:"heap push+pop x1000"
    (Staged.stage (fun () ->
         let h = Engine.Heap.create () in
         for i = 0 to 999 do
           Engine.Heap.push h ~prio:(i * 7919 mod 1000) i
         done;
         while not (Engine.Heap.is_empty h) do
           ignore (Engine.Heap.pop h)
         done))

let test_base64 =
  Test.make ~name:"soap.base64 64KB"
    (Staged.stage (fun () ->
         ignore (Mw_soap.Soap.base64_encode (Bb.to_string payload_64k))))

let benchmark () =
  let tests =
    Test.make_grouped ~name:"padico"
      [ test_lz_compress; test_lz_decompress; test_cdr_encode_zero_copy;
        test_cdr_encode_copying; test_crypto; test_heap; test_base64 ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  results

let run () =
  Bhelp.print_header "Microbenchmarks (real wall-clock, Bechamel OLS)";
  let results = benchmark () in
  Hashtbl.iter
    (fun name ols ->
       match Analyze.OLS.estimates ols with
       | Some [ est ] -> Printf.printf "%-32s %12.1f ns/run\n" name est
       | _ -> Printf.printf "%-32s (no estimate)\n" name)
    results
