(* Experiment E3 — §4.1: MadIO multiplexing overhead over plain Madeleine
   is < 0.1 us, thanks to header combining; the ablation without combining
   pays a full extra message. *)

module Bb = Engine.Bytebuf
module Mad = Madeleine.Mad
module Madio = Netaccess.Madio

let iters = 5000

(* Plain Madeleine ping-pong (no PadicoTM above it). *)
let madeleine_latency () =
  let grid, a, b = Bhelp.myrinet_pair () in
  let net = Padico.net grid in
  let seg = Option.get (Simnet.Net.best_link net a b) in
  let ma = Mad.init seg a and mb = Mad.init seg b in
  let ca = Mad.open_channel ma ~id:0 in
  let cb = Mad.open_channel mb ~id:0 in
  Mad.set_recv cb (fun inc ->
      let data = Mad.unpack inc (Mad.remaining inc) in
      let out = Mad.begin_packing cb ~dst:(Simnet.Node.id a) in
      Mad.pack out data;
      Mad.end_packing out);
  let count = ref 0 in
  let t0 = ref 0 and t1 = ref 0 in
  Mad.set_recv ca (fun inc ->
      ignore (Mad.unpack inc (Mad.remaining inc));
      incr count;
      if !count = 10 then t0 := Padico.now grid;
      if !count < iters + 10 then begin
        let out = Mad.begin_packing ca ~dst:(Simnet.Node.id b) in
        Mad.pack out (Bb.create 4);
        Mad.end_packing out
      end
      else t1 := Padico.now grid);
  let out = Mad.begin_packing ca ~dst:(Simnet.Node.id b) in
  Mad.pack out (Bb.create 4);
  Mad.end_packing out;
  Bhelp.run grid;
  float_of_int (!t1 - !t0) /. float_of_int iters /. 2.0 /. 1e3

(* MadIO logical-channel ping-pong, with or without header combining. *)
let madio_latency ~combining () =
  let grid, a, b = Bhelp.myrinet_pair () in
  let net = Padico.net grid in
  let seg = Option.get (Simnet.Net.best_link net a b) in
  let ma = Madio.init (Mad.init seg a) in
  let mb = Madio.init (Mad.init seg b) in
  Madio.set_header_combining ma combining;
  Madio.set_header_combining mb combining;
  let la = Madio.open_lchannel ma ~id:42 in
  let lb = Madio.open_lchannel mb ~id:42 in
  Madio.set_recv lb (fun ~src:_ buf -> Madio.send lb ~dst:(Simnet.Node.id a) buf);
  let count = ref 0 in
  let t0 = ref 0 and t1 = ref 0 in
  Madio.set_recv la (fun ~src:_ buf ->
      incr count;
      if !count = 10 then t0 := Padico.now grid;
      if !count < iters + 10 then Madio.send la ~dst:(Simnet.Node.id b) buf
      else t1 := Padico.now grid);
  Madio.send la ~dst:(Simnet.Node.id b) (Bb.create 4);
  Bhelp.run grid;
  float_of_int (!t1 - !t0) /. float_of_int iters /. 2.0 /. 1e3

let run () =
  Bhelp.print_header
    "E3 — MadIO logical multiplexing overhead over plain Madeleine (one-way, us)";
  let plain = madeleine_latency () in
  let combined = madio_latency ~combining:true () in
  let separate = madio_latency ~combining:false () in
  Printf.printf "%-34s %8.3f us\n" "plain Madeleine" plain;
  Printf.printf "%-34s %8.3f us  (overhead %+.3f us)\n"
    "MadIO, header combining ON" combined (combined -. plain);
  Printf.printf "%-34s %8.3f us  (overhead %+.3f us)\n"
    "MadIO, header combining OFF" separate (separate -. plain);
  Printf.printf
    "paper: overhead of MadIO over plain Madeleine < 0.1 us (combining ON)\n"
