include Scenario
