(* Developer smoke/calibration harness for the raw substrates (GM, TCP,
   and the Padico end-to-end path). Used to sanity-check the calibration
   anchors quickly; the reproducible experiments live in bench/.

     dune exec bin/smoke.exe
     TCPDEBUG=1 dune exec bin/smoke.exe   # verbose TCP trace on VTHD *)

module Bytebuf = Engine.Bytebuf

let tcp_bulk model ~mbytes =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let b = Simnet.Net.add_node net "b" in
  let seg = Simnet.Net.add_segment net model [ a; b ] in
  let sa = Drivers.Tcp.attach seg a in
  let sb = Drivers.Tcp.attach seg b in
  let seg_ref = seg in
  let total = mbytes * 1_000_000 in
  let received = ref 0 in
  let done_at = ref 0 in
  Drivers.Tcp.listen sb ~port:80 (fun conn ->
      Drivers.Tcp.set_event_cb conn (fun ev ->
          match ev with
          | Drivers.Tcp.Readable ->
            let rec drain () =
              match Drivers.Tcp.read conn ~max:65536 with
              | Some buf ->
                received := !received + Bytebuf.length buf;
                if !received >= total && !done_at = 0 then
                  done_at := Engine.Sim.now (Simnet.Net.sim net);
                drain ()
              | None -> ()
            in
            drain ()
          | _ -> ()));
  let c = Drivers.Tcp.connect sa ~dst:(Simnet.Node.id b) ~port:80 in
  let sent = ref 0 in
  let payload = Bytebuf.create 65536 in
  let rec pump () =
    if !sent < total then begin
      let want = min 65536 (total - !sent) in
      let n = Drivers.Tcp.write c (Bytebuf.sub payload 0 want) in
      sent := !sent + n;
      if n > 0 then pump ()
    end
  in
  Drivers.Tcp.set_event_cb c (fun ev ->
      match ev with
      | Drivers.Tcp.Established -> pump ()
      | Drivers.Tcp.Writable -> pump ()
      | _ -> ());
  Simnet.Net.run net ~until:(Engine.Time.sec 600);
  let t = !done_at in
  if !received < total then
    Printf.printf "  %-18s INCOMPLETE: %d/%d bytes (retx=%d)\n"
      model.Simnet.Linkmodel.name !received total (Drivers.Tcp.retransmits c)
  else
    Printf.printf "  %-18s %8.3f MB/s  (%d retx, %d frames lost/%d sent, srtt=%.1fms)\n"
      model.Simnet.Linkmodel.name
      (Engine.Stats.bandwidth_mb_s ~bytes_transferred:total ~elapsed_ns:t)
      (Drivers.Tcp.retransmits c)
      (Simnet.Segment.frames_lost seg_ref) (Simnet.Segment.frames_sent seg_ref)
      (float_of_int (Drivers.Tcp.srtt_ns c) /. 1e6);
    let rto, fast, partial = Drivers.Tcp.retransmit_breakdown c in
    Printf.printf "      breakdown: rto=%d fast=%d partial=%d\n" rto fast partial


let tcp_latency model =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let b = Simnet.Net.add_node net "b" in
  let seg = Simnet.Net.add_segment net model [ a; b ] in
  let sa = Drivers.Tcp.attach seg a in
  let sb = Drivers.Tcp.attach seg b in
  Drivers.Tcp.listen sb ~port:80 (fun conn ->
      Drivers.Tcp.set_event_cb conn (fun ev ->
          if ev = Drivers.Tcp.Readable then
            match Drivers.Tcp.read conn ~max:64 with
            | Some buf -> ignore (Drivers.Tcp.write conn buf)
            | None -> ()));
  let c = Drivers.Tcp.connect sa ~dst:(Simnet.Node.id b) ~port:80 in
  let iters = 100 in
  let count = ref 0 in
  let t0 = ref 0 in
  let t1 = ref 0 in
  Drivers.Tcp.set_event_cb c (fun ev ->
      match ev with
      | Drivers.Tcp.Established ->
        t0 := Engine.Sim.now (Simnet.Net.sim net);
        ignore (Drivers.Tcp.write c (Bytebuf.create 4))
      | Drivers.Tcp.Readable ->
        (match Drivers.Tcp.read c ~max:64 with
         | Some _ ->
           incr count;
           if !count < iters then ignore (Drivers.Tcp.write c (Bytebuf.create 4))
           else t1 := Engine.Sim.now (Simnet.Net.sim net)
         | None -> ())
      | _ -> ());
  Simnet.Net.run net ~until:(Engine.Time.sec 60);
  Printf.printf "  %-18s rtt/2 = %.2f us\n" model.Simnet.Linkmodel.name
    (float_of_int (!t1 - !t0) /. float_of_int iters /. 2.0 /. 1e3)

let gm_test () =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let b = Simnet.Net.add_node net "b" in
  let seg = Simnet.Net.add_segment net Simnet.Presets.myrinet2000 [ a; b ] in
  let pa = Drivers.Gm.attach seg a in
  let pb = Drivers.Gm.attach seg b in
  let ca = Drivers.Gm.open_channel pa ~id:0 in
  let cb = Drivers.Gm.open_channel pb ~id:0 in
  (* Latency ping-pong *)
  let iters = 1000 in
  let count = ref 0 in
  let t0 = Engine.Sim.now (Simnet.Net.sim net) in
  let t1 = ref 0 in
  Drivers.Gm.set_recv cb (fun ~src:_ buf -> Drivers.Gm.send cb ~dst:0 buf);
  Drivers.Gm.set_recv ca (fun ~src:_ buf ->
      incr count;
      if !count < iters then Drivers.Gm.send ca ~dst:1 buf
      else t1 := Engine.Sim.now (Simnet.Net.sim net));
  Drivers.Gm.send ca ~dst:1 (Bytebuf.create 4);
  Simnet.Net.run net;
  Printf.printf "  GM latency: %.2f us one-way\n"
    (float_of_int (!t1 - t0) /. float_of_int iters /. 2.0 /. 1e3);
  (* Bandwidth: stream 100 MB *)
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let b = Simnet.Net.add_node net "b" in
  let seg = Simnet.Net.add_segment net Simnet.Presets.myrinet2000 [ a; b ] in
  let pa = Drivers.Gm.attach seg a in
  let pb = Drivers.Gm.attach seg b in
  let ca = Drivers.Gm.open_channel pa ~id:0 in
  let cb = Drivers.Gm.open_channel pb ~id:0 in
  let total = 100_000_000 in
  let got = ref 0 in
  let t1 = ref 0 in
  Drivers.Gm.set_recv cb (fun ~src:_ buf ->
      got := !got + Bytebuf.length buf;
      if !got >= total then t1 := Engine.Sim.now (Simnet.Net.sim net));
  let msg = Bytebuf.create 1_000_000 in
  for _ = 1 to total / 1_000_000 do
    Drivers.Gm.send ca ~dst:1 msg
  done;
  Simnet.Net.run net;
  Printf.printf "  GM bandwidth: %.1f MB/s\n"
    (Engine.Stats.bandwidth_mb_s ~bytes_transferred:total ~elapsed_ns:!t1)

module Bb = Engine.Bytebuf

(* End-to-end: VLink latency/bandwidth over Myrinet via the selector
   (expected: madio driver, ~10.2us latency, ~240MB/s). *)
let padico_vlink () =
  let grid = Padico.create () in
  let a = Padico.add_node grid "a" in
  let b = Padico.add_node grid "b" in
  ignore (Padico.add_segment grid Simnet.Presets.myrinet2000 [ a; b ]);
  Padico.listen grid b ~port:4000 (fun vl ->
      ignore
        (Padico.spawn grid b ~name:"echo" (fun () ->
             let buf = Bb.create 65536 in
             let rec loop () =
               let n = Personalities.Vio.read vl (Bb.sub buf 0 65536) in
               if n > 0 then begin
                 ignore (Personalities.Vio.write vl (Bb.sub buf 0 n));
                 loop ()
               end
             in
             loop ())));
  let t_lat = ref 0.0 in
  let bw = ref 0.0 in
  ignore
    (Padico.spawn grid a ~name:"client" (fun () ->
         let vl = Padico.connect grid ~src:a ~dst:b ~port:4000 in
         (match Personalities.Vio.connect_wait vl with
          | Ok () -> ()
          | Error e -> failwith e);
         Printf.printf "  driver chosen: %s
" (Vlink.Vl.driver_name vl);
         let small = Bb.create 4 in
         let iters = 1000 in
         let t0 = Padico.now grid in
         for _ = 1 to iters do
           ignore (Personalities.Vio.write vl small);
           ignore (Personalities.Vio.read vl small)
         done;
         let t1 = Padico.now grid in
         t_lat := float_of_int (t1 - t0) /. float_of_int iters /. 2.0 /. 1e3;
         (* bandwidth: stream 50MB one way, wait for echo of last byte *)
         let big = Bb.create 1_000_000 in
         let t0 = Padico.now grid in
         for _ = 1 to 50 do
           ignore (Personalities.Vio.write vl big)
         done;
         (* drain echo *)
         let got = ref 0 in
         let rbuf = Bb.create 65536 in
         while !got < 50_000_000 do
           got := !got + Personalities.Vio.read vl rbuf
         done;
         let t1 = Padico.now grid in
         (* echo doubles the traffic; full duplex so one-way rate ~ total/time *)
         bw := Engine.Stats.bandwidth_mb_s ~bytes_transferred:50_000_000
             ~elapsed_ns:(t1 - t0)));
  Padico.run grid;
  Printf.printf "  VLink/Vio over selector: latency %.2f us, echo-bw %.1f MB/s
"
    !t_lat !bw

(* Circuit latency over Myrinet (expected ~8.4us). *)
let padico_circuit () =
  let grid = Padico.create () in
  let a = Padico.add_node grid "a" in
  let b = Padico.add_node grid "b" in
  ignore (Padico.add_segment grid Simnet.Presets.myrinet2000 [ a; b ]);
  let cts = Padico.circuit grid ~name:"ping" [ a; b ] in
  let mp0 = Personalities.Madpers.attach cts.(0) in
  let mp1 = Personalities.Madpers.attach cts.(1) in
  let t_lat = ref 0.0 in
  ignore
    (Padico.spawn grid b ~name:"echo" (fun () ->
         let rec loop () =
           let src, inc = Personalities.Madpers.recv_blocking mp1 in
           let n = Circuit.Ct.remaining inc in
           let data = Circuit.Ct.unpack inc n in
           let out = Personalities.Madpers.begin_packing mp1 ~dst:src in
           Personalities.Madpers.pack out data;
           Personalities.Madpers.end_packing out;
           loop ()
         in
         loop ()));
  ignore
    (Padico.spawn grid a ~name:"client" (fun () ->
         let small = Bb.create 4 in
         let iters = 1000 in
         let t0 = Padico.now grid in
         for _ = 1 to iters do
           let out = Personalities.Madpers.begin_packing mp0 ~dst:1 in
           Personalities.Madpers.pack out small;
           Personalities.Madpers.end_packing out;
           ignore (Personalities.Madpers.recv_blocking mp0)
         done;
         let t1 = Padico.now grid in
         t_lat := float_of_int (t1 - t0) /. float_of_int iters /. 2.0 /. 1e3));
  Padico.run grid;
  Printf.printf "  Circuit over Myrinet: latency %.2f us
" !t_lat

let () =
  if Sys.getenv_opt "TCPDEBUG" <> None then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug);
    tcp_bulk Simnet.Presets.vthd ~mbytes:20;
    exit 0
  end;
  print_endline "== GM over Myrinet-2000 ==";
  gm_test ();
  print_endline "== TCP latency ==";
  tcp_latency Simnet.Presets.ethernet100;
  print_endline "== TCP bulk ==";
  tcp_bulk Simnet.Presets.ethernet100 ~mbytes:50;
  tcp_bulk Simnet.Presets.vthd ~mbytes:50;
  tcp_bulk Simnet.Presets.transcontinental ~mbytes:2;
  tcp_bulk (Simnet.Presets.transcontinental_loss 0.10) ~mbytes:1;
  print_endline "== Padico end-to-end ==";
  padico_vlink ();
  padico_circuit ()
