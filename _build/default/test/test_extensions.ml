(* Future-work extensions: relay tunnels (full connectivity through
   firewalls) and the grid naming service (global addressing). *)

module Bb = Engine.Bytebuf
module Vio = Personalities.Vio
module Ns = Mw_ns.Nameserver
module Orb = Mw_corba.Orb
module Cdr = Mw_corba.Cdr

(* Firewalled topology: A -lanA- G -lanB- C; A and C share no network. *)
let firewalled () =
  let grid = Padico.create () in
  let a = Padico.add_node grid "a" in
  let g = Padico.add_node grid "gateway" in
  let c = Padico.add_node grid "c" in
  ignore
    (Padico.add_segment grid Simnet.Presets.ethernet100 ~name:"lanA" [ a; g ]);
  ignore
    (Padico.add_segment grid Simnet.Presets.ethernet100 ~name:"lanB" [ g; c ]);
  (grid, a, g, c)

let test_no_path_without_relay () =
  let grid, a, _g, c = firewalled () in
  let h =
    Padico.spawn grid a ~name:"client" (fun () ->
        try
          ignore (Padico.connect grid ~src:a ~dst:c ~port:4000);
          Alcotest.fail "expected failure without a relay"
        with Failure msg ->
          Tutil.check_bool "mentions relay" true
            (String.length msg > 0))
  in
  Tutil.run_grid grid;
  Tutil.assert_done h

let test_relay_tunnel_end_to_end () =
  let grid, a, g, c = firewalled () in
  Padico.start_relay grid g;
  let served = ref "" in
  Padico.listen grid c ~port:4000 (fun vl ->
      ignore
        (Padico.spawn grid c ~name:"server" (fun () ->
             let buf = Bb.create 32 in
             let n = Vio.read vl buf in
             served := Bb.to_string (Bb.sub buf 0 n);
             ignore (Vio.write_string vl "pong-through-tunnel"))));
  let h =
    Padico.spawn grid a ~name:"client" (fun () ->
        let vl = Padico.connect grid ~src:a ~dst:c ~port:4000 in
        (match Vio.connect_wait vl with
         | Ok () -> ()
         | Error e -> failwith e);
        ignore (Vio.write_string vl "ping-through-tunnel");
        let buf = Bb.create 32 in
        let n = Vio.read vl buf in
        Tutil.check_string "reply crossed both hops" "pong-through-tunnel"
          (Bb.to_string (Bb.sub buf 0 n)))
  in
  Tutil.run_grid grid;
  Tutil.assert_done h;
  Tutil.check_string "request crossed both hops" "ping-through-tunnel" !served

let test_relay_bulk_integrity () =
  let grid, a, g, c = firewalled () in
  Padico.start_relay grid g;
  let total = 300_000 in
  let msg = Tutil.pattern_buf ~seed:9 total in
  let received = Buffer.create total in
  Padico.listen grid c ~port:4100 (fun vl ->
      ignore
        (Padico.spawn grid c ~name:"sink" (fun () ->
             let buf = Bb.create 65_536 in
             let rec loop () =
               let n = Vio.read vl buf in
               if n > 0 then begin
                 Buffer.add_string received (Bb.to_string (Bb.sub buf 0 n));
                 if Buffer.length received < total then loop ()
               end
             in
             loop ())));
  let h =
    Padico.spawn grid a ~name:"src" (fun () ->
        let vl = Padico.connect grid ~src:a ~dst:c ~port:4100 in
        (match Vio.connect_wait vl with
         | Ok () -> ()
         | Error e -> failwith e);
        ignore (Vio.write vl msg))
  in
  Tutil.run_grid grid;
  Tutil.assert_done h;
  Tutil.check_bool "bulk payload intact through the tunnel" true
    (Buffer.contents received = Bb.to_string msg)

let test_corba_through_tunnel () =
  (* An unmodified middleware crossing the firewall transparently. *)
  let grid, a, g, c = firewalled () in
  Padico.start_relay grid g;
  let orb_a = Orb.init grid a in
  let orb_c = Orb.init grid c in
  Orb.activate orb_c ~key:"svc" (fun ~op:_ v -> Ok v);
  Orb.serve orb_c ~port:3000;
  let h =
    Padico.spawn grid a ~name:"corba-client" (fun () ->
        let p =
          Orb.resolve orb_a { Orb.ior_node = c; ior_port = 3000; ior_key = "svc" }
        in
        match Orb.invoke p ~op:"echo" (Cdr.VLong 7) with
        | Ok (Cdr.VLong 7) -> ()
        | Ok _ | Error _ -> Alcotest.fail "CORBA through tunnel failed")
  in
  Tutil.run_grid grid;
  Tutil.assert_done h

(* ---------- nameserver ---------- *)

let ns_grid () =
  let grid, a, b, _ = Tutil.grid_pair Simnet.Presets.ethernet100 in
  let server = Ns.start grid b ~port:53 in
  (grid, a, b, server)

let test_ns_register_lookup () =
  let grid, a, b, server = ns_grid () in
  let h =
    Padico.spawn grid a ~name:"ns-client" (fun () ->
        let c = Ns.connect grid ~src:a ~ns:b ~port:53 in
        (match Ns.register c ~name:"corba:solver" ~node:b ~port:3000 with
         | Ok () -> ()
         | Error e -> Alcotest.fail e);
        (match Ns.lookup c ~name:"corba:solver" with
         | Ok (node, port) ->
           Tutil.check_int "node" (Simnet.Node.id b) (Simnet.Node.id node);
           Tutil.check_int "port" 3000 port
         | Error e -> Alcotest.fail e);
        (match Ns.lookup c ~name:"corba:ghost" with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "ghost resolved");
        Ns.close c)
  in
  Tutil.run_grid grid;
  Tutil.assert_done h;
  Tutil.check_int "one entry" 1 (List.length (Ns.entries server))

let test_ns_conflict_and_delete () =
  let grid, a, b, _server = ns_grid () in
  let h =
    Padico.spawn grid a ~name:"ns-client" (fun () ->
        let c = Ns.connect grid ~src:a ~ns:b ~port:53 in
        (match Ns.register c ~name:"svc" ~node:b ~port:1 with
         | Ok () -> ()
         | Error e -> Alcotest.fail e);
        (* Same binding is idempotent. *)
        (match Ns.register c ~name:"svc" ~node:b ~port:1 with
         | Ok () -> ()
         | Error e -> Alcotest.fail e);
        (* Different binding conflicts. *)
        (match Ns.register c ~name:"svc" ~node:a ~port:2 with
         | Error _ -> ()
         | Ok () -> Alcotest.fail "conflicting rebind accepted");
        (match Ns.unregister c ~name:"svc" with
         | Ok () -> ()
         | Error e -> Alcotest.fail e);
        (match Ns.lookup c ~name:"svc" with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "deleted name resolved");
        Ns.close c)
  in
  Tutil.run_grid grid;
  Tutil.assert_done h

let test_ns_list_prefix () =
  let grid, a, b, _server = ns_grid () in
  let h =
    Padico.spawn grid a ~name:"ns-client" (fun () ->
        let c = Ns.connect grid ~src:a ~ns:b ~port:53 in
        List.iter
          (fun (n, p) ->
             match Ns.register c ~name:n ~node:b ~port:p with
             | Ok () -> ()
             | Error e -> Alcotest.fail e)
          [ ("corba:x", 1); ("corba:y", 2); ("soap:z", 3) ];
        (match Ns.list_names c ~prefix:"corba:" with
         | Ok names ->
           Alcotest.(check (list string)) "prefix filter"
             [ "corba:x"; "corba:y" ] names
         | Error e -> Alcotest.fail e);
        Ns.close c)
  in
  Tutil.run_grid grid;
  Tutil.assert_done h

let test_ns_driven_corba_resolution () =
  (* End-to-end "global addressing": the server publishes its CORBA
     endpoint under a name; the client knows only the name. *)
  let grid, a, b, _server = ns_grid () in
  let orb_b = Orb.init grid b in
  Orb.activate orb_b ~key:"calc" (fun ~op:_ v -> Ok v);
  Orb.serve orb_b ~port:3333;
  ignore
    (Padico.spawn grid b ~name:"publisher" (fun () ->
         let c = Ns.connect grid ~src:b ~ns:b ~port:53 in
         (match Ns.register c ~name:"corba:calc" ~node:b ~port:3333 with
          | Ok () -> ()
          | Error e -> failwith e);
         Ns.close c));
  let h =
    Padico.spawn grid a ~name:"consumer" (fun () ->
        Engine.Proc.sleep (Simnet.Node.sim a) (Engine.Time.ms 5);
        let c = Ns.connect grid ~src:a ~ns:b ~port:53 in
        let node, port =
          match Ns.lookup c ~name:"corba:calc" with
          | Ok e -> e
          | Error e -> failwith e
        in
        Ns.close c;
        let orb_a = Orb.init grid a in
        let p =
          Orb.resolve orb_a
            { Orb.ior_node = node; ior_port = port; ior_key = "calc" }
        in
        match Orb.invoke p ~op:"echo" (Cdr.VString "named") with
        | Ok (Cdr.VString "named") -> ()
        | Ok _ | Error _ -> Alcotest.fail "named invocation failed")
  in
  Tutil.run_grid grid;
  Tutil.assert_done h

let () =
  Alcotest.run "extensions"
    [ ("relay",
       [ Alcotest.test_case "no path without relay" `Quick
           test_no_path_without_relay;
         Alcotest.test_case "tunnel end-to-end" `Quick
           test_relay_tunnel_end_to_end;
         Alcotest.test_case "bulk integrity" `Quick test_relay_bulk_integrity;
         Alcotest.test_case "CORBA through tunnel" `Quick
           test_corba_through_tunnel ]);
      ("nameserver",
       [ Alcotest.test_case "register/lookup" `Quick test_ns_register_lookup;
         Alcotest.test_case "conflict/delete" `Quick
           test_ns_conflict_and_delete;
         Alcotest.test_case "prefix listing" `Quick test_ns_list_prefix;
         Alcotest.test_case "name-driven CORBA" `Quick
           test_ns_driven_corba_resolution ]);
    ]
