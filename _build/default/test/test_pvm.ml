module Bb = Engine.Bytebuf
module Pvm = Mw_pvm.Pvm
module Mpi = Mw_mpi.Mpi
module Orb = Mw_corba.Orb
module Cdr = Mw_corba.Cdr

let pvm_job ?(model = Simnet.Presets.myrinet2000) ~np body =
  let grid = Padico.create () in
  let nodes =
    List.init np (fun i -> Padico.add_node grid (Printf.sprintf "n%d" i))
  in
  ignore (Padico.add_segment grid model nodes);
  let tasks = Pvm.init (Padico.circuit grid ~name:"pvm" nodes) in
  let handles =
    Array.mapi
      (fun i task ->
         Padico.spawn grid (List.nth nodes i)
           ~name:(Printf.sprintf "task%d" i) (fun () -> body i task))
      tasks
  in
  Tutil.run_grid grid;
  Array.iter Tutil.assert_done handles

let test_typed_pack_unpack () =
  pvm_job ~np:2 (fun rank task ->
      if rank = 0 then begin
        let sb = Pvm.initsend task in
        Pvm.pkint sb 42;
        Pvm.pkdouble sb 2.75;
        Pvm.pkstr sb "pvm";
        Pvm.pkbytes sb (Tutil.pattern_buf ~seed:3 1000);
        Pvm.send sb ~tid:(Pvm.tid_of_rank task 1) ~tag:5
      end
      else begin
        let rb = Pvm.recv task ~tag:5 () in
        let src, tag = Pvm.bufinfo rb in
        Tutil.check_int "source tid" (Pvm.tid_of_rank task 0) src;
        Tutil.check_int "tag" 5 tag;
        Tutil.check_int "int" 42 (Pvm.upkint rb);
        Alcotest.(check (float 1e-12)) "double" 2.75 (Pvm.upkdouble rb);
        Tutil.check_string "str" "pvm" (Pvm.upkstr rb);
        Tutil.check_bool "bytes" true
          (Bb.equal (Pvm.upkbytes rb) (Tutil.pattern_buf ~seed:3 1000))
      end)

let test_type_mismatch_detected () =
  pvm_job ~np:2 (fun rank task ->
      if rank = 0 then begin
        let sb = Pvm.initsend task in
        Pvm.pkint sb 1;
        Pvm.send sb ~tid:(Pvm.tid_of_rank task 1) ~tag:1
      end
      else begin
        let rb = Pvm.recv task ~tag:1 () in
        try
          ignore (Pvm.upkstr rb);
          Alcotest.fail "type mismatch accepted"
        with Invalid_argument _ -> ()
      end)

let test_tid_addressing_and_wildcards () =
  pvm_job ~np:3 (fun rank task ->
      if rank > 0 then begin
        let sb = Pvm.initsend task in
        Pvm.pkint sb rank;
        Pvm.send sb ~tid:(Pvm.tid_of_rank task 0) ~tag:rank
      end
      else begin
        (* Receive from a specific tid first, then a wildcard. *)
        let rb = Pvm.recv task ~tid:(Pvm.tid_of_rank task 2) () in
        Tutil.check_int "from tid 2" 2 (Pvm.upkint rb);
        let rb = Pvm.recv task () in
        Tutil.check_int "wildcard gets the other" 1 (Pvm.upkint rb)
      end)

let test_mcast () =
  pvm_job ~np:4 (fun rank task ->
      if rank = 0 then begin
        let sb = Pvm.initsend task in
        Pvm.pkstr sb "to-many";
        Pvm.mcast sb
          ~tids:[ Pvm.tid_of_rank task 1; Pvm.tid_of_rank task 3 ]
          ~tag:9
      end
      else if rank = 1 || rank = 3 then begin
        let rb = Pvm.recv task ~tag:9 () in
        Tutil.check_string "mcast payload" "to-many" (Pvm.upkstr rb)
      end
      else begin
        (* rank 2 must NOT receive. *)
        Engine.Proc.sleep (Simnet.Node.sim (Pvm.node task)) 1_000_000;
        Tutil.check_bool "not addressed" false (Pvm.probe task ~tag:9 ())
      end)

let test_consumed_buffer_rejected () =
  pvm_job ~np:2 (fun rank task ->
      if rank = 0 then begin
        let sb = Pvm.initsend task in
        Pvm.pkint sb 1;
        Pvm.send sb ~tid:(Pvm.tid_of_rank task 1) ~tag:1;
        try
          Pvm.send sb ~tid:(Pvm.tid_of_rank task 1) ~tag:2;
          Alcotest.fail "reuse accepted"
        with Invalid_argument _ -> ()
      end
      else ignore (Pvm.recv task ~tag:1 ()))

let test_barrier () =
  let np = 4 in
  let before = Array.make np 0 and after = Array.make np 0 in
  pvm_job ~np (fun rank task ->
      let sim = Simnet.Node.sim (Pvm.node task) in
      Engine.Proc.sleep sim (rank * 2_000_000);
      before.(rank) <- Engine.Sim.now sim;
      Pvm.barrier task;
      after.(rank) <- Engine.Sim.now sim);
  let latest = Array.fold_left max 0 before in
  Array.iter
    (fun t -> Tutil.check_bool "left after last arrival" true (t >= latest))
    after

let test_pvm_over_lan () =
  pvm_job ~model:Simnet.Presets.ethernet100 ~np:2 (fun rank task ->
      if rank = 0 then begin
        let sb = Pvm.initsend task in
        Pvm.pkbytes sb (Tutil.pattern_buf ~seed:7 50_000);
        Pvm.send sb ~tid:(Pvm.tid_of_rank task 1) ~tag:1
      end
      else begin
        let rb = Pvm.recv task ~tag:1 () in
        Tutil.check_bool "bulk over TCP" true
          (Bb.equal (Pvm.upkbytes rb) (Tutil.pattern_buf ~seed:7 50_000))
      end)

(* The paper's §2.1 sentence, literally: "a MPI-based component could be
   connected to a PVM-based component" — each component's master exposes a
   CORBA interface; the framework couples them across the grid. *)
let test_mpi_component_talks_to_pvm_component () =
  let grid, a1, a2, b1, b2 = Tutil.two_clusters ~wan:Simnet.Presets.vthd () in
  (* PVM component on cluster B: rank 0 asks rank 1 to square numbers. *)
  let pvm_tasks = Pvm.init (Padico.circuit grid ~name:"pvm-comp" [ b1; b2 ]) in
  ignore
    (Padico.spawn grid b2 ~name:"pvm-worker" (fun () ->
         let rec loop () =
           let rb = Pvm.recv pvm_tasks.(1) ~tag:1 () in
           let v = Pvm.upkint rb in
           let sb = Pvm.initsend pvm_tasks.(1) in
           Pvm.pkint sb (v * v);
           Pvm.send sb ~tid:(Pvm.mytid pvm_tasks.(0)) ~tag:2;
           loop ()
         in
         loop ()));
  let orb_b = Orb.init grid b1 in
  Orb.activate orb_b ~key:"pvm-component" (fun ~op:_ args ->
      match args with
      | Cdr.VLong v ->
        let sb = Pvm.initsend pvm_tasks.(0) in
        Pvm.pkint sb v;
        Pvm.send sb ~tid:(Pvm.mytid pvm_tasks.(1)) ~tag:1;
        let rb = Pvm.recv pvm_tasks.(0) ~tag:2 () in
        Ok (Cdr.VLong (Pvm.upkint rb))
      | _ -> Error "BAD_PARAM");
  Orb.serve orb_b ~port:3900;
  (* MPI component on cluster A: ranks sum their values, master forwards
     the sum to the PVM component for squaring. *)
  let comms = Mpi.init (Padico.circuit grid ~name:"mpi-comp" [ a1; a2 ]) in
  ignore
    (Padico.spawn grid a2 ~name:"mpi-rank1" (fun () ->
         ignore
           (Mpi.allreduce comms.(1) ~op:Mpi.Sum ~datatype:Mpi.Int_t
              (Mpi.ints_to_buf [| 4 |]))));
  let result = ref 0 in
  let h =
    Padico.spawn grid a1 ~name:"mpi-master" (fun () ->
        let sum =
          (Mpi.ints_of_buf
             (Mpi.allreduce comms.(0) ~op:Mpi.Sum ~datatype:Mpi.Int_t
                (Mpi.ints_to_buf [| 3 |]))).(0)
        in
        let orb_a = Orb.init grid a1 in
        let p =
          Orb.resolve orb_a
            { Orb.ior_node = b1; ior_port = 3900; ior_key = "pvm-component" }
        in
        match Orb.invoke p ~op:"square" (Cdr.VLong sum) with
        | Ok (Cdr.VLong v) -> result := v
        | Ok _ | Error _ -> ())
  in
  Tutil.run_grid grid;
  Tutil.assert_done h;
  (* (3+4)^2 computed by MPI + CORBA + PVM across two clusters. *)
  Tutil.check_int "coupled result" 49 !result

let () =
  Alcotest.run "pvm"
    [ ("api",
       [ Alcotest.test_case "typed pack/unpack" `Quick test_typed_pack_unpack;
         Alcotest.test_case "type mismatch" `Quick test_type_mismatch_detected;
         Alcotest.test_case "tids + wildcards" `Quick
           test_tid_addressing_and_wildcards;
         Alcotest.test_case "mcast" `Quick test_mcast;
         Alcotest.test_case "consumed buffer" `Quick
           test_consumed_buffer_rejected;
         Alcotest.test_case "barrier" `Quick test_barrier;
         Alcotest.test_case "over LAN" `Quick test_pvm_over_lan ]);
      ("coupling",
       [ Alcotest.test_case "MPI component <-> PVM component" `Quick
           test_mpi_component_talks_to_pvm_component ]);
    ]
