module Bb = Engine.Bytebuf
module Tcp = Drivers.Tcp

let tcp_pair ?(model = Simnet.Presets.ethernet100) ?seed () =
  let net, a, b, seg = Tutil.pair ?seed model in
  (net, a, b, Tcp.attach seg a, Tcp.attach seg b)

(* Echo server helper: accepts on [port] and echoes everything. *)
let echo_server stack ~port =
  Tcp.listen stack ~port (fun conn ->
      Tcp.set_event_cb conn (fun ev ->
          if ev = Tcp.Readable then begin
            let rec drain () =
              match Tcp.read conn ~max:65_536 with
              | Some buf ->
                ignore (Tcp.write conn buf);
                drain ()
              | None -> ()
            in
            drain ()
          end))

let test_connect_establish () =
  let net, _a, b, sa, sb = tcp_pair () in
  let established_client = ref false and established_server = ref false in
  Tcp.listen sb ~port:80 (fun conn ->
      established_server := true;
      Tutil.check_bool "server state" true (Tcp.state conn = Tcp.Established_st));
  let c = Tcp.connect sa ~dst:(Simnet.Node.id b) ~port:80 in
  Tcp.set_event_cb c (fun ev ->
      if ev = Tcp.Established then established_client := true);
  Tutil.run_net net;
  Tutil.check_bool "client established" true !established_client;
  Tutil.check_bool "server accepted" true !established_server;
  Tutil.check_bool "client state" true (Tcp.state c = Tcp.Established_st)

let test_connection_refused () =
  let net, _a, b, sa, _sb = tcp_pair () in
  let c = Tcp.connect sa ~dst:(Simnet.Node.id b) ~port:81 in
  let reset = ref false in
  Tcp.set_event_cb c (fun ev -> if ev = Tcp.Reset then reset := true);
  Tutil.run_net net;
  Tutil.check_bool "RST received" true !reset;
  Tutil.check_bool "closed" true (Tcp.state c = Tcp.Closed_st)

let test_echo_integrity () =
  let net, _a, b, sa, sb = tcp_pair () in
  echo_server sb ~port:80;
  let c = Tcp.connect sa ~dst:(Simnet.Node.id b) ~port:80 in
  let msg = Tutil.pattern_buf ~seed:17 100_000 in
  let echoed = Buffer.create 100_000 in
  let pump = ref (fun () -> ()) in
  let sent = ref 0 in
  (pump :=
     fun () ->
       if !sent < Bb.length msg then begin
         let n = Tcp.write c (Bb.sub msg !sent (Bb.length msg - !sent)) in
         sent := !sent + n
       end);
  Tcp.set_event_cb c (fun ev ->
      match ev with
      | Tcp.Established | Tcp.Writable -> !pump ()
      | Tcp.Readable ->
        let rec drain () =
          match Tcp.read c ~max:65_536 with
          | Some buf ->
            Buffer.add_string echoed (Bb.to_string buf);
            drain ()
          | None -> ()
        in
        drain ()
      | _ -> ());
  Tutil.run_net net;
  Tutil.check_int "all echoed" 100_000 (Buffer.length echoed);
  Tutil.check_bool "identical" true
    (Buffer.contents echoed = Bb.to_string msg)

let test_integrity_under_loss () =
  (* A lossy WAN must still deliver a correct byte stream. *)
  let net, _a, b, sa, sb =
    tcp_pair ~model:(Simnet.Presets.transcontinental_loss 0.08) ~seed:3 ()
  in
  let total = 300_000 in
  let received = Buffer.create total in
  Tcp.listen sb ~port:80 (fun conn ->
      Tcp.set_event_cb conn (fun ev ->
          if ev = Tcp.Readable then begin
            let rec drain () =
              match Tcp.read conn ~max:65_536 with
              | Some buf ->
                Buffer.add_string received (Bb.to_string buf);
                drain ()
              | None -> ()
            in
            drain ()
          end));
  let c = Tcp.connect sa ~dst:(Simnet.Node.id b) ~port:80 in
  let msg = Tutil.pattern_buf ~seed:23 total in
  let sent = ref 0 in
  let pump () =
    if !sent < total then begin
      let n = Tcp.write c (Bb.sub msg !sent (total - !sent)) in
      sent := !sent + n
    end
  in
  Tcp.set_event_cb c (fun ev ->
      match ev with Tcp.Established | Tcp.Writable -> pump () | _ -> ());
  Tutil.run_net net ~until:(Engine.Time.sec 590);
  Tutil.check_int "all delivered despite loss" total (Buffer.length received);
  Tutil.check_bool "stream identical" true
    (Buffer.contents received = Bb.to_string msg);
  Tutil.check_bool "retransmissions happened" true (Tcp.retransmits c > 0)

let test_fin_eof () =
  let net, _a, b, sa, sb = tcp_pair () in
  let got_eof = ref false in
  let got_data = Buffer.create 16 in
  Tcp.listen sb ~port:80 (fun conn ->
      Tcp.set_event_cb conn (fun ev ->
          match ev with
          | Tcp.Readable ->
            (match Tcp.read conn ~max:100 with
             | Some buf -> Buffer.add_string got_data (Bb.to_string buf)
             | None -> ())
          | Tcp.Peer_closed -> got_eof := true
          | _ -> ()));
  let c = Tcp.connect sa ~dst:(Simnet.Node.id b) ~port:80 in
  Tcp.set_event_cb c (fun ev ->
      if ev = Tcp.Established then begin
        ignore (Tcp.write c (Bb.of_string "bye"));
        Tcp.close c
      end);
  Tutil.run_net net;
  Tutil.check_string "data before fin" "bye" (Buffer.contents got_data);
  Tutil.check_bool "peer closed seen" true !got_eof

let test_flow_control_slow_reader () =
  (* Reader never reads: sender must be throttled near the receive buffer
     size, not stream forever. *)
  let net, _a, b, sa, sb = tcp_pair () in
  Tcp.listen sb ~port:80 (fun _conn -> ());
  let c = Tcp.connect sa ~dst:(Simnet.Node.id b) ~port:80 in
  let accepted = ref 0 in
  let big = Bb.create 65_536 in
  let pump () =
    let n = ref 1 in
    while !n > 0 do
      n := Tcp.write c big;
      accepted := !accepted + !n
    done
  in
  Tcp.set_event_cb c (fun ev ->
      match ev with Tcp.Established | Tcp.Writable -> pump () | _ -> ());
  Tutil.run_net net ~until:(Engine.Time.sec 30);
  (* Accepted data is bounded by sndbuf + rcvbuf (plus margin). *)
  Tutil.check_bool "sender throttled" true
    (!accepted <= (2 * Tcp.default_bufsize) + 100_000);
  Tutil.check_bool "window closed" true (Tcp.bytes_sent c <= Tcp.default_bufsize + 65_536)

let test_window_reopens () =
  (* Slow reader that eventually drains: everything must arrive. *)
  let net, _a, b, sa, sb = tcp_pair () in
  let total = 600_000 in
  let received = ref 0 in
  let sim = Simnet.Net.sim net in
  Tcp.listen sb ~port:80 (fun conn ->
      (* Read 10 KB every 50 ms regardless of events. *)
      let rec slow_read () =
        (match Tcp.read conn ~max:10_240 with
         | Some buf -> received := !received + Bb.length buf
         | None -> ());
        if !received < total then
          Engine.Sim.after sim 50_000_000 slow_read
      in
      Engine.Sim.after sim 50_000_000 slow_read);
  let c = Tcp.connect sa ~dst:(Simnet.Node.id b) ~port:80 in
  let sent = ref 0 in
  let chunk = Bb.create 32_768 in
  let pump () =
    let n = ref 1 in
    while !n > 0 && !sent < total do
      let want = min 32_768 (total - !sent) in
      n := Tcp.write c (Bb.sub chunk 0 want);
      sent := !sent + !n
    done
  in
  Tcp.set_event_cb c (fun ev ->
      match ev with Tcp.Established | Tcp.Writable -> pump () | _ -> ());
  Tutil.run_net net ~until:(Engine.Time.sec 120);
  Tutil.check_int "all delivered through a slow reader" total !received

let test_bidirectional () =
  let net, _a, b, sa, sb = tcp_pair () in
  let to_server = Tutil.pattern_buf ~seed:1 50_000 in
  let to_client = Tutil.pattern_buf ~seed:2 80_000 in
  let server_got = Buffer.create 50_000 in
  let client_got = Buffer.create 80_000 in
  Tcp.listen sb ~port:80 (fun conn ->
      let sent = ref 0 in
      let pump () =
        if !sent < Bb.length to_client then begin
          let n =
            Tcp.write conn (Bb.sub to_client !sent (Bb.length to_client - !sent))
          in
          sent := !sent + n
        end
      in
      pump ();
      Tcp.set_event_cb conn (fun ev ->
          match ev with
          | Tcp.Writable -> pump ()
          | Tcp.Readable ->
            let rec drain () =
              match Tcp.read conn ~max:65_536 with
              | Some buf ->
                Buffer.add_string server_got (Bb.to_string buf);
                drain ()
              | None -> ()
            in
            drain ()
          | _ -> ()));
  let c = Tcp.connect sa ~dst:(Simnet.Node.id b) ~port:80 in
  let sent = ref 0 in
  let pump () =
    if !sent < Bb.length to_server then begin
      let n = Tcp.write c (Bb.sub to_server !sent (Bb.length to_server - !sent)) in
      sent := !sent + n
    end
  in
  Tcp.set_event_cb c (fun ev ->
      match ev with
      | Tcp.Established | Tcp.Writable -> pump ()
      | Tcp.Readable ->
        let rec drain () =
          match Tcp.read c ~max:65_536 with
          | Some buf ->
            Buffer.add_string client_got (Bb.to_string buf);
            drain ()
          | None -> ()
        in
        drain ()
      | _ -> ());
  Tutil.run_net net;
  Tutil.check_bool "server received all" true
    (Buffer.contents server_got = Bb.to_string to_server);
  Tutil.check_bool "client received all" true
    (Buffer.contents client_got = Bb.to_string to_client)

let test_two_connections_demux () =
  let net, _a, b, sa, sb = tcp_pair () in
  echo_server sb ~port:80;
  let c1 = Tcp.connect sa ~dst:(Simnet.Node.id b) ~port:80 in
  let c2 = Tcp.connect sa ~dst:(Simnet.Node.id b) ~port:80 in
  let got1 = ref "" and got2 = ref "" in
  let wire c tag got =
    Tcp.set_event_cb c (fun ev ->
        match ev with
        | Tcp.Established -> ignore (Tcp.write c (Bb.of_string tag))
        | Tcp.Readable ->
          (match Tcp.read c ~max:100 with
           | Some buf -> got := !got ^ Bb.to_string buf
           | None -> ())
        | _ -> ())
  in
  wire c1 "first" got1;
  wire c2 "second" got2;
  Tutil.run_net net;
  Tutil.check_string "conn1 echo" "first" !got1;
  Tutil.check_string "conn2 echo" "second" !got2

let test_abort_resets_peer () =
  let net, _a, b, sa, sb = tcp_pair () in
  let server_reset = ref false in
  Tcp.listen sb ~port:80 (fun conn ->
      Tcp.set_event_cb conn (fun ev ->
          if ev = Tcp.Reset then server_reset := true));
  let c = Tcp.connect sa ~dst:(Simnet.Node.id b) ~port:80 in
  Tcp.set_event_cb c (fun ev -> if ev = Tcp.Established then Tcp.abort c);
  Tutil.run_net net;
  Tutil.check_bool "peer saw RST" true !server_reset

let test_cwnd_grows () =
  let net, _a, b, sa, sb = tcp_pair ~model:Simnet.Presets.vthd () in
  echo_server sb ~port:80;
  let c = Tcp.connect sa ~dst:(Simnet.Node.id b) ~port:80 in
  let initial = ref 0 in
  let big = Bb.create 65_536 in
  let sent = ref 0 in
  let pump () =
    if !sent < 2_000_000 then begin
      let n = Tcp.write c big in
      sent := !sent + n
    end
  in
  Tcp.set_event_cb c (fun ev ->
      match ev with
      | Tcp.Established ->
        initial := Tcp.cwnd c;
        pump ()
      | Tcp.Writable -> pump ()
      | Tcp.Readable -> ignore (Tcp.read c ~max:65_536)
      | _ -> ());
  Tutil.run_net net ~until:(Engine.Time.sec 20);
  Tutil.check_bool "congestion window opened" true (Tcp.cwnd c > !initial * 4)

let () =
  Alcotest.run "tcp"
    [ ("lifecycle",
       [ Alcotest.test_case "connect/accept" `Quick test_connect_establish;
         Alcotest.test_case "refused" `Quick test_connection_refused;
         Alcotest.test_case "fin/eof" `Quick test_fin_eof;
         Alcotest.test_case "abort/rst" `Quick test_abort_resets_peer;
         Alcotest.test_case "two connections" `Quick
           test_two_connections_demux ]);
      ("data",
       [ Alcotest.test_case "echo integrity" `Quick test_echo_integrity;
         Alcotest.test_case "integrity under 8% loss" `Quick
           test_integrity_under_loss;
         Alcotest.test_case "bidirectional" `Quick test_bidirectional ]);
      ("flow-control",
       [ Alcotest.test_case "slow reader throttles" `Quick
           test_flow_control_slow_reader;
         Alcotest.test_case "window reopens" `Quick test_window_reopens;
         Alcotest.test_case "cwnd grows" `Quick test_cwnd_grows ]);
    ]
