module Bb = Engine.Bytebuf
module Vl = Vlink.Vl
module Streamq = Vlink.Streamq
module Proc = Engine.Proc
module Vio = Personalities.Vio

(* ---------- Streamq ---------- *)

let test_streamq_basic () =
  let q = Streamq.create () in
  Streamq.push q (Bb.of_string "hello");
  Streamq.push q (Bb.of_string " world");
  Tutil.check_int "length" 11 (Streamq.length q);
  (match Streamq.pop q ~max:3 with
   | Some b -> Tutil.check_string "partial pop" "hel" (Bb.to_string b)
   | None -> Alcotest.fail "pop");
  Tutil.check_string "pop_exact across chunks" "lo wor"
    (Bb.to_string (Streamq.pop_exact q 6));
  Tutil.check_int "remaining" 2 (Streamq.length q)

let prop_streamq_preserves_stream =
  QCheck.Test.make ~name:"streamq preserves the byte stream" ~count:100
    QCheck.(pair (list small_string) (list (int_range 1 50)))
    (fun (chunks, reads) ->
       let q = Streamq.create () in
       List.iter (fun s -> Streamq.push q (Bb.of_string s)) chunks;
       let expected = String.concat "" chunks in
       let buf = Buffer.create 64 in
       List.iter
         (fun n ->
            match Streamq.pop q ~max:n with
            | Some b -> Buffer.add_string buf (Bb.to_string b)
            | None -> ())
         reads;
       while not (Streamq.is_empty q) do
         match Streamq.pop q ~max:17 with
         | Some b -> Buffer.add_string buf (Bb.to_string b)
         | None -> ()
       done;
       Buffer.contents buf = expected)

(* ---------- Vl core over loopback ---------- *)

let test_loopback_pair_roundtrip () =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let va, vb = Vlink.Vl_loopback.pair a in
  let h =
    Simnet.Node.spawn a (fun () ->
        ignore (Vio.write va (Bb.of_string "ping"));
        let buf = Bb.create 4 in
        Tutil.check_bool "read back" true (Vio.read_exact va buf);
        Tutil.check_string "pong" "pong" (Bb.to_string buf))
  in
  let h2 =
    Simnet.Node.spawn a (fun () ->
        let buf = Bb.create 4 in
        Tutil.check_bool "server read" true (Vio.read_exact vb buf);
        Tutil.check_string "ping" "ping" (Bb.to_string buf);
        ignore (Vio.write vb (Bb.of_string "pong")))
  in
  Tutil.run_net net;
  Tutil.assert_done h;
  Tutil.assert_done h2

let test_post_poll_handler_semantics () =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let va, vb = Vlink.Vl_loopback.pair a in
  (* Post a read before any data: poll says pending. *)
  let buf = Bb.create 10 in
  let req = Vl.post_read va buf in
  Tutil.check_bool "pending" true (Vl.poll req = None);
  let completions = ref [] in
  Vl.set_handler req (fun c -> completions := c :: !completions);
  ignore (Vl.post_write vb (Bb.of_string "abc"));
  Tutil.run_net net;
  (match Vl.poll req with
   | Some (Vl.Done 3) -> ()
   | _ -> Alcotest.fail "expected Done 3");
  Tutil.check_int "handler fired once" 1 (List.length !completions);
  (* Handler set after completion fires immediately. *)
  let fired = ref false in
  Vl.set_handler req (fun _ -> fired := true);
  Tutil.check_bool "late handler fires" true !fired

let test_read_after_close_eof () =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let va, vb = Vlink.Vl_loopback.pair a in
  let h =
    Simnet.Node.spawn a (fun () ->
        ignore (Vio.write va (Bb.of_string "last"));
        Vio.close va)
  in
  let got = ref "" in
  let eof = ref false in
  let h2 =
    Simnet.Node.spawn a (fun () ->
        let buf = Bb.create 4 in
        Tutil.check_bool "data first" true (Vio.read_exact vb buf);
        got := Bb.to_string buf;
        eof := Vio.read vb (Bb.create 1) = 0)
  in
  Tutil.run_net net;
  Tutil.assert_done h;
  Tutil.assert_done h2;
  Tutil.check_string "data" "last" !got;
  Tutil.check_bool "eof" true !eof

let test_loopback_connect_refused () =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let vl = Vlink.Vl_loopback.connect a ~port:1234 in
  let h =
    Simnet.Node.spawn a (fun () ->
        match Vl.await_connected vl with
        | Ok () -> Alcotest.fail "should refuse"
        | Error _ -> ())
  in
  Tutil.run_net net;
  Tutil.assert_done h

(* ---------- driver matrix: echo over each driver ---------- *)

let echo_via_grid ~model ~prefs ~expect_driver ~bytes =
  let grid, a, b, _seg = Tutil.grid_pair ~prefs model in
  Padico.listen grid b ~port:5000 (fun vl ->
      ignore
        (Padico.spawn grid b ~name:"echo" (fun () ->
             let buf = Bb.create 65_536 in
             let rec loop () =
               let n = Vio.read vl buf in
               if n > 0 then begin
                 ignore (Vio.write vl (Bb.sub buf 0 n));
                 loop ()
               end
             in
             loop ())));
  let result = ref false in
  let driver = ref "" in
  let h =
    Padico.spawn grid a ~name:"client" (fun () ->
        let vl = Padico.connect grid ~src:a ~dst:b ~port:5000 in
        (match Vio.connect_wait vl with
         | Ok () -> ()
         | Error e -> failwith e);
        driver := Vl.driver_name vl;
        let msg = Tutil.pattern_buf ~seed:3 bytes in
        ignore (Vio.write vl msg);
        let back = Bb.create bytes in
        Tutil.check_bool "echo complete" true (Vio.read_exact vl back);
        result := Bb.equal msg back)
  in
  Tutil.run_grid grid;
  Tutil.assert_done h;
  Tutil.check_bool "payload intact" true !result;
  Tutil.check_string "driver" expect_driver !driver

let default_prefs = Selector.Prefs.default

let test_echo_sysio () =
  echo_via_grid ~model:Simnet.Presets.ethernet100 ~prefs:default_prefs
    ~expect_driver:"sysio" ~bytes:50_000

let test_echo_madio () =
  echo_via_grid ~model:Simnet.Presets.myrinet2000 ~prefs:default_prefs
    ~expect_driver:"madio" ~bytes:200_000

let test_echo_pstream () =
  echo_via_grid ~model:Simnet.Presets.vthd
    ~prefs:
      { default_prefs with Selector.Prefs.pstream_on_wan = true;
        cipher_untrusted = false }
    ~expect_driver:"pstream" ~bytes:300_000

let test_echo_crypto_on_untrusted () =
  (* VTHD is untrusted: with default prefs the cipher wraps the link. *)
  echo_via_grid ~model:Simnet.Presets.vthd ~prefs:default_prefs
    ~expect_driver:"crypto" ~bytes:50_000

let test_echo_adoc_on_slow () =
  echo_via_grid ~model:Simnet.Presets.modem
    ~prefs:
      { default_prefs with Selector.Prefs.adoc_on_slow = true;
        adoc_threshold_bps = 1e5; cipher_untrusted = false;
        vrp_on_lossy = false }
    ~expect_driver:"adoc" ~bytes:20_000

let test_vrp_driver_one_way () =
  let prefs =
    { default_prefs with Selector.Prefs.vrp_on_lossy = true;
      vrp_tolerance = 0.1; cipher_untrusted = false }
  in
  let grid, a, b, _seg =
    Tutil.grid_pair ~prefs (Simnet.Presets.transcontinental_loss 0.05)
  in
  let received = ref 0 in
  Padico.listen grid b ~port:6000 (fun vl ->
      ignore
        (Padico.spawn grid b ~name:"sink" (fun () ->
             let buf = Bb.create 65_536 in
             let rec loop () =
               let n = Vio.read vl buf in
               if n > 0 then begin
                 received := !received + n;
                 loop ()
               end
             in
             loop ())));
  let total = 200_000 in
  let h =
    Padico.spawn grid a ~name:"sender" (fun () ->
        let vl = Padico.connect grid ~src:a ~dst:b ~port:6000 in
        Tutil.check_string "vrp chosen" "vrp" (Vl.driver_name vl);
        ignore (Vio.write vl (Bb.create total));
        Vio.close vl)
  in
  Tutil.run_grid grid;
  Tutil.assert_done h;
  Tutil.check_bool "at least 90% arrived" true
    (!received >= total * 9 / 10);
  Tutil.check_bool "no more than sent" true (!received <= total)

(* adoc adapter stacking correctness over an unreliable-ish path *)
let test_adoc_wrap_roundtrip () =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let inner_a, inner_b = Vlink.Vl_loopback.pair a in
  let va = Vlink.Vl_adoc.wrap ~link_bandwidth_bps:56e3 inner_a in
  let vb = Vlink.Vl_adoc.wrap ~link_bandwidth_bps:56e3 inner_b in
  let msg = Bb.create 100_000 (* zeros: compressible *) in
  let ok = ref false in
  let h =
    Simnet.Node.spawn a (fun () -> ignore (Vio.write va msg))
  in
  let h2 =
    Simnet.Node.spawn a (fun () ->
        let out = Bb.create 100_000 in
        Tutil.check_bool "read all" true (Vio.read_exact vb out);
        ok := Bb.equal msg out)
  in
  Tutil.run_net net;
  Tutil.assert_done h;
  Tutil.assert_done h2;
  Tutil.check_bool "decompressed equals input" true !ok

let test_crypto_wrap_wrong_key_fails () =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let inner_a, inner_b = Vlink.Vl_loopback.pair a in
  let va =
    Vlink.Vl_crypto.wrap ~key:(Methods.Crypto.key_of_string "k1") inner_a
  in
  let vb =
    Vlink.Vl_crypto.wrap ~key:(Methods.Crypto.key_of_string "k2") inner_b
  in
  let failed = ref false in
  Vl.on_event vb (function Vl.Failed _ -> failed := true | _ -> ());
  ignore (Vl.post_write va (Bb.of_string "secret data"));
  Tutil.run_net net;
  Tutil.check_bool "key mismatch detected" true !failed

let () =
  Alcotest.run "vlink"
    [ ("streamq",
       [ Alcotest.test_case "basics" `Quick test_streamq_basic ]);
      Tutil.qsuite "streamq-props" [ prop_streamq_preserves_stream ];
      ("core",
       [ Alcotest.test_case "loopback roundtrip" `Quick
           test_loopback_pair_roundtrip;
         Alcotest.test_case "post/poll/handler" `Quick
           test_post_poll_handler_semantics;
         Alcotest.test_case "eof" `Quick test_read_after_close_eof;
         Alcotest.test_case "refused" `Quick test_loopback_connect_refused ]);
      ("drivers",
       [ Alcotest.test_case "sysio echo" `Quick test_echo_sysio;
         Alcotest.test_case "madio echo (cross-paradigm)" `Quick
           test_echo_madio;
         Alcotest.test_case "pstream echo" `Quick test_echo_pstream;
         Alcotest.test_case "crypto on untrusted" `Quick
           test_echo_crypto_on_untrusted;
         Alcotest.test_case "adoc on slow" `Quick test_echo_adoc_on_slow;
         Alcotest.test_case "vrp one-way" `Quick test_vrp_driver_one_way ]);
      ("adapters",
       [ Alcotest.test_case "adoc stacking" `Quick test_adoc_wrap_roundtrip;
         Alcotest.test_case "crypto key mismatch" `Quick
           test_crypto_wrap_wrong_key_fails ]);
    ]
