test/test_simnet.mli:
