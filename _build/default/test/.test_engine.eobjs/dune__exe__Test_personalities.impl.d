test/test_personalities.ml: Alcotest Array Circuit Engine List Netaccess Padico Personalities Simnet Tutil Vlink
