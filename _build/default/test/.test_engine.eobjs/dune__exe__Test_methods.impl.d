test/test_methods.ml: Alcotest Drivers Engine Gen List Methods Netaccess QCheck Simnet String Tutil
