test/test_personalities.mli:
