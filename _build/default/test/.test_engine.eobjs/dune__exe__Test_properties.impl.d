test/test_properties.ml: Alcotest Array Buffer Drivers Engine Gen List Mw_corba Mw_mpi Padico Personalities Printf QCheck Simnet Tutil
