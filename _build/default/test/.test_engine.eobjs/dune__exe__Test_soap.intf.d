test/test_soap.mli:
