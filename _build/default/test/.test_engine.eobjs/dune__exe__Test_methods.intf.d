test/test_methods.mli:
