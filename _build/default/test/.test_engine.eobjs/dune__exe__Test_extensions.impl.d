test/test_extensions.ml: Alcotest Buffer Engine List Mw_corba Mw_ns Padico Personalities Simnet String Tutil
