test/test_mpi.ml: Alcotest Array Engine List Mw_mpi Padico Printf Simnet Tutil
