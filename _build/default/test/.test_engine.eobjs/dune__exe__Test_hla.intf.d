test/test_hla.mli:
