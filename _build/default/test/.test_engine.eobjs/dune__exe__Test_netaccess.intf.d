test/test_netaccess.mli:
