test/test_dsm.ml: Alcotest Array Engine List Mw_dsm Padico Printf Simnet Tutil
