test/test_pvm.ml: Alcotest Array Engine List Mw_corba Mw_mpi Mw_pvm Padico Printf Simnet Tutil
