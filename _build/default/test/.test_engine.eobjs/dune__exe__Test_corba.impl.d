test/test_corba.ml: Alcotest Engine Format List Mw_corba Padico QCheck Simnet String Tutil
