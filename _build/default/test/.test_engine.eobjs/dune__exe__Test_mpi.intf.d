test/test_mpi.mli:
