test/test_corba.mli:
