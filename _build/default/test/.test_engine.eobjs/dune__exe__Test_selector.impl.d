test/test_selector.ml: Alcotest Selector Simnet Tutil
