test/test_simnet.ml: Alcotest Engine List Simnet Tutil
