test/test_soap.ml: Alcotest Engine List Mw_soap Padico QCheck Simnet String Tutil
