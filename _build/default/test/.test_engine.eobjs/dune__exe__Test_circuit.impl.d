test/test_circuit.ml: Alcotest Array Circuit Engine List Option Padico Selector Simnet Tutil
