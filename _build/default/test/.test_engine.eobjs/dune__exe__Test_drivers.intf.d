test/test_drivers.mli:
