test/test_integration.ml: Alcotest Array Engine List Mw_corba Mw_java Mw_mpi Mw_soap Option Padico Selector Simnet Tutil Vlink
