test/test_vlink.ml: Alcotest Buffer Engine List Methods Padico Personalities QCheck Selector Simnet String Tutil Vlink
