test/test_pvm.mli:
