test/test_madeleine.ml: Alcotest Engine Madeleine Simnet Tutil
