test/test_tcp.ml: Alcotest Buffer Drivers Engine Simnet Tutil
