test/test_selector.mli:
