test/tutil.ml: Alcotest Engine List Padico Printexc QCheck_alcotest Simnet
