test/test_dsm.mli:
