test/test_hla.ml: Alcotest Engine List Mw_hla Padico Simnet Tutil
