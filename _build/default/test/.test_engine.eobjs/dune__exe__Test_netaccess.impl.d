test/test_netaccess.ml: Alcotest Array Drivers Engine List Madeleine Netaccess Printf Simnet Tutil
