test/test_drivers.ml: Alcotest Drivers Engine List QCheck Simnet Tutil
