test/test_engine.ml: Alcotest Engine Gen List Option QCheck String Tutil
