test/test_vlink.mli:
