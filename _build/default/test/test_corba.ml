module Bb = Engine.Bytebuf
module Cdr = Mw_corba.Cdr
module Giop = Mw_corba.Giop
module Orb = Mw_corba.Orb

(* ---------- CDR ---------- *)

let sample_value =
  Cdr.VStruct
    [ ("id", Cdr.VLong 42);
      ("name", Cdr.VString "grid");
      ("ratio", Cdr.VDouble 3.25);
      ("flag", Cdr.VBool true);
      ("data", Cdr.VOctets (Tutil.pattern_buf ~seed:1 5_000));
      ("tags", Cdr.VSeq [ Cdr.VLong 1; Cdr.VNull; Cdr.VString "x" ]);
    ]

let roundtrip p v = Cdr.decode p (Bb.concat (Cdr.encode_iov p v))

let test_cdr_roundtrip_all_profiles () =
  List.iter
    (fun p ->
       Tutil.check_bool (p.Cdr.pname ^ " roundtrip") true
         (Cdr.equal_value sample_value (roundtrip p sample_value)))
    Cdr.profiles

let test_cdr_cross_profile () =
  (* Interoperability: a Mico-encoded request decodes with omniORB rules
     (the wire format is shared; only costs/copies differ). *)
  let encoded = Bb.concat (Cdr.encode_iov Cdr.mico sample_value) in
  Tutil.check_bool "cross decode" true
    (Cdr.equal_value sample_value (Cdr.decode Cdr.omniorb4 encoded))

let test_cdr_zero_copy_audit () =
  (* The central Figure-3 claim: omniORB does not copy the bulk payload,
     Mico does — observable through the copy counter. *)
  let payload = Cdr.VOctets (Bb.create 1_000_000) in
  Bb.reset_copy_counter ();
  ignore (Cdr.encode_iov Cdr.omniorb4 payload);
  let omni_copies = Bb.copies_performed () in
  Bb.reset_copy_counter ();
  ignore (Cdr.encode_iov Cdr.mico payload);
  let mico_copies = Bb.copies_performed () in
  Tutil.check_bool "omniORB bulk is by reference" true
    (omni_copies < 10_000);
  Tutil.check_bool "Mico copies the megabyte at least twice" true
    (mico_copies >= 2_000_000)

let test_cdr_corrupt_rejected () =
  let encoded = Bb.concat (Cdr.encode_iov Cdr.omniorb4 sample_value) in
  let truncated = Bb.sub encoded 0 (Bb.length encoded - 10) in
  Tutil.check_bool "truncated rejected" true
    (try
       ignore (Cdr.decode Cdr.omniorb4 truncated);
       false
     with Invalid_argument _ -> true)

let gen_value =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
           if n <= 0 then
             oneof
               [ return Cdr.VNull;
                 map (fun b -> Cdr.VBool b) bool;
                 map (fun i -> Cdr.VLong i) small_signed_int;
                 map (fun f -> Cdr.VDouble f) (float_bound_inclusive 1e6);
                 map (fun s -> Cdr.VString s) small_string;
                 map (fun s -> Cdr.VOctets (Bb.of_string s)) small_string ]
           else
             oneof
               [ map (fun l -> Cdr.VSeq l) (list_size (int_bound 5) (self (n / 2)));
                 map
                   (fun l ->
                      Cdr.VStruct (List.mapi (fun i v -> ("f" ^ string_of_int i, v)) l))
                   (list_size (int_bound 5) (self (n / 2))) ])
        (min n 6))

let arb_value = QCheck.make gen_value

let prop_cdr_roundtrip =
  QCheck.Test.make ~name:"CDR roundtrip (every profile)" ~count:100 arb_value
    (fun v ->
       List.for_all
         (fun p -> Cdr.equal_value v (roundtrip p v))
         Cdr.profiles)

(* ---------- GIOP ---------- *)

let test_giop_header_roundtrip () =
  let h =
    { Giop.msg_type = Giop.Request; oneway = true; request_id = 777;
      body_len = 12_345 }
  in
  let h' = Giop.decode_header (Giop.encode_header h) in
  Tutil.check_bool "header" true (h = h')

let test_giop_request_roundtrip () =
  let body =
    Bb.concat
      (Giop.encode_request ~profile:Cdr.omniorb4 ~key:"obj-1" ~op:"compute"
         ~args:sample_value)
  in
  let key, op, args = Giop.decode_request ~profile:Cdr.omniorb4 body in
  Tutil.check_string "key" "obj-1" key;
  Tutil.check_string "op" "compute" op;
  Tutil.check_bool "args" true (Cdr.equal_value sample_value args)

let test_giop_reply_roundtrip () =
  let ok_body =
    Bb.concat (Giop.encode_reply ~profile:Cdr.mico ~result:(Ok (Cdr.VLong 5)))
  in
  (match Giop.decode_reply ~profile:Cdr.mico ok_body with
   | Ok (Cdr.VLong 5) -> ()
   | _ -> Alcotest.fail "ok reply");
  let err_body =
    Bb.concat
      (Giop.encode_reply ~profile:Cdr.mico ~result:(Error "OBJ_NOT_FOUND"))
  in
  match Giop.decode_reply ~profile:Cdr.mico err_body with
  | Error "OBJ_NOT_FOUND" -> ()
  | _ -> Alcotest.fail "error reply"

let test_giop_bad_magic () =
  let h =
    Giop.encode_header
      { Giop.msg_type = Giop.Reply; oneway = false; request_id = 1;
        body_len = 0 }
  in
  Bb.set h 0 'X';
  Tutil.check_bool "bad magic rejected" true
    (try
       ignore (Giop.decode_header h);
       false
     with Invalid_argument _ -> true)

(* ---------- ORB end-to-end ---------- *)

let with_orb ?profile body =
  let grid, a, b, _ = Tutil.grid_pair Simnet.Presets.myrinet2000 in
  let client_orb = Orb.init ?profile grid a in
  let server_orb = Orb.init ?profile grid b in
  (* Echo/compute servant. *)
  Orb.activate server_orb ~key:"calc" (fun ~op args ->
      match (op, args) with
      | "echo", v -> Ok v
      | "add", Cdr.VSeq [ Cdr.VLong x; Cdr.VLong y ] -> Ok (Cdr.VLong (x + y))
      | "boom", _ -> Error "deliberate failure"
      | _ -> Error ("BAD_OPERATION: " ^ op))
  ;
  Orb.serve server_orb ~port:3000;
  let h =
    Padico.spawn grid a ~name:"corba-client" (fun () ->
        let proxy =
          Orb.resolve client_orb
            { Orb.ior_node = b; ior_port = 3000; ior_key = "calc" }
        in
        body proxy)
  in
  Tutil.run_grid grid;
  Tutil.assert_done h;
  server_orb

let test_orb_invoke_echo () =
  let orb =
    with_orb (fun proxy ->
        match Orb.invoke proxy ~op:"echo" sample_value with
        | Ok v -> Tutil.check_bool "echoed" true (Cdr.equal_value v sample_value)
        | Error e -> Alcotest.fail e)
  in
  Tutil.check_int "served one request" 1 (Orb.requests_served orb)

let test_orb_add () =
  ignore
    (with_orb (fun proxy ->
         match
           Orb.invoke proxy ~op:"add"
             (Cdr.VSeq [ Cdr.VLong 20; Cdr.VLong 22 ])
         with
         | Ok (Cdr.VLong 42) -> ()
         | Ok v -> Alcotest.failf "wrong result %s" (Format.asprintf "%a" Cdr.pp_value v)
         | Error e -> Alcotest.fail e))

let test_orb_user_exception () =
  ignore
    (with_orb (fun proxy ->
         match Orb.invoke proxy ~op:"boom" Cdr.VNull with
         | Ok _ -> Alcotest.fail "expected exception"
         | Error e -> Tutil.check_string "fault" "deliberate failure" e))

let test_orb_object_not_exist () =
  let grid, a, b, _ = Tutil.grid_pair Simnet.Presets.myrinet2000 in
  let client_orb = Orb.init grid a in
  let server_orb = Orb.init grid b in
  Orb.serve server_orb ~port:3100;
  let h =
    Padico.spawn grid a ~name:"client" (fun () ->
        let proxy =
          Orb.resolve client_orb
            { Orb.ior_node = b; ior_port = 3100; ior_key = "ghost" }
        in
        match Orb.invoke proxy ~op:"ping" Cdr.VNull with
        | Ok _ -> Alcotest.fail "ghost object answered"
        | Error e ->
          Tutil.check_bool "OBJECT_NOT_EXIST" true
            (String.length e >= 16 && String.sub e 0 16 = "OBJECT_NOT_EXIST"))
  in
  Tutil.run_grid grid;
  Tutil.assert_done h

let test_orb_sequential_invocations () =
  ignore
    (with_orb (fun proxy ->
         for i = 1 to 20 do
           match Orb.invoke proxy ~op:"echo" (Cdr.VLong i) with
           | Ok (Cdr.VLong j) -> Tutil.check_int "sequence" i j
           | _ -> Alcotest.fail "echo failed"
         done))

let test_orb_oneway () =
  let orb =
    with_orb (fun proxy ->
        Orb.invoke_oneway proxy ~op:"echo" (Cdr.VLong 1);
        Orb.invoke_oneway proxy ~op:"echo" (Cdr.VLong 2);
        (* A final two-way flushes the pipeline. *)
        match Orb.invoke proxy ~op:"echo" Cdr.VNull with
        | Ok _ -> ()
        | Error e -> Alcotest.fail e)
  in
  Tutil.check_int "all three served" 3 (Orb.requests_served orb)

let test_orb_all_profiles_interoperate () =
  List.iter
    (fun profile ->
       ignore
         (with_orb ~profile (fun proxy ->
              match Orb.invoke proxy ~op:"echo" sample_value with
              | Ok v ->
                Tutil.check_bool
                  (profile.Cdr.pname ^ " echoes")
                  true (Cdr.equal_value v sample_value)
              | Error e -> Alcotest.fail e)))
    Cdr.profiles

let test_ior_string_roundtrip () =
  let grid, _a, b, _ = Tutil.grid_pair Simnet.Presets.ethernet100 in
  let ior = { Orb.ior_node = b; ior_port = 1234; ior_key = "service" } in
  match Orb.ior_of_string grid (Orb.ior_to_string ior) with
  | Some ior' ->
    Tutil.check_bool "ior roundtrip" true
      (Simnet.Node.id ior'.Orb.ior_node = Simnet.Node.id b
       && ior'.Orb.ior_port = 1234 && ior'.Orb.ior_key = "service")
  | None -> Alcotest.fail "ior parse"

let () =
  Alcotest.run "corba"
    [ ("cdr",
       [ Alcotest.test_case "roundtrip all profiles" `Quick
           test_cdr_roundtrip_all_profiles;
         Alcotest.test_case "cross-profile decode" `Quick test_cdr_cross_profile;
         Alcotest.test_case "zero-copy audit" `Quick test_cdr_zero_copy_audit;
         Alcotest.test_case "corrupt rejected" `Quick test_cdr_corrupt_rejected
       ]);
      Tutil.qsuite "cdr-props" [ prop_cdr_roundtrip ];
      ("giop",
       [ Alcotest.test_case "header" `Quick test_giop_header_roundtrip;
         Alcotest.test_case "request" `Quick test_giop_request_roundtrip;
         Alcotest.test_case "reply" `Quick test_giop_reply_roundtrip;
         Alcotest.test_case "bad magic" `Quick test_giop_bad_magic ]);
      ("orb",
       [ Alcotest.test_case "invoke echo" `Quick test_orb_invoke_echo;
         Alcotest.test_case "add" `Quick test_orb_add;
         Alcotest.test_case "user exception" `Quick test_orb_user_exception;
         Alcotest.test_case "object not exist" `Quick
           test_orb_object_not_exist;
         Alcotest.test_case "sequential invocations" `Quick
           test_orb_sequential_invocations;
         Alcotest.test_case "oneway" `Quick test_orb_oneway;
         Alcotest.test_case "profiles interoperate" `Quick
           test_orb_all_profiles_interoperate;
         Alcotest.test_case "ior string" `Quick test_ior_string_roundtrip ]);
    ]
