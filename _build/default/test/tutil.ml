(* Shared helpers for the test suites. *)

module Bb = Engine.Bytebuf

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_string = Alcotest.(check string)

(* Run a simulation until quiescence (bounded), then assert the processes
   completed without raising. *)
let run_net ?(until = Engine.Time.sec 600) net = Simnet.Net.run net ~until

let run_grid ?(until = Engine.Time.sec 600) grid = Padico.run grid ~until

let assert_done h =
  match Engine.Proc.result h with
  | Some (Ok ()) -> ()
  | Some (Error e) ->
    Alcotest.failf "process %s raised %s" (Engine.Proc.name h)
      (Printexc.to_string e)
  | None -> Alcotest.failf "process %s did not finish" (Engine.Proc.name h)

(* A two-node net on one segment. *)
let pair ?seed model =
  let net = Simnet.Net.create ?seed () in
  let a = Simnet.Net.add_node net "a" in
  let b = Simnet.Net.add_node net "b" in
  let seg = Simnet.Net.add_segment net model [ a; b ] in
  (net, a, b, seg)

(* A two-node Padico grid on one segment. *)
let grid_pair ?seed ?prefs model =
  let grid = Padico.create ?seed ?prefs () in
  let a = Padico.add_node grid "a" in
  let b = Padico.add_node grid "b" in
  let seg = Padico.add_segment grid model [ a; b ] in
  (grid, a, b, seg)

(* Two 2-node clusters (Myrinet inside) joined by a WAN; every node also on
   a LAN for IP reachability inside the cluster. *)
let two_clusters ?seed ?prefs ~wan () =
  let grid = Padico.create ?seed ?prefs () in
  let a1 = Padico.add_node grid "a1" in
  let a2 = Padico.add_node grid "a2" in
  let b1 = Padico.add_node grid "b1" in
  let b2 = Padico.add_node grid "b2" in
  ignore
    (Padico.add_segment grid Simnet.Presets.myrinet2000 ~name:"myri-a"
       [ a1; a2 ]);
  ignore
    (Padico.add_segment grid Simnet.Presets.myrinet2000 ~name:"myri-b"
       [ b1; b2 ]);
  ignore
    (Padico.add_segment grid Simnet.Presets.ethernet100 ~name:"lan-a"
       [ a1; a2 ]);
  ignore
    (Padico.add_segment grid Simnet.Presets.ethernet100 ~name:"lan-b"
       [ b1; b2 ]);
  ignore (Padico.add_segment grid wan ~name:"wan" [ a1; a2; b1; b2 ]);
  (grid, a1, a2, b1, b2)

let pattern_buf ~seed n =
  let b = Bb.create n in
  Bb.fill_pattern b ~seed;
  b

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)
