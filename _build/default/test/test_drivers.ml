module Bb = Engine.Bytebuf
module Gm = Drivers.Gm
module Udp = Drivers.Udp

(* ---------- GM ---------- *)

let gm_pair () =
  let net, a, b, seg = Tutil.pair Simnet.Presets.myrinet2000 in
  (net, a, b, seg, Gm.attach seg a, Gm.attach seg b)

let test_gm_channel_budget () =
  let _net, _a, _b, _seg, pa, _pb = gm_pair () in
  Tutil.check_int "myrinet budget" 2 (Gm.max_channels pa);
  let _c0 = Gm.open_channel pa ~id:0 in
  let _c1 = Gm.open_channel pa ~id:1 in
  Tutil.check_int "in use" 2 (Gm.channels_in_use pa);
  Alcotest.check_raises "third channel refused" Gm.No_channel_left (fun () ->
      ignore (Gm.open_channel pa ~id:2))

let test_gm_sci_budget () =
  let _net, a, _b, seg = Tutil.pair Simnet.Presets.sci in
  let p = Gm.attach seg a in
  Tutil.check_int "sci budget" 1 (Gm.max_channels p)

let test_gm_requires_san () =
  let _net, a, _b, seg = Tutil.pair Simnet.Presets.ethernet100 in
  Alcotest.check_raises "no GM on ethernet"
    (Invalid_argument "Gm.attach: GM requires a SAN or loopback segment")
    (fun () -> ignore (Gm.attach seg a))

let test_gm_reopen_after_close () =
  let _net, _a, _b, _seg, pa, _pb = gm_pair () in
  let c0 = Gm.open_channel pa ~id:0 in
  Gm.close_channel c0;
  let c0' = Gm.open_channel pa ~id:0 in
  Tutil.check_int "reopened" 0 (Gm.channel_id c0')

let test_gm_roundtrip_small () =
  let net, _a, b, _seg, pa, pb = gm_pair () in
  let ca = Gm.open_channel pa ~id:0 in
  let cb = Gm.open_channel pb ~id:0 in
  let got = ref None in
  Gm.set_recv cb (fun ~src buf -> got := Some (src, buf));
  let msg = Tutil.pattern_buf ~seed:5 100 in
  Gm.send ca ~dst:(Simnet.Node.id b) msg;
  Tutil.run_net net;
  match !got with
  | Some (src, buf) ->
    Tutil.check_int "source" 0 src;
    Tutil.check_bool "payload identical" true (Bb.equal msg buf)
  | None -> Alcotest.fail "message not delivered"

let test_gm_fragmentation_integrity () =
  (* 100 KB > 32 KB MTU: fragmented and reassembled by DMA. *)
  let net, _a, b, _seg, pa, pb = gm_pair () in
  let ca = Gm.open_channel pa ~id:0 in
  let cb = Gm.open_channel pb ~id:0 in
  let got = ref None in
  Gm.set_recv cb (fun ~src:_ buf -> got := Some buf);
  let msg = Tutil.pattern_buf ~seed:11 100_000 in
  Bb.reset_copy_counter ();
  Gm.send ca ~dst:(Simnet.Node.id b) msg;
  Tutil.run_net net;
  (match !got with
   | Some buf ->
     Tutil.check_int "length" 100_000 (Bb.length buf);
     Tutil.check_bool "content" true (Bb.equal msg buf)
   | None -> Alcotest.fail "message not delivered");
  Tutil.check_int "zero-copy path (DMA only)" 0 (Bb.copies_performed ())

let test_gm_ordering () =
  let net, _a, b, _seg, pa, pb = gm_pair () in
  let ca = Gm.open_channel pa ~id:0 in
  let cb = Gm.open_channel pb ~id:0 in
  let order = ref [] in
  Gm.set_recv cb (fun ~src:_ buf -> order := Bb.get_u8 buf 0 :: !order);
  for i = 1 to 10 do
    let m = Bb.create 10 in
    Bb.set_u8 m 0 i;
    Gm.send ca ~dst:(Simnet.Node.id b) m
  done;
  Tutil.run_net net;
  Alcotest.(check (list int)) "in order" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (List.rev !order)

let test_gm_channel_isolation () =
  let net, _a, b, _seg, pa, pb = gm_pair () in
  let ca0 = Gm.open_channel pa ~id:0 in
  let ca1 = Gm.open_channel pa ~id:1 in
  let cb0 = Gm.open_channel pb ~id:0 in
  let cb1 = Gm.open_channel pb ~id:1 in
  let on0 = ref 0 and on1 = ref 0 in
  Gm.set_recv cb0 (fun ~src:_ _ -> incr on0);
  Gm.set_recv cb1 (fun ~src:_ _ -> incr on1);
  Gm.send ca0 ~dst:(Simnet.Node.id b) (Bb.create 4);
  Gm.send ca1 ~dst:(Simnet.Node.id b) (Bb.create 4);
  Gm.send ca1 ~dst:(Simnet.Node.id b) (Bb.create 4);
  Tutil.run_net net;
  Tutil.check_int "channel 0" 1 !on0;
  Tutil.check_int "channel 1" 2 !on1

let test_gm_sendv_gather () =
  let net, _a, b, _seg, pa, pb = gm_pair () in
  let ca = Gm.open_channel pa ~id:0 in
  let cb = Gm.open_channel pb ~id:0 in
  let got = ref None in
  Gm.set_recv cb (fun ~src:_ buf -> got := Some buf);
  let p1 = Tutil.pattern_buf ~seed:1 10 in
  let p2 = Tutil.pattern_buf ~seed:2 50_000 in
  let p3 = Tutil.pattern_buf ~seed:3 7 in
  Gm.sendv ca ~dst:(Simnet.Node.id b) [ p1; p2; p3 ];
  Tutil.run_net net;
  match !got with
  | Some buf ->
    Tutil.check_bool "gathered equals concat" true
      (Bb.equal buf (Bb.concat [ p1; p2; p3 ]))
  | None -> Alcotest.fail "not delivered"

let prop_gm_any_size_roundtrip =
  QCheck.Test.make ~name:"GM delivers any size intact" ~count:30
    QCheck.(int_range 0 200_000)
    (fun n ->
       let net, _a, b, _seg, pa, pb = gm_pair () in
       let ca = Gm.open_channel pa ~id:0 in
       let cb = Gm.open_channel pb ~id:0 in
       let ok = ref false in
       let msg = Tutil.pattern_buf ~seed:n n in
       Gm.set_recv cb (fun ~src:_ buf -> ok := Bb.equal msg buf);
       Gm.send ca ~dst:(Simnet.Node.id b) msg;
       Tutil.run_net net;
       !ok)

(* ---------- UDP ---------- *)

let udp_pair ?(model = Simnet.Presets.ethernet100) () =
  let net, a, b, seg = Tutil.pair model in
  (net, a, b, Udp.attach seg a, Udp.attach seg b)

let test_udp_roundtrip () =
  let net, _a, b, ua, ub = udp_pair () in
  let got = ref None in
  Udp.bind ub ~port:53 (fun ~src ~src_port buf ->
      got := Some (src, src_port, buf));
  let msg = Tutil.pattern_buf ~seed:4 512 in
  Udp.sendto ua ~dst:(Simnet.Node.id b) ~dst_port:53 ~src_port:1000 msg;
  Tutil.run_net net;
  match !got with
  | Some (src, sport, buf) ->
    Tutil.check_int "src" 0 src;
    Tutil.check_int "sport" 1000 sport;
    Tutil.check_bool "payload" true (Bb.equal msg buf)
  | None -> Alcotest.fail "datagram not delivered"

let test_udp_port_demux () =
  let net, _a, b, ua, ub = udp_pair () in
  let p1 = ref 0 and p2 = ref 0 in
  Udp.bind ub ~port:1 (fun ~src:_ ~src_port:_ _ -> incr p1);
  Udp.bind ub ~port:2 (fun ~src:_ ~src_port:_ _ -> incr p2);
  Udp.sendto ua ~dst:(Simnet.Node.id b) ~dst_port:1 ~src_port:9 (Bb.create 1);
  Udp.sendto ua ~dst:(Simnet.Node.id b) ~dst_port:2 ~src_port:9 (Bb.create 1);
  Udp.sendto ua ~dst:(Simnet.Node.id b) ~dst_port:2 ~src_port:9 (Bb.create 1);
  Udp.sendto ua ~dst:(Simnet.Node.id b) ~dst_port:3 ~src_port:9 (Bb.create 1);
  Tutil.run_net net;
  Tutil.check_int "port 1" 1 !p1;
  Tutil.check_int "port 2" 2 !p2

let test_udp_double_bind () =
  let _net, _a, _b, _ua, ub = udp_pair () in
  Udp.bind ub ~port:7 (fun ~src:_ ~src_port:_ _ -> ());
  Alcotest.check_raises "double bind"
    (Invalid_argument "Udp.bind: port 7 already bound") (fun () ->
      Udp.bind ub ~port:7 (fun ~src:_ ~src_port:_ _ -> ()))

let test_udp_max_payload () =
  let _net, _a, b, ua, _ub = udp_pair () in
  Tutil.check_int "max payload" (1500 - 28) (Udp.max_payload ua);
  Alcotest.check_raises "oversize"
    (Invalid_argument "Udp.sendto: datagram of 1473 exceeds max payload 1472")
    (fun () ->
       Udp.sendto ua ~dst:(Simnet.Node.id b) ~dst_port:1 ~src_port:1
         (Bb.create 1473))

let test_udp_loss () =
  let net, _a, b, ua, ub =
    udp_pair ~model:(Simnet.Presets.transcontinental_loss 0.5) ()
  in
  let got = ref 0 in
  Udp.bind ub ~port:5 (fun ~src:_ ~src_port:_ _ -> incr got);
  let n = 2000 in
  let sim = Simnet.Net.sim net in
  let rec send i =
    if i < n then begin
      Udp.sendto ua ~dst:(Simnet.Node.id b) ~dst_port:5 ~src_port:5
        (Bb.create 100);
      Engine.Sim.after sim 3_000_000 (fun () -> send (i + 1))
    end
  in
  send 0;
  Tutil.run_net net ~until:(Engine.Time.sec 60);
  let ratio = float_of_int !got /. float_of_int n in
  Tutil.check_bool "about half delivered" true (ratio > 0.42 && ratio < 0.58)

let test_udp_unbind () =
  let net, _a, b, ua, ub = udp_pair () in
  let got = ref 0 in
  Udp.bind ub ~port:9 (fun ~src:_ ~src_port:_ _ -> incr got);
  Udp.unbind ub ~port:9;
  Udp.sendto ua ~dst:(Simnet.Node.id b) ~dst_port:9 ~src_port:1 (Bb.create 4);
  Tutil.run_net net;
  Tutil.check_int "nothing received after unbind" 0 !got

let () =
  Alcotest.run "drivers"
    [ ("gm",
       [ Alcotest.test_case "channel budget" `Quick test_gm_channel_budget;
         Alcotest.test_case "sci budget" `Quick test_gm_sci_budget;
         Alcotest.test_case "requires SAN" `Quick test_gm_requires_san;
         Alcotest.test_case "reopen after close" `Quick
           test_gm_reopen_after_close;
         Alcotest.test_case "roundtrip small" `Quick test_gm_roundtrip_small;
         Alcotest.test_case "fragmentation" `Quick
           test_gm_fragmentation_integrity;
         Alcotest.test_case "ordering" `Quick test_gm_ordering;
         Alcotest.test_case "channel isolation" `Quick
           test_gm_channel_isolation;
         Alcotest.test_case "sendv gather" `Quick test_gm_sendv_gather ]);
      Tutil.qsuite "gm-props" [ prop_gm_any_size_roundtrip ];
      ("udp",
       [ Alcotest.test_case "roundtrip" `Quick test_udp_roundtrip;
         Alcotest.test_case "port demux" `Quick test_udp_port_demux;
         Alcotest.test_case "double bind" `Quick test_udp_double_bind;
         Alcotest.test_case "max payload" `Quick test_udp_max_payload;
         Alcotest.test_case "loss" `Quick test_udp_loss;
         Alcotest.test_case "unbind" `Quick test_udp_unbind ]);
    ]
