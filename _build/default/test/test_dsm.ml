module Bb = Engine.Bytebuf
module Dsm = Mw_dsm.Dsm

(* Run one process per rank; [body rank node dsm] in process context.
   Phases are sequenced with virtual-time sleeps (deterministic). *)
let dsm_job ?(pages = 8) ?(page_size = 4096) ~np body =
  let grid = Padico.create () in
  let nodes =
    List.init np (fun i -> Padico.add_node grid (Printf.sprintf "n%d" i))
  in
  ignore (Padico.add_segment grid Simnet.Presets.myrinet2000 nodes);
  let cts = Padico.circuit grid ~name:"dsm" nodes in
  let dsms = Dsm.create cts ~pages ~page_size in
  let handles =
    Array.mapi
      (fun i d ->
         let node = List.nth nodes i in
         Padico.spawn grid node ~name:(Printf.sprintf "dsm%d" i) (fun () ->
             body i node d))
      dsms
  in
  Tutil.run_grid grid;
  Array.iter Tutil.assert_done handles

let phase node k = Engine.Proc.sleep (Simnet.Node.sim node) (k * 10_000_000)

let test_write_then_remote_read () =
  dsm_job ~np:2 (fun rank node d ->
      if rank = 0 then begin
        Dsm.write_u32 d ~page:3 ~off:0 0xCAFE;
        Dsm.write_u32 d ~page:3 ~off:4 7
      end
      else begin
        phase node 1;
        Tutil.check_int "remote read sees write" 0xCAFE
          (Dsm.read_u32 d ~page:3 ~off:0);
        Tutil.check_int "second word" 7 (Dsm.read_u32 d ~page:3 ~off:4)
      end)

let test_read_caching () =
  dsm_job ~np:2 (fun rank node d ->
      if rank = 0 then Dsm.write_u32 d ~page:1 ~off:0 5
      else begin
        phase node 1;
        ignore (Dsm.read_u32 d ~page:1 ~off:0);
        let fetches_before = Dsm.remote_fetches d in
        (* Re-reads hit the cache. *)
        for _ = 1 to 10 do
          ignore (Dsm.read_u32 d ~page:1 ~off:0)
        done;
        Tutil.check_int "no extra fetches" fetches_before
          (Dsm.remote_fetches d);
        Tutil.check_bool "hits counted" true (Dsm.local_hits d >= 10)
      end)

let test_write_invalidates_readers () =
  dsm_job ~np:3 (fun rank node d ->
      match rank with
      | 0 ->
        Dsm.write_u32 d ~page:2 ~off:0 1;
        phase node 2;
        (* Phase 2: overwrite; readers must see the new value afterwards. *)
        Dsm.write_u32 d ~page:2 ~off:0 2
      | _ ->
        phase node 1;
        Tutil.check_int "initial value" 1 (Dsm.read_u32 d ~page:2 ~off:0);
        phase node 2;
        (* Our cached copy must have been invalidated. *)
        Tutil.check_int "updated value" 2 (Dsm.read_u32 d ~page:2 ~off:0))

let test_invalidation_counted () =
  dsm_job ~np:2 (fun rank node d ->
      if rank = 1 then begin
        ignore (Dsm.read_u32 d ~page:0 ~off:0);
        phase node 2;
        ignore (Dsm.read_u32 d ~page:0 ~off:0);
        Tutil.check_bool "was invalidated" true
          (Dsm.invalidations_received d >= 1)
      end
      else begin
        phase node 1;
        Dsm.write_u32 d ~page:0 ~off:0 99
      end)

let test_ping_pong_ownership () =
  (* Two ranks alternately increment a shared counter: sequential
     consistency through exclusive-ownership migration. *)
  let rounds = 10 in
  dsm_job ~np:2 (fun rank node d ->
      for r = 0 to rounds - 1 do
        phase node ((2 * r) + if rank = 0 then 0 else 1);
        if r mod 1 = 0 then
          Dsm.write d ~page:5 (fun data ->
              let v = Bb.get_u32 data 0 in
              Bb.set_u32 data 0 (v + 1))
      done;
      phase node (2 * rounds + 2);
      Tutil.check_int "final count" (2 * rounds) (Dsm.read_u32 d ~page:5 ~off:0))

let test_distinct_pages_independent () =
  dsm_job ~np:4 ~pages:4 (fun rank node d ->
      (* Each rank owns its own page: no interference. *)
      Dsm.write_u32 d ~page:rank ~off:0 (rank * 11);
      phase node 1;
      for p = 0 to 3 do
        Tutil.check_int
          (Printf.sprintf "rank %d reads page %d" rank p)
          (p * 11)
          (Dsm.read_u32 d ~page:p ~off:0)
      done)

let test_page_bounds () =
  dsm_job ~np:2 (fun rank _node d ->
      if rank = 0 then
        Alcotest.check_raises "page out of range"
          (Invalid_argument "Dsm: page out of range") (fun () ->
            ignore (Dsm.read d ~page:99)))

let test_sequential_model_check () =
  (* Random single-writer phases executed against a reference array:
     after each phase every rank must read the reference value. *)
  let pages = 4 in
  let phases = 12 in
  let rng = Engine.Rng.create 77 in
  let writers = Array.init phases (fun _ -> Engine.Rng.int rng 3) in
  let values = Array.init phases (fun _ -> Engine.Rng.int rng 1_000_000) in
  let pagesel = Array.init phases (fun _ -> Engine.Rng.int rng pages) in
  let reference = Array.make pages 0 in
  dsm_job ~np:3 ~pages (fun rank node d ->
      for ph = 0 to phases - 1 do
        phase node (2 * ph);
        if writers.(ph) = rank then
          Dsm.write_u32 d ~page:pagesel.(ph) ~off:0 values.(ph);
        phase node ((2 * ph) + 1);
        (* Maintain the reference locally (same deterministic schedule). *)
        reference.(pagesel.(ph)) <- values.(ph);
        Tutil.check_int
          (Printf.sprintf "phase %d rank %d page %d" ph rank pagesel.(ph))
          reference.(pagesel.(ph))
          (Dsm.read_u32 d ~page:pagesel.(ph) ~off:0)
      done)

let () =
  Alcotest.run "dsm"
    [ ("coherence",
       [ Alcotest.test_case "remote read" `Quick test_write_then_remote_read;
         Alcotest.test_case "read caching" `Quick test_read_caching;
         Alcotest.test_case "write invalidates" `Quick
           test_write_invalidates_readers;
         Alcotest.test_case "invalidations counted" `Quick
           test_invalidation_counted;
         Alcotest.test_case "ownership ping-pong" `Quick
           test_ping_pong_ownership;
         Alcotest.test_case "independent pages" `Quick
           test_distinct_pages_independent;
         Alcotest.test_case "bounds" `Quick test_page_bounds;
         Alcotest.test_case "sequential model check" `Quick
           test_sequential_model_check ]);
    ]
