module Bb = Engine.Bytebuf
module Mad = Madeleine.Mad

let mad_pair () =
  let net, a, b, seg = Tutil.pair Simnet.Presets.myrinet2000 in
  (net, a, b, Mad.init seg a, Mad.init seg b)

let test_channel_budget_shared_with_gm () =
  let _net, _a, _b, ma, _mb = mad_pair () in
  Tutil.check_int "budget" 2 (Mad.max_channels ma);
  let _c0 = Mad.open_channel ma ~id:0 in
  let _c1 = Mad.open_channel ma ~id:1 in
  Alcotest.check_raises "exhausted" Mad.No_channel_left (fun () ->
      ignore (Mad.open_channel ma ~id:2))

let test_pack_unpack_roundtrip () =
  let net, _a, b, ma, mb = mad_pair () in
  let ca = Mad.open_channel ma ~id:0 in
  let cb = Mad.open_channel mb ~id:0 in
  let header = Tutil.pattern_buf ~seed:1 16 in
  let body = Tutil.pattern_buf ~seed:2 10_000 in
  let ok = ref false in
  Mad.set_recv cb (fun inc ->
      Mad.begin_unpacking inc;
      Tutil.check_int "src" 0 (Mad.incoming_src inc);
      Tutil.check_int "total" 10_016 (Mad.incoming_length inc);
      let h = Mad.unpack inc ~mode:Mad.Receive_express 16 in
      let d = Mad.unpack inc ~mode:Mad.Receive_cheaper 10_000 in
      Mad.end_unpacking inc;
      ok := Bb.equal h header && Bb.equal d body);
  let out = Mad.begin_packing ca ~dst:(Simnet.Node.id b) in
  Mad.pack out ~mode:Mad.Send_later header;
  Mad.pack out ~mode:Mad.Send_cheaper body;
  Mad.end_packing out;
  Tutil.run_net net;
  Tutil.check_bool "pieces roundtrip" true !ok

let test_send_safer_copies () =
  (* Send_safer must snapshot: mutating the buffer after pack must not
     change what is delivered. *)
  let net, _a, b, ma, mb = mad_pair () in
  let ca = Mad.open_channel ma ~id:0 in
  let cb = Mad.open_channel mb ~id:0 in
  let buf = Bb.of_string "original" in
  let got = ref "" in
  Mad.set_recv cb (fun inc ->
      got := Bb.to_string (Mad.unpack inc (Mad.remaining inc)));
  let out = Mad.begin_packing ca ~dst:(Simnet.Node.id b) in
  Mad.pack out ~mode:Mad.Send_safer buf;
  Bb.set buf 0 'X';
  Mad.end_packing out;
  Tutil.run_net net;
  Tutil.check_string "safer snapshot" "original" !got

let test_send_cheaper_references () =
  (* Send_cheaper may reference: a mutation before end_packing IS visible
     (that is the documented contract difference). *)
  let net, _a, b, ma, mb = mad_pair () in
  let ca = Mad.open_channel ma ~id:0 in
  let cb = Mad.open_channel mb ~id:0 in
  let buf = Bb.of_string "original" in
  let got = ref "" in
  Mad.set_recv cb (fun inc ->
      got := Bb.to_string (Mad.unpack inc (Mad.remaining inc)));
  let out = Mad.begin_packing ca ~dst:(Simnet.Node.id b) in
  Mad.pack out ~mode:Mad.Send_cheaper buf;
  Bb.set buf 0 'X';
  Mad.end_packing out;
  Tutil.run_net net;
  Tutil.check_string "cheaper references" "Xriginal" !got

let test_unpack_overrun_raises () =
  let net, _a, b, ma, mb = mad_pair () in
  let ca = Mad.open_channel ma ~id:0 in
  let cb = Mad.open_channel mb ~id:0 in
  let raised = ref false in
  Mad.set_recv cb (fun inc ->
      (try ignore (Mad.unpack inc 100)
       with Invalid_argument _ -> raised := true));
  let out = Mad.begin_packing ca ~dst:(Simnet.Node.id b) in
  Mad.pack out (Bb.create 10);
  Mad.end_packing out;
  Tutil.run_net net;
  Tutil.check_bool "overrun rejected" true !raised

let test_double_end_packing_raises () =
  let net, _a, b, ma, _mb = mad_pair () in
  let ca = Mad.open_channel ma ~id:0 in
  let out = Mad.begin_packing ca ~dst:(Simnet.Node.id b) in
  Mad.pack out (Bb.create 4);
  Mad.end_packing out;
  Alcotest.check_raises "double end"
    (Invalid_argument "Mad.end_packing: message already sent") (fun () ->
      Mad.end_packing out);
  Tutil.run_net net

let test_counters () =
  let net, _a, b, ma, mb = mad_pair () in
  let ca = Mad.open_channel ma ~id:0 in
  let cb = Mad.open_channel mb ~id:0 in
  Mad.set_recv cb (fun _ -> ());
  for _ = 1 to 5 do
    let out = Mad.begin_packing ca ~dst:(Simnet.Node.id b) in
    Mad.pack out (Bb.create 8);
    Mad.end_packing out
  done;
  Tutil.run_net net;
  Tutil.check_int "sent" 5 (Mad.messages_sent ma);
  Tutil.check_int "received" 5 (Mad.messages_received mb)

let () =
  Alcotest.run "madeleine"
    [ ("channels",
       [ Alcotest.test_case "hardware budget" `Quick
           test_channel_budget_shared_with_gm ]);
      ("packing",
       [ Alcotest.test_case "roundtrip" `Quick test_pack_unpack_roundtrip;
         Alcotest.test_case "Send_safer copies" `Quick test_send_safer_copies;
         Alcotest.test_case "Send_cheaper references" `Quick
           test_send_cheaper_references;
         Alcotest.test_case "unpack overrun" `Quick test_unpack_overrun_raises;
         Alcotest.test_case "double end_packing" `Quick
           test_double_end_packing_raises;
         Alcotest.test_case "counters" `Quick test_counters ]);
    ]
