(* Cross-cutting property tests: determinism of the whole simulator,
   TCP stream integrity under randomized traffic and loss, MPI collective
   correctness on random vectors and group sizes. *)

module Bb = Engine.Bytebuf
module Tcp = Drivers.Tcp
module Mpi = Mw_mpi.Mpi

(* ---------- determinism ---------- *)

(* A full-stack scenario, returning a digest of everything observable. *)
let scenario_digest seed =
  let grid, a, b, _ = Tutil.grid_pair ~seed Simnet.Presets.vthd in
  let digest = ref 0 in
  let mix v = digest := (!digest * 1_000_003) + v land max_int in
  Padico.listen grid b ~port:4000 (fun vl ->
      ignore
        (Padico.spawn grid b ~name:"sink" (fun () ->
             let buf = Bb.create 4096 in
             let rec loop () =
               let n = Personalities.Vio.read vl buf in
               if n > 0 then begin
                 mix n;
                 mix (Padico.now grid);
                 loop ()
               end
             in
             loop ())));
  ignore
    (Padico.spawn grid a ~name:"src" (fun () ->
         let vl = Padico.connect grid ~src:a ~dst:b ~port:4000 in
         (match Personalities.Vio.connect_wait vl with
          | Ok () -> ()
          | Error e -> failwith e);
         for i = 1 to 50 do
           ignore (Personalities.Vio.write vl (Tutil.pattern_buf ~seed:i 4096))
         done));
  Tutil.run_grid grid;
  mix (Padico.now grid);
  !digest

let prop_simulation_deterministic =
  QCheck.Test.make ~name:"same seed => byte-identical simulation" ~count:10
    QCheck.(int_bound 1000)
    (fun seed -> scenario_digest seed = scenario_digest seed)

let test_different_seeds_diverge () =
  (* Loss draws differ across seeds on a lossy link, so timings differ. *)
  Tutil.check_bool "seeds influence the run" true
    (scenario_digest 1 <> scenario_digest 2)

(* ---------- TCP under randomized traffic ---------- *)

let tcp_random_traffic (seed, sizes, loss_pct) =
  let loss = float_of_int loss_pct /. 100.0 in
  let model =
    { Simnet.Presets.ethernet100 with
      Simnet.Linkmodel.loss;
      latency_ns = 500_000 }
  in
  let net, _a, b, seg = Tutil.pair ~seed model in
  let a = List.hd (Simnet.Net.nodes net) in
  let sa = Tcp.attach seg a in
  let sb = Tcp.attach seg b in
  let received = Buffer.create 1024 in
  Tcp.listen sb ~port:80 (fun conn ->
      Tcp.set_event_cb conn (fun ev ->
          if ev = Tcp.Readable then begin
            let rec drain () =
              match Tcp.read conn ~max:65_536 with
              | Some buf ->
                Buffer.add_string received (Bb.to_string buf);
                drain ()
              | None -> ()
            in
            drain ()
          end));
  let sent = Buffer.create 1024 in
  let chunks =
    List.map
      (fun s ->
         let b = Tutil.pattern_buf ~seed:(s + seed) (max 1 s) in
         Buffer.add_string sent (Bb.to_string b);
         b)
      sizes
  in
  let c = Tcp.connect sa ~dst:(Simnet.Node.id b) ~port:80 in
  let pending = ref chunks in
  let offset = ref 0 in
  let rec pump () =
    match !pending with
    | [] -> ()
    | chunk :: rest ->
      let len = Bb.length chunk in
      let n = Tcp.write c (Bb.sub chunk !offset (len - !offset)) in
      offset := !offset + n;
      if !offset = len then begin
        pending := rest;
        offset := 0;
        if n > 0 then pump ()
      end
  in
  Tcp.set_event_cb c (fun ev ->
      match ev with Tcp.Established | Tcp.Writable -> pump () | _ -> ());
  Tutil.run_net net ~until:(Engine.Time.sec 590);
  Buffer.contents received = Buffer.contents sent

let prop_tcp_random_streams =
  QCheck.Test.make
    ~name:"TCP delivers arbitrary write patterns intact (0-6% loss)"
    ~count:15
    QCheck.(triple (int_bound 10_000)
              (list_of_size Gen.(int_range 1 12) (make Gen.(int_range 0 20_000)))
              (int_bound 6))
    tcp_random_traffic

(* ---------- MPI collectives on random inputs ---------- *)

let run_allreduce (np, values, op_pick) =
  let np = max 2 (min 6 np) in
  let op, reference =
    match op_pick mod 3 with
    | 0 -> (Mpi.Sum, fun l -> List.fold_left ( + ) 0 l)
    | 1 -> (Mpi.Max, fun l -> List.fold_left max min_int l)
    | _ -> (Mpi.Min, fun l -> List.fold_left min max_int l)
  in
  let values = if values = [] then [ 1 ] else values in
  let per_rank =
    Array.init np (fun r -> List.nth values (r mod List.length values))
  in
  let grid = Padico.create () in
  let nodes =
    List.init np (fun i -> Padico.add_node grid (Printf.sprintf "n%d" i))
  in
  ignore (Padico.add_segment grid Simnet.Presets.myrinet2000 nodes);
  let comms = Mpi.init (Padico.circuit grid ~name:"prop" nodes) in
  let results = Array.make np None in
  let handles =
    Array.mapi
      (fun rank comm ->
         Padico.spawn grid (List.nth nodes rank)
           ~name:(Printf.sprintf "r%d" rank) (fun () ->
             let out =
               Mpi.allreduce comm ~op ~datatype:Mpi.Int_t
                 (Mpi.ints_to_buf [| per_rank.(rank) |])
             in
             results.(rank) <- Some (Mpi.ints_of_buf out).(0)))
      comms
  in
  Tutil.run_grid grid;
  Array.iter Tutil.assert_done handles;
  let expected = reference (Array.to_list per_rank) in
  Array.for_all (fun r -> r = Some expected) results

let prop_mpi_allreduce =
  QCheck.Test.make
    ~name:"MPI allreduce agrees with the sequential reduction" ~count:20
    QCheck.(triple (int_range 2 6)
              (list_of_size Gen.(int_range 1 6) (make Gen.small_signed_int))
              int)
    run_allreduce

(* ---------- CORBA values survive every transport ---------- *)

let corba_roundtrip_over model =
  let grid, a, b, _ = Tutil.grid_pair model in
  let orb_a = Mw_corba.Orb.init grid a in
  let orb_b = Mw_corba.Orb.init grid b in
  Mw_corba.Orb.activate orb_b ~key:"echo" (fun ~op:_ v -> Ok v);
  Mw_corba.Orb.serve orb_b ~port:3000;
  let value =
    Mw_corba.Cdr.VStruct
      [ ("blob", Mw_corba.Cdr.VOctets (Tutil.pattern_buf ~seed:1 20_000));
        ("tag", Mw_corba.Cdr.VString "x") ]
  in
  let ok = ref false in
  let h =
    Padico.spawn grid a ~name:"c" (fun () ->
        let p =
          Mw_corba.Orb.resolve orb_a
            { Mw_corba.Orb.ior_node = b; ior_port = 3000; ior_key = "echo" }
        in
        match Mw_corba.Orb.invoke p ~op:"e" value with
        | Ok v -> ok := Mw_corba.Cdr.equal_value v value
        | Error _ -> ())
  in
  Tutil.run_grid grid;
  Tutil.assert_done h;
  !ok

let test_corba_on_every_network () =
  List.iter
    (fun (name, model) ->
       Tutil.check_bool ("CORBA echo over " ^ name) true
         (corba_roundtrip_over model))
    [ ("myrinet", Simnet.Presets.myrinet2000);
      ("sci", Simnet.Presets.sci);
      ("ethernet", Simnet.Presets.ethernet100);
      ("gigabit", Simnet.Presets.gigabit_lan);
      ("vthd (ciphered)", Simnet.Presets.vthd) ]

let () =
  Alcotest.run "properties"
    [ Tutil.qsuite "determinism" [ prop_simulation_deterministic ];
      ("seeds",
       [ Alcotest.test_case "seeds diverge" `Quick test_different_seeds_diverge
       ]);
      Tutil.qsuite "tcp" [ prop_tcp_random_streams ];
      Tutil.qsuite "mpi" [ prop_mpi_allreduce ];
      ("corba",
       [ Alcotest.test_case "every network" `Quick test_corba_on_every_network
       ]);
    ]
