module Sel = Selector
module Prefs = Selector.Prefs
module Lm = Simnet.Linkmodel

let choice ?prefs net ~src ~dst = Sel.choose ?prefs net ~src ~dst

let test_same_node_loopback () =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let c = choice net ~src:a ~dst:a in
  Tutil.check_string "loopback" "loopback" c.Sel.driver

let test_san_wins_over_faster_lan () =
  (* SAN preferred even when another segment has equal/higher bandwidth:
     the parallel-specific properties matter, not just the rate. *)
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let b = Simnet.Net.add_node net "b" in
  ignore (Simnet.Net.add_segment net Simnet.Presets.sci [ a; b ]);
  ignore (Simnet.Net.add_segment net Simnet.Presets.gigabit_lan [ a; b ]);
  let c = choice net ~src:a ~dst:b in
  Tutil.check_string "madio on SCI" "madio" c.Sel.driver;
  (match c.Sel.segment with
   | Some s -> Tutil.check_string "SCI segment" "SCI" (Simnet.Segment.name s)
   | None -> Alcotest.fail "expected a segment")

let test_lan_plain_sysio () =
  let net, a, b, _ = Tutil.pair Simnet.Presets.ethernet100 in
  let c = choice net ~src:a ~dst:b in
  Tutil.check_string "sysio" "sysio" c.Sel.driver;
  Tutil.check_bool "no wraps on a trusted LAN" true
    ((not c.Sel.wrap_adoc) && not c.Sel.wrap_crypto)

let test_wan_pstream_when_enabled () =
  let net, a, b, _ = Tutil.pair Simnet.Presets.vthd in
  let c = choice net ~src:a ~dst:b in
  Tutil.check_string "plain prefs: sysio" "sysio" c.Sel.driver;
  Tutil.check_bool "untrusted gets cipher" true c.Sel.wrap_crypto;
  let c =
    choice
      ~prefs:{ Prefs.default with Prefs.pstream_on_wan = true; pstream_streams = 6 }
      net ~src:a ~dst:b
  in
  Tutil.check_string "pstream" "pstream" c.Sel.driver;
  Tutil.check_int "stream count" 6 c.Sel.streams

let test_lossy_vrp_when_enabled () =
  let net, a, b, _ = Tutil.pair Simnet.Presets.transcontinental in
  let c =
    choice
      ~prefs:{ Prefs.default with Prefs.vrp_on_lossy = true; vrp_tolerance = 0.2 }
      net ~src:a ~dst:b
  in
  Tutil.check_string "vrp" "vrp" c.Sel.driver;
  Alcotest.(check (float 1e-9)) "tolerance" 0.2 c.Sel.vrp_tolerance

let test_adoc_on_slow_links_only () =
  let prefs =
    { Prefs.default with Prefs.adoc_on_slow = true; adoc_threshold_bps = 1e6;
      cipher_untrusted = false }
  in
  let net, a, b, _ = Tutil.pair Simnet.Presets.modem in
  let c = choice ~prefs net ~src:a ~dst:b in
  Tutil.check_bool "modem gets adoc" true c.Sel.wrap_adoc;
  let net, a, b, _ = Tutil.pair Simnet.Presets.ethernet100 in
  let c = choice ~prefs net ~src:a ~dst:b in
  Tutil.check_bool "fast LAN does not" false c.Sel.wrap_adoc

let test_security_adaptation () =
  (* "if the network is secure, it is useless to cipher data" *)
  let net, a, b, _ = Tutil.pair Simnet.Presets.ethernet100 in
  let c = choice net ~src:a ~dst:b in
  Tutil.check_bool "trusted: no cipher" false c.Sel.wrap_crypto;
  let net, a, b, _ = Tutil.pair Simnet.Presets.vthd in
  let c = choice net ~src:a ~dst:b in
  Tutil.check_bool "untrusted: cipher" true c.Sel.wrap_crypto;
  let c =
    choice ~prefs:{ Prefs.default with Prefs.cipher_untrusted = false } net
      ~src:a ~dst:b
  in
  Tutil.check_bool "disabled by prefs" false c.Sel.wrap_crypto

let test_forced_driver () =
  let net, a, b, _ = Tutil.pair Simnet.Presets.myrinet2000 in
  let c =
    choice ~prefs:{ Prefs.default with Prefs.forced_driver = Some "sysio" } net
      ~src:a ~dst:b
  in
  Tutil.check_string "forced" "sysio" c.Sel.driver

let test_no_common_network_fails () =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let b = Simnet.Net.add_node net "b" in
  ignore (Simnet.Net.add_segment net Simnet.Presets.ethernet100 [ a ]);
  Tutil.check_bool "failure" true
    (try
       ignore (choice net ~src:a ~dst:b);
       false
     with Failure _ -> true)

let test_wan_optimized_preset () =
  let p = Prefs.wan_optimized in
  Tutil.check_bool "pstream on" true p.Prefs.pstream_on_wan;
  Tutil.check_bool "adoc on" true p.Prefs.adoc_on_slow;
  Tutil.check_bool "vrp on" true p.Prefs.vrp_on_lossy

let () =
  Alcotest.run "selector"
    [ ("choices",
       [ Alcotest.test_case "same node" `Quick test_same_node_loopback;
         Alcotest.test_case "SAN preferred" `Quick test_san_wins_over_faster_lan;
         Alcotest.test_case "LAN sysio" `Quick test_lan_plain_sysio;
         Alcotest.test_case "WAN pstream" `Quick test_wan_pstream_when_enabled;
         Alcotest.test_case "lossy VRP" `Quick test_lossy_vrp_when_enabled;
         Alcotest.test_case "adoc threshold" `Quick
           test_adoc_on_slow_links_only;
         Alcotest.test_case "security adaptation" `Quick
           test_security_adaptation;
         Alcotest.test_case "forced driver" `Quick test_forced_driver;
         Alcotest.test_case "no common network" `Quick
           test_no_common_network_fails;
         Alcotest.test_case "wan_optimized preset" `Quick
           test_wan_optimized_preset ]);
    ]
