module Bb = Engine.Bytebuf
module Soap = Mw_soap.Soap
module Sxml = Mw_soap.Sxml

(* ---------- base64 ---------- *)

let test_base64_vectors () =
  Tutil.check_string "empty" "" (Soap.base64_encode "");
  Tutil.check_string "f" "Zg==" (Soap.base64_encode "f");
  Tutil.check_string "fo" "Zm8=" (Soap.base64_encode "fo");
  Tutil.check_string "foo" "Zm9v" (Soap.base64_encode "foo");
  Tutil.check_string "foobar" "Zm9vYmFy" (Soap.base64_encode "foobar")

let prop_base64_roundtrip =
  QCheck.Test.make ~name:"base64 roundtrip" ~count:200 QCheck.string (fun s ->
      match Soap.base64_decode (Soap.base64_encode s) with
      | Ok s' -> s' = s
      | Error _ -> false)

let test_base64_reject_garbage () =
  (match Soap.base64_decode "a" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "bad length accepted");
  match Soap.base64_decode "Zm9%" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad character accepted"

(* ---------- XML ---------- *)

let test_xml_roundtrip () =
  let doc =
    Sxml.Element
      ("root", [ ("a", "1"); ("b", "x<y") ],
       [ Sxml.Element ("child", [], [ Sxml.Text "some & text" ]);
         Sxml.Element ("empty", [], []) ])
  in
  match Sxml.of_string (Sxml.to_string doc) with
  | Ok parsed ->
    Tutil.check_string "same xml" (Sxml.to_string doc) (Sxml.to_string parsed)
  | Error e -> Alcotest.fail e

let test_xml_escape () =
  Tutil.check_string "escaped" "a&lt;b&gt;c&amp;d&quot;e"
    (Sxml.escape "a<b>c&d\"e")

let test_xml_malformed () =
  (match Sxml.of_string "<a><b></a>" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "mismatched tags accepted");
  match Sxml.of_string "no xml at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted"

(* ---------- envelopes ---------- *)

let test_envelope_roundtrip () =
  let params =
    [ Soap.SString "abc"; Soap.SInt (-42); Soap.SFloat 2.5;
      Soap.SBytes (Tutil.pattern_buf ~seed:3 100) ]
  in
  let s = Soap.encode_call ~name:"doWork" params in
  match Soap.decode_call s with
  | Ok ("doWork", params') ->
    Tutil.check_int "param count" 4 (List.length params');
    List.iter2
      (fun a b ->
         match (a, b) with
         | Soap.SString x, Soap.SString y -> Tutil.check_string "str" x y
         | Soap.SInt x, Soap.SInt y -> Tutil.check_int "int" x y
         | Soap.SFloat x, Soap.SFloat y ->
           Alcotest.(check (float 1e-12)) "float" x y
         | Soap.SBytes x, Soap.SBytes y ->
           Tutil.check_bool "bytes" true (Bb.equal x y)
         | _ -> Alcotest.fail "type mismatch")
      params params'
  | Ok (n, _) -> Alcotest.failf "wrong method %s" n
  | Error e -> Alcotest.fail e

let test_response_fault () =
  let s = Soap.encode_response (Error "no such method") in
  match Soap.decode_response s with
  | Error "no such method" -> ()
  | _ -> Alcotest.fail "fault roundtrip"

(* ---------- end-to-end RPC ---------- *)

let test_rpc_over_grid () =
  let grid, a, b, _ = Tutil.grid_pair Simnet.Presets.ethernet100 in
  let server = Soap.serve grid b ~port:8080 in
  Soap.register server ~name:"concat" (fun params ->
      match params with
      | [ Soap.SString x; Soap.SString y ] -> Ok [ Soap.SString (x ^ y) ]
      | _ -> Error "bad params");
  Soap.register server ~name:"sum" (fun params ->
      let total =
        List.fold_left
          (fun acc p -> match p with Soap.SInt i -> acc + i | _ -> acc)
          0 params
      in
      Ok [ Soap.SInt total ]);
  let h =
    Padico.spawn grid a ~name:"soap-client" (fun () ->
        let c = Soap.connect grid ~src:a ~dst:b ~port:8080 in
        (match Soap.call c ~name:"concat" [ Soap.SString "grid"; Soap.SString "-rpc" ] with
         | Ok [ Soap.SString "grid-rpc" ] -> ()
         | Ok _ -> Alcotest.fail "wrong concat"
         | Error e -> Alcotest.fail e);
        (match Soap.call c ~name:"sum" [ Soap.SInt 1; Soap.SInt 2; Soap.SInt 39 ] with
         | Ok [ Soap.SInt 42 ] -> ()
         | _ -> Alcotest.fail "wrong sum");
        (match Soap.call c ~name:"missing" [] with
         | Error e ->
           Tutil.check_bool "fault mentions method" true
             (String.length e > 0)
         | Ok _ -> Alcotest.fail "missing method answered");
        Soap.close c)
  in
  Tutil.run_grid grid;
  Tutil.assert_done h;
  Tutil.check_int "served" 3 (Soap.requests_served server)

let test_rpc_over_myrinet () =
  (* The point of PadicoTM: even SOAP can ride the SAN. *)
  let grid, a, b, _ = Tutil.grid_pair Simnet.Presets.myrinet2000 in
  let server = Soap.serve grid b ~port:8081 in
  Soap.register server ~name:"ping" (fun _ -> Ok [ Soap.SString "pong" ]);
  let h =
    Padico.spawn grid a ~name:"client" (fun () ->
        let c = Soap.connect grid ~src:a ~dst:b ~port:8081 in
        match Soap.call c ~name:"ping" [] with
        | Ok [ Soap.SString "pong" ] -> ()
        | _ -> Alcotest.fail "ping failed")
  in
  Tutil.run_grid grid;
  Tutil.assert_done h

let () =
  Alcotest.run "soap"
    [ ("base64",
       [ Alcotest.test_case "rfc vectors" `Quick test_base64_vectors;
         Alcotest.test_case "garbage" `Quick test_base64_reject_garbage ]);
      Tutil.qsuite "base64-props" [ prop_base64_roundtrip ];
      ("xml",
       [ Alcotest.test_case "roundtrip" `Quick test_xml_roundtrip;
         Alcotest.test_case "escape" `Quick test_xml_escape;
         Alcotest.test_case "malformed" `Quick test_xml_malformed ]);
      ("envelope",
       [ Alcotest.test_case "call roundtrip" `Quick test_envelope_roundtrip;
         Alcotest.test_case "fault" `Quick test_response_fault ]);
      ("rpc",
       [ Alcotest.test_case "over ethernet" `Quick test_rpc_over_grid;
         Alcotest.test_case "over myrinet" `Quick test_rpc_over_myrinet ]);
    ]
