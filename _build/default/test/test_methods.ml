module Bb = Engine.Bytebuf
module Lz = Methods.Lz
module Adoc = Methods.Adoc
module Crypto = Methods.Crypto
module Vrp = Methods.Vrp

(* ---------- Lz ---------- *)

let test_lz_simple_roundtrip () =
  let input = Bb.of_string "hello hello hello hello hello hello!" in
  let packed = Lz.compress input in
  let out = Lz.decompress packed in
  Tutil.check_bool "roundtrip" true (Bb.equal input out);
  Tutil.check_bool "repetitive input shrinks" true
    (Bb.length packed < Bb.length input)

let test_lz_empty () =
  let out = Lz.decompress (Lz.compress (Bb.create 0)) in
  Tutil.check_int "empty" 0 (Bb.length out)

let test_lz_zeros_compress_well () =
  let input = Bb.create 100_000 in
  let packed = Lz.compress input in
  Tutil.check_bool "zeros compress > 10x" true
    (Bb.length packed * 10 < Bb.length input);
  Tutil.check_bool "roundtrip" true (Bb.equal input (Lz.decompress packed))

let test_lz_random_does_not_explode () =
  let rng = Engine.Rng.create 5 in
  let input = Bb.create 50_000 in
  Bb.fill_random input rng;
  let packed = Lz.compress input in
  Tutil.check_bool "bounded expansion" true
    (Bb.length packed <= Lz.compress_bound (Bb.length input));
  Tutil.check_bool "roundtrip" true (Bb.equal input (Lz.decompress packed))

let test_lz_corrupt_rejected () =
  let packed = Lz.compress (Bb.of_string "some data to compress here") in
  (* Truncate: decoder must raise, not crash or loop. *)
  let truncated = Bb.sub packed 0 (Bb.length packed - 3) in
  Tutil.check_bool "truncated rejected" true
    (try
       ignore (Lz.decompress truncated);
       false
     with Invalid_argument _ -> true)

let prop_lz_roundtrip =
  QCheck.Test.make ~name:"lz decompress(compress(x)) = x" ~count:200
    QCheck.(string_of_size Gen.(int_range 0 5000))
    (fun s ->
       let b = Bb.of_string s in
       Bb.equal b (Lz.decompress (Lz.compress b)))

let prop_lz_repetitive_shrinks =
  QCheck.Test.make ~name:"lz shrinks 64x-repeated content" ~count:50
    QCheck.(string_of_size Gen.(int_range 8 64))
    (fun s ->
       QCheck.assume (String.length s >= 8);
       let repeated = String.concat "" (List.init 64 (fun _ -> s)) in
       let b = Bb.of_string repeated in
       let packed = Lz.compress b in
       Bb.length packed < Bb.length b / 2)

(* ---------- Adoc policy ---------- *)

let test_adoc_pass_on_fast_link () =
  (* 250 MB/s link: the 20 MB/s compressor can never keep up. *)
  let t = Adoc.create ~link_bandwidth_bps:250e6 () in
  Tutil.check_bool "fast link passes" true (Adoc.decide t = Adoc.Pass)

let test_adoc_compress_on_slow_link () =
  let t = Adoc.create ~link_bandwidth_bps:56e3 () in
  Tutil.check_bool "slow link compresses" true (Adoc.decide t = Adoc.Compress)

let test_adoc_adapts_to_incompressible () =
  let t = Adoc.create ~link_bandwidth_bps:15e6 () in
  (* Ratio ~1 on a link close to compressor speed: passing wins. *)
  for _ = 1 to 10 do
    Adoc.observe t ~original:1000 ~compressed:990
  done;
  Tutil.check_bool "incompressible data passes" true (Adoc.decide t = Adoc.Pass)

let test_adoc_frame_roundtrip () =
  let t = Adoc.create ~link_bandwidth_bps:56e3 () in
  let d = Adoc.Decoder.create () in
  let chunk1 = Bb.create 5_000 (* zeros: compressible *) in
  let rng = Engine.Rng.create 1 in
  let chunk2 = Bb.create 3_000 in
  Bb.fill_random chunk2 rng;
  let f1, _ = Adoc.encode t chunk1 in
  let f2, _ = Adoc.encode t chunk2 in
  let stream = Bb.concat [ f1; f2 ] in
  (* Feed in awkward slices. *)
  let outputs = ref [] in
  let pos = ref 0 in
  while !pos < Bb.length stream do
    let n = min 1_234 (Bb.length stream - !pos) in
    outputs := !outputs @ Adoc.Decoder.feed d (Bb.sub stream !pos n);
    pos := !pos + n
  done;
  match !outputs with
  | [ o1; o2 ] ->
    Tutil.check_bool "chunk1" true (Bb.equal chunk1 o1);
    Tutil.check_bool "chunk2" true (Bb.equal chunk2 o2);
    Tutil.check_int "nothing pending" 0 (Adoc.Decoder.pending_bytes d)
  | l -> Alcotest.failf "expected 2 chunks, got %d" (List.length l)

let test_adoc_compressed_flag_fallback () =
  (* Incompressible chunk under Compress decision falls back to Pass. *)
  let t = Adoc.create ~link_bandwidth_bps:56e3 () in
  let rng = Engine.Rng.create 2 in
  let chunk = Bb.create 2_000 in
  Bb.fill_random chunk rng;
  let frame, decision = Adoc.encode t chunk in
  ignore decision;
  (* Whatever the decision, the frame must not be much larger than input. *)
  Tutil.check_bool "no blowup" true
    (Bb.length frame <= Bb.length chunk + Adoc.frame_header_len)

(* ---------- Crypto ---------- *)

let test_crypto_roundtrip () =
  let key = Crypto.key_of_string "secret" in
  let msg = Tutil.pattern_buf ~seed:7 1_000 in
  match Crypto.decrypt key (Crypto.encrypt key msg) with
  | Ok out -> Tutil.check_bool "roundtrip" true (Bb.equal msg out)
  | Error e -> Alcotest.fail e

let test_crypto_wrong_key_fails () =
  let k1 = Crypto.key_of_string "alice" in
  let k2 = Crypto.key_of_string "mallory" in
  let msg = Tutil.pattern_buf ~seed:8 500 in
  match Crypto.decrypt k2 (Crypto.encrypt k1 msg) with
  | Ok _ -> Alcotest.fail "wrong key accepted"
  | Error _ -> ()

let test_crypto_tamper_detected () =
  let key = Crypto.key_of_string "secret" in
  let ct = Crypto.encrypt key (Tutil.pattern_buf ~seed:9 100) in
  Bb.set_u8 ct 50 (Bb.get_u8 ct 50 lxor 1);
  match Crypto.decrypt key ct with
  | Ok _ -> Alcotest.fail "tampering accepted"
  | Error _ -> ()

let test_crypto_ciphertext_differs () =
  let key = Crypto.key_of_string "secret" in
  let msg = Bb.of_string "plaintext plaintext" in
  let ct = Crypto.encrypt key msg in
  Tutil.check_bool "not plaintext" false
    (Bb.to_string (Bb.sub ct 0 (Bb.length msg)) = Bb.to_string msg)

let prop_crypto_roundtrip =
  QCheck.Test.make ~name:"crypto roundtrip any payload" ~count:100
    QCheck.(pair string small_string)
    (fun (data, keystr) ->
       let key = Crypto.key_of_string keystr in
       match Crypto.decrypt key (Crypto.encrypt key (Bb.of_string data)) with
       | Ok out -> Bb.to_string out = data
       | Error _ -> false)

(* ---------- VRP ---------- *)

let vrp_run ~loss ~tolerance ~mbytes =
  let net, a, b, seg = Tutil.pair (Simnet.Presets.transcontinental_loss loss) in
  let sio_a = Netaccess.Sysio.get a in
  let sio_b = Netaccess.Sysio.get b in
  let ua = Drivers.Udp.attach seg a in
  let ub = Drivers.Udp.attach seg b in
  let receiver = Vrp.create_receiver sio_b ub ~port:99 () in
  let sender =
    Vrp.create_sender sio_a ua ~dst:(Simnet.Node.id b) ~dst_port:99 ~tolerance
      ~rate_bps:570e3
  in
  let total = mbytes * 100_000 in
  Vrp.send sender (Bb.create total);
  Vrp.finish sender;
  Tutil.run_net net ~until:(Engine.Time.sec 590);
  (sender, receiver, total)

let test_vrp_reliable_when_zero_tolerance () =
  let _sender, receiver, total = vrp_run ~loss:0.05 ~tolerance:0.0 ~mbytes:2 in
  Tutil.check_bool "complete" true (Vrp.complete receiver);
  Tutil.check_int "every byte delivered" total (Vrp.delivered_bytes receiver);
  Tutil.check_int "nothing abandoned" 0 (Vrp.lost_bytes receiver)

let test_vrp_bounded_loss () =
  let sender, receiver, total = vrp_run ~loss:0.08 ~tolerance:0.10 ~mbytes:2 in
  Tutil.check_bool "complete" true (Vrp.complete receiver);
  let delivered = Vrp.delivered_bytes receiver in
  let lost = Vrp.lost_bytes receiver in
  Tutil.check_bool "loss within tolerance (+margin)" true
    (Vrp.observed_loss_ratio receiver <= 0.11);
  Tutil.check_bool "most data arrived" true
    (delivered + lost >= total - 2_000);
  Tutil.check_bool "some loss was accepted" true
    (Vrp.chunks_abandoned sender > 0)

let test_vrp_no_loss_no_retransmit () =
  let sender, receiver, total = vrp_run ~loss:0.0 ~tolerance:0.1 ~mbytes:1 in
  Tutil.check_bool "complete" true (Vrp.complete receiver);
  Tutil.check_int "all delivered" total (Vrp.delivered_bytes receiver);
  Tutil.check_int "no retransmissions" 0 (Vrp.chunks_retransmitted sender);
  Tutil.check_int "no abandons" 0 (Vrp.chunks_abandoned sender)

let () =
  Alcotest.run "methods"
    [ ("lz",
       [ Alcotest.test_case "simple roundtrip" `Quick test_lz_simple_roundtrip;
         Alcotest.test_case "empty" `Quick test_lz_empty;
         Alcotest.test_case "zeros" `Quick test_lz_zeros_compress_well;
         Alcotest.test_case "random bounded" `Quick
           test_lz_random_does_not_explode;
         Alcotest.test_case "corrupt rejected" `Quick test_lz_corrupt_rejected
       ]);
      Tutil.qsuite "lz-props" [ prop_lz_roundtrip; prop_lz_repetitive_shrinks ];
      ("adoc",
       [ Alcotest.test_case "pass on fast link" `Quick
           test_adoc_pass_on_fast_link;
         Alcotest.test_case "compress on slow link" `Quick
           test_adoc_compress_on_slow_link;
         Alcotest.test_case "adapts to incompressible" `Quick
           test_adoc_adapts_to_incompressible;
         Alcotest.test_case "frame roundtrip" `Quick test_adoc_frame_roundtrip;
         Alcotest.test_case "no blowup" `Quick
           test_adoc_compressed_flag_fallback ]);
      ("crypto",
       [ Alcotest.test_case "roundtrip" `Quick test_crypto_roundtrip;
         Alcotest.test_case "wrong key" `Quick test_crypto_wrong_key_fails;
         Alcotest.test_case "tamper" `Quick test_crypto_tamper_detected;
         Alcotest.test_case "ciphertext differs" `Quick
           test_crypto_ciphertext_differs ]);
      Tutil.qsuite "crypto-props" [ prop_crypto_roundtrip ];
      ("vrp",
       [ Alcotest.test_case "tolerance 0 reliable" `Quick
           test_vrp_reliable_when_zero_tolerance;
         Alcotest.test_case "bounded loss" `Quick test_vrp_bounded_loss;
         Alcotest.test_case "no loss, no retx" `Quick
           test_vrp_no_loss_no_retransmit ]);
    ]
