module Bb = Engine.Bytebuf
module Mpi = Mw_mpi.Mpi

(* An MPI "job": one process per rank running [body rank comm]. *)
let mpi_job ?(model = Simnet.Presets.myrinet2000) ~np body =
  let grid = Padico.create () in
  let nodes =
    List.init np (fun i -> Padico.add_node grid (Printf.sprintf "n%d" i))
  in
  ignore (Padico.add_segment grid model nodes);
  let cts = Padico.circuit grid ~name:"mpi" nodes in
  let comms = Mpi.init cts in
  let handles =
    Array.mapi
      (fun i comm ->
         Padico.spawn grid (List.nth nodes i)
           ~name:(Printf.sprintf "rank%d" i) (fun () -> body i comm))
      comms
  in
  Tutil.run_grid grid;
  Array.iter Tutil.assert_done handles

let test_send_recv () =
  mpi_job ~np:2 (fun rank comm ->
      if rank = 0 then Mpi.send comm ~dst:1 ~tag:7 (Bb.of_string "payload")
      else begin
        let src, tag, data = Mpi.recv comm () in
        Tutil.check_int "src" 0 src;
        Tutil.check_int "tag" 7 tag;
        Tutil.check_string "data" "payload" (Bb.to_string data)
      end)

let test_tag_matching () =
  mpi_job ~np:2 (fun rank comm ->
      if rank = 0 then begin
        Mpi.send comm ~dst:1 ~tag:1 (Bb.of_string "one");
        Mpi.send comm ~dst:1 ~tag:2 (Bb.of_string "two")
      end
      else begin
        (* Receive out of arrival order by tag. *)
        let _, _, d2 = Mpi.recv comm ~tag:2 () in
        let _, _, d1 = Mpi.recv comm ~tag:1 () in
        Tutil.check_string "tag 2" "two" (Bb.to_string d2);
        Tutil.check_string "tag 1" "one" (Bb.to_string d1)
      end)

let test_any_source () =
  mpi_job ~np:4 (fun rank comm ->
      if rank > 0 then Mpi.send comm ~dst:0 ~tag:5 (Bb.create rank)
      else begin
        let seen = ref [] in
        for _ = 1 to 3 do
          let src, _, data = Mpi.recv comm ~tag:5 () in
          Tutil.check_int "size matches source" src (Bb.length data);
          seen := src :: !seen
        done;
        Alcotest.(check (list int)) "all sources" [ 1; 2; 3 ]
          (List.sort compare !seen)
      end)

let test_isend_irecv_waitall () =
  mpi_job ~np:2 (fun rank comm ->
      if rank = 0 then begin
        let reqs =
          List.init 5 (fun i ->
              Mpi.isend comm ~dst:1 ~tag:i (Bb.create (10 * (i + 1))))
        in
        ignore (Mpi.waitall reqs)
      end
      else begin
        let reqs = List.init 5 (fun i -> Mpi.irecv comm ~tag:i ()) in
        let results = Mpi.waitall reqs in
        List.iteri
          (fun i (_, tag, data) ->
             Tutil.check_int "tag" i tag;
             Tutil.check_int "size" (10 * (i + 1)) (Bb.length data))
          results
      end)

let test_test_nonblocking () =
  mpi_job ~np:2 (fun rank comm ->
      if rank = 0 then begin
        Engine.Proc.sleep (Simnet.Node.sim (Mpi.node comm)) 1_000_000;
        Mpi.send comm ~dst:1 ~tag:1 (Bb.create 4)
      end
      else begin
        let req = Mpi.irecv comm ~tag:1 () in
        Tutil.check_bool "not yet" true (Mpi.test req = None);
        ignore (Mpi.wait req);
        Tutil.check_bool "now done" true (Mpi.test req <> None)
      end)

let test_probe () =
  mpi_job ~np:2 (fun rank comm ->
      if rank = 0 then Mpi.send comm ~dst:1 ~tag:9 (Bb.create 4)
      else begin
        (* Wait for arrival via a blocking recv of a different message
           first? Simpler: poll by sleeping until probe sees it. *)
        let sim = Simnet.Node.sim (Mpi.node comm) in
        let rec wait_for_probe n =
          if n > 1000 then Alcotest.fail "probe never matched"
          else
            match Mpi.probe comm ~tag:9 () with
            | Some (src, tag) ->
              Tutil.check_int "probe src" 0 src;
              Tutil.check_int "probe tag" 9 tag
            | None ->
              Engine.Proc.sleep sim 10_000;
              wait_for_probe (n + 1)
        in
        wait_for_probe 0;
        ignore (Mpi.recv comm ~tag:9 ())
      end)

(* ---------- collectives ---------- *)

let test_barrier_synchronizes () =
  let np = 5 in
  let after = Array.make np 0 in
  let before = Array.make np 0 in
  mpi_job ~np (fun rank comm ->
      let sim = Simnet.Node.sim (Mpi.node comm) in
      (* Stagger arrival times. *)
      Engine.Proc.sleep sim (rank * 1_000_000);
      before.(rank) <- Engine.Sim.now sim;
      Mpi.barrier comm;
      after.(rank) <- Engine.Sim.now sim);
  let latest_before = Array.fold_left max 0 before in
  Array.iteri
    (fun i t ->
       Tutil.check_bool
         (Printf.sprintf "rank %d leaves after the last arrives" i)
         true (t >= latest_before))
    after

let test_bcast_all_roots () =
  let np = 6 in
  for root = 0 to np - 1 do
    mpi_job ~np (fun rank comm ->
        let data =
          if rank = root then Some (Tutil.pattern_buf ~seed:root 1_000)
          else None
        in
        let out = Mpi.bcast comm ~root data in
        Tutil.check_bool
          (Printf.sprintf "root %d -> rank %d" root rank)
          true
          (Bb.equal out (Tutil.pattern_buf ~seed:root 1_000)))
  done

let test_reduce_sum_ints () =
  let np = 7 in
  mpi_job ~np (fun rank comm ->
      let v = Mpi.ints_to_buf [| rank; rank * 2; 1 |] in
      match Mpi.reduce comm ~root:0 ~op:Mpi.Sum ~datatype:Mpi.Int_t v with
      | Some out ->
        Tutil.check_int "root is 0" 0 rank;
        let r = Mpi.ints_of_buf out in
        Tutil.check_int "sum of ranks" 21 r.(0);
        Tutil.check_int "sum of 2*ranks" 42 r.(1);
        Tutil.check_int "count" np r.(2)
      | None -> Tutil.check_bool "non-root gets None" true (rank <> 0))

let test_reduce_max_floats () =
  mpi_job ~np:4 (fun rank comm ->
      let v = Mpi.floats_to_buf [| float_of_int rank; -.float_of_int rank |] in
      match Mpi.reduce comm ~root:2 ~op:Mpi.Max ~datatype:Mpi.Float_t v with
      | Some out ->
        let r = Mpi.floats_of_buf out in
        Alcotest.(check (float 1e-9)) "max" 3.0 r.(0);
        Alcotest.(check (float 1e-9)) "max of negatives" 0.0 r.(1)
      | None -> ())

let test_allreduce () =
  mpi_job ~np:5 (fun rank comm ->
      let v = Mpi.ints_to_buf [| rank |] in
      let out = Mpi.allreduce comm ~op:Mpi.Sum ~datatype:Mpi.Int_t v in
      Tutil.check_int
        (Printf.sprintf "rank %d sees the sum" rank)
        10
        (Mpi.ints_of_buf out).(0))

let test_gather_scatter () =
  mpi_job ~np:4 (fun rank comm ->
      (* gather *)
      (match Mpi.gather comm ~root:0 (Bb.create (rank + 1)) with
       | Some parts ->
         Array.iteri
           (fun i p -> Tutil.check_int "gathered size" (i + 1) (Bb.length p))
           parts
       | None -> Tutil.check_bool "non-root" true (rank <> 0));
      (* scatter *)
      let parts =
        if rank = 0 then
          Some (Array.init 4 (fun i -> Tutil.pattern_buf ~seed:i (100 * (i + 1))))
        else None
      in
      let mine = Mpi.scatter comm ~root:0 parts in
      Tutil.check_int "scattered size" (100 * (rank + 1)) (Bb.length mine);
      Tutil.check_bool "scattered content" true
        (Bb.equal mine (Tutil.pattern_buf ~seed:rank (100 * (rank + 1)))))

let test_alltoall () =
  mpi_job ~np:3 (fun rank comm ->
      let parts =
        Array.init 3 (fun dst -> Tutil.pattern_buf ~seed:((rank * 10) + dst) 64)
      in
      let out = Mpi.alltoall comm parts in
      Array.iteri
        (fun src p ->
           Tutil.check_bool
             (Printf.sprintf "rank %d slot %d" rank src)
             true
             (Bb.equal p (Tutil.pattern_buf ~seed:((src * 10) + rank) 64)))
        out)

let test_collectives_over_lan () =
  (* Cross-paradigm: the same MPI collectives over TCP/Ethernet. *)
  mpi_job ~model:Simnet.Presets.ethernet100 ~np:4 (fun rank comm ->
      let v = Mpi.ints_to_buf [| rank + 1 |] in
      let out = Mpi.allreduce comm ~op:Mpi.Sum ~datatype:Mpi.Int_t v in
      Tutil.check_int "sum over TCP" 10 (Mpi.ints_of_buf out).(0))

let () =
  Alcotest.run "mpi"
    [ ("p2p",
       [ Alcotest.test_case "send/recv" `Quick test_send_recv;
         Alcotest.test_case "tag matching" `Quick test_tag_matching;
         Alcotest.test_case "any_source" `Quick test_any_source;
         Alcotest.test_case "isend/irecv/waitall" `Quick
           test_isend_irecv_waitall;
         Alcotest.test_case "test" `Quick test_test_nonblocking;
         Alcotest.test_case "probe" `Quick test_probe ]);
      ("collectives",
       [ Alcotest.test_case "barrier" `Quick test_barrier_synchronizes;
         Alcotest.test_case "bcast all roots" `Quick test_bcast_all_roots;
         Alcotest.test_case "reduce sum" `Quick test_reduce_sum_ints;
         Alcotest.test_case "reduce max" `Quick test_reduce_max_floats;
         Alcotest.test_case "allreduce" `Quick test_allreduce;
         Alcotest.test_case "gather/scatter" `Quick test_gather_scatter;
         Alcotest.test_case "alltoall" `Quick test_alltoall;
         Alcotest.test_case "collectives over LAN" `Quick
           test_collectives_over_lan ]);
    ]
