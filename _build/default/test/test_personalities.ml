module Bb = Engine.Bytebuf
module Vio = Personalities.Vio
module Syswrap = Personalities.Syswrap
module Aio = Personalities.Aio
module Fm = Personalities.Fm
module Madpers = Personalities.Madpers
module Proc = Engine.Proc
module Ct = Circuit.Ct

(* ---------- Vio ---------- *)

let test_vio_read_line () =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let va, vb = Vlink.Vl_loopback.pair a in
  let lines = ref [] in
  let h =
    Simnet.Node.spawn a (fun () ->
        ignore (Vio.write_string va "first\nsecond\nlast-no-newline");
        Vio.close va)
  in
  let h2 =
    Simnet.Node.spawn a (fun () ->
        let rec loop () =
          match Vio.read_line vb with
          | Some l ->
            lines := l :: !lines;
            loop ()
          | None -> ()
        in
        loop ())
  in
  Tutil.run_net net;
  Tutil.assert_done h;
  Tutil.assert_done h2;
  Alcotest.(check (list string)) "lines"
    [ "first"; "second"; "last-no-newline" ]
    (List.rev !lines)

(* ---------- SysWrap ---------- *)

let test_syswrap_full_socket_lifecycle () =
  let grid, a, b, _ = Tutil.grid_pair Simnet.Presets.myrinet2000 in
  let swa = Syswrap.attach grid a in
  let swb = Syswrap.attach grid b in
  let server =
    Padico.spawn grid b ~name:"server" (fun () ->
        let lfd = Syswrap.socket swb in
        Syswrap.bind_listen swb lfd ~port:2000;
        let cfd = Syswrap.accept swb lfd in
        let buf = Bb.create 5 in
        Tutil.check_bool "recv" true (Syswrap.recv_exact swb cfd buf);
        Tutil.check_string "request" "hello" (Bb.to_string buf);
        ignore (Syswrap.send swb cfd (Bb.of_string "world"));
        (* The legacy app believes it used sockets; it actually rode MadIO. *)
        Tutil.check_string "transparent driver" "madio"
          (Vlink.Vl.driver_name (Syswrap.vlink_of_fd swb cfd));
        Syswrap.close swb cfd)
  in
  let client =
    Padico.spawn grid a ~name:"client" (fun () ->
        let fd = Syswrap.socket swa in
        Syswrap.connect swa fd ~dst:b ~port:2000;
        ignore (Syswrap.send swa fd (Bb.of_string "hello"));
        let buf = Bb.create 5 in
        Tutil.check_bool "reply" true (Syswrap.recv_exact swa fd buf);
        Tutil.check_string "response" "world" (Bb.to_string buf);
        Syswrap.close swa fd)
  in
  Tutil.run_grid grid;
  Tutil.assert_done server;
  Tutil.assert_done client

let test_syswrap_errors () =
  let grid, a, b, seg = Tutil.grid_pair Simnet.Presets.ethernet100 in
  (* Give the peer a live TCP stack so unbound ports answer with RST. *)
  ignore (Netaccess.Sysio.stack_on (Padico.sysio b) seg);
  let sw = Syswrap.attach grid a in
  let h =
    Padico.spawn grid a ~name:"errs" (fun () ->
        (* EBADF *)
        (try
           ignore (Syswrap.recv sw 99 (Bb.create 1));
           Alcotest.fail "EBADF expected"
         with Syswrap.Unix_error e -> Tutil.check_string "ebadf" "EBADF" e);
        (* ENOTCONN *)
        let fd = Syswrap.socket sw in
        (try
           ignore (Syswrap.send sw fd (Bb.create 1));
           Alcotest.fail "ENOTCONN expected"
         with Syswrap.Unix_error e ->
           Tutil.check_string "enotconn" "ENOTCONN" e);
        (* ECONNREFUSED *)
        (try
           Syswrap.connect sw fd ~dst:b ~port:4321;
           Alcotest.fail "ECONNREFUSED expected"
         with Syswrap.Unix_error e ->
           Tutil.check_string "refused" "ECONNREFUSED" e))
  in
  Tutil.run_grid grid;
  Tutil.assert_done h

(* ---------- Aio ---------- *)

let test_aio_poll_and_suspend () =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let va, vb = Vlink.Vl_loopback.pair a in
  let h =
    Simnet.Node.spawn a (fun () ->
        let buf = Bb.create 16 in
        let cb = Aio.aio_read vb buf in
        Tutil.check_bool "in progress" true (Aio.aio_error cb = `In_progress);
        (try
           ignore (Aio.aio_return cb);
           Alcotest.fail "aio_return while pending"
         with Invalid_argument _ -> ());
        (* Write from the other end, then suspend on the read. *)
        let wcb = Aio.aio_write va (Bb.of_string "async!") in
        Aio.aio_suspend [ cb ];
        Tutil.check_bool "done" true (Aio.aio_error cb = `Ok);
        Tutil.check_int "bytes" 6 (Aio.aio_return cb);
        Aio.aio_suspend [ wcb ];
        Tutil.check_int "write completed" 6 (Aio.aio_return wcb))
  in
  Tutil.run_net net;
  Tutil.assert_done h

(* ---------- FastMessage ---------- *)

let test_fm_handlers () =
  let grid, a, b, _ = Tutil.grid_pair Simnet.Presets.myrinet2000 in
  let cts = Padico.circuit grid ~name:"fm" [ a; b ] in
  let fm0 = Fm.attach cts.(0) in
  let fm1 = Fm.attach cts.(1) in
  ignore fm0;
  let sum = ref 0 in
  let texts = ref [] in
  Fm.register_handler fm1 ~id:1 (fun ~src:_ inc ->
      sum := !sum + Ct.unpack_int inc);
  Fm.register_handler fm1 ~id:2 (fun ~src:_ inc ->
      texts := Bb.to_string (Ct.unpack inc (Ct.remaining inc)) :: !texts);
  let st = Fm.begin_message fm0 ~dest:1 ~handler:1 in
  Fm.send_piece_int st 40;
  Fm.end_message st;
  let st = Fm.begin_message fm0 ~dest:1 ~handler:1 in
  Fm.send_piece_int st 2;
  Fm.end_message st;
  let st = Fm.begin_message fm0 ~dest:1 ~handler:2 in
  Fm.send_piece st (Bb.of_string "am");
  Fm.end_message st;
  Tutil.run_grid grid;
  Tutil.check_int "handler 1 accumulated" 42 !sum;
  Alcotest.(check (list string)) "handler 2" [ "am" ] !texts;
  Tutil.check_int "handled count" 3 (Fm.messages_handled fm1)

(* ---------- Madpers ---------- *)

let test_madpers_blocking_recv () =
  let grid, a, b, _ = Tutil.grid_pair Simnet.Presets.myrinet2000 in
  let cts = Padico.circuit grid ~name:"mp" [ a; b ] in
  let mp0 = Madpers.attach cts.(0) in
  let mp1 = Madpers.attach cts.(1) in
  Tutil.check_int "rank" 1 (Madpers.rank mp1);
  Tutil.check_int "size" 2 (Madpers.size mp1);
  let h =
    Padico.spawn grid b ~name:"recv" (fun () ->
        let src, inc = Madpers.recv_blocking mp1 in
        Tutil.check_int "src" 0 src;
        Tutil.check_string "payload" "to-rank-1"
          (Bb.to_string (Ct.unpack inc (Ct.remaining inc))))
  in
  let out = Madpers.begin_packing mp0 ~dst:1 in
  Madpers.pack out (Bb.of_string "to-rank-1");
  Madpers.end_packing out;
  Tutil.run_grid grid;
  Tutil.assert_done h

let test_madpers_callback_mode_conflicts () =
  let grid, a, b, _ = Tutil.grid_pair Simnet.Presets.myrinet2000 in
  let cts = Padico.circuit grid ~name:"mp2" [ a; b ] in
  let mp = Madpers.attach cts.(0) in
  Madpers.set_recv mp (fun ~src:_ _ -> ());
  let h =
    Padico.spawn grid a ~name:"conflict" (fun () ->
        try
          ignore (Madpers.recv_blocking mp);
          Alcotest.fail "expected conflict"
        with Invalid_argument _ -> ())
  in
  Tutil.run_grid grid;
  Tutil.assert_done h

let () =
  Alcotest.run "personalities"
    [ ("vio", [ Alcotest.test_case "read_line" `Quick test_vio_read_line ]);
      ("syswrap",
       [ Alcotest.test_case "socket lifecycle over MadIO" `Quick
           test_syswrap_full_socket_lifecycle;
         Alcotest.test_case "errno behaviour" `Quick test_syswrap_errors ]);
      ("aio",
       [ Alcotest.test_case "poll+suspend" `Quick test_aio_poll_and_suspend ]);
      ("fm", [ Alcotest.test_case "handlers" `Quick test_fm_handlers ]);
      ("madpers",
       [ Alcotest.test_case "blocking recv" `Quick test_madpers_blocking_recv;
         Alcotest.test_case "mode conflict" `Quick
           test_madpers_callback_mode_conflicts ]);
    ]
