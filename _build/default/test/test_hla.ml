module Bb = Engine.Bytebuf
module Hla = Mw_hla.Hla

let rtig_grid () =
  let grid = Padico.create () in
  let rtig = Padico.add_node grid "rtig" in
  let f1 = Padico.add_node grid "fed1" in
  let f2 = Padico.add_node grid "fed2" in
  ignore
    (Padico.add_segment grid Simnet.Presets.ethernet100 [ rtig; f1; f2 ]);
  Hla.start_rtig grid rtig ~port:9100;
  (grid, rtig, f1, f2)

let test_join_publish_subscribe_reflect () =
  let grid, rtig, f1, f2 = rtig_grid () in
  let reflected = ref [] in
  let h2 =
    Padico.spawn grid f2 ~name:"subscriber" (fun () ->
        let fed =
          Hla.join grid ~src:f2 ~rtig ~port:9100 ~federation:"sim"
            ~name:"viewer"
        in
        Hla.subscribe fed ~class_:"Aircraft" (fun ~class_ ~from payload ->
            reflected := (class_, from, Bb.to_string payload) :: !reflected))
  in
  let h1 =
    Padico.spawn grid f1 ~name:"publisher" (fun () ->
        let fed =
          Hla.join grid ~src:f1 ~rtig ~port:9100 ~federation:"sim"
            ~name:"plane"
        in
        Hla.publish fed ~class_:"Aircraft";
        (* Let the subscriber get its subscription in. *)
        Engine.Proc.sleep (Simnet.Node.sim f1) (Engine.Time.ms 50);
        Hla.update_attributes fed ~class_:"Aircraft" (Bb.of_string "pos=1,2");
        Hla.update_attributes fed ~class_:"Aircraft" (Bb.of_string "pos=3,4"))
  in
  Tutil.run_grid grid;
  Tutil.assert_done h1;
  Tutil.assert_done h2;
  match List.rev !reflected with
  | [ ("Aircraft", "plane", "pos=1,2"); ("Aircraft", "plane", "pos=3,4") ] ->
    ()
  | l -> Alcotest.failf "unexpected reflections (%d)" (List.length l)

let test_publisher_does_not_hear_itself () =
  let grid, rtig, f1, _f2 = rtig_grid () in
  let self_reflections = ref 0 in
  let h =
    Padico.spawn grid f1 ~name:"both" (fun () ->
        let fed =
          Hla.join grid ~src:f1 ~rtig ~port:9100 ~federation:"solo"
            ~name:"only"
        in
        Hla.publish fed ~class_:"C";
        Hla.subscribe fed ~class_:"C" (fun ~class_:_ ~from:_ _ ->
            incr self_reflections);
        Hla.update_attributes fed ~class_:"C" (Bb.of_string "x"))
  in
  Tutil.run_grid grid;
  Tutil.assert_done h;
  Tutil.check_int "no self reflection" 0 !self_reflections

let test_time_advance_lockstep () =
  let grid, rtig, f1, f2 = rtig_grid () in
  let times1 = ref [] and times2 = ref [] in
  let body node times steps name () =
    let fed =
      Hla.join grid ~src:node ~rtig ~port:9100 ~federation:"time" ~name
    in
    List.iter
      (fun t ->
         let granted = Hla.time_advance_request fed t in
         times := granted :: !times;
         Tutil.check_bool "granted >= requested" true (granted +. 1e-9 >= t))
      steps;
    Hla.resign fed
  in
  (* Federate 1 requests 1,2,3; federate 2 requests 1.5, 2.5, 3.5.
     Conservative grants: each re-requests until its own time is reached,
     never overtaking the slowest pending request. *)
  let h1 =
    Padico.spawn grid f1 ~name:"fed1" (body f1 times1 [ 1.0; 2.0; 3.0 ] "one")
  in
  let h2 =
    Padico.spawn grid f2 ~name:"fed2"
      (body f2 times2 [ 1.5; 2.5; 3.5 ] "two")
  in
  Tutil.run_grid grid;
  Tutil.assert_done h1;
  Tutil.assert_done h2;
  (* Monotone non-decreasing grants. *)
  let monotone l =
    let rec go = function
      | a :: (b :: _ as rest) -> a <= b && go rest
      | _ -> true
    in
    go (List.rev l)
  in
  Tutil.check_bool "fed1 monotone" true (monotone !times1);
  Tutil.check_bool "fed2 monotone" true (monotone !times2)

let test_two_federations_isolated () =
  let grid, rtig, f1, f2 = rtig_grid () in
  let cross = ref 0 in
  let h2 =
    Padico.spawn grid f2 ~name:"other-fed" (fun () ->
        let fed =
          Hla.join grid ~src:f2 ~rtig ~port:9100 ~federation:"B" ~name:"b"
        in
        Hla.subscribe fed ~class_:"X" (fun ~class_:_ ~from:_ _ -> incr cross))
  in
  let h1 =
    Padico.spawn grid f1 ~name:"fed-a" (fun () ->
        let fed =
          Hla.join grid ~src:f1 ~rtig ~port:9100 ~federation:"A" ~name:"a"
        in
        Engine.Proc.sleep (Simnet.Node.sim f1) (Engine.Time.ms 50);
        Hla.update_attributes fed ~class_:"X" (Bb.of_string "leak?"))
  in
  Tutil.run_grid grid;
  Tutil.assert_done h1;
  Tutil.assert_done h2;
  Tutil.check_int "federations isolated" 0 !cross

let () =
  Alcotest.run "hla"
    [ ("rti",
       [ Alcotest.test_case "pub/sub reflect" `Quick
           test_join_publish_subscribe_reflect;
         Alcotest.test_case "no self reflection" `Quick
           test_publisher_does_not_hear_itself;
         Alcotest.test_case "time advance lockstep" `Quick
           test_time_advance_lockstep;
         Alcotest.test_case "federation isolation" `Quick
           test_two_federations_isolated ]);
    ]
