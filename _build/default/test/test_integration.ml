(* Cross-cutting scenarios: the paper's core claims exercised end-to-end.

   - several middleware systems at the same time on the same node/network
     (MPI + CORBA + SOAP over one Myrinet), through the NetAccess
     arbitration;
   - middleware decoupled from networks: the same code paths on SAN, LAN
     and WAN, with WAN methods applied transparently;
   - component-style coupling: an MPI-parallel "component" exposing a
     CORBA interface. *)

module Bb = Engine.Bytebuf
module Mpi = Mw_mpi.Mpi
module Orb = Mw_corba.Orb
module Cdr = Mw_corba.Cdr
module Soap = Mw_soap.Soap
module Jsock = Mw_java.Jsock

let test_three_middleware_share_myrinet () =
  let grid = Padico.create () in
  let a = Padico.add_node grid "a" in
  let b = Padico.add_node grid "b" in
  ignore (Padico.add_segment grid Simnet.Presets.myrinet2000 [ a; b ]);
  (* MPI job between a and b. *)
  let cts = Padico.circuit grid ~name:"mpi" [ a; b ] in
  let comms = Mpi.init cts in
  let mpi_ok = ref false in
  ignore
    (Padico.spawn grid a ~name:"mpi0" (fun () ->
         Mpi.send comms.(0) ~dst:1 ~tag:1 (Bb.of_string "halo");
         let _, _, back = Mpi.recv comms.(0) ~tag:2 () in
         mpi_ok := Bb.to_string back = "halo-back"));
  ignore
    (Padico.spawn grid b ~name:"mpi1" (fun () ->
         let _, _, m = Mpi.recv comms.(1) ~tag:1 () in
         Mpi.send comms.(1) ~dst:0 ~tag:2
           (Bb.of_string (Bb.to_string m ^ "-back"))));
  (* CORBA service on b, client on a — same wire, same time. *)
  let orb_a = Orb.init grid a in
  let orb_b = Orb.init grid b in
  Orb.activate orb_b ~key:"svc" (fun ~op:_ v -> Ok v);
  Orb.serve orb_b ~port:3000;
  let corba_ok = ref false in
  ignore
    (Padico.spawn grid a ~name:"corba" (fun () ->
         let p =
           Orb.resolve orb_a { Orb.ior_node = b; ior_port = 3000; ior_key = "svc" }
         in
         for i = 1 to 10 do
           match Orb.invoke p ~op:"echo" (Cdr.VLong i) with
           | Ok (Cdr.VLong j) when i = j -> ()
           | _ -> failwith "corba echo failed"
         done;
         corba_ok := true));
  (* SOAP monitoring service on b, polled from a. *)
  let soap_server = Soap.serve grid b ~port:8080 in
  Soap.register soap_server ~name:"status" (fun _ -> Ok [ Soap.SString "up" ]);
  let soap_ok = ref false in
  ignore
    (Padico.spawn grid a ~name:"soap" (fun () ->
         let c = Soap.connect grid ~src:a ~dst:b ~port:8080 in
         (match Soap.call c ~name:"status" [] with
          | Ok [ Soap.SString "up" ] -> soap_ok := true
          | _ -> ());
         Soap.close c));
  Tutil.run_grid grid;
  Tutil.check_bool "MPI worked" true !mpi_ok;
  Tutil.check_bool "CORBA worked alongside" true !corba_ok;
  Tutil.check_bool "SOAP worked alongside" true !soap_ok

let test_java_sockets_middleware () =
  let grid, a, b, _ = Tutil.grid_pair Simnet.Presets.myrinet2000 in
  let server = Jsock.server_socket grid b ~port:7001 in
  let hs =
    Padico.spawn grid b ~name:"jserver" (fun () ->
        let s = Jsock.accept server in
        Tutil.check_string "runs on madio" "madio"
          (Vlink.Vl.driver_name (Jsock.vlink s));
        let buf = Bb.create 4 in
        Tutil.check_bool "read" true (Jsock.input_read_fully s buf);
        Jsock.output_write s (Bb.of_string (Bb.to_string buf ^ "-ok"));
        Jsock.close s)
  in
  let hc =
    Padico.spawn grid a ~name:"jclient" (fun () ->
        let s = Jsock.connect grid ~src:a ~dst:b ~port:7001 in
        Jsock.output_write s (Bb.of_string "java");
        let buf = Bb.create 7 in
        Tutil.check_bool "reply" true (Jsock.input_read_fully s buf);
        Tutil.check_string "payload" "java-ok" (Bb.to_string buf);
        Jsock.close s)
  in
  Tutil.run_grid grid;
  Tutil.assert_done hs;
  Tutil.assert_done hc

let test_parallel_component_with_corba_interface () =
  (* GridCCM-style: a 2-rank MPI component on cluster A; its master rank
     exposes a CORBA "interface" invoked from a remote client over the
     WAN. The invocation triggers an internal MPI exchange. *)
  let grid, a1, a2, b1, _b2 = Tutil.two_clusters ~wan:Simnet.Presets.vthd () in
  let cts = Padico.circuit grid ~name:"component" [ a1; a2 ] in
  let comms = Mpi.init cts in
  (* Worker rank: doubles whatever the master sends. *)
  ignore
    (Padico.spawn grid a2 ~name:"worker" (fun () ->
         let rec loop () =
           let _, _, v = Mpi.recv comms.(1) ~tag:1 () in
           let x = (Mpi.ints_of_buf v).(0) in
           Mpi.send comms.(1) ~dst:0 ~tag:2 (Mpi.ints_to_buf [| 2 * x |]);
           loop ()
         in
         loop ()));
  (* Master rank: CORBA servant delegating to the worker over MPI. *)
  let orb_master = Orb.init grid a1 in
  Orb.activate orb_master ~key:"component" (fun ~op args ->
      match (op, args) with
      | "double", Cdr.VLong x ->
        Mpi.send comms.(0) ~dst:1 ~tag:1 (Mpi.ints_to_buf [| x |]);
        let _, _, r = Mpi.recv comms.(0) ~tag:2 () in
        Ok (Cdr.VLong (Mpi.ints_of_buf r).(0))
      | _ -> Error "BAD_OPERATION");
  Orb.serve orb_master ~port:3500;
  let got = ref 0 in
  let hc =
    Padico.spawn grid b1 ~name:"remote-client" (fun () ->
        let orb = Orb.init grid b1 in
        let p =
          Orb.resolve orb
            { Orb.ior_node = a1; ior_port = 3500; ior_key = "component" }
        in
        match Orb.invoke p ~op:"double" (Cdr.VLong 21) with
        | Ok (Cdr.VLong v) -> got := v
        | Ok _ | Error _ -> ())
  in
  Tutil.run_grid grid;
  Tutil.assert_done hc;
  Tutil.check_int "CORBA -> MPI -> CORBA" 42 !got

let test_corba_servant_is_not_blocking () =
  (* The servant above blocks on MPI inside the ORB connection process:
     verify another client connection is still served meanwhile (each
     connection has its own process). *)
  let grid, a, b, _ = Tutil.grid_pair Simnet.Presets.myrinet2000 in
  let orb_b = Orb.init grid b in
  let gate = Engine.Proc.Ivar.create () in
  Orb.activate orb_b ~key:"slow" (fun ~op:_ _ ->
      (* Block until the fast request went through. *)
      Engine.Proc.Ivar.read gate;
      Ok (Cdr.VString "slow-done"));
  Orb.activate orb_b ~key:"fast" (fun ~op:_ _ -> Ok (Cdr.VString "fast-done"));
  Orb.serve orb_b ~port:3600;
  let orb_a = Orb.init grid a in
  let order = ref [] in
  let h_slow =
    Padico.spawn grid a ~name:"slow-client" (fun () ->
        let p =
          Orb.resolve orb_a { Orb.ior_node = b; ior_port = 3600; ior_key = "slow" }
        in
        match Orb.invoke p ~op:"go" Cdr.VNull with
        | Ok _ -> order := "slow" :: !order
        | Error e -> failwith e)
  in
  let h_fast =
    Padico.spawn grid a ~name:"fast-client" (fun () ->
        (* Give the slow request a head start. *)
        Engine.Proc.sleep (Simnet.Node.sim a) (Engine.Time.ms 1);
        let p =
          Orb.resolve orb_a { Orb.ior_node = b; ior_port = 3600; ior_key = "fast" }
        in
        (match Orb.invoke p ~op:"go" Cdr.VNull with
         | Ok _ -> order := "fast" :: !order
         | Error e -> failwith e);
        Engine.Proc.Ivar.fill gate ())
  in
  Tutil.run_grid grid;
  Tutil.assert_done h_slow;
  Tutil.assert_done h_fast;
  Alcotest.(check (list string)) "fast overtook slow" [ "slow"; "fast" ]
    !order

let test_wan_methods_transparent_to_corba () =
  (* The same CORBA code, deployed across the WAN with pstream+crypto:
     nothing in the middleware changes. *)
  let prefs =
    { Selector.Prefs.default with Selector.Prefs.pstream_on_wan = true }
  in
  let grid = Padico.create ~prefs () in
  let a = Padico.add_node grid "a" in
  let b = Padico.add_node grid "b" in
  ignore (Padico.add_segment grid Simnet.Presets.vthd [ a; b ]);
  let orb_a = Orb.init grid a in
  let orb_b = Orb.init grid b in
  Orb.activate orb_b ~key:"svc" (fun ~op:_ v -> Ok v);
  Orb.serve orb_b ~port:3700;
  let payload = Cdr.VOctets (Tutil.pattern_buf ~seed:5 200_000) in
  let ok = ref false in
  let driver = ref "" in
  let h =
    Padico.spawn grid a ~name:"wan-client" (fun () ->
        let p =
          Orb.resolve orb_a { Orb.ior_node = b; ior_port = 3700; ior_key = "svc" }
        in
        (match Orb.invoke p ~op:"echo" payload with
         | Ok v -> ok := Cdr.equal_value v payload
         | Error e -> failwith e);
        driver := Option.value ~default:"?" (Orb.proxy_driver p))
  in
  Tutil.run_grid grid;
  Tutil.assert_done h;
  Tutil.check_bool "payload intact over striped+ciphered WAN" true !ok;
  Tutil.check_string "outermost adapter is the cipher" "crypto" !driver

let test_registry_populated () =
  ignore (Padico.create ());
  Tutil.check_bool "drivers registered" true
    (List.length (Padico.Registry.by_kind Padico.Registry.Driver) >= 4);
  Tutil.check_bool "personalities registered" true
    (List.length (Padico.Registry.by_kind Padico.Registry.Personality) >= 5);
  match Padico.Registry.find "madio" with
  | Some e -> Tutil.check_bool "madio is an adapter" true (e.Padico.Registry.kind = Padico.Registry.Adapter)
  | None -> Alcotest.fail "madio not registered"

let () =
  Alcotest.run "integration"
    [ ("multi-middleware",
       [ Alcotest.test_case "MPI+CORBA+SOAP share Myrinet" `Quick
           test_three_middleware_share_myrinet;
         Alcotest.test_case "Java sockets" `Quick test_java_sockets_middleware;
         Alcotest.test_case "parallel component via CORBA" `Quick
           test_parallel_component_with_corba_interface;
         Alcotest.test_case "concurrent connections" `Quick
           test_corba_servant_is_not_blocking ]);
      ("deployment",
       [ Alcotest.test_case "WAN methods transparent" `Quick
           test_wan_methods_transparent_to_corba;
         Alcotest.test_case "registry" `Quick test_registry_populated ]);
    ]
