(** TCP-like reliable byte-stream driver over a segment.

    A real protocol implementation, not a bandwidth formula: 3-way
    handshake, sliding window with receiver flow control, cumulative ACKs,
    out-of-order reassembly, RTT estimation (Karn), retransmission timeout
    with exponential backoff, slow start / congestion avoidance / fast
    retransmit + fast recovery (Reno-class), zero-window probing, FIN/RST.

    This matters for the paper's WAN experiments: a single stream collapses
    under random loss (parallel streams then recover the bandwidth, E4), and
    5–10 % loss pushes TCP into timeout-dominated behaviour around
    150 KB/s where VRP sustains ~3× more (E5).

    The API is callback/event based (non-blocking), mirroring BSD sockets
    driven by a poll loop; SysIO and the personalities build blocking
    behaviour above it. *)

type stack
(** Per-(node, segment) protocol instance. *)

type conn

type event =
  | Established  (** handshake completed *)
  | Readable  (** new in-order data available *)
  | Writable  (** send-buffer space reopened *)
  | Peer_closed  (** FIN consumed after all data *)
  | Reset  (** connection refused or reset *)

type state =
  | Syn_sent
  | Syn_received
  | Established_st
  | Fin_wait
  | Close_wait
  | Closed_st

val attach : Simnet.Segment.t -> Simnet.Node.t -> stack
(** One stack per (segment, node); idempotent. *)

val node : stack -> Simnet.Node.t
val segment : stack -> Simnet.Segment.t
val mss : stack -> int

val listen :
  ?sndbuf:int -> ?rcvbuf:int -> stack -> port:int -> (conn -> unit) -> unit
(** Accept connections on [port]; the callback fires once per connection
    when it reaches [Established]. Raises if the port is taken. [sndbuf] /
    [rcvbuf] size the buffers of {e accepted} connections (default
    {!default_bufsize}) — edge gateways listen with small buffers so 100k
    accepted connections fit a fixed byte budget. *)

val unlisten : stack -> port:int -> unit

val connect :
  ?sndbuf:int -> ?rcvbuf:int -> stack -> dst:int -> port:int -> conn
(** Active open. The returned connection is in [Syn_sent]; subscribe with
    {!set_event_cb} for [Established] / [Reset]. Buffer sizes default to
    {!default_bufsize}. *)

val default_bufsize : int

val set_event_cb : conn -> (event -> unit) -> unit

val state : conn -> state
val conn_node : conn -> Simnet.Node.t
val peer : conn -> int * int
(** (remote node id, remote port). *)

val local_port : conn -> int

val write : conn -> Engine.Bytebuf.t -> int
(** Copy as much as fits into the send buffer; returns bytes accepted
    (0 when full — wait for [Writable]). *)

val write_space : conn -> int

val read : conn -> max:int -> Engine.Bytebuf.t option
(** Dequeue up to [max] bytes of in-order data; [None] when nothing is
    buffered. Freeing receive-buffer space widens the advertised window. *)

val readable_bytes : conn -> int

val peer_closed : conn -> bool
(** [true] once the peer's FIN has been processed. The [Peer_closed] event
    is edge-triggered and fires exactly once, into whatever callback was
    registered at that instant — a callback registered later must poll this
    to catch up on the missed edge. *)

val close : conn -> unit
(** Graceful close: FIN once the send buffer drains. *)

val abort : conn -> unit
(** Hard close: RST to peer, local state [Closed_st]. *)

(** Introspection for tests and benchmarks. *)
val cwnd : conn -> int
val ssthresh : conn -> int
val srtt_ns : conn -> int
val retransmits : conn -> int

(** [retransmit_breakdown c] is (timeouts, fast retransmits, partial-ack
    retransmits). *)
val retransmit_breakdown : conn -> int * int * int

val bytes_sent : conn -> int
val bytes_received : conn -> int

(** {2 Capacity-mode capabilities}

    All off by default; the classic stack behaves exactly as before (the
    exact virtual-time pins in test_sched prove the default path is
    untouched). SysIO's edge mode turns them on per stack. *)

val set_timer_service :
  stack -> (after_ns:int -> (unit -> unit) -> unit) -> unit
(** Route per-connection timers (RTO, zero-window persist) through the
    given arming function instead of the engine event heap — at scale, a
    {!Padico_fault.Timewheel}, so 100k armed retransmit timers cost one
    engine event per occupied slot. *)

val set_reap : stack -> bool -> unit
(** When on, fully-closed connections (FIN handshake complete, RST, or
    SYN give-up) are removed from the stack's table and their pooled
    buffers released. Off (default): closed connections are kept, and no
    RST is ever emitted for a late segment to one — the historical
    behaviour the deterministic replays pin. *)

val set_pooled_rings : stack -> bool -> unit
(** Allocate send rings from the {!Engine.Bytebuf.Pool} size-classed slab
    pool (and return them on reap/close) instead of fresh [Bytes]. *)

val reaped : stack -> int
(** Connections removed by {!set_reap}. *)

(** {2 Byte-budget accounting} *)

val conn_overhead_bytes : int
(** Documented fixed estimate of one connection's record + container
    overhead; the basis of the per-connection byte budget. *)

val conn_resident_bytes : conn -> int
(** [conn_overhead_bytes] + allocated send ring + buffered receive bytes
    (in-order and out-of-order). An idle accepted connection reports
    exactly [conn_overhead_bytes]: its ring is lazy. *)

val conn_count : stack -> int

val resident_bytes : stack -> int
(** Sum of {!conn_resident_bytes} over the stack's table (O(connections);
    meant for gauges and the [flow --budget] report, not hot paths). *)
