module Bytebuf = Engine.Bytebuf

type Simnet.Packet.content +=
  | Gm_frag of {
      chan : int;
      msg_id : int;
      frag : int;
      nfrags : int;
      total : int;
      data : Bytebuf.t;
    }

(* Reassembly state for one incoming message on one channel. *)
type partial = {
  buffer : Bytebuf.t;
  mutable received : int; (* fragments seen so far *)
  nfrags : int;
}

type channel = {
  port : t;
  id : int;
  mutable recv : (src:int -> Bytebuf.t -> unit) option;
  mutable next_msg_id : int;
  partials : (int * int, partial) Hashtbl.t; (* (src, msg_id) -> partial *)
  mutable open_ : bool;
}

and t = {
  seg : Simnet.Segment.t;
  node : Simnet.Node.t;
  channels : (int, channel) Hashtbl.t;
  mutable sent : int;
  mutable received : int;
}

exception No_channel_left

let ports : (int * int, t) Hashtbl.t = Hashtbl.create 16
let registry_lock = Mutex.create ()

let () =
  Engine.Lifecycle.on_reset (fun () ->
      Mutex.protect registry_lock (fun () -> Hashtbl.reset ports))

let node t = t.node
let segment t = t.seg

let max_channels t =
  match (Simnet.Segment.model t.seg).Simnet.Linkmodel.class_ with
  | Simnet.Linkmodel.San ->
    if (Simnet.Segment.model t.seg).Simnet.Linkmodel.name = "SCI" then 1 else 2
  | Simnet.Linkmodel.Loop -> 8
  | Simnet.Linkmodel.Lan | Simnet.Linkmodel.Wan | Simnet.Linkmodel.Lossy_wan ->
    invalid_arg "Gm.attach: GM requires a SAN or loopback segment"

let handle_frag t (pkt : Simnet.Packet.t) =
  match pkt.Simnet.Packet.content with
  | Gm_frag f ->
    (match Hashtbl.find_opt t.channels f.chan with
     | None -> () (* channel closed: hardware drops silently *)
     | Some ch ->
       let key = (pkt.Simnet.Packet.src, f.msg_id) in
       let partial =
         match Hashtbl.find_opt ch.partials key with
         | Some p -> p
         | None ->
           let p =
             { buffer = Bytebuf.create f.total; received = 0;
               nfrags = f.nfrags }
           in
           Hashtbl.replace ch.partials key p;
           p
       in
       (* DMA placement into the posted buffer: no host copy counted. *)
       let off = f.frag * (Simnet.Segment.model t.seg).Simnet.Linkmodel.mtu in
       Bytebuf.blit_dma ~src:f.data ~src_off:0 ~dst:partial.buffer
         ~dst_off:off ~len:(Bytebuf.length f.data);
       partial.received <- partial.received + 1;
       (* Per-fragment completion handling costs host CPU. *)
       Simnet.Node.cpu_async t.node Calib.gm_recv_ns (fun () ->
           if partial.received = partial.nfrags
              && Hashtbl.mem ch.partials key then begin
             Hashtbl.remove ch.partials key;
             t.received <- t.received + 1;
             match ch.recv with
             | Some f -> f ~src:pkt.Simnet.Packet.src partial.buffer
             | None -> ()
           end))
  | _ -> ()

let attach seg node =
  let key = (Simnet.Segment.uid seg, Simnet.Node.id node) in
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt ports key with
      | Some t -> t
      | None ->
        let t =
          { seg; node; channels = Hashtbl.create 4; sent = 0; received = 0 }
        in
        ignore (max_channels t); (* validates the segment class *)
        Simnet.Segment.set_handler seg node ~proto:Simnet.Packet.Proto.gm
          (handle_frag t);
        Hashtbl.replace ports key t;
        t)

let open_channel t ~id =
  if id < 0 || id >= max_channels t then raise No_channel_left;
  if Hashtbl.mem t.channels id then
    invalid_arg (Printf.sprintf "Gm.open_channel: channel %d already open" id);
  let ch =
    { port = t; id; recv = None; next_msg_id = 0;
      partials = Hashtbl.create 8; open_ = true }
  in
  Hashtbl.replace t.channels id ch;
  ch

let close_channel ch =
  if ch.open_ then begin
    ch.open_ <- false;
    Hashtbl.remove ch.port.channels ch.id
  end

let channel_id ch = ch.id

let channels_in_use t = Hashtbl.length t.channels

let set_recv ch f = ch.recv <- Some f

(* Read [len] logical bytes starting at stream offset [off] from an iovec.
   Single-slice views avoid copies; a fragment straddling iovec entries is
   gathered by the NIC (uncounted DMA blit). *)
let iovec_slice iov ~off ~len =
  let out = ref None in
  let gathered = ref None in
  let written = ref 0 in
  let pos = ref 0 in
  List.iter
    (fun part ->
       let plen = Bytebuf.length part in
       let lo = max off !pos and hi = min (off + len) (!pos + plen) in
       if hi > lo then begin
         let piece = Bytebuf.sub part (lo - !pos) (hi - lo) in
         (match (!out, !gathered) with
          | None, None when hi - lo = len -> out := Some piece
          | None, None ->
            let g = Bytebuf.create len in
            Bytebuf.blit_dma ~src:piece ~src_off:0 ~dst:g ~dst_off:0
              ~len:(hi - lo);
            written := hi - lo;
            gathered := Some g
          | _, Some g ->
            Bytebuf.blit_dma ~src:piece ~src_off:0 ~dst:g ~dst_off:!written
              ~len:(hi - lo);
            written := !written + (hi - lo)
          | Some _, _ -> assert false)
       end;
       pos := !pos + plen)
    iov;
  match (!out, !gathered) with
  | Some b, _ -> b
  | _, Some g -> g
  | None, None -> Bytebuf.create 0

let sendv ch ~dst iov =
  if not ch.open_ then invalid_arg "Gm.send: channel is closed";
  let t = ch.port in
  let mtu = (Simnet.Segment.model t.seg).Simnet.Linkmodel.mtu in
  let total = List.fold_left (fun acc b -> acc + Bytebuf.length b) 0 iov in
  let nfrags = if total = 0 then 1 else (total + mtu - 1) / mtu in
  let msg_id = ch.next_msg_id in
  ch.next_msg_id <- ch.next_msg_id + 1;
  t.sent <- t.sent + 1;
  for frag = 0 to nfrags - 1 do
    let off = frag * mtu in
    let len = min mtu (total - off) in
    let data = iovec_slice iov ~off ~len in
    (* Each fragment costs a DMA-post on the host CPU, then hits the wire. *)
    Simnet.Node.cpu_async t.node Calib.gm_send_ns (fun () ->
        Simnet.Segment.send t.seg
          (Simnet.Packet.make ~src:(Simnet.Node.id t.node) ~dst
             ~proto:Simnet.Packet.Proto.gm ~size:len
             (Gm_frag { chan = ch.id; msg_id; frag; nfrags; total; data })))
  done

let send ch ~dst payload = sendv ch ~dst [ payload ]

let messages_sent t = t.sent
let messages_received t = t.received
