module Bytebuf = Engine.Bytebuf
module Sim = Engine.Sim

let log = Logs.Src.create "drivers.tcp"

module Log = (val Logs.src_log log : Logs.LOG)

type flags = { syn : bool; ack : bool; fin : bool; rst : bool }

let plain_ack = { syn = false; ack = true; fin = false; rst = false }

type wire_seg = {
  sport : int;
  dport : int;
  seq : int;
  ackno : int;
  flags : flags;
  wnd : int;
  payload : Bytebuf.t;
}

type Simnet.Packet.content += Tcp_seg of wire_seg

type event = Established | Readable | Writable | Peer_closed | Reset

type state =
  | Syn_sent
  | Syn_received
  | Established_st
  | Fin_wait
  | Close_wait
  | Closed_st

let header_bytes = 40

let default_bufsize = 262_144

let min_rto = 200_000_000 (* 200 ms *)

let max_rto = 60_000_000_000

let initial_rto = 1_000_000_000

(* Sequence-addressed ring buffer for the send side: holds [snd_una, wseq). *)
type ring = { rdata : Bytes.t; rcap : int }

let ring_create cap = { rdata = Bytes.make cap '\000'; rcap = cap }

let ring_write r ~seq (src : Bytebuf.t) ~src_off ~len =
  for i = 0 to len - 1 do
    Bytes.set r.rdata ((seq + i) mod r.rcap) (Bytebuf.get src (src_off + i))
  done

let ring_read r ~seq ~len =
  let out = Bytebuf.create len in
  for i = 0 to len - 1 do
    Bytebuf.set out i (Bytes.get r.rdata ((seq + i) mod r.rcap))
  done;
  out

type conn = {
  stack : stack;
  lport : int;
  rnode : int;
  rport : int;
  mutable st : state;
  (* --- send side --- *)
  (* Allocated on the first [write]: an accepted-but-quiet connection (the
     common state at edge-gateway scale) carries no ring at all. *)
  mutable sndring : ring option;
  sndbuf_cap : int;
  mutable snd_una : int; (* oldest unacknowledged sequence *)
  mutable snd_nxt : int; (* next sequence to transmit *)
  mutable wseq : int; (* next sequence the application will write *)
  mutable fin_pending : bool;
  mutable fin_seq : int; (* sequence consumed by our FIN, -1 if none *)
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable rwnd : int; (* peer-advertised window *)
  mutable dupacks : int;
  mutable in_recovery : bool;
  mutable recover : int;
  mutable srtt : float;
  mutable rttvar : float;
  mutable rto : int;
  mutable rtt_seq : int option;
  mutable rtt_time : int;
  mutable timer_gen : int;
  mutable timer_armed : bool;
  mutable syn_attempts : int;
  mutable strikes : int; (* consecutive RTO firings without ACK progress *)
  mutable persist_armed : bool;
  (* --- receive side --- *)
  mutable rcv_nxt : int;
  ooo : (int, Bytebuf.t) Hashtbl.t;
  rcvq : Bytebuf.t Queue.t;
  mutable rcvq_len : int;
  mutable ooo_len : int;
  rcvbuf_cap : int;
  mutable last_wnd_sent : int;
  mutable peer_fin : int option; (* sequence of the peer's FIN *)
  mutable peer_closed_delivered : bool;
  (* --- app interface --- *)
  mutable cb : event -> unit;
  mutable retransmits : int;
  mutable rto_events : int;
  mutable fast_events : int;
  mutable partial_events : int;
  mutable tx_bytes : int;
  mutable rx_bytes : int;
}

and listener = { l_accept : conn -> unit; l_sndbuf : int; l_rcvbuf : int }

and stack = {
  seg : Simnet.Segment.t;
  snode : Simnet.Node.t;
  conns : (int * int * int, conn) Hashtbl.t; (* (lport, rnode, rport) *)
  listeners : (int, listener) Hashtbl.t;
  mutable next_ephemeral : int;
  (* Capacity-mode capabilities, all off by default so the classic paths
     stay byte-identical (exact virtual-time pins in test_sched). *)
  mutable timer_svc : (after_ns:int -> (unit -> unit) -> unit) option;
      (* RTO/persist timers go here instead of the engine heap when set *)
  mutable reap : bool; (* remove fully-closed conns from [conns] *)
  mutable pooled_rings : bool; (* send rings from Bytebuf.Pool size classes *)
  mutable reaped : int;
}

let stacks : (int * int, stack) Hashtbl.t = Hashtbl.create 16

(* Find-or-create can run mid-run on any worker shard of a parallel
   simulation; the registry table needs a lock even though each created
   instance stays owner-shard. *)
let registry_lock = Mutex.create ()

let () =
  Engine.Lifecycle.on_reset (fun () ->
      Mutex.protect registry_lock (fun () -> Hashtbl.reset stacks))

let node s = s.snode
let segment s = s.seg
let mss s = (Simnet.Segment.model s.seg).Simnet.Linkmodel.mtu - header_bytes
let state c = c.st
let conn_node c = c.stack.snode
let peer c = (c.rnode, c.rport)
let local_port c = c.lport
let set_event_cb c cb = c.cb <- cb
let peer_closed c = c.peer_closed_delivered
let cwnd c = c.cwnd
let ssthresh c = c.ssthresh
let srtt_ns c = int_of_float c.srtt
let retransmits c = c.retransmits
let retransmit_breakdown c = (c.rto_events, c.fast_events, c.partial_events)
let bytes_sent c = c.tx_bytes
let bytes_received c = c.rx_bytes
let sim c = Simnet.Segment.sim c.stack.seg

(* Per-connection timers (RTO, persist probes) go through the stack's
   injected timer service when one is set — at edge-gateway scale that is a
   slotted timewheel, so 100k retransmit timers cost one engine event per
   occupied slot instead of one each. Default: the engine heap, verbatim. *)
let tcp_after c ns f =
  match c.stack.timer_svc with
  | Some svc -> svc ~after_ns:ns f
  | None -> Sim.after (sim c) ns f

(* The send ring is allocated on first write (never for accepted-but-quiet
   connections) and, when the stack pools rings, recycled through the
   size-classed slab pool across the connect/disconnect churn. *)
let get_ring c =
  match c.sndring with
  | Some r -> r
  | None ->
    let r =
      if c.stack.pooled_rings then
        { rdata = Bytebuf.Pool.alloc_bytes c.sndbuf_cap; rcap = c.sndbuf_cap }
      else ring_create c.sndbuf_cap
    in
    c.sndring <- Some r;
    r

let release_ring c =
  match c.sndring with
  | None -> ()
  | Some r ->
    c.sndring <- None;
    if c.stack.pooled_rings then Bytebuf.Pool.release_bytes r.rdata

(* Advertised window counts only undelivered in-order data (as in BSD: the
   reassembly queue is not charged against the socket buffer until
   delivered). Charging out-of-order data would make every duplicate ACK
   carry a different window, defeating fast retransmit. *)
let rcv_window c =
  let w = c.rcvbuf_cap - c.rcvq_len in
  if w < 0 then 0 else w

(* Transmit one segment: charge the host CPU, then hand to the NIC. *)
let emit stack ~dst ~(content : Simnet.Packet.content) ~paylen =
  let cost =
    Calib.tcp_send_seg_ns
    + int_of_float (Calib.tcp_per_byte_ns *. float_of_int paylen)
  in
  Simnet.Node.cpu_async stack.snode cost (fun () ->
      Simnet.Segment.send stack.seg
        (Simnet.Packet.make ~src:(Simnet.Node.id stack.snode) ~dst
           ~proto:Simnet.Packet.Proto.tcp ~size:(paylen + header_bytes)
           content))

let send_seg c ?(flags = plain_ack) ~seq payload =
  let paylen = Bytebuf.length payload in
  c.last_wnd_sent <- rcv_window c;
  emit c.stack ~dst:c.rnode ~paylen
    ~content:
      (Tcp_seg
         { sport = c.lport; dport = c.rport; seq; ackno = c.rcv_nxt; flags;
           wnd = c.last_wnd_sent; payload })

let send_rst stack ~dst ~sport ~dport ~seq ~ackno =
  emit stack ~dst ~paylen:0
    ~content:
      (Tcp_seg
         { sport; dport; seq; ackno;
           flags = { syn = false; ack = true; fin = false; rst = true };
           wnd = 0; payload = Bytebuf.create 0 })

let send_pure_ack c = send_seg c ~seq:c.snd_nxt (Bytebuf.create 0)

let outstanding c = c.snd_nxt > c.snd_una

let cancel_timer c =
  c.timer_gen <- c.timer_gen + 1;
  c.timer_armed <- false

(* Fully-closed connections leave the stack's table when reaping is on
   (edge/capacity mode): the classic default keeps them forever, exactly as
   before — a late segment for a reaped connection is answered with RST,
   which the default path must never emit (it would perturb loss RNG). *)
let reap_conn c =
  if c.stack.reap && c.st = Closed_st then begin
    cancel_timer c;
    release_ring c;
    let key = (c.lport, c.rnode, c.rport) in
    match Hashtbl.find_opt c.stack.conns key with
    | Some c' when c' == c ->
      Hashtbl.remove c.stack.conns key;
      c.stack.reaped <- c.stack.reaped + 1
    | Some _ | None -> ()
  end

let rec arm_timer c =
  if (not c.timer_armed) && c.st <> Closed_st && outstanding c then begin
    c.timer_armed <- true;
    c.timer_gen <- c.timer_gen + 1;
    let gen = c.timer_gen in
    tcp_after c c.rto (fun () ->
        if gen = c.timer_gen && c.st <> Closed_st then begin
          c.timer_armed <- false;
          if outstanding c then on_timeout c
        end)
  end

and on_timeout c =
  (* RTO: multiplicative backoff, window collapse, go-back-N. *)
  let flight = c.snd_nxt - c.snd_una in
  let m = mss c.stack in
  c.ssthresh <- max (flight / 2) (2 * m);
  c.cwnd <- m;
  c.dupacks <- 0;
  c.in_recovery <- false;
  c.rto <- min (c.rto * 2) max_rto;
  c.rtt_seq <- None;
  c.retransmits <- c.retransmits + 1;
  c.rto_events <- c.rto_events + 1;
  Log.debug (fun l ->
      l "%s:%d rto fire una=%d nxt=%d rto=%dms"
        (Simnet.Node.name c.stack.snode)
        c.lport c.snd_una c.snd_nxt (c.rto / 1_000_000));
  (match c.st with
   | Syn_sent ->
     c.syn_attempts <- c.syn_attempts + 1;
     if c.syn_attempts >= 5 then begin
       (* Give up like ETIMEDOUT: the peer has no reachable TCP service. *)
       c.st <- Closed_st;
       cancel_timer c;
       c.cb Reset;
       reap_conn c
     end
     else
       send_seg c ~flags:{ syn = true; ack = false; fin = false; rst = false }
         ~seq:c.snd_una (Bytebuf.create 0)
   | Syn_received ->
     c.syn_attempts <- c.syn_attempts + 1;
     if c.stack.reap && c.syn_attempts >= 5 then begin
       (* Capacity mode: give up on a half-open passive connection whose
          dialer vanished mid-handshake (its RST was lost) — otherwise the
          SYN-ACK retransmits forever and the gateway leaks the slot. The
          connection was never accepted, so there is no callback to fire.
          Classic mode keeps the historical endless retransmission. *)
       c.st <- Closed_st;
       cancel_timer c;
       reap_conn c
     end
     else
       send_seg c ~flags:{ syn = true; ack = true; fin = false; rst = false }
         ~seq:c.snd_una (Bytebuf.create 0)
   | Established_st | Fin_wait | Close_wait ->
     c.strikes <- c.strikes + 1;
     if c.stack.reap && c.strikes >= 10 then begin
       (* Capacity mode: ETIMEDOUT after 10 consecutive unanswered
          retransmissions — the peer is gone (reset lost, host vanished).
          Surface it as a reset so the watcher tears the connection
          down. *)
       c.st <- Closed_st;
       cancel_timer c;
       c.cb Reset;
       reap_conn c
     end
     else begin
       c.snd_nxt <- c.snd_una;
       try_output c
     end
   | Closed_st -> ());
  arm_timer c

(* Send as much as the congestion and flow-control windows allow. *)
and try_output c =
  match c.st with
  | Syn_sent | Syn_received | Closed_st -> ()
  | Established_st | Fin_wait | Close_wait ->
    let m = mss c.stack in
    let continue = ref true in
    while !continue do
      continue := false;
      let usable = c.snd_una + min c.cwnd c.rwnd - c.snd_nxt in
      let pending = c.wseq - c.snd_nxt in
      if pending > 0 && usable > 0 then begin
        let len = min (min m pending) usable in
        let payload = ring_read (get_ring c) ~seq:c.snd_nxt ~len in
        (* One RTT sample in flight at a time (Karn: only new data). *)
        if c.rtt_seq = None then begin
          c.rtt_seq <- Some (c.snd_nxt + len);
          c.rtt_time <- Sim.now (sim c)
        end;
        send_seg c ~seq:c.snd_nxt payload;
        c.snd_nxt <- c.snd_nxt + len;
        c.tx_bytes <- c.tx_bytes + len;
        continue := true
      end
      else if pending > 0 && c.rwnd = 0 && usable <= 0 && not c.persist_armed
      then begin
        (* Zero-window probe. *)
        c.persist_armed <- true;
        tcp_after c c.rto (fun () ->
            c.persist_armed <- false;
            if c.st <> Closed_st && c.rwnd = 0 && c.wseq > c.snd_nxt then begin
              let payload = ring_read (get_ring c) ~seq:c.snd_nxt ~len:1 in
              send_seg c ~seq:c.snd_nxt payload;
              c.snd_nxt <- c.snd_nxt + 1;
              arm_timer c
            end)
      end
    done;
    (* FIN once everything written has been transmitted (also re-sent after
       go-back-N rewinds snd_nxt). *)
    if c.fin_pending && c.wseq = c.snd_nxt
       && (c.fin_seq < 0 || c.fin_seq = c.snd_nxt) then begin
      c.fin_seq <- c.snd_nxt;
      send_seg c ~flags:{ syn = false; ack = true; fin = true; rst = false }
        ~seq:c.snd_nxt (Bytebuf.create 0);
      c.snd_nxt <- c.snd_nxt + 1
    end;
    arm_timer c

let make_conn stack ~lport ~rnode ~rport ~st ~sndbuf ~rcvbuf =
  (* The SYN occupies sequence 0; application data starts at 1. *)
  let handshake = st = Syn_sent || st = Syn_received in
  let c =
    { stack; lport; rnode; rport; st;
      sndring = None; sndbuf_cap = sndbuf;
      snd_una = (if handshake then 0 else 1);
      snd_nxt = 1; wseq = 1; fin_pending = false; fin_seq = -1;
      cwnd = 2 * mss stack; ssthresh = 1 lsl 30;
      rwnd = default_bufsize; dupacks = 0; in_recovery = false; recover = 0;
      srtt = 0.0; rttvar = 0.0; rto = initial_rto; rtt_seq = None;
      rtt_time = 0; timer_gen = 0; timer_armed = false; syn_attempts = 0;
      strikes = 0; persist_armed = false;
      rcv_nxt = 1; ooo = Hashtbl.create 8; rcvq = Queue.create ();
      rcvq_len = 0; ooo_len = 0; rcvbuf_cap = rcvbuf; last_wnd_sent = rcvbuf;
      peer_fin = None; peer_closed_delivered = false;
      cb = (fun _ -> ()); retransmits = 0; rto_events = 0; fast_events = 0;
      partial_events = 0; tx_bytes = 0; rx_bytes = 0 }
  in
  Hashtbl.replace stack.conns (lport, rnode, rport) c;
  c

let update_rtt c =
  match c.rtt_seq with
  | Some s when c.snd_una >= s ->
    c.rtt_seq <- None;
    let sample = float_of_int (Sim.now (sim c) - c.rtt_time) in
    if c.srtt = 0.0 then begin
      c.srtt <- sample;
      c.rttvar <- sample /. 2.0
    end
    else begin
      c.rttvar <- (0.75 *. c.rttvar) +. (0.25 *. Float.abs (c.srtt -. sample));
      c.srtt <- (0.875 *. c.srtt) +. (0.125 *. sample)
    end;
    let rto =
      int_of_float (c.srtt +. Float.max 10_000_000.0 (4.0 *. c.rttvar))
    in
    c.rto <- min (max rto min_rto) max_rto
  | _ -> ()

let deliver_data c (data : Bytebuf.t) =
  Queue.push data c.rcvq;
  c.rcvq_len <- c.rcvq_len + Bytebuf.length data;
  c.rx_bytes <- c.rx_bytes + Bytebuf.length data

(* Pull contiguous data out of the out-of-order store. *)
let drain_ooo c =
  let progress = ref true in
  while !progress do
    progress := false;
    Hashtbl.iter
      (fun seq data ->
         if not !progress then begin
           let len = Bytebuf.length data in
           if seq + len <= c.rcv_nxt then begin
             Hashtbl.remove c.ooo seq;
             c.ooo_len <- c.ooo_len - len;
             progress := true
           end
           else if seq <= c.rcv_nxt then begin
             Hashtbl.remove c.ooo seq;
             c.ooo_len <- c.ooo_len - len;
             let keep =
               Bytebuf.sub data (c.rcv_nxt - seq) (seq + len - c.rcv_nxt)
             in
             deliver_data c keep;
             c.rcv_nxt <- seq + len;
             progress := true
           end
         end)
      c.ooo
  done

let enter_close_states c =
  let our_fin_acked = c.fin_seq >= 0 && c.snd_una > c.fin_seq in
  match (c.peer_fin, our_fin_acked) with
  | Some fin_seq, true when c.rcv_nxt > fin_seq ->
    c.st <- Closed_st;
    reap_conn c
  | Some _, _ -> if c.st = Established_st then c.st <- Close_wait
  | None, _ -> if c.fin_pending && c.st = Established_st then c.st <- Fin_wait

let handle_ack c ~ackno ~wnd ~paylen =
  let old_rwnd = c.rwnd in
  c.rwnd <- wnd;
  if ackno > c.snd_una then begin
    let acked = ackno - c.snd_una in
    c.snd_una <- ackno;
    c.strikes <- 0;
    update_rtt c;
    let m = mss c.stack in
    if c.in_recovery && ackno >= c.recover then begin
      c.in_recovery <- false;
      c.cwnd <- c.ssthresh;
      c.dupacks <- 0
    end
    else if c.in_recovery then begin
      (* NewReno partial ack: retransmit the next hole, deflate. *)
      let len = min m (c.wseq - c.snd_una) in
      if len > 0 then begin
        let payload = ring_read (get_ring c) ~seq:c.snd_una ~len in
        send_seg c ~seq:c.snd_una payload;
        c.retransmits <- c.retransmits + 1;
        c.partial_events <- c.partial_events + 1;
        Log.debug (fun l ->
            l "partial ack=%d una=%d recover=%d nxt=%d" ackno c.snd_una
              c.recover c.snd_nxt)
      end;
      c.cwnd <- max m (c.cwnd - acked + m)
    end
    else begin
      c.dupacks <- 0;
      if c.cwnd < c.ssthresh then c.cwnd <- c.cwnd + min acked m
      else c.cwnd <- c.cwnd + max 1 (m * m / c.cwnd)
    end;
    cancel_timer c;
    arm_timer c;
    try_output c;
    enter_close_states c;
    if c.wseq - c.snd_una < c.sndbuf_cap then c.cb Writable
  end
  else if ackno = c.snd_una && outstanding c && paylen = 0 && wnd = old_rwnd
  then begin
    (* A true duplicate ACK: same ack number, empty, window unchanged —
       pure window updates must not trigger fast retransmit. *)
    c.dupacks <- c.dupacks + 1;
    let m = mss c.stack in
    if c.dupacks = 3 && not c.in_recovery then begin
      (* Fast retransmit + fast recovery. *)
      let flight = c.snd_nxt - c.snd_una in
      c.ssthresh <- max (flight / 2) (2 * m);
      c.in_recovery <- true;
      c.recover <- c.snd_nxt;
      c.retransmits <- c.retransmits + 1;
      c.fast_events <- c.fast_events + 1;
      Log.debug (fun l ->
          l "fastrx una=%d nxt=%d cwnd=%d" c.snd_una c.snd_nxt c.cwnd);
      c.rtt_seq <- None;
      let len = min m (c.wseq - c.snd_una) in
      if len > 0 then begin
        let payload = ring_read (get_ring c) ~seq:c.snd_una ~len in
        send_seg c ~seq:c.snd_una payload
      end
      else if c.fin_seq = c.snd_una then
        send_seg c ~flags:{ syn = false; ack = true; fin = true; rst = false }
          ~seq:c.snd_una (Bytebuf.create 0);
      c.cwnd <- c.ssthresh + (3 * m)
    end
    else if c.in_recovery then begin
      c.cwnd <- c.cwnd + m;
      try_output c
    end
  end;
  (* A pure window update must restart a sender stalled on flow control. *)
  if wnd > old_rwnd then try_output c

let deliver_peer_closed c =
  enter_close_states c;
  if not c.peer_closed_delivered then begin
    c.peer_closed_delivered <- true;
    c.cb Peer_closed
  end

let rec handle_conn_segment c (seg : wire_seg) =
  if seg.flags.rst then begin
    if c.st <> Closed_st then begin
      c.st <- Closed_st;
      cancel_timer c;
      c.cb Reset;
      reap_conn c
    end
  end
  else
    match c.st with
    | Syn_sent when seg.flags.syn && seg.flags.ack && seg.ackno = c.snd_nxt ->
      c.snd_una <- seg.ackno;
      c.rcv_nxt <- seg.seq + 1;
      c.rwnd <- seg.wnd;
      c.st <- Established_st;
      c.rto <- initial_rto;
      cancel_timer c;
      send_pure_ack c;
      c.cb Established;
      try_output c
    | Syn_sent -> ()
    | Syn_received when seg.flags.ack && seg.ackno = c.snd_nxt ->
      c.snd_una <- seg.ackno;
      c.rwnd <- seg.wnd;
      c.st <- Established_st;
      c.rto <- initial_rto;
      cancel_timer c;
      c.cb Established;
      (* The handshake ACK may carry data: reprocess through the data path. *)
      if Bytebuf.length seg.payload > 0 || seg.flags.fin then
        handle_conn_segment c seg
    | Syn_received -> ()
    | Closed_st -> ()
    | Established_st | Fin_wait | Close_wait ->
      let paylen = Bytebuf.length seg.payload in
      if seg.flags.ack then handle_ack c ~ackno:seg.ackno ~wnd:seg.wnd ~paylen;
      if paylen > 0 then begin
        let seq = seg.seq in
        let had_new = ref false in
        if seq + paylen <= c.rcv_nxt then () (* pure duplicate *)
        else if seq <= c.rcv_nxt then begin
          let fresh =
            Bytebuf.sub seg.payload (c.rcv_nxt - seq)
              (seq + paylen - c.rcv_nxt)
          in
          deliver_data c fresh;
          c.rcv_nxt <- seq + paylen;
          drain_ooo c;
          had_new := true
        end
        else if not (Hashtbl.mem c.ooo seq) then begin
          Hashtbl.replace c.ooo seq seg.payload;
          c.ooo_len <- c.ooo_len + paylen
        end;
        (* Immediate ACK: in-order data acknowledges progress, anything else
           produces a duplicate ACK for fast retransmit. *)
        send_pure_ack c;
        if !had_new then c.cb Readable
      end;
      (match seg.flags.fin, c.peer_fin with
       | true, None -> c.peer_fin <- Some (seg.seq + paylen)
       | _ -> ());
      (match c.peer_fin with
       | Some fin_seq when c.rcv_nxt = fin_seq ->
         c.rcv_nxt <- fin_seq + 1;
         send_pure_ack c;
         deliver_peer_closed c
       | Some _ when seg.flags.fin -> send_pure_ack c
       | _ -> ())

let handle_segment stack (pkt : Simnet.Packet.t) (seg : wire_seg) =
  let key = (seg.dport, pkt.Simnet.Packet.src, seg.sport) in
  match Hashtbl.find_opt stack.conns key with
  | Some c -> handle_conn_segment c seg
  | None ->
    if seg.flags.rst then ()
    else if seg.flags.syn && not seg.flags.ack then begin
      match Hashtbl.find_opt stack.listeners seg.dport with
      | Some l ->
        let c =
          make_conn stack ~lport:seg.dport ~rnode:pkt.Simnet.Packet.src
            ~rport:seg.sport ~st:Syn_received ~sndbuf:l.l_sndbuf
            ~rcvbuf:l.l_rcvbuf
        in
        c.rcv_nxt <- seg.seq + 1;
        c.rwnd <- seg.wnd;
        (* Remember the acceptor; fired when reaching Established. *)
        c.cb <- (fun ev -> if ev = Established then l.l_accept c);
        send_seg c ~flags:{ syn = true; ack = true; fin = false; rst = false }
          ~seq:0 (Bytebuf.create 0);
        arm_timer c
      | None ->
        send_rst stack ~dst:pkt.Simnet.Packet.src ~sport:seg.dport
          ~dport:seg.sport ~seq:0 ~ackno:(seg.seq + 1)
    end
    else
      send_rst stack ~dst:pkt.Simnet.Packet.src ~sport:seg.dport
        ~dport:seg.sport ~seq:seg.ackno ~ackno:(seg.seq + 1)

let handle_packet stack (pkt : Simnet.Packet.t) =
  match pkt.Simnet.Packet.content with
  | Tcp_seg seg ->
    let paylen = Bytebuf.length seg.payload in
    let cost =
      Calib.tcp_recv_seg_ns
      + int_of_float (Calib.tcp_per_byte_ns *. float_of_int paylen)
    in
    Simnet.Node.cpu_async stack.snode cost (fun () ->
        handle_segment stack pkt seg)
  | _ -> ()

let attach seg node =
  let key = (Simnet.Segment.uid seg, Simnet.Node.id node) in
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt stacks key with
      | Some s -> s
      | None ->
        let s =
          { seg; snode = node; conns = Hashtbl.create 16;
            listeners = Hashtbl.create 8; next_ephemeral = 32_768;
            timer_svc = None; reap = false; pooled_rings = false; reaped = 0 }
        in
        Simnet.Segment.set_handler seg node ~proto:Simnet.Packet.Proto.tcp
          (handle_packet s);
        Hashtbl.replace stacks key s;
        s)

let listen ?(sndbuf = default_bufsize) ?(rcvbuf = default_bufsize) stack ~port
    cb =
  if Hashtbl.mem stack.listeners port then
    invalid_arg (Printf.sprintf "Tcp.listen: port %d already bound" port);
  Hashtbl.replace stack.listeners port
    { l_accept = cb; l_sndbuf = sndbuf; l_rcvbuf = rcvbuf }

let unlisten stack ~port = Hashtbl.remove stack.listeners port

let connect ?(sndbuf = default_bufsize) ?(rcvbuf = default_bufsize) stack ~dst
    ~port =
  let lport = stack.next_ephemeral in
  stack.next_ephemeral <- stack.next_ephemeral + 1;
  let c =
    make_conn stack ~lport ~rnode:dst ~rport:port ~st:Syn_sent ~sndbuf ~rcvbuf
  in
  send_seg c ~flags:{ syn = true; ack = false; fin = false; rst = false }
    ~seq:0 (Bytebuf.create 0);
  arm_timer c;
  c

let write c (buf : Bytebuf.t) =
  match c.st with
  | Closed_st -> invalid_arg "Tcp.write: connection closed"
  | Syn_sent | Syn_received | Established_st | Fin_wait | Close_wait ->
    if c.fin_pending then invalid_arg "Tcp.write: already shut down";
    let space = c.sndbuf_cap - (c.wseq - c.snd_una) in
    let n = min space (Bytebuf.length buf) in
    if n > 0 then begin
      ring_write (get_ring c) ~seq:c.wseq buf ~src_off:0 ~len:n;
      c.wseq <- c.wseq + n;
      try_output c
    end;
    n

let write_space c = c.sndbuf_cap - (c.wseq - c.snd_una)

let readable_bytes c = c.rcvq_len

let read c ~max =
  if c.rcvq_len = 0 || max <= 0 then None
  else begin
    let parts = ref [] in
    let taken = ref 0 in
    while !taken < max && not (Queue.is_empty c.rcvq) do
      let chunk = Queue.peek c.rcvq in
      let len = Bytebuf.length chunk in
      if !taken + len <= max then begin
        ignore (Queue.pop c.rcvq);
        parts := chunk :: !parts;
        taken := !taken + len
      end
      else begin
        let want = max - !taken in
        let head = Bytebuf.sub chunk 0 want in
        let tail = Bytebuf.sub chunk want (len - want) in
        ignore (Queue.pop c.rcvq);
        (* Put the remainder back in front. *)
        let rest = Queue.create () in
        Queue.push tail rest;
        Queue.transfer c.rcvq rest;
        Queue.transfer rest c.rcvq;
        parts := head :: !parts;
        taken := max
      end
    done;
    c.rcvq_len <- c.rcvq_len - !taken;
    (* Window update once enough space reopened. *)
    (match c.st with
     | Established_st | Fin_wait ->
       let w = rcv_window c in
       if w - c.last_wnd_sent >= mss c.stack then send_pure_ack c
     | Syn_sent | Syn_received | Close_wait | Closed_st -> ());
    match !parts with
    | [ one ] -> Some one
    | parts -> Some (Bytebuf.concat (List.rev parts))
  end

let close c =
  match c.st with
  | Closed_st -> ()
  | Syn_sent ->
    c.st <- Closed_st;
    cancel_timer c;
    release_ring c;
    Hashtbl.remove c.stack.conns (c.lport, c.rnode, c.rport)
  | Syn_received | Established_st | Fin_wait | Close_wait ->
    if not c.fin_pending then begin
      c.fin_pending <- true;
      try_output c;
      enter_close_states c
    end

let abort c =
  if c.st <> Closed_st then begin
    send_rst c.stack ~dst:c.rnode ~sport:c.lport ~dport:c.rport ~seq:c.snd_nxt
      ~ackno:c.rcv_nxt;
    c.st <- Closed_st;
    cancel_timer c;
    release_ring c;
    Hashtbl.remove c.stack.conns (c.lport, c.rnode, c.rport)
  end

(* ---------- capacity-mode capabilities and accounting ---------- *)

let set_timer_service stack svc = stack.timer_svc <- Some svc

let set_reap stack v = stack.reap <- v

let set_pooled_rings stack v = stack.pooled_rings <- v

let reaped stack = stack.reaped

let conn_count stack = Hashtbl.length stack.conns

(* Fixed estimate of the connection record, its hashtable slot and the
   empty receive structures (queue, 8-bucket ooo table) on a 64-bit
   runtime: ~50 words of record + ~14 words of containers, rounded up.
   The memory-budget regression test pins the reported per-connection
   total against this constant, so accidental per-connection allocations
   show up as a budget violation rather than only as RSS at 100k. *)
let conn_overhead_bytes = 512

let conn_resident_bytes c =
  conn_overhead_bytes
  + (match c.sndring with Some r -> r.rcap | None -> 0)
  + c.rcvq_len + c.ooo_len

let resident_bytes stack =
  Hashtbl.fold (fun _ c acc -> acc + conn_resident_bytes c) stack.conns 0
