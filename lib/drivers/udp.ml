module Bytebuf = Engine.Bytebuf

type Simnet.Packet.content +=
  | Udp_dgram of { src_port : int; dst_port : int; data : Bytebuf.t }

type t = {
  seg : Simnet.Segment.t;
  node : Simnet.Node.t;
  binds : (int, src:int -> src_port:int -> Bytebuf.t -> unit) Hashtbl.t;
  mutable sent : int;
  mutable received : int;
}

let endpoints : (int * int, t) Hashtbl.t = Hashtbl.create 16
let registry_lock = Mutex.create ()

let () =
  Engine.Lifecycle.on_reset (fun () ->
      Mutex.protect registry_lock (fun () -> Hashtbl.reset endpoints))

let header_bytes = 28

let node t = t.node
let segment t = t.seg

let max_payload t =
  (Simnet.Segment.model t.seg).Simnet.Linkmodel.mtu - header_bytes

let handle t (pkt : Simnet.Packet.t) =
  match pkt.Simnet.Packet.content with
  | Udp_dgram d ->
    Simnet.Node.cpu_async t.node Calib.udp_recv_ns (fun () ->
        match Hashtbl.find_opt t.binds d.dst_port with
        | Some f ->
          t.received <- t.received + 1;
          f ~src:pkt.Simnet.Packet.src ~src_port:d.src_port d.data
        | None -> ())
  | _ -> ()

let attach seg node =
  let key = (Simnet.Segment.uid seg, Simnet.Node.id node) in
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt endpoints key with
      | Some t -> t
      | None ->
        let t =
          { seg; node; binds = Hashtbl.create 8; sent = 0; received = 0 }
        in
        Simnet.Segment.set_handler seg node ~proto:Simnet.Packet.Proto.udp
          (handle t);
        Hashtbl.replace endpoints key t;
        t)

let bind t ~port f =
  if Hashtbl.mem t.binds port then
    invalid_arg (Printf.sprintf "Udp.bind: port %d already bound" port);
  Hashtbl.replace t.binds port f

let unbind t ~port = Hashtbl.remove t.binds port

let sendto t ~dst ~dst_port ~src_port payload =
  let len = Bytebuf.length payload in
  if len > max_payload t then
    invalid_arg
      (Printf.sprintf "Udp.sendto: datagram of %d exceeds max payload %d" len
         (max_payload t));
  t.sent <- t.sent + 1;
  Simnet.Node.cpu_async t.node Calib.udp_send_ns (fun () ->
      Simnet.Segment.send t.seg
        (Simnet.Packet.make ~src:(Simnet.Node.id t.node) ~dst
           ~proto:Simnet.Packet.Proto.udp ~size:(len + header_bytes)
           (Udp_dgram { src_port; dst_port; data = payload })))

let datagrams_sent t = t.sent
let datagrams_received t = t.received
