(** Cooperative green threads over the simulator, built on OCaml 5 effects.

    Middleware and application code in the simulation is written in natural
    blocking style ([Mpi.recv], [Vio.read], …); blocking operations suspend
    the current process and resume it from a later simulator event. All
    processes run interleaved on the single simulation thread, so no locking
    is needed — only event ordering matters. *)

type handle
(** A spawned process. *)

val spawn : Sim.t -> ?name:string -> (unit -> unit) -> handle
(** [spawn sim f] schedules a process running [f] at the current virtual
    time. An exception escaping [f] is recorded in the handle and logged.
    Equivalent to [spawn_on (Sim.clock sim)]. *)

val spawn_on : Clock.t -> ?name:string -> (unit -> unit) -> handle
(** Clock-capability variant of {!spawn}: the process is scheduled on
    whatever event loop backs the clock — the simulator heap for a
    virtual clock, the Hostio reactor for a monotonic one. *)

val done_ : handle -> bool
(** [done_ h] is [true] once the process body returned or raised. *)

val result : handle -> (unit, exn) result option
(** Termination status, or [None] while still running. *)

val name : handle -> string

val suspend : ((('a -> unit) -> unit)) -> 'a
(** [suspend setup] suspends the calling process and invokes
    [setup resume]. The process continues — with the value passed to
    [resume] — from wherever [resume] is called (typically a simulator
    event). Calling [resume] twice raises [Invalid_argument] naming the
    process and its state. Calling [suspend] outside a process raises
    [Invalid_argument] explaining that no spawn handler is on the stack. *)

val sleep : Sim.t -> int -> unit
(** [sleep sim dt] suspends the calling process for [dt] virtual ns. *)

val sleep_on : Clock.t -> int -> unit
(** Clock-capability variant of {!sleep}: [dt] nanoseconds of whatever
    time the clock measures (virtual or wall). *)

val yield : Sim.t -> unit
(** Suspend and resume at the same virtual time, after already-queued
    events. *)

val yield_on : Clock.t -> unit
(** Clock-capability variant of {!yield}. *)

val join : Sim.t -> handle -> unit
(** [join sim h] blocks the calling process until [h] terminates. If [h]
    raised, the exception is re-raised in the joining process. *)

val join_on : Clock.t -> handle -> unit
(** Clock-capability variant of {!join}. *)

(** Write-once synchronization cell. *)
module Ivar : sig
  type 'a t

  val create : unit -> 'a t
  val fill : 'a t -> 'a -> unit
  (** Raises [Invalid_argument] when already filled. *)

  val is_filled : 'a t -> bool
  val peek : 'a t -> 'a option

  val read : 'a t -> 'a
  (** Blocks the calling process until the ivar is filled. *)
end

(** Unbounded FIFO channel between processes. *)
module Mailbox : sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  (** [capacity] bounds the queue (default: unbounded). Raises
      [Invalid_argument] when [capacity < 1]. *)

  val send : 'a t -> 'a -> unit
  (** Deliver a message. When the mailbox holds [capacity] messages and no
      reader is waiting, the calling process suspends until a receiver
      drains one slot — so [send] on a bounded mailbox must run in process
      context. The message is enqueued after the wakeup, preserving send
      order per sender. *)

  val recv : 'a t -> 'a
  (** Blocks the calling process until a message is available. *)

  val recv_opt : 'a t -> 'a option
  (** Non-blocking receive. *)

  val length : 'a t -> int

  val peak : 'a t -> int
  (** Highest [length] ever observed. *)

  val capacity : 'a t -> int
end

(** Counting semaphore. *)
module Semaphore : sig
  type t

  val create : int -> t
  val acquire : t -> unit
  val release : t -> unit
  val available : t -> int
end
