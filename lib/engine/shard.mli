(** Conservative parallel discrete-event runtime over topology shards.

    Partitions a simulation into shards — one {!Sim.t} heap each — and
    executes them on a pool of OCaml 5 domains with null-message /
    lower-bound-timestamp (LBTS) synchronization. Cross-shard events
    travel as timestamped frames through bounded SPSC channels, one per
    (source, destination) shard pair; the per-channel {e lookahead} (the
    minimum link latency between the two shards, strictly positive)
    bounds how far a shard may run ahead of its peers' published clocks.

    Determinism: the shard partition comes from the topology, never from
    the worker count, and frames merge with local events by the
    canonical key (timestamp, source shard, channel push order) — so a
    run over S shards is byte-identical whether 1 or N domains drive it.
    Simnet wires this up from [Net.create ~shards]; the classic
    single-heap engine is untouched and remains the default. *)

type t

val create : ?ring_capacity:int -> lookahead:int array array -> Sim.t array -> t
(** [create ~lookahead sims] builds a runtime over [sims] (one per
    shard). [lookahead.(i).(j)] is the minimum delay, in virtual ns, of
    any frame posted from shard [i] to shard [j] — it must be strictly
    positive for every pair that ever communicates (use [max_int] for
    pairs that cannot). [ring_capacity] (default 4096, rounded up to a
    power of two) sizes each SPSC ring; overflow degrades to a
    producer-side parking list, throttling the producer's published
    bound rather than blocking. Raises [Invalid_argument] on a
    non-square matrix or a non-positive cross-shard lookahead. *)

val shard_count : t -> int

val sim : t -> int -> Sim.t
(** The shard's simulator. *)

val post : t -> src:int -> dst:int -> ts:int -> (unit -> unit) -> unit
(** [post t ~src ~dst ~ts f] schedules [f] to run on shard [dst] at
    virtual time [ts]. Must be called from shard [src]'s worker while it
    executes (the simnet segment send path), with
    [ts >= now(src) + lookahead(src, dst)] — the conservative protocol's
    correctness rests on that floor. [src = dst] degrades to a plain
    [Sim.at]. *)

val run : ?domains:int -> ?until:int -> t -> unit
(** [run ~domains t] executes every shard to global quiescence (or
    [until]) on [domains] worker domains (default 1; clamped to the
    shard count; the calling domain is one of the workers). Terminates
    via an exact global-quiescence ledger — no timeout heuristics.
    Per-shard clock semantics on exit mirror {!Sim.run}: an exhausted
    shard keeps its last event's time, a shard with pending work beyond
    [until] is clamped forward to [until]. [Sim.stop] from inside any
    event, or {!stop}, ends the whole parallel run. A worker exception
    aborts the run and is re-raised here. Not reentrant. *)

val stop : t -> unit
(** Make the current {!run} return at the next scheduling round. *)

val stopped : t -> bool
(** Whether the current/last run was stopped (or aborted). *)

(** {1 Introspection (tests, benches)} *)

val executed : t -> int -> int
(** Events + frames executed by shard [i] since creation. *)

val posted : t -> int -> int
(** Cross-shard frames posted by shard [i] since creation. *)
