(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic element of the simulation (packet loss, jitter, workload
    generation) draws from an explicit [Rng.t], so whole-grid simulations are
    reproducible from a single seed. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val stream : t -> int -> t
(** [stream t i] is the [i]-th keyed child of [t]'s current state; [t]
    does {e not} advance. A pure function of (state, [i]): any caller
    asking for the same index gets the same stream regardless of order —
    the basis for per-shard and per-port streams in the sharded engine. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** [exponential t ~mean] draws from Exp(1/mean). *)
