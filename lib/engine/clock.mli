(** Clock/Timer capability: the engine-level abstraction over {e which}
    notion of time a program runs on.

    Everything above the engine (processes, timer wheels, drivers,
    benchmarks) schedules work through a [Clock.t] value instead of calling
    {!Sim} directly. Two implementations exist:

    - the {e virtual} clock, {!Sim.clock}, backed by the discrete-event
      heap — deterministic, used for development and schedule exploration;
    - a {e monotonic} wall clock, provided by the Hostio reactor, backed by
      real elapsed time and OS timers — used for deployment runs.

    The capability is a record of closures, so neither implementation leaks
    its representation and the virtual path stays byte-identical: the
    virtual clock's [after] {e is} [Sim.after]. *)

type kind =
  | Virtual  (** Discrete-event simulated time ({!Sim}). *)
  | Monotonic  (** Real elapsed wall-clock time (Hostio loop). *)

type t

type timer
(** A cancellable pending timer (from {!arm}). *)

val make :
  kind:kind ->
  now:(unit -> int) ->
  schedule:(int -> (unit -> unit) -> unit) ->
  arm:(int -> (unit -> unit) -> (unit -> unit)) ->
  t
(** [make ~kind ~now ~schedule ~arm] builds a clock capability.
    [schedule dt f] runs [f] once after [dt] nanoseconds (fire-and-forget);
    [arm dt f] does the same but returns a cancel thunk. Each clock gets a
    process-unique {!id}. *)

val kind : t -> kind

val id : t -> int
(** Process-unique identity — lets registries (Timewheel, Hostio) key
    per-clock state without physical equality on closures. *)

val is_virtual : t -> bool

val now : t -> int
(** Current time in nanoseconds. Virtual: {!Sim.now}. Monotonic:
    nanoseconds since the owning loop started. *)

val after : t -> int -> (unit -> unit) -> unit
(** [after c dt f] runs [f] once, [dt] ns from now ([dt] clamped to 0).
    Not cancellable; on a wall clock the pending callback keeps the
    reactor alive until it fires, so prefer {!arm} for long deadlines
    that usually get cancelled. *)

val at : t -> int -> (unit -> unit) -> unit
(** [at c time f] is [after c (time - now c) f] — absolute-time
    convenience; past times fire immediately (clamped), they do not
    raise like {!Sim.at}. *)

val arm : t -> int -> (unit -> unit) -> timer
(** [arm c dt f] schedules [f] after [dt] ns and returns a handle;
    {!cancel} guarantees [f] never runs and, on a wall clock, releases
    the underlying OS timer so the reactor can quiesce. *)

val cancel : timer -> unit
(** Idempotent. *)
