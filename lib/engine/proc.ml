open Effect
open Effect.Deep

type _ Effect.t += Suspend : ((('a -> unit) -> unit)) -> 'a Effect.t

let log = Logs.Src.create "engine.proc" ~doc:"green threads"

module Log = (val Logs.src_log log : Logs.LOG)

type handle = {
  proc_name : string;
  mutable status : (unit, exn) result option;
  mutable joiners : (unit -> unit) list;
}

let done_ h = h.status <> None

let result h = h.status

let name h = h.proc_name

let suspend setup =
  try perform (Suspend setup)
  with Effect.Unhandled (Suspend _) ->
    invalid_arg
      "Proc.suspend: called outside a process — no Proc.spawn handler on \
       the stack; blocking operations (sleep, join, Mailbox.recv, …) must \
       run inside a spawned process"

let finish h st =
  h.status <- Some st;
  let joiners = h.joiners in
  h.joiners <- [];
  List.iter (fun k -> k ()) joiners

let spawn_on clk ?(name = "proc") f =
  let h = { proc_name = name; status = None; joiners = [] } in
  let handler =
    { retc = (fun () -> finish h (Ok ()));
      exnc =
        (fun e ->
           Log.err (fun m ->
               m "process %s died: %s" name (Printexc.to_string e));
           finish h (Error e));
      effc =
        (fun (type a) (eff : a Effect.t) ->
           match eff with
           | Suspend setup ->
             Some
               (fun (k : (a, _) continuation) ->
                  let resumed = ref false in
                  let resume v =
                    if !resumed then begin
                      let state =
                        match h.status with
                        | None -> "running"
                        | Some (Ok ()) -> "finished"
                        | Some (Error e) ->
                          "failed: " ^ Printexc.to_string e
                      in
                      invalid_arg
                        (Printf.sprintf
                           "Proc: continuation of process %S resumed twice \
                            (process state: %s)"
                           h.proc_name state)
                    end;
                    resumed := true;
                    continue k v
                  in
                  setup resume)
           | _ -> None);
    }
  in
  Clock.after clk 0 (fun () -> match_with f () handler);
  h

let spawn sim ?name f = spawn_on (Sim.clock sim) ?name f

let sleep_on clk dt =
  suspend (fun resume -> Clock.after clk dt (fun () -> resume ()))

let sleep sim dt = sleep_on (Sim.clock sim) dt

let yield_on clk = sleep_on clk 0

let yield sim = sleep sim 0

let join_on clk h =
  (match h.status with
   | Some _ -> ()
   | None ->
     suspend (fun resume ->
         h.joiners <- (fun () -> Clock.after clk 0 resume) :: h.joiners));
  match h.status with
  | Some (Ok ()) | None -> ()
  | Some (Error e) -> raise e

let join sim h = join_on (Sim.clock sim) h

module Ivar = struct
  type 'a t = {
    mutable value : 'a option;
    mutable waiters : ('a -> unit) list;
  }

  let create () = { value = None; waiters = [] }

  let fill t v =
    match t.value with
    | Some _ -> invalid_arg "Ivar.fill: already filled"
    | None ->
      t.value <- Some v;
      let ws = List.rev t.waiters in
      t.waiters <- [];
      List.iter (fun k -> k v) ws

  let is_filled t = t.value <> None

  let peek t = t.value

  let read t =
    match t.value with
    | Some v -> v
    | None -> suspend (fun resume -> t.waiters <- resume :: t.waiters)
end

module Mailbox = struct
  type 'a t = {
    items : 'a Queue.t;
    capacity : int;
    mutable peak : int;
    mutable readers : ('a -> unit) list;
    mutable writers : (unit -> unit) list;
  }

  let create ?(capacity = max_int) () =
    if capacity < 1 then invalid_arg "Mailbox.create: capacity < 1";
    { items = Queue.create (); capacity; peak = 0; readers = []; writers = [] }

  let enqueue t v =
    Queue.push v t.items;
    if Queue.length t.items > t.peak then t.peak <- Queue.length t.items

  let send t v =
    match t.readers with
    | [] ->
      if Queue.length t.items >= t.capacity then
        suspend (fun resume ->
            t.writers <- t.writers @ [ (fun () -> resume ()) ]);
      enqueue t v
    | k :: rest ->
      t.readers <- rest;
      k v

  let wake_writer t =
    match t.writers with
    | [] -> ()
    | k :: rest ->
      t.writers <- rest;
      k ()

  let recv t =
    if Queue.is_empty t.items then
      suspend (fun resume -> t.readers <- t.readers @ [ resume ])
    else begin
      let v = Queue.pop t.items in
      wake_writer t;
      v
    end

  let recv_opt t =
    if Queue.is_empty t.items then None
    else begin
      let v = Queue.pop t.items in
      wake_writer t;
      Some v
    end

  let length t = Queue.length t.items

  let peak t = t.peak

  let capacity t = t.capacity
end

module Semaphore = struct
  type t = {
    mutable count : int;
    mutable waiters : (unit -> unit) list;
  }

  let create count =
    assert (count >= 0);
    { count; waiters = [] }

  let acquire t =
    if t.count > 0 then t.count <- t.count - 1
    else suspend (fun resume -> t.waiters <- t.waiters @ [ resume ])

  let release t =
    match t.waiters with
    | [] -> t.count <- t.count + 1
    | k :: rest ->
      t.waiters <- rest;
      k ()

  let available t = t.count
end
