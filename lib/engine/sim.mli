(** Discrete-event simulator core: a virtual clock and an event queue.

    All times are integer {e nanoseconds} of virtual time. The simulator is
    single-threaded and deterministic: under the default {!Fifo} policy,
    events scheduled for the same instant fire in scheduling order. A
    non-default {!policy} permutes dispatch order {e within} a timestamp —
    never across timestamps — which is how Padico_check explores
    interleavings while keeping time semantics intact. *)

type policy =
  | Fifo  (** Same-instant events fire in scheduling order (default). *)
  | Lifo  (** Same-instant events fire newest-first. *)
  | Random of int
      (** Uniform choice among same-instant events, driven by a dedicated
          generator seeded with the payload — independent of the root
          {!Rng.t}, so exploration does not perturb modelled randomness. *)
  | Starve_oldest
      (** Always defers the oldest same-instant event while any other is
          ready — a pathological scheduler that starves whoever queued
          first. *)

val policy_to_string : policy -> string
(** ["fifo"], ["lifo"], ["random-<seed>"], ["starve"] — the format embedded
    in Padico_check replay tokens. *)

val policy_of_string : string -> policy option
(** Inverse of {!policy_to_string}. *)

type t

val create : ?seed:int -> unit -> t
(** [create ?seed ()] is a fresh simulator with its clock at 0 and the
    {!Fifo} policy. [seed] (default 42) seeds the root {!Rng.t}. *)

val now : t -> int
(** Current virtual time in nanoseconds. *)

val rng : t -> Rng.t
(** The simulator's root random generator. *)

val policy : t -> policy
(** The active schedule policy. *)

val set_policy : t -> policy -> unit
(** [set_policy t p] switches same-instant dispatch to [p]. Setting
    [Random seed] (re)creates the dedicated schedule generator, so setting
    the same policy twice replays the same choices. *)

val at : t -> int -> (unit -> unit) -> unit
(** [at t time f] schedules [f] to run at absolute virtual [time]. Scheduling
    in the past raises [Invalid_argument]. *)

val after : t -> int -> (unit -> unit) -> unit
(** [after t dt f] schedules [f] at [now t + dt]. [dt] is clamped to 0. *)

val pending : t -> int
(** Number of queued events. *)

val run : ?until:int -> t -> unit
(** [run t] dispatches events in time order until the queue is empty or the
    clock passes [until] (events strictly after [until] stay queued).

    Exit clock discipline (all exits are monotone — the clock never moves
    backward): on queue exhaustion the clock stays at the last dispatched
    event; when the next event lies beyond [until] the clock advances to
    [until] (but is never rewound below where a previous run left it); on
    {!stop} the clock freezes at the event that called it. *)

val step : t -> bool
(** [step t] dispatches one event — chosen by the active policy among the
    earliest-timestamp bucket; [false] if the queue was empty. *)

val stop : t -> unit
(** [stop t] makes the current [run] return after the ongoing event. The
    clock stays at that event's timestamp. *)

val stopped : t -> bool
(** Whether {!stop} has been called since the last {!run} /
    {!clear_stopped}. *)

val clear_stopped : t -> unit
(** Re-arm a stopped simulator. [run] does this implicitly on entry; the
    sharded runtime (which drives {!step} directly) calls it explicitly. *)

(** {1 Sharded-runtime hooks}

    Used by {!Shard} workers, which drive a simulator manually instead of
    through {!run}: peek the next local timestamp, merge against staged
    cross-shard frames, and either {!step} or force-advance the clock to a
    frame's timestamp before running its closure. *)

val peek_next : t -> int option
(** Timestamp of the earliest queued event, if any. *)

val advance_to : t -> int -> unit
(** [advance_to t time] sets the clock to [time]. Raises
    [Invalid_argument] when [time] is in the past — the conservative
    synchronization protocol guarantees a shard never needs to. *)

val clock : t -> Clock.t
(** The simulator's virtual {!Clock.t} capability — cached, so repeated
    calls return the {e same} clock (same {!Clock.id}). Its [after] is
    exactly {!after}: code scheduling through the capability behaves
    byte-identically to code calling the simulator directly. *)
