type kind = Virtual | Monotonic

type t = {
  kind : kind;
  id : int;
  now : unit -> int;
  schedule : int -> (unit -> unit) -> unit;
  arm_ : int -> (unit -> unit) -> (unit -> unit);
}

type timer = { mutable cancel_ : (unit -> unit) option }

(* Atomic: clock capabilities are normally built at setup time, but a
   lazily-forced module may create one from a worker domain. *)
let next_id = Atomic.make 0

let make ~kind ~now ~schedule ~arm =
  { kind; id = Atomic.fetch_and_add next_id 1 + 1; now; schedule; arm_ = arm }

let kind t = t.kind
let id t = t.id
let is_virtual t = t.kind = Virtual
let now t = t.now ()
let after t dt f = t.schedule dt f
let at t time f = t.schedule (time - t.now ()) f
let arm t dt f = { cancel_ = Some (t.arm_ dt f) }

let cancel h =
  match h.cancel_ with
  | None -> ()
  | Some c ->
    h.cancel_ <- None;
    c ()
