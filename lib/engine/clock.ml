type kind = Virtual | Monotonic

type t = {
  kind : kind;
  id : int;
  now : unit -> int;
  schedule : int -> (unit -> unit) -> unit;
  arm_ : int -> (unit -> unit) -> (unit -> unit);
}

type timer = { mutable cancel_ : (unit -> unit) option }

let next_id = ref 0

let make ~kind ~now ~schedule ~arm =
  incr next_id;
  { kind; id = !next_id; now; schedule; arm_ = arm }

let kind t = t.kind
let id t = t.id
let is_virtual t = t.kind = Virtual
let now t = t.now ()
let after t dt f = t.schedule dt f
let at t time f = t.schedule (time - t.now ()) f
let arm t dt f = { cancel_ = Some (t.arm_ dt f) }

let cancel h =
  match h.cancel_ with
  | None -> ()
  | Some c ->
    h.cancel_ <- None;
    c ()
