(** Array-based binary min-heap with integer priorities.

    Used as the event queue of the simulator: priorities are virtual times in
    nanoseconds, and entries with equal priority are dequeued in insertion
    order (FIFO), which keeps simulations deterministic. *)

type 'a t

val create : unit -> 'a t
(** [create ()] is an empty heap. *)

val length : 'a t -> int
(** [length h] is the number of queued entries. *)

val is_empty : 'a t -> bool

val push : 'a t -> prio:int -> 'a -> unit
(** [push h ~prio v] inserts [v] with priority [prio]. *)

val pop : 'a t -> (int * 'a) option
(** [pop h] removes and returns the entry with the smallest priority,
    breaking ties by insertion order. *)

val peek_prio : 'a t -> int option
(** [peek_prio h] is the smallest priority without removing its entry. *)

val min_count : 'a t -> int
(** [min_count h] is the number of entries sharing the smallest priority
    (the same-instant bucket); [0] when empty. O(n) scan — used only by
    non-FIFO schedule policies, never on the default path. *)

val pop_min_nth : 'a t -> int -> (int * 'a) option
(** [pop_min_nth h n] removes and returns the [n]-th entry — 0-based, in
    insertion order — of the smallest-priority bucket. [n] is clamped to
    the bucket, so [pop_min_nth h 0] behaves like {!pop}. O(n). *)

val clear : 'a t -> unit
