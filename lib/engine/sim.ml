type policy =
  | Fifo
  | Lifo
  | Random of int
  | Starve_oldest

let policy_to_string = function
  | Fifo -> "fifo"
  | Lifo -> "lifo"
  | Random seed -> Printf.sprintf "random-%d" seed
  | Starve_oldest -> "starve"

let policy_of_string s =
  match s with
  | "fifo" -> Some Fifo
  | "lifo" -> Some Lifo
  | "starve" -> Some Starve_oldest
  | _ ->
    (match String.index_opt s '-' with
     | Some i when String.sub s 0 i = "random" ->
       (try
          Some (Random (int_of_string (String.sub s (i + 1)
                                         (String.length s - i - 1))))
        with Failure _ -> None)
     | _ -> None)

type t = {
  mutable clock : int;
  events : (unit -> unit) Heap.t;
  root_rng : Rng.t;
  mutable stopped : bool;
  mutable policy : policy;
  mutable sched_rng : Rng.t; (* consulted only under [Random] *)
  mutable cap : Clock.t option; (* cached capability view, built on demand *)
}

(* Every live simulator, so [Lifecycle.reset_registries] (= [Padico.reset])
   can drop undelivered events along with the uid-keyed registries: a
   bench process sweeping many scenarios would otherwise keep every dead
   grid's event closures (and whatever grid state they capture) reachable
   through abandoned heaps. The list itself is dropped on reset, so the
   sims become collectable too. *)
let live : t list ref = ref []

let () =
  Lifecycle.on_reset (fun () ->
      List.iter (fun t -> Heap.clear t.events) !live;
      live := [])

let create ?(seed = 42) () =
  let t =
    { clock = 0; events = Heap.create (); root_rng = Rng.create seed;
      stopped = false; policy = Fifo; sched_rng = Rng.create 0; cap = None }
  in
  live := t :: !live;
  t

let now t = t.clock

let rng t = t.root_rng

let policy t = t.policy

let set_policy t p =
  t.policy <- p;
  match p with Random seed -> t.sched_rng <- Rng.create seed | _ -> ()

let at t time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.at: time %d is in the past (now %d)" time t.clock);
  Heap.push t.events ~prio:time f

let after t dt f =
  let dt = if dt < 0 then 0 else dt in
  Heap.push t.events ~prio:(t.clock + dt) f

let pending t = Heap.length t.events

let pick_index t n =
  match t.policy with
  | Fifo -> 0
  | Lifo -> n - 1
  | Random _ -> Rng.int t.sched_rng n
  | Starve_oldest -> if n > 1 then 1 else 0

let step t =
  match t.policy with
  | Fifo ->
    (* Default path, byte-identical to the pre-policy simulator. *)
    (match Heap.pop t.events with
     | None -> false
     | Some (time, f) ->
       t.clock <- time;
       f ();
       true)
  | _ ->
    let n = Heap.min_count t.events in
    if n = 0 then false
    else begin
      match Heap.pop_min_nth t.events (pick_index t n) with
      | None -> false
      | Some (time, f) ->
        t.clock <- time;
        f ();
        true
    end

let run ?until t =
  t.stopped <- false;
  let continue = ref true in
  while !continue do
    if t.stopped then continue := false
    else
      match Heap.peek_prio t.events with
      | None -> continue := false
      | Some time ->
        (match until with
         | Some u when time > u ->
           (* Advance (never rewind) to the horizon. The guard matters when
              a previous run was stopped beyond [u]: the old unconditional
              assignment dragged the clock backward, so a later [at] could
              legally schedule into what had already been the past. Both
              exits now agree the clock is monotone: [stop] freezes it at
              the last dispatched event, this branch clamps it forward. *)
           if u > t.clock then t.clock <- u;
           continue := false
         | _ -> ignore (step t))
  done

let stop t = t.stopped <- true

let stopped t = t.stopped

let clear_stopped t = t.stopped <- false

(* ---------- sharded-runtime hooks (see Shard) ----------
   A shard worker drives its simulator manually instead of through [run]:
   it peeks the next local timestamp, merges it against staged cross-shard
   frames, and either [step]s or force-advances the clock to a frame's
   timestamp before running the frame's closure. *)

let peek_next t = Heap.peek_prio t.events

let advance_to t time =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.advance_to: time %d is in the past (now %d)" time
         t.clock);
  t.clock <- time

let clock t =
  match t.cap with
  | Some c -> c
  | None ->
    let c =
      Clock.make ~kind:Clock.Virtual
        ~now:(fun () -> t.clock)
        ~schedule:(fun dt f -> after t dt f)
        ~arm:(fun dt f ->
          let dead = ref false in
          after t dt (fun () -> if not !dead then f ());
          fun () -> dead := true)
    in
    t.cap <- Some c;
    c
