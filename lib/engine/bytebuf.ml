type t = { data : bytes; off : int; len : int }

(* Atomic: copies happen on every shard of a parallel run and the E8
   ablation wants an exact total. *)
let copied = Atomic.make 0

let copies_performed () = Atomic.get copied

let reset_copy_counter () = Atomic.set copied 0

let create len = { data = Bytes.make len '\000'; off = 0; len }

let of_bytes data = { data; off = 0; len = Bytes.length data }

let of_string s = of_bytes (Bytes.of_string s)

let to_string b = Bytes.sub_string b.data b.off b.len

let length b = b.len

let is_empty b = b.len = 0

let sub b off len =
  if off < 0 || len < 0 || off + len > b.len then
    invalid_arg
      (Printf.sprintf "Bytebuf.sub: off=%d len=%d in buffer of %d" off len
         b.len);
  { data = b.data; off = b.off + off; len }

let split b n = (sub b 0 n, sub b n (b.len - n))

let blit_dma ~src ~src_off ~dst ~dst_off ~len =
  if src_off < 0 || len < 0 || src_off + len > src.len then
    invalid_arg "Bytebuf.blit: source out of bounds";
  if dst_off < 0 || dst_off + len > dst.len then
    invalid_arg "Bytebuf.blit: destination out of bounds";
  Bytes.blit src.data (src.off + src_off) dst.data (dst.off + dst_off) len

let blit ~src ~src_off ~dst ~dst_off ~len =
  blit_dma ~src ~src_off ~dst ~dst_off ~len;
  ignore (Atomic.fetch_and_add copied len)

let concat parts =
  let total = List.fold_left (fun acc p -> acc + p.len) 0 parts in
  let out = create total in
  let pos = ref 0 in
  List.iter
    (fun p ->
       blit ~src:p ~src_off:0 ~dst:out ~dst_off:!pos ~len:p.len;
       pos := !pos + p.len)
    parts;
  out

let copy b =
  let out = create b.len in
  blit ~src:b ~src_off:0 ~dst:out ~dst_off:0 ~len:b.len;
  out

let fill_pattern b ~seed =
  for i = 0 to b.len - 1 do
    Bytes.unsafe_set b.data (b.off + i)
      (Char.chr ((seed + (i * 31)) land 0xff))
  done

let fill_zero b = Bytes.fill b.data b.off b.len '\000'

let fill_random b rng =
  for i = 0 to b.len - 1 do
    Bytes.unsafe_set b.data (b.off + i) (Char.chr (Rng.int rng 256))
  done

let equal a b =
  a.len = b.len
  &&
  let rec go i =
    i >= a.len
    || (Bytes.get a.data (a.off + i) = Bytes.get b.data (b.off + i)
        && go (i + 1))
  in
  go 0

let checksum b =
  let h = ref 0x3bf29ce484222325 in
  for i = 0 to b.len - 1 do
    h := (!h lxor Char.code (Bytes.get b.data (b.off + i))) * 0x100000001b3
  done;
  !h land max_int

module Pool = struct
  let slab = 64

  (* The pool is process-global and reachable from every shard of a
     parallel run (edge-mode send rings, MadIO aggregation headers), so
     its free lists are mutex-guarded. Uncontended lock cost is noise
     next to the per-connection / per-message work the pool amortises. *)
  let lock = Mutex.create ()

  let free : bytes list ref = ref []
  let hits = ref 0
  let misses = ref 0

  let alloc n =
    if n < 0 then invalid_arg "Bytebuf.Pool.alloc: negative length";
    if n > slab then begin
      Mutex.protect lock (fun () -> incr misses);
      { data = Bytes.create n; off = 0; len = n }
    end
    else
      match
        Mutex.protect lock (fun () ->
            match !free with
            | data :: rest ->
              free := rest;
              incr hits;
              Some data
            | [] ->
              incr misses;
              None)
      with
      | Some data -> { data; off = 0; len = n }
      | None -> { data = Bytes.create slab; off = 0; len = n }

  let release b =
    (* Only slabs we handed out come back: anything resized, sliced or
       foreign is simply dropped for the GC. *)
    if b.off = 0 && Bytes.length b.data = slab then
      Mutex.protect lock (fun () -> free := b.data :: !free)

  let pool_hits () = Mutex.protect lock (fun () -> !hits)
  let pool_misses () = Mutex.protect lock (fun () -> !misses)
  let pooled () = Mutex.protect lock (fun () -> List.length !free)

  (* Size-classed slabs for long-lived per-connection buffers (TCP send
     rings are the motivating user: one ring per connection, released and
     reused across the connect/disconnect churn of an edge gateway). The
     class key is the exact byte length: connection buffers come in a
     handful of configured sizes, so the table stays tiny. *)
  let sized : (int, bytes list) Hashtbl.t = Hashtbl.create 8

  let sized_hits_c = ref 0
  let sized_misses_c = ref 0
  let sized_parked = ref 0 (* bytes sitting in the sized free lists *)

  let alloc_bytes n =
    if n <= 0 then invalid_arg "Bytebuf.Pool.alloc_bytes: non-positive length";
    match
      Mutex.protect lock (fun () ->
          match Hashtbl.find_opt sized n with
          | Some (b :: rest) ->
            Hashtbl.replace sized n rest;
            incr sized_hits_c;
            sized_parked := !sized_parked - n;
            Some b
          | Some [] | None ->
            incr sized_misses_c;
            None)
    with
    | Some b -> b
    | None -> Bytes.create n

  let release_bytes b =
    let n = Bytes.length b in
    if n > 0 then
      Mutex.protect lock (fun () ->
          let cur =
            match Hashtbl.find_opt sized n with Some l -> l | None -> []
          in
          Hashtbl.replace sized n (b :: cur);
          sized_parked := !sized_parked + n)

  let sized_hits () = Mutex.protect lock (fun () -> !sized_hits_c)
  let sized_misses () = Mutex.protect lock (fun () -> !sized_misses_c)
  let sized_parked_bytes () = Mutex.protect lock (fun () -> !sized_parked)

  let reset () =
    Mutex.protect lock (fun () ->
        free := [];
        hits := 0;
        misses := 0;
        Hashtbl.reset sized;
        sized_hits_c := 0;
        sized_misses_c := 0;
        sized_parked := 0)
end

let get b i =
  if i < 0 || i >= b.len then invalid_arg "Bytebuf.get";
  Bytes.get b.data (b.off + i)

let set b i c =
  if i < 0 || i >= b.len then invalid_arg "Bytebuf.set";
  Bytes.set b.data (b.off + i) c

let get_u8 b i = Char.code (get b i)

let set_u8 b i v = set b i (Char.chr (v land 0xff))

let get_u16 b i = get_u8 b i lor (get_u8 b (i + 1) lsl 8)

let set_u16 b i v =
  set_u8 b i (v land 0xff);
  set_u8 b (i + 1) ((v lsr 8) land 0xff)

let get_u32 b i = get_u16 b i lor (get_u16 b (i + 2) lsl 16)

let set_u32 b i v =
  set_u16 b i (v land 0xffff);
  set_u16 b (i + 2) ((v lsr 16) land 0xffff)

let get_i64 b i =
  let lo = Int64.of_int (get_u32 b i) in
  let hi = Int64.of_int (get_u32 b (i + 4)) in
  Int64.logor lo (Int64.shift_left hi 32)

let set_i64 b i v =
  set_u32 b i (Int64.to_int (Int64.logand v 0xffffffffL));
  set_u32 b (i + 4) (Int64.to_int (Int64.shift_right_logical v 32))
