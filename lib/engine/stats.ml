(* Counters are atomic: most are owned by one node (hence one shard),
   but group-level aggregates (e.g. a collective's WAN message count)
   are bumped from several shards of a parallel run, and their totals
   must stay exact. Single-domain behavior is unchanged. *)
module Counter = struct
  type t = { name : string; value : int Atomic.t }

  let create name = { name; value = Atomic.make 0 }
  let incr t = Atomic.incr t.value
  let add t n = ignore (Atomic.fetch_and_add t.value n)
  let value t = Atomic.get t.value
  let name t = t.name
  let reset t = Atomic.set t.value 0
end

module Summary = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; min_v = infinity; max_v = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x

  let n t = t.n
  let mean t = t.mean

  let stddev t =
    if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))

  let min t = t.min_v
  let max t = t.max_v
end

module Histogram = struct
  (* Bucket i holds samples whose value's bit-width is i, i.e. in
     [2^(i-1), 2^i). *)
  type t = { buckets : int array; mutable total : int }

  let nbuckets = 63

  let create () = { buckets = Array.make nbuckets 0; total = 0 }

  let bucket_of v =
    let v = if v < 0 then 0 else v in
    let rec width acc v = if v = 0 then acc else width (acc + 1) (v lsr 1) in
    Stdlib.min (nbuckets - 1) (width 0 v)

  let add t v =
    let b = bucket_of v in
    t.buckets.(b) <- t.buckets.(b) + 1;
    t.total <- t.total + 1

  let count t = t.total

  let percentile t q =
    if t.total = 0 then 0
    else begin
      let target = int_of_float (ceil (q *. float_of_int t.total)) in
      let target = if target < 1 then 1 else target in
      let acc = ref 0 in
      let result = ref 0 in
      (try
         for i = 0 to nbuckets - 1 do
           acc := !acc + t.buckets.(i);
           if !acc >= target then begin
             result := (1 lsl i) - 1;
             raise Exit
           end
         done
       with Exit -> ());
      !result
    end

  let pp fmt t =
    Format.fprintf fmt "@[<v>";
    for i = 0 to nbuckets - 1 do
      if t.buckets.(i) > 0 then
        Format.fprintf fmt "[<%d] %d@," (1 lsl i) t.buckets.(i)
    done;
    Format.fprintf fmt "@]"
end

let bandwidth_mb_s ~bytes_transferred ~elapsed_ns =
  if elapsed_ns <= 0 then 0.0
  else float_of_int bytes_transferred /. (float_of_int elapsed_ns /. 1e9) /. 1e6
