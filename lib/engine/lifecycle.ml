(* Process-lifecycle hooks for module-level registries.

   Most layers keep a module-level table mapping node/clock uids to
   per-grid state (TCP stacks, NetAccess dispatchers, VLink adapter
   instances, ...). Grids are never reused across scenarios, but those
   tables keep every grid ever built reachable, so a process that runs
   many scenarios back to back (the bench runner, the conformance kit,
   a 100k-connection capacity sweep) drags the full history of dead
   grids through every GC cycle. Each registry-owning module installs
   an [on_reset] hook at init; [reset_registries] drops them all at
   once between scenarios.

   Domain-safety: hooks are normally installed from module initialisers
   (single-threaded), but a sharded run may lazily force a module's
   first use from a worker domain, so the list itself is guarded. Reset
   must still only run between scenarios, never during one. *)

let mutex = Mutex.create ()

let resets : (unit -> unit) list ref = ref []

let on_reset f =
  Mutex.lock mutex;
  resets := f :: !resets;
  Mutex.unlock mutex

let reset_registries () =
  let hooks = Mutex.protect mutex (fun () -> !resets) in
  List.iter (fun f -> f ()) hooks
