(* Process-lifecycle hooks for module-level registries.

   Most layers keep a module-level table mapping node/clock uids to
   per-grid state (TCP stacks, NetAccess dispatchers, VLink adapter
   instances, ...). Grids are never reused across scenarios, but those
   tables keep every grid ever built reachable, so a process that runs
   many scenarios back to back (the bench runner, the conformance kit,
   a 100k-connection capacity sweep) drags the full history of dead
   grids through every GC cycle. Each registry-owning module installs
   an [on_reset] hook at init; [reset_registries] drops them all at
   once between scenarios. *)

let resets : (unit -> unit) list ref = ref []

let on_reset f = resets := f :: !resets

let reset_registries () = List.iter (fun f -> f ()) !resets
