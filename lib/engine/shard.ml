(* Conservative parallel discrete-event runtime over topology shards.

   Each shard owns one [Sim.t] heap and is driven by a worker domain
   (several shards may share a domain round-robin). Cross-shard
   interaction happens exclusively through timestamped frames posted
   into bounded SPSC rings, one per (src, dst) shard pair. Safety is
   classic null-message / lower-bound-timestamp (LBTS) synchronization:

   - every shard publishes a monotone lower bound [lb] on the timestamp
     of any frame it will post in the future;
   - a frame posted on channel (j, i) always satisfies
     [ts >= lb_j + lookahead(j, i)], where the lookahead is the minimum
     link latency between the two shards (positive by construction);
   - shard [i] may execute an item at time [t] iff
     [t < min_j (lb_j + lookahead(j, i))] — its {e horizon}. The bounds
     are snapshotted {e before} draining the rings, so every frame below
     the horizon is guaranteed to have been staged already.

   The shard holding the globally minimal next timestamp always clears
   its own horizon (lookaheads are strictly positive), so the protocol
   is deadlock-free without explicit null-message circulation: published
   bounds are the null messages, exchanged through shared memory.

   Determinism: shard count and partition come from the topology, never
   from the worker count, and every merge is by the canonical key
   (timestamp, source shard, channel push order), with staged frames
   winning timestamp ties against local events. A run over S shards is
   therefore byte-identical whether 1 or N domains execute it. *)

type frame = { f_ts : int; f_run : unit -> unit }

(* Bounded SPSC ring with a producer-side overflow list. The producer
   never blocks on a full ring (its domain may be the one that is
   supposed to drain the peer, so spinning could self-deadlock); it
   parks the frame in [overflow] and caps its published lower bound so
   the consumer cannot outrun the parked frame. [stage] is the
   consumer-side holding heap: ring arrival order is push order, so
   (prio = ts, heap FIFO seq) realises the canonical per-channel merge
   key even when jitter makes timestamps non-monotone in push order. *)
type channel = {
  ring : frame option array;
  head : int Atomic.t; (* consumer cursor *)
  tail : int Atomic.t; (* producer cursor *)
  mutable overflow : frame list; (* producer-owned, newest first *)
  stage : frame Heap.t; (* consumer-owned *)
  look : int; (* min frame delay on this channel; max_int = unreachable *)
}

type shard = {
  idx : int;
  sim : Sim.t;
  inbox : channel array; (* inbox.(j): frames j -> idx *)
  outbox : channel array; (* outbox.(j): frames idx -> j *)
  lb : int Atomic.t; (* published send floor, monotone *)
  mutable last_pub : int;
  mutable ocap : int; (* lb cap from parked overflow frames *)
  mutable was_active : bool; (* counted in [work]? owner-only *)
  exec_count : int Atomic.t; (* events + frames executed (stats) *)
  post_count : int Atomic.t; (* frames posted (stats) *)
}

type t = {
  n : int;
  shards : shard array;
  chans : channel array array; (* chans.(src).(dst) *)
  (* Exact quiescence ledger: number of shards with executable work plus
     frames posted but not yet drained. Every transition increments
     before it decrements, so [work] over-counts transiently but reaches
     0 only at true global quiescence — and 0 is stable, giving a
     race-free termination test from any worker. *)
  work : int Atomic.t;
  stop_flag : bool Atomic.t;
  finished : bool Atomic.t;
  failure : exn option Atomic.t; (* first worker exception, re-raised *)
  mutable running : bool;
}

let default_ring = 4096

let sat_add a b = if a >= max_int - b then max_int else a + b

let create ?(ring_capacity = default_ring) ~lookahead sims =
  let n = Array.length sims in
  if n = 0 then invalid_arg "Shard.create: no shards";
  if Array.length lookahead <> n
     || Array.exists (fun row -> Array.length row <> n) lookahead
  then invalid_arg "Shard.create: lookahead matrix is not n x n";
  let cap =
    let rec pow2 c = if c >= ring_capacity then c else pow2 (c * 2) in
    pow2 64
  in
  Array.iteri
    (fun i row ->
       Array.iteri
         (fun j l ->
            if i <> j && l <= 0 then
              invalid_arg
                (Printf.sprintf
                   "Shard.create: lookahead %d -> %d is %d; conservative \
                    synchronization needs strictly positive cross-shard \
                    latency"
                   i j l))
         row)
    lookahead;
  let chans =
    Array.init n (fun src ->
        Array.init n (fun dst ->
            { ring = Array.make cap None; head = Atomic.make 0;
              tail = Atomic.make 0; overflow = []; stage = Heap.create ();
              look = (if src = dst then max_int else lookahead.(src).(dst)) }))
  in
  let shards =
    Array.init n (fun i ->
        { idx = i; sim = sims.(i);
          inbox = Array.init n (fun j -> chans.(j).(i));
          outbox = Array.init n (fun j -> chans.(i).(j));
          lb = Atomic.make 0; last_pub = 0; ocap = max_int;
          was_active = false; exec_count = Atomic.make 0;
          post_count = Atomic.make 0 })
  in
  { n; shards; chans; work = Atomic.make 0; stop_flag = Atomic.make false;
    finished = Atomic.make false; failure = Atomic.make None; running = false }

let shard_count t = t.n

let sim t i = t.shards.(i).sim

let executed t i = Atomic.get t.shards.(i).exec_count

let posted t i = Atomic.get t.shards.(i).post_count

let mask c = Array.length c.ring - 1

let try_push c fr =
  let tail = Atomic.get c.tail in
  let head = Atomic.get c.head in
  if tail - head >= Array.length c.ring then false
  else begin
    c.ring.(tail land mask c) <- Some fr;
    (* The atomic store publishes the slot write (release). *)
    Atomic.set c.tail (tail + 1);
    true
  end

let post t ~src ~dst ~ts f =
  if src = dst then Sim.at t.shards.(src).sim ts f
  else begin
    let sh = t.shards.(src) in
    let c = sh.outbox.(dst) in
    if c.look = max_int then
      invalid_arg
        (Printf.sprintf "Shard.post: no channel %d -> %d (lookahead absent)"
           src dst);
    (* In-flight accounting before the frame becomes visible, so [work]
       never dips through 0 while the frame exists. *)
    Atomic.incr t.work;
    Atomic.incr sh.post_count;
    let fr = { f_ts = ts; f_run = f } in
    if not (try_push c fr) then begin
      c.overflow <- fr :: c.overflow;
      (* The consumer cannot see parked frames: cap our published bound
         so its horizon stays below them until they reach the ring.
         [ts - look >= posting time >= current lb], so the cap never
         moves the published bound backward. *)
      let capv = fr.f_ts - c.look in
      if capv < sh.ocap then sh.ocap <- capv
    end
  end

(* Producer-side: move parked frames into the ring, oldest first, and
   lift the lb cap once everything is visible again. *)
let flush_overflow sh =
  let parked = ref false in
  Array.iter
    (fun c ->
       match c.overflow with
       | [] -> ()
       | frames ->
         let rec push_all = function
           | [] -> []
           | fr :: rest as l ->
             if try_push c fr then push_all rest else l
         in
         c.overflow <- List.rev (push_all (List.rev frames));
         if c.overflow <> [] then parked := true)
    sh.outbox;
  if not !parked then sh.ocap <- max_int

let publish_lb sh v =
  let v = if sh.ocap < v then sh.ocap else v in
  if v <> sh.last_pub then begin
    sh.last_pub <- v;
    Atomic.set sh.lb v
  end

(* Consumer-side: move every visible frame of [c] into its stage heap.
   Returns the number of frames drained. Only the owning worker touches
   [head] and [stage]. *)
let drain_channel t c =
  let tail = Atomic.get c.tail in
  let head = Atomic.get c.head in
  let n = tail - head in
  if n > 0 then begin
    for k = head to tail - 1 do
      let slot = k land mask c in
      (match c.ring.(slot) with
       | Some fr ->
         c.ring.(slot) <- None;
         Heap.push c.stage ~prio:fr.f_ts fr
       | None -> assert false)
    done;
    Atomic.set c.head tail;
    (* Frames left flight; they are now covered by the consumer's active
       state (the caller pre-marked itself active before draining). *)
    ignore (Atomic.fetch_and_add t.work (-n))
  end;
  n

(* Smallest staged frame across the inbox, canonical (ts, src) order:
   strict [<] over ascending source index realises the src tie-break. *)
let min_staged sh =
  let ts = ref max_int and ch = ref (-1) in
  Array.iteri
    (fun j c ->
       if j <> sh.idx then
         match Heap.peek_prio c.stage with
         | Some p when p < !ts ->
           ts := p;
           ch := j
         | _ -> ())
    sh.inbox;
  (!ts, !ch)

(* One scheduling round for [sh]: flush parked frames, snapshot the
   horizon, drain the inbox, then execute every item strictly below the
   horizon (and within [until]) in canonical merge order. Returns true
   when the round made progress (drained or executed something). *)
let round t sh ~until =
  let progress = ref false in
  flush_overflow sh;
  (* Pre-mark active when frames are visible, before their in-flight
     counts drop in [drain_channel] — keeps [work] from dipping to 0
     while the frames are being moved to the stage. *)
  let inbound =
    Array.exists
      (fun c ->
         c.look <> max_int && Atomic.get c.tail - Atomic.get c.head > 0)
      sh.inbox
  in
  if inbound && not sh.was_active then begin
    sh.was_active <- true;
    Atomic.incr t.work
  end;
  (* Snapshot bounds FIRST, then drain: any frame posted before our lb
     reads is visible to the drain; any frame posted after satisfies
     ts >= read lb + lookahead >= horizon. *)
  let horizon = ref max_int in
  Array.iteri
    (fun j c ->
       if j <> sh.idx && c.look <> max_int then begin
         let b = sat_add (Atomic.get t.shards.(j).lb) c.look in
         if b < !horizon then horizon := b
       end)
    sh.inbox;
  Array.iteri
    (fun j c ->
       if j <> sh.idx && c.look <> max_int then
         if drain_channel t c > 0 then progress := true)
    sh.inbox;
  let executed = ref 0 in
  let continue = ref true in
  while !continue do
    let f_ts, f_ch = min_staged sh in
    let l_ts =
      match Sim.peek_next sh.sim with Some p -> p | None -> max_int
    in
    let cand = if f_ts < l_ts then f_ts else l_ts in
    if cand = max_int || cand > until || cand >= !horizon then
      continue := false
    else begin
      (* Publish before executing: anything this item posts is stamped
         >= cand + lookahead, so [cand] is a valid send floor while the
         batch runs at this timestamp. *)
      publish_lb sh cand;
      (* Frames win timestamp ties against local events: a staged frame
         at t exists in every execution of this topology, so the rule is
         canonical across worker counts. *)
      if f_ts <= l_ts then begin
        match Heap.pop sh.inbox.(f_ch).stage with
        | Some (ts, fr) ->
          Sim.advance_to sh.sim ts;
          fr.f_run ()
        | None -> assert false
      end
      else ignore (Sim.step sh.sim);
      incr executed;
      if Sim.stopped sh.sim then begin
        (* Sim.stop from inside a sharded run stops the whole parallel
           run, mirroring the classic single-heap semantics. *)
        Atomic.set t.stop_flag true;
        continue := false
      end
    end
  done;
  if !executed > 0 then begin
    progress := true;
    Atomic.fetch_and_add sh.exec_count !executed |> ignore
  end;
  (* Post-batch bound: the next candidate if executable, else the
     horizon (we may yet execute a frame arriving exactly there; any
     send it produces clears the horizon by one lookahead). *)
  let f_ts, _ = min_staged sh in
  let l_ts = match Sim.peek_next sh.sim with Some p -> p | None -> max_int in
  let cand = if f_ts < l_ts then f_ts else l_ts in
  let eff = if cand > until then max_int else cand in
  publish_lb sh (if eff < !horizon then eff else !horizon);
  (* Activity ledger: executable work pending <-> counted in [work]. *)
  let still_active = eff <> max_int in
  if sh.was_active && not still_active then begin
    sh.was_active <- false;
    Atomic.decr t.work
  end
  else if (not sh.was_active) && still_active then begin
    sh.was_active <- true;
    Atomic.incr t.work
  end;
  !progress

let worker t ~until ids =
  try
    let idle = ref 0 in
    while
      (not (Atomic.get t.finished))
      && (not (Atomic.get t.stop_flag))
      && Atomic.get t.failure = None
    do
      let progress = ref false in
      List.iter
        (fun i -> if round t t.shards.(i) ~until then progress := true)
        ids;
      if !progress then idle := 0
      else begin
        incr idle;
        if Atomic.get t.work = 0 then Atomic.set t.finished true
        else if !idle < 32 then Domain.cpu_relax ()
        else
          (* Oversubscribed (more domains than cores) or genuinely
             blocked: hand the core to whoever holds the work. *)
          Thread.yield ()
      end
    done
  with e ->
    ignore (Atomic.compare_and_set t.failure None (Some e));
    Atomic.set t.stop_flag true

let run ?(domains = 1) ?until t =
  if domains < 1 then invalid_arg "Shard.run: domains < 1";
  if t.running then invalid_arg "Shard.run: already running";
  t.running <- true;
  let until_v = match until with Some u -> u | None -> max_int in
  Atomic.set t.finished false;
  Atomic.set t.stop_flag false;
  Atomic.set t.failure None;
  (* Single-threaded prologue: rebuild the quiescence ledger (a previous
     bounded run may have left staged frames and parked overflow), reset
     stop latches and seed the published bounds. *)
  let work = ref 0 in
  Array.iter
    (fun sh ->
       Sim.clear_stopped sh.sim;
       (* Force the clock capability now so the global Clock id counter
          is never touched from a worker domain. *)
       ignore (Sim.clock sh.sim);
       let f_ts, _ = min_staged sh in
       let l_ts =
         match Sim.peek_next sh.sim with Some p -> p | None -> max_int
       in
       let cand = if f_ts < l_ts then f_ts else l_ts in
       sh.was_active <- cand <= until_v;
       if sh.was_active then incr work;
       Array.iteri
         (fun j c ->
            if j <> sh.idx then
              work :=
                !work + (Atomic.get c.tail - Atomic.get c.head)
                + List.length c.overflow)
         sh.outbox)
    t.shards;
  Atomic.set t.work !work;
  if !work = 0 then Atomic.set t.finished true;
  let nworkers = if domains > t.n then t.n else domains in
  let assignment =
    Array.init nworkers (fun w ->
        List.filter (fun i -> i mod nworkers = w) (List.init t.n Fun.id))
  in
  let others =
    Array.init (nworkers - 1) (fun w ->
        Domain.spawn (fun () -> worker t ~until:until_v assignment.(w + 1)))
  in
  worker t ~until:until_v assignment.(0);
  Array.iter Domain.join others;
  (* Epilogue, single-threaded again: classic [run ~until] clock
     semantics per shard — pending work beyond the horizon clamps the
     clock forward to [until]; an exhausted shard keeps the clock of its
     last event. *)
  (match until with
   | None -> ()
   | Some u ->
     if not (Atomic.get t.stop_flag) then
       Array.iter
         (fun sh ->
            let f_ts, _ = min_staged sh in
            let has_pending = f_ts <> max_int || Sim.pending sh.sim > 0 in
            if has_pending && Sim.now sh.sim < u then Sim.advance_to sh.sim u)
         t.shards);
  t.running <- false;
  match Atomic.get t.failure with None -> () | Some e -> raise e

let stop t = Atomic.set t.stop_flag true

let stopped t = Atomic.get t.stop_flag
