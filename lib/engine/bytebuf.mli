(** Byte-buffer slices and scatter/gather vectors.

    Payloads travel through the stack as [Bytebuf.t] slices so that layers
    can prepend headers or split segments without copying; the copy-strategy
    of each middleware (a central theme of the paper's evaluation) is then an
    explicit, observable choice. [copies] counts every byte materially
    copied through {!blit}-based operations, which the benchmarks use to
    verify zero-copy claims. *)

type t = private { data : bytes; off : int; len : int }

val create : int -> t
(** A fresh zero-filled buffer of the given length. *)

val of_bytes : bytes -> t
val of_string : string -> t
val to_string : t -> string

val length : t -> int
val is_empty : t -> bool

val sub : t -> int -> int -> t
(** [sub b off len] is a no-copy sub-slice. Bounds-checked. *)

val split : t -> int -> t * t
(** [split b n] is [(sub b 0 n, sub b n (length b - n))]. *)

val concat : t list -> t
(** [concat parts] copies all parts into one fresh contiguous buffer. *)

val copy : t -> t
(** Materialize a private copy (counted). *)

val blit : src:t -> src_off:int -> dst:t -> dst_off:int -> len:int -> unit

val blit_dma : src:t -> src_off:int -> dst:t -> dst_off:int -> len:int -> unit
(** Same as {!blit} but not recorded by {!copies_performed}: models hardware
    DMA placement (e.g. GM reassembling fragments into the posted receive
    buffer), which costs no host CPU and must not fail the zero-copy
    audit. *)

val fill_pattern : t -> seed:int -> unit
(** Fill with a deterministic byte pattern (for integrity checks). *)

val fill_zero : t -> unit
(** Fill with zeros — a maximally compressible payload for AdOC tests. *)

val fill_random : t -> Rng.t -> unit
(** Fill with pseudo-random bytes — an incompressible payload. *)

val equal : t -> t -> bool
val checksum : t -> int
(** Order-dependent FNV-1a checksum of the contents. *)

val get : t -> int -> char
val set : t -> int -> char -> unit

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit
val get_u16 : t -> int -> int
val set_u16 : t -> int -> int -> unit
val get_u32 : t -> int -> int
val set_u32 : t -> int -> int -> unit
val get_i64 : t -> int -> int64
val set_i64 : t -> int -> int64 -> unit

val copies_performed : unit -> int
(** Total bytes copied through this module since start (or last reset). *)

val reset_copy_counter : unit -> unit

(** {2 Small-buffer pool}

    A free list of fixed-size slabs for short-lived small buffers on hot
    paths (MadIO header encode is the motivating user: one 14-byte header
    per message). Unlike {!create}, a pooled buffer's contents are
    {e unspecified} — the previous user's bytes are still there — so
    callers must overwrite every byte they will read. *)
module Pool : sig
  val slab : int
  (** Slab size in bytes. Requests larger than this bypass the pool. *)

  val alloc : int -> t
  (** [alloc n] is a length-[n] buffer, reusing a pooled slab when
      [n <= slab] and one is free. Contents are unspecified. *)

  val release : t -> unit
  (** Return a buffer to the pool. The caller asserts that no live slice
      of it remains; the slab is handed to the next {!alloc} as-is.
      Buffers that did not come from the pool are ignored. *)

  val pool_hits : unit -> int
  (** Allocations served by reusing a pooled slab. *)

  val pool_misses : unit -> int
  (** Allocations that had to take fresh memory. *)

  val pooled : unit -> int
  (** Slabs currently sitting in the free list. *)

  (** {3 Size-classed slabs}

      A second free-list family for {e long-lived} fixed-size buffers —
      per-connection TCP send rings under connect/disconnect churn. Each
      distinct requested length is its own class; contents of a reused
      slab are unspecified. *)

  val alloc_bytes : int -> bytes
  (** [alloc_bytes n] is an [n]-byte raw buffer, reusing a released one of
      the same length when available. Raises [Invalid_argument] when
      [n <= 0]. *)

  val release_bytes : bytes -> unit
  (** Park a buffer for the next same-length {!alloc_bytes}. The caller
      asserts no live reference remains. *)

  val sized_hits : unit -> int
  val sized_misses : unit -> int

  val sized_parked_bytes : unit -> int
  (** Total bytes currently parked in the sized free lists. *)

  val reset : unit -> unit
end
