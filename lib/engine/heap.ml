type 'a entry = { prio : int; seq : int; value : 'a }

type 'a t = {
  mutable arr : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { arr = [||]; size = 0; next_seq = 0 }

let length h = h.size

let is_empty h = h.size = 0

(* [lt a b] orders by priority then insertion sequence, so equal-priority
   entries come out FIFO. *)
let lt a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow h =
  let cap = Array.length h.arr in
  let new_cap = if cap = 0 then 64 else cap * 2 in
  (* Dummy entry to fill the spare slots; never observed because [size]
     bounds all accesses. *)
  let dummy = h.arr.(0) in
  let arr = Array.make new_cap dummy in
  Array.blit h.arr 0 arr 0 h.size;
  h.arr <- arr

let push h ~prio value =
  let e = { prio; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  if Array.length h.arr = 0 then h.arr <- Array.make 64 e
  else if h.size = Array.length h.arr then grow h;
  h.arr.(h.size) <- e;
  h.size <- h.size + 1;
  (* Sift up. *)
  let i = ref (h.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    lt h.arr.(!i) h.arr.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = h.arr.(parent) in
    h.arr.(parent) <- h.arr.(!i);
    h.arr.(!i) <- tmp;
    i := parent
  done

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.arr.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.arr.(0) <- h.arr.(h.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && lt h.arr.(l) h.arr.(!smallest) then smallest := l;
        if r < h.size && lt h.arr.(r) h.arr.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.arr.(!smallest) in
          h.arr.(!smallest) <- h.arr.(!i);
          h.arr.(!i) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.prio, top.value)
  end

let peek_prio h = if h.size = 0 then None else Some h.arr.(0).prio

(* Arbitrary-entry removal below serves the non-FIFO schedule policies
   (see Sim.policy). [push]/[pop] above are the hot path and stay
   untouched: the default FIFO schedule must remain bit-identical. *)

let swap h i j =
  let tmp = h.arr.(i) in
  h.arr.(i) <- h.arr.(j);
  h.arr.(j) <- tmp

let sift_up h start =
  let i = ref start in
  while !i > 0 && lt h.arr.(!i) h.arr.((!i - 1) / 2) do
    let parent = (!i - 1) / 2 in
    swap h !i parent;
    i := parent
  done

let sift_down h start =
  let i = ref start in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < h.size && lt h.arr.(l) h.arr.(!smallest) then smallest := l;
    if r < h.size && lt h.arr.(r) h.arr.(!smallest) then smallest := r;
    if !smallest = !i then continue := false
    else begin
      swap h !i !smallest;
      i := !smallest
    end
  done

let min_count h =
  if h.size = 0 then 0
  else begin
    let p = h.arr.(0).prio in
    let n = ref 0 in
    for i = 0 to h.size - 1 do
      if h.arr.(i).prio = p then incr n
    done;
    !n
  end

let pop_min_nth h n =
  if h.size = 0 then None
  else begin
    let p = h.arr.(0).prio in
    (* Seqs of the smallest-priority bucket, ascending = insertion order. *)
    let seqs = ref [] in
    for i = 0 to h.size - 1 do
      if h.arr.(i).prio = p then seqs := h.arr.(i).seq :: !seqs
    done;
    let seqs = List.sort compare !seqs in
    let len = List.length seqs in
    let n = if n < 0 then 0 else if n >= len then len - 1 else n in
    let target = List.nth seqs n in
    let idx = ref (-1) in
    for i = 0 to h.size - 1 do
      if !idx < 0 && h.arr.(i).prio = p && h.arr.(i).seq = target then idx := i
    done;
    let i = !idx in
    let e = h.arr.(i) in
    h.size <- h.size - 1;
    if i < h.size then begin
      h.arr.(i) <- h.arr.(h.size);
      sift_down h i;
      sift_up h i
    end;
    Some (e.prio, e.value)
  end

let clear h =
  h.size <- 0;
  h.arr <- [||]
