(** Process-lifecycle hooks for module-level registries.

    Layers that keep module-level uid-keyed tables of per-grid state
    register a drop hook with {!on_reset}; {!reset_registries} (exposed
    to applications as [Padico.reset]) clears them all between
    independent scenarios so dead grids stop occupying the heap. Never
    call it while a grid is still in use — live nodes lazily re-create
    empty registry entries and would lose their state. *)

val on_reset : (unit -> unit) -> unit
(** [on_reset f] schedules [f] to run on every {!reset_registries}.
    Intended to be called once from a module initialiser. *)

val reset_registries : unit -> unit
(** Run every registered hook, dropping all per-grid registry state. *)
