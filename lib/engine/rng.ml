type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed =
  { state = Int64.mul (Int64.of_int (seed + 1)) 0x2545F4914F6CDD1DL }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = int64 t in
  { state = s }

(* Keyed derivation: the [i]-th child stream of [t]'s current state,
   without advancing [t]. Children of distinct indices are independent
   (each lands on a distinct mixed point of the gamma sequence), and the
   mapping is a pure function of (state, i) — the property the sharded
   engine needs so per-shard / per-port streams do not depend on the
   order in which shards happen to ask for them. *)
let stream t i =
  let z =
    mix (Int64.add t.state (Int64.mul (Int64.of_int (i + 1)) golden_gamma))
  in
  { state = z }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the conversion to OCaml's 63-bit int stays positive. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  (* 53 random bits scaled to [0,1). *)
  x *. (v /. 9007199254740992.0)

let bool t p = float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u
