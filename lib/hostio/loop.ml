module Clock = Engine.Clock
module Heap = Engine.Heap

let log = Logs.Src.create "hostio.loop" ~doc:"real-OS reactor"

module Log = (val Logs.src_log log : Logs.LOG)

type timer = {
  mutable tcb : (unit -> unit) option; (* None once fired or cancelled *)
  owner : t;
}

and fd_state = {
  mutable on_read : (unit -> unit) option;
  mutable on_write : (unit -> unit) option;
  passive : bool;
}

and t = {
  t0 : float;
  mutable last_now : int; (* monotonicity clamp over gettimeofday *)
  timers : timer Heap.t;
  mutable live_timers : int;
  fds : (Unix.file_descr, fd_state) Hashtbl.t;
  (* Interest sets: exactly the fds with a read/write callback, so a
     select round is O(interested), not O(watched) — an idle watched
     connection costs nothing per iteration. *)
  read_set : (Unix.file_descr, unit) Hashtbl.t;
  write_set : (Unix.file_descr, unit) Hashtbl.t;
  mutable active_fds : int;
  mutable stopped : bool;
  mutable cap : Clock.t option;
  (* stats *)
  mutable iterations : int;
  mutable timers_fired : int;
  mutable fd_events : int;
}

let now_ns t =
  let n = int_of_float ((Unix.gettimeofday () -. t.t0) *. 1e9) in
  if n > t.last_now then t.last_now <- n;
  t.last_now

let arm t ~after_ns f =
  let after_ns = if after_ns < 0 then 0 else after_ns in
  let tm = { tcb = Some f; owner = t } in
  Heap.push t.timers ~prio:(now_ns t + after_ns) tm;
  t.live_timers <- t.live_timers + 1;
  tm

let cancel tm =
  match tm.tcb with
  | None -> ()
  | Some _ ->
    tm.tcb <- None;
    tm.owner.live_timers <- tm.owner.live_timers - 1

(* Recover the loop behind a Clock.t capability: keyed by Clock.id so the
   engine stays free of any Hostio dependency. *)
let by_clock : (int, t) Hashtbl.t = Hashtbl.create 8
let () = Engine.Lifecycle.on_reset (fun () -> Hashtbl.reset by_clock)

let clock t =
  match t.cap with
  | Some c -> c
  | None ->
    let c =
      Clock.make ~kind:Clock.Monotonic
        ~now:(fun () -> now_ns t)
        ~schedule:(fun dt f -> ignore (arm t ~after_ns:dt f))
        ~arm:(fun dt f ->
          let tm = arm t ~after_ns:dt f in
          fun () -> cancel tm)
    in
    t.cap <- Some c;
    Hashtbl.replace by_clock (Clock.id c) t;
    c

let of_clock c = Hashtbl.find_opt by_clock (Clock.id c)

let create () =
  { t0 = Unix.gettimeofday (); last_now = 0; timers = Heap.create ();
    live_timers = 0; fds = Hashtbl.create 64; read_set = Hashtbl.create 64;
    write_set = Hashtbl.create 64; active_fds = 0;
    stopped = false; cap = None; iterations = 0; timers_fired = 0;
    fd_events = 0 }

(* ---------- file descriptors ---------- *)

(* Unix.select uses FD_SET on a fixed-size bitmap: a descriptor numbered
   >= FD_SETSIZE silently corrupts adjacent memory instead of failing.
   OCaml's Unix.file_descr is the raw int on Unix, so read it and refuse
   loudly. *)
let fd_limit = 1024

let watch_fd t fd ~passive =
  if Hashtbl.mem t.fds fd then invalid_arg "Hostio.Loop: fd already watched";
  let fdno : int = Obj.magic fd in
  if fdno >= fd_limit then
    invalid_arg
      (Printf.sprintf
         "Hostio.Loop: fd %d is beyond the select() FD_SETSIZE limit (%d); \
          the host backend cannot watch it — run large edge sweeps on the \
          sim backend, or cap host clients below the fd ceiling"
         fdno fd_limit);
  Hashtbl.replace t.fds fd { on_read = None; on_write = None; passive };
  if not passive then t.active_fds <- t.active_fds + 1

let fd_state t fd =
  match Hashtbl.find_opt t.fds fd with
  | Some s -> s
  | None -> invalid_arg "Hostio.Loop: fd not watched"

let set_interest set fd = function
  | Some _ -> Hashtbl.replace set fd ()
  | None -> Hashtbl.remove set fd

let set_read t fd cb =
  (fd_state t fd).on_read <- cb;
  set_interest t.read_set fd cb

let set_write t fd cb =
  (fd_state t fd).on_write <- cb;
  set_interest t.write_set fd cb

let unwatch_fd t fd =
  match Hashtbl.find_opt t.fds fd with
  | None -> ()
  | Some s ->
    Hashtbl.remove t.fds fd;
    Hashtbl.remove t.read_set fd;
    Hashtbl.remove t.write_set fd;
    if not s.passive then t.active_fds <- t.active_fds - 1

(* ---------- running ---------- *)

let fire_due t =
  let fired = ref 0 in
  let continue = ref true in
  (* Re-read the clock each round: a callback may arm a 0 ns timer (yields
     of green threads) that must run before we go back to select. Bound the
     burst so runaway yield loops still reach the fd poll. *)
  while !continue && !fired < 100_000 do
    match Heap.peek_prio t.timers with
    | None -> continue := false
    | Some deadline when deadline > now_ns t -> continue := false
    | Some _ ->
      (match Heap.pop t.timers with
       | None -> continue := false
       | Some (_, tm) ->
         (match tm.tcb with
          | None -> ()
          | Some f ->
            tm.tcb <- None;
            t.live_timers <- t.live_timers - 1;
            t.timers_fired <- t.timers_fired + 1;
            incr fired;
            f ()))
  done

let select_once t ~timeout =
  let rl = ref [] and wl = ref [] in
  Hashtbl.iter (fun fd () -> rl := fd :: !rl) t.read_set;
  Hashtbl.iter (fun fd () -> wl := fd :: !wl) t.write_set;
  let r, w, _ =
    try Unix.select !rl !wl [] timeout
    with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
  in
  t.iterations <- t.iterations + 1;
  let deliver which fd =
    (* Look the state up again: an earlier callback in this batch may have
       unwatched the fd or dropped the interest. *)
    match Hashtbl.find_opt t.fds fd with
    | None -> ()
    | Some s ->
      (match which s with
       | None -> ()
       | Some cb ->
         t.fd_events <- t.fd_events + 1;
         cb ())
  in
  List.iter (deliver (fun s -> s.on_read)) r;
  List.iter (deliver (fun s -> s.on_write)) w

let max_idle_slice = 0.25 (* s; re-check liveness at least this often *)

let run ?until_ns t =
  t.stopped <- false;
  let continue = ref true in
  while !continue do
    fire_due t;
    if t.stopped then continue := false
    else begin
      (* The heap min may be a cancelled entry (its deadline is then a lower
         bound on the next live one): at worst we wake early, pop it as a
         no-op, and re-estimate — never late. The quiesce check below uses
         the exact [live_timers] count, not the heap. *)
      let next = if t.live_timers > 0 then Heap.peek_prio t.timers else None in
      let now = now_ns t in
      let expired =
        match until_ns with Some u -> now >= u | None -> false
      in
      if expired || (next = None && t.active_fds = 0) then continue := false
      else begin
        let horizon =
          match next, until_ns with
          | Some d, Some u -> min d u
          | Some d, None -> d
          | None, Some u -> u
          | None, None -> now + int_of_float (max_idle_slice *. 1e9)
        in
        let timeout =
          min max_idle_slice (float_of_int (max 0 (horizon - now)) /. 1e9)
        in
        select_once t ~timeout
      end
    end
  done

let stop t = t.stopped <- true

(* ---------- stats ---------- *)

let iterations t = t.iterations
let timers_fired t = t.timers_fired
let fd_events t = t.fd_events
let live_timers t = t.live_timers
let watched_fds t = Hashtbl.length t.fds
let active_fds t = t.active_fds
