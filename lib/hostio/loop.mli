(** The Hostio reactor: a select-driven event loop over real Unix file
    descriptors with wall-clock timers.

    This is the monotonic counterpart of {!Engine.Sim}: where the simulator
    pops virtual-time events off a heap, the loop blocks in [select] until
    either a watched descriptor becomes ready or the earliest armed timer
    expires. Green threads ({!Engine.Proc}), the {!Padico_fault.Timewheel}
    and every layer above run unmodified on it through the loop's
    {!Engine.Clock.t} capability.

    Times are integer nanoseconds since the loop was created, so durations
    written against the virtual clock ([Time.ms 5]) mean the same thing
    here — in real elapsed time.

    Like [Sim.run], {!run} returns when nothing can happen any more: no
    live (non-cancelled) timer is armed and no {e active} descriptor is
    watched. Listening sockets register as {e passive} so an idle server
    with only listeners left quiesces instead of blocking forever. *)

type t

val create : unit -> t

val clock : t -> Engine.Clock.t
(** The loop's monotonic {!Engine.Clock.t} (cached; stable {!Engine.Clock.id}).
    Timers armed through it land in the loop's timer heap. *)

val of_clock : Engine.Clock.t -> t option
(** Recover the loop that owns a clock previously returned by {!clock} —
    how upper layers (SysIO) reach the reactor from a node's clock without
    the engine depending on Hostio. [None] for virtual clocks. *)

val now_ns : t -> int
(** Monotonic wall-clock nanoseconds since [create] (never decreases). *)

(** {2 Timers} *)

type timer

val arm : t -> after_ns:int -> (unit -> unit) -> timer
(** Run a callback once, at least [after_ns] from now (clamped to 0). *)

val cancel : timer -> unit
(** Idempotent; a cancelled timer never fires and no longer keeps
    {!run} alive. *)

(** {2 File descriptors} *)

val fd_limit : int
(** [select]'s FD_SETSIZE (1024). A descriptor numbered at or beyond it
    would {e silently corrupt} the fd bitmaps, so {!watch_fd} refuses it
    with a descriptive [Invalid_argument] instead — run large edge sweeps
    on the sim backend, or cap host clients below this ceiling. *)

val watch_fd : t -> Unix.file_descr -> passive:bool -> unit
(** Register a descriptor. [passive:true] (listeners) does not keep
    {!run} alive; [passive:false] (connections) does. No interest is
    armed until {!set_read}/{!set_write}. Raises [Invalid_argument] if
    the descriptor is already watched or numbered >= {!fd_limit}. *)

val set_read : t -> Unix.file_descr -> (unit -> unit) option -> unit
(** Arm ([Some cb]) or disarm ([None]) read-readiness interest. *)

val set_write : t -> Unix.file_descr -> (unit -> unit) option -> unit
(** Arm or disarm write-readiness interest. *)

val unwatch_fd : t -> Unix.file_descr -> unit
(** Forget a descriptor (does not close it). Safe from inside a readiness
    callback. *)

(** {2 Running} *)

val run : ?until_ns:int -> t -> unit
(** Dispatch timers and descriptor readiness until nothing live remains
    (no live timer, no active descriptor), {!stop} is called, or the
    clock passes [until_ns]. *)

val stop : t -> unit

(** {2 Stats (the [padico_cli hostio] report)} *)

val iterations : t -> int
(** Select round-trips completed. *)

val timers_fired : t -> int

val fd_events : t -> int
(** Readiness callbacks delivered. *)

val live_timers : t -> int
(** Armed and not yet fired/cancelled. *)

val watched_fds : t -> int

val active_fds : t -> int
(** Watched descriptors that keep {!run} alive (non-passive). *)
