(** Real-socket byte streams with the [Drivers.Tcp] event vocabulary.

    A [Stream.t] wraps a non-blocking Unix socket registered with a
    {!Loop.t} and exposes the exact callback contract of the simulated TCP
    driver: [Established] on connect completion, [Readable] when new bytes
    arrive, [Writable] when send-buffer space reopens after a short write,
    [Peer_closed] exactly once when the peer's FIN is reached after all
    data has been drained, [Reset] on a connection reset. SysIO maps these
    1:1 onto [Drivers.Tcp.event], which is what lets every VLink adapter
    run unmodified over real sockets.

    Two transports: real TCP over 127.0.0.1 ({!listen}/{!connect}) and a
    socketpair for same-process loopback ({!pair}). Writes copy into an
    internal bounded send buffer and are flushed opportunistically — like a
    kernel socket buffer, [write] never loses accepted bytes even if the
    descriptor is momentarily full, and [write_space] tells producers when
    to stop. *)

type t

type event =
  | Established
  | Readable  (** New bytes buffered; drain with {!read}. *)
  | Writable  (** Send-buffer space reopened after a short {!write}. *)
  | Peer_closed
      (** Peer FIN reached: all sent bytes were read, none follow. Fires
          exactly once, only after the receive buffer is drained. *)
  | Reset

val set_event_cb : t -> (event -> unit) -> unit
(** Install the callback. Events that already happened (connection
    established, bytes buffered, FIN reached, reset) are re-announced
    asynchronously so a late subscriber misses nothing. *)

(** {2 Creating} *)

val connect : Loop.t -> ?host:string -> port:int -> unit -> t
(** Non-blocking connect to [host] (default ["127.0.0.1"]). [Established]
    or [Reset] is delivered from a later loop iteration. *)

type listener

val listen : Loop.t -> ?port:int -> (t -> unit) -> listener
(** Bind 127.0.0.1 (an ephemeral port when [port] is omitted) and deliver
    each accepted — already established — connection to the callback.
    Listeners are passive: they never keep {!Loop.run} alive. *)

val listener_port : listener -> int
(** The real bound port (the rendezvous value peers must {!connect} to). *)

val close_listener : listener -> unit

val pair : Loop.t -> t * t
(** A connected [socketpair] — the loopback/shared-memory transport. *)

(** {2 I/O (mirrors [Drivers.Tcp])} *)

val write : t -> Engine.Bytebuf.t -> int
(** Bytes accepted into the send buffer (0 = full or not yet established:
    wait for [Writable]). Accepted bytes are never lost. *)

val write_space : t -> int
(** Send-buffer space; 0 when full or closed. *)

val read : t -> max:int -> Engine.Bytebuf.t option
(** Up to [max] buffered bytes; [None] when nothing is pending. *)

val readable_bytes : t -> int

val peer_closed : t -> bool
(** True once the peer's FIN (or a reset) has been reached — the
    subscribe-after-event catch-up the sim driver also provides. *)

val close : t -> unit
(** Graceful: flush the send buffer, then close (FIN). Idempotent. *)

val abort : t -> unit
(** Hard close: pending data discarded, RST on the wire ([SO_LINGER 0]).
    App-initiated, so no local event is delivered. *)

val reset : t -> unit
(** Tear down as if the network reset the connection: pending data is
    discarded, an RST goes out, and [Reset] is delivered to the local
    subscriber. Used by the segment link-state bridge so a simulated-fault
    "carrier loss" kills real sockets the way a cable pull would. *)

val is_open : t -> bool
