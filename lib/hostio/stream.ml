module Bytebuf = Engine.Bytebuf

let log = Logs.Src.create "hostio.stream" ~doc:"real-socket streams"

module Log = (val Logs.src_log log : Logs.LOG)

type event = Established | Readable | Writable | Peer_closed | Reset

(* Bounded byte FIFO standing in for a kernel socket buffer: chunks in,
   bounded no-copy slices out. *)
module Bq = struct
  type t = { q : Bytebuf.t Queue.t; mutable total : int }

  let create () = { q = Queue.create (); total = 0 }
  let length t = t.total
  let is_empty t = t.total = 0

  let push t b =
    if Bytebuf.length b > 0 then begin
      Queue.push b t.q;
      t.total <- t.total + Bytebuf.length b
    end

  let push_front t b =
    if Bytebuf.length b > 0 then begin
      let others = Queue.create () in
      Queue.transfer t.q others;
      Queue.push b t.q;
      Queue.transfer others t.q;
      t.total <- t.total + Bytebuf.length b
    end

  (* Coalesces across chunks like [Drivers.Tcp.read]: when [max] bytes are
     buffered, exactly [max] come out, even if they arrived fragmented —
     fixed-size header parses rely on this. Single-chunk pops stay
     no-copy. *)
  let pop t ~max =
    if t.total = 0 || max <= 0 then None
    else begin
      let parts = ref [] in
      let taken = ref 0 in
      while !taken < max && not (Queue.is_empty t.q) do
        let chunk = Queue.pop t.q in
        let len = Bytebuf.length chunk in
        if !taken + len <= max then begin
          parts := chunk :: !parts;
          taken := !taken + len
        end
        else begin
          let want = max - !taken in
          let front, rest = Bytebuf.split chunk want in
          let others = Queue.create () in
          Queue.transfer t.q others;
          Queue.push rest t.q;
          Queue.transfer others t.q;
          parts := front :: !parts;
          taken := max
        end
      done;
      t.total <- t.total - !taken;
      match !parts with
      | [ one ] -> Some one
      | parts -> Some (Bytebuf.concat (List.rev parts))
    end

  (* One queued chunk, whole — the tx flush path writes chunk-by-chunk and
     must not pay a concat copy per flush attempt. *)
  let pop_chunk t =
    if t.total = 0 then None
    else begin
      let head = Queue.pop t.q in
      t.total <- t.total - Bytebuf.length head;
      Some head
    end

  let clear t =
    Queue.clear t.q;
    t.total <- 0
end

type state = Connecting | Estab | Closed

type t = {
  loop : Loop.t;
  fd : Unix.file_descr;
  mutable st : state;
  rx : Bq.t;
  tx : Bq.t;
  tx_cap : int;
  rx_hwm : int;
  mutable cb : (event -> unit) option;
  mutable estab_notified : bool;
  mutable rx_eof : bool; (* FIN read from the kernel *)
  mutable peer_closed_fired : bool;
  mutable closing : bool; (* app closed; flushing tx before closing fd *)
  mutable reset : bool;
  mutable want_writable : bool; (* a write came up short; announce space *)
  mutable rx_paused : bool; (* read interest dropped at the high watermark *)
}

let default_buf = 262_144
let read_chunk = 65_536

let emit t ev = match t.cb with None -> () | Some f -> f ev

let is_open t = t.st <> Closed
let readable_bytes t = Bq.length t.rx
let peer_closed t = t.peer_closed_fired || t.reset || (t.rx_eof && Bq.is_empty t.rx)

let write_space t =
  if t.st <> Estab || t.closing then 0 else t.tx_cap - Bq.length t.tx

(* Fully close the descriptor and drop it from the loop. *)
let teardown t =
  if t.st <> Closed then begin
    t.st <- Closed;
    Loop.unwatch_fd t.loop t.fd;
    (try Unix.close t.fd with Unix.Unix_error _ -> ())
  end

let do_reset t =
  if t.st <> Closed && not t.reset then begin
    t.reset <- true;
    Bq.clear t.rx;
    Bq.clear t.tx;
    (* RST on the wire, not a graceful FIN. *)
    (try Unix.setsockopt_optint t.fd Unix.SO_LINGER (Some 0)
     with Unix.Unix_error _ -> ());
    teardown t;
    emit t Reset
  end

let reset t = do_reset t

let fire_peer_closed t =
  if not t.peer_closed_fired && not t.reset then begin
    t.peer_closed_fired <- true;
    (* Both directions done: the fd has nothing left to deliver. *)
    if t.closing && Bq.is_empty t.tx then teardown t;
    emit t Peer_closed
  end

(* ---------- tx ---------- *)

let rec flush_tx t =
  if t.st = Estab then begin
    let before = Bq.length t.tx in
    let blocked = ref false in
    while (not !blocked) && not (Bq.is_empty t.tx) do
      match Bq.pop_chunk t.tx with
      | None -> blocked := true
      | Some chunk ->
        let { Bytebuf.data; off; len } = chunk in
        (match Unix.single_write t.fd data off len with
         | n when n = len -> ()
         | n ->
           (* Short write: requeue the unsent tail at the front. *)
           Bq.push_front t.tx (Bytebuf.sub chunk n (len - n));
           blocked := true
         | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
           ->
           Bq.push_front t.tx chunk;
           blocked := true
         | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _)
           ->
           do_reset t;
           blocked := true)
    done;
    if t.st = Estab then begin
      if not (Bq.is_empty t.tx) then
        Loop.set_write t.loop t.fd (Some (fun () -> on_fd_writable t))
      else begin
        Loop.set_write t.loop t.fd None;
        if t.closing then begin
          (* FIN: nothing buffered, close for real. *)
          teardown t
        end
      end;
      let freed = before - Bq.length t.tx in
      if freed > 0 && t.want_writable && write_space t > 0 then begin
        t.want_writable <- false;
        emit t Writable
      end
    end
  end

and on_fd_writable t =
  match t.st with
  | Connecting ->
    (match Unix.getsockopt_error t.fd with
     | None ->
       t.st <- Estab;
       Loop.set_write t.loop t.fd None;
       Loop.set_read t.loop t.fd (Some (fun () -> on_fd_readable t));
       t.estab_notified <- true;
       emit t Established;
       if not (Bq.is_empty t.tx) then flush_tx t
     | Some _ -> do_reset t)
  | Estab -> flush_tx t
  | Closed -> ()

(* ---------- rx ---------- *)

and on_fd_readable t =
  if t.st = Estab then begin
    let buf = Bytes.create read_chunk in
    match Unix.read t.fd buf 0 read_chunk with
    | 0 ->
      t.rx_eof <- true;
      Loop.set_read t.loop t.fd None;
      if Bq.is_empty t.rx then fire_peer_closed t
    | n ->
      Bq.push t.rx (Bytebuf.sub (Bytebuf.of_bytes buf) 0 n);
      if Bq.length t.rx >= t.rx_hwm then begin
        (* Backpressure: stop reading; the kernel window fills and pushes
           back on the sender — the host analogue of the sim driver's
           bounded receive buffer. *)
        t.rx_paused <- true;
        Loop.set_read t.loop t.fd None
      end;
      emit t Readable
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> do_reset t
  end

(* ---------- construction ---------- *)

let mk loop fd ~established =
  Unix.set_nonblock fd;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true
   with Unix.Unix_error _ -> () (* socketpairs are not TCP *));
  let t =
    { loop; fd; st = (if established then Estab else Connecting);
      rx = Bq.create (); tx = Bq.create (); tx_cap = default_buf;
      rx_hwm = default_buf; cb = None; estab_notified = false;
      rx_eof = false; peer_closed_fired = false; closing = false;
      reset = false; want_writable = false; rx_paused = false }
  in
  Loop.watch_fd loop fd ~passive:false;
  if established then
    Loop.set_read loop fd (Some (fun () -> on_fd_readable t));
  t

let set_event_cb t f =
  t.cb <- Some f;
  (* Catch-up: announce anything that happened before subscription, from a
     later loop turn so the subscriber finishes wiring first. *)
  let pending_estab = t.st = Estab && not t.estab_notified in
  if pending_estab then t.estab_notified <- true;
  let had_rx = not (Bq.is_empty t.rx) in
  let pending_fin = t.rx_eof && Bq.is_empty t.rx && not t.peer_closed_fired in
  let was_reset = t.reset in
  if pending_estab || had_rx || pending_fin || was_reset then
    ignore
      (Loop.arm t.loop ~after_ns:0 (fun () ->
           if was_reset then emit t Reset
           else begin
             if pending_estab then emit t Established;
             if had_rx && not (Bq.is_empty t.rx) then emit t Readable;
             if pending_fin then fire_peer_closed t
           end))

let connect loop ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let t = mk loop fd ~established:false in
  Loop.set_write loop fd (Some (fun () -> on_fd_writable t));
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with
   | Unix.Unix_error (Unix.EINPROGRESS, _, _) -> ()
   | Unix.Unix_error _ ->
     ignore (Loop.arm loop ~after_ns:0 (fun () -> do_reset t)));
  t

type listener = {
  lfd : Unix.file_descr;
  lloop : Loop.t;
  mutable lopen : bool;
  lport : int;
}

let listen loop ?(port = 0) accept_cb =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  let lport =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Loop.watch_fd loop fd ~passive:true;
  let rec accept_loop () =
    match Unix.accept fd with
    | cfd, _ ->
      accept_cb (mk loop cfd ~established:true);
      accept_loop ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
  in
  Loop.set_read loop fd (Some accept_loop);
  { lfd = fd; lloop = loop; lopen = true; lport }

let listener_port l = l.lport

let close_listener l =
  if l.lopen then begin
    l.lopen <- false;
    Loop.unwatch_fd l.lloop l.lfd;
    try Unix.close l.lfd with Unix.Unix_error _ -> ()
  end

let pair loop =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (mk loop a ~established:true, mk loop b ~established:true)

(* ---------- app-side I/O ---------- *)

let write t b =
  if t.st <> Estab || t.closing || t.reset then 0
  else begin
    let space = write_space t in
    let len = Bytebuf.length b in
    let n = min space len in
    if n < len then t.want_writable <- true;
    if n > 0 then begin
      (* Copy into the send buffer (the kernel-copy analogue): the caller
         keeps ownership of [b], and accepted bytes survive its reuse. *)
      Bq.push t.tx (Bytebuf.copy (Bytebuf.sub b 0 n));
      flush_tx t
    end;
    n
  end

let read t ~max =
  match Bq.pop t.rx ~max with
  | None -> None
  | Some chunk ->
    if t.rx_paused && Bq.length t.rx <= t.rx_hwm / 2 && not t.rx_eof
       && t.st = Estab
    then begin
      t.rx_paused <- false;
      Loop.set_read t.loop t.fd (Some (fun () -> on_fd_readable t))
    end;
    if t.rx_eof && Bq.is_empty t.rx && not t.peer_closed_fired then
      ignore (Loop.arm t.loop ~after_ns:0 (fun () -> fire_peer_closed t));
    Some chunk

let close t =
  if t.st <> Closed && not t.closing then begin
    t.closing <- true;
    match t.st with
    | Connecting -> teardown t
    | Estab -> if Bq.is_empty t.tx then teardown t else flush_tx t
    | Closed -> ()
  end

let abort t =
  if t.st <> Closed then begin
    (try Unix.setsockopt_optint t.fd Unix.SO_LINGER (Some 0)
     with Unix.Unix_error _ -> ());
    Bq.clear t.tx;
    teardown t
  end
