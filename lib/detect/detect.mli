(** Phi-accrual heartbeat failure detector, clock-polymorphic.

    The distributed world's first tool: each instance watches a set of
    numbered peers and accrues {e suspicion} about any it has not heard
    from. Suspicion is the phi of Hayashibara et al. — roughly, how many
    mean inter-arrival intervals of silence have elapsed, on a log scale —
    so thresholds express false-positive tolerance instead of raw
    timeouts. Crossing [suspect_phi] marks a peer [Suspect] (refutable:
    hearing from it again returns it to [Alive]); crossing [confirm_phi]
    marks it [Confirmed] dead, which is sticky — this detector implements
    the crash-stop model that the self-healing collectives
    ({!Collectives.Group}) build their eviction agreement on.

    Two design points tie it to the rest of the stack:

    - {b Clock polymorphism.} The detector schedules its periodic sweep
      through the owning node's {!Engine.Clock.t}, so the same code runs
      on the deterministic virtual clock (simulation, schedule
      exploration) and on Hostio's monotonic clock (real sockets, real
      time).
    - {b Piggybacked heartbeats.} Any application traffic counts:
      callers report every message received from a peer with {!heard} and
      every message sent to one with {!sent}. The sweep emits an explicit
      heartbeat (via the [send_hb] callback) only to monitored peers the
      caller has not written to for a full interval — an active group
      sends no extra frames.

    The detector never sends anything itself; it only calls back. A
    transport that {e knows} a peer is gone (TCP reset on a real socket)
    can short-circuit accrual with {!link_dead}. *)

type config = {
  interval_ns : int;
      (** Heartbeat period: the sweep cadence, and the silence unit
          suspicion is measured against. *)
  window : int;
      (** Inter-arrival samples retained per peer. Doubles as the
          bootstrap grace: a peer never heard from is modelled with a
          mean of [window] intervals, so link establishment (a TCP
          handshake across a slow WAN) cannot produce a false
          confirmation before the first frame lands. *)
  suspect_phi : float;
      (** Accrued suspicion at which a peer turns [Suspect]
          (default 1.0, ~2.3 mean intervals of silence). *)
  confirm_phi : float;
      (** Suspicion at which a peer is [Confirmed] dead
          (default 2.0, ~4.6 mean intervals). *)
  wan_floor : int;
      (** Minimum modelled mean, in intervals, for peers flagged
          wide-area in {!set_peers}. Heartbeats ride an in-order stream,
          so a single lost segment on a lossy WAN silences the peer for a
          fast-retransmit round trip; pipelined heartbeats arrive at
          sub-interval spacing and would otherwise confirm long before
          the retransmission lands. *)
  wheel_timers : bool;
      (** Arm the sweep tick on the node's {!Padico_fault.Timewheel}
          instead of the engine heap: thousands of detectors then share
          one engine event per occupied slot, with ticks at slot
          granularity. Default [false] — exact heap timers, the
          behaviour the deterministic detection schedules pin. *)
}

val default_config : config
(** 1 ms interval, window 8, suspect at phi 1.0, confirm at phi 2.0,
    wide-area floor 4 intervals, heap timers. *)

type verdict = Alive | Suspect | Confirmed

type t

val create : ?config:config -> name:string -> Simnet.Node.t -> t
(** A detector owned by [node], sweeping on the node's clock. [name]
    scopes its metrics ([detect.<name>.*] gauges on the node). *)

val config : t -> config

val set_peers : t -> ?wan:int list -> int list -> unit
(** Replace the monitored set. Retained peers keep their state and
    samples; new peers start [Alive] with a fresh grace period; removed
    peers are forgotten. Peers also listed in [wan] are modelled with the
    [wan_floor] mean (loss-tolerant thresholds for high-latency links).
    Call again after each membership change. *)

val peers : t -> int list
(** Currently monitored peers, ascending. *)

(** {2 Traffic reports (piggybacking)} *)

val heard : t -> peer:int -> unit
(** Any message arrived from [peer]: record the inter-arrival sample and
    refute an active suspicion. Unknown or confirmed peers: no-op. *)

val sent : t -> peer:int -> unit
(** Any message was sent to [peer]: suppresses the next explicit
    heartbeat to it. *)

val link_dead : t -> peer:int -> unit
(** The transport reported [peer]'s connection dead (real-socket reset).
    Confirms immediately, skipping accrual. No-op when stopped, or on
    unknown/already-confirmed peers. *)

(** {2 Reading suspicion} *)

val verdict : t -> peer:int -> verdict
(** [Alive] for unknown peers. *)

val phi : t -> peer:int -> float
(** Current accrued suspicion (0 for unknown or just-heard peers). *)

val max_phi : t -> float
(** Highest phi over non-confirmed monitored peers — the suspicion gauge. *)

(** {2 Lifecycle} *)

val start :
  t ->
  send_hb:(int -> unit) ->
  ?on_suspect:(int -> unit) ->
  ?on_refute:(int -> unit) ->
  on_confirm:(int -> unit) ->
  unit ->
  unit
(** Begin sweeping every [interval_ns]. [send_hb peer] must transmit an
    explicit heartbeat frame; [on_confirm peer] fires exactly once per
    peer, when it is declared dead. Callbacks may reenter the detector
    ([set_peers], {!stop}). A sweep on a crashed node ({!Simnet.Node.is_up}
    false) halts the detector permanently — a dead member must not keep
    sweeping, and on the virtual clock its timers must not keep the
    simulation alive. *)

val stop : t -> unit
(** Cancel the sweep and ignore subsequent traffic reports and
    [link_dead]. Idempotent. Groups call this as [Group.retire] so
    simulations quiesce. *)

val running : t -> bool

type stats = {
  hb_sent : int;  (** Explicit heartbeat frames requested. *)
  suspects : int;  (** Alive -> Suspect transitions. *)
  refutes : int;  (** Suspect -> Alive transitions. *)
  confirms : int;  (** Peers declared dead (incl. link-dead). *)
  monitored : int;  (** Current peer count. *)
}

val stats : t -> stats
