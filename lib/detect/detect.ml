module Clock = Engine.Clock
module Node = Simnet.Node
module Trace = Padico_obs.Trace
module Metrics = Padico_obs.Metrics
module Event = Padico_obs.Event

type config = {
  interval_ns : int;
  window : int;
  suspect_phi : float;
  confirm_phi : float;
  wan_floor : int;
  wheel_timers : bool;
}

let default_config =
  {
    interval_ns = 1_000_000;
    window = 8;
    suspect_phi = 1.0;
    confirm_phi = 2.0;
    wan_floor = 4;
    wheel_timers = false;
  }

type verdict = Alive | Suspect | Confirmed

type peer_state = {
  prank : int;
  mutable last_heard : int;
  mutable last_sent : int;
  mutable floor : int;  (* minimum modelled mean, ns *)
  samples : int array;  (* inter-arrival ring, ns *)
  mutable nsamples : int;
  mutable next_slot : int;
  mutable sum : int;
  mutable state : verdict;
}

type cbs = {
  send_hb : int -> unit;
  on_suspect : int -> unit;
  on_refute : int -> unit;
  on_confirm : int -> unit;
}

type t = {
  dname : string;
  node : Node.t;
  clock : Clock.t;
  cfg : config;
  tbl : (int, peer_state) Hashtbl.t;
  mutable order : int array;  (* sorted ranks: the sweep is deterministic *)
  mutable run : bool;
  mutable cbs : cbs option;
  mutable tick_timer : (unit -> unit) option; (* cancel thunk *)
  mutable hb_sent : int;
  mutable suspects : int;
  mutable refutes : int;
  mutable confirms : int;
}

let config t = t.cfg

let running t = t.run

(* phi = log10 of the (exponentially modelled) probability that a live peer
   stays silent this long: 0.434 * elapsed / mean inter-arrival. A peer we
   have never heard from gets [window] intervals as its modelled mean — a
   bootstrap grace that must outlast link establishment (a TCP handshake
   across a multi-millisecond WAN can easily exceed a few heartbeat
   periods, and confirming a peer whose first frame is still in flight
   split-brains the group). Once samples exist the mean follows them,
   carrying a prior of two intervals and floored at the heartbeat period —
   piggybacked traffic can arrive far more often than heartbeats, and a
   burst of microsecond inter-arrivals must not turn the first idle
   millisecond into a false confirmation.

   Wide-area peers carry a higher per-peer floor ([wan_floor] intervals):
   heartbeats ride an in-order byte stream, so one lost segment on a lossy
   WAN silences the peer for a fast-retransmit round trip — several
   milliseconds that the sub-interval inter-arrivals of pipelined
   heartbeats know nothing about. The floor keeps that stall below the
   confirmation horizon. *)
let phi_of t ps ~now =
  let elapsed = now - ps.last_heard in
  if elapsed <= 0 then 0.0
  else begin
    let i = t.cfg.interval_ns in
    let mean =
      if ps.nsamples = 0 then max (i * max 1 t.cfg.window) ps.floor
      else begin
        let m = (ps.sum + (2 * i)) / (ps.nsamples + 1) in
        if m < ps.floor then ps.floor else m
      end
    in
    0.4342944819 *. float_of_int elapsed /. float_of_int mean
  end

let phi t ~peer =
  match Hashtbl.find_opt t.tbl peer with
  | None -> 0.0
  | Some ps ->
    if ps.state = Confirmed then infinity
    else phi_of t ps ~now:(Clock.now t.clock)

let max_phi t =
  let now = Clock.now t.clock in
  Array.fold_left
    (fun acc r ->
       match Hashtbl.find_opt t.tbl r with
       | Some ps when ps.state <> Confirmed ->
         Float.max acc (phi_of t ps ~now)
       | _ -> acc)
    0.0 t.order

let verdict t ~peer =
  match Hashtbl.find_opt t.tbl peer with
  | None -> Alive
  | Some ps -> ps.state

let peers t = Array.to_list t.order

type stats = {
  hb_sent : int;
  suspects : int;
  refutes : int;
  confirms : int;
  monitored : int;
}

let stats (t : t) =
  {
    hb_sent = t.hb_sent;
    suspects = t.suspects;
    refutes = t.refutes;
    confirms = t.confirms;
    monitored = Array.length t.order;
  }

let emit t action peer ~phi_milli =
  if Trace.on () then
    Trace.instant t.node (Event.Detect { action; peer; phi_milli })

let set_peers t ?(wan = []) ranks =
  let now = Clock.now t.clock in
  let ranks = List.sort_uniq compare ranks in
  let keep = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace keep r ()) ranks;
  let stale =
    Hashtbl.fold
      (fun r _ acc -> if Hashtbl.mem keep r then acc else r :: acc)
      t.tbl []
  in
  List.iter (Hashtbl.remove t.tbl) stale;
  List.iter
    (fun r ->
       let floor =
         if List.mem r wan then t.cfg.interval_ns * max 1 t.cfg.wan_floor
         else t.cfg.interval_ns
       in
       match Hashtbl.find_opt t.tbl r with
       | Some ps -> ps.floor <- floor
       | None ->
         Hashtbl.replace t.tbl r
           {
             prank = r;
             last_heard = now;
             last_sent = now;
             floor;
             samples = Array.make (max 1 t.cfg.window) 0;
             nsamples = 0;
             next_slot = 0;
             sum = 0;
             state = Alive;
           })
    ranks;
  t.order <- Array.of_list ranks

let heard (t : t) ~peer =
  if t.run then
    match Hashtbl.find_opt t.tbl peer with
    | None -> ()
    | Some ps ->
      if ps.state <> Confirmed then begin
        let now = Clock.now t.clock in
        let dt = now - ps.last_heard in
        if dt > 0 then begin
          let w = Array.length ps.samples in
          if ps.nsamples = w then ps.sum <- ps.sum - ps.samples.(ps.next_slot)
          else ps.nsamples <- ps.nsamples + 1;
          ps.samples.(ps.next_slot) <- dt;
          ps.sum <- ps.sum + dt;
          ps.next_slot <- (ps.next_slot + 1) mod w
        end;
        ps.last_heard <- now;
        if ps.state = Suspect then begin
          ps.state <- Alive;
          t.refutes <- t.refutes + 1;
          emit t "refute" peer ~phi_milli:0;
          match t.cbs with Some c -> c.on_refute peer | None -> ()
        end
      end

let sent t ~peer =
  if t.run then
    match Hashtbl.find_opt t.tbl peer with
    | None -> ()
    | Some ps -> ps.last_sent <- Clock.now t.clock

let confirm (t : t) ps ~phi_milli ~action =
  ps.state <- Confirmed;
  t.confirms <- t.confirms + 1;
  emit t action ps.prank ~phi_milli;
  match t.cbs with Some c -> c.on_confirm ps.prank | None -> ()

let link_dead t ~peer =
  if t.run then
    match Hashtbl.find_opt t.tbl peer with
    | None -> ()
    | Some ps ->
      if ps.state <> Confirmed then
        confirm t ps ~phi_milli:(-1) ~action:"link-dead"

(* One sweep: accrue suspicion for every monitored peer (ascending rank, so
   virtual-clock runs are deterministic), then heartbeat the ones we have
   not written to for a full interval. Callbacks may evict peers or stop
   the detector mid-sweep, hence the re-lookup and run checks. *)
let rec tick (t : t) =
  t.tick_timer <- None;
  if t.run then begin
    if not (Node.is_up t.node) then t.run <- false
    else begin
      let order = t.order in
      Array.iter
        (fun r ->
           if t.run then
             match Hashtbl.find_opt t.tbl r with
             | None -> ()
             | Some ps when ps.state = Confirmed -> ()
             | Some ps ->
               let now = Clock.now t.clock in
               let p = phi_of t ps ~now in
               let phi_milli = int_of_float (p *. 1000.0) in
               (match ps.state with
                | Alive when p >= t.cfg.suspect_phi ->
                  ps.state <- Suspect;
                  t.suspects <- t.suspects + 1;
                  emit t "suspect" r ~phi_milli;
                  (match t.cbs with
                   | Some c -> c.on_suspect r
                   | None -> ())
                | Suspect when p >= t.cfg.confirm_phi ->
                  confirm t ps ~phi_milli ~action:"confirm"
                | _ -> ());
               if
                 t.run && ps.state <> Confirmed
                 && now - ps.last_sent >= t.cfg.interval_ns
               then begin
                 ps.last_sent <- now;
                 t.hb_sent <- t.hb_sent + 1;
                 match t.cbs with Some c -> c.send_hb r | None -> ()
               end)
        order;
      if t.run then t.tick_timer <- Some (arm_tick t)
    end
  end

(* With [wheel_timers], thousands of detectors share one engine event per
   occupied wheel slot instead of one heap entry each; ticks land at slot
   granularity. The default keeps the exact heap timer the deterministic
   detection schedules pin. *)
and arm_tick t =
  if t.cfg.wheel_timers then begin
    let tm =
      Padico_fault.Timewheel.arm
        (Padico_fault.Timewheel.for_clock t.clock)
        ~after_ns:t.cfg.interval_ns
        (fun () -> tick t)
    in
    fun () -> Padico_fault.Timewheel.cancel tm
  end
  else begin
    let tm = Clock.arm t.clock t.cfg.interval_ns (fun () -> tick t) in
    fun () -> Clock.cancel tm
  end

let stop t =
  t.run <- false;
  (match t.tick_timer with Some cancel -> cancel () | None -> ());
  t.tick_timer <- None

let start t ~send_hb ?(on_suspect = fun _ -> ()) ?(on_refute = fun _ -> ())
    ~on_confirm () =
  stop t;
  t.cbs <- Some { send_hb; on_suspect; on_refute; on_confirm };
  t.run <- true;
  t.tick_timer <- Some (arm_tick t)

let create ?(config = default_config) ~name node =
  let t =
    {
      dname = name;
      node;
      clock = Node.clock node;
      cfg = config;
      tbl = Hashtbl.create 16;
      order = [||];
      run = false;
      cbs = None;
      tick_timer = None;
      hb_sent = 0;
      suspects = 0;
      refutes = 0;
      confirms = 0;
    }
  in
  let scope = Metrics.Node (Node.name node) in
  Metrics.gauge scope ("detect." ^ t.dname ^ ".max_phi") (fun () -> max_phi t);
  Metrics.gauge scope
    ("detect." ^ t.dname ^ ".monitored")
    (fun () -> float_of_int (Array.length t.order));
  Metrics.gauge scope
    ("detect." ^ t.dname ^ ".confirms")
    (fun () -> float_of_int t.confirms);
  t
