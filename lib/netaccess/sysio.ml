module Tcp = Drivers.Tcp
module Stats = Engine.Stats
module Trace = Padico_obs.Trace
module Metrics = Padico_obs.Metrics

type t = {
  sio_node : Simnet.Node.t;
  core : Na_core.t;
  dispatched : Stats.Counter.t;
}

let instances : (int, t) Hashtbl.t = Hashtbl.create 16

let get n =
  let key = Simnet.Node.uid n in
  match Hashtbl.find_opt instances key with
  | Some t -> t
  | None ->
    let t =
      { sio_node = n; core = Na_core.get n;
        dispatched =
          Metrics.fresh_counter
            (Metrics.Node (Simnet.Node.name n))
            "sysio.dispatched" }
    in
    Hashtbl.replace instances key t;
    t

let node t = t.sio_node

let stack_on t seg = Tcp.attach seg t.sio_node

let udp_on t seg = Drivers.Udp.attach seg t.sio_node

let event_name = function
  | Tcp.Established -> "established"
  | Tcp.Readable -> "readable"
  | Tcp.Writable -> "writable"
  | Tcp.Peer_closed -> "peer-closed"
  | Tcp.Reset -> "reset"

(* Route an event through the arbitration core, charging the callback
   dispatch cost. *)
let dispatch ?prio t f =
  Na_core.post ?prio t.core Na_core.Sysio_work (fun () ->
      Stats.Counter.incr t.dispatched;
      Simnet.Node.cpu_async t.sio_node Calib.sysio_callback_ns (fun () -> ());
      f ())

(* Readable events carry bulk data and are the receive-window pushback
   point: deferring one under overload leaves the bytes in the TCP receive
   buffer, which closes the advertised window and stalls the sender — the
   classic "stop reading and let the transport push back". Everything else
   (connection lifecycle, writability) stays Normal so control traffic is
   never starved by a data flood. *)
let event_prio = function
  | Tcp.Readable -> Na_core.Low
  | Tcp.Established | Tcp.Writable | Tcp.Peer_closed | Tcp.Reset ->
    Na_core.Normal

let trace_event t name =
  if Trace.on () then
    Trace.instant t.sio_node (Padico_obs.Event.Sysio_event { event = name })

let watch t conn cb =
  (* Interest registration drives the adaptive scheduler's idle-scan
     model: each watched source is one more reason a real receipt loop
     would keep select()ing. [watch]/[unwatch] must pair. *)
  Na_core.add_sysio_interest t.core 1;
  Tcp.set_event_cb conn (fun ev ->
      dispatch ~prio:(event_prio ev) t (fun () ->
          trace_event t (event_name ev);
          cb ev))

let unwatch t conn =
  Na_core.add_sysio_interest t.core (-1);
  Tcp.set_event_cb conn (fun _ -> ())

let listen t stack ~port cb =
  Na_core.add_sysio_interest t.core 1;
  Tcp.listen stack ~port (fun conn ->
      dispatch t (fun () ->
          trace_event t "accept";
          cb conn))

let connect t stack ~dst ~port cb =
  Na_core.add_sysio_interest t.core 1;
  let conn = Tcp.connect stack ~dst ~port in
  Tcp.set_event_cb conn (fun ev ->
      dispatch ~prio:(event_prio ev) t (fun () ->
          trace_event t (event_name ev);
          cb conn ev));
  conn

let watch_udp t udp ~port cb =
  Na_core.add_sysio_interest t.core 1;
  Drivers.Udp.bind udp ~port (fun ~src ~src_port buf ->
      (* Datagrams are unreliable by contract: under overload they are shed
         rather than queued, and the datagram protocol's own retransmission
         (VRP) recovers. *)
      ignore
        (Na_core.post_droppable t.core Na_core.Sysio_work (fun () ->
             Stats.Counter.incr t.dispatched;
             Simnet.Node.cpu_async t.sio_node Calib.sysio_callback_ns
               (fun () -> ());
             trace_event t "udp-datagram";
             cb ~src ~src_port buf)))

let events_dispatched t = Stats.Counter.value t.dispatched
