module Tcp = Drivers.Tcp
module Stats = Engine.Stats
module Trace = Padico_obs.Trace
module Metrics = Padico_obs.Metrics

type t = {
  sio_node : Simnet.Node.t;
  core : Na_core.t;
  dispatched : Stats.Counter.t;
}

let instances : (int, t) Hashtbl.t = Hashtbl.create 16

let get n =
  let key = Simnet.Node.uid n in
  match Hashtbl.find_opt instances key with
  | Some t -> t
  | None ->
    let t =
      { sio_node = n; core = Na_core.get n;
        dispatched =
          Metrics.fresh_counter
            (Metrics.Node (Simnet.Node.name n))
            "sysio.dispatched" }
    in
    Hashtbl.replace instances key t;
    t

let node t = t.sio_node

let stack_on t seg = Tcp.attach seg t.sio_node

let udp_on t seg = Drivers.Udp.attach seg t.sio_node

let event_name = function
  | Tcp.Established -> "established"
  | Tcp.Readable -> "readable"
  | Tcp.Writable -> "writable"
  | Tcp.Peer_closed -> "peer-closed"
  | Tcp.Reset -> "reset"

(* Route an event through the arbitration core, charging the callback
   dispatch cost. *)
let dispatch t f =
  Na_core.post t.core Na_core.Sysio_work (fun () ->
      Stats.Counter.incr t.dispatched;
      Simnet.Node.cpu_async t.sio_node Calib.sysio_callback_ns (fun () -> ());
      f ())

let trace_event t name =
  if Trace.on () then
    Trace.instant t.sio_node (Padico_obs.Event.Sysio_event { event = name })

let watch t conn cb =
  Tcp.set_event_cb conn (fun ev ->
      dispatch t (fun () ->
          trace_event t (event_name ev);
          cb ev))

let unwatch _t conn = Tcp.set_event_cb conn (fun _ -> ())

let listen t stack ~port cb =
  Tcp.listen stack ~port (fun conn ->
      dispatch t (fun () ->
          trace_event t "accept";
          cb conn))

let connect t stack ~dst ~port cb =
  let conn = Tcp.connect stack ~dst ~port in
  Tcp.set_event_cb conn (fun ev ->
      dispatch t (fun () ->
          trace_event t (event_name ev);
          cb conn ev));
  conn

let watch_udp t udp ~port cb =
  Drivers.Udp.bind udp ~port (fun ~src ~src_port buf ->
      dispatch t (fun () ->
          trace_event t "udp-datagram";
          cb ~src ~src_port buf))

let events_dispatched t = Stats.Counter.value t.dispatched
