module Tcp = Drivers.Tcp
module Stats = Engine.Stats
module Clock = Engine.Clock
module Trace = Padico_obs.Trace
module Metrics = Padico_obs.Metrics
module Stream = Hostio.Stream
module Timewheel = Padico_fault.Timewheel

type t = {
  sio_node : Simnet.Node.t;
  core : Na_core.t;
  dispatched : Stats.Counter.t;
  (* Edge (capacity) mode: readiness-queue event routing, timewheel
     per-connection timers, pooled send rings, closed-connection reaping.
     Off by default — the classic per-event post path, byte-identical. *)
  mutable edge : bool;
  mutable sim_stacks : Tcp.stack list; (* for the byte-budget gauges *)
}

let instances : (int, t) Hashtbl.t = Hashtbl.create 16
let registry_lock = Mutex.create ()

let () =
  Engine.Lifecycle.on_reset (fun () ->
      Mutex.protect registry_lock (fun () -> Hashtbl.reset instances))

let get n =
  let key = Simnet.Node.uid n in
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt instances key with
      | Some t -> t
      | None ->
        let scope = Metrics.Node (Simnet.Node.name n) in
        let t =
          { sio_node = n; core = Na_core.get n;
            dispatched = Metrics.fresh_counter scope "sysio.dispatched";
            edge = false; sim_stacks = [] }
        in
        Metrics.gauge scope "conn.count" (fun () ->
            float_of_int
              (List.fold_left
                 (fun acc st -> acc + Tcp.conn_count st)
                 0 t.sim_stacks));
        Metrics.gauge scope "conn.bytes_resident" (fun () ->
            float_of_int
              (List.fold_left
                 (fun acc st -> acc + Tcp.resident_bytes st)
                 0 t.sim_stacks));
        Hashtbl.replace instances key t;
        t)

let node t = t.sio_node

(* ---------- backends ---------- *)

type stack =
  | Sim_stack of Tcp.stack
  | Host_stack of host_stack

and host_stack = {
  hs_node : Simnet.Node.t;
  hs_seg : Simnet.Segment.t;
  hs_loop : Hostio.Loop.t;
}

(* A connection carries an optional readiness source: edge mode accumulates
   its transport events here and puts the source on the dispatcher's ready
   list, instead of posting one work item per event. *)
type conn = { impl : conn_impl; mutable src : edge_src option }

and conn_impl =
  | Sim_conn of Tcp.conn
  | Host_conn of host_conn

and edge_src = {
  mutable es_cb : Tcp.event -> unit;
  es_pending : Tcp.event Queue.t;
  mutable es_source : Na_core.source option;
}

and host_conn = {
  (* [None] models a refused dial: a SYN answered by RST. *)
  hc_stream : Stream.t option;
  hc_node : Simnet.Node.t;
  mutable hc_dead : bool; (* guards the segment link-state subscription *)
}

let host_stacks : (int * int, host_stack) Hashtbl.t = Hashtbl.create 16
let () = Engine.Lifecycle.on_reset (fun () -> Hashtbl.reset host_stacks)

(* Edge capabilities on a simulated TCP stack: per-connection timers on the
   shared per-clock timewheel (one engine event per occupied slot instead
   of one per RTO), closed-connection reaping, pooled send rings. *)
let enable_edge_stack t st =
  let wheel = Timewheel.for_clock (Simnet.Node.clock t.sio_node) in
  Tcp.set_timer_service st (fun ~after_ns f ->
      ignore (Timewheel.arm wheel ~after_ns f));
  Tcp.set_reap st true;
  Tcp.set_pooled_rings st true

let set_edge t =
  if not t.edge then begin
    t.edge <- true;
    Na_core.set_io_model t.core Na_core.Ready_queue;
    List.iter (enable_edge_stack t) t.sim_stacks
  end

let edge t = t.edge

let stack_on t seg =
  let clk = Simnet.Node.clock t.sio_node in
  if Clock.is_virtual clk then begin
    let st = Tcp.attach seg t.sio_node in
    if not (List.memq st t.sim_stacks) then begin
      t.sim_stacks <- st :: t.sim_stacks;
      if t.edge then enable_edge_stack t st
    end;
    Sim_stack st
  end
  else
    let key = (Simnet.Node.uid t.sio_node, Simnet.Segment.uid seg) in
    match Hashtbl.find_opt host_stacks key with
    | Some hs -> Host_stack hs
    | None ->
      let loop =
        match Hostio.Loop.of_clock clk with
        | Some l -> l
        | None ->
          invalid_arg
            "Sysio.stack_on: monotonic clock without a Hostio loop"
      in
      let hs = { hs_node = t.sio_node; hs_seg = seg; hs_loop = loop } in
      Hashtbl.replace host_stacks key hs;
      Host_stack hs

let stack_node = function
  | Sim_stack st -> Tcp.node st
  | Host_stack hs -> hs.hs_node

let stack_segment = function
  | Sim_stack st -> Tcp.segment st
  | Host_stack hs -> hs.hs_seg

let tcp_stack = function Sim_stack st -> Some st | Host_stack _ -> None

let udp_on t seg = Drivers.Udp.attach seg t.sio_node

(* Logical (segment, listening node, logical port) -> the real listener,
   whose ephemeral OS port peers actually dial. Segment uids are
   process-unique, so concurrent grids never collide. *)
let rendezvous : (int * int * int, Stream.listener) Hashtbl.t =
  Hashtbl.create 16

let map_event = function
  | Stream.Established -> Tcp.Established
  | Stream.Readable -> Tcp.Readable
  | Stream.Writable -> Tcp.Writable
  | Stream.Peer_closed -> Tcp.Peer_closed
  | Stream.Reset -> Tcp.Reset

(* Bridge simulated faults onto the real socket: carrier loss on the
   segment resets the connection (RST out, [Reset] locally). The watcher
   stack on a segment cannot be removed, so a generation flag keeps stale
   subscriptions inert. *)
let mk_host_conn hs stream =
  let hc = { hc_stream = Some stream; hc_node = hs.hs_node; hc_dead = false } in
  let kill up =
    if (not up) && not hc.hc_dead then begin
      hc.hc_dead <- true;
      Stream.reset stream
    end
  in
  Simnet.Segment.on_link_state hs.hs_seg kill;
  (* A node crash kills that node's real sockets the same way: the peer
     sees an RST, which is exactly what a failure detector listening for
     transport death needs. *)
  Simnet.Node.on_state hs.hs_node kill;
  (* The watcher only covers crashes after this point; a socket opened on
     an already-crashed node must be stillborn, or the zombie keeps
     talking — on simnet a down node cannot emit a single frame, and the
     failure-detection stack depends on the host backend matching that. *)
  if not (Simnet.Node.is_up hs.hs_node) then kill false;
  hc

(* ---------- dispatch through the arbitration core ---------- *)

let event_name = function
  | Tcp.Established -> "established"
  | Tcp.Readable -> "readable"
  | Tcp.Writable -> "writable"
  | Tcp.Peer_closed -> "peer-closed"
  | Tcp.Reset -> "reset"

(* Route an event through the arbitration core, charging the callback
   dispatch cost. *)
let dispatch ?prio t f =
  Na_core.post ?prio t.core Na_core.Sysio_work (fun () ->
      Stats.Counter.incr t.dispatched;
      Simnet.Node.cpu_async t.sio_node Calib.sysio_callback_ns (fun () -> ());
      f ())

(* Readable events carry bulk data and are the receive-window pushback
   point: deferring one under overload leaves the bytes in the TCP receive
   buffer, which closes the advertised window and stalls the sender — the
   classic "stop reading and let the transport push back". Everything else
   (connection lifecycle, writability) stays Normal so control traffic is
   never starved by a data flood. *)
let event_prio = function
  | Tcp.Readable -> Na_core.Low
  | Tcp.Established | Tcp.Writable | Tcp.Peer_closed | Tcp.Reset ->
    Na_core.Normal

let trace_event t name =
  if Trace.on () then
    Trace.instant t.sio_node (Padico_obs.Event.Sysio_event { event = name })

let wire_cb t cb ev =
  dispatch ~prio:(event_prio ev) t (fun () ->
      trace_event t (event_name ev);
      cb ev)

(* ---------- edge-mode readiness sources ---------- *)

let drain_src t es () =
  while not (Queue.is_empty es.es_pending) do
    let ev = Queue.pop es.es_pending in
    Stats.Counter.incr t.dispatched;
    Simnet.Node.cpu_async t.sio_node Calib.sysio_callback_ns (fun () -> ());
    trace_event t (event_name ev);
    es.es_cb ev
  done

(* Level-style coalescing: a [Readable]/[Writable] already pending absorbs
   the new edge (the callback reads/writes everything available when it
   runs — "at least one delivery after the last event"). Lifecycle events
   keep their order and multiplicity. *)
let push_event t es ev =
  let absorbed =
    match ev with
    | Tcp.Readable | Tcp.Writable ->
      Queue.fold (fun acc e -> acc || e = ev) false es.es_pending
    | Tcp.Established | Tcp.Peer_closed | Tcp.Reset -> false
  in
  if not absorbed then Queue.push ev es.es_pending;
  match es.es_source with
  | Some s -> Na_core.mark_ready t.core s
  | None -> ()

(* Attach (or retarget) the connection's readiness source and point the
   transport's event callback at it. *)
let edge_attach t conn cb =
  match conn.src with
  | Some es -> es.es_cb <- cb
  | None ->
    (match conn.impl with
     | Sim_conn c ->
       let es =
         { es_cb = cb; es_pending = Queue.create (); es_source = None }
       in
       es.es_source <- Some (Na_core.register_source t.core ~drain:(drain_src t es));
       conn.src <- Some es;
       Tcp.set_event_cb c (fun ev -> push_event t es ev)
     | Host_conn _ ->
       (* Host sockets keep the classic post-per-event path: the reactor
          already delivers only ready fds, and the host E15 subset runs
          under the select fd ceiling anyway. *)
       ())

let edge_detach t conn =
  match conn.src with
  | None -> ()
  | Some es ->
    (match es.es_source with
     | Some s -> Na_core.unregister_source t.core s
     | None -> ());
    es.es_cb <- (fun _ -> ());
    conn.src <- None

let watch t conn cb =
  (* Interest registration drives the adaptive scheduler's idle-scan
     model: each watched source is one more reason a real receipt loop
     would keep select()ing. [watch]/[unwatch] must pair. *)
  Na_core.add_sysio_interest t.core 1;
  match conn.impl with
  | Sim_conn c ->
    if t.edge then edge_attach t conn cb
    else Tcp.set_event_cb c (fun ev -> wire_cb t cb ev)
  | Host_conn { hc_stream = Some s; _ } ->
    Stream.set_event_cb s (fun ev -> wire_cb t cb (map_event ev))
  | Host_conn _ ->
    (* Refused dial: the only event this connection will ever see. *)
    wire_cb t cb Tcp.Reset

let unwatch t conn =
  Na_core.add_sysio_interest t.core (-1);
  match conn.impl with
  | Sim_conn c ->
    edge_detach t conn;
    Tcp.set_event_cb c (fun _ -> ())
  | Host_conn { hc_stream = Some s; _ } -> Stream.set_event_cb s (fun _ -> ())
  | Host_conn _ -> ()

let mk_conn impl = { impl; src = None }

let listen ?sndbuf ?rcvbuf t stack ~port cb =
  Na_core.add_sysio_interest t.core 1;
  match stack with
  | Sim_stack st ->
    Tcp.listen ?sndbuf ?rcvbuf st ~port (fun conn ->
        dispatch t (fun () ->
            trace_event t "accept";
            cb (mk_conn (Sim_conn conn))))
  | Host_stack hs ->
    let key =
      (Simnet.Segment.uid hs.hs_seg, Simnet.Node.id t.sio_node, port)
    in
    if Hashtbl.mem rendezvous key then
      invalid_arg "Sysio.listen: port already bound";
    let listener =
      Stream.listen hs.hs_loop (fun stream ->
          let conn = mk_conn (Host_conn (mk_host_conn hs stream)) in
          dispatch t (fun () ->
              trace_event t "accept";
              cb conn))
    in
    Hashtbl.replace rendezvous key listener

let connect ?sndbuf ?rcvbuf t stack ~dst ~port cb =
  Na_core.add_sysio_interest t.core 1;
  match stack with
  | Sim_stack st ->
    let c = Tcp.connect ?sndbuf ?rcvbuf st ~dst ~port in
    let conn = mk_conn (Sim_conn c) in
    if t.edge then edge_attach t conn (cb conn)
    else Tcp.set_event_cb c (fun ev -> wire_cb t (cb conn) ev);
    conn
  | Host_stack hs ->
    let key = (Simnet.Segment.uid hs.hs_seg, dst, port) in
    (match Hashtbl.find_opt rendezvous key with
     | Some listener ->
       let stream =
         Stream.connect hs.hs_loop
           ~port:(Stream.listener_port listener) ()
       in
       let conn = mk_conn (Host_conn (mk_host_conn hs stream)) in
       Stream.set_event_cb stream (fun ev -> wire_cb t (cb conn) (map_event ev));
       conn
     | None ->
       (* Nobody listens on that logical port: SYN -> RST. *)
       let conn =
         mk_conn
           (Host_conn
              { hc_stream = None; hc_node = hs.hs_node; hc_dead = true })
       in
       Clock.after (Simnet.Node.clock t.sio_node) 0 (fun () ->
           wire_cb t (cb conn) Tcp.Reset);
       conn)

(* ---------- connection operations ---------- *)

let write conn b =
  match conn.impl with
  | Sim_conn c -> Tcp.write c b
  | Host_conn { hc_stream = Some s; _ } -> Stream.write s b
  | Host_conn _ -> 0

let write_space conn =
  match conn.impl with
  | Sim_conn c -> Tcp.write_space c
  | Host_conn { hc_stream = Some s; _ } -> Stream.write_space s
  | Host_conn _ -> 0

let read conn ~max =
  match conn.impl with
  | Sim_conn c -> Tcp.read c ~max
  | Host_conn { hc_stream = Some s; _ } -> Stream.read s ~max
  | Host_conn _ -> None

let readable_bytes conn =
  match conn.impl with
  | Sim_conn c -> Tcp.readable_bytes c
  | Host_conn { hc_stream = Some s; _ } -> Stream.readable_bytes s
  | Host_conn _ -> 0

let peer_closed conn =
  match conn.impl with
  | Sim_conn c -> Tcp.peer_closed c
  | Host_conn { hc_stream = Some s; _ } -> Stream.peer_closed s
  | Host_conn _ -> true

let conn_node conn =
  match conn.impl with
  | Sim_conn c -> Tcp.conn_node c
  | Host_conn hc -> hc.hc_node

let close conn =
  match conn.impl with
  | Sim_conn c -> Tcp.close c
  | Host_conn ({ hc_stream = Some s; _ } as hc) ->
    hc.hc_dead <- true;
    Stream.close s
  | Host_conn _ -> ()

let abort conn =
  match conn.impl with
  | Sim_conn c -> Tcp.abort c
  | Host_conn ({ hc_stream = Some s; _ } as hc) ->
    hc.hc_dead <- true;
    Stream.abort s
  | Host_conn _ -> ()

let watch_udp t udp ~port cb =
  Na_core.add_sysio_interest t.core 1;
  Drivers.Udp.bind udp ~port (fun ~src ~src_port buf ->
      (* Datagrams are unreliable by contract: under overload they are shed
         rather than queued, and the datagram protocol's own retransmission
         (VRP) recovers. *)
      ignore
        (Na_core.post_droppable t.core Na_core.Sysio_work (fun () ->
             Stats.Counter.incr t.dispatched;
             Simnet.Node.cpu_async t.sio_node Calib.sysio_callback_ns
               (fun () -> ());
             trace_event t "udp-datagram";
             cb ~src ~src_port buf)))

let events_dispatched t = Stats.Counter.value t.dispatched

(* ---------- byte-budget accounting ---------- *)

let conn_count t =
  List.fold_left (fun acc st -> acc + Tcp.conn_count st) 0 t.sim_stacks

let bytes_resident t =
  List.fold_left (fun acc st -> acc + Tcp.resident_bytes st) 0 t.sim_stacks

let conns_reaped t =
  List.fold_left (fun acc st -> acc + Tcp.reaped st) 0 t.sim_stacks
