(** NetAccess SysIO: arbitrated access to distributed-oriented resources.

    Using the socket API directly does not give reentrance or fair
    multiplexing: middleware using signal-driven I/O misbehaves, and one
    middleware busy-polling starves another using blocking I/O. SysIO
    instead manages a {e unique receipt loop} (the NetAccess dispatcher)
    that watches all open sockets and invokes user-registered callbacks when
    a socket becomes ready; callbacks are serialized, so there are no
    reentrance issues and no signals.

    SysIO is also the execution-backend boundary. A {!stack} is either the
    simulated TCP driver ([Drivers.Tcp], virtual clock) or a Hostio stream
    transport over real Unix sockets (monotonic clock) — chosen by the
    node's {!Engine.Clock.t}, so VLink adapters, Circuit and the
    conformance kit run unmodified on either backend. Host connections
    subscribe to their segment's link state: a fault-plan "link down"
    resets the real sockets the way a cable pull would. *)

type t

val get : Simnet.Node.t -> t
(** The node's SysIO subsystem (created on first use). *)

val node : t -> Simnet.Node.t

type stack
(** Per-(node, segment) transport instance — simulated TCP or Hostio. *)

type conn
(** A byte-stream connection on either backend. Events delivered for it use
    the [Drivers.Tcp.event] vocabulary on both. *)

val stack_on : t -> Simnet.Segment.t -> stack
(** Transport stack of this node on a (LAN/WAN/loopback) segment, creating
    it on first use. Simulated when the node runs on the virtual clock,
    Hostio-backed when it runs on a reactor's monotonic clock. *)

val stack_node : stack -> Simnet.Node.t
val stack_segment : stack -> Simnet.Segment.t

val tcp_stack : stack -> Drivers.Tcp.stack option
(** The simulated driver behind a sim-backend stack ([None] on host) — for
    tests and benchmarks that introspect TCP internals. *)

val udp_on : t -> Simnet.Segment.t -> Drivers.Udp.t
(** Simulated-backend only (VRP is remapped to stream transports on the
    host backend). *)

val watch : t -> conn -> (Drivers.Tcp.event -> unit) -> unit
(** Register the connection with the receipt loop: every transport event is
    dispatched through the arbitration core to the (non-blocking)
    callback. *)

val unwatch : t -> conn -> unit
(** Stop dispatching events for this connection. *)

val listen :
  ?sndbuf:int -> ?rcvbuf:int -> t -> stack -> port:int -> (conn -> unit) ->
  unit
(** Arbitrated accept loop: new connections are handed to the callback from
    the dispatcher. The callback typically calls {!watch} on the new
    connection. On the host backend the real ephemeral port is registered
    in a process-wide rendezvous table keyed by (segment, node, logical
    port), so peers keep dialing logical ports. [sndbuf]/[rcvbuf] size the
    buffers of accepted sim connections (edge gateways listen small so
    100k connections fit a fixed byte budget); ignored on host stacks. *)

val connect :
  ?sndbuf:int -> ?rcvbuf:int -> t -> stack -> dst:int -> port:int ->
  (conn -> Drivers.Tcp.event -> unit) -> conn
(** Active open with the event stream (including [Established]) routed
    through the dispatcher. [dst]/[port] are the logical node id and port
    on both backends; a host-backend dial to a port nobody listens on
    delivers [Reset], like a SYN answered by RST. *)

(** {2 Connection operations (the [Drivers.Tcp] data-plane contract)} *)

val write : conn -> Engine.Bytebuf.t -> int
(** Bytes accepted into the send buffer; 0 = full, wait for [Writable]. *)

val write_space : conn -> int

val read : conn -> max:int -> Engine.Bytebuf.t option
(** Up to [max] in-order bytes; [None] when nothing is buffered. *)

val readable_bytes : conn -> int

val peer_closed : conn -> bool
(** True once the peer's FIN has been processed — the poll-after-subscribe
    catch-up for the edge-triggered [Peer_closed] event. *)

val conn_node : conn -> Simnet.Node.t

val close : conn -> unit
(** Graceful close: FIN once the send buffer drains. *)

val abort : conn -> unit
(** Hard close: RST to peer. *)

val watch_udp :
  t ->
  Drivers.Udp.t ->
  port:int ->
  (src:int -> src_port:int -> Engine.Bytebuf.t -> unit) ->
  unit

val events_dispatched : t -> int

(** {2 Edge (capacity) mode}

    Off by default; the classic post-per-event path is byte-identical to
    every prior release. [set_edge] flips the node to the 100k-connection
    regime:

    - the dispatcher's {!Na_core.io_model} becomes [Ready_queue]: each
      watched sim connection gets a coalescing readiness {e source}
      (pending [Readable]/[Writable] edges absorb duplicates) that sits on
      the ready list at most once — idle connections cost zero per round;
    - per-connection TCP timers (RTO, persist) are re-routed onto the
      node's {!Padico_fault.Timewheel}, one engine event per occupied slot
      instead of one per timer;
    - send rings come from the {!Engine.Bytebuf.Pool} size-classed slabs
      and fully-closed connections are reaped from the stack table.

    Host-backend connections keep the classic path (the reactor already
    delivers only ready fds, and the host E15 subset stays under the
    select fd ceiling). *)

val set_edge : t -> unit
(** Enable edge mode on this node (idempotent; applies to current and
    future sim stacks). *)

val edge : t -> bool

(** {2 Byte-budget accounting (sim stacks)} *)

val conn_count : t -> int
(** Live connections across this node's sim stacks (also exported as the
    [conn.count] gauge). *)

val bytes_resident : t -> int
(** Total resident connection bytes (see
    {!Drivers.Tcp.conn_resident_bytes}); the [conn.bytes_resident]
    gauge. *)

val conns_reaped : t -> int
(** Connections removed by edge-mode reaping. *)
