module Sim = Engine.Sim
module Clock = Engine.Clock
module Proc = Engine.Proc
module Stats = Engine.Stats
module Trace = Padico_obs.Trace
module Metrics = Padico_obs.Metrics

let log = Logs.Src.create "netaccess.core"

module Log = (val Logs.src_log log : Logs.LOG)

type kind = Madio_work | Sysio_work

type prio = Normal | Low

type quanta = { madio_quantum : int; sysio_quantum : int }

type adaptive = {
  ewma_weight : float;
  min_quantum : int;
  max_quantum : int;
  idle_backoff : bool;
  max_scan_gap : int;
  latency_boost : bool;
}

type policy = Static of quanta | Adaptive of adaptive

type io_model = Scan | Ready_queue

let default_quanta = { madio_quantum = 4; sysio_quantum = 4 }

let default_policy = Static default_quanta

let default_adaptive =
  { ewma_weight = 0.25; min_quantum = 1; max_quantum = 64;
    idle_backoff = true; max_scan_gap = 64; latency_boost = true }

type item = { work : unit -> unit; posted_at : int }

(* An explicit readiness source (one per watched edge connection): events
   accumulate at the source, and the source enqueues itself on the ready
   list at most once ([s_queued]) until drained. Idle sources are simply
   absent from the list, so a dispatch round costs nothing per idle
   connection — the O(watched)-scan replacement. *)
type source = {
  src_id : int;
  mutable s_queued : bool; (* on the ready list right now *)
  mutable s_live : bool; (* false once unregistered *)
  s_drain : unit -> unit; (* deliver every pending event; non-blocking *)
}

type queue_state = {
  kname : string;
  items : item Queue.t;
  deferred : item Queue.t; (* Low-prio items parked while overloaded *)
  mutable qhigh : int; (* defer/shed above this depth *)
  mutable qlow : int; (* re-admit deferred work at/below this depth *)
  mutable peak : int;
  count : Stats.Counter.t; (* dispatched *)
  wait : Stats.Summary.t; (* queueing time per item, ns *)
  deferred_c : Stats.Counter.t;
  shed_c : Stats.Counter.t;
  mutable ewma : float; (* useful work per round (adaptive policy) *)
}

type t = {
  dnode : Simnet.Node.t;
  clk : Clock.t;
  mutable pol : policy;
  madio : queue_state;
  sysio : queue_state;
  mutable waker : (unit -> unit) option; (* resumes the idle dispatcher *)
  (* Adaptive-policy state. [sysio_interest] counts registered event
     sources (watched sockets, listeners, UDP binds): with none, there is
     nothing a SysIO scan could discover and the scan machinery is moot. *)
  mutable sysio_interest : int;
  mutable scan_gap : int; (* rounds between idle SysIO scans (backoff) *)
  mutable rounds_since_scan : int;
  polls_busy : Stats.Counter.t; (* scans with readiness events pending *)
  polls_idle : Stats.Counter.t; (* charged scans that found nothing *)
  polls_saved : Stats.Counter.t; (* idle scans elided by the backoff *)
  (* Ready-queue io-model state. Empty when the model is [Scan] (the
     default): the dispatcher round then never touches it. *)
  mutable iomodel : io_model;
  ready : source Queue.t;
  mutable next_src : int;
  mutable nsources : int;
  ready_drains : Stats.Counter.t; (* sources drained *)
  ready_polls : Stats.Counter.t; (* rounds that paid the ready-list poll *)
}

let dispatchers : (int, t) Hashtbl.t = Hashtbl.create 16
let registry_lock = Mutex.create ()

let () =
  Engine.Lifecycle.on_reset (fun () ->
      Mutex.protect registry_lock (fun () -> Hashtbl.reset dispatchers))

let node t = t.dnode

let set_policy t p =
  (match p with
   | Static q ->
     if q.madio_quantum < 1 || q.sysio_quantum < 1 then
       invalid_arg "Na_core.set_policy: quanta must be >= 1"
   | Adaptive a ->
     if not (a.ewma_weight > 0.0 && a.ewma_weight <= 1.0) then
       invalid_arg "Na_core.set_policy: ewma_weight must be in (0, 1]";
     if a.min_quantum < 1 || a.max_quantum < a.min_quantum then
       invalid_arg "Na_core.set_policy: need 1 <= min_quantum <= max_quantum";
     if a.max_scan_gap < 1 then
       invalid_arg "Na_core.set_policy: max_scan_gap must be >= 1");
  t.pol <- p;
  t.scan_gap <- 1;
  t.rounds_since_scan <- 0;
  t.madio.ewma <- 0.0;
  t.sysio.ewma <- 0.0

let policy t = t.pol

let qstate t = function Madio_work -> t.madio | Sysio_work -> t.sysio

let set_admission t kind ~high ~low =
  if high < 1 || low < 0 || low > high then
    invalid_arg "Na_core.set_admission: need 0 <= low <= high, high >= 1";
  let q = qstate t kind in
  q.qhigh <- high;
  q.qlow <- low

let flow t action q =
  if Trace.on () then
    Trace.instant t.dnode
      (Padico_obs.Event.Flow
         { action; place = "na." ^ q.kname; bytes = Queue.length q.items })

(* Move parked low-priority work back to the live queue once the backlog
   has drained to the low watermark. *)
let readmit t q =
  if (not (Queue.is_empty q.deferred)) && Queue.length q.items <= q.qlow
  then begin
    while
      (not (Queue.is_empty q.deferred)) && Queue.length q.items < q.qhigh
    do
      Queue.push (Queue.pop q.deferred) q.items
    done;
    flow t "resume" q
  end

let run_item t q =
  match Queue.take_opt q.items with
  | None -> false
  | Some { work; posted_at } ->
    Stats.Counter.incr q.count;
    let queued_ns = Clock.now t.clk - posted_at in
    Stats.Summary.add q.wait (float_of_int queued_ns);
    (* The span covers the queueing interval: posted -> dispatched. *)
    if Trace.on () then
      Trace.complete t.dnode ~since:posted_at
        (Padico_obs.Event.Dispatch { kind = q.kname; queued_ns });
    (try work ()
     with e ->
       Log.err (fun m ->
           m "%s: dispatched handler raised %s"
             (Simnet.Node.name t.dnode)
             (Printexc.to_string e)));
    true

let sched_event t action subsystem value =
  if Trace.on () then
    Trace.instant t.dnode (Padico_obs.Event.Sched { action; subsystem; value })

(* Activity-driven quantum: track an EWMA of the useful work each
   subsystem yields per round and size its quantum to ~1.5x that, so a
   busy subsystem earns longer bursts (better batching) while an idle one
   shrinks back to [min_quantum] (better latency for the other side). *)
let quantum_of a ewma =
  let q = int_of_float (Float.ceil (ewma *. 1.5)) in
  max a.min_quantum (min a.max_quantum q)

let update_ewma a q drained =
  q.ewma <-
    (a.ewma_weight *. float_of_int drained)
    +. ((1.0 -. a.ewma_weight) *. q.ewma)

(* One charged select()-style pass over registered-but-quiet sockets.
   Only the adaptive policy models these: the legacy static path never
   scans an empty queue, exactly as before this scheduler existed. *)
let charge_idle_scan t a =
  Stats.Counter.incr t.polls_idle;
  sched_event t "scan" "sysio" t.scan_gap;
  Simnet.Node.cpu t.dnode Calib.sysio_poll_ns;
  t.rounds_since_scan <- 0;
  if a.idle_backoff then begin
    let g = min (t.scan_gap * 2) a.max_scan_gap in
    if g <> t.scan_gap then begin
      t.scan_gap <- g;
      sched_event t "backoff" "sysio" g
    end
  end

(* One adaptive interleaving round: MadIO first (SAN latency priority),
   then SysIO — a charged productive poll when readiness events are
   pending, otherwise the exponentially backed-off idle scan. *)
let adaptive_round t a =
  if not (Queue.is_empty t.madio.items) then begin
    let base = quantum_of a t.madio.ewma in
    let mq =
      if a.latency_boost then begin
        (* Latency-priority boost: pending SAN traffic drains entirely
           this round rather than waiting out extra rounds' poll costs. *)
        let pending = Queue.length t.madio.items in
        if pending > base then begin
          sched_event t "boost" "madio" pending;
          pending
        end
        else base
      end
      else base
    in
    let rec go k = if k < mq && run_item t t.madio then go (k + 1) else k in
    update_ewma a t.madio (go 0)
  end
  else update_ewma a t.madio 0;
  if not (Queue.is_empty t.sysio.items) then begin
    if Trace.on () then
      Trace.instant t.dnode (Padico_obs.Event.Poll { kind = "sysio" });
    Stats.Counter.incr t.polls_busy;
    Simnet.Node.cpu t.dnode Calib.sysio_poll_ns;
    let sq = quantum_of a t.sysio.ewma in
    let rec go k = if k < sq && run_item t t.sysio then go (k + 1) else k in
    update_ewma a t.sysio (go 0);
    (* A productive scan resets the backoff: the socket side is live. *)
    t.scan_gap <- 1;
    t.rounds_since_scan <- 0
  end
  else if t.sysio_interest > 0 then begin
    update_ewma a t.sysio 0;
    t.rounds_since_scan <- t.rounds_since_scan + 1;
    if t.rounds_since_scan >= t.scan_gap then charge_idle_scan t a
    else Stats.Counter.incr t.polls_saved
  end

(* Drain the ready list: one charged poll pass per round with readiness
   pending (the epoll_wait), then up to the SysIO quantum of sources. A
   source is popped and its queued flag cleared {e before} its drain runs,
   so events arriving mid-drain re-enqueue it — no lost wakeups; the flag
   guarantees at most one list entry per source — no duplicate dispatch.
   Idle sources are not on the list and cost nothing here. *)
let drain_ready t =
  if not (Queue.is_empty t.ready) then begin
    Stats.Counter.incr t.ready_polls;
    if Trace.on () then
      Trace.instant t.dnode (Padico_obs.Event.Poll { kind = "sysio" });
    Simnet.Node.cpu t.dnode Calib.sysio_poll_ns;
    let budget =
      match t.pol with
      | Static q -> q.sysio_quantum
      | Adaptive a -> max a.min_quantum (quantum_of a t.sysio.ewma)
    in
    let rec go k =
      if k < budget then
        match Queue.take_opt t.ready with
        | None -> ()
        | Some s ->
          s.s_queued <- false;
          if s.s_live then begin
            Stats.Counter.incr t.ready_drains;
            (try s.s_drain ()
             with e ->
               Log.err (fun m ->
                   m "%s: ready-source drain raised %s"
                     (Simnet.Node.name t.dnode)
                     (Printexc.to_string e)));
            go (k + 1)
          end
          else go k (* dead source: free slot, no charge *)
    in
    go 0
  end

(* The unique receipt loop: alternate between the two subsystems according
   to the policy, then sleep until new work is posted. *)
let dispatcher_loop t () =
  let rec wait_for_work () =
    readmit t t.madio;
    readmit t t.sysio;
    if
      Queue.is_empty t.madio.items
      && Queue.is_empty t.sysio.items
      && Queue.is_empty t.ready
    then begin
      Proc.suspend (fun resume -> t.waker <- Some resume);
      wait_for_work ()
    end
  in
  while true do
    wait_for_work ();
    (* One interleaving round. Scanning the socket subsystem costs a poll
       pass (select()-like); MadIO completion polling is cheap and charged
       inside the MadIO costs, keeping the MadIO-over-Madeleine overhead at
       its measured < 0.1 us. *)
    (match t.pol with
     | Static pol ->
       let rec drain q n = if n > 0 && run_item t q then drain q (n - 1) in
       if not (Queue.is_empty t.madio.items) then
         drain t.madio pol.madio_quantum;
       if not (Queue.is_empty t.sysio.items) then begin
         if Trace.on () then
           Trace.instant t.dnode (Padico_obs.Event.Poll { kind = "sysio" });
         Simnet.Node.cpu t.dnode Calib.sysio_poll_ns;
         drain t.sysio pol.sysio_quantum
       end
     | Adaptive a -> adaptive_round t a);
    drain_ready t;
    readmit t t.madio;
    readmit t t.sysio;
    (* Yield so co-located processes make progress between rounds. *)
    Proc.yield_on t.clk
  done

let make_queue node kname =
  let scope = Metrics.Node (Simnet.Node.name node) in
  let q =
    { kname; items = Queue.create (); deferred = Queue.create ();
      qhigh = max_int; qlow = max_int; peak = 0;
      count = Metrics.fresh_counter scope ("na." ^ kname ^ ".dispatched");
      wait = Metrics.fresh_summary scope ("na." ^ kname ^ ".wait_ns");
      deferred_c = Metrics.fresh_counter scope ("na." ^ kname ^ ".deferred");
      shed_c = Metrics.fresh_counter scope ("na." ^ kname ^ ".shed");
      ewma = 0.0 }
  in
  Metrics.gauge scope ("na." ^ kname ^ ".depth") (fun () ->
      float_of_int (Queue.length q.items));
  Metrics.gauge scope ("na." ^ kname ^ ".depth_peak") (fun () ->
      float_of_int q.peak);
  q

let get dnode =
  let id = Simnet.Node.uid dnode in
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt dispatchers id with
      | Some t -> t
      | None ->
        let scope = Metrics.Node (Simnet.Node.name dnode) in
        let t =
          { dnode; clk = Simnet.Node.clock dnode; pol = default_policy;
            madio = make_queue dnode "madio";
            sysio = make_queue dnode "sysio";
            waker = None;
            sysio_interest = 0; scan_gap = 1; rounds_since_scan = 0;
            polls_busy = Metrics.fresh_counter scope "na.sysio.polls_busy";
            polls_idle = Metrics.fresh_counter scope "na.sysio.polls_idle";
            polls_saved = Metrics.fresh_counter scope "na.sysio.polls_saved";
            iomodel = Scan; ready = Queue.create (); next_src = 0; nsources = 0;
            ready_drains = Metrics.fresh_counter scope "na.ready.drains";
            ready_polls = Metrics.fresh_counter scope "na.ready.polls" }
        in
        Metrics.gauge scope "na.ready.depth" (fun () ->
            float_of_int (Queue.length t.ready));
        Metrics.gauge scope "na.ready.sources" (fun () ->
            float_of_int t.nsources);
        Metrics.gauge scope "na.sched.scan_gap" (fun () ->
            float_of_int t.scan_gap);
        Metrics.gauge scope "na.madio.work_ewma" (fun () -> t.madio.ewma);
        Metrics.gauge scope "na.sysio.work_ewma" (fun () -> t.sysio.ewma);
        Hashtbl.replace dispatchers id t;
        ignore (Simnet.Node.spawn dnode ~name:"netaccess" (dispatcher_loop t));
        t)

let wake t =
  match t.waker with
  | Some resume ->
    t.waker <- None;
    resume ()
  | None -> ()

let admit t q item =
  Queue.push item q.items;
  if Queue.length q.items > q.peak then q.peak <- Queue.length q.items;
  wake t

let post ?(prio = Normal) t kind work =
  let q = qstate t kind in
  let item = { work; posted_at = Clock.now t.clk } in
  match prio with
  | Low when Queue.length q.items >= q.qhigh ->
    (* Overloaded: park the item rather than let the backlog grow. It runs
       once the live queue drains to the low watermark; meanwhile the
       producer behind it (a socket's receive buffer, say) fills up and
       pushes back on the wire. *)
    Queue.push item q.deferred;
    Stats.Counter.incr q.deferred_c;
    flow t "defer" q
  | Normal | Low -> admit t q item

let post_droppable t kind work =
  let q = qstate t kind in
  if Queue.length q.items >= q.qhigh then begin
    Stats.Counter.incr q.shed_c;
    flow t "shed" q;
    false
  end
  else begin
    admit t q { work; posted_at = Clock.now t.clk };
    true
  end

let dispatched t kind = Stats.Counter.value (qstate t kind).count

let queue_depth t kind = Queue.length (qstate t kind).items

let deferred_depth t kind = Queue.length (qstate t kind).deferred

let queue_peak t kind = (qstate t kind).peak

let shed_count t kind = Stats.Counter.value (qstate t kind).shed_c

let deferred_count t kind = Stats.Counter.value (qstate t kind).deferred_c

let mean_wait_ns t kind =
  let q = qstate t kind in
  if Stats.Summary.n q.wait = 0 then 0.0 else Stats.Summary.mean q.wait

(* -- adaptive-policy observability / SysIO interest --------------------- *)

let add_sysio_interest t n =
  t.sysio_interest <- max 0 (t.sysio_interest + n);
  if t.sysio_interest = n && n > 0 then
    (* First interest: start scanning eagerly again. *)
    t.scan_gap <- 1

let sysio_interest t = t.sysio_interest

let polls_busy t = Stats.Counter.value t.polls_busy

let polls_idle t = Stats.Counter.value t.polls_idle

let polls_saved t = Stats.Counter.value t.polls_saved

let scan_gap t = t.scan_gap

let work_ewma t kind = (qstate t kind).ewma

(* -- readiness-queue io model ------------------------------------------- *)

let set_io_model t m = t.iomodel <- m

let io_model t = t.iomodel

let register_source t ~drain =
  let s =
    { src_id = t.next_src; s_queued = false; s_live = true; s_drain = drain }
  in
  t.next_src <- t.next_src + 1;
  t.nsources <- t.nsources + 1;
  s

let unregister_source t s =
  if s.s_live then begin
    s.s_live <- false;
    t.nsources <- t.nsources - 1
    (* A queued entry stays on the list and is skipped (uncharged) at the
       next drain — O(1) unregister, like an epoll interest removal. *)
  end

let mark_ready t s =
  if s.s_live && not s.s_queued then begin
    s.s_queued <- true;
    Queue.push s t.ready;
    wake t
  end

let source_live s = s.s_live

let ready_depth t = Queue.length t.ready

let source_count t = t.nsources

let ready_drains t = Stats.Counter.value t.ready_drains

let ready_polls t = Stats.Counter.value t.ready_polls

let current_quantum t kind =
  match t.pol with
  | Static q ->
    (match kind with
     | Madio_work -> q.madio_quantum
     | Sysio_work -> q.sysio_quantum)
  | Adaptive a -> quantum_of a (qstate t kind).ewma
