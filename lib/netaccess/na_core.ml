module Sim = Engine.Sim
module Proc = Engine.Proc
module Stats = Engine.Stats
module Trace = Padico_obs.Trace
module Metrics = Padico_obs.Metrics

let log = Logs.Src.create "netaccess.core"

module Log = (val Logs.src_log log : Logs.LOG)

type kind = Madio_work | Sysio_work

type prio = Normal | Low

type policy = { madio_quantum : int; sysio_quantum : int }

let default_policy = { madio_quantum = 4; sysio_quantum = 4 }

type item = { work : unit -> unit; posted_at : int }

type queue_state = {
  kname : string;
  items : item Queue.t;
  deferred : item Queue.t; (* Low-prio items parked while overloaded *)
  mutable qhigh : int; (* defer/shed above this depth *)
  mutable qlow : int; (* re-admit deferred work at/below this depth *)
  mutable peak : int;
  count : Stats.Counter.t; (* dispatched *)
  wait : Stats.Summary.t; (* queueing time per item, ns *)
  deferred_c : Stats.Counter.t;
  shed_c : Stats.Counter.t;
}

type t = {
  dnode : Simnet.Node.t;
  sim : Sim.t;
  mutable pol : policy;
  madio : queue_state;
  sysio : queue_state;
  mutable waker : (unit -> unit) option; (* resumes the idle dispatcher *)
}

let dispatchers : (int, t) Hashtbl.t = Hashtbl.create 16

let node t = t.dnode

let set_policy t p =
  if p.madio_quantum < 1 || p.sysio_quantum < 1 then
    invalid_arg "Na_core.set_policy: quanta must be >= 1";
  t.pol <- p

let policy t = t.pol

let qstate t = function Madio_work -> t.madio | Sysio_work -> t.sysio

let set_admission t kind ~high ~low =
  if high < 1 || low < 0 || low > high then
    invalid_arg "Na_core.set_admission: need 0 <= low <= high, high >= 1";
  let q = qstate t kind in
  q.qhigh <- high;
  q.qlow <- low

let flow t action q =
  if Trace.on () then
    Trace.instant t.dnode
      (Padico_obs.Event.Flow
         { action; place = "na." ^ q.kname; bytes = Queue.length q.items })

(* Move parked low-priority work back to the live queue once the backlog
   has drained to the low watermark. *)
let readmit t q =
  if (not (Queue.is_empty q.deferred)) && Queue.length q.items <= q.qlow
  then begin
    while
      (not (Queue.is_empty q.deferred)) && Queue.length q.items < q.qhigh
    do
      Queue.push (Queue.pop q.deferred) q.items
    done;
    flow t "resume" q
  end

let run_item t q =
  match Queue.take_opt q.items with
  | None -> false
  | Some { work; posted_at } ->
    Stats.Counter.incr q.count;
    let queued_ns = Sim.now t.sim - posted_at in
    Stats.Summary.add q.wait (float_of_int queued_ns);
    (* The span covers the queueing interval: posted -> dispatched. *)
    if Trace.on () then
      Trace.complete t.dnode ~since:posted_at
        (Padico_obs.Event.Dispatch { kind = q.kname; queued_ns });
    (try work ()
     with e ->
       Log.err (fun m ->
           m "%s: dispatched handler raised %s"
             (Simnet.Node.name t.dnode)
             (Printexc.to_string e)));
    true

(* The unique receipt loop: alternate between the two subsystems according
   to the policy, then sleep until new work is posted. *)
let dispatcher_loop t () =
  let rec wait_for_work () =
    readmit t t.madio;
    readmit t t.sysio;
    if Queue.is_empty t.madio.items && Queue.is_empty t.sysio.items then begin
      Proc.suspend (fun resume -> t.waker <- Some resume);
      wait_for_work ()
    end
  in
  while true do
    wait_for_work ();
    (* One interleaving round. Scanning the socket subsystem costs a poll
       pass (select()-like); MadIO completion polling is cheap and charged
       inside the MadIO costs, keeping the MadIO-over-Madeleine overhead at
       its measured < 0.1 us. *)
    let rec drain q n = if n > 0 && run_item t q then drain q (n - 1) in
    if not (Queue.is_empty t.madio.items) then drain t.madio t.pol.madio_quantum;
    if not (Queue.is_empty t.sysio.items) then begin
      if Trace.on () then
        Trace.instant t.dnode (Padico_obs.Event.Poll { kind = "sysio" });
      Simnet.Node.cpu t.dnode Calib.sysio_poll_ns;
      drain t.sysio t.pol.sysio_quantum
    end;
    readmit t t.madio;
    readmit t t.sysio;
    (* Yield so co-located processes make progress between rounds. *)
    Proc.yield t.sim
  done

let make_queue node kname =
  let scope = Metrics.Node (Simnet.Node.name node) in
  let q =
    { kname; items = Queue.create (); deferred = Queue.create ();
      qhigh = max_int; qlow = max_int; peak = 0;
      count = Metrics.fresh_counter scope ("na." ^ kname ^ ".dispatched");
      wait = Metrics.fresh_summary scope ("na." ^ kname ^ ".wait_ns");
      deferred_c = Metrics.fresh_counter scope ("na." ^ kname ^ ".deferred");
      shed_c = Metrics.fresh_counter scope ("na." ^ kname ^ ".shed") }
  in
  Metrics.gauge scope ("na." ^ kname ^ ".depth") (fun () ->
      float_of_int (Queue.length q.items));
  Metrics.gauge scope ("na." ^ kname ^ ".depth_peak") (fun () ->
      float_of_int q.peak);
  q

let get dnode =
  let id = Simnet.Node.uid dnode in
  match Hashtbl.find_opt dispatchers id with
  | Some t -> t
  | None ->
    let t =
      { dnode; sim = Simnet.Node.sim dnode; pol = default_policy;
        madio = make_queue dnode "madio";
        sysio = make_queue dnode "sysio";
        waker = None }
    in
    Hashtbl.replace dispatchers id t;
    ignore (Simnet.Node.spawn dnode ~name:"netaccess" (dispatcher_loop t));
    t

let wake t =
  match t.waker with
  | Some resume ->
    t.waker <- None;
    resume ()
  | None -> ()

let admit t q item =
  Queue.push item q.items;
  if Queue.length q.items > q.peak then q.peak <- Queue.length q.items;
  wake t

let post ?(prio = Normal) t kind work =
  let q = qstate t kind in
  let item = { work; posted_at = Sim.now t.sim } in
  match prio with
  | Low when Queue.length q.items >= q.qhigh ->
    (* Overloaded: park the item rather than let the backlog grow. It runs
       once the live queue drains to the low watermark; meanwhile the
       producer behind it (a socket's receive buffer, say) fills up and
       pushes back on the wire. *)
    Queue.push item q.deferred;
    Stats.Counter.incr q.deferred_c;
    flow t "defer" q
  | Normal | Low -> admit t q item

let post_droppable t kind work =
  let q = qstate t kind in
  if Queue.length q.items >= q.qhigh then begin
    Stats.Counter.incr q.shed_c;
    flow t "shed" q;
    false
  end
  else begin
    admit t q { work; posted_at = Sim.now t.sim };
    true
  end

let dispatched t kind = Stats.Counter.value (qstate t kind).count

let queue_depth t kind = Queue.length (qstate t kind).items

let deferred_depth t kind = Queue.length (qstate t kind).deferred

let queue_peak t kind = (qstate t kind).peak

let shed_count t kind = Stats.Counter.value (qstate t kind).shed_c

let deferred_count t kind = Stats.Counter.value (qstate t kind).deferred_c

let mean_wait_ns t kind =
  let q = qstate t kind in
  if Stats.Summary.n q.wait = 0 then 0.0 else Stats.Summary.mean q.wait
