module Sim = Engine.Sim
module Proc = Engine.Proc
module Stats = Engine.Stats
module Trace = Padico_obs.Trace
module Metrics = Padico_obs.Metrics

let log = Logs.Src.create "netaccess.core"

module Log = (val Logs.src_log log : Logs.LOG)

type kind = Madio_work | Sysio_work

type policy = { madio_quantum : int; sysio_quantum : int }

let default_policy = { madio_quantum = 4; sysio_quantum = 4 }

type item = { work : unit -> unit; posted_at : int }

type queue_state = {
  kname : string;
  items : item Queue.t;
  count : Stats.Counter.t; (* dispatched *)
  wait : Stats.Summary.t; (* queueing time per item, ns *)
}

type t = {
  dnode : Simnet.Node.t;
  sim : Sim.t;
  mutable pol : policy;
  madio : queue_state;
  sysio : queue_state;
  mutable waker : (unit -> unit) option; (* resumes the idle dispatcher *)
}

let dispatchers : (int, t) Hashtbl.t = Hashtbl.create 16

let node t = t.dnode

let set_policy t p =
  if p.madio_quantum < 1 || p.sysio_quantum < 1 then
    invalid_arg "Na_core.set_policy: quanta must be >= 1";
  t.pol <- p

let policy t = t.pol

let qstate t = function Madio_work -> t.madio | Sysio_work -> t.sysio

let run_item t q =
  match Queue.take_opt q.items with
  | None -> false
  | Some { work; posted_at } ->
    Stats.Counter.incr q.count;
    let queued_ns = Sim.now t.sim - posted_at in
    Stats.Summary.add q.wait (float_of_int queued_ns);
    (* The span covers the queueing interval: posted -> dispatched. *)
    if Trace.on () then
      Trace.complete t.dnode ~since:posted_at
        (Padico_obs.Event.Dispatch { kind = q.kname; queued_ns });
    (try work ()
     with e ->
       Log.err (fun m ->
           m "%s: dispatched handler raised %s"
             (Simnet.Node.name t.dnode)
             (Printexc.to_string e)));
    true

(* The unique receipt loop: alternate between the two subsystems according
   to the policy, then sleep until new work is posted. *)
let dispatcher_loop t () =
  let rec wait_for_work () =
    if Queue.is_empty t.madio.items && Queue.is_empty t.sysio.items then begin
      Proc.suspend (fun resume -> t.waker <- Some resume);
      wait_for_work ()
    end
  in
  while true do
    wait_for_work ();
    (* One interleaving round. Scanning the socket subsystem costs a poll
       pass (select()-like); MadIO completion polling is cheap and charged
       inside the MadIO costs, keeping the MadIO-over-Madeleine overhead at
       its measured < 0.1 us. *)
    let rec drain q n = if n > 0 && run_item t q then drain q (n - 1) in
    if not (Queue.is_empty t.madio.items) then drain t.madio t.pol.madio_quantum;
    if not (Queue.is_empty t.sysio.items) then begin
      if Trace.on () then
        Trace.instant t.dnode (Padico_obs.Event.Poll { kind = "sysio" });
      Simnet.Node.cpu t.dnode Calib.sysio_poll_ns;
      drain t.sysio t.pol.sysio_quantum
    end;
    (* Yield so co-located processes make progress between rounds. *)
    Proc.yield t.sim
  done

let make_queue node kname =
  let scope = Metrics.Node (Simnet.Node.name node) in
  { kname; items = Queue.create ();
    count = Metrics.fresh_counter scope ("na." ^ kname ^ ".dispatched");
    wait = Metrics.fresh_summary scope ("na." ^ kname ^ ".wait_ns") }

let get dnode =
  let id = Simnet.Node.uid dnode in
  match Hashtbl.find_opt dispatchers id with
  | Some t -> t
  | None ->
    let t =
      { dnode; sim = Simnet.Node.sim dnode; pol = default_policy;
        madio = make_queue dnode "madio";
        sysio = make_queue dnode "sysio";
        waker = None }
    in
    Hashtbl.replace dispatchers id t;
    ignore (Simnet.Node.spawn dnode ~name:"netaccess" (dispatcher_loop t));
    t

let post t kind work =
  let q = qstate t kind in
  Queue.push { work; posted_at = Sim.now t.sim } q.items;
  match t.waker with
  | Some resume ->
    t.waker <- None;
    resume ()
  | None -> ()

let dispatched t kind = Stats.Counter.value (qstate t kind).count

let queue_depth t kind = Queue.length (qstate t kind).items

let mean_wait_ns t kind =
  let q = qstate t kind in
  if Stats.Summary.n q.wait = 0 then 0.0 else Stats.Summary.mean q.wait
