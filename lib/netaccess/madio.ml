module Bytebuf = Engine.Bytebuf
module Mad = Madeleine.Mad
module Stats = Engine.Stats
module Trace = Padico_obs.Trace
module Metrics = Padico_obs.Metrics

let log = Logs.Src.create "netaccess.madio"

module Log = (val Logs.src_log log : Logs.LOG)

let magic = 0xAD10

type lchannel = {
  owner : t;
  id : int;
  mutable recv : (src:int -> Bytebuf.t -> unit) option;
  mutable open_ : bool;
}

and t = {
  mio_mad : Mad.t;
  mio_node : Simnet.Node.t;
  core : Na_core.t;
  hw_chan : Mad.channel;
  lchannels : (int, lchannel) Hashtbl.t;
  (* In separate-header mode a header message announces the next payload
     message from the same source. *)
  pending_header : (int, int) Hashtbl.t; (* src -> logical channel *)
  mutable combining : bool;
  sent : Stats.Counter.t;
  received : Stats.Counter.t;
}

let instances : (int * int, t) Hashtbl.t = Hashtbl.create 16

let node t = t.mio_node
let mad t = t.mio_mad

let header_len = Calib.madio_header_bytes

let encode_header ~lchan ~len ~combined =
  let h = Bytebuf.create header_len in
  Bytebuf.set_u16 h 0 magic;
  Bytebuf.set_u16 h 2 lchan;
  Bytebuf.set_u32 h 4 len;
  Bytebuf.set_u8 h 8 (if combined then 1 else 0);
  h

let deliver t ~src ~lchan payload =
  match Hashtbl.find_opt t.lchannels lchan with
  | None ->
    Log.warn (fun m ->
        m "%s: message for closed logical channel %d dropped"
          (Simnet.Node.name t.mio_node) lchan)
  | Some lc ->
    Stats.Counter.incr t.received;
    if Trace.on () then
      Trace.instant t.mio_node
        (Padico_obs.Event.Madio_recv
           { lchannel = lchan; bytes = Bytebuf.length payload });
    (match lc.recv with
     | Some f ->
       (* Arbitrated delivery: through the NetAccess dispatcher. *)
       Na_core.post t.core Na_core.Madio_work (fun () -> f ~src payload)
     | None ->
       Log.warn (fun m ->
           m "%s: no receiver on logical channel %d"
             (Simnet.Node.name t.mio_node) lchan))

let handle_incoming t inc =
  let src = Mad.incoming_src inc in
  match Hashtbl.find_opt t.pending_header src with
  | Some lchan ->
    (* Separate-header mode: this whole message is the announced payload. *)
    Hashtbl.remove t.pending_header src;
    let payload = Mad.unpack inc (Mad.remaining inc) in
    Simnet.Node.cpu_async t.mio_node Calib.madio_separate_ns (fun () ->
        deliver t ~src ~lchan payload)
  | None ->
    let h = Mad.unpack inc ~mode:Mad.Receive_express header_len in
    if Bytebuf.get_u16 h 0 <> magic then
      Log.err (fun m -> m "MadIO: bad header magic, message dropped")
    else begin
      let lchan = Bytebuf.get_u16 h 2 in
      let len = Bytebuf.get_u32 h 4 in
      let combined = Bytebuf.get_u8 h 8 = 1 in
      if combined then begin
        let payload = Mad.unpack inc len in
        Simnet.Node.cpu_async t.mio_node Calib.madio_combined_ns (fun () ->
            deliver t ~src ~lchan payload)
      end
      else
        (* Header-only message: remember which channel the next message
           from this source belongs to. *)
        Hashtbl.replace t.pending_header src lchan
    end

let init m =
  let key = (Simnet.Node.uid (Mad.node m), Simnet.Segment.uid (Mad.segment m)) in
  match Hashtbl.find_opt instances key with
  | Some t -> t
  | None ->
    let hw_chan = Mad.open_channel m ~id:0 in
    let scope = Metrics.Node (Simnet.Node.name (Mad.node m)) in
    let t =
      { mio_mad = m; mio_node = Mad.node m; core = Na_core.get (Mad.node m);
        hw_chan; lchannels = Hashtbl.create 16;
        pending_header = Hashtbl.create 4; combining = true;
        sent = Metrics.fresh_counter scope "madio.sent";
        received = Metrics.fresh_counter scope "madio.received" }
    in
    Mad.set_recv hw_chan (fun inc -> handle_incoming t inc);
    Hashtbl.replace instances key t;
    t

let open_lchannel t ~id =
  if id < 0 || id > 0xffff then invalid_arg "Madio.open_lchannel: bad id";
  if Hashtbl.mem t.lchannels id then
    invalid_arg
      (Printf.sprintf "Madio.open_lchannel: channel %d already open" id);
  let lc = { owner = t; id; recv = None; open_ = true } in
  Hashtbl.replace t.lchannels id lc;
  lc

let close_lchannel lc =
  if lc.open_ then begin
    lc.open_ <- false;
    Hashtbl.remove lc.owner.lchannels lc.id
  end

let lchannel_id lc = lc.id

let lchannels_open t = Hashtbl.length t.lchannels

let set_recv lc f = lc.recv <- Some f

let sendv lc ~dst iov =
  if not lc.open_ then invalid_arg "Madio.sendv: logical channel closed";
  let t = lc.owner in
  let len = List.fold_left (fun acc b -> acc + Bytebuf.length b) 0 iov in
  Stats.Counter.incr t.sent;
  if Trace.on () then
    Trace.instant t.mio_node
      (Padico_obs.Event.Header
         { lchannel = lc.id; bytes = len; combined = t.combining });
  if t.combining then begin
    (* Header combining: the multiplexing header rides in the first packet
       of the payload message (one Madeleine message, one DMA post). *)
    let out = Mad.begin_packing t.hw_chan ~dst in
    Mad.pack out (encode_header ~lchan:lc.id ~len ~combined:true);
    List.iter (Mad.pack out) iov;
    Simnet.Node.cpu_async t.mio_node Calib.madio_combined_ns (fun () -> ());
    Mad.end_packing out
  end
  else begin
    (* Ablation: header as its own message — a full extra message through
       the whole driver stack. *)
    let hdr = Mad.begin_packing t.hw_chan ~dst in
    Mad.pack hdr (encode_header ~lchan:lc.id ~len ~combined:false);
    Mad.end_packing hdr;
    let out = Mad.begin_packing t.hw_chan ~dst in
    List.iter (Mad.pack out) iov;
    Simnet.Node.cpu_async t.mio_node Calib.madio_separate_ns (fun () -> ());
    Mad.end_packing out
  end

let send lc ~dst buf = sendv lc ~dst [ buf ]

let set_header_combining t v = t.combining <- v

let header_combining t = t.combining

let messages_sent t = Stats.Counter.value t.sent

let messages_received t = Stats.Counter.value t.received
