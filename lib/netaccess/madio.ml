module Bytebuf = Engine.Bytebuf
module Sim = Engine.Sim
module Mad = Madeleine.Mad
module Stats = Engine.Stats
module Trace = Padico_obs.Trace
module Metrics = Padico_obs.Metrics

let log = Logs.Src.create "netaccess.madio"

module Log = (val Logs.src_log log : Logs.LOG)

let magic = 0xAD10

(* Small-message aggregation configuration (see {!set_aggregation}). *)
type agg_cfg = {
  agg_threshold : int; (* messages strictly smaller coalesce *)
  agg_budget_ns : int; (* max queueing delay before a forced flush *)
  agg_max_batch : int; (* cap on batched payload+sublength bytes *)
  agg_wheel : bool; (* budget timers on the slotted timewheel *)
}

(* One pending coalescing batch for a (peer, logical channel) flow. *)
type batch = {
  b_dst : int;
  b_lchan : int;
  mutable b_parts : (Bytebuf.t list * int) list; (* (iov, len), newest first *)
  mutable b_bytes : int; (* payload bytes queued *)
  mutable b_count : int;
  mutable b_epoch : int; (* bumps on flush; stale budget timers no-op *)
}

type lchannel = {
  owner : t;
  id : int;
  mutable recv : (src:int -> Bytebuf.t -> unit) option;
  mutable open_ : bool;
  mutable manual_grant : bool;
  pending_rx : (int * Bytebuf.t) Queue.t;
      (* Messages that arrived on the open channel before [set_recv]
         installed a receiver — dispatch order is arbitrated, so a peer's
         first message can overtake the local registration. Flushed, in
         order, when the receiver appears. *)
}

and t = {
  mio_mad : Mad.t;
  mio_node : Simnet.Node.t;
  core : Na_core.t;
  hw_chan : Mad.channel;
  lchannels : (int, lchannel) Hashtbl.t;
  (* In separate-header mode a header message announces the next payload
     message from the same source. *)
  pending_header : (int, int) Hashtbl.t; (* src -> logical channel *)
  mutable combining : bool;
  (* Credit-based flow control (0 = disabled). Credits count payload
     bytes per (peer, logical channel) flow; grants ride in the combined
     header, so steady bidirectional traffic pays zero extra messages. *)
  mutable window : int;
  credits : (int * int, int ref) Hashtbl.t; (* (dst, lchan) -> sendable *)
  grants : (int * int, int ref) Hashtbl.t; (* (src, lchan) -> ungranted *)
  credit_waiters : (int * int, (int * (unit -> unit)) Queue.t) Hashtbl.t;
      (* (min space required, one-shot callback) *)
  (* Small-message aggregation (None = disabled, the default). *)
  mutable agg : agg_cfg option;
  aggq : (int * int, batch) Hashtbl.t; (* (dst, lchan) -> pending batch *)
  sent : Stats.Counter.t;
  received : Stats.Counter.t;
  credit_msgs : Stats.Counter.t;
  credit_stalls : Stats.Counter.t;
  batched : Stats.Counter.t; (* messages that went through a batch *)
  batches : Stats.Counter.t; (* flushes (wire packets for batched msgs) *)
  pkts_saved : Stats.Counter.t; (* packets avoided: sum of (count - 1) *)
}

let instances : (int * int, t) Hashtbl.t = Hashtbl.create 16
let registry_lock = Mutex.create ()

let () =
  Engine.Lifecycle.on_reset (fun () ->
      Mutex.protect registry_lock (fun () -> Hashtbl.reset instances))

let node t = t.mio_node
let mad t = t.mio_mad

let header_len = Calib.madio_header_bytes

(* Header layout (14 bytes): magic u16 | lchannel u16 | length u32 |
   combined u8 | credit u32 | count u8. [count] is the aggregation
   sub-message count: 0 (and 1) mean a plain single-message payload —
   the pre-aggregation wire format, whose count byte was the spare zero
   byte — while count >= 2 announces a batch of [u16 sublen | bytes]
   records. Pooled headers come back dirty, so every byte is written
   explicitly here. *)
let encode_header ?(pooled = false) ~lchan ~len ~combined ~credit ~count () =
  let h =
    if pooled then Bytebuf.Pool.alloc header_len
    else Bytebuf.create header_len
  in
  Bytebuf.set_u16 h 0 magic;
  Bytebuf.set_u16 h 2 lchan;
  Bytebuf.set_u32 h 4 len;
  Bytebuf.set_u8 h 8 (if combined then 1 else 0);
  Bytebuf.set_u32 h 9 credit;
  Bytebuf.set_u8 h 13 count;
  h

(* -- credit bookkeeping ------------------------------------------------- *)

let enabled t = t.window > 0

let cell tbl key ~init =
  match Hashtbl.find_opt tbl key with
  | Some r -> r
  | None ->
    let r = ref init in
    Hashtbl.replace tbl key r;
    r

(* Sender-side balance for the flow to [dst] on [lchan]; starts at the
   local window (configurations are assumed symmetric). *)
let credit_cell t ~dst ~lchan = cell t.credits (dst, lchan) ~init:t.window

let grant_cell t ~src ~lchan = cell t.grants (src, lchan) ~init:0

let flow_event t action ~lchan bytes =
  if Trace.on () then
    Trace.instant t.mio_node
      (Padico_obs.Event.Flow
         { action; place = Printf.sprintf "madio.lchan%d" lchan; bytes })

(* Take the accumulated grant for the reverse flow, to piggyback it on an
   outgoing header. *)
let take_grant t ~dst ~lchan =
  if not (enabled t) then 0
  else begin
    let g = grant_cell t ~src:dst ~lchan in
    let v = !g in
    g := 0;
    v
  end

let credit_arrived t ~src ~lchan n =
  if n > 0 && enabled t then begin
    let c = credit_cell t ~dst:src ~lchan in
    c := !c + n;
    flow_event t "credit.grant" ~lchan n;
    match Hashtbl.find_opt t.credit_waiters (src, lchan) with
    | None -> ()
    | Some q ->
      (* One-shot waiters: run those whose space threshold is now met
         (re-registration re-checks); keep the rest parked — waking a
         waiter below its threshold would spin it in a notify loop. *)
      let keep = Queue.create () in
      while not (Queue.is_empty q) do
        let ((min_space, f) as w) = Queue.pop q in
        if !c >= min_space then f () else Queue.push w keep
      done;
      Queue.transfer keep q
  end

(* -- small-message aggregation ------------------------------------------ *)

let agg_event t action ~lchan ~msgs ~bytes =
  if Trace.on () then
    Trace.instant t.mio_node
      (Padico_obs.Event.Agg { action; lchannel = lchan; msgs; bytes })

(* Emit one combined-header message. [count] is the header's sub-message
   count: 0 = plain single message (legacy wire format), >= 2 = batch.
   When a payload follows, the header rides in a pooled slab: the payload
   pieces in the same driver fragment force the gather copy, so the slab
   is dead at send completion and reclaimed in [on_tx]. A payload-less
   header (credit-only) would travel by reference, so it takes a fresh
   buffer instead. *)
let emit_combined t ~lchan ~dst ~len ~credit ~count iov =
  let pooled = len > 0 in
  let hdr =
    encode_header ~pooled ~lchan ~len ~combined:true ~credit ~count ()
  in
  let out = Mad.begin_packing t.hw_chan ~dst in
  Mad.pack out hdr;
  List.iter (Mad.pack out) iov;
  Simnet.Node.cpu_async t.mio_node Calib.madio_combined_ns (fun () -> ());
  if pooled then (
    try Mad.end_packing ~on_tx:(fun () -> Bytebuf.Pool.release hdr) out
    with e ->
      Bytebuf.Pool.release hdr;
      raise e)
  else Mad.end_packing out

let batch_cell t ~dst ~lchan =
  match Hashtbl.find_opt t.aggq (dst, lchan) with
  | Some b -> b
  | None ->
    let b =
      { b_dst = dst; b_lchan = lchan; b_parts = []; b_bytes = 0;
        b_count = 0; b_epoch = 0 }
    in
    Hashtbl.replace t.aggq (dst, lchan) b;
    b

(* Push a pending batch onto the wire as one Madeleine packet. A batch of
   one degenerates to the legacy single-message format — aggregation only
   changes the wire format when it actually saves a packet. Any grant
   accumulated for the reverse flow rides the batch header for free. *)
let flush_batch t b ~reason =
  if b.b_count > 0 then begin
    let parts = List.rev b.b_parts in
    let count = b.b_count and bytes = b.b_bytes in
    b.b_parts <- [];
    b.b_count <- 0;
    b.b_bytes <- 0;
    b.b_epoch <- b.b_epoch + 1;
    let lchan = b.b_lchan and dst = b.b_dst in
    agg_event t ("flush." ^ reason) ~lchan ~msgs:count ~bytes;
    Stats.Counter.incr t.batches;
    let credit = take_grant t ~dst ~lchan in
    try
      if count = 1 then begin
        let iov, len = List.hd parts in
        emit_combined t ~lchan ~dst ~len ~credit ~count:0 iov
      end
      else begin
        let total = bytes + (2 * count) in
        let hdr =
          encode_header ~pooled:true ~lchan ~len:total ~combined:true
            ~credit ~count ()
        in
        let subs = Bytebuf.Pool.alloc (2 * count) in
        let out = Mad.begin_packing t.hw_chan ~dst in
        Mad.pack out hdr;
        List.iteri
          (fun i (iov, len) ->
             let p = Bytebuf.sub subs (2 * i) 2 in
             Bytebuf.set_u16 p 0 len;
             Mad.pack out p;
             List.iter (Mad.pack out) iov)
          parts;
        Simnet.Node.cpu_async t.mio_node
          (Calib.madio_combined_ns + (count * Calib.madio_agg_permsg_ns))
          (fun () -> ());
        (try
           Mad.end_packing
             ~on_tx:(fun () ->
                 Bytebuf.Pool.release hdr;
                 Bytebuf.Pool.release subs)
             out
         with e ->
           Bytebuf.Pool.release hdr;
           Bytebuf.Pool.release subs;
           raise e);
        Stats.Counter.add t.pkts_saved (count - 1)
      end
    with Mad.Link_down _ ->
      (* Fail-fast SAN semantics: the batch is dropped wholesale, exactly
         like a message in flight when the carrier drops; the link watcher
         tears down the users above. *)
      ()
  end

let flush_pending t ~dst ~lchan ~reason =
  match Hashtbl.find_opt t.aggq (dst, lchan) with
  | Some b -> flush_batch t b ~reason
  | None -> ()

let flush_all t =
  Hashtbl.iter (fun _ b -> flush_batch t b ~reason:"explicit") t.aggq

(* Queue the accumulated grant and flush it explicitly when it gets large.
   Normally grants piggyback on reverse traffic for free; the explicit
   credit-only message (no payload) is the fallback for one-way flows, sent
   at half-window so the sender never quite runs dry. *)
let rec add_grant t lc ~src n =
  if n > 0 && enabled t then begin
    let g = grant_cell t ~src ~lchan:lc.id in
    g := !g + n;
    if !g >= t.window / 2 then send_credit_only t lc ~dst:src
  end

and send_credit_only t lc ~dst =
  match Hashtbl.find_opt t.aggq (dst, lc.id) with
  | Some b when b.b_count > 0 ->
    (* A pending batch is the cheapest vehicle: the grant rides its
       combined header, costing zero extra messages. *)
    flush_batch t b ~reason:"credit"
  | _ ->
    let credit = take_grant t ~dst ~lchan:lc.id in
    if credit > 0 then begin
      Stats.Counter.incr t.credit_msgs;
      let out = Mad.begin_packing t.hw_chan ~dst in
      Mad.pack out
        (encode_header ~lchan:lc.id ~len:0 ~combined:true ~credit ~count:0 ());
      Simnet.Node.cpu_async t.mio_node Calib.madio_combined_ns (fun () -> ());
      Mad.end_packing out
    end

let deliver t ~src ~lchan payload =
  match Hashtbl.find_opt t.lchannels lchan with
  | None ->
    Log.warn (fun m ->
        m "%s: message for closed logical channel %d dropped"
          (Simnet.Node.name t.mio_node) lchan)
  | Some lc ->
    Stats.Counter.incr t.received;
    if Trace.on () then
      Trace.instant t.mio_node
        (Padico_obs.Event.Madio_recv
           { lchannel = lchan; bytes = Bytebuf.length payload });
    (match lc.recv with
     | Some f ->
       (* Arbitrated delivery: through the NetAccess dispatcher. In the
          default (automatic) grant mode the credit returns once the
          dispatcher has drained the message — so a backed-up dispatcher
          withholds credit and stalls the sender. Manual-grant channels
          (vl_madio) return credit themselves as the application reads. *)
       Na_core.post t.core Na_core.Madio_work (fun () ->
           f ~src payload;
           if not lc.manual_grant then
             add_grant t lc ~src (Bytebuf.length payload))
     | None -> Queue.push (src, payload) lc.pending_rx)

let handle_incoming t inc =
  let src = Mad.incoming_src inc in
  match Hashtbl.find_opt t.pending_header src with
  | Some lchan ->
    (* Separate-header mode: this whole message is the announced payload. *)
    Hashtbl.remove t.pending_header src;
    let payload = Mad.unpack inc (Mad.remaining inc) in
    Simnet.Node.cpu_async t.mio_node Calib.madio_separate_ns (fun () ->
        deliver t ~src ~lchan payload)
  | None ->
    let h = Mad.unpack inc ~mode:Mad.Receive_express header_len in
    if Bytebuf.get_u16 h 0 <> magic then
      Log.err (fun m -> m "MadIO: bad header magic, message dropped")
    else begin
      let lchan = Bytebuf.get_u16 h 2 in
      let len = Bytebuf.get_u32 h 4 in
      let combined = Bytebuf.get_u8 h 8 = 1 in
      credit_arrived t ~src ~lchan (Bytebuf.get_u32 h 9);
      if combined then begin
        if len = 0 then
          (* Credit-only message: the header already did its job. *)
          ()
        else begin
          let count = Bytebuf.get_u8 h 13 in
          let payload = Mad.unpack inc len in
          if count <= 1 then
            Simnet.Node.cpu_async t.mio_node Calib.madio_combined_ns (fun () ->
                deliver t ~src ~lchan payload)
          else
            (* Aggregated batch: walk the [u16 sublen | bytes] records,
               delivering zero-copy sub-slices of the one reassembled
               payload, in their queueing order. *)
            Simnet.Node.cpu_async t.mio_node
              (Calib.madio_combined_ns + (count * Calib.madio_agg_permsg_ns))
              (fun () ->
                 let pos = ref 0 in
                 let ok = ref true in
                 for _ = 1 to count do
                   if !ok then
                     if !pos + 2 > len then ok := false
                     else begin
                       let sl = Bytebuf.get_u16 payload !pos in
                       if !pos + 2 + sl > len then ok := false
                       else begin
                         deliver t ~src ~lchan
                           (Bytebuf.sub payload (!pos + 2) sl);
                         pos := !pos + 2 + sl
                       end
                     end
                 done;
                 if not !ok then
                   Log.err (fun m ->
                       m "MadIO: malformed aggregated batch from %d dropped"
                         src))
        end
      end
      else
        (* Header-only message: remember which channel the next message
           from this source belongs to. *)
        Hashtbl.replace t.pending_header src lchan
    end

(* The buffer pool is process-global; register its reuse gauges once. *)
let pool_metrics_registered = ref false

let init m =
  let key = (Simnet.Node.uid (Mad.node m), Simnet.Segment.uid (Mad.segment m)) in
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt instances key with
      | Some t -> t
      | None ->
        let hw_chan = Mad.open_channel m ~id:0 in
        let scope = Metrics.Node (Simnet.Node.name (Mad.node m)) in
        let t =
          { mio_mad = m; mio_node = Mad.node m; core = Na_core.get (Mad.node m);
            hw_chan; lchannels = Hashtbl.create 16;
            pending_header = Hashtbl.create 4; combining = true;
            window = 0; credits = Hashtbl.create 8; grants = Hashtbl.create 8;
            credit_waiters = Hashtbl.create 8;
            agg = None; aggq = Hashtbl.create 8;
            sent = Metrics.fresh_counter scope "madio.sent";
            received = Metrics.fresh_counter scope "madio.received";
            credit_msgs = Metrics.fresh_counter scope "madio.credit_msgs";
            credit_stalls = Metrics.fresh_counter scope "madio.credit_stalls";
            batched = Metrics.fresh_counter scope "madio.agg_messages";
            batches = Metrics.fresh_counter scope "madio.agg_batches";
            pkts_saved = Metrics.fresh_counter scope "madio.agg_packets_saved" }
        in
        if not !pool_metrics_registered then begin
          pool_metrics_registered := true;
          Metrics.gauge Metrics.Global "bytebuf.pool_hits" (fun () ->
              float_of_int (Bytebuf.Pool.pool_hits ()));
          Metrics.gauge Metrics.Global "bytebuf.pool_misses" (fun () ->
              float_of_int (Bytebuf.Pool.pool_misses ()))
        end;
        Mad.set_recv hw_chan (fun inc -> handle_incoming t inc);
        Hashtbl.replace instances key t;
        t)

let open_lchannel t ~id =
  if id < 0 || id > 0xffff then invalid_arg "Madio.open_lchannel: bad id";
  if Hashtbl.mem t.lchannels id then
    invalid_arg
      (Printf.sprintf "Madio.open_lchannel: channel %d already open" id);
  let lc =
    { owner = t; id; recv = None; open_ = true; manual_grant = false;
      pending_rx = Queue.create () }
  in
  Hashtbl.replace t.lchannels id lc;
  lc

let close_lchannel lc =
  if lc.open_ then begin
    let t = lc.owner in
    (* Closing must not strand coalesced messages. *)
    Hashtbl.iter
      (fun _ b -> if b.b_lchan = lc.id then flush_batch t b ~reason:"explicit")
      t.aggq;
    lc.open_ <- false;
    Hashtbl.remove t.lchannels lc.id
  end

let lchannel_id lc = lc.id

let lchannels_open t = Hashtbl.length t.lchannels

let set_recv lc f =
  lc.recv <- Some f;
  let t = lc.owner in
  while not (Queue.is_empty lc.pending_rx) do
    let src, payload = Queue.pop lc.pending_rx in
    Na_core.post t.core Na_core.Madio_work (fun () ->
        f ~src payload;
        if not lc.manual_grant then add_grant t lc ~src (Bytebuf.length payload))
  done

(* Coalesce one sub-threshold message into the flow's pending batch; the
   first message of a batch arms the latency-budget timer. The timer is
   epoch-guarded: a flush for any other reason bumps the epoch, so a
   stale timer firing into a newer batch is a no-op. *)
let queue_batched t lc ~dst iov len a =
  let b = batch_cell t ~dst ~lchan:lc.id in
  if
    b.b_count >= 255
    || (b.b_count > 0
        && b.b_bytes + len + (2 * (b.b_count + 1)) > a.agg_max_batch)
  then flush_batch t b ~reason:"size";
  let first = b.b_count = 0 in
  b.b_parts <- (iov, len) :: b.b_parts;
  b.b_count <- b.b_count + 1;
  b.b_bytes <- b.b_bytes + len;
  Stats.Counter.incr t.batched;
  agg_event t "queue" ~lchan:lc.id ~msgs:b.b_count ~bytes:b.b_bytes;
  if first then begin
    let epoch = b.b_epoch in
    let fire () = if b.b_epoch = epoch then flush_batch t b ~reason:"budget" in
    (* [agg_wheel] trades exact budget expiry for one engine event per
       occupied wheel slot (the deadline rounds up to slot granularity) —
       an edge gateway with thousands of open batches wants that; the
       default keeps the heap timer and the pinned event stream. *)
    if a.agg_wheel then
      ignore
        (Padico_fault.Timewheel.arm
           (Padico_fault.Timewheel.for_clock (Simnet.Node.clock t.mio_node))
           ~after_ns:a.agg_budget_ns fire)
    else Sim.after (Simnet.Node.sim t.mio_node) a.agg_budget_ns fire
  end

let sendv lc ~dst iov =
  if not lc.open_ then invalid_arg "Madio.sendv: logical channel closed";
  let t = lc.owner in
  let len = List.fold_left (fun acc b -> acc + Bytebuf.length b) 0 iov in
  Stats.Counter.incr t.sent;
  if Trace.on () then
    Trace.instant t.mio_node
      (Padico_obs.Event.Header
         { lchannel = lc.id; bytes = len; combined = t.combining });
  (* Consume sender credit. Enforcement is soft — sendv itself never
     blocks or fails (control traffic must always get through) — so the
     balance can dip negative; polite bulk senders consult [send_space]
     first and wait on [on_credit]. Batched messages consume credit at
     queueing time: the wire packet may be deferred, the window debt is
     not. *)
  if enabled t then begin
    let c = credit_cell t ~dst ~lchan:lc.id in
    if !c < len then begin
      Stats.Counter.incr t.credit_stalls;
      flow_event t "credit.stall" ~lchan:lc.id (len - !c)
    end;
    c := !c - len
  end;
  match t.agg with
  | Some a when t.combining && len > 0 && len < a.agg_threshold ->
    queue_batched t lc ~dst iov len a
  | agg ->
    (* An over-threshold message flushes the flow's pending batch first,
       so aggregation never reorders messages within a logical channel. *)
    (match agg with
     | Some _ -> flush_pending t ~dst ~lchan:lc.id ~reason:"large"
     | None -> ());
    let credit = take_grant t ~dst ~lchan:lc.id in
    try
      if t.combining then
        (* Header combining: the multiplexing header rides in the first
           packet of the payload message (one Madeleine message, one DMA
           post). *)
        emit_combined t ~lchan:lc.id ~dst ~len ~credit ~count:0 iov
      else begin
        (* Ablation: header as its own message — a full extra message
           through the whole driver stack. *)
        let hdr = Mad.begin_packing t.hw_chan ~dst in
        Mad.pack hdr
          (encode_header ~lchan:lc.id ~len ~combined:false ~credit ~count:0
             ());
        Mad.end_packing hdr;
        let out = Mad.begin_packing t.hw_chan ~dst in
        List.iter (Mad.pack out) iov;
        Simnet.Node.cpu_async t.mio_node Calib.madio_separate_ns
          (fun () -> ());
        Mad.end_packing out
      end
    with Mad.Link_down _ ->
      (* Same fail-fast drop as [flush_batch]: the message vanishes with
         the carrier and the link watcher tears down the users above.
         Without this the exception escapes a scheduler callback and
         aborts the whole run instead of failing one flow. *)
      ()

let send lc ~dst buf = sendv lc ~dst [ buf ]

(* -- credit API --------------------------------------------------------- *)

let set_credit_window t n =
  if n < 0 then invalid_arg "Madio.set_credit_window: negative window";
  t.window <- n;
  Hashtbl.reset t.credits;
  Hashtbl.reset t.grants;
  if n > 0 then begin
    let scope = Metrics.Node (Simnet.Node.name t.mio_node) in
    Metrics.gauge scope "madio.credit_window" (fun () ->
        float_of_int t.window);
    Metrics.gauge scope "madio.send_space_min" (fun () ->
        Hashtbl.fold (fun _ c acc -> Float.min acc (float_of_int !c))
          t.credits (float_of_int t.window))
  end

let credit_window t = t.window

let send_space lc ~dst =
  let t = lc.owner in
  if not (enabled t) then max_int
  else max 0 !(credit_cell t ~dst ~lchan:lc.id)

let on_credit lc ~dst ?(min_space = 1) f =
  if min_space < 1 then invalid_arg "Madio.on_credit: min_space must be >= 1";
  let t = lc.owner in
  if (not (enabled t)) || send_space lc ~dst >= min_space then f ()
  else begin
    let q =
      match Hashtbl.find_opt t.credit_waiters (dst, lc.id) with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.replace t.credit_waiters (dst, lc.id) q;
        q
    in
    Queue.push (min_space, f) q
  end

let set_manual_grant lc v = lc.manual_grant <- v

let grant lc ~src n =
  if n < 0 then invalid_arg "Madio.grant: negative grant";
  add_grant lc.owner lc ~src n

let credit_stalls t = Stats.Counter.value t.credit_stalls

let credit_messages t = Stats.Counter.value t.credit_msgs

let set_header_combining t v =
  (* Pending batches assume the combined wire format: push them out under
     the format they were queued for before switching. *)
  if not v then flush_all t;
  t.combining <- v

let header_combining t = t.combining

let messages_sent t = Stats.Counter.value t.sent

let messages_received t = Stats.Counter.value t.received

(* -- aggregation API ---------------------------------------------------- *)

let set_aggregation t ?(threshold = Calib.madio_agg_threshold_bytes)
    ?(budget_ns = Calib.madio_agg_budget_ns)
    ?(max_batch = Calib.madio_agg_max_batch_bytes) ?(wheel = false) on =
  if on then begin
    if threshold < 2 || threshold > 0xffff then
      invalid_arg "Madio.set_aggregation: threshold must be in [2, 65535]";
    if budget_ns < 0 then
      invalid_arg "Madio.set_aggregation: negative budget";
    if max_batch < threshold + 2 then
      invalid_arg "Madio.set_aggregation: max_batch must exceed threshold + 2";
    t.agg <-
      Some
        { agg_threshold = threshold; agg_budget_ns = budget_ns;
          agg_max_batch = max_batch; agg_wheel = wheel }
  end
  else begin
    flush_all t;
    t.agg <- None
  end

let aggregation_enabled t = t.agg <> None

let flush lc ~dst =
  flush_pending lc.owner ~dst ~lchan:lc.id ~reason:"explicit"

let messages_batched t = Stats.Counter.value t.batched

let batches_sent t = Stats.Counter.value t.batches

let packets_saved t = Stats.Counter.value t.pkts_saved
