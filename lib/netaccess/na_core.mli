(** NetAccess core: the per-node arbitration dispatcher.

    The paper's arbitration layer provides "a consistent, reentrant and
    multiplexed access to every networking resource": all network events of
    a node — MadIO message arrivals and SysIO socket readiness — are funneled
    through a {e single} dispatcher process, so middleware systems never poll
    competitively, never race, and never starve each other. The interleaving
    between the two subsystems is a user-tunable policy ("to give more
    priority to system sockets or high performance network depending on the
    application").

    Work items posted here must be {e non-blocking} (callback-based, à la
    Active Message, as the paper prescribes): an item that suspends would
    stall the whole node's network dispatch. *)

type t

type kind = Madio_work | Sysio_work

type prio = Normal | Low
(** Admission class. [Low] work (bulk socket readiness, droppable
    datagrams) is deferred when the queue is over its high watermark;
    [Normal] work is always admitted. *)

type policy = {
  madio_quantum : int;  (** MadIO items dispatched per round *)
  sysio_quantum : int;  (** SysIO items dispatched per round *)
}

val default_policy : policy

val get : Simnet.Node.t -> t
(** The node's dispatcher; created (and its process spawned) on first use. *)

val node : t -> Simnet.Node.t

val set_policy : t -> policy -> unit
val policy : t -> policy

val post : ?prio:prio -> t -> kind -> (unit -> unit) -> unit
(** Enqueue a work item; the dispatcher wakes if idle. Exceptions raised by
    items are caught and logged, never propagated.

    With [~prio:Low] (default [Normal]) and the queue at or above its high
    watermark, the item is {e deferred} to a side queue instead, and only
    re-admitted once the live queue drains to the low watermark — never
    dropped, but arbitrarily delayed under overload. *)

val post_droppable : t -> kind -> (unit -> unit) -> bool
(** Like [post], but when the queue is at or above its high watermark the
    item is {e shed}: dropped on the floor ([false] returned, shed counter
    bumped, [flow.shed] traced). Use only for work whose loss the protocol
    already tolerates (e.g. unreliable datagram delivery). *)

val set_admission : t -> kind -> high:int -> low:int -> unit
(** Queue-depth watermarks (in items) for defer/shed admission control.
    Default: unbounded (no deferral, no shedding). Raises
    [Invalid_argument] unless [0 <= low <= high] and [high >= 1]. *)

val dispatched : t -> kind -> int
(** Items dispatched so far (fairness observability, experiment E6). *)

val queue_depth : t -> kind -> int

val deferred_depth : t -> kind -> int
(** Low-priority items currently parked by admission control. *)

val queue_peak : t -> kind -> int
(** Highest live-queue depth ever observed. *)

val shed_count : t -> kind -> int

val deferred_count : t -> kind -> int
(** Total items ever shed / deferred by admission control. *)

val mean_wait_ns : t -> kind -> float
(** Average virtual time items of [kind] spent queued before dispatch. *)
