(** NetAccess core: the per-node arbitration dispatcher.

    The paper's arbitration layer provides "a consistent, reentrant and
    multiplexed access to every networking resource": all network events of
    a node — MadIO message arrivals and SysIO socket readiness — are funneled
    through a {e single} dispatcher process, so middleware systems never poll
    competitively, never race, and never starve each other. The interleaving
    between the two subsystems is a user-tunable policy ("to give more
    priority to system sockets or high performance network depending on the
    application").

    Work items posted here must be {e non-blocking} (callback-based, à la
    Active Message, as the paper prescribes): an item that suspends would
    stall the whole node's network dispatch. *)

type t

type kind = Madio_work | Sysio_work

type prio = Normal | Low
(** Admission class. [Low] work (bulk socket readiness, droppable
    datagrams) is deferred when the queue is over its high watermark;
    [Normal] work is always admitted. *)

type quanta = {
  madio_quantum : int;  (** MadIO items dispatched per round *)
  sysio_quantum : int;  (** SysIO items dispatched per round *)
}

type adaptive = {
  ewma_weight : float;
      (** Weight of the newest work sample in the per-subsystem EWMA,
          in (0, 1]. *)
  min_quantum : int;  (** Quantum floor (>= 1). *)
  max_quantum : int;  (** Quantum ceiling (>= min_quantum). *)
  idle_backoff : bool;
      (** Exponentially back off the charged SysIO scan while watched
          sockets stay quiet ([false] = eager: scan every round). *)
  max_scan_gap : int;
      (** Backoff ceiling, in rounds between idle scans (>= 1). *)
  latency_boost : bool;
      (** Drain all pending MadIO work in the current round (SAN traffic
          never waits out extra rounds' poll costs). *)
}

type policy =
  | Static of quanta
      (** The fixed round-robin interleaving. The default
          [Static {madio_quantum = 4; sysio_quantum = 4}] is
          byte-identical to the pre-adaptive dispatcher: same costs, same
          event stream, same timings. *)
  | Adaptive of adaptive
      (** Activity-driven interleaving: per-subsystem EWMA of useful work
          per round sizes the quanta; the expensive select()-like SysIO
          scan is charged even when sockets are quiet (modelling the real
          receipt loop) but exponentially backed off, with posts waking
          the dispatcher directly (wake-on-post) so backing off never
          delays delivery. *)

val default_policy : policy
(** [Static {madio_quantum = 4; sysio_quantum = 4}]. *)

val default_quanta : quanta

val default_adaptive : adaptive
(** [{ewma_weight = 0.25; min_quantum = 1; max_quantum = 64;
    idle_backoff = true; max_scan_gap = 64; latency_boost = true}]. *)

val get : Simnet.Node.t -> t
(** The node's dispatcher; created (and its process spawned) on first use. *)

val node : t -> Simnet.Node.t

val set_policy : t -> policy -> unit
val policy : t -> policy

val post : ?prio:prio -> t -> kind -> (unit -> unit) -> unit
(** Enqueue a work item; the dispatcher wakes if idle. Exceptions raised by
    items are caught and logged, never propagated.

    With [~prio:Low] (default [Normal]) and the queue at or above its high
    watermark, the item is {e deferred} to a side queue instead, and only
    re-admitted once the live queue drains to the low watermark — never
    dropped, but arbitrarily delayed under overload. *)

val post_droppable : t -> kind -> (unit -> unit) -> bool
(** Like [post], but when the queue is at or above its high watermark the
    item is {e shed}: dropped on the floor ([false] returned, shed counter
    bumped, [flow.shed] traced). Use only for work whose loss the protocol
    already tolerates (e.g. unreliable datagram delivery). *)

val set_admission : t -> kind -> high:int -> low:int -> unit
(** Queue-depth watermarks (in items) for defer/shed admission control.
    Default: unbounded (no deferral, no shedding). Raises
    [Invalid_argument] unless [0 <= low <= high] and [high >= 1]. *)

val dispatched : t -> kind -> int
(** Items dispatched so far (fairness observability, experiment E6). *)

val queue_depth : t -> kind -> int

val deferred_depth : t -> kind -> int
(** Low-priority items currently parked by admission control. *)

val queue_peak : t -> kind -> int
(** Highest live-queue depth ever observed. *)

val shed_count : t -> kind -> int

val deferred_count : t -> kind -> int
(** Total items ever shed / deferred by admission control. *)

val mean_wait_ns : t -> kind -> float
(** Average virtual time items of [kind] spent queued before dispatch. *)

(** {2 Adaptive-policy state and observability}

    The scan counters only move under [Adaptive]; the static policy keeps
    the original cost model (no scan is charged unless SysIO work is
    actually pending). *)

val add_sysio_interest : t -> int -> unit
(** Register [n] (possibly negative) SysIO event sources — watched
    connections, listeners, UDP binds. Called by [Sysio]; the adaptive
    scheduler only models idle socket scans while interest is positive.
    Clamped at zero. *)

val sysio_interest : t -> int

val polls_busy : t -> int
(** Adaptive-policy SysIO scans that found readiness events pending. *)

val polls_idle : t -> int
(** Charged idle scans (sockets watched, nothing ready). *)

val polls_saved : t -> int
(** Idle scans elided by the exponential backoff — each one is
    [Calib.sysio_poll_ns] of dispatcher CPU that eager polling would have
    burned. *)

val scan_gap : t -> int
(** Current idle-scan backoff, in dispatcher rounds between scans. *)

val work_ewma : t -> kind -> float
(** The subsystem's EWMA of useful work per round. *)

val current_quantum : t -> kind -> int
(** The quantum the next round would grant [kind] (static: the policy
    constant; adaptive: the EWMA-driven value before any boost). *)

(** {2 Readiness-queue io model (edge-gateway capacity)}

    With [Scan] (the default) every SysIO event is an individually posted
    work item — fine at tens of connections, O(events) queue traffic at
    100k. [Ready_queue] replaces per-event posts with explicit readiness
    {e sources}: events accumulate at the source (one per watched
    connection) and the source sits on a ready list at most once until
    drained. A dispatch round charges one [Calib.sysio_poll_ns] poll when
    the list is non-empty and drains up to the SysIO quantum of sources;
    {e idle connections are not on the list and cost zero}. With no
    sources registered the machinery is inert and the dispatcher is
    byte-identical to the classic path — the PR-4/PR-5 capability
    precedent. *)

type io_model = Scan | Ready_queue

type source

val set_io_model : t -> io_model -> unit
(** Record the node's io model. This is advisory state consulted by
    [Sysio] when wiring connections; registered sources drain under
    either value. *)

val io_model : t -> io_model

val register_source : t -> drain:(unit -> unit) -> source
(** A new readiness source. [drain] must deliver {e every} pending event
    of the source and be non-blocking; it runs from the dispatcher. *)

val unregister_source : t -> source -> unit
(** O(1); a queued entry of a dead source is skipped uncharged. *)

val mark_ready : t -> source -> unit
(** Enqueue the source on the ready list (no-op if already queued or
    unregistered) and wake the dispatcher. The queued flag is cleared
    {e before} the drain runs, so a mark arriving mid-drain re-enqueues —
    no lost wakeups, no duplicate dispatch. *)

val source_live : source -> bool

val ready_depth : t -> int
(** Sources currently on the ready list. *)

val source_count : t -> int
(** Live registered sources. *)

val ready_drains : t -> int
(** Total source drains executed. *)

val ready_polls : t -> int
(** Dispatcher rounds that paid the ready-list poll charge. *)
