(** NetAccess MadIO: multiplexed access to parallel-oriented hardware.

    Madeleine exposes no more channels than the hardware allows (2 on
    Myrinet, 1 on SCI). MadIO adds a logical multiplexing facility allowing
    an {e arbitrary} number of communication channels on top of one hardware
    channel. Multiplexing needs a per-message header; MadIO {e combines}
    headers — the 16-byte multiplexing header travels inside the first
    packet of the message it describes (via Madeleine's incremental packing)
    — so that multiplexing costs < 0.1 µs instead of a second message
    (ablation: {!set_header_combining}). *)

type t

type lchannel
(** A logical channel. Any number may be open. *)

val init : Madeleine.Mad.t -> t
(** Take over the node's Madeleine instance (claims hardware channel 0).
    Idempotent per Madeleine instance. *)

val node : t -> Simnet.Node.t
val mad : t -> Madeleine.Mad.t

val open_lchannel : t -> id:int -> lchannel
(** Open logical channel [id] (0 ≤ id < 65536). Raises when already open. *)

val close_lchannel : lchannel -> unit
val lchannel_id : lchannel -> int
val lchannels_open : t -> int

val sendv : lchannel -> dst:int -> Engine.Bytebuf.t list -> unit
(** Send a logical message as a gathered iovec (no copies added). *)

val send : lchannel -> dst:int -> Engine.Bytebuf.t -> unit

val set_recv : lchannel -> (src:int -> Engine.Bytebuf.t -> unit) -> unit
(** Delivery happens through the NetAccess dispatcher (arbitrated). The
    callback must not block. Messages that arrived on the open channel
    before a receiver was installed are buffered and flushed, in order,
    when [set_recv] runs — a peer's first message can legally overtake the
    local registration. *)

val set_header_combining : t -> bool -> unit
(** Default [true]. [false] sends the multiplexing header as its own
    Madeleine message — the ablation measured by experiment E3. Pending
    aggregation batches are flushed first. *)

val header_combining : t -> bool

(** {2 Small-message aggregation}

    A per-(peer, logical channel) coalescing queue: messages strictly
    smaller than the threshold are packed into one Madeleine packet
    instead of paying the fixed per-packet costs each. The combined
    header's count byte announces a batch; its payload is a sequence of
    [u16 sublen | bytes] records, demultiplexed on the receive side as
    zero-copy sub-slices in order. A batch flushes when its latency
    budget expires (engine timer), when an over-threshold message on the
    same flow must keep its place in the stream, when the batch would
    exceed the byte cap or 255 messages, on {!flush}/{!flush_all}, when
    the channel closes, and on credit-only grants (the grant rides the
    flush). Ordering within a logical channel is preserved; a batch of
    one goes out in the legacy wire format. Disabled by default — the
    wire format is then byte-identical to pre-aggregation builds. *)

val set_aggregation :
  t -> ?threshold:int -> ?budget_ns:int -> ?max_batch:int -> ?wheel:bool ->
  bool -> unit
(** Enable/disable coalescing. [threshold] (default
    [Calib.madio_agg_threshold_bytes]): messages strictly smaller
    coalesce, in [2, 65535]. [budget_ns] (default
    [Calib.madio_agg_budget_ns]): max virtual-time queueing delay.
    [max_batch] (default [Calib.madio_agg_max_batch_bytes]): cap on
    batched payload+sublength bytes per packet. [wheel] (default [false])
    arms the budget timers on the node's {!Padico_fault.Timewheel} — one
    engine event per occupied slot instead of one per open batch, at
    slot-granularity expiry; the default keeps the exact heap timer.
    Disabling flushes everything pending. *)

val aggregation_enabled : t -> bool

val flush : lchannel -> dst:int -> unit
(** Flush the pending batch of this (channel, peer) flow, if any. *)

val flush_all : t -> unit

val messages_batched : t -> int
(** Messages that went through a coalescing batch. *)

val batches_sent : t -> int
(** Batch flushes (wire packets that carried batched messages). *)

val packets_saved : t -> int
(** Madeleine packets avoided by aggregation: sum over batches of
    (messages - 1). *)

(** {2 Credit-based flow control}

    Per-(peer, logical channel) byte credits, MPICH-G2 style. Disabled by
    default ([window = 0]): the pre-flow-control semantics are unchanged.
    When enabled (symmetrically on both peers, before traffic starts) a
    sender starts with [window] bytes of credit per flow; each [sendv]
    consumes payload-length credit, and the receiver grants credit back as
    the message is {e drained} — automatically when the dispatcher has run
    the recv callback, or explicitly via {!grant} on manual-grant channels
    where the real consumer sits above (vl_madio grants as the application
    reads). Grants piggyback on the combined header (zero extra messages
    under bidirectional traffic); one-way flows fall back to an explicit
    credit-only message at half-window.

    Enforcement is {e soft}: [sendv] itself never blocks or refuses — a
    stack that must emit control traffic always can, at worst driving the
    balance negative (counted in {!credit_stalls}). Polite bulk senders
    check {!send_space} and park on {!on_credit}. *)

val set_credit_window : t -> int -> unit
(** Set the per-flow credit window in bytes; [0] disables. Resets all
    credit balances — call before traffic flows. *)

val credit_window : t -> int

val send_space : lchannel -> dst:int -> int
(** Payload bytes sendable to [dst] right now without over-running the
    receiver; [max_int] when flow control is disabled. Never negative. *)

val on_credit : lchannel -> dst:int -> ?min_space:int -> (unit -> unit) -> unit
(** One-shot: run [f] as soon as [send_space lc ~dst >= min_space]
    (default 1) — immediately if it already is. Senders whose messages
    carry a fixed header should pass [~min_space:(header + 1)]: waking on
    any nonzero balance would spin them without ever fitting a payload
    byte. *)

val set_manual_grant : lchannel -> bool -> unit
(** [true]: the automatic grant-on-dispatch is suppressed; the channel
    owner must call {!grant} as the payload is actually consumed. *)

val grant : lchannel -> src:int -> int -> unit
(** Return [n] bytes of credit to the sender [src] (manual-grant mode). *)

val credit_stalls : t -> int
(** Sends that over-ran the available credit (soft-enforcement debt). *)

val credit_messages : t -> int
(** Explicit credit-only messages sent (piggybacking misses). *)

val messages_sent : t -> int
val messages_received : t -> int
