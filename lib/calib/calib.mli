(** Host-side CPU cost model, calibrated to the paper's testbed
    (dual Pentium III 1 GHz, 512 MB, Linux 2.2, IPDPS 2004 evaluation).

    Every software layer charges the node CPU a [fixed + per_byte * n] cost
    drawn from here. The constants are chosen so that the latency/bandwidth
    *anchors* reported in the paper come out of the simulation:

    - Table 1 one-way latencies over Myrinet-2000 (µs):
      Circuit 8.4, VLink 10.2, MPICH 12.06, omniORB4 18.4, omniORB3 20.3,
      Java sockets 40.
    - Table 1 / Figure 3 peak bandwidths: ≈ 240 MB/s (96 % of the 250 MB/s
      hardware) for the zero-copy stacks; Mico 55 MB/s (63 µs), ORBacus
      63 MB/s (54 µs) because they always copy while marshalling.
    - §4.1: MadIO adds < 0.1 µs over plain Madeleine (header combining).

    The structural claims (who copies, who multiplexes, where translation
    happens) are implemented, not parameterized; only the *rates* live
    here. *)

(** {1 System-level drivers} *)

val gm_send_ns : int
(** GM-like driver, per-fragment host cost to post a DMA send. *)

val gm_recv_ns : int
(** GM-like driver, per-fragment receive handling (polled completion). *)

val udp_send_ns : int
val udp_recv_ns : int

val tcp_send_seg_ns : int
(** TCP output path per segment (checksum, header, driver). *)

val tcp_recv_seg_ns : int
val tcp_per_byte_ns : float
(** TCP per-byte cost (checksum + one kernel copy). *)

val socket_op_ns : int
(** Socket API crossing (syscall-like) per operation. *)

(** {1 Madeleine and NetAccess} *)

val mad_send_ns : int
(** Madeleine per-message send-side cost (pack management). *)

val mad_recv_ns : int

val madio_combined_ns : int
(** MadIO multiplexing cost per message when the multiplexing header is
    combined into the first packet (the paper measures < 0.1 µs). *)

val madio_separate_ns : int
(** MadIO cost when the header travels as its own packet (ablation:
    header-combining disabled). *)

val madio_header_bytes : int
val sysio_poll_ns : int
(** One scan of the SysIO receipt loop over ready sockets. *)

val sysio_callback_ns : int

(** {2 Small-message aggregation (MadIO)} *)

val madio_agg_threshold_bytes : int
(** Default coalescing threshold: messages strictly smaller are eligible
    for batching into one Madeleine packet. *)

val madio_agg_budget_ns : int
(** Default latency budget: a batch flushes at most this long after its
    first message was queued. *)

val madio_agg_max_batch_bytes : int
(** Default cap on batched payload+sublength bytes per packet. *)

val madio_agg_permsg_ns : int
(** Per-sub-message cost of batch assembly/demux (cheap pointer walk),
    charged on top of the one combined-header cost per packet. *)

(** {1 Abstract interfaces} *)

val circuit_op_ns : int
(** Circuit pack/unpack bookkeeping per message end. *)

val vlink_op_ns : int
(** VLink post/completion machinery per operation end. *)

(** {1 Personalities (thin wrappers: syntax only)} *)

val personality_ns : int
(** VIO / SysWrap / AIO / FM / virtual-Madeleine per-call cost. *)

(** {1 Middleware} *)

val mpi_ns : int
(** Mini-MPI per-message end cost (envelope matching, request management). *)

val corba_omniorb4_ns : int
(** omniORB4-profile per-invocation end cost (zero-copy marshalling). *)

val corba_omniorb3_ns : int
val corba_mico_ns : int
(** Mico-profile fixed per-invocation end cost (slow request path). *)

val corba_orbacus_ns : int
val corba_mico_per_byte_ns : float
(** Mico per-byte marshalling cost: per-element encoding plus copy. *)

val corba_orbacus_per_byte_ns : float
val java_ns : int
(** JVM socket per-operation end cost (interpreter + JNI crossing). *)

val java_per_byte_ns : float
val soap_ns : int
val soap_per_byte_ns : float
(** Text encoding/decoding per byte of binary payload. *)

(** {1 Methods} *)

val memcpy_per_byte_ns : float
(** One buffer copy on the testbed (≈ 800 MB/s on PIII-1GHz). *)

val compress_per_byte_ns : float
(** AdOC LZ compression throughput (≈ 20 MB/s class). *)

val decompress_per_byte_ns : float
val cipher_per_byte_ns : float
val vrp_send_ns : int
val vrp_recv_ns : int
