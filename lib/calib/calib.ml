(* Anchors (see .mli): Table 1 latencies are one-way over Myrinet-2000.
   A small-message one-way trip decomposes as

     wire (1.5 us propagation + serialization)
     + per-layer fixed costs on each side,

   so for instance Circuit = GM (1.6+1.6) + Madeleine (1.2+1.2)
   + MadIO (0.05) + Circuit (0.55+0.55) + wire (~1.7) ~= 8.45 us, matching
   the paper's 8.4 us. Peak bandwidths are pipeline bottlenecks:
   max(wire per-byte, slowest per-byte software stage). *)

let gm_send_ns = 1_600
let gm_recv_ns = 1_600

let udp_send_ns = 3_000
let udp_recv_ns = 3_000

let tcp_send_seg_ns = 8_000
let tcp_recv_seg_ns = 8_000
let tcp_per_byte_ns = 1.0
let socket_op_ns = 3_000

let mad_send_ns = 1_200
let mad_recv_ns = 1_200

let madio_combined_ns = 25
let madio_separate_ns = 400
(* 14 since the flow-control PR: magic u16, lchannel u16, length u32,
   combined u8, credit-grant u32, one spare byte. Still under the paper's
   16-byte multiplexing header, and the credit grant piggybacks at zero
   extra messages. *)
let madio_header_bytes = 14

let sysio_poll_ns = 500
let sysio_callback_ns = 300

(* Small-message aggregation (MadIO coalescing queue). *)
let madio_agg_threshold_bytes = 256
let madio_agg_budget_ns = 5_000
let madio_agg_max_batch_bytes = 4_096
let madio_agg_permsg_ns = 25

let circuit_op_ns = 550
let vlink_op_ns = 1_450

let personality_ns = 100

let mpi_ns = 1_700

(* The ORB request path performs two VLink reads per GIOP message (header,
   then body), so the per-message VLink machinery appears twice on the
   receive side; the fixed ORB costs below are calibrated net of that. *)
let corba_omniorb4_ns = 2_450
let corba_omniorb3_ns = 3_400
let corba_mico_ns = 24_750
let corba_orbacus_ns = 20_250
let corba_mico_per_byte_ns = 18.2
let corba_orbacus_per_byte_ns = 15.9

let java_ns = 14_800
let java_per_byte_ns = 0.2

let soap_ns = 30_000
let soap_per_byte_ns = 60.0

let memcpy_per_byte_ns = 1.25
let compress_per_byte_ns = 50.0
let decompress_per_byte_ns = 15.0
let cipher_per_byte_ns = 10.0

let vrp_send_ns = 2_000
let vrp_recv_ns = 2_000
