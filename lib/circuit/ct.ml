module Bytebuf = Engine.Bytebuf
module Stats = Engine.Stats
module Trace = Padico_obs.Trace
module Metrics = Padico_obs.Metrics

type adapter = { a_name : string; a_sendv : Bytebuf.t list -> unit }

type incoming = { payload : Bytebuf.t; src : int; mutable pos : int }

type t = {
  cname : string;
  crank : int;
  group : Simnet.Node.t array;
  links : adapter option array;
  (* Messages packed before the link adapter is bound (e.g. while a WAN
     VLink bundle is still connecting) wait here, each with its optional
     completion hook. *)
  unbound : (int, (Bytebuf.t list * (unit -> unit) option) Queue.t) Hashtbl.t;
  (* Receive-side mirror of [unbound]: messages delivered before the
     member installed its receiver wait here and flush on [set_recv]. *)
  pending_rx : (int * Bytebuf.t) Queue.t;
  mutable recv : (incoming -> unit) option;
  (* Transport death notifications (a peer's connection reset under us).
     Unset by default: binding layers call [peer_down] unconditionally and
     the default is a no-op, so circuits without a failure detector behave
     exactly as before. *)
  mutable on_peer_down : (int -> unit) option;
  sent : Stats.Counter.t;
  received : Stats.Counter.t;
}

type outgoing = {
  circuit : t;
  dst : int;
  mutable pieces : Bytebuf.t list; (* reversed *)
  mutable closed : bool;
}

let create ~group ~rank ~name =
  if rank < 0 || rank >= Array.length group then
    invalid_arg "Ct.create: rank out of range";
  let scope = Metrics.Node (Simnet.Node.name group.(rank)) in
  { cname = name; crank = rank; group;
    links = Array.make (Array.length group) None; unbound = Hashtbl.create 4;
    pending_rx = Queue.create (); recv = None; on_peer_down = None;
    sent = Metrics.fresh_counter scope ("ct." ^ name ^ ".sent");
    received = Metrics.fresh_counter scope ("ct." ^ name ^ ".received") }

let name t = t.cname
let rank t = t.crank
let size t = Array.length t.group
let node t = t.group.(t.crank)

let node_of_rank t r =
  if r < 0 || r >= Array.length t.group then
    invalid_arg "Ct.node_of_rank: rank out of range";
  t.group.(r)

let set_link t ~dst adapter =
  if dst < 0 || dst >= Array.length t.group then
    invalid_arg "Ct.set_link: rank out of range";
  t.links.(dst) <- Some adapter;
  match Hashtbl.find_opt t.unbound dst with
  | Some q ->
    Hashtbl.remove t.unbound dst;
    Queue.iter
      (fun (iov, on_sent) ->
         adapter.a_sendv iov;
         match on_sent with Some f -> f () | None -> ())
      q
  | None -> ()

let link_adapter_name t ~dst =
  match t.links.(dst) with
  | Some a -> a.a_name
  | None ->
    invalid_arg
      (Printf.sprintf
         "Ct.link_adapter_name: circuit %s has no adapter bound for the \
          link from rank %d to rank %d"
         t.cname t.crank dst)

let begin_packing t ~dst =
  if dst < 0 || dst >= Array.length t.group then
    invalid_arg "Ct.begin_packing: rank out of range";
  { circuit = t; dst; pieces = []; closed = false }

let pack out piece =
  if out.closed then invalid_arg "Ct.pack: message already sent";
  out.pieces <- piece :: out.pieces

let pack_int out v =
  let b = Bytebuf.create 8 in
  Bytebuf.set_i64 b 0 (Int64.of_int v);
  pack out b

let end_packing ?on_sent out =
  if out.closed then invalid_arg "Ct.end_packing: message already sent";
  out.closed <- true;
  let t = out.circuit in
  Stats.Counter.incr t.sent;
  if Trace.on () then
    Trace.instant (node t)
      (Padico_obs.Event.Ct_pack
         { circuit = t.cname; dst = out.dst;
           bytes =
             List.fold_left (fun a b -> a + Bytebuf.length b) 0 out.pieces });
  match t.links.(out.dst) with
  | None ->
    (* Adapter not bound yet: hold the message, flushed by set_link. *)
    let q =
      match Hashtbl.find_opt t.unbound out.dst with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.replace t.unbound out.dst q;
        q
    in
    Queue.push (List.rev out.pieces, on_sent) q
  | Some a ->
    Simnet.Node.cpu_async (node t) Calib.circuit_op_ns (fun () ->
        a.a_sendv (List.rev out.pieces);
        match on_sent with Some f -> f () | None -> ())

let unpack inc n =
  if n < 0 || inc.pos + n > Bytebuf.length inc.payload then
    invalid_arg
      (Printf.sprintf "Ct.unpack: %d bytes requested, %d remain" n
         (Bytebuf.length inc.payload - inc.pos));
  let piece = Bytebuf.sub inc.payload inc.pos n in
  inc.pos <- inc.pos + n;
  piece

let unpack_int inc =
  let b = unpack inc 8 in
  Int64.to_int (Bytebuf.get_i64 b 0)

let remaining inc = Bytebuf.length inc.payload - inc.pos

let incoming_src inc = inc.src

let set_recv t f =
  t.recv <- Some f;
  while not (Queue.is_empty t.pending_rx) do
    let src, payload = Queue.pop t.pending_rx in
    f { payload; src; pos = 0 }
  done

let deliver t ~src payload =
  Stats.Counter.incr t.received;
  if Trace.on () then
    Trace.instant (node t)
      (Padico_obs.Event.Ct_recv
         { circuit = t.cname; src; bytes = Bytebuf.length payload });
  Simnet.Node.cpu_async (node t) Calib.circuit_op_ns (fun () ->
      match t.recv with
      | Some f -> f { payload; src; pos = 0 }
      | None -> Queue.push (src, payload) t.pending_rx)

let set_on_peer_down t f = t.on_peer_down <- Some f

let peer_down t ~rank =
  if rank >= 0 && rank < Array.length t.group then
    match t.on_peer_down with Some f -> f rank | None -> ()

let messages_sent t = Stats.Counter.value t.sent

let messages_received t = Stats.Counter.value t.received
