module Bytebuf = Engine.Bytebuf
module Vl = Vlink.Vl
module Streamq = Vlink.Streamq

let adapter_name = "vlink"

let frame_hdr = 4

(* Restore message boundaries on the VLink byte stream. *)
let rec read_loop ct ~dst vl pending want =
  let buf = Bytebuf.create 65_536 in
  let req = Vl.post_read vl buf in
  Vl.set_handler req (function
    | Vl.Done n ->
      Streamq.push pending (Bytebuf.sub buf 0 n);
      let continue = ref true in
      while !continue do
        match !want with
        | None ->
          if Streamq.length pending >= frame_hdr then
            want := Some (Bytebuf.get_u32 (Streamq.pop_exact pending frame_hdr) 0)
          else continue := false
        | Some len ->
          if Streamq.length pending >= len then begin
            let payload = Streamq.pop_exact pending len in
            want := None;
            Ct.deliver ct ~src:dst payload
          end
          else continue := false
      done;
      read_loop ct ~dst vl pending want
    (* Again never surfaces from blocking posts; treated as EOF-ish stop. *)
    | Vl.Again | Vl.Eof | Vl.Error _ -> ())

let bind_link ct ~dst vl =
  let pending = Streamq.create () in
  let want = ref None in
  let start () = read_loop ct ~dst vl pending want in
  if Vl.is_connected vl then start ()
  else
    Vl.on_event vl (function
      | Vl.Connected -> start ()
      | Vl.Readable | Vl.Writable | Vl.Peer_closed | Vl.Failed _ -> ());
  Ct.set_link ct ~dst
    { Ct.a_name = adapter_name;
      a_sendv =
        (fun iov ->
           let len = List.fold_left (fun a b -> a + Bytebuf.length b) 0 iov in
           let hdr = Bytebuf.create frame_hdr in
           Bytebuf.set_u32 hdr 0 len;
           ignore (Vl.post_write vl hdr);
           List.iter (fun piece -> ignore (Vl.post_write vl piece)) iov) }
