module Bytebuf = Engine.Bytebuf
module Tcp = Drivers.Tcp
module Sysio = Netaccess.Sysio
module Streamq = Vlink.Streamq

let adapter_name = "sysio"

(* Inbound connection: HELLO [u16 src-rank], then frames [u32 len | bytes]. *)

let frame_hdr = 4

type rx_state = {
  pending : Streamq.t;
  mutable src_rank : int option;
  mutable want : int option;
}

let rx_pump ct st conn =
  let rec drain () =
    match Sysio.read conn ~max:65_536 with
    | Some data ->
      Streamq.push st.pending data;
      drain ()
    | None -> ()
  in
  drain ();
  let continue = ref true in
  while !continue do
    match (st.src_rank, st.want) with
    | None, _ ->
      if Streamq.length st.pending >= 2 then
        st.src_rank <-
          Some (Bytebuf.get_u16 (Streamq.pop_exact st.pending 2) 0)
      else continue := false
    | Some _, None ->
      if Streamq.length st.pending >= frame_hdr then
        st.want <- Some (Bytebuf.get_u32 (Streamq.pop_exact st.pending frame_hdr) 0)
      else continue := false
    | Some src, Some len ->
      if Streamq.length st.pending >= len then begin
        let payload = Streamq.pop_exact st.pending len in
        st.want <- None;
        Ct.deliver ct ~src payload
      end
      else continue := false
  done

(* Outbound link: lazy connection with an elastic pending queue flushed on
   Writable. *)
type tx_state = {
  outq : Streamq.t;
  mutable conn : Sysio.conn option;
  mutable established : bool;
}

let tx_flush tx =
  match (tx.conn, tx.established) with
  | Some conn, true ->
    let continue = ref true in
    while !continue do
      let space = Sysio.write_space conn in
      if space <= 0 then continue := false
      else
        match Streamq.pop tx.outq ~max:space with
        | Some chunk ->
          let n = Sysio.write conn chunk in
          (* [space] bounds the pop, so the write cannot be partial. *)
          assert (n = Bytebuf.length chunk);
          if Streamq.is_empty tx.outq then continue := false
        | None -> continue := false
    done
  | _ -> ()

let bind ct sio stack ~port ~ranks =
  (* Accept side (idempotent: Tcp.listen raises if bound — tolerate). *)
  (try
     Sysio.listen sio stack ~port (fun conn ->
         let st =
           { pending = Streamq.create (); src_rank = None; want = None }
         in
         Sysio.watch sio conn (function
           | Tcp.Readable -> rx_pump ct st conn
           | Tcp.Peer_closed | Tcp.Reset ->
             (* Transport lost after the peer identified itself: report it
                so a failure detector can confirm the death immediately.
                No-op on circuits without a peer-down handler. *)
             (match st.src_rank with
              | Some src -> Ct.peer_down ct ~rank:src
              | None -> ())
           | Tcp.Established | Tcp.Writable -> ());
         (* The accept callback is dispatched through the NetAccess queue,
            so under a connection storm data segments can arrive — and fire
            their Readable events into the not-yet-installed watcher —
            before this handler runs. Drain whatever is already buffered. *)
         rx_pump ct st conn)
   with Invalid_argument _ -> ());
  List.iter
    (fun dst ->
       (* Per-destination queue and connection materialize on first send:
          grid-scale groups bind thousands of links per node while each
          node actually talks to a handful of tree neighbours, so eager
          allocation here dominated circuit construction. *)
       let tx_ref = ref None in
       let ensure_tx () =
         match !tx_ref with
         | Some tx -> tx
         | None ->
           let tx =
             { outq = Streamq.create (); conn = None; established = false }
           in
           tx_ref := Some tx;
           let dst_node = Simnet.Node.id (Ct.node_of_rank ct dst) in
           let conn =
             Sysio.connect sio stack ~dst:dst_node ~port (fun conn ev ->
                 match ev with
                 | Tcp.Established ->
                   tx.established <- true;
                   let hello = Bytebuf.create 2 in
                   Bytebuf.set_u16 hello 0 (Ct.rank ct);
                   ignore (Sysio.write conn hello);
                   tx_flush tx
                 | Tcp.Writable -> tx_flush tx
                 | Tcp.Peer_closed | Tcp.Reset ->
                   tx.established <- false;
                   Ct.peer_down ct ~rank:dst
                 | Tcp.Readable -> ())
           in
           tx.conn <- Some conn;
           tx
       in
       Ct.set_link ct ~dst
         { Ct.a_name = adapter_name;
           a_sendv =
             (fun iov ->
                let tx = ensure_tx () in
                let len =
                  List.fold_left (fun a b -> a + Bytebuf.length b) 0 iov
                in
                let hdr = Bytebuf.create frame_hdr in
                Bytebuf.set_u32 hdr 0 len;
                Streamq.push tx.outq hdr;
                List.iter (Streamq.push tx.outq) iov;
                tx_flush tx) })
    ranks
