module Bytebuf = Engine.Bytebuf

let adapter_name = "loopback"

(* Local registry so two circuit instances co-located on one node (distinct
   ranks, same node) can reach each other. *)
let local_instances : (int * string * int, Ct.t) Hashtbl.t = Hashtbl.create 16
let () = Engine.Lifecycle.on_reset (fun () -> Hashtbl.reset local_instances)

let register ct =
  Hashtbl.replace local_instances
    (Simnet.Node.uid (Ct.node ct), Ct.name ct, Ct.rank ct)
    ct

let bind ct ~dst =
  register ct;
  let node = Ct.node ct in
  let dst_node = Ct.node_of_rank ct dst in
  if Simnet.Node.uid node <> Simnet.Node.uid dst_node then
    invalid_arg "Ct_loopback.bind: destination rank is on another node";
  let src_rank = Ct.rank ct in
  Ct.set_link ct ~dst
    { Ct.a_name = adapter_name;
      a_sendv =
        (fun iov ->
           let payload = Bytebuf.concat iov in
           Simnet.Node.cpu_async node 300 (fun () ->
               match
                 Hashtbl.find_opt local_instances
                   (Simnet.Node.uid dst_node, Ct.name ct, dst)
               with
               | Some peer -> Ct.deliver peer ~src:src_rank payload
               | None -> ())) }
