(** Circuit: the parallel-oriented abstract interface.

    A Circuit manages communications on a definite set of nodes called a
    {e group} — an arbitrary set: a cluster, a subset, or nodes spanning
    several clusters or sites. Every node can talk to every other node
    through an interface optimized for parallel runtimes: incremental
    packing with explicit semantics, as in Madeleine. Each {e link} (pair
    of ranks) is bound to an adapter — straight ({!Ct_madio} on SAN,
    {!Ct_loopback} intra-node) or cross-paradigm ({!Ct_sysio} over TCP,
    {!Ct_vlink} over any VLink, e.g. parallel streams on a WAN); one
    instance can mix adapters across links. *)

type t
(** One member's view of a circuit (bound to its rank). *)

(** Per-link transport provided by adapters. *)
type adapter = {
  a_name : string;
  a_sendv : Engine.Bytebuf.t list -> unit;
      (** gathered send towards the link's remote rank *)
}

(** Cursor over one received message. *)
type incoming

val create : group:Simnet.Node.t array -> rank:int -> name:string -> t
(** [group] must be identical (same order) on every member. *)

val name : t -> string
val rank : t -> int
val size : t -> int
val node : t -> Simnet.Node.t
(** The local node. *)

val node_of_rank : t -> int -> Simnet.Node.t

val set_link : t -> dst:int -> adapter -> unit
(** Bind the link towards rank [dst]. *)

val link_adapter_name : t -> dst:int -> string
(** Raises [Invalid_argument] — naming the circuit and the src/dst ranks —
    when the link is unbound. *)

(** {1 Sending: incremental packing} *)

type outgoing

val begin_packing : t -> dst:int -> outgoing
val pack : outgoing -> Engine.Bytebuf.t -> unit
val pack_int : outgoing -> int -> unit
(** Convenience: pack a 63-bit integer (8 bytes). *)

val end_packing : ?on_sent:(unit -> unit) -> outgoing -> unit
(** Messages packed before the destination link is bound are buffered and
    flushed when {!set_link} runs. [on_sent] fires once the message has
    been handed to the link adapter (after the circuit-op CPU charge, or at
    flush time for buffered messages) — a non-blocking local completion
    hook so callers can pipeline multi-stage exchanges such as collective
    tree rounds without suspending per send. *)

(** {1 Receiving} *)

val unpack : incoming -> int -> Engine.Bytebuf.t
val unpack_int : incoming -> int
val remaining : incoming -> int
val incoming_src : incoming -> int
(** Source rank. *)

val set_recv : t -> (incoming -> unit) -> unit
(** Single message handler per instance (parallel runtimes do their own
    matching above). Messages delivered before the handler was installed
    are buffered and flushed, in order, when it appears. *)

val deliver : t -> src:int -> Engine.Bytebuf.t -> unit
(** Adapter-side: hand a complete received message to the circuit. *)

(** {1 Transport death} *)

val set_on_peer_down : t -> (int -> unit) -> unit
(** Install the (single) transport-death handler: called with the remote
    rank when a binding layer reports that rank's connection irrecoverably
    gone (TCP reset / peer close on a real socket). Failure detectors use
    this to confirm a death without waiting for suspicion to accrue. *)

val peer_down : t -> rank:int -> unit
(** Binding-layer side: report the link towards [rank] dead. No-op unless a
    handler is installed (default), so circuits without a detector are
    unaffected. Out-of-range ranks (unknown peer) are ignored. *)

val messages_sent : t -> int
val messages_received : t -> int
