(** Cross-paradigm Circuit adapter: parallel interface over distributed
    hardware (TCP through SysIO). Message boundaries are restored with a
    length-prefixed framing; connections are opened lazily per link and
    accepted on a per-circuit port (the same on every member). *)

val bind :
  Ct.t ->
  Netaccess.Sysio.t ->
  Netaccess.Sysio.stack ->
  port:int ->
  ranks:int list ->
  unit

val adapter_name : string
