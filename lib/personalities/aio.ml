module Vl = Vlink.Vl
module Proc = Engine.Proc

type aiocb = { req : Vl.req; vl : Vl.t }

let charge vl = Simnet.Node.cpu_async (Vl.node vl) Calib.personality_ns (fun () -> ())

let aio_read vl buf =
  charge vl;
  { req = Vl.post_read vl buf; vl }

let aio_write vl buf =
  charge vl;
  { req = Vl.post_write vl buf; vl }

(* Non-blocking post: the control block is already complete — either
   [Done n] or the EAGAIN marker observable via [aio_error]. *)
let aio_write_nb vl buf =
  charge vl;
  { req = Vl.post_write ~nonblock:true vl buf; vl }

let aio_error cb =
  match Vl.poll cb.req with
  | None -> `In_progress
  | Some (Vl.Done _) | Some Vl.Eof -> `Ok
  | Some Vl.Again -> `Err "EAGAIN"
  | Some (Vl.Error e) -> `Err e

let aio_return cb =
  match Vl.poll cb.req with
  | None -> invalid_arg "Aio.aio_return: operation in progress"
  | Some (Vl.Done n) -> n
  | Some Vl.Eof -> 0
  | Some Vl.Again -> failwith "Aio.aio_return: EAGAIN"
  | Some (Vl.Error e) -> failwith ("Aio.aio_return: " ^ e)

let aio_suspend cbs =
  if cbs = [] then invalid_arg "Aio.aio_suspend: empty list";
  let already_done = List.exists (fun cb -> Vl.poll cb.req <> None) cbs in
  if not already_done then
    Proc.suspend (fun resume ->
        let fired = ref false in
        List.iter
          (fun cb ->
             Vl.set_handler cb.req (fun _ ->
                 if not !fired then begin
                   fired := true;
                   resume ()
                 end))
          cbs)

let aio_cancel_all_noop () = ()
