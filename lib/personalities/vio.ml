module Bytebuf = Engine.Bytebuf
module Vl = Vlink.Vl

let charge vl = Simnet.Node.cpu (Vl.node vl) Calib.personality_ns

let connect_wait vl =
  charge vl;
  Vl.await_connected vl

let read vl buf =
  charge vl;
  match Vl.await (Vl.post_read vl buf) with
  | Vl.Done n -> n
  | Vl.Eof -> 0
  | Vl.Again -> failwith "Vio.read: EAGAIN on blocking read"
  | Vl.Error e -> failwith ("Vio.read: " ^ e)

let read_exact vl buf =
  let total = Bytebuf.length buf in
  let rec go filled =
    if filled >= total then true
    else begin
      let n = read vl (Bytebuf.sub buf filled (total - filled)) in
      if n = 0 then false else go (filled + n)
    end
  in
  go 0

let write vl buf =
  charge vl;
  match Vl.await (Vl.post_write vl buf) with
  | Vl.Done n -> n
  | Vl.Eof -> failwith "Vio.write: stream closed"
  | Vl.Again -> failwith "Vio.write: EAGAIN on blocking write"
  | Vl.Error e -> failwith ("Vio.write: " ^ e)

(* Non-blocking write: one driver attempt, no queueing. *)
let try_write vl buf =
  charge vl;
  match Vl.await (Vl.post_write ~nonblock:true vl buf) with
  | Vl.Done n -> `Ok n
  | Vl.Again -> `Again
  | Vl.Eof -> failwith "Vio.try_write: stream closed"
  | Vl.Error e -> failwith ("Vio.try_write: " ^ e)

let wait_writable vl =
  Engine.Proc.suspend (fun resume -> Vl.on_writable vl resume)

let write_string vl s = write vl (Bytebuf.of_string s)

let read_line vl =
  let buf = Buffer.create 64 in
  let one = Bytebuf.create 1 in
  let rec go () =
    let n = read vl one in
    if n = 0 then if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
    else begin
      let c = Bytebuf.get one 0 in
      if c = '\n' then Some (Buffer.contents buf)
      else begin
        Buffer.add_char buf c;
        go ()
      end
    end
  in
  go ()

let close vl = Vl.close vl
