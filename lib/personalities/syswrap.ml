module Bytebuf = Engine.Bytebuf
module Vl = Vlink.Vl
module Proc = Engine.Proc

exception Unix_error of string

type listening = {
  pending : Vl.t Queue.t;
  mutable waiter : (Vl.t -> unit) option;
}

type fd_state = Fresh | Connected of Vl.t | Listening of listening | Closed_fd

type t = {
  grid : Padico.t;
  wnode : Simnet.Node.t;
  fds : (int, fd_state) Hashtbl.t;
  nonblock : (int, bool) Hashtbl.t;
  mutable next_fd : int;
}

let instances : (int, t) Hashtbl.t = Hashtbl.create 16
let () = Engine.Lifecycle.on_reset (fun () -> Hashtbl.reset instances)

let attach grid node =
  let key = Simnet.Node.uid node in
  match Hashtbl.find_opt instances key with
  | Some t -> t
  | None ->
    let t =
      { grid; wnode = node; fds = Hashtbl.create 32;
        nonblock = Hashtbl.create 8; next_fd = 3 }
    in
    Hashtbl.replace instances key t;
    t

let node t = t.wnode

let charge t = Simnet.Node.cpu t.wnode Calib.personality_ns

let socket t =
  let fd = t.next_fd in
  t.next_fd <- fd + 1;
  Hashtbl.replace t.fds fd Fresh;
  fd

let state t fd =
  match Hashtbl.find_opt t.fds fd with
  | Some s -> s
  | None -> raise (Unix_error "EBADF")

let connect t fd ~dst ~port =
  charge t;
  match state t fd with
  | Fresh ->
    let vl = Padico.connect t.grid ~src:t.wnode ~dst ~port in
    (match Vl.await_connected vl with
     | Ok () -> Hashtbl.replace t.fds fd (Connected vl)
     | Error _ -> raise (Unix_error "ECONNREFUSED"))
  | Connected _ | Listening _ -> raise (Unix_error "EISCONN")
  | Closed_fd -> raise (Unix_error "EBADF")

let bind_listen t fd ~port =
  charge t;
  match state t fd with
  | Fresh ->
    let listening = { pending = Queue.create (); waiter = None } in
    Hashtbl.replace t.fds fd (Listening listening);
    Padico.listen t.grid t.wnode ~port (fun vl ->
        match listening.waiter with
        | Some k ->
          listening.waiter <- None;
          k vl
        | None -> Queue.push vl listening.pending)
  | Connected _ | Listening _ | Closed_fd -> raise (Unix_error "EINVAL")

let accept t fd =
  charge t;
  match state t fd with
  | Listening l ->
    let vl =
      if Queue.is_empty l.pending then
        Proc.suspend (fun resume -> l.waiter <- Some resume)
      else Queue.pop l.pending
    in
    let nfd = t.next_fd in
    t.next_fd <- nfd + 1;
    Hashtbl.replace t.fds nfd (Connected vl);
    nfd
  | Fresh | Connected _ | Closed_fd -> raise (Unix_error "EINVAL")

(* O_NONBLOCK emulation (fcntl-style). *)
let set_nonblock t fd v =
  ignore (state t fd);
  Hashtbl.replace t.nonblock fd v

let is_nonblock t fd = Hashtbl.find_opt t.nonblock fd = Some true

let conn t fd =
  match state t fd with
  | Connected vl -> vl
  | Fresh | Listening _ -> raise (Unix_error "ENOTCONN")
  | Closed_fd -> raise (Unix_error "EBADF")

let recv t fd buf =
  charge t;
  let vl = conn t fd in
  if is_nonblock t fd && Vl.readable_bytes vl = 0 && not (Vl.is_closed vl)
  then raise (Unix_error "EAGAIN");
  match Vl.await (Vl.post_read vl buf) with
  | Vl.Done n -> n
  | Vl.Eof -> 0
  | Vl.Again -> raise (Unix_error "EAGAIN")
  | Vl.Error e -> raise (Unix_error e)

let recv_exact t fd buf =
  let total = Bytebuf.length buf in
  let rec go filled =
    if filled >= total then true
    else begin
      let n = recv t fd (Bytebuf.sub buf filled (total - filled)) in
      if n = 0 then false else go (filled + n)
    end
  in
  go 0

let send t fd buf =
  charge t;
  let vl = conn t fd in
  let nonblock = is_nonblock t fd in
  match Vl.await (Vl.post_write ~nonblock vl buf) with
  | Vl.Done n -> n
  | Vl.Eof -> raise (Unix_error "EPIPE")
  | Vl.Again -> raise (Unix_error "EAGAIN")
  | Vl.Error e -> raise (Unix_error e)

let close t fd =
  Hashtbl.remove t.nonblock fd;
  (match Hashtbl.find_opt t.fds fd with
   | Some (Connected vl) -> Vl.close vl
   | Some (Fresh | Listening _ | Closed_fd) | None -> ());
  Hashtbl.replace t.fds fd Closed_fd

let vlink_of_fd t fd = conn t fd
