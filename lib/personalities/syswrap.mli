(** SysWrap personality: a 100 % BSD-socket-compliant API (integer file
    descriptors, [socket]/[connect]/[bind]/[listen]/[accept]/[recv]/[send]/
    [close]) over PadicoTM.

    In the paper SysWrap is applied at link stage so that legacy C/C++/
    FORTRAN middleware uses PadicoTM without recompiling; here it is the
    entry point used by the "unmodified" middleware implementations
    (CORBA, SOAP, Java sockets). Blocking calls; process context. *)

type t
(** One node's wrapped socket table. *)

exception Unix_error of string

val attach : Padico.t -> Simnet.Node.t -> t
(** Idempotent per node. *)

val node : t -> Simnet.Node.t

val socket : t -> int
(** A fresh descriptor. *)

val connect : t -> int -> dst:Simnet.Node.t -> port:int -> unit
(** Blocking; raises {!Unix_error} ("ECONNREFUSED") on failure. The
    underlying driver/methods are chosen by the selector, invisibly. *)

val bind_listen : t -> int -> port:int -> unit
val accept : t -> int -> int
(** Blocking accept; returns a new descriptor. *)

val recv : t -> int -> Engine.Bytebuf.t -> int
(** ≥ 1 bytes, 0 at EOF. On a non-blocking descriptor with no data
    buffered, raises {!Unix_error} ["EAGAIN"] instead of blocking. *)

val set_nonblock : t -> int -> bool -> unit
(** O_NONBLOCK emulation: non-blocking descriptors make [recv] and [send]
    raise {!Unix_error} ["EAGAIN"] instead of blocking when the link would
    make them wait (no buffered data / no write space). *)

val recv_exact : t -> int -> Engine.Bytebuf.t -> bool
val send : t -> int -> Engine.Bytebuf.t -> int
val close : t -> int -> unit

val vlink_of_fd : t -> int -> Vlink.Vl.t
(** Introspection (e.g. which driver a legacy app ended up on). *)
