(** VIO personality: explicit socket-like {e blocking} API over VLink, for
    code written in process style. Personalities are thin wrappers — "they
    do no protocol adaptation nor paradigm translation; they only adapt the
    syntax". All calls must run in process ({!Engine.Proc}) context. *)

val connect_wait : Vlink.Vl.t -> (unit, string) result
(** Block until the descriptor is connected (or failed). *)

val read : Vlink.Vl.t -> Engine.Bytebuf.t -> int
(** Blocking read: at least 1 byte (POSIX semantics), 0 at end-of-stream.
    Raises [Failure] on error. *)

val read_exact : Vlink.Vl.t -> Engine.Bytebuf.t -> bool
(** Fill the whole buffer; [false] if the stream ended first. *)

val write : Vlink.Vl.t -> Engine.Bytebuf.t -> int
(** Blocking write of the whole buffer; returns its length. *)

val write_string : Vlink.Vl.t -> string -> int

val try_write : Vlink.Vl.t -> Engine.Bytebuf.t -> [ `Ok of int | `Again ]
(** Non-blocking write (EAGAIN semantics): one driver attempt; [`Ok n] for
    the bytes accepted (possibly fewer than posted), [`Again] when the
    link has no write space — nothing is queued. Pair with
    {!wait_writable} to retry. *)

val wait_writable : Vlink.Vl.t -> unit
(** Block (process context) until the link reports write space (or reaches
    a terminal state — re-try and observe the error). *)

val read_line : Vlink.Vl.t -> string option
(** Read up to a ['\n'] (consumed, not returned); [None] at EOF. Intended
    for text protocols (SOAP). *)

val close : Vlink.Vl.t -> unit
