(** AIO personality: POSIX.2-style asynchronous I/O over VLink — the
    natural personality for VLink's post/poll model.

    [aio_read]/[aio_write] post an operation and return a control block;
    completion is observed with [aio_error]/[aio_return] (polling) or
    [aio_suspend] (blocking), mirroring [<aio.h>]. *)

type aiocb

val aio_read : Vlink.Vl.t -> Engine.Bytebuf.t -> aiocb
val aio_write : Vlink.Vl.t -> Engine.Bytebuf.t -> aiocb

val aio_write_nb : Vlink.Vl.t -> Engine.Bytebuf.t -> aiocb
(** Non-blocking variant: never queued; the returned control block is
    already complete. [aio_error] reports [`Err "EAGAIN"] when the link
    had no write space, [`Ok] with [aio_return] giving the (possibly
    partial) byte count otherwise. *)

val aio_error : aiocb -> [ `In_progress | `Ok | `Err of string ]
(** [`Err "EAGAIN"] marks a would-block non-blocking write. *)


val aio_return : aiocb -> int
(** Bytes transferred (0 at EOF). Raises [Invalid_argument] while still in
    progress, [Failure] on error. *)

val aio_suspend : aiocb list -> unit
(** Block (process context) until at least one control block completes. *)

val aio_cancel_all_noop : unit -> unit
(** Placeholder for API completeness: cancellation is not supported, as in
    many real AIO implementations. *)
