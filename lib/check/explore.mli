(** Schedule exploration: run the conformance kit under many interleavings
    and turn each failure into a replayable coordinate.

    The exploration loop is the test-side complement of the engine's
    schedule policies: FIFO is one interleaving of same-timestamp events;
    [Lifo], [Starve_oldest] and seeded [Random] permutations are others
    that are equally legal for the simulated hardware but merciless to
    register-after-dispatch races. Every failure is reported as a
    {!Replay} token — feed it back to {!replay} (or
    [padico_cli check --replay]) for a byte-identical reproduction. *)

type failure = {
  token : string;  (** replay token, [PCHK:v1:...] *)
  case : string;
  policy : Engine.Sim.policy;
  message : string;  (** the {!Conform.Failed} message (or raw exception) *)
}

type summary = {
  cases_run : int;  (** distinct conformance cases executed *)
  interleavings : int;  (** (case, policy) pairs executed *)
  failures : failure list;  (** first failing policy per case, in kit order *)
}

val exec :
  ?plan:Padico_fault.Plan.t -> Conform.case -> Engine.Sim.policy ->
  failure option
(** Run one case under one policy; [None] when it passes. *)

val default_policies : seeds:int -> Engine.Sim.policy list
(** [Fifo; Lifo; Starve_oldest] followed by [seeds] seeded random
    permutations (seeds [0 .. seeds-1]). *)

val explore :
  ?plan:Padico_fault.Plan.t -> ?demo:bool -> ?names:string list ->
  policies:Engine.Sim.policy list -> unit -> summary
(** Run the kit (filtered to [names] when given, by exact case name or
    ["fixture/"] prefix) under every policy. Per case, policies run in
    order and stop at the first failure. *)

val chaos_plan : seed:int -> Padico_fault.Plan.t
(** Deterministic randomized fault plan against the mixed collective
    fixture: member crashes (never the root's node), transient link
    outages (always restored), loss bursts, latency spikes and healed
    bipartitions, all inside the chaos cases' run window. Equal seeds
    give equal plans. *)

type chaos_failure = {
  seed : int;  (** regenerate the plan with [chaos_plan ~seed] *)
  plan : Padico_fault.Plan.t;  (** the generated plan, for artifact dumps *)
  failure : failure;
}

type chaos_summary = {
  plans_run : int;
  chaos_interleavings : int;
  chaos_failures : chaos_failure list;
}

val chaos :
  ?names:string list -> seeds:int -> policies:Engine.Sim.policy list ->
  unit -> chaos_summary
(** Run the chaos cases (default [["coll-chaos/"]]) once per generated
    plan (seeds [0 .. seeds-1]), each under every policy. A failure
    carries its generating seed and the full plan so the caller can dump
    a replayable plan file next to the token. *)

val replay :
  ?plan:Padico_fault.Plan.t -> string -> (failure option, string) result
(** Re-run the case a token denotes under its exact policy.
    [Ok (Some f)] reproduces the failure, [Ok None] means it passed
    (non-reproduction), [Error] for a malformed token, an unknown case, or
    a supplied plan whose digest does not match the token's. *)

val shrink :
  ?plan:Padico_fault.Plan.t -> failure ->
  Padico_fault.Plan.t option * Engine.Sim.policy * string
(** Greedy minimisation of a failing (plan, policy) pair: drop fault-plan
    events one at a time keeping the case failing, then try to replace the
    policy with a simpler one ([Lifo], [Starve_oldest]) that still fails.
    Returns the minimised plan, policy and the corresponding new token. *)
