module Sim = Engine.Sim
module Plan = Padico_fault.Plan

type failure = {
  token : string;
  case : string;
  policy : Sim.policy;
  message : string;
}

type summary = {
  cases_run : int;
  interleavings : int;
  failures : failure list;
}

let mk_failure ?plan (case : Conform.case) policy message =
  let token =
    Replay.to_string
      { Replay.case = case.Conform.case_name; policy;
        plan_digest = Replay.digest_plan plan }
  in
  { token; case = case.Conform.case_name; policy; message }

let exec ?plan (case : Conform.case) policy =
  match case.Conform.run ~plan policy with
  | () -> None
  | exception Conform.Failed msg -> Some (mk_failure ?plan case policy msg)
  | exception e ->
    Some (mk_failure ?plan case policy (Printexc.to_string e))

let default_policies ~seeds =
  Sim.Fifo :: Sim.Lifo :: Sim.Starve_oldest
  :: List.init (max 0 seeds) (fun i -> Sim.Random i)

let select_cases ?(demo = false) ?names () =
  let all = Conform.cases ~demo () in
  match names with
  | None -> all
  | Some names ->
    let matches c =
      List.exists
        (fun n ->
           n = c.Conform.case_name
           || String.length n > 0
              && n.[String.length n - 1] = '/'
              && String.length c.Conform.case_name >= String.length n
              && String.sub c.Conform.case_name 0 (String.length n) = n)
        names
    in
    List.filter matches all

let explore ?plan ?demo ?names ~policies () =
  let cases = select_cases ?demo ?names () in
  let interleavings = ref 0 in
  let failures =
    List.filter_map
      (fun case ->
         let rec first = function
           | [] -> None
           | p :: rest -> (
               incr interleavings;
               match exec ?plan case p with
               | None -> first rest
               | Some f -> Some f)
         in
         first policies)
      cases
  in
  { cases_run = List.length cases; interleavings = !interleavings; failures }

(* ---------- chaos sweeps ---------- *)

(* Randomized fault plans against the mixed collective fixture (nodes
   c0-0/c0-1/c1-0/c1-1 on san0/san1 islands bridged by wan). The
   generator never crashes c0-0 — rank 0 roots every operation, and a
   rootless storm asserts nothing — and never leaves a link down or a
   partition unhealed forever: permanent unreachability is the
   [resilient-fault/exhaustion] case's job, while chaos cases must
   terminate. Everything draws from one splitmix64 stream, so a seed
   names a plan exactly. *)

let chaos_victims = [ "c0-1"; "c1-0"; "c1-1" ]

let chaos_nodes = "c0-0" :: chaos_victims

let chaos_segments = [ "san0"; "san1"; "wan" ]

let chaos_plan ~seed =
  let module Rng = Engine.Rng in
  let rng = Rng.create (0x6ee6 + seed) in
  let ms x = x * 1_000_000 in
  let between lo hi = ms (lo + Rng.int rng (hi - lo + 1)) in
  let pick l = List.nth l (Rng.int rng (List.length l)) in
  let events = ref [] in
  let add at_ns action = events := { Plan.at_ns; action } :: !events in
  (* Usually one member dies for good — the healing path under stress. *)
  if Rng.bool rng 0.8 then
    add (between 5 60) (Plan.Node_crash (pick chaos_victims));
  (* A transient carrier loss on one segment, always restored. *)
  if Rng.bool rng 0.7 then begin
    let seg = pick chaos_segments in
    let down = between 2 50 in
    add down (Plan.Link_down seg);
    add (down + between 5 30) (Plan.Link_up seg)
  end;
  for _ = 1 to Rng.int rng 3 do
    add (between 1 80)
      (Plan.Loss_burst
         { link = pick chaos_segments;
           loss = 0.05 +. Rng.float rng 0.45;
           duration_ns = between 5 20 })
  done;
  if Rng.bool rng 0.5 then
    add (between 1 80)
      (Plan.Latency_spike
         { link = pick chaos_segments; add_ns = between 1 10;
           duration_ns = between 5 20 });
  (* A bipartition — the cluster split or one isolated member — healed
     after a window long enough for both sides to confirm the other
     dead. *)
  if Rng.bool rng 0.4 then begin
    let group_a, group_b =
      if Rng.bool rng 0.5 then ([ "c0-0"; "c0-1" ], [ "c1-0"; "c1-1" ])
      else
        let iso = pick chaos_victims in
        ([ iso ], List.filter (fun n -> n <> iso) chaos_nodes)
    in
    let at = between 2 50 in
    add at (Plan.Partition { group_a; group_b });
    add (at + between 10 40) Plan.Heal
  end;
  List.stable_sort
    (fun a b -> compare a.Plan.at_ns b.Plan.at_ns)
    (List.rev !events)

type chaos_failure = { seed : int; plan : Plan.t; failure : failure }

type chaos_summary = {
  plans_run : int;
  chaos_interleavings : int;
  chaos_failures : chaos_failure list;
}

let chaos ?(names = [ "coll-chaos/" ]) ~seeds ~policies () =
  let interleavings = ref 0 in
  let failures =
    List.concat_map
      (fun seed ->
         let plan = chaos_plan ~seed in
         let s = explore ~plan ~names ~policies () in
         interleavings := !interleavings + s.interleavings;
         List.map (fun failure -> { seed; plan; failure }) s.failures)
      (List.init (max 0 seeds) Fun.id)
  in
  { plans_run = max 0 seeds; chaos_interleavings = !interleavings;
    chaos_failures = failures }

let replay ?plan token_str =
  match Replay.of_string token_str with
  | Error _ as e -> e
  | Ok token ->
    let supplied = Replay.digest_plan plan in
    if supplied <> token.Replay.plan_digest then
      Error
        (Printf.sprintf
           "replay: token was recorded with fault-plan digest %s but the \
            supplied plan digests to %s — pass the original plan file"
           token.Replay.plan_digest supplied)
    else (
      match
        List.find_opt
          (fun c -> c.Conform.case_name = token.Replay.case)
          (Conform.cases ~demo:true ())
      with
      | None ->
        Error (Printf.sprintf "replay: unknown case %S" token.Replay.case)
      | Some case -> Ok (exec ?plan case token.Replay.policy))

let still_fails ?plan (case : Conform.case) policy =
  match exec ?plan case policy with Some _ -> true | None -> false

let shrink ?plan failure =
  match
    List.find_opt
      (fun c -> c.Conform.case_name = failure.case)
      (Conform.cases ~demo:true ())
  with
  | None -> (plan, failure.policy, failure.token)
  | Some case ->
    (* Phase 1: drop fault-plan events one at a time while the case still
       fails; loop until a fixed point (dropping one event can make
       another droppable). *)
    let drop_one events =
      let n = List.length events in
      let rec try_at i =
        if i >= n then None
        else
          let smaller = List.filteri (fun j _ -> j <> i) events in
          let candidate = if smaller = [] then None else Some smaller in
          if still_fails ?plan:candidate case failure.policy then
            Some candidate
          else try_at (i + 1)
      in
      try_at 0
    in
    let rec minimise plan =
      match plan with
      | None -> None
      | Some events -> (
          match drop_one events with
          | Some smaller -> minimise smaller
          | None -> plan)
    in
    let plan = minimise plan in
    (* Phase 2: prefer a seedless policy when one also exposes the bug —
       "lifo" in a token reads better than "random-173". *)
    let policy =
      match failure.policy with
      | Sim.Fifo | Sim.Lifo -> failure.policy
      | Sim.Starve_oldest | Sim.Random _ ->
        let simpler =
          List.find_opt
            (fun p -> p <> failure.policy && still_fails ?plan case p)
            [ Sim.Lifo; Sim.Starve_oldest ]
        in
        Option.value simpler ~default:failure.policy
    in
    let token =
      Replay.to_string
        { Replay.case = failure.case; policy;
          plan_digest = Replay.digest_plan plan }
    in
    (plan, policy, token)
