module Sim = Engine.Sim
module Plan = Padico_fault.Plan

type failure = {
  token : string;
  case : string;
  policy : Sim.policy;
  message : string;
}

type summary = {
  cases_run : int;
  interleavings : int;
  failures : failure list;
}

let mk_failure ?plan (case : Conform.case) policy message =
  let token =
    Replay.to_string
      { Replay.case = case.Conform.case_name; policy;
        plan_digest = Replay.digest_plan plan }
  in
  { token; case = case.Conform.case_name; policy; message }

let exec ?plan (case : Conform.case) policy =
  match case.Conform.run ~plan policy with
  | () -> None
  | exception Conform.Failed msg -> Some (mk_failure ?plan case policy msg)
  | exception e ->
    Some (mk_failure ?plan case policy (Printexc.to_string e))

let default_policies ~seeds =
  Sim.Fifo :: Sim.Lifo :: Sim.Starve_oldest
  :: List.init (max 0 seeds) (fun i -> Sim.Random i)

let select_cases ?(demo = false) ?names () =
  let all = Conform.cases ~demo () in
  match names with
  | None -> all
  | Some names ->
    let matches c =
      List.exists
        (fun n ->
           n = c.Conform.case_name
           || String.length n > 0
              && n.[String.length n - 1] = '/'
              && String.length c.Conform.case_name >= String.length n
              && String.sub c.Conform.case_name 0 (String.length n) = n)
        names
    in
    List.filter matches all

let explore ?plan ?demo ?names ~policies () =
  let cases = select_cases ?demo ?names () in
  let interleavings = ref 0 in
  let failures =
    List.filter_map
      (fun case ->
         let rec first = function
           | [] -> None
           | p :: rest -> (
               incr interleavings;
               match exec ?plan case p with
               | None -> first rest
               | Some f -> Some f)
         in
         first policies)
      cases
  in
  { cases_run = List.length cases; interleavings = !interleavings; failures }

let replay ?plan token_str =
  match Replay.of_string token_str with
  | Error _ as e -> e
  | Ok token ->
    let supplied = Replay.digest_plan plan in
    if supplied <> token.Replay.plan_digest then
      Error
        (Printf.sprintf
           "replay: token was recorded with fault-plan digest %s but the \
            supplied plan digests to %s — pass the original plan file"
           token.Replay.plan_digest supplied)
    else (
      match
        List.find_opt
          (fun c -> c.Conform.case_name = token.Replay.case)
          (Conform.cases ~demo:true ())
      with
      | None ->
        Error (Printf.sprintf "replay: unknown case %S" token.Replay.case)
      | Some case -> Ok (exec ?plan case token.Replay.policy))

let still_fails ?plan (case : Conform.case) policy =
  match exec ?plan case policy with Some _ -> true | None -> false

let shrink ?plan failure =
  match
    List.find_opt
      (fun c -> c.Conform.case_name = failure.case)
      (Conform.cases ~demo:true ())
  with
  | None -> (plan, failure.policy, failure.token)
  | Some case ->
    (* Phase 1: drop fault-plan events one at a time while the case still
       fails; loop until a fixed point (dropping one event can make
       another droppable). *)
    let drop_one events =
      let n = List.length events in
      let rec try_at i =
        if i >= n then None
        else
          let smaller = List.filteri (fun j _ -> j <> i) events in
          let candidate = if smaller = [] then None else Some smaller in
          if still_fails ?plan:candidate case failure.policy then
            Some candidate
          else try_at (i + 1)
      in
      try_at 0
    in
    let rec minimise plan =
      match plan with
      | None -> None
      | Some events -> (
          match drop_one events with
          | Some smaller -> minimise smaller
          | None -> plan)
    in
    let plan = minimise plan in
    (* Phase 2: prefer a seedless policy when one also exposes the bug —
       "lifo" in a token reads better than "random-173". *)
    let policy =
      match failure.policy with
      | Sim.Fifo | Sim.Lifo -> failure.policy
      | Sim.Starve_oldest | Sim.Random _ ->
        let simpler =
          List.find_opt
            (fun p -> p <> failure.policy && still_fails ?plan case p)
            [ Sim.Lifo; Sim.Starve_oldest ]
        in
        Option.value simpler ~default:failure.policy
    in
    let token =
      Replay.to_string
        { Replay.case = failure.case; policy;
          plan_digest = Replay.digest_plan plan }
    in
    (plan, policy, token)
