type token = {
  case : string;
  policy : Engine.Sim.policy;
  plan_digest : string;
}

let fnv_offset = 0xcbf29ce484222325L

let fnv_prime = 0x100000001b3L

let digest_string s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
       h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  Printf.sprintf "%016Lx" !h

let digest_plan = function
  | None -> "-"
  | Some plan -> digest_string (Format.asprintf "%a" Padico_fault.Plan.pp plan)

let to_string t =
  Printf.sprintf "PCHK:v1:%s:%s:%s" t.case
    (Engine.Sim.policy_to_string t.policy)
    t.plan_digest

let of_string s =
  match String.split_on_char ':' s with
  | [ "PCHK"; "v1"; case; policy; digest ] when case <> "" && digest <> "" ->
    (match Engine.Sim.policy_of_string policy with
     | Some policy -> Ok { case; policy; plan_digest = digest }
     | None -> Error (Printf.sprintf "replay token: unknown policy %S" policy))
  | _ -> Error "replay token: expected PCHK:v1:<case>:<policy>:<plan-digest>"
