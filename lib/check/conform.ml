module Sim = Engine.Sim
module Clock = Engine.Clock
module Time = Engine.Time
module Proc = Engine.Proc
module Bb = Engine.Bytebuf
module Node = Simnet.Node
module Presets = Simnet.Presets
module Prefs = Selector.Prefs
module Vl = Vlink.Vl
module Ct = Circuit.Ct

exception Failed of string

let failf fmt = Printf.ksprintf (fun s -> raise (Failed s)) fmt

let comp_name = function
  | Vl.Done n -> Printf.sprintf "Done %d" n
  | Vl.Eof -> "Eof"
  | Vl.Again -> "Again"
  | Vl.Error m -> Printf.sprintf "Error %S" m

(* ---------- VLink fixtures ---------- *)

(* One adapter under test: a fresh grid whose topology and preferences make
   the selector pick exactly that adapter for [dial]. *)
type env = {
  grid : Padico.t;
  client : Node.t;
  server : Node.t;
  dial : port:int -> Vl.t;
  bind : port:int -> (Vl.t -> unit) -> unit;
  oneway : bool;  (* client-to-server byte stream only (VRP) *)
  strict_eof : bool;  (* peer close must read as [Eof], never [Error] *)
  expect_driver : string option;
  xfer : int;  (* bulk-transfer size, scaled to the link speed *)
}

type fixture = {
  fname : string;
  skip : string list;  (* obligation names not applicable to this adapter *)
  build : unit -> env;
}

(* Wrapper preferences isolated per fixture so [expect_driver] is exact. *)
let bare_prefs =
  { Prefs.default with Prefs.adoc_on_slow = false; cipher_untrusted = false }

let pair_env ~model ~prefs ?backend ?(oneway = false) ?(strict_eof = true)
    ?expect_driver ?(xfer = 65_536) () =
  let grid = Padico.create ~prefs ?backend () in
  let c = Padico.add_node grid "c" in
  let s = Padico.add_node grid "s" in
  ignore (Padico.add_segment grid model ~name:"link" [ c; s ]);
  { grid; client = c; server = s;
    dial = (fun ~port -> Padico.connect grid ~src:c ~dst:s ~port);
    bind = (fun ~port accept -> Padico.listen grid s ~port accept);
    oneway; strict_eof; expect_driver; xfer }

let loopback_env ?backend () =
  let grid = Padico.create ~prefs:bare_prefs ?backend () in
  let n = Padico.add_node grid "c" in
  { grid; client = n; server = n;
    dial = (fun ~port -> Padico.connect grid ~src:n ~dst:n ~port);
    bind = (fun ~port accept -> Padico.listen grid n ~port accept);
    oneway = false; strict_eof = true; expect_driver = Some "loopback";
    xfer = 65_536 }

let resilient_env () =
  let grid = Padico.create ~prefs:bare_prefs () in
  let c = Padico.add_node grid "c" in
  let s = Padico.add_node grid "s" in
  ignore (Padico.add_segment grid Presets.myrinet2000 ~name:"san" [ c; s ]);
  ignore (Padico.add_segment grid Presets.ethernet100 ~name:"lan" [ c; s ]);
  { grid; client = c; server = s;
    dial =
      (fun ~port -> Resilient.vl (Resilient.connect grid ~src:c ~dst:s ~port));
    bind = (fun ~port accept -> Resilient.listen grid s ~port accept);
    oneway = false; strict_eof = true; expect_driver = Some "resilient";
    xfer = 65_536 }

(* The madio stack with small-message aggregation coalescing both
   directions: every obligation (no-loss, no-reorder, boundary
   preservation, flush-on-budget for the probe exchanges, handshakes and
   teardown under Eof/close/timeout) must hold with batching live, under
   every schedule policy the kit explores. *)
let madio_agg_env () =
  let grid = Padico.create ~prefs:bare_prefs () in
  let c = Padico.add_node grid "c" in
  let s = Padico.add_node grid "s" in
  let seg = Padico.add_segment grid Presets.myrinet2000 ~name:"link" [ c; s ] in
  Netaccess.Madio.set_aggregation (Padico.madio grid c seg) true;
  Netaccess.Madio.set_aggregation (Padico.madio grid s seg) true;
  { grid; client = c; server = s;
    dial = (fun ~port -> Padico.connect grid ~src:c ~dst:s ~port);
    bind = (fun ~port accept -> Padico.listen grid s ~port accept);
    oneway = false; strict_eof = true; expect_driver = Some "madio";
    xfer = 65_536 }

let vlink_fixtures =
  [ { fname = "loopback"; skip = []; build = loopback_env };
    { fname = "sysio"; skip = [];
      build =
        (fun () ->
           pair_env ~model:Presets.ethernet100 ~prefs:bare_prefs
             ~expect_driver:"sysio" ()) };
    { fname = "madio"; skip = [];
      build =
        (fun () ->
           pair_env ~model:Presets.myrinet2000 ~prefs:bare_prefs
             ~expect_driver:"madio" ()) };
    { fname = "madio-agg"; skip = []; build = madio_agg_env };
    { fname = "pstream"; skip = [];
      build =
        (fun () ->
           pair_env ~model:Presets.vthd
             ~prefs:
               { bare_prefs with
                 Prefs.pstream_on_wan = true; pstream_streams = 2 }
             ~expect_driver:"pstream" ()) };
    { fname = "adoc"; skip = [];
      build =
        (fun () ->
           pair_env ~model:Presets.modem
             ~prefs:{ bare_prefs with Prefs.adoc_on_slow = true }
             ~expect_driver:"adoc" ~xfer:8_192 ()) };
    { fname = "crypto"; skip = [];
      build =
        (fun () ->
           pair_env
             ~model:(Presets.transcontinental_loss 0.0)
             ~prefs:{ bare_prefs with Prefs.cipher_untrusted = true }
             ~expect_driver:"crypto" ~xfer:16_384 ()) };
    (* No "timeout" for VRP: its pacer flushes sub-chunk residue only at
       [finish], so the accept (first datagram) arrives together with the
       stream end — a silent-but-open connection cannot be posed. *)
    { fname = "vrp"; skip = [ "timeout" ];
      build =
        (fun () ->
           pair_env
             ~model:(Presets.transcontinental_loss 0.0)
             ~prefs:
               { bare_prefs with Prefs.vrp_on_lossy = true;
                 vrp_tolerance = 0.0 }
             ~oneway:true ~strict_eof:false ~expect_driver:"vrp"
             ~xfer:16_384 ()) };
    { fname = "resilient"; skip = []; build = resilient_env } ]

(* ---------- obligation scaffolding ---------- *)

let port = 6100

let probe_len = 16

let pattern ~seed n =
  let b = Bb.create n in
  Bb.fill_pattern b ~seed;
  b

let wait_writable vl =
  Proc.suspend (fun resume -> Vl.on_writable vl (fun () -> resume ()))

(* Blocking-read [total] bytes into a fresh buffer; any non-[Done]
   completion is a violation. The generous deadline converts a hang under
   an adversarial schedule into a reportable failure. *)
let read_exact ?(deadline = Time.sec 120) vl total =
  let into = Bb.create total in
  let got = ref 0 in
  while !got < total do
    (* Never offer more window than we still expect: a read may legally
       fill the whole buffer, and overflow past [total] would steal bytes
       belonging to the caller's next message. *)
    let window = Bb.create (min 16_384 (total - !got)) in
    (match Vl.await (Vl.post_read ~timeout_ns:deadline vl window) with
     | Vl.Done n ->
       if n <= 0 || n > Bb.length window then
         failf "read completed Done %d with a %d-byte buffer" n
           (Bb.length window);
       Bb.blit ~src:window ~src_off:0 ~dst:into ~dst_off:!got ~len:n;
       got := !got + n
     | c -> failf "read at %d/%d completed %s" !got total (comp_name c))
  done;
  into

let write_all vl buf =
  match Vl.await (Vl.post_write vl buf) with
  | Vl.Done n when n = Bb.length buf -> ()
  | c -> failf "write of %d bytes completed %s" (Bb.length buf) (comp_name c)

let connect_or_fail vl =
  match Vl.await_connected vl with
  | Ok () -> ()
  | Error m -> failf "connect failed: %s" m

(* Dial + accept + client-to-server probe (the probe also triggers accept on
   drivers whose server side materialises on first data, e.g. VRP), then run
   [client]/[server] as processes and re-raise any violation they recorded. *)
let scaffold env ~client ~server =
  let handles = ref [] in
  let accepted = ref false in
  env.bind ~port (fun vl ->
      if not !accepted then begin
        accepted := true;
        handles :=
          ( "server",
            Padico.spawn env.grid env.server ~name:"server" (fun () ->
                if not (Vl.is_connected vl) then
                  failf "accepted descriptor not connected";
                let got = read_exact vl probe_len in
                if not (Bb.equal got (pattern ~seed:7 probe_len)) then
                  failf "probe bytes corrupted";
                server vl) )
          :: !handles
      end);
  let cvl = env.dial ~port in
  handles :=
    ( "client",
      Padico.spawn env.grid env.client ~name:"client" (fun () ->
          connect_or_fail cvl;
          if not (Vl.is_connected cvl) then
            failf "connected descriptor reports not connected";
          write_all cvl (pattern ~seed:7 probe_len);
          client cvl) )
    :: !handles;
  Padico.run env.grid ~until:(Time.sec 600);
  if not !accepted then failf "server never accepted";
  List.iter
    (fun (what, h) ->
       match Proc.result h with
       | Some (Ok ()) -> ()
       | Some (Error (Failed _ as e)) -> raise e
       | Some (Error e) ->
         failf "%s process raised %s" what (Printexc.to_string e)
       | None -> failf "%s process did not finish (stuck request?)" what)
    !handles

let expect_end ~strict vl =
  match Vl.await (Vl.post_read ~timeout_ns:(Time.sec 120) vl (Bb.create 64))
  with
  | Vl.Eof -> ()
  | Vl.Error m when not strict -> ignore m
  | c -> failf "peer close read as %s, want Eof" (comp_name c)

(* ---------- the VLink obligations ---------- *)

type obligation = { oname : string; run : env -> unit }

let ob_connect =
  { oname = "connect";
    run =
      (fun env ->
         scaffold env
           ~client:(fun cvl ->
               (match env.expect_driver with
                | Some d when Vl.driver_name cvl <> d ->
                  failf "selector picked %S, fixture expects %S"
                    (Vl.driver_name cvl) d
                | _ -> ());
               Vl.close cvl)
           ~server:(fun svl -> Vl.close svl)) }

let ob_no_loss =
  { oname = "no-loss";
    run =
      (fun env ->
         let total = env.xfer in
         scaffold env
           ~client:(fun cvl ->
               let out = pattern ~seed:11 total in
               let chunk = max 1 (total / 8) in
               let off = ref 0 in
               while !off < total do
                 let n = min chunk (total - !off) in
                 write_all cvl (Bb.sub out !off n);
                 off := !off + n
               done;
               if not env.oneway then begin
                 let back = read_exact cvl total in
                 if not (Bb.equal back (pattern ~seed:13 total)) then
                   failf "return stream corrupted or reordered"
               end;
               Vl.close cvl)
           ~server:(fun svl ->
               let got = read_exact svl total in
               if not (Bb.equal got (pattern ~seed:11 total)) then
                 failf "stream corrupted or reordered";
               if not env.oneway then write_all svl (pattern ~seed:13 total);
               expect_end ~strict:env.strict_eof svl;
               Vl.close svl)) }

let ob_eof =
  { oname = "eof";
    run =
      (fun env ->
         let total = min env.xfer 16_384 in
         scaffold env
           ~client:(fun cvl ->
               write_all cvl (pattern ~seed:19 total);
               Vl.close cvl)
           ~server:(fun svl ->
               let got = read_exact svl total in
               if not (Bb.equal got (pattern ~seed:19 total)) then
                 failf "bytes before close corrupted";
               (* End of stream is [Eof], stably: never [Error], and a
                  second read does not un-end the stream. *)
               expect_end ~strict:env.strict_eof svl;
               expect_end ~strict:env.strict_eof svl;
               Vl.close svl)) }

let ob_close =
  { oname = "close";
    run =
      (fun env ->
         scaffold env
           ~client:(fun cvl ->
               Vl.close cvl;
               (* Idempotent: a second close must not raise. *)
               Vl.close cvl;
               (match
                  Vl.await
                    (Vl.post_write ~timeout_ns:(Time.sec 120) cvl
                       (Bb.create 64))
                with
                | Vl.Error _ | Vl.Eof -> ()
                | c -> failf "write after close completed %s" (comp_name c));
               match
                 Vl.await
                   (Vl.post_read ~timeout_ns:(Time.sec 120) cvl
                      (Bb.create 64))
               with
               | Vl.Eof | Vl.Error _ -> ()
               | c -> failf "read after close completed %s" (comp_name c))
           ~server:(fun svl ->
               expect_end ~strict:env.strict_eof svl;
               Vl.close svl;
               Vl.close svl)) }

let ob_again =
  { oname = "again";
    run =
      (fun env ->
         let total = env.xfer in
         scaffold env
           ~client:(fun cvl ->
               let out = pattern ~seed:23 total in
               let rec push off =
                 if off < total then begin
                   let n = min 16_384 (total - off) in
                   match
                     Vl.await
                       (Vl.post_write ~nonblock:true cvl (Bb.sub out off n))
                   with
                   | Vl.Done 0 | Vl.Again ->
                     (* Progress contract: a parked writer woken by
                        [on_writable] retries and eventually drains. *)
                     wait_writable cvl;
                     push off
                   | Vl.Done k -> push (off + k)
                   | c -> failf "nonblock write completed %s" (comp_name c)
                 end
               in
               push 0;
               Vl.close cvl)
           ~server:(fun svl ->
               (* Slow consumer: small reads with pauses, to push the
                  writer into its EAGAIN path on bounded drivers. *)
               let into = Bb.create total in
               let window = Bb.create 4_096 in
               let got = ref 0 in
               while !got < total do
                 (match
                    Vl.await
                      (Vl.post_read ~timeout_ns:(Time.sec 120) svl window)
                  with
                  | Vl.Done n ->
                    Bb.blit ~src:window ~src_off:0 ~dst:into ~dst_off:!got
                      ~len:n;
                    got := !got + n
                  | c ->
                    failf "read at %d/%d completed %s" !got total
                      (comp_name c));
                 if !got < total then
                   Proc.sleep_on (Node.clock env.server) (Time.us 200)
               done;
               if not (Bb.equal into (pattern ~seed:23 total)) then
                 failf "stream corrupted under backpressure";
               expect_end ~strict:env.strict_eof svl;
               Vl.close svl)) }

let ob_timeout =
  { oname = "timeout";
    run =
      (fun env ->
         scaffold env
           ~client:(fun cvl ->
               (* Stay silent — and open — far past the server's deadline,
                  measured from whenever the probe finally lands (paced
                  transports deliver it 100+ ms in), so the only possible
                  completion is the timeout. *)
               Proc.sleep_on (Node.clock env.client) (Time.sec 1);
               Vl.close cvl)
           ~server:(fun svl ->
               let clk = Node.clock env.server in
               let t0 = Clock.now clk in
               (match
                  Vl.await
                    (Vl.post_read ~timeout_ns:(Time.ms 5) svl (Bb.create 64))
                with
                | Vl.Error "timeout" ->
                  if Clock.now clk - t0 < Time.ms 5 then
                    failf "timeout fired %d ns early"
                      (Time.ms 5 - (Clock.now clk - t0))
                | c -> failf "silent read completed %s" (comp_name c));
               Vl.close svl)) }

let vlink_obligations =
  [ ob_connect; ob_no_loss; ob_eof; ob_close; ob_again; ob_timeout ]

(* ---------- Circuit counterpart ---------- *)

type ct_env = { cgrid : Padico.t; cts : Ct.t array }

type ct_fixture = {
  cname : string;
  cbuild : unit -> ct_env;
}

let ct_pair model () =
  let grid = Padico.create ~prefs:bare_prefs () in
  let a = Padico.add_node grid "c" in
  let b = Padico.add_node grid "s" in
  ignore (Padico.add_segment grid model ~name:"link" [ a; b ]);
  { cgrid = grid; cts = Padico.circuit grid ~name:"kit" [ a; b ] }

let ct_mixed () =
  (* Three ranks on two nodes: rank 0 <-> rank 2 is an intra-node loopback
     link, rank 0 <-> rank 1 crosses the LAN — one circuit mixing
     adapters. *)
  let grid = Padico.create ~prefs:bare_prefs () in
  let a = Padico.add_node grid "c" in
  let b = Padico.add_node grid "s" in
  ignore (Padico.add_segment grid Presets.ethernet100 ~name:"link" [ a; b ]);
  { cgrid = grid; cts = Padico.circuit grid ~name:"kit" [ a; b; a ] }

let ct_fixtures =
  [ { cname = "circuit-lan"; cbuild = ct_pair Presets.ethernet100 };
    { cname = "circuit-san"; cbuild = ct_pair Presets.myrinet2000 };
    { cname = "circuit-mixed"; cbuild = ct_mixed } ]

type ct_obligation = { ct_oname : string; ct_run : ct_env -> unit }

let ct_membership =
  { ct_oname = "membership";
    ct_run =
      (fun env ->
         let n = Array.length env.cts in
         Array.iteri
           (fun i ct ->
              if Ct.rank ct <> i then
                failf "rank %d reports rank %d" i (Ct.rank ct);
              if Ct.size ct <> n then
                failf "rank %d reports group size %d, want %d" i (Ct.size ct)
                  n;
              if Ct.name ct <> "kit" then
                failf "rank %d reports circuit name %S" i (Ct.name ct);
              for j = 0 to n - 1 do
                if
                  Node.uid (Ct.node_of_rank ct j)
                  <> Node.uid (Ct.node env.cts.(j))
                then failf "rank %d maps rank %d to the wrong node" i j
              done)
           env.cts) }

(* Each rank-0 message must arrive as its own [incoming] with exact
   boundaries, in send order, at every destination rank. *)
let ct_boundaries =
  { ct_oname = "boundaries";
    ct_run =
      (fun env ->
         let n = Array.length env.cts in
         let got = Array.make n [] in
         for j = 1 to n - 1 do
           Ct.set_recv env.cts.(j) (fun inc ->
               let len = Ct.remaining inc in
               let body = Ct.unpack inc len in
               got.(j) <-
                 (Ct.incoming_src inc, len, Bb.to_string body) :: got.(j))
         done;
         for j = 1 to n - 1 do
           let m1 = Ct.begin_packing env.cts.(0) ~dst:j in
           Ct.pack m1 (pattern ~seed:(100 + j) 96);
           Ct.end_packing m1;
           let m2 = Ct.begin_packing env.cts.(0) ~dst:j in
           Ct.pack m2 (pattern ~seed:(200 + j) 40);
           Ct.end_packing m2
         done;
         Padico.run env.cgrid ~until:(Time.sec 600);
         for j = 1 to n - 1 do
           match List.rev got.(j) with
           | [ (s1, l1, b1); (s2, l2, b2) ] ->
             if s1 <> 0 || s2 <> 0 then
               failf "rank %d saw wrong source ranks %d, %d" j s1 s2;
             if l1 <> 96 || l2 <> 40 then
               failf
                 "rank %d message boundaries broken: got %d, %d want 96, 40"
                 j l1 l2;
             if
               b1 <> Bb.to_string (pattern ~seed:(100 + j) 96)
               || b2 <> Bb.to_string (pattern ~seed:(200 + j) 40)
             then failf "rank %d payloads corrupted or reordered" j
           | l ->
             failf "rank %d received %d messages, want 2" j (List.length l)
         done) }

let ct_packing =
  { ct_oname = "packing";
    ct_run =
      (fun env ->
         let dst = Array.length env.cts - 1 in
         let seen = ref None in
         Ct.set_recv env.cts.(dst) (fun inc ->
             let a = Ct.unpack_int inc in
             let b = Ct.unpack_int inc in
             let rem = Ct.remaining inc in
             let body = Bb.to_string (Ct.unpack inc rem) in
             seen := Some (a, b, rem, body, Ct.remaining inc));
         let out = Ct.begin_packing env.cts.(0) ~dst in
         Ct.pack_int out 42;
         Ct.pack_int out (-7);
         Ct.pack out (pattern ~seed:31 64);
         Ct.end_packing out;
         Padico.run env.cgrid ~until:(Time.sec 600);
         match !seen with
         | None -> failf "packed message never delivered"
         | Some (a, b, rem, body, after) ->
           if a <> 42 || b <> -7 then
             failf "unpack_int got %d, %d want 42, -7" a b;
           if rem <> 64 then failf "remaining %d after ints, want 64" rem;
           if body <> Bb.to_string (pattern ~seed:31 64) then
             failf "packed bytes corrupted";
           if after <> 0 then failf "remaining %d at end, want 0" after) }

let ct_obligations = [ ct_membership; ct_boundaries; ct_packing ]

(* ---------- Collectives counterpart ---------- *)

module Group = Collectives.Group
module Netdb = Selector.Netdb

(* A group fixture is a topology x strategy pair: the same semantic
   obligations must hold whether the ranks share one segment (lan, san) or
   split into SAN islands over a WAN backbone (mixed), and whether the
   engine runs the flat star or the multilevel trees. *)
type coll_env = {
  ggrid : Padico.t;
  gnodes : Node.t array;
  groups : Group.t array;
}

type coll_fixture = {
  gname : string;
  gbuild : unit -> coll_env;
}

let coll_single model strategy () =
  let grid = Padico.create ~prefs:bare_prefs () in
  let nodes =
    Array.init 4 (fun i -> Padico.add_node grid (Printf.sprintf "n%d" i))
  in
  ignore (Padico.add_segment grid model ~name:"link" (Array.to_list nodes));
  { ggrid = grid; gnodes = nodes;
    groups = Group.create ~strategy grid ~name:"kit" (Array.to_list nodes) }

(* Two 2-rank Myrinet islands joined only by a VTHD backbone: the smallest
   topology where Netdb yields more than one cluster, so the multilevel
   strategy actually routes through proxies. *)
let coll_mixed ?deadline_ns ?heal strategy () =
  let grid = Padico.create ~prefs:bare_prefs () in
  let mk c i = Padico.add_node grid (Printf.sprintf "c%d-%d" c i) in
  let c0 = [ mk 0 0; mk 0 1 ] in
  let c1 = [ mk 1 0; mk 1 1 ] in
  ignore (Padico.add_segment grid Presets.myrinet2000 ~name:"san0" c0);
  ignore (Padico.add_segment grid Presets.myrinet2000 ~name:"san1" c1);
  ignore (Padico.add_segment grid Presets.vthd ~name:"wan" (c0 @ c1));
  { ggrid = grid; gnodes = Array.of_list (c0 @ c1);
    groups =
      Group.create ~strategy ?deadline_ns ?heal grid ~name:"kit" (c0 @ c1) }

let coll_fixtures =
  [ { gname = "coll-lan-flat";
      gbuild = coll_single Presets.ethernet100 Group.Flat };
    { gname = "coll-lan-ml";
      gbuild = coll_single Presets.ethernet100 Group.Multilevel };
    { gname = "coll-san-flat";
      gbuild = coll_single Presets.myrinet2000 Group.Flat };
    { gname = "coll-san-ml";
      gbuild = coll_single Presets.myrinet2000 Group.Multilevel };
    { gname = "coll-mixed-flat"; gbuild = coll_mixed Group.Flat };
    { gname = "coll-mixed-ml"; gbuild = coll_mixed Group.Multilevel } ]

type coll_obligation = { coname : string; corun : coll_env -> unit }

(* One process per rank running [body r member]; a rank that never finishes
   (a hung collective) is a violation, as is any uncaught exception. *)
let coll_scaffold env body =
  let hs =
    Array.mapi
      (fun r node ->
         Padico.spawn env.ggrid node ~name:(Printf.sprintf "coll-%d" r)
           (fun () -> body r env.groups.(r)))
      env.gnodes
  in
  Padico.run env.ggrid ~until:(Time.sec 600);
  Array.iteri
    (fun r h ->
       match Proc.result h with
       | Some (Ok ()) -> ()
       | Some (Error (Failed _ as e)) -> raise e
       | Some (Error e) ->
         failf "rank %d raised %s" r (Printexc.to_string e)
       | None -> failf "rank %d never finished (hung collective?)" r)
    hs

(* Reference byte-wise reduction over [n] contributions
   (rank r contributes [pattern ~seed:(seed0 + r) len]). *)
let coll_combine op ~seed0 n len =
  let bufs =
    Array.init n (fun r -> Bb.to_string (pattern ~seed:(seed0 + r) len))
  in
  let f =
    match op with
    | Group.Sum -> fun a b -> (a + b) land 0xff
    | Group.Max -> max
    | Group.Bxor -> ( lxor )
  in
  String.init len (fun i ->
      Char.chr (Array.fold_left (fun a s -> f a (Char.code s.[i])) 0 bufs))

let coll_barrier =
  { coname = "barrier";
    corun =
      (fun env ->
         let entered = Array.make (Array.length env.groups) false in
         coll_scaffold env (fun r gm ->
             (* Stagger the entries so the barrier has stragglers to hold
                the early ranks back for. *)
             Proc.sleep_on (Node.clock env.gnodes.(r)) (Time.us (r * 50));
             entered.(r) <- true;
             Group.barrier gm;
             Array.iteri
               (fun j e ->
                  if not e then
                    failf "rank %d left the barrier before rank %d entered"
                      r j)
               entered)) }

let coll_bcast =
  { coname = "bcast";
    corun =
      (fun env ->
         let len = 512 in
         let last = Array.length env.groups - 1 in
         let want_a = Bb.to_string (pattern ~seed:41 len) in
         let want_b = Bb.to_string (pattern ~seed:43 len) in
         coll_scaffold env (fun r gm ->
             (* Two broadcasts back to back, the second from the highest
                rank: exercises both tree rotation to a non-zero root and
                the per-member operation sequencing. *)
             let got =
               Group.bcast gm ~root:0
                 (if r = 0 then pattern ~seed:41 len else Bb.create 0)
             in
             if Bb.to_string got <> want_a then
               failf "rank %d: broadcast from rank 0 corrupted" r;
             let got =
               Group.bcast gm ~root:last
                 (if r = last then pattern ~seed:43 len else Bb.create 0)
             in
             if Bb.to_string got <> want_b then
               failf "rank %d: broadcast from rank %d corrupted" r last)) }

let coll_reduce =
  { coname = "reduce";
    corun =
      (fun env ->
         let len = 256 in
         let n = Array.length env.groups in
         let want = coll_combine Group.Sum ~seed0:1 n len in
         coll_scaffold env (fun r gm ->
             match
               Group.reduce gm ~root:0 ~op:Group.Sum
                 (pattern ~seed:(1 + r) len)
             with
             | Some b when r = 0 ->
               if Bb.to_string b <> want then
                 failf "root: reduced bytes wrong"
             | Some _ -> failf "rank %d: non-root received a reduce result" r
             | None when r = 0 -> failf "root: reduce returned no result"
             | None -> ())) }

let coll_allreduce =
  { coname = "allreduce";
    corun =
      (fun env ->
         let len = 256 in
         let n = Array.length env.groups in
         let want = coll_combine Group.Bxor ~seed0:1 n len in
         coll_scaffold env (fun r gm ->
             let got =
               Group.allreduce gm ~op:Group.Bxor (pattern ~seed:(1 + r) len)
             in
             if Bb.to_string got <> want then
               failf "rank %d: allreduce bytes wrong" r)) }

let coll_gather =
  { coname = "gather";
    corun =
      (fun env ->
         let len = 64 in
         let n = Array.length env.groups in
         coll_scaffold env (fun r gm ->
             match Group.gather gm ~root:0 (pattern ~seed:(100 + r) len) with
             | Some parts when r = 0 ->
               if Array.length parts <> n then
                 failf "root: gathered %d parts, want %d"
                   (Array.length parts) n;
               Array.iteri
                 (fun j p ->
                    if not (Bb.equal p (pattern ~seed:(100 + j) len)) then
                      failf "root: contribution of rank %d corrupted" j)
                 parts
             | Some _ -> failf "rank %d: non-root received gathered parts" r
             | None when r = 0 -> failf "root: gather returned no parts"
             | None -> ())) }

let coll_scatter =
  { coname = "scatter";
    corun =
      (fun env ->
         let len = 64 in
         let n = Array.length env.groups in
         coll_scaffold env (fun r gm ->
             let parts =
               if r = 0 then
                 Array.init n (fun i -> pattern ~seed:(200 + i) len)
               else [||]
             in
             let got = Group.scatter gm ~root:0 parts in
             if not (Bb.equal got (pattern ~seed:(200 + r) len)) then
               failf "rank %d: scattered chunk corrupted" r)) }

(* The accounting the multilevel strategy exists for: a broadcast must
   cross the WAN exactly [clusters - 1] times under [Multilevel] and once
   per out-of-island rank under [Flat] (zero for single-cluster fixtures
   under either). *)
let coll_wan_frugal =
  { coname = "wan-frugal";
    corun =
      (fun env ->
         let gm0 = env.groups.(0) in
         let db = Group.netdb gm0 in
         let n = Array.length env.groups in
         let expect =
           match Group.strategy gm0 with
           | Group.Multilevel -> Netdb.cluster_count db - 1
           | Group.Flat ->
             let c0 = Netdb.cluster_of db 0 in
             let out = ref 0 in
             for r = 1 to n - 1 do
               if Netdb.cluster_of db r <> c0 then incr out
             done;
             !out
         in
         let m0 = Group.wan_messages gm0 in
         coll_scaffold env (fun r gm ->
             ignore
               (Group.bcast gm ~root:0
                  (if r = 0 then pattern ~seed:3 64 else Bb.create 0)));
         let got = Group.wan_messages gm0 - m0 in
         if got <> expect then
           failf "broadcast crossed the WAN %d times, want %d" got expect) }

let coll_obligations =
  [ coll_barrier; coll_bcast; coll_reduce; coll_allreduce; coll_gather;
    coll_scatter; coll_wan_frugal ]

(* Fault story: the WAN backbone drops out from under a multilevel
   broadcast. With a per-operation deadline armed, every rank must reach a
   definite outcome — the payload, or a clean [Group.Failed] — before the
   run drains; a rank stuck forever in the collective is the violation. *)
let coll_wan_down ~plan policy =
  let deadline_ns = Time.ms 200 in
  let env = coll_mixed ~deadline_ns Group.Multilevel () in
  Sim.set_policy (Padico.sim env.ggrid) policy;
  (match plan with
   | None -> ()
   | Some p -> ignore (Padico_fault.Inject.apply (Padico.net env.ggrid) p));
  ignore
    (Padico_fault.Inject.apply (Padico.net env.ggrid)
       [ { Padico_fault.Plan.at_ns = Time.ms 1;
           action = Padico_fault.Plan.Link_down "wan" } ]);
  let len = 512 in
  let want = Bb.to_string (pattern ~seed:47 len) in
  let outcomes = Array.make (Array.length env.groups) `Stuck in
  coll_scaffold env (fun r gm ->
      (* Start after the backbone is already dark. *)
      Proc.sleep_on (Node.clock env.gnodes.(r)) (Time.ms 2);
      match
        Group.bcast gm ~root:0
          (if r = 0 then pattern ~seed:47 len else Bb.create 0)
      with
      | got ->
        if Bb.to_string got <> want then
          failf "rank %d: payload corrupted during WAN outage" r;
        outcomes.(r) <- `Done
      | exception Group.Failed _ -> outcomes.(r) <- `Failed);
  (* The other island can only be reached over the dead backbone: at least
     one rank there must have failed (cleanly) rather than delivered. *)
  let db = Group.netdb env.groups.(0) in
  let c0 = Netdb.cluster_of db 0 in
  let remote_failed = ref false and remote = ref 0 in
  Array.iteri
    (fun r o ->
       if Netdb.cluster_of db r <> c0 then begin
         incr remote;
         if o = `Failed then remote_failed := true
       end)
    outcomes;
  if !remote > 0 && not !remote_failed then
    failf "WAN down, yet every remote rank claims delivery"

(* ---------- self-healing membership obligations ---------- *)

(* Reference reduction over the live ranks only: the healing group folds
   the contributions of the members that survive the eviction. *)
let coll_live_combine op ~seed0 ~victim n len =
  let f =
    match op with
    | Group.Sum -> fun a b -> (a + b) land 0xff
    | Group.Max -> max
    | Group.Bxor -> ( lxor )
  in
  let bufs =
    List.filter_map
      (fun r ->
         if r = victim then None
         else Some (Bb.to_string (pattern ~seed:(seed0 + r) len)))
      (List.init n (fun r -> r))
  in
  String.init len (fun i ->
      Char.chr (List.fold_left (fun a s -> f a (Char.code s.[i])) 0 bufs))

let coll_heal_ops =
  [ "barrier"; "bcast"; "reduce"; "allreduce"; "gather"; "scatter" ]

(* Fault story for the healing tentpole: [victim] crashes while [opname]
   is in flight. The survivors' detectors must confirm the death, agree on
   the eviction, re-partition the topology and retry the operation over
   the shrunken group — every survivor gets the correct post-eviction
   result and nobody hangs. Victim 2 is the remote island's proxy (the
   eviction re-elects rank 3); victim 3 a remote leaf. Rank 0 roots the
   rooted operations and always survives. *)
let coll_heal ~strategy ~victim ~opname ~plan policy =
  let len = 64 in
  let env =
    coll_mixed ~deadline_ns:(Time.ms 400) ~heal:Detect.default_config
      strategy ()
  in
  let sim = Padico.sim env.ggrid in
  Sim.set_policy sim policy;
  (match plan with
   | None -> ()
   | Some p -> ignore (Padico_fault.Inject.apply (Padico.net env.ggrid) p));
  let n = Array.length env.groups in
  ignore
    (Padico_fault.Inject.apply (Padico.net env.ggrid)
       [ { Padico_fault.Plan.at_ns = Time.ms 20;
           action =
             Padico_fault.Plan.Node_crash (Node.name env.gnodes.(victim)) }
       ]);
  let run_op r gm =
    match opname with
    | "barrier" -> Group.barrier gm
    | "bcast" ->
      let want = Bb.to_string (pattern ~seed:7 len) in
      let b =
        Group.bcast gm ~root:0
          (if r = 0 then pattern ~seed:7 len else Bb.create 0)
      in
      if Bb.to_string b <> want then failf "rank %d: bcast corrupted" r
    | "reduce" -> (
      let want = coll_live_combine Group.Sum ~seed0:11 ~victim n len in
      match Group.reduce gm ~root:0 ~op:Group.Sum (pattern ~seed:(11 + r) len) with
      | Some res when r = 0 ->
        if Bb.to_string res <> want then failf "root: reduce bytes wrong"
      | Some _ -> failf "rank %d: non-root got a reduce result" r
      | None -> if r = 0 then failf "root: reduce returned nothing")
    | "allreduce" ->
      let want = coll_live_combine Group.Bxor ~seed0:23 ~victim n len in
      let res = Group.allreduce gm ~op:Group.Bxor (pattern ~seed:(23 + r) len) in
      if Bb.to_string res <> want then failf "rank %d: allreduce bytes wrong" r
    | "gather" -> (
      match Group.gather gm ~root:0 (pattern ~seed:(31 + r) len) with
      | Some parts when r = 0 ->
        Array.iteri
          (fun j p ->
             if j = victim then begin
               if Bb.length p <> 0 then
                 failf "root: dead rank %d's gather slot is not empty" j
             end
             else if not (Bb.equal p (pattern ~seed:(31 + j) len)) then
               failf "root: contribution of rank %d corrupted" j)
          parts
      | Some _ -> failf "rank %d: non-root received gathered parts" r
      | None -> if r = 0 then failf "root: gather returned no parts")
    | "scatter" ->
      let parts =
        if r = 0 then Array.init n (fun i -> pattern ~seed:(41 + i) len)
        else [||]
      in
      let got = Group.scatter gm ~root:0 parts in
      if not (Bb.equal got (pattern ~seed:(41 + r) len)) then
        failf "rank %d: scattered chunk corrupted" r
    | op -> failf "unknown healing obligation %S" op
  in
  let hs =
    Array.mapi
      (fun r node ->
         Padico.spawn env.ggrid node ~name:(Printf.sprintf "heal-%d" r)
           (fun () ->
              let gm = env.groups.(r) in
              (* Warm-up: the detectors need inter-arrival samples, and
                 every member must exist before anyone begins. *)
              Group.barrier gm;
              if r <> victim then begin
                (* Start the operation just after the crash (20 ms): the
                   death is confirmed mid-operation, forcing the
                   eviction-and-retry path rather than a clean pre-op
                   membership change. *)
                let dt = Time.ms 21 - Sim.now sim in
                if dt > 0 then Proc.sleep_on (Node.clock node) dt;
                run_op r gm
              end))
      env.gnodes
  in
  Padico.run env.ggrid ~until:(Time.ms 350);
  Array.iter Group.retire env.groups;
  Array.iteri
    (fun r h ->
       if r <> victim then
         match Proc.result h with
         | Some (Ok ()) -> ()
         | Some (Error (Failed _ as e)) -> raise e
         | Some (Error e) -> failf "rank %d raised %s" r (Printexc.to_string e)
         | None -> failf "rank %d never finished (hung healing op?)" r)
    hs;
  let g0 = env.groups.(0) in
  if Group.epoch g0 <> 1 then
    failf "rank 0 saw epoch %d after one crash, want 1" (Group.epoch g0);
  if Group.dead_ranks g0 <> [ victim ] then
    failf "rank 0's dead set is not [%d]" victim;
  Array.iteri
    (fun r gm ->
       if r <> victim && Group.poisoned gm <> None then
         failf "survivor %d poisoned: %s" r
           (Option.value (Group.poisoned gm) ~default:""))
    env.groups

(* Chaos obligation: an arbitrary storm of crashes, outages, loss bursts
   and partitions (see [Explore.chaos_plan]) against a healing group
   running the full operation sequence. Exact results are not asserted —
   under arbitrary plans, membership and reachability are whatever the
   plan leaves standing — but every rank whose node survives must reach a
   definite outcome per operation (a value or a clean [Group.Failed]) and
   a delivered broadcast payload must be the root's bytes. A hang is the
   violation this case exists to catch. *)
let coll_chaos ~plan policy =
  let len = 128 in
  let env =
    coll_mixed ~deadline_ns:(Time.ms 150) ~heal:Detect.default_config
      Group.Multilevel ()
  in
  Sim.set_policy (Padico.sim env.ggrid) policy;
  (match plan with
   | None -> ()
   | Some p -> ignore (Padico_fault.Inject.apply (Padico.net env.ggrid) p));
  let n = Array.length env.groups in
  let want = Bb.to_string (pattern ~seed:53 len) in
  let hs =
    Array.mapi
      (fun r node ->
         Padico.spawn env.ggrid node ~name:(Printf.sprintf "chaos-%d" r)
           (fun () ->
              let gm = env.groups.(r) in
              let attempt f = try f () with Group.Failed _ -> () in
              attempt (fun () -> Group.barrier gm);
              attempt (fun () ->
                  let b =
                    Group.bcast gm ~root:0
                      (if r = 0 then pattern ~seed:53 len else Bb.create 0)
                  in
                  if Bb.to_string b <> want then
                    failf "rank %d: delivered bcast payload corrupted" r);
              attempt (fun () ->
                  ignore
                    (Group.reduce gm ~root:0 ~op:Group.Sum
                       (pattern ~seed:(61 + r) len)));
              attempt (fun () ->
                  ignore
                    (Group.allreduce gm ~op:Group.Bxor
                       (pattern ~seed:(67 + r) len)));
              attempt (fun () ->
                  ignore (Group.gather gm ~root:0 (pattern ~seed:(71 + r) len)));
              attempt (fun () ->
                  let parts =
                    if r = 0 then
                      Array.init n (fun i -> pattern ~seed:(79 + i) len)
                    else [||]
                  in
                  ignore (Group.scatter gm ~root:0 parts))))
      env.gnodes
  in
  Padico.run env.ggrid ~until:(Time.sec 2);
  Array.iter Group.retire env.groups;
  Array.iteri
    (fun r h ->
       if Node.is_up env.gnodes.(r) then
         match Proc.result h with
         | Some (Ok ()) -> ()
         | Some (Error (Failed _ as e)) -> raise e
         | Some (Error e) -> failf "rank %d raised %s" r (Printexc.to_string e)
         | None -> failf "rank %d (node still up) hung under chaos" r)
    hs

(* ---------- resilient retry exhaustion ---------- *)

(* Fault story: every physical path dies and stays dead — a permanent
   partition. The failover machinery must not spin forever: after
   [max_retries] failed dials the session gives up, and every request the
   application still has outstanding — a parked read, writes beyond the
   rewind window — must complete with a clean [Error], never hang. *)
let resilient_exhausted ~plan policy =
  let grid = Padico.create ~prefs:bare_prefs () in
  let c = Padico.add_node grid "c" in
  let s = Padico.add_node grid "s" in
  ignore (Padico.add_segment grid Presets.myrinet2000 ~name:"san" [ c; s ]);
  ignore (Padico.add_segment grid Presets.ethernet100 ~name:"lan" [ c; s ]);
  Sim.set_policy (Padico.sim grid) policy;
  (match plan with
   | None -> ()
   | Some p -> ignore (Padico_fault.Inject.apply (Padico.net grid) p));
  let config =
    { Resilient.default_config with
      Resilient.retry_base_ns = Time.ms 1; retry_max_ns = Time.ms 4;
      retry_jitter = 0.0; max_retries = 4; ack_timeout_ns = Time.ms 10;
      tx_window = 65_536 }
  in
  Resilient.listen ~config grid s ~port:9300 (fun _vl -> ());
  let conn = Resilient.connect ~config grid ~src:c ~dst:s ~port:9300 in
  let cvl = Resilient.vl conn in
  let h =
    Padico.spawn grid c ~name:"client" (fun () ->
        (match Vl.await_connected cvl with
         | Ok () -> ()
         | Error m -> failf "connect failed before the partition: %s" m);
        (* Permanent partition, anchored at establishment. *)
        ignore
          (Padico_fault.Inject.apply ~base_ns:(Padico.now grid)
             (Padico.net grid)
             [ { Padico_fault.Plan.at_ns = Time.ms 1;
                 action = Padico_fault.Plan.Link_down "san" };
               { Padico_fault.Plan.at_ns = Time.ms 1;
                 action = Padico_fault.Plan.Link_down "lan" } ]);
        Proc.sleep_on (Node.clock c) (Time.ms 2);
        (* A reader parked for bytes that will never come, and enough
           writes to overrun the rewind window with nobody acking. *)
        let rd = Vl.post_read cvl (Bb.create 256) in
        let wrs =
          List.init 8 (fun _ -> Vl.post_write cvl (Bb.create 32_768))
        in
        (match Vl.await rd with
         | Vl.Error _ -> ()
         | o -> failf "parked read: want a clean error, got %s" (comp_name o));
        (* Writes accepted before the outage may complete [Done]; the rest
           must resolve to a clean [Error] — never hang. *)
        List.iteri
          (fun i w ->
             match Vl.await w with
             | Vl.Done _ | Vl.Error _ -> ()
             | o -> failf "write %d completed %s" i (comp_name o))
          wrs)
  in
  Padico.run grid ~until:(Time.sec 600);
  (match Proc.result h with
   | Some (Ok ()) -> ()
   | Some (Error (Failed _ as e)) -> raise e
   | Some (Error e) -> failf "client raised %s" (Printexc.to_string e)
   | None -> failf "client hung after retry exhaustion");
  let st = Resilient.stats conn in
  if st.Resilient.established then
    failf "session claims establishment across a permanent partition"

(* ---------- edge churn ---------- *)

(* Edge-gateway capacity mode under churn: an accept storm (every client
   dials at t=0), mid-handshake disconnects (abort fired before the
   SYN-ACK can arrive) and clients that reconnect reusing the same
   logical port. The server echoes every byte. Under every schedule
   policy: every surviving request must see its full echo, every
   mid-handshake abort must leave no server-side connection behind, and
   once the run quiesces the stacks must be empty — zero live
   connections, zero resident bytes, and readiness queues fully drained
   (no lost wakeups, no stuck sources). *)

module Sysio = Netaccess.Sysio
module Na = Netaccess.Na_core
module Tcp = Drivers.Tcp

let edge_churn ~plan policy =
  let n_storm = 24 and n_rejoin = 4 and n_abort = 6 in
  let port = 9400 and bufsize = 2048 in
  let grid = Padico.create ~prefs:bare_prefs () in
  let s = Padico.add_node grid "s" in
  let c = Padico.add_node grid "c" in
  let seg = Padico.add_segment grid Presets.ethernet100 ~name:"lan" [ s; c ] in
  Sim.set_policy (Padico.sim grid) policy;
  (match plan with
   | None -> ()
   | Some p -> ignore (Padico_fault.Inject.apply (Padico.net grid) p));
  let sio_s = Sysio.get s and sio_c = Sysio.get c in
  Sysio.set_edge sio_s;
  Sysio.set_edge sio_c;
  let st_s = Sysio.stack_on sio_s seg in
  let st_c = Sysio.stack_on sio_c seg in
  (* Echo server: read everything available, write it back, and keep the
     unwritten tail in a backlog flushed on [Writable]. *)
  let accepted = ref 0 in
  Sysio.listen ~sndbuf:bufsize ~rcvbuf:bufsize sio_s st_s ~port
    (fun conn ->
       incr accepted;
       let backlog = ref [] in
       let rec flush () =
         match !backlog with
         | [] -> ()
         | b :: rest ->
           let w = Sysio.write conn b in
           if w = Bb.length b then begin
             backlog := rest;
             flush ()
           end
           else if w > 0 then
             backlog := Bb.sub b w (Bb.length b - w) :: rest
       in
       let rec pump () =
         match Sysio.read conn ~max:bufsize with
         | None -> ()
         | Some b ->
           backlog := !backlog @ [ b ];
           pump ()
       in
       let teardown () =
         Sysio.unwatch sio_s conn;
         Sysio.close conn
       in
       Sysio.watch sio_s conn (function
         | Tcp.Readable -> pump (); flush ()
         | Tcp.Writable -> flush ()
         | Tcp.Peer_closed -> pump (); flush (); teardown ()
         | Tcp.Reset -> Sysio.unwatch sio_s conn
         | Tcp.Established -> ());
       (* Edge-triggered catch-up: events that fired between [Established]
          and this accept callback landed before the watch. *)
       if Sysio.readable_bytes conn > 0 then begin
         pump ();
         flush ()
       end;
       if Sysio.peer_closed conn then teardown ());
  let established = ref 0 and served = ref 0 and aborted = ref 0 in
  let rec dial ~size ~rejoin =
    let sent = ref 0 and got = ref 0 in
    let payload = Bb.create bufsize in
    let push cn =
      let continue = ref true in
      while !sent < size && !continue do
        let n = min (size - !sent) (Bb.length payload) in
        let w = Sysio.write cn (Bb.sub payload 0 n) in
        if w = 0 then continue := false else sent := !sent + w
      done
    in
    ignore
      (Sysio.connect ~sndbuf:bufsize ~rcvbuf:bufsize sio_c st_c
         ~dst:(Node.id s) ~port (fun cn ev ->
             match ev with
             | Tcp.Established ->
               incr established;
               push cn
             | Tcp.Writable -> push cn
             | Tcp.Readable ->
               let rec drain () =
                 match Sysio.read cn ~max:bufsize with
                 | None -> ()
                 | Some b ->
                   got := !got + Bb.length b;
                   drain ()
               in
               drain ();
               if !got >= size then begin
                 incr served;
                 Sysio.unwatch sio_c cn;
                 Sysio.close cn;
                 if rejoin then dial ~size ~rejoin:false
               end
             | Tcp.Peer_closed ->
               Sysio.unwatch sio_c cn;
               Sysio.close cn
             | Tcp.Reset -> Sysio.unwatch sio_c cn))
  in
  for i = 0 to n_storm - 1 do
    dial ~size:(256 + (160 * i)) ~rejoin:(i < n_rejoin)
  done;
  for _ = 1 to n_abort do
    let cn =
      Sysio.connect ~sndbuf:bufsize ~rcvbuf:bufsize sio_c st_c
        ~dst:(Node.id s) ~port (fun _ _ -> ())
    in
    (* 1 us is far below the LAN round-trip: the RST overtakes the
       handshake, a genuine mid-dial disconnect. *)
    Clock.after (Node.clock c) (Time.us 1) (fun () ->
        Sysio.abort cn;
        Sysio.unwatch sio_c cn;
        incr aborted)
  done;
  Padico.run grid ~until:(Time.sec 60);
  let want = n_storm + n_rejoin in
  if !established <> want then
    failf "established %d of %d connections" !established want;
  if !served <> want then failf "served %d of %d echo requests" !served want;
  if !aborted <> n_abort then
    failf "fired %d of %d mid-handshake aborts" !aborted n_abort;
  List.iter
    (fun (sio, who) ->
       let live = Sysio.conn_count sio in
       if live <> 0 then
         failf "%s still holds %d live connections after full churn" who live;
       let resident = Sysio.bytes_resident sio in
       if resident <> 0 then
         failf "%s still holds %d resident bytes after full churn" who
           resident)
    [ (sio_s, "server"); (sio_c, "client") ];
  if Sysio.conns_reaped sio_s < n_storm then
    failf "server reaped only %d connections (want >= %d)"
      (Sysio.conns_reaped sio_s) n_storm;
  List.iter
    (fun (n, who) ->
       let core = Na.get n in
       let depth = Na.ready_depth core in
       if depth <> 0 then
         failf "%s readiness queue not drained: depth %d of %d sources" who
           depth (Na.source_count core))
    [ (s, "server"); (c, "client") ]

(* ---------- demo ordering bug (guarded) ---------- *)

(* A deliberate register-after-dispatch bug in miniature, compiled in but
   only registered when [demo] is requested: handler registration and
   message delivery are scheduled at the same instant, so any non-FIFO
   schedule can dispatch the delivery first and drop the message. Used to
   prove the harness catches this bug class and that its replay token
   reproduces the failure. *)
let demo_ordering policy =
  let sim = Sim.create () in
  Sim.set_policy sim policy;
  let delivered = ref false in
  let handler = ref None in
  Sim.after sim (Time.us 10) (fun () ->
      Sim.after sim 0 (fun () ->
          handler := Some (fun () -> delivered := true));
      Sim.after sim 0 (fun () ->
          match !handler with Some f -> f () | None -> ()));
  Sim.run sim;
  if not !delivered then
    failf "message dispatched before its handler was registered"

(* ---------- case registry ---------- *)

type case = {
  case_name : string;
  run : plan:Padico_fault.Plan.t option -> Engine.Sim.policy -> unit;
}

let apply_plan grid = function
  | None -> ()
  | Some p -> ignore (Padico_fault.Inject.apply (Padico.net grid) p)

let cases ?(demo = false) () =
  let vlink =
    List.concat_map
      (fun fx ->
         List.filter_map
           (fun ob ->
              if List.mem ob.oname fx.skip then None
              else
                Some
                  { case_name = fx.fname ^ "/" ^ ob.oname;
                    run =
                      (fun ~plan policy ->
                         let env = fx.build () in
                         Sim.set_policy (Padico.sim env.grid) policy;
                         apply_plan env.grid plan;
                         ob.run env) })
           vlink_obligations)
      vlink_fixtures
  in
  let circuit =
    List.concat_map
      (fun fx ->
         List.map
           (fun ob ->
              { case_name = fx.cname ^ "/" ^ ob.ct_oname;
                run =
                  (fun ~plan policy ->
                     let env = fx.cbuild () in
                     Sim.set_policy (Padico.sim env.cgrid) policy;
                     apply_plan env.cgrid plan;
                     ob.ct_run env) })
           ct_obligations)
      ct_fixtures
  in
  let coll =
    List.concat_map
      (fun fx ->
         List.map
           (fun ob ->
              { case_name = fx.gname ^ "/" ^ ob.coname;
                run =
                  (fun ~plan policy ->
                     let env = fx.gbuild () in
                     Sim.set_policy (Padico.sim env.ggrid) policy;
                     apply_plan env.ggrid plan;
                     ob.corun env) })
           coll_obligations)
      coll_fixtures
  in
  let coll_fault =
    [ { case_name = "coll-fault/wan-down";
        run = (fun ~plan policy -> coll_wan_down ~plan policy) } ]
  in
  let coll_heal_cases =
    List.concat_map
      (fun (sname, strategy) ->
         List.concat_map
           (fun (vname, victim) ->
              List.map
                (fun opname ->
                   { case_name =
                       Printf.sprintf "coll-heal/%s-%s-%s" sname opname vname;
                     run =
                       (fun ~plan policy ->
                          coll_heal ~strategy ~victim ~opname ~plan policy) })
                coll_heal_ops)
           [ ("leaf", 3); ("proxy", 2) ])
      [ ("ml", Group.Multilevel); ("flat", Group.Flat) ]
  in
  let chaos_cases =
    [ { case_name = "coll-chaos/storm";
        run = (fun ~plan policy -> coll_chaos ~plan policy) } ]
  in
  let resilient_fault =
    [ { case_name = "resilient-fault/exhaustion";
        run = (fun ~plan policy -> resilient_exhausted ~plan policy) } ]
  in
  let edge_cases =
    [ { case_name = "edge-churn/storm";
        run = (fun ~plan policy -> edge_churn ~plan policy) } ]
  in
  let demo_cases =
    if demo then
      [ { case_name = "demo/ordering";
          run = (fun ~plan:_ policy -> demo_ordering policy) } ]
    else []
  in
  vlink @ circuit @ coll @ coll_fault @ coll_heal_cases @ chaos_cases
  @ resilient_fault @ edge_cases @ demo_cases

(* The host-backend subset: the same obligations, real sockets. Only the
   fixtures whose transports exist on the host qualify (loopback's
   in-process rendezvous and SysIO over Hostio streams); schedule policies
   belong to the simulator and are ignored — the OS provides the
   nondeterminism instead. *)
let host_fixtures =
  [ { fname = "loopback"; skip = [];
      build = (fun () -> loopback_env ~backend:Padico.Host ()) };
    { fname = "sysio"; skip = [];
      build =
        (fun () ->
           pair_env ~model:Presets.ethernet100 ~prefs:bare_prefs
             ~backend:Padico.Host ~expect_driver:"sysio" ()) } ]

let host_cases () =
  List.concat_map
    (fun fx ->
       List.filter_map
         (fun ob ->
            if List.mem ob.oname fx.skip then None
            else
              Some
                { case_name = "host/" ^ fx.fname ^ "/" ^ ob.oname;
                  run =
                    (fun ~plan _policy ->
                       let env = fx.build () in
                       apply_plan env.grid plan;
                       ob.run env) })
         vlink_obligations)
    host_fixtures

let adapters_covered = List.length vlink_fixtures
