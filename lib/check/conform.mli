(** Adapter conformance kit: one suite of semantic obligations, every
    adapter.

    Each VLink adapter (loopback, MadIO, SysIO/TCP, pstream, AdOC, crypto,
    VRP, resilient) must honour the same contract — connect/accept
    symmetry, no byte loss or reordering, [Eof] vs [Error] discipline on
    peer close, [Again]/{!Vlink.Vl.on_writable} progress under
    backpressure, close idempotence and timeout behaviour. The kit states
    each obligation once and instantiates it against a fixture per
    adapter: a fresh grid whose topology and preferences make the selector
    pick exactly that adapter. A Circuit counterpart checks message
    boundaries, incremental packing and group membership per adapter mix.

    A Collectives counterpart instantiates every {!Collectives.Group}
    operation (barrier, bcast, reduce, allreduce, gather, scatter) against
    topology x strategy fixtures — one shared LAN or SAN segment, and two
    SAN islands over a WAN backbone, each under both the flat and the
    multilevel strategy — checking payload correctness, barrier
    synchronisation and exact WAN-crossing counts. ["coll-fault/wan-down"]
    drops the WAN backbone under a deadline-armed broadcast and requires
    every rank to reach a definite outcome (delivery or a clean failure)
    instead of hanging.

    Cases are pure: each run builds a fresh grid, so the same case can be
    executed under any schedule {!Engine.Sim.policy} and fault plan —
    that's what {!Explore} does. A violation raises {!Failed}. *)

exception Failed of string
(** An obligation was violated; the message says which invariant and how. *)

(** One runnable conformance case, named ["<fixture>/<obligation>"]. *)
type case = {
  case_name : string;
  run : plan:Padico_fault.Plan.t option -> Engine.Sim.policy -> unit;
      (** Build the fixture's grid, set the schedule policy, apply the
          fault plan (if any) and execute the obligation. Raises {!Failed}
          on violation; deterministic for fixed (plan, policy). *)
}

val cases : ?demo:bool -> unit -> case list
(** The full kit: every obligation against every applicable adapter
    fixture, plus the Circuit cases. [~demo:true] (default false) also
    registers ["demo/ordering"], a deliberately planted
    register-after-dispatch bug that FIFO masks — used to demonstrate (and
    test) that schedule exploration catches this bug class. *)

val host_cases : unit -> case list
(** The kit's host-backend subset: every VLink obligation against the
    loopback and SysIO fixtures on [Padico.Host] — real Unix sockets,
    wall-clock timers. The schedule-policy argument is ignored (the OS
    schedules); fault plans still apply, through real-socket resets. *)

val adapters_covered : int
(** Number of VLink adapter fixtures in the kit. *)
