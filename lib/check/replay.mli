(** Replay tokens: the coordinates of one schedule-exploration run.

    A failing conformance case is fully determined by three things — the
    case name, the schedule {!Engine.Sim.policy} (including a random
    policy's seed), and the fault plan applied to the grid. A token packs
    all three into one line, [PCHK:v1:<case>:<policy>:<plan-digest>], that
    {!Explore.replay} (and [padico_cli check --replay]) turns back into a
    byte-identical re-run. The plan itself is not embedded — only its
    digest, so a replay supplies the same plan file and the digest check
    catches a mismatch before a confusing non-reproduction. *)

type token = {
  case : string;  (** conformance case name, ["<fixture>/<obligation>"] *)
  policy : Engine.Sim.policy;
  plan_digest : string;  (** {!digest_plan} of the fault plan; ["-"] if none *)
}

val digest_plan : Padico_fault.Plan.t option -> string
(** FNV-1a 64 digest over the plan's canonical rendering; ["-"] for [None].
    Two textual plans that parse to the same events digest identically. *)

val to_string : token -> string

val of_string : string -> (token, string) result
(** Inverse of {!to_string}; the error names what is malformed. *)
