module Bytebuf = Engine.Bytebuf
module Syswrap = Personalities.Syswrap
module Proc = Engine.Proc

let log = Logs.Src.create "corba.orb"

module Log = (val Logs.src_log log : Logs.LOG)

type servant = op:string -> Cdr.value -> (Cdr.value, string) result

type t = {
  grid : Padico.t;
  onode : Simnet.Node.t;
  prof : Cdr.profile;
  sw : Syswrap.t;
  servants : (string, servant) Hashtbl.t;
  mutable served : int;
}

type ior = { ior_node : Simnet.Node.t; ior_port : int; ior_key : string }

type proxy = {
  orb : t;
  target : ior;
  mutable fd : int option;
  lock : Proc.Semaphore.t;
  mutable next_req : int;
}

let instances : (int * string, t) Hashtbl.t = Hashtbl.create 16
let () = Engine.Lifecycle.on_reset (fun () -> Hashtbl.reset instances)

let init ?(profile = Cdr.omniorb4) grid node =
  let key = (Simnet.Node.uid node, profile.Cdr.pname) in
  match Hashtbl.find_opt instances key with
  | Some t -> t
  | None ->
    let t =
      { grid; onode = node; prof = profile; sw = Syswrap.attach grid node;
        servants = Hashtbl.create 8; served = 0 }
    in
    Hashtbl.replace instances key t;
    t

let node t = t.onode

let profile t = t.prof

let activate t ~key servant = Hashtbl.replace t.servants key servant

let deactivate t ~key = Hashtbl.remove t.servants key

let charge_marshal t bulk =
  Simnet.Node.cpu t.onode
    (t.prof.Cdr.fixed_ns
     + int_of_float (t.prof.Cdr.marshal_per_byte_ns *. float_of_int bulk))

let charge_unmarshal t bulk =
  Simnet.Node.cpu t.onode
    (t.prof.Cdr.fixed_ns
     + int_of_float (t.prof.Cdr.unmarshal_per_byte_ns *. float_of_int bulk))

let iov_len iov = List.fold_left (fun a b -> a + Bytebuf.length b) 0 iov

(* writev-style send: runs of small pieces are coalesced into one write so
   the GIOP header rides in the same wire message as a small body (one
   MadIO message, not two); large zero-copy payloads stay by reference. *)
let coalesce_threshold = 1024

let send_message t fd ~header ~body =
  let flush buf =
    if Buffer.length buf > 0 then begin
      ignore (Syswrap.send t.sw fd (Bytebuf.of_string (Buffer.contents buf)));
      Buffer.clear buf
    end
  in
  let small = Buffer.create 256 in
  List.iter
    (fun piece ->
       if Bytebuf.length piece <= coalesce_threshold then
         Buffer.add_string small (Bytebuf.to_string piece)
       else begin
         flush small;
         ignore (Syswrap.send t.sw fd piece)
       end)
    (header :: body);
  flush small

let recv_message t fd =
  let hdr = Bytebuf.create Giop.header_len in
  if not (Syswrap.recv_exact t.sw fd hdr) then None
  else begin
    let h = Giop.decode_header hdr in
    let body = Bytebuf.create h.Giop.body_len in
    if h.Giop.body_len > 0 && not (Syswrap.recv_exact t.sw fd body) then None
    else Some (h, body)
  end

(* Per-connection server process. *)
let serve_connection t fd =
  let rec loop () =
    match recv_message t fd with
    | None -> Syswrap.close t.sw fd
    | Some (h, body) ->
      charge_unmarshal t (Bytebuf.length body);
      let key, op, args = Giop.decode_request ~profile:t.prof body in
      let result =
        match Hashtbl.find_opt t.servants key with
        | None -> Error (Printf.sprintf "OBJECT_NOT_EXIST: %S" key)
        | Some servant ->
          (try servant ~op args
           with e -> Error (Printexc.to_string e))
      in
      t.served <- t.served + 1;
      if not h.Giop.oneway then begin
        let body = Giop.encode_reply ~profile:t.prof ~result in
        charge_marshal t (iov_len body);
        let header =
          Giop.encode_header
            { Giop.msg_type = Giop.Reply; oneway = false;
              request_id = h.Giop.request_id; body_len = iov_len body }
        in
        send_message t fd ~header ~body
      end;
      loop ()
  in
  (try loop ()
   with Syswrap.Unix_error e ->
     Log.debug (fun m -> m "orb connection closed: %s" e))

let serve t ~port =
  ignore
    (Simnet.Node.spawn t.onode ~name:"orb-acceptor" (fun () ->
         let lfd = Syswrap.socket t.sw in
         Syswrap.bind_listen t.sw lfd ~port;
         while true do
           let cfd = Syswrap.accept t.sw lfd in
           ignore
             (Simnet.Node.spawn t.onode ~name:"orb-conn" (fun () ->
                  serve_connection t cfd))
         done))

(* ---------- client ---------- *)

let ior_to_string i =
  Printf.sprintf "IOR:%d:%d:%s" (Simnet.Node.id i.ior_node) i.ior_port
    i.ior_key

let ior_of_string grid s =
  match String.split_on_char ':' s with
  | [ "IOR"; node_id; port; key ] ->
    (match
       ( Simnet.Net.node_by_id (Padico.net grid) (int_of_string node_id),
         int_of_string_opt port )
     with
     | Some n, Some p -> Some { ior_node = n; ior_port = p; ior_key = key }
     | _ -> None)
  | _ -> None

let resolve orb target =
  { orb; target; fd = None; lock = Proc.Semaphore.create 1; next_req = 1 }

let ensure_fd p =
  match p.fd with
  | Some fd -> fd
  | None ->
    let t = p.orb in
    let fd = Syswrap.socket t.sw in
    Syswrap.connect t.sw fd ~dst:p.target.ior_node ~port:p.target.ior_port;
    p.fd <- Some fd;
    fd

let do_invoke p ~oneway ~op args =
  let t = p.orb in
  Proc.Semaphore.acquire p.lock;
  Fun.protect
    ~finally:(fun () -> Proc.Semaphore.release p.lock)
    (fun () ->
       let fd = ensure_fd p in
       let req_id = p.next_req in
       p.next_req <- req_id + 1;
       let body =
         Giop.encode_request ~profile:t.prof ~key:p.target.ior_key ~op ~args
       in
       charge_marshal t (iov_len body);
       let header =
         Giop.encode_header
           { Giop.msg_type = Giop.Request; oneway; request_id = req_id;
             body_len = iov_len body }
       in
       send_message t fd ~header ~body;
       if oneway then Ok Cdr.VNull
       else begin
         match recv_message t fd with
         | None -> Error "COMM_FAILURE: connection closed"
         | Some (h, body) ->
           if h.Giop.request_id <> req_id then
             Error "INTERNAL: reply id mismatch"
           else begin
             charge_unmarshal t (Bytebuf.length body);
             Giop.decode_reply ~profile:t.prof body
           end
       end)

let invoke p ~op args = do_invoke p ~oneway:false ~op args

let invoke_oneway p ~op args = ignore (do_invoke p ~oneway:true ~op args)

let proxy_driver p =
  match p.fd with
  | Some fd ->
    Some (Vlink.Vl.driver_name (Syswrap.vlink_of_fd p.orb.sw fd))
  | None -> None

let requests_served t = t.served
