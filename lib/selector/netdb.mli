(** Topology knowledge base over a node group: cluster / level enumeration.

    The selector decides one link at a time; group operations need the dual
    view — "which ranks form a SAN island, which islands only meet over the
    WAN?". [build] partitions the ranks of a group (an ordered node array,
    as passed to {!Circuit.Ct.create}) into {e clusters}: the connected
    components of the SAN/LAN adjacency, i.e. two ranks are clustered
    together when a chain of SAN or LAN segments (or a shared host) joins
    them. Everything between clusters is the WAN level. The partition is
    what topology-aware collectives consult to build per-level trees —
    binomial inside a cluster, one designated proxy rank per cluster across
    the WAN (the MPICH-G2 multilevel scheme). *)

type t

(** Communication level of a hop, coarsest classification the multilevel
    trees care about. *)
type level =
  | San  (** inside a system-area island (or intra-host) *)
  | Lan  (** inside a LAN-joined cluster with no SAN *)
  | Wan  (** between clusters *)

val level_name : level -> string
(** ["san"] | ["lan"] | ["wan"]. *)

val build : Simnet.Net.t -> Simnet.Node.t array -> t
(** Partition [group]'s ranks. Deterministic: clusters are numbered by
    their smallest member rank, ascending. O(ranks + segment ports). *)

val evict : t -> int -> t
(** [evict db rank] is the partition without [rank]: the rank disappears
    from its cluster's member list (the cluster itself disappears if that
    was its last member), clusters are renumbered by their new smallest
    member, and positions are recomputed — so if the evicted rank was a
    cluster's leader/proxy, {!leader} automatically designates the next
    smallest survivor. [size] is unchanged: ranks keep their original
    numbers. The evicted rank maps to cluster [-1]; querying it afterwards
    is a caller error. Self-healing groups call this on each confirmed
    member death. O(ranks). *)

val size : t -> int
(** Number of ranks in the group (including any evicted ranks — the
    original numbering space). *)

val cluster_count : t -> int

val cluster_of : t -> int -> int
(** [cluster_of db rank] is the cluster id (0 .. cluster_count-1). *)

val members : t -> int -> int array
(** Ranks of a cluster, ascending. Do not mutate. *)

val position : t -> int -> int
(** [position db rank] is the rank's index inside [members db
    (cluster_of db rank)]. *)

val leader : t -> int -> int
(** Designated proxy rank of a cluster — its smallest member rank. *)

val cluster_level : t -> int -> level
(** [San] when the cluster is joined by at least one SAN segment (or is a
    single rank), [Lan] otherwise. Never [Wan]: that is the inter-cluster
    level. *)

val partition : t -> int array
(** [partition db] is the rank -> cluster-id map as a fresh array — the
    shard plan for the conservative parallel engine: one shard per
    SAN/LAN island puts every intra-cluster hop on its owner shard and
    leaves only WAN frames (whose latency is the lookahead) crossing
    shards. Feed the ids to [Net.add_node ~shard] / [Padico.add_node
    ~shard]. *)

val hop_level : t -> int -> int -> level
(** Level of a direct message between two ranks: [Wan] across clusters,
    the cluster's level inside one. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: cluster count and per-cluster size/level/leader. *)
