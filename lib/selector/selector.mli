(** The selector: automatically and dynamically choose the best arbitrated
    interface for each link according to the available hardware and the
    user preferences, then map it onto the right abstract interface through
    the right adapter.

    The decision is pure (driven by {!Simnet.Net} topology and {!Prefs});
    the Padico runtime applies it by instantiating drivers. *)

module Prefs = Prefs

module Netdb = Netdb
(** Topology knowledge base: cluster / level enumeration for group
    operations (consumed by [Collectives]). *)

type choice = {
  driver : string;  (** "loopback" | "madio" | "sysio" | "pstream" | "vrp" *)
  segment : Simnet.Segment.t option;  (** chosen network, None = loopback *)
  streams : int;  (** >1 only for pstream *)
  wrap_adoc : bool;
  wrap_crypto : bool;
  vrp_tolerance : float;  (** meaningful when driver = "vrp" *)
}

val choose :
  ?prefs:Prefs.t -> ?exclude:Simnet.Segment.t list -> Simnet.Net.t ->
  src:Simnet.Node.t -> dst:Simnet.Node.t -> choice
(** Decision rules, in order:
    - same node → loopback;
    - best common segment is a SAN → MadIO (straight parallel path);
    - lossy WAN and VRP enabled → VRP with the configured tolerance;
    - WAN and parallel streams enabled → pstream;
    - otherwise → SysIO/TCP.
    AdOC wraps slow links when enabled; the cipher wraps untrusted links
    (security adaptation: trusted links are never ciphered).

    Segments listed in [exclude], and segments whose carrier is currently
    down, are not candidates — this is how failover re-selection asks for
    "the best link that is {e not} the one that just died".
    Raises [Failure] when no common network exists, or none is usable. *)

val pp_choice : Format.formatter -> choice -> unit
