module Node = Simnet.Node
module Segment = Simnet.Segment
module Linkmodel = Simnet.Linkmodel

type level = San | Lan | Wan

let level_name = function San -> "san" | Lan -> "lan" | Wan -> "wan"

type t = {
  size : int;
  cluster_of : int array;  (* rank -> cluster id *)
  members : int array array;  (* cluster id -> ranks, ascending *)
  position : int array;  (* rank -> index in its cluster's members *)
  levels : level array;  (* cluster id -> San | Lan *)
}

(* Union-find over ranks, path-halving; [san.(r)] records whether the
   component containing [r] is joined by at least one SAN hop. *)
let rec find parent i =
  let p = parent.(i) in
  if p = i then i
  else begin
    parent.(i) <- parent.(p);
    find parent parent.(i)
  end

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then parent.(max ra rb) <- min ra rb

let build net group =
  let n = Array.length group in
  let parent = Array.init n (fun i -> i) in
  (* Ranks sharing a host are one cluster (loopback level = San-like). *)
  let by_host = Hashtbl.create (2 * n) in
  Array.iteri
    (fun r node ->
       let key = Node.uid node in
       match Hashtbl.find_opt by_host key with
       | Some first -> union parent first r
       | None -> Hashtbl.add by_host key r)
    group;
  (* One pass over the grid's segments: every SAN/LAN segment unions the
     group ranks attached to it — O(ports), never O(ranks^2). SAN witnesses
     are resolved to component roots only after every union has run. *)
  let san_witness = ref [] in
  List.iter
    (fun seg ->
       match (Segment.model seg).Linkmodel.class_ with
       | Linkmodel.San | Linkmodel.Lan ->
         let first = ref (-1) in
         List.iter
           (fun node ->
              match Hashtbl.find_opt by_host (Node.uid node) with
              | None -> ()  (* attached node outside the group *)
              | Some r ->
                if !first < 0 then first := r else union parent !first r)
           (Segment.nodes seg);
         if
           !first >= 0
           && (Segment.model seg).Linkmodel.class_ = Linkmodel.San
         then san_witness := !first :: !san_witness
       | Linkmodel.Wan | Linkmodel.Lossy_wan | Linkmodel.Loop -> ())
    (Simnet.Net.segments net);
  let san_seg = Hashtbl.create 8 in
  List.iter (fun r -> Hashtbl.replace san_seg (find parent r) ()) !san_witness;
  (* Number clusters by smallest member rank, ascending — roots already are
     the smallest member thanks to min-root unions. *)
  let cluster_of = Array.make n 0 in
  let ids = Hashtbl.create 8 in
  let count = ref 0 in
  for r = 0 to n - 1 do
    let root = find parent r in
    let id =
      match Hashtbl.find_opt ids root with
      | Some id -> id
      | None ->
        let id = !count in
        incr count;
        Hashtbl.add ids root id;
        id
    in
    cluster_of.(r) <- id
  done;
  let sizes = Array.make !count 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) cluster_of;
  let members = Array.init !count (fun c -> Array.make sizes.(c) 0) in
  let fill = Array.make !count 0 in
  let position = Array.make n 0 in
  for r = 0 to n - 1 do
    let c = cluster_of.(r) in
    members.(c).(fill.(c)) <- r;
    position.(r) <- fill.(c);
    fill.(c) <- fill.(c) + 1
  done;
  let levels =
    Array.init !count (fun c ->
        let root = find parent members.(c).(0) in
        if sizes.(c) = 1 || Hashtbl.mem san_seg root then San else Lan)
  in
  { size = n; cluster_of; members; position; levels }

(* Remove a rank from the partition: filter it out of its cluster, drop the
   cluster if that empties it, renumber clusters by (new) smallest member so
   the numbering invariant survives, and re-derive positions. The evicted
   rank maps to cluster -1 / position -1; querying it afterwards is a caller
   bug. O(ranks). *)
let evict t r =
  if r < 0 || r >= t.size || t.cluster_of.(r) < 0 then t
  else begin
    let keep =
      Array.to_list t.members
      |> List.mapi (fun c m -> (t.levels.(c), Array.to_list m))
      |> List.filter_map (fun (lvl, m) ->
          match List.filter (fun x -> x <> r) m with
          | [] -> None
          | m' -> Some (lvl, m'))
    in
    (* Ascending smallest member = ascending head (members are sorted). *)
    let keep =
      List.sort (fun (_, a) (_, b) -> compare (List.hd a) (List.hd b)) keep
    in
    let count = List.length keep in
    let cluster_of = Array.make t.size (-1) in
    let position = Array.make t.size (-1) in
    let members = Array.make count [||] in
    let levels = Array.make count San in
    List.iteri
      (fun c (lvl, m) ->
         members.(c) <- Array.of_list m;
         levels.(c) <- lvl;
         Array.iteri
           (fun i x ->
              cluster_of.(x) <- c;
              position.(x) <- i)
           members.(c))
      keep;
    { size = t.size; cluster_of; members; position; levels }
  end

let size t = t.size
let cluster_count t = Array.length t.members
let cluster_of t r = t.cluster_of.(r)
let members t c = t.members.(c)
let position t r = t.position.(r)
let leader t c = t.members.(c).(0)
let cluster_level t c = t.levels.(c)

let partition t = Array.copy t.cluster_of

let hop_level t a b =
  let ca = t.cluster_of.(a) and cb = t.cluster_of.(b) in
  if ca <> cb then Wan else t.levels.(ca)

let pp fmt t =
  Format.fprintf fmt "%d ranks in %d cluster%s:" t.size (cluster_count t)
    (if cluster_count t = 1 then "" else "s");
  Array.iteri
    (fun c m ->
       Format.fprintf fmt " [%d: %d %s, proxy %d]" c (Array.length m)
         (level_name t.levels.(c))
         (leader t c))
    t.members
