module Prefs = Prefs
module Netdb = Netdb

type choice = {
  driver : string;
  segment : Simnet.Segment.t option;
  streams : int;
  wrap_adoc : bool;
  wrap_crypto : bool;
  vrp_tolerance : float;
}

let plain ?segment driver =
  { driver; segment; streams = 1; wrap_adoc = false; wrap_crypto = false;
    vrp_tolerance = 0.0 }

(* Record the decision: a selection-layer trace event on the source node and
   a global per-driver decision count in the metrics registry. [rule] names
   the knowledge-base rule that fired, so traces explain *why* a link was
   mapped onto a given adapter stack. *)
let observe ~src ~dst ~rule choice =
  Engine.Stats.Counter.incr
    (Padico_obs.Metrics.counter Padico_obs.Metrics.Global
       ("selector.choice." ^ choice.driver));
  if Padico_obs.Trace.on () then
    Padico_obs.Trace.instant src
      (Padico_obs.Event.Choice
         { src = Simnet.Node.name src; dst = Simnet.Node.name dst;
           driver = choice.driver; rule; streams = choice.streams;
           adoc = choice.wrap_adoc; crypto = choice.wrap_crypto });
  choice

let choose ?(prefs = Prefs.default) ?(exclude = []) net ~src ~dst =
  if Simnet.Node.uid src = Simnet.Node.uid dst then
    observe ~src ~dst ~rule:"loopback" (plain "loopback")
  else begin
    let all = Simnet.Net.links_between net src dst in
    (* Dynamic re-selection: a segment whose carrier is down, or that the
       caller has blacklisted after a failure, is not a candidate. *)
    let usable =
      List.filter
        (fun s ->
           (not (Simnet.Segment.is_down s))
           && not
                (List.exists
                   (fun e -> Simnet.Segment.uid e = Simnet.Segment.uid s)
                   exclude))
        all
    in
    match usable with
    | [] ->
      if all = [] then
        failwith
          (Printf.sprintf "Selector: no common network between %s and %s"
             (Simnet.Node.name src) (Simnet.Node.name dst))
      else
        failwith
          (Printf.sprintf
             "Selector: no usable network between %s and %s (all links \
              down or excluded)"
             (Simnet.Node.name src) (Simnet.Node.name dst))
    | best :: _ as links ->
      let model s = Simnet.Segment.model s in
      (match prefs.Prefs.forced_driver with
       | Some driver ->
         observe ~src ~dst ~rule:"forced"
           { (plain ~segment:best driver) with
             streams = prefs.Prefs.pstream_streams }
       | None ->
         (* Prefer a SAN when present, even if not the top bandwidth. *)
         let san =
           List.find_opt
             (fun s -> (model s).Simnet.Linkmodel.class_ = Simnet.Linkmodel.San)
             links
         in
         (match san with
          | Some s -> observe ~src ~dst ~rule:"san" (plain ~segment:s "madio")
          | None ->
            let m = model best in
            let slow =
              m.Simnet.Linkmodel.bandwidth_bps <= prefs.Prefs.adoc_threshold_bps
            in
            let rule, base =
              match m.Simnet.Linkmodel.class_ with
              | Simnet.Linkmodel.Lossy_wan when prefs.Prefs.vrp_on_lossy ->
                ( "vrp-lossy",
                  { (plain ~segment:best "vrp") with
                    vrp_tolerance = prefs.Prefs.vrp_tolerance } )
              | Simnet.Linkmodel.Wan when prefs.Prefs.pstream_on_wan ->
                ( "pstream-wan",
                  { (plain ~segment:best "pstream") with
                    streams = prefs.Prefs.pstream_streams } )
              | Simnet.Linkmodel.San | Simnet.Linkmodel.Lan
              | Simnet.Linkmodel.Wan | Simnet.Linkmodel.Lossy_wan
              | Simnet.Linkmodel.Loop ->
                ("default", plain ~segment:best "sysio")
            in
            let base =
              if prefs.Prefs.adoc_on_slow && slow && base.driver <> "vrp" then
                { base with wrap_adoc = true }
              else base
            in
            let choice =
              if prefs.Prefs.cipher_untrusted
                 && (not m.Simnet.Linkmodel.trusted)
                 && base.driver <> "vrp"
              then { base with wrap_crypto = true }
              else base
            in
            observe ~src ~dst ~rule choice))
  end

let pp_choice fmt c =
  Format.fprintf fmt "%s%s%s%s%s" c.driver
    (match c.segment with
     | Some s -> Printf.sprintf " via %s" (Simnet.Segment.name s)
     | None -> "")
    (if c.streams > 1 then Printf.sprintf " x%d" c.streams else "")
    (if c.wrap_adoc then " +adoc" else "")
    (if c.wrap_crypto then " +crypto" else "")
