module Bytebuf = Engine.Bytebuf
module Node = Simnet.Node
module Segment = Simnet.Segment
module Vl = Vlink.Vl
module Streamq = Vlink.Streamq
module Timewheel = Padico_fault.Timewheel
module Backoff = Padico_fault.Backoff
module Trace = Padico_obs.Trace
module Metrics = Padico_obs.Metrics

let log = Logs.Src.create "resilient"

module Log = (val Logs.src_log log : Logs.LOG)

type config = {
  retry_base_ns : int;
  retry_factor : float;
  retry_max_ns : int;
  retry_jitter : float;
  max_retries : int;
  ack_timeout_ns : int;
  seed : int;
  tx_window : int;
  rx_high : int;
  rx_low : int;
}

let default_config =
  { retry_base_ns = 1_000_000; retry_factor = 2.0; retry_max_ns = 200_000_000;
    retry_jitter = 0.25; max_retries = 10; ack_timeout_ns = 50_000_000;
    seed = 0x5e55; tx_window = 4 * 1024 * 1024; rx_high = 1024 * 1024;
    rx_low = 256 * 1024 }

(* ---------- wire frames ---------- *)

let k_hello = 0

let k_data = 1

let k_ack = 2

let k_fin = 3

(* DATA payload cap per frame; big enough that framing overhead is noise,
   small enough that a loss-burst does not stall one giant write. *)
let frame_max = 65_536

let hello_frame ~session ~ack =
  let b = Bytebuf.create 9 in
  Bytebuf.set_u8 b 0 k_hello;
  Bytebuf.set_u32 b 1 session;
  Bytebuf.set_u32 b 5 ack;
  b

let ack_frame ~ack =
  let b = Bytebuf.create 5 in
  Bytebuf.set_u8 b 0 k_ack;
  Bytebuf.set_u32 b 1 ack;
  b

let fin_frame () =
  let b = Bytebuf.create 1 in
  Bytebuf.set_u8 b 0 k_fin;
  b

(* ---------- state ---------- *)

type parse_state =
  | P_kind
  | P_hdr of int  (* frame kind; waiting for its fixed header *)
  | P_payload of { offset : int; len : int }

type link = {
  lvl : Vl.t;
  lseg : Segment.t option;
  ldriver : string;
  lrq : Streamq.t;  (* reassembly buffer for frame parsing *)
  mutable lparse : parse_state;
  mutable ldead : bool;
  mutable lpaused : bool;  (* inner reads parked: session rx over high *)
  mutable lsess : sess option;  (* acceptor side: None until HELLO *)
  lln : listener option;  (* acceptor side: who accepted this transport *)
}

and role =
  | Client of client
  | Server of listener

and client = {
  cpad : Padico.t;
  csrc : Node.t;
  cdst : Node.t;
  cport : int;
  backoff : Backoff.t;
  mutable exclude : Segment.t list;  (* segments blamed for the outage *)
  mutable session_id : int;  (* 0 until the acceptor assigns one *)
  mutable attempts : int;  (* failed dials in the current outage *)
  mutable downtime_start : int option;
}

and listener = {
  lnode : Node.t;
  lcfg : config;
  laccept : Vl.t -> unit;
  sessions : (int, sess) Hashtbl.t;
  mutable next_sid : int;
}

and sess = {
  cfg : config;
  snode : Node.t;
  role : role;
  outer : Vl.t;
  mutable sid : int;
  mutable link : link option;
  mutable established : bool;
  mutable closed : bool;  (* we closed *)
  mutable finished : bool;  (* peer sent FIN *)
  (* The goodbye occupies one virtual byte of sequence space at [buf_end]:
     a closing session lingers — failover machinery and all — until the
     peer has acknowledged every data byte and the FIN itself
     (ack > buf_end). Otherwise a close right after a write tears the
     carrier down under in-flight data, and nobody is left to redial. *)
  mutable fin_sent : bool;  (* FIN written on the current link *)
  mutable fin_acked : bool;
  (* send side: bytes [una_off, buf_end) are buffered, [una_off, snd_nxt)
     are in flight on the current link. *)
  mutable txbuf : Bytebuf.t list;
  mutable una_off : int;
  mutable snd_nxt : int;
  mutable buf_end : int;
  mutable tx_peak : int;  (* high-water mark of buf_end - una_off *)
  (* receive side *)
  rx : Streamq.t;
  mutable rcv_nxt : int;
  (* stats *)
  mutable switches : int;
  mutable total_retries : int;
  mutable total_downtime : int;
  mutable cur_driver : string;
  mutable ops_attached : bool;
  mutable wd : Timewheel.timer option;
  mutable estd_cbs : (unit -> unit) list;  (* fired on each establishment *)
}

type conn = sess

let clock_of s = Node.clock s.snode

let now s = Engine.Clock.now (clock_of s)

(* Establishment watchers run after the session bookkeeping settles, in
   registration order. *)
let fire_established s = List.iter (fun f -> f ()) (List.rev s.estd_cbs)

(* ---------- send buffer ---------- *)

let tx_append s buf =
  s.txbuf <- s.txbuf @ [ Bytebuf.copy buf ];
  s.buf_end <- s.buf_end + Bytebuf.length buf;
  s.tx_peak <- Stdlib.max s.tx_peak (s.buf_end - s.una_off)

let tx_used s = s.buf_end - s.una_off

let tx_space s =
  if s.cfg.tx_window = max_int then max_int
  else Stdlib.max 0 (s.cfg.tx_window - tx_used s)

(* Drop everything the peer has acknowledged. *)
let ack_advance s ack =
  let ack = min ack s.buf_end in
  if ack > s.una_off then begin
    let rec go l off =
      match l with
      | [] -> []
      | b :: rest ->
        let len = Bytebuf.length b in
        if off + len <= ack then go rest (off + len)
        else Bytebuf.sub b (ack - off) (len - (ack - off)) :: rest
    in
    s.txbuf <- go s.txbuf s.una_off;
    s.una_off <- ack;
    if s.snd_nxt < ack then s.snd_nxt <- ack
  end

(* Copy [len] buffered bytes starting at absolute offset [off] into
   [dst] at [dst_off]. *)
let tx_copy s ~off ~len ~dst ~dst_off =
  let copied = ref 0 in
  let pos = ref s.una_off in
  List.iter
    (fun b ->
       let blen = Bytebuf.length b in
       let lo = !pos and hi = !pos + blen in
       if !copied < len && hi > off + !copied then begin
         let src_off = off + !copied - lo in
         let n = min (blen - src_off) (len - !copied) in
         Bytebuf.blit ~src:b ~src_off ~dst ~dst_off:(dst_off + !copied) ~len:n;
         copied := !copied + n
       end;
       pos := hi)
    s.txbuf;
  assert (!copied = len)

let outstanding s = s.buf_end > s.una_off

(* A closing session still owes the peer its FIN (and the data before it). *)
let fin_owed s = s.closed && not s.fin_acked

(* Nothing left to drive: the peer said goodbye, or our own goodbye has
   been acknowledged end to end. *)
let sess_done s = s.finished || (s.closed && s.fin_acked)

(* ---------- obs ---------- *)

let count name =
  Engine.Stats.Counter.incr (Metrics.counter Metrics.Global name)

let emit_retry s ~attempt ~delay_ns ~target =
  count "resilience.retry";
  if Trace.on () then
    Trace.instant s.snode
      (Padico_obs.Event.Retry { attempt; delay_ns; target })

let emit_failover s ~from_ ~to_ ~retries ~downtime_ns =
  count "resilience.failover";
  if Trace.on () then
    Trace.instant s.snode
      (Padico_obs.Event.Failover { from_; to_; retries; downtime_ns })

(* ---------- forward declarations would be a burden: one big cluster ---- *)

let rec write_frame l frame =
  if not l.ldead then begin
    let req = Vl.post_write l.lvl frame in
    Vl.set_handler req (function
      | Vl.Done _ -> ()
      | Vl.Again -> () (* blocking posts never yield Again *)
      | Vl.Eof -> link_failed l "write eof"
      | Vl.Error msg -> link_failed l ("write: " ^ msg))
  end

(* Push [snd_nxt, buf_end) onto the current link as DATA frames. *)
and transmit s =
  match s.link with
  | Some l when s.established && not l.ldead ->
    while s.snd_nxt < s.buf_end do
      let len = min frame_max (s.buf_end - s.snd_nxt) in
      let frame = Bytebuf.create (9 + len) in
      Bytebuf.set_u8 frame 0 k_data;
      Bytebuf.set_u32 frame 1 s.snd_nxt;
      Bytebuf.set_u32 frame 5 len;
      tx_copy s ~off:s.snd_nxt ~len ~dst:frame ~dst_off:9;
      s.snd_nxt <- s.snd_nxt + len;
      write_frame l frame
    done;
    (* The FIN rides the same ordered stream, after the last data byte;
       re-sent on each link incarnation until the peer acknowledges it. *)
    if fin_owed s && (not s.fin_sent) && s.snd_nxt = s.buf_end then begin
      s.fin_sent <- true;
      write_frame l (fin_frame ())
    end
  | _ -> ()

(* ---------- watchdog (connector side) ----------

   Armed whenever progress is owed: session not yet (re)established, or
   unacked bytes in flight. If neither the establishment flag nor the ack
   position moved during a full period, the link is silently blackholed
   (partition: frames drop without any carrier event) — declare it dead. *)
and arm_watchdog s =
  match s.role with
  | Server _ -> ()
  | Client _ ->
    if (match s.wd with None -> true | Some _ -> false)
       && (not (sess_done s))
       && ((not s.established) || outstanding s || fin_owed s)
    then begin
      let snap_est = s.established and snap_una = s.una_off in
      let wheel = Timewheel.for_clock (clock_of s) in
      s.wd <-
        Some
          (Timewheel.arm wheel ~after_ns:s.cfg.ack_timeout_ns (fun () ->
               s.wd <- None;
               if not (sess_done s) then
                 if (not s.established) || outstanding s || fin_owed s then
                   if s.established = snap_est && s.una_off = snap_una then (
                     match s.link with
                     | Some l -> link_failed l "timeout (no ack progress)"
                     | None ->
                       (* outage in progress, redial timer owns recovery *)
                       arm_watchdog s)
                   else arm_watchdog s))
    end

and cancel_watchdog s =
  match s.wd with
  | Some tm ->
    Timewheel.cancel tm;
    s.wd <- None
  | None -> ()

(* ---------- failure & redial (connector side) ---------- *)

and link_failed l msg =
  if not l.ldead then begin
    l.ldead <- true;
    (match l.lsess with
     | None -> Vl.close l.lvl
     | Some s -> session_link_failed s l msg)
  end

and session_link_failed s l msg =
  if not (sess_done s) then begin
    Log.debug (fun m ->
        m "%s: link %s failed: %s" (Node.name s.snode) l.ldriver msg);
    (match s.link with
     | Some cur when cur == l ->
       s.link <- None;
       s.established <- false
     | _ -> ());
    Vl.close l.lvl;
    match s.role with
    | Server _ ->
      (* Passive: hold the session, the connector will redial. *)
      ()
    | Client c ->
      if c.downtime_start = None then c.downtime_start <- Some (now s);
      (match l.lseg with
       | Some seg
         when not
                (List.exists
                   (fun e -> Segment.uid e = Segment.uid seg)
                   c.exclude) ->
         c.exclude <- seg :: c.exclude
       | _ -> ());
      schedule_redial s msg
  end

and give_up s msg =
  s.closed <- true;
  s.fin_acked <- true;  (* stop lingering: there is no link left to drive *)
  cancel_watchdog s;
  (match s.link with Some l -> l.ldead <- true; Vl.close l.lvl | None -> ());
  s.link <- None;
  Vl.notify s.outer (Vl.Failed msg)

and schedule_redial s msg =
  match s.role with
  | Server _ -> ()
  | Client c ->
    if c.attempts >= s.cfg.max_retries then
      give_up s ("failover exhausted: " ^ msg)
    else begin
      c.attempts <- c.attempts + 1;
      s.total_retries <- s.total_retries + 1;
      let delay_ns = Backoff.next c.backoff in
      emit_retry s ~attempt:c.attempts ~delay_ns ~target:(Node.name c.cdst);
      Engine.Clock.after (clock_of s) delay_ns (fun () ->
          if (not (sess_done s)) && not s.established then dial s)
    end

(* ---------- dialing (connector side) ---------- *)

and dial s =
  match s.role with
  | Server _ -> ()
  | Client c ->
    let choose exclude =
      match
        Selector.choose ~prefs:(Padico.prefs c.cpad) ~exclude
          (Padico.net c.cpad) ~src:c.csrc ~dst:c.cdst
      with
      | ch -> Some ch
      | exception Failure _ -> None
    in
    let choice =
      match choose c.exclude with
      | Some ch -> Some ch
      | None when c.exclude <> [] ->
        (* Everything usable is blacklisted: forgive and retry — the
           excluded link may have healed. *)
        c.exclude <- [];
        choose []
      | None -> None
    in
    (match choice with
     | None -> schedule_redial s "no usable network"
     | Some ch ->
       (match
          Padico.connect_with_choice c.cpad ~src:c.csrc ~dst:c.cdst
            ~port:c.cport ch
        with
        | exception e -> schedule_redial s (Printexc.to_string e)
        | vl ->
          let l =
            { lvl = vl; lseg = ch.Selector.segment;
              ldriver = ch.Selector.driver; lrq = Streamq.create ();
              lparse = P_kind; ldead = false; lpaused = false;
              lsess = Some s; lln = None }
          in
          s.link <- Some l;
          let hello () =
            write_frame l
              (hello_frame ~session:c.session_id ~ack:s.rcv_nxt)
          in
          Vl.on_event vl (function
            | Vl.Connected -> hello ()
            | Vl.Failed m -> link_failed l m
            | Vl.Peer_closed ->
              if not s.finished then link_failed l "peer closed"
            | Vl.Readable | Vl.Writable -> ());
          if Vl.is_connected vl then hello ()
          else if Vl.is_closed vl then link_failed l "connect failed";
          read_loop l;
          arm_watchdog s))

(* ---------- inner receive path ---------- *)

and read_loop l =
  let buf = Bytebuf.create frame_max in
  let rec again () =
    if not l.ldead then begin
      (* Receive-side pushback: when the application lets the session's
         receive queue climb past the high watermark, park the inner read
         loop — unread bytes back up in the transport (closing a TCP
         receive window, stalling MadIO credits) instead of growing rx
         without bound. [resume_rx] restarts us when the app drains.
         Note the shared-stream tradeoff: ACKs for our own transmissions
         ride the same inner stream, so a parked reader also stalls its
         own send window until the application reads — flow control
         couples the two directions, exactly like a real socket. *)
      match l.lsess with
      | Some s when Streamq.length s.rx >= s.cfg.rx_high ->
        l.lpaused <- true;
        if Trace.on () then
          Trace.instant s.snode
            (Padico_obs.Event.Flow
               { action = "pause"; place = "resilient.rx";
                 bytes = Streamq.length s.rx })
      | _ ->
        let req = Vl.post_read l.lvl buf in
        Vl.set_handler req (function
          | Vl.Done n ->
            Streamq.push l.lrq (Bytebuf.copy (Bytebuf.sub buf 0 n));
            parse l;
            again ()
          | Vl.Again -> again ()
          | Vl.Eof ->
            (* Clean inner EOF without FIN: connection died politely (e.g.
               remote runtime closed the transport) — same as a failure. *)
            link_failed l "eof"
          | Vl.Error msg -> link_failed l msg)
    end
  in
  again ()

(* Keep parsing a dead link as long as it has a bound session: a clean FIN
   (and the DATA frames before it) often arrives in the same flight as the
   carrier teardown it caused, so bytes received before the drop are still
   valid session stream. Only a pre-HELLO link discards its backlog. *)
and parse_on l = (not l.ldead) || l.lsess <> None

and parse l =
  if parse_on l then begin
    let q = l.lrq in
    let continue = ref true in
    while !continue do
      continue := false;
      match l.lparse with
      | P_kind ->
        if Streamq.length q >= 1 then begin
          let b = Streamq.pop_exact q 1 in
          let kind = Bytebuf.get_u8 b 0 in
          if kind = k_fin then begin
            handle_fin l;
            continue := parse_on l
          end
          else begin
            l.lparse <- P_hdr kind;
            continue := true
          end
        end
      | P_hdr kind ->
        let need =
          if kind = k_hello then 8
          else if kind = k_data then 8
          else if kind = k_ack then 4
          else -1
        in
        if need < 0 then link_failed l (Printf.sprintf "bad frame kind %d" kind)
        else if Streamq.length q >= need then begin
          let h = Streamq.pop_exact q need in
          if kind = k_hello then begin
            l.lparse <- P_kind;
            handle_hello l ~session:(Bytebuf.get_u32 h 0)
              ~ack:(Bytebuf.get_u32 h 4)
          end
          else if kind = k_data then
            l.lparse <-
              P_payload
                { offset = Bytebuf.get_u32 h 0; len = Bytebuf.get_u32 h 4 }
          else begin
            l.lparse <- P_kind;
            handle_ack l (Bytebuf.get_u32 h 0)
          end;
          continue := parse_on l
        end
      | P_payload { offset; len } ->
        if Streamq.length q >= len then begin
          let payload = Streamq.pop_exact q len in
          l.lparse <- P_kind;
          handle_data l ~offset payload;
          continue := parse_on l
        end
    done
  end

(* ---------- frame handlers ---------- *)

and handle_hello l ~session ~ack =
  match l.lsess with
  | Some s -> session_established s l ~session ~ack
  | None -> (
    (* acceptor side, link not yet bound *)
    match l.lln with
    | None -> link_failed l "unexpected HELLO"
    | Some ln ->
      if session = 0 then begin
        let sid = ln.next_sid in
        ln.next_sid <- sid + 1;
        let s = make_sess ln.lcfg ln.lnode (Server ln) in
        s.sid <- sid;
        Hashtbl.replace ln.sessions sid s;
        bind_link s l;
        s.established <- true;
        write_frame l (hello_frame ~session:sid ~ack:s.rcv_nxt);
        s.ops_attached <- true;
        s.cur_driver <- l.ldriver;
        Vl.attach_ops s.outer (outer_ops s);
        ln.laccept s.outer;
        fire_established s
      end
      else begin
        match Hashtbl.find_opt ln.sessions session with
        | None ->
          (* Unknown session (e.g. acceptor restarted): refuse. *)
          link_failed l "unknown session"
        | Some s ->
          (* Rebind: retire whatever link the session still holds. *)
          (match s.link with
           | Some old when not old.ldead ->
             old.ldead <- true;
             Vl.close old.lvl
           | _ -> ());
          bind_link s l;
          ack_advance s ack;
          s.snd_nxt <- s.una_off;
          s.fin_sent <- false;
          s.established <- true;
          s.cur_driver <- l.ldriver;
          write_frame l (hello_frame ~session ~ack:s.rcv_nxt);
          transmit s;
          fire_established s
      end)

and session_established s l ~session ~ack =
  match s.role with
  | Server _ ->
    (* Acceptor sessions never receive a second HELLO on a bound link. *)
    ignore session;
    ignore ack;
    link_failed l "unexpected HELLO on bound link"
  | Client c ->
    c.session_id <- session;
    ack_advance s ack;
    s.snd_nxt <- s.una_off;
    s.fin_sent <- false;
    s.established <- true;
    let t_now = now s in
    if not s.ops_attached then begin
      s.ops_attached <- true;
      s.cur_driver <- l.ldriver;
      Vl.attach_ops s.outer (outer_ops s)
    end
    else begin
      let start = Option.value c.downtime_start ~default:t_now in
      let dt = t_now - start in
      s.total_downtime <- s.total_downtime + dt;
      if l.ldriver <> s.cur_driver then begin
        s.switches <- s.switches + 1;
        emit_failover s ~from_:s.cur_driver ~to_:l.ldriver
          ~retries:c.attempts ~downtime_ns:dt
      end;
      s.cur_driver <- l.ldriver
    end;
    c.downtime_start <- None;
    c.attempts <- 0;
    c.exclude <- [];
    Backoff.reset c.backoff;
    transmit s;
    arm_watchdog s;
    fire_established s

and handle_ack l ack =
  match l.lsess with
  | None -> link_failed l "ACK before HELLO"
  | Some s ->
    let before = tx_space s in
    ack_advance s ack;
    (* Freed window space: let queued outer writes back in. *)
    if tx_space s > before && not s.closed then
      Vl.notify s.outer Vl.Writable;
    (* ack > buf_end acknowledges the FIN: the whole stream arrived, the
       lingering close can finally drop the carrier. *)
    if fin_owed s && ack > s.buf_end then begin
      s.fin_acked <- true;
      finish_close s
    end
    else begin
      (* Progress: let the watchdog take a fresh snapshot. *)
      cancel_watchdog s;
      arm_watchdog s
    end

and handle_data l ~offset payload =
  match l.lsess with
  | None -> link_failed l "DATA before HELLO"
  | Some s ->
    let len = Bytebuf.length payload in
    if offset > s.rcv_nxt then
      (* A gap is impossible on a healthy rewind; drop and let the sender's
         watchdog sort it out. *)
      Log.warn (fun m ->
          m "%s: dropping out-of-order DATA at %d (expect %d)"
            (Node.name s.snode) offset s.rcv_nxt)
    else begin
      (* Duplicate prefix from a retransmit rewind: deliver only the new
         suffix. *)
      let skip = s.rcv_nxt - offset in
      if skip < len then begin
        Streamq.push s.rx (Bytebuf.sub payload skip (len - skip));
        s.rcv_nxt <- s.rcv_nxt + (len - skip);
        Vl.notify s.outer Vl.Readable
      end;
      write_frame l (ack_frame ~ack:s.rcv_nxt)
    end

and handle_fin l =
  match l.lsess with
  | None -> link_failed l "FIN before HELLO"
  | Some s ->
    let first = not s.finished in
    s.finished <- true;
    (* Acknowledge the FIN's virtual byte so the closer knows the whole
       stream made it and stops lingering. A FIN retransmitted over a
       failover is re-acked; [Peer_closed] still fires exactly once. The
       session stays in the acceptor's table until the closer drops the
       carrier, so a redial racing a lost FIN-ack can still rebind. *)
    write_frame l (ack_frame ~ack:(s.rcv_nxt + 1));
    if first then begin
      cancel_watchdog s;
      Vl.notify s.outer Vl.Peer_closed
    end

(* ---------- session plumbing ---------- *)

and bind_link s l =
  l.lsess <- Some s;
  s.link <- Some l

and make_sess cfg node role =
  if cfg.tx_window < frame_max then
    invalid_arg "Resilient: tx_window must be >= 64 KiB";
  if cfg.rx_low < 0 || cfg.rx_low > cfg.rx_high then
    invalid_arg "Resilient: need 0 <= rx_low <= rx_high";
  let s =
  { cfg; snode = node; role; outer = Vl.create node; sid = 0; link = None;
    established = false; closed = false; finished = false;
    fin_sent = false; fin_acked = false; txbuf = [];
    tx_peak = 0;
    una_off = 0; snd_nxt = 0; buf_end = 0; rx = Streamq.create ();
    rcv_nxt = 0; switches = 0; total_retries = 0; total_downtime = 0;
    cur_driver = "(none)"; ops_attached = false; wd = None; estd_cbs = [] }
  in
  let scope = Metrics.Node (Node.name node) in
  Metrics.gauge scope "resilient.txbuf_bytes" (fun () ->
      float_of_int (tx_used s));
  Metrics.gauge scope "resilient.rx_bytes" (fun () ->
      float_of_int (Streamq.length s.rx));
  s

and close_sess s =
  if not s.closed then begin
    s.closed <- true;
    if s.finished then begin
      (* The peer already said goodbye: its session is winding down and
         will never ack a FIN, so say ours best-effort and drop. *)
      cancel_watchdog s;
      (match s.role with
       | Server ln -> Hashtbl.remove ln.sessions s.sid
       | Client _ -> ());
      s.fin_acked <- true;
      match s.link with
      | Some l when not l.ldead ->
        let req = Vl.post_write l.lvl (fin_frame ()) in
        Vl.set_handler req (fun _ ->
            l.ldead <- true;
            Vl.close l.lvl)
      | _ -> ()
    end
    else begin
      (* Linger: the FIN rides the ordered stream behind any buffered
         data, and the session — watchdog, redial, retransmit — stays
         alive until the peer acknowledges it ({!handle_ack}). A close
         right after a burst of writes must not strand in-flight bytes
         when the carrier dies: with the session still live, the failover
         machinery replays them on the next link. *)
      transmit s;
      arm_watchdog s
    end
  end

and finish_close s =
  cancel_watchdog s;
  (match s.role with
   | Server ln -> Hashtbl.remove ln.sessions s.sid
   | Client _ -> ());
  (match s.link with
   | Some l when not l.ldead ->
     l.ldead <- true;
     Vl.close l.lvl
   | _ -> ());
  s.link <- None

and outer_ops s =
  { Vl.o_write =
      (fun buf ->
         if s.closed || s.finished then 0
         else begin
           (* The rewind buffer is bounded against the peer's acked offset:
              accept only what fits in the remaining window. The rest stays
              queued in the outer VLink and is retried when an ACK reopens
              space (ack_advance notifies Writable). *)
           let n = min (Bytebuf.length buf) (tx_space s) in
           if n > 0 then begin
             tx_append s (Bytebuf.sub buf 0 n);
             transmit s;
             arm_watchdog s
           end
           else if Bytebuf.length buf > 0 && Trace.on () then
             Trace.instant s.snode
               (Padico_obs.Event.Flow
                  { action = "window.full"; place = "resilient.tx";
                    bytes = tx_used s });
           n
         end);
    o_read =
      (fun ~max ->
         let r = Streamq.pop s.rx ~max in
         resume_rx s;
         r);
    o_readable = (fun () -> Streamq.length s.rx);
    o_write_space = (fun () -> if s.closed then 0 else tx_space s);
    o_close = (fun () -> close_sess s);
    o_driver = "resilient" }

(* Restart a parked inner read loop once the application has drained the
   session's receive queue to the low watermark. The pause state lives on
   the link, so a failover mid-pause starts the new link's loop afresh
   (which re-parks immediately if the queue is still high). *)
and resume_rx s =
  match s.link with
  | Some l
    when l.lpaused && (not l.ldead) && Streamq.length s.rx <= s.cfg.rx_low ->
    l.lpaused <- false;
    if Trace.on () then
      Trace.instant s.snode
        (Padico_obs.Event.Flow
           { action = "resume"; place = "resilient.rx";
             bytes = Streamq.length s.rx });
    read_loop l
  | _ -> ()

(* ---------- public API ---------- *)

let connect ?(config = default_config) pad ~src ~dst ~port =
  let c =
    { cpad = pad; csrc = src; cdst = dst; cport = port;
      backoff =
        Backoff.create ~base_ns:config.retry_base_ns
          ~factor:config.retry_factor ~max_ns:config.retry_max_ns
          ~jitter:config.retry_jitter ~seed:config.seed ();
      exclude = []; session_id = 0; attempts = 0; downtime_start = None }
  in
  let s = make_sess config src (Client c) in
  dial s;
  s

let vl s = s.outer

let on_established s f =
  s.estd_cbs <- f :: s.estd_cbs;
  if s.established then f ()

type stats = {
  switches : int;
  retries : int;
  downtime_ns : int;
  driver : string;
  established : bool;
  tx_peak : int;
  rx_peak : int;
}

let stats s =
  let downtime =
    match s.role with
    | Client { downtime_start = Some t0; _ } ->
      s.total_downtime + (now s - t0)
    | _ -> s.total_downtime
  in
  { switches = s.switches; retries = s.total_retries;
    downtime_ns = downtime;
    driver = (if s.established then s.cur_driver else "(none)");
    established = s.established; tx_peak = s.tx_peak;
    rx_peak = Streamq.peak s.rx }

let listen ?(config = default_config) pad node ~port accept =
  let ln =
    { lnode = node; lcfg = config; laccept = accept;
      sessions = Hashtbl.create 8; next_sid = 1 }
  in
  Padico.listen pad node ~port (fun inbound ->
      let l =
        { lvl = inbound; lseg = None; ldriver = Vl.driver_name inbound;
          lrq = Streamq.create (); lparse = P_kind; ldead = false;
          lpaused = false; lsess = None; lln = Some ln }
      in
      Vl.on_event inbound (function
        | Vl.Failed m -> link_failed l m
        | Vl.Peer_closed ->
          (match l.lsess with
           | Some s when s.finished ->
             (* Orderly teardown: the closer got our FIN-ack and dropped
                the carrier — the session can leave the table now. *)
             Hashtbl.remove ln.sessions s.sid
           | _ -> link_failed l "peer closed")
        | Vl.Connected | Vl.Readable | Vl.Writable -> ());
      read_loop l)
