(** Resilient VLinks: failover re-selection on top of the selector.

    A plain VLink is bound to the adapter the selector chose at connect
    time; when fault injection kills that link, the VLink dies with it
    (MadIO is fail-fast by design). This module interposes a small
    session layer that makes the {e link} survive the {e connection}:

    - application bytes are sequenced and buffered until acknowledged by
      the peer, so nothing is lost when a connection dies mid-transfer;
    - on failure (link-down interrupt, connection reset, or an
      acknowledgement watchdog expiring), the connector re-consults
      {!Selector.choose} {e excluding the failed segment} — a dead SAN
      falls back to sysio/TCP on the LAN — and redials with exponential
      backoff and deterministic jitter ({!Padico_fault.Backoff});
    - on reconnect the two sides exchange HELLO frames carrying their
      receive positions, the sender rewinds to the peer's position, and
      the transfer resumes exactly where it stopped (duplicates from the
      old link are discarded by sequence number).

    Retries, adapter switches and downtime are recorded as
    {!Padico_obs.Event.Retry} / {!Padico_obs.Event.Failover} trace events
    and summarized in {!stats}. Everything runs on the virtual clock: two
    runs with the same seed replay identically.

    The wire protocol (inside the inner VLink byte stream) is:
    {v
      HELLO [u8 0 | u32 session | u32 ack]   session 0 = new session
      DATA  [u8 1 | u32 offset  | u32 len | bytes]
      ACK   [u8 2 | u32 offset]
      FIN   [u8 3]
    v}
    Offsets are per-direction cumulative byte counts (u32: transfers are
    capped at 4 GiB per direction, plenty for simulation). *)

type config = {
  retry_base_ns : int;  (** first reconnect delay (default 1 ms) *)
  retry_factor : float;  (** backoff growth (default 2.0) *)
  retry_max_ns : int;  (** backoff cap (default 200 ms) *)
  retry_jitter : float;  (** +/- fraction of the delay (default 0.25) *)
  max_retries : int;  (** consecutive failed dials before giving up *)
  ack_timeout_ns : int;
  (** watchdog: no connect/ack progress for this long declares the link
      dead — this is what detects partitions, where frames vanish without
      any error event (default 50 ms) *)
  seed : int;  (** jitter stream seed *)
  tx_window : int;
  (** Rewind-buffer bound: unacked bytes the session will hold for
      retransmission after failover (default 4 MiB). Once [buf_end -
      acked_offset] reaches the window, outer writes stop accepting bytes
      ([o_write] returns a partial count or 0) until an ACK advances; a
      [Writable] event on the outer VLink signals reopened space. Must be
      at least one frame (64 KiB). *)
  rx_high : int;
  (** Receive-queue high watermark (default 1 MiB): when the application
      leaves this many reassembled bytes unread, the inner read loop
      parks and bytes back up in the transport (closing its window /
      stalling its credits). Because ACKs for our own transmissions ride
      the same inner stream, a parked reader also freezes its send
      window until the application reads — the two directions couple,
      as on a real socket. *)
  rx_low : int;
  (** Resume reading once the receive queue drains to this (default
      256 KiB). Needs [0 <= rx_low <= rx_high]. *)
}

val default_config : config

type conn
(** Connector-side handle: the session plus its failover machinery. *)

val connect :
  ?config:config -> Padico.t -> src:Simnet.Node.t -> dst:Simnet.Node.t ->
  port:int -> conn
(** Open a resilient session to [dst]. Dialing, failure detection and
    redialing all happen asynchronously on the virtual clock; use
    {!Vlink.Vl.await_connected} on {!vl} to wait for establishment. After
    [max_retries] consecutive failed dials the outer VLink fails with
    ["failover exhausted"] and every pending request completes [Error]. *)

val vl : conn -> Vlink.Vl.t
(** The stable application-facing VLink. It stays [Connected] across
    failovers; reads and writes posted during an outage are buffered and
    resume on the next link. *)

val on_established : conn -> (unit -> unit) -> unit
(** [on_established c f] runs [f] every time the session completes an
    establishment handshake — the first dial and each successful failover.
    If the session is already established, [f] also runs immediately.
    Benchmarks use this to anchor fault plans at the moment the session is
    actually up, which on the host backend happens at an unpredictable
    wall-clock offset. *)

type stats = {
  switches : int;  (** adapter changes (e.g. madio -> sysio) *)
  retries : int;  (** reconnect attempts over the session lifetime *)
  downtime_ns : int;  (** total virtual time with no established link *)
  driver : string;  (** current inner driver, "(none)" during an outage *)
  established : bool;
  tx_peak : int;
  (** high-water mark of the rewind buffer (unacked bytes); stays under
      [tx_window] when flow control is on *)
  rx_peak : int;
  (** high-water mark of the reassembled receive queue; bounded near
      [rx_high] when the inner read loop pushes back *)
}

val stats : conn -> stats

val listen :
  ?config:config -> Padico.t -> Simnet.Node.t -> port:int ->
  (Vlink.Vl.t -> unit) -> unit
(** Accept resilient sessions on [port] (binds every adapter, like
    {!Padico.listen}). [accept] runs once per {e session} — a reconnecting
    peer is rebound to its existing session by id, the application VLink
    does not change. The acceptor side is passive: it keeps the session
    alive and waits for the connector to redial. *)
