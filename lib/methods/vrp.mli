(** VRP — Variable Reliability Protocol (Denis, RR2000-11): a datagram
    stream with a {e tunable loss tolerance}.

    On lossy WANs, TCP's interpretation of every loss as congestion
    collapses throughput. VRP lets the application accept a bounded loss
    ratio: the sender paces datagrams at a target rate, the receiver
    reports gaps, and the sender retransmits a gap {e only when abandoning
    it would exceed the tolerance budget}. With [tolerance = 0] VRP is a
    reliable protocol; with 10 % it sustains several times TCP's goodput on
    a 5–10 % loss link (experiment E5).

    Rate control is loss-budget-driven AIMD-lite: the rate decays only when
    observed loss exceeds the tolerated budget, and creeps up otherwise. *)

type sender
type receiver

val create_sender :
  Netaccess.Sysio.t ->
  Drivers.Udp.t ->
  dst:int ->
  dst_port:int ->
  tolerance:float ->
  rate_bps:float ->
  sender
(** [tolerance] ∈ [0,1): fraction of the stream that may be abandoned. *)

val send : sender -> Engine.Bytebuf.t -> unit
(** Append stream data (chunked and paced asynchronously). *)

val finish : sender -> unit
(** Mark end of stream; keeps retransmitting/abandoning until resolved. *)

val create_receiver :
  Netaccess.Sysio.t ->
  Drivers.Udp.t ->
  port:int ->
  ?on_chunk:(offset:int -> Engine.Bytebuf.t -> unit) ->
  ?on_complete:(unit -> unit) ->
  unit ->
  receiver

(** {1 Statistics} *)

val backlog_bytes : sender -> int
(** Bytes accepted by {!send} that the pacer has not yet put on the wire
    (sub-chunk leftovers included). The basis for sender-side
    backpressure: a rate-limited stream otherwise buffers without bound. *)

val on_backlog_drain : sender -> (unit -> unit) -> unit
(** One-shot hook run the next time the pacer dequeues a chunk (i.e. the
    backlog shrank) — immediately if the backlog is already empty. Only
    one hook is retained; the last registration wins. *)

val sender_rate_bps : sender -> float
val chunks_sent : sender -> int
val chunks_retransmitted : sender -> int
val chunks_abandoned : sender -> int

val delivered_bytes : receiver -> int
val lost_bytes : receiver -> int
val observed_loss_ratio : receiver -> float
(** lost / (delivered + lost), in bytes. *)

val complete : receiver -> bool
