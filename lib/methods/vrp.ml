module Bytebuf = Engine.Bytebuf
module Proc = Engine.Proc
module Sim = Engine.Sim

let log = Logs.Src.create "methods.vrp"

module Log = (val Logs.src_log log : Logs.LOG)

(* Wire format (one UDP datagram each):
   DATA     [u8 1 | u32 seq | u32 len | bytes]        (len < chunk for tail)
   FEEDBACK [u8 2 | u32 highest | u16 n | n * u32 missing-seq]
   ABANDON  [u8 3 | u16 n | n * u32 seq]
   FIN      [u8 4 | u32 total-chunks | u64 total-bytes] *)

let data_hdr = 9

let feedback_every = 32

let feedback_interval_ns = 50_000_000

type sender = {
  sio : Netaccess.Sysio.t;
  udp : Drivers.Udp.t;
  dst : int;
  dst_port : int;
  src_port : int;
  tolerance : float;
  chunk : int;
  mutable rate : float;
  node : Simnet.Node.t;
  pending : Bytebuf.t Queue.t; (* chunks not yet sent *)
  retrans : int Queue.t; (* seqs to retransmit (priority) *)
  store : (int, Bytebuf.t) Hashtbl.t; (* sent, possibly needed again *)
  mutable next_seq : int;
  mutable total_bytes : int;
  mutable finished : bool;
  mutable fin_acked : bool;
  mutable sent : int;
  mutable retransmitted : int;
  mutable abandoned : int;
  abandoned_set : (int, unit) Hashtbl.t;
  (* Rate control: gaps already counted against the budget, and datagrams
     sent since the last feedback (to turn gap counts into a loss rate). *)
  counted_missing : (int, unit) Hashtbl.t;
  mutable sent_since_fb : int;
  rate_max : float;
  mutable pacer_running : bool;
  mutable partial : Bytebuf.t list; (* sub-chunk leftovers, reversed *)
  mutable partial_len : int;
  mutable backlog : int; (* bytes accepted but not yet paced onto the wire *)
  mutable on_drain : (unit -> unit) option;
      (* one-shot: fired when the pacer dequeues, i.e. backlog shrank *)
}

type receiver = {
  rnode : Simnet.Node.t;
  rudp : Drivers.Udp.t;
  rport : int;
  on_chunk : (offset:int -> Bytebuf.t -> unit) option;
  on_complete : (unit -> unit) option;
  seen : (int, int) Hashtbl.t; (* seq -> byte length *)
  lost : (int, int) Hashtbl.t; (* abandoned seq -> assumed length *)
  mutable highest : int; (* highest seq seen + 1 *)
  mutable delivered : int;
  mutable lost_bytes_ : int;
  mutable total_chunks : int option; (* known after FIN *)
  mutable chunk_len : int; (* full chunk length, learned from data *)
  mutable since_feedback : int;
  mutable peer : (int * int) option; (* sender node, port *)
  mutable complete_ : bool;
  mutable completion_fired : bool;
  mutable ticking : bool; (* periodic-feedback timer armed *)
}

(* ---------- encoding helpers ---------- *)

let encode_data ~seq (chunk : Bytebuf.t) =
  let len = Bytebuf.length chunk in
  let out = Bytebuf.create (data_hdr + len) in
  Bytebuf.set_u8 out 0 1;
  Bytebuf.set_u32 out 1 seq;
  Bytebuf.set_u32 out 5 len;
  Bytebuf.blit_dma ~src:chunk ~src_off:0 ~dst:out ~dst_off:data_hdr ~len;
  out

let encode_feedback ~highest missing =
  let n = min 200 (List.length missing) in
  let out = Bytebuf.create (7 + (4 * n)) in
  Bytebuf.set_u8 out 0 2;
  Bytebuf.set_u32 out 1 highest;
  Bytebuf.set_u16 out 5 n;
  List.iteri
    (fun i seq -> if i < n then Bytebuf.set_u32 out (7 + (4 * i)) seq)
    missing;
  out

let encode_abandon seqs =
  let n = min 200 (List.length seqs) in
  let out = Bytebuf.create (3 + (4 * n)) in
  Bytebuf.set_u8 out 0 3;
  Bytebuf.set_u16 out 1 n;
  List.iteri (fun i s -> if i < n then Bytebuf.set_u32 out (3 + (4 * i)) s) seqs;
  out

let encode_fin ~total_chunks ~total_bytes =
  let out = Bytebuf.create 13 in
  Bytebuf.set_u8 out 0 4;
  Bytebuf.set_u32 out 1 total_chunks;
  Bytebuf.set_i64 out 5 (Int64.of_int total_bytes);
  out

(* ---------- sender ---------- *)

let sender_rate_bps s = s.rate

let chunks_sent s = s.sent

let chunks_retransmitted s = s.retransmitted

let chunks_abandoned s = s.abandoned

let emit_data s ~seq chunk =
  Simnet.Node.cpu_async s.node Calib.vrp_send_ns (fun () -> ());
  Drivers.Udp.sendto s.udp ~dst:s.dst ~dst_port:s.dst_port
    ~src_port:s.src_port (encode_data ~seq chunk)

let send_fin s =
  Drivers.Udp.sendto s.udp ~dst:s.dst ~dst_port:s.dst_port
    ~src_port:s.src_port
    (encode_fin ~total_chunks:s.next_seq ~total_bytes:s.total_bytes)

(* The pacer: one chunk per rate interval; retransmissions first. *)
let rec pacer s () =
  let sim = Simnet.Node.sim s.node in
  let interval () =
    int_of_float (float_of_int (s.chunk + data_hdr) /. s.rate *. 1e9)
  in
  if not (Queue.is_empty s.retrans) then begin
    let seq = Queue.pop s.retrans in
    (match Hashtbl.find_opt s.store seq with
     | Some chunk ->
       s.retransmitted <- s.retransmitted + 1;
       s.sent_since_fb <- s.sent_since_fb + 1;
       emit_data s ~seq chunk
     | None -> () (* already resolved *));
    Proc.sleep sim (interval ());
    pacer s ()
  end
  else if not (Queue.is_empty s.pending) then begin
    let chunk = Queue.pop s.pending in
    s.backlog <- s.backlog - Bytebuf.length chunk;
    (match s.on_drain with
     | Some f ->
       s.on_drain <- None;
       f ()
     | None -> ());
    let seq = s.next_seq in
    s.next_seq <- seq + 1;
    Hashtbl.replace s.store seq chunk;
    s.sent <- s.sent + 1;
    s.sent_since_fb <- s.sent_since_fb + 1;
    emit_data s ~seq chunk;
    Proc.sleep sim (interval ());
    pacer s ()
  end
  else if s.finished && not s.fin_acked then begin
    send_fin s;
    (* Re-announce FIN periodically until everything is resolved. *)
    Proc.sleep sim 100_000_000;
    if not s.fin_acked then pacer s () else s.pacer_running <- false
  end
  else s.pacer_running <- false

let kick_pacer s =
  if not s.pacer_running then begin
    s.pacer_running <- true;
    ignore (Simnet.Node.spawn s.node ~name:"vrp-pacer" (pacer s))
  end

let budget_allows_abandon s =
  float_of_int (s.abandoned + 1) <= s.tolerance *. float_of_int s.next_seq

let handle_feedback s buf =
  let n = Bytebuf.get_u16 buf 5 in
  let highest = Bytebuf.get_u32 buf 1 in
  let missing = ref [] in
  for i = 0 to n - 1 do
    missing := Bytebuf.get_u32 buf (7 + (4 * i)) :: !missing
  done;
  let missing = !missing in
  (* Everything below [highest] and not missing has been received: release. *)
  Hashtbl.iter
    (fun seq _ ->
       if seq < highest && not (List.mem seq missing) then
         Hashtbl.remove s.store seq)
    (Hashtbl.copy s.store);
  (* Decide per gap: abandon within budget, else retransmit. *)
  let to_abandon = ref [] in
  List.iter
    (fun seq ->
       if Hashtbl.mem s.abandoned_set seq then
         (* Still reported missing: the previous ABANDON was lost. Resend. *)
         to_abandon := seq :: !to_abandon
       else if budget_allows_abandon s then begin
         s.abandoned <- s.abandoned + 1;
         Hashtbl.replace s.abandoned_set seq ();
         Hashtbl.remove s.store seq;
         to_abandon := seq :: !to_abandon
       end
       else if Hashtbl.mem s.store seq then Queue.push seq s.retrans)
    missing;
  if !to_abandon <> [] then
    Drivers.Udp.sendto s.udp ~dst:s.dst ~dst_port:s.dst_port
      ~src_port:s.src_port (encode_abandon !to_abandon);
  (* Loss-budget rate control: only {e fresh} gaps count, and the rate
     decays only while the fresh-loss rate exceeds the tolerated budget —
     within the budget VRP deliberately does NOT interpret loss as
     congestion (that is its whole advantage over TCP on lossy WANs). *)
  let fresh =
    List.filter
      (fun seq ->
         if Hashtbl.mem s.counted_missing seq then false
         else begin
           Hashtbl.replace s.counted_missing seq ();
           true
         end)
      missing
  in
  let window = max 8 s.sent_since_fb in
  s.sent_since_fb <- 0;
  let fresh_ratio = float_of_int (List.length fresh) /. float_of_int window in
  if fresh_ratio > Float.max (s.tolerance *. 1.5) 0.01 then
    s.rate <- Float.max 64e3 (s.rate *. 0.9)
  else s.rate <- Float.min s.rate_max (s.rate *. 1.05);
  kick_pacer s

let handle_sender_dgram s buf =
  match Bytebuf.get_u8 buf 0 with
  | 2 -> handle_feedback s buf
  | 4 -> s.fin_acked <- true (* receiver echoes FIN when complete *)
  | _ -> ()

let next_vrp_port = Atomic.make 40_000

let create_sender sio udp ~dst ~dst_port ~tolerance ~rate_bps =
  if tolerance < 0.0 || tolerance >= 1.0 then
    invalid_arg "Vrp.create_sender: tolerance must be in [0,1)";
  let src_port = Atomic.fetch_and_add next_vrp_port 1 + 1 in
  let chunk = Drivers.Udp.max_payload udp - data_hdr in
  let s =
    { sio; udp; dst; dst_port; src_port; tolerance; chunk; rate = rate_bps;
      node = Drivers.Udp.node udp; pending = Queue.create ();
      retrans = Queue.create (); store = Hashtbl.create 64; next_seq = 0;
      total_bytes = 0; finished = false; fin_acked = false; sent = 0;
      retransmitted = 0; abandoned = 0; abandoned_set = Hashtbl.create 16;
      counted_missing = Hashtbl.create 64; sent_since_fb = 0;
      rate_max = rate_bps; pacer_running = false; partial = [];
      partial_len = 0; backlog = 0; on_drain = None }
  in
  Netaccess.Sysio.watch_udp sio udp ~port:src_port
    (fun ~src:_ ~src_port:_ buf -> handle_sender_dgram s buf);
  s

let push_chunk s chunk =
  s.total_bytes <- s.total_bytes + Bytebuf.length chunk;
  Queue.push chunk s.pending

let send s buf =
  if s.finished then invalid_arg "Vrp.send: stream finished";
  s.backlog <- s.backlog + Bytebuf.length buf;
  s.partial <- buf :: s.partial;
  s.partial_len <- s.partial_len + Bytebuf.length buf;
  if s.partial_len >= s.chunk then begin
    let all = Bytebuf.concat (List.rev s.partial) in
    let total = Bytebuf.length all in
    let pos = ref 0 in
    while total - !pos >= s.chunk do
      push_chunk s (Bytebuf.sub all !pos s.chunk);
      pos := !pos + s.chunk
    done;
    let rest = Bytebuf.sub all !pos (total - !pos) in
    s.partial <- (if Bytebuf.length rest = 0 then [] else [ rest ]);
    s.partial_len <- Bytebuf.length rest
  end;
  kick_pacer s

let finish s =
  if not s.finished then begin
    if s.partial_len > 0 then begin
      push_chunk s (Bytebuf.concat (List.rev s.partial));
      s.partial <- [];
      s.partial_len <- 0
    end;
    s.finished <- true;
    kick_pacer s
  end

let backlog_bytes s = s.backlog

let on_backlog_drain s f =
  if s.backlog = 0 then f () else s.on_drain <- Some f

(* ---------- receiver ---------- *)

let delivered_bytes r = r.delivered

let lost_bytes r = r.lost_bytes_

let observed_loss_ratio r =
  let total = r.delivered + r.lost_bytes_ in
  if total = 0 then 0.0 else float_of_int r.lost_bytes_ /. float_of_int total

let complete r = r.complete_

let missing_seqs r =
  let out = ref [] in
  for seq = r.highest - 1 downto 0 do
    if not (Hashtbl.mem r.seen seq) && not (Hashtbl.mem r.lost seq) then
      out := seq :: !out
  done;
  !out

let check_complete r (s : sender option) ~src ~src_port =
  ignore s;
  match r.total_chunks with
  | Some total when r.highest >= total && missing_seqs r = [] ->
    r.complete_ <- true;
    (* Echo FIN so the sender stops; re-echoed on every FIN retransmit in
       case the echo itself was lost. *)
    Drivers.Udp.sendto r.rudp ~dst:src ~dst_port:src_port ~src_port:r.rport
      (encode_fin ~total_chunks:total ~total_bytes:0);
    if not r.completion_fired then begin
      r.completion_fired <- true;
      match r.on_complete with Some f -> f () | None -> ()
    end
  | _ -> ()

let send_feedback r ~src ~src_port =
  r.since_feedback <- 0;
  Drivers.Udp.sendto r.rudp ~dst:src ~dst_port:src_port ~src_port:r.rport
    (encode_feedback ~highest:r.highest (missing_seqs r))

(* Periodic feedback so tail losses are reported even without traffic;
   armed by the first datagram, disarmed at completion (an idle listener
   schedules nothing). *)
let rec start_tick r =
  if not r.ticking then begin
    r.ticking <- true;
    let sim = Simnet.Node.sim r.rnode in
    let rec tick () =
      Sim.after sim feedback_interval_ns (fun () ->
          if r.complete_ then r.ticking <- false
          else begin
            (match r.peer with
             | Some (src, src_port) ->
               if missing_seqs r <> [] || r.total_chunks <> None then
                 send_feedback r ~src ~src_port
             | None -> ());
            tick ()
          end)
    in
    tick ()
  end

and handle_receiver_dgram r ~src ~src_port buf =
  r.peer <- Some (src, src_port);
  start_tick r;
  match Bytebuf.get_u8 buf 0 with
  | 1 ->
    Simnet.Node.cpu_async r.rnode Calib.vrp_recv_ns (fun () -> ());
    let seq = Bytebuf.get_u32 buf 1 in
    let len = Bytebuf.get_u32 buf 5 in
    if not (Hashtbl.mem r.seen seq) then begin
      Hashtbl.replace r.seen seq len;
      if Hashtbl.mem r.lost seq then begin
        (* Arrived after being declared lost: count it back. *)
        r.lost_bytes_ <- r.lost_bytes_ - Hashtbl.find r.lost seq;
        Hashtbl.remove r.lost seq
      end;
      if len > r.chunk_len then r.chunk_len <- len;
      r.delivered <- r.delivered + len;
      if seq >= r.highest then r.highest <- seq + 1;
      (match r.on_chunk with
       | Some f -> f ~offset:(seq * r.chunk_len) (Bytebuf.sub buf data_hdr len)
       | None -> ());
      r.since_feedback <- r.since_feedback + 1;
      if r.since_feedback >= feedback_every then send_feedback r ~src ~src_port
    end;
    check_complete r None ~src ~src_port
  | 3 ->
    let n = Bytebuf.get_u16 buf 1 in
    for i = 0 to n - 1 do
      let seq = Bytebuf.get_u32 buf (3 + (4 * i)) in
      if not (Hashtbl.mem r.seen seq) && not (Hashtbl.mem r.lost seq) then begin
        let assumed = if r.chunk_len > 0 then r.chunk_len else 1 in
        Hashtbl.replace r.lost seq assumed;
        r.lost_bytes_ <- r.lost_bytes_ + assumed;
        if seq >= r.highest then r.highest <- seq + 1
      end
    done;
    check_complete r None ~src ~src_port
  | 4 ->
    let total = Bytebuf.get_u32 buf 1 in
    r.total_chunks <- Some total;
    if total > r.highest then begin
      (* Trailing datagrams may all be lost; surface them as gaps. *)
      r.highest <- total
    end;
    send_feedback r ~src ~src_port;
    check_complete r None ~src ~src_port
  | _ -> ()

let create_receiver sio udp ~port ?on_chunk ?on_complete () =
  let r =
    { rnode = Drivers.Udp.node udp; rudp = udp; rport = port; on_chunk;
      on_complete; seen = Hashtbl.create 512; lost = Hashtbl.create 64;
      highest = 0; delivered = 0; lost_bytes_ = 0; total_chunks = None;
      chunk_len = 0; since_feedback = 0; peer = None; complete_ = false;
      completion_fired = false; ticking = false }
  in
  Netaccess.Sysio.watch_udp sio udp ~port (fun ~src ~src_port buf ->
      handle_receiver_dgram r ~src ~src_port buf);
  r
