type t = {
  id : int;
  uid : int;
  name : string;
  sim : Engine.Sim.t;
  clock : Engine.Clock.t;
  mutable busy_until : int;
  mutable up : bool;
  mutable state_watchers : (bool -> unit) list;
}

let next_uid = Atomic.make 0

let create ?clock sim ~id ~name =
  let clock =
    match clock with Some c -> c | None -> Engine.Sim.clock sim
  in
  { id; uid = Atomic.fetch_and_add next_uid 1 + 1; name; sim; clock;
    busy_until = 0; up = true; state_watchers = [] }

let id t = t.id
let uid t = t.uid
let name t = t.name
let sim t = t.sim
let clock t = t.clock

let cpu_async t cost k =
  assert (cost >= 0);
  if Engine.Clock.is_virtual t.clock then begin
    let now = Engine.Sim.now t.sim in
    let start = if t.busy_until > now then t.busy_until else now in
    let finish = start + cost in
    t.busy_until <- finish;
    Engine.Sim.at t.sim finish k
  end
  else
    (* Wall clock: modelled CPU costs are not charged — real host time is
       the measurement. Keep the deferral so callback ordering (queue, then
       run) matches the simulated path. *)
    Engine.Clock.after t.clock 0 k

let cpu t cost =
  Engine.Proc.suspend (fun resume -> cpu_async t cost (fun () -> resume ()))

let cpu_busy_until t = t.busy_until

let is_up t = t.up

let set_up t up =
  if t.up <> up then begin
    t.up <- up;
    List.iter (fun f -> f up) t.state_watchers
  end

let on_state t f = t.state_watchers <- f :: t.state_watchers

let spawn t ?name f =
  let name =
    match name with Some n -> t.name ^ "/" ^ n | None -> t.name ^ "/proc"
  in
  Engine.Proc.spawn_on t.clock ~name f

let pp fmt t = Format.fprintf fmt "%s#%d" t.name t.id
