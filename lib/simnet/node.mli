(** A grid node: an identity, a CPU resource, and attached segments.

    The CPU is a serialized resource: software layers charge host time
    ([cpu], [cpu_async]) and charges queue behind each other, which is what
    makes per-byte copy costs and per-message overheads translate into the
    latency/bandwidth figures of the paper. *)

type t

val create : ?clock:Engine.Clock.t -> Engine.Sim.t -> id:int -> name:string -> t
(** [?clock] selects the execution backend for everything the node runs
    (processes, CPU charges, timers). Default: the simulator's virtual
    clock — byte-identical to the pre-capability behaviour. *)

val id : t -> int
(** Address of the node inside its own grid (small, per-[Net]). *)

(** [uid t] is a process-wide unique identity — a safe key for global
    registries even when several simulations coexist (tests). *)
val uid : t -> int

val name : t -> string
val sim : t -> Engine.Sim.t

val clock : t -> Engine.Clock.t
(** The clock capability this node runs on — the single point layers above
    (NetAccess, VLink, Resilient, Trace) consult to stay backend-agnostic. *)

val cpu_async : t -> int -> (unit -> unit) -> unit
(** [cpu_async node cost k] occupies the CPU for [cost] ns starting when it
    becomes free, then runs [k]. On a wall clock the modelled cost is not
    charged (real host time is the measurement); [k] still runs from a
    later loop iteration, preserving queue-then-run ordering. *)

val cpu : t -> int -> unit
(** Blocking variant for process context: suspends the calling process while
    the work executes. *)

val cpu_busy_until : t -> int
(** Instant at which already-queued CPU work completes. *)

val is_up : t -> bool
(** False while the node is crashed (fault injection). A down node neither
    sends nor receives frames on any segment; its already-scheduled CPU work
    still drains, modelling in-flight interrupts. *)

val set_up : t -> bool -> unit
(** Crash ([false]) or restart ([true]) the node. Used by the fault
    injector; idempotent (watchers only fire on actual transitions). *)

val on_state : t -> (bool -> unit) -> unit
(** Subscribe to up/down transitions — the crash-visibility hook. The
    Hostio backend bridges a crash to real-socket resets through this
    (mirroring {!Segment.on_link_state} for carrier loss); watchers cannot
    be removed, so subscribers must keep stale closures inert themselves. *)

val spawn : t -> ?name:string -> (unit -> unit) -> Engine.Proc.handle
(** Spawn a process "running on" this node (naming/logging convenience). *)

val pp : Format.formatter -> t -> unit
