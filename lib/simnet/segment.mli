(** A network segment: a set of node ports sharing one {!Linkmodel}.

    A point-to-point link is a 2-port segment; a switched Ethernet or a SAN
    fabric is an n-port segment. Each port serializes frames at the model's
    bandwidth on egress and on ingress, so two senders targeting the same
    receiver contend for its input port — the effect the NetAccess
    arbitration experiment (E6) relies on. Frames are dropped independently
    with the model's loss probability. *)

type t

val create : Engine.Sim.t -> Linkmodel.t -> name:string -> t

val name : t -> string
val model : t -> Linkmodel.t
val sim : t -> Engine.Sim.t

val uid : t -> int
(** Process-wide unique identity (distinct across simulations). *)

val attach : t -> Node.t -> unit
(** Give [node] a port on this segment. Idempotent. *)

val attached : t -> Node.t -> bool
val nodes : t -> Node.t list

val set_handler : t -> Node.t -> proto:int -> (Packet.t -> unit) -> unit
(** Register the receive callback for frames of protocol [proto] arriving at
    [node]'s port. One handler per (port, proto); re-registration replaces.
    Frames with no handler are counted and dropped. *)

val clear_handler : t -> Node.t -> proto:int -> unit

val send : t -> Packet.t -> unit
(** Inject a frame at the source port. Raises [Invalid_argument] when source
    or destination is not attached, or when the frame exceeds the MTU. The
    frame is delivered asynchronously (or lost). *)

(** {1 Sharded mode}

    Wired up by [Net] when the grid is created with [~shards]: every send
    then takes virtual time from the {e source node's} shard simulator,
    randomness from a per-port generator, and counters land in per-port
    cells — so sends racing on a shared segment from different shards never
    touch the same mutable state. Frames whose destination lives on another
    shard cross through [post] at their computed arrival time (always
    [>= now + latency], the floor the conservative runtime's lookahead is
    built from); destination-side ingress contention is resolved on the
    shard that owns the receiving port. *)

val enable_sharding :
  t ->
  shard_of:(int -> int) ->
  post:(src:int -> dst:int -> ts:int -> (unit -> unit) -> unit) ->
  unit
(** [enable_sharding t ~shard_of ~post] switches {!send} to the sharded
    path. [shard_of] maps a node id to its shard index; [post] is
    [Engine.Shard.post] partially applied to the runtime. Ports attached
    later inherit the sharded setup. *)

val sharded : t -> bool

(** {1 Dynamic fault overlay}

    Transient faults layered over the immutable {!Linkmodel}: link up/down,
    extra loss (bursts), extra latency (spikes) and blocked node pairs
    (partitions). Driven by [Padico_fault.Inject]; consulted per frame by
    {!send}. A fault-dropped frame consumes no randomness, so a healed link
    resumes with the same loss/jitter stream as an unfaulted run. *)

val is_down : t -> bool

val set_down : t -> bool -> unit
(** Take the link down / bring it up. On every change the {!on_link_state}
    watchers fire with the new carrier state ([true] = up). *)

val on_link_state : t -> (bool -> unit) -> unit
(** Subscribe to carrier changes (the simulated NIC link-status interrupt).
    Watchers stack and cannot be removed; guard stale subscriptions with a
    generation check on the caller side. *)

val set_extra_loss : t -> float -> unit
(** Additional frame-loss probability added to the model's during a burst
    window. Raises [Invalid_argument] outside [0, 1]. *)

val extra_loss : t -> float

val set_extra_latency : t -> int -> unit
(** Additional one-way latency in ns (a congestion spike). Raises
    [Invalid_argument] when negative. *)

val extra_latency_ns : t -> int

val block_pair : t -> int -> int -> unit
(** Drop every frame between the two node ids (either direction) — the
    per-segment building block of a network bipartition. *)

val unblock_pair : t -> int -> int -> unit
val clear_blocked : t -> unit
val pair_blocked : t -> int -> int -> bool

(** Observability for tests and benchmarks. *)
val frames_sent : t -> int

val frames_faulted : t -> int
(** Frames dropped by the fault overlay (down link, blocked pair, crashed
    endpoint) — counted separately from random {!frames_lost}. *)

val frames_lost : t -> int
val frames_delivered : t -> int
val frames_unclaimed : t -> int
val bytes_sent : t -> int
