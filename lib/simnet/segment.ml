type port = {
  node : Node.t;
  mutable egress_busy_until : int;
  mutable ingress_busy_until : int;
  handlers : (int, Packet.t -> unit) Hashtbl.t;
  (* Sharded mode only: every mutable cell a send touches must belong to
     exactly one shard. Egress state and tx counters belong to the source
     node's shard, ingress state and rx counters to the destination's, and
     each port draws loss/jitter from its own generator (a keyed,
     non-advancing child of the segment stream) so no two shards ever
     share an Rng. Classic mode leaves [prng = None] and the per-port
     counters at zero. *)
  mutable prng : Engine.Rng.t option;
  mutable tx_sent : int;
  mutable tx_bytes : int;
  mutable tx_lost : int;
  mutable tx_faulted : int;
  mutable rx_delivered : int;
  mutable rx_unclaimed : int;
}

(* Hooks into the Shard runtime, installed by [Net] at finalization. *)
type sharding = {
  shard_of : int -> int; (* node id -> shard index *)
  post : src:int -> dst:int -> ts:int -> (unit -> unit) -> unit;
}

let next_uid = ref 0

type t = {
  uid : int;
  name : string;
  sim : Engine.Sim.t;
  model : Linkmodel.t;
  rng : Engine.Rng.t;
  ports : (int, port) Hashtbl.t;
  mutable sent : int;
  mutable lost : int;
  mutable delivered : int;
  mutable unclaimed : int;
  mutable bytes : int;
  (* Dynamic fault overlay (see Padico_fault.Inject): the static Linkmodel
     stays immutable; faults are transient deltas consulted per frame. *)
  mutable down : bool;
  mutable extra_loss : float;
  mutable extra_latency_ns : int;
  blocked : (int * int, unit) Hashtbl.t; (* partition: (lo, hi) node ids *)
  mutable faulted : int;
  mutable link_watchers : (bool -> unit) list;
  mutable sharding : sharding option;
}

let log = Logs.Src.create "simnet.segment"

module Log = (val Logs.src_log log : Logs.LOG)

let create sim model ~name =
  incr next_uid;
  let model = Linkmodel.validate model in
  { uid = !next_uid; name; sim; model; rng = Engine.Rng.split (Engine.Sim.rng sim);
    ports = Hashtbl.create 16; sent = 0; lost = 0; delivered = 0;
    unclaimed = 0; bytes = 0;
    down = false; extra_loss = 0.0; extra_latency_ns = 0;
    blocked = Hashtbl.create 4; faulted = 0; link_watchers = [];
    sharding = None }

let uid t = t.uid
let name t = t.name
let model t = t.model
let sim t = t.sim

let port_rng t node = Engine.Rng.stream t.rng (Node.id node)

let attach t node =
  if not (Hashtbl.mem t.ports (Node.id node)) then
    Hashtbl.replace t.ports (Node.id node)
      { node; egress_busy_until = 0; ingress_busy_until = 0;
        handlers = Hashtbl.create 4;
        prng = (match t.sharding with
            | Some _ -> Some (port_rng t node)
            | None -> None);
        tx_sent = 0; tx_bytes = 0; tx_lost = 0; tx_faulted = 0;
        rx_delivered = 0; rx_unclaimed = 0 }

let enable_sharding t ~shard_of ~post =
  t.sharding <- Some { shard_of; post };
  (* Keyed child streams: derivation reads the segment generator without
     advancing it, so assignment order is irrelevant and each port's draw
     sequence is independent of its peers' traffic. *)
  Hashtbl.iter (fun _ p -> p.prng <- Some (port_rng t p.node)) t.ports

let sharded t = t.sharding <> None

let attached t node = Hashtbl.mem t.ports (Node.id node)

let nodes t = Hashtbl.fold (fun _ p acc -> p.node :: acc) t.ports []

let port_exn t id what =
  match Hashtbl.find_opt t.ports id with
  | Some p -> p
  | None ->
    invalid_arg
      (Printf.sprintf "Segment %s: node %d not attached (%s)" t.name id what)

let set_handler t node ~proto f =
  let p = port_exn t (Node.id node) "set_handler" in
  Hashtbl.replace p.handlers proto f

let clear_handler t node ~proto =
  let p = port_exn t (Node.id node) "clear_handler" in
  Hashtbl.remove p.handlers proto

let deliver t (dst : port) (pkt : Packet.t) =
  match Hashtbl.find_opt dst.handlers pkt.proto with
  | Some f ->
    t.delivered <- t.delivered + 1;
    f pkt
  | None ->
    t.unclaimed <- t.unclaimed + 1;
    Log.debug (fun m ->
        m "%s: no handler for %a at %a" t.name Packet.pp pkt Node.pp dst.node)

(* ---------- dynamic fault overlay ---------- *)

let is_down t = t.down

let set_down t down =
  if t.down <> down then begin
    t.down <- down;
    List.iter (fun f -> f (not down)) (List.rev t.link_watchers)
  end

let on_link_state t f = t.link_watchers <- f :: t.link_watchers

let set_extra_loss t p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg
      (Printf.sprintf "Segment %s: extra loss %g not in [0, 1]" t.name p);
  t.extra_loss <- p

let extra_loss t = t.extra_loss

let set_extra_latency t ns =
  if ns < 0 then
    invalid_arg
      (Printf.sprintf "Segment %s: extra latency %d is negative" t.name ns);
  t.extra_latency_ns <- ns

let extra_latency_ns t = t.extra_latency_ns

let pair_key a b = if a <= b then (a, b) else (b, a)

let block_pair t a b = Hashtbl.replace t.blocked (pair_key a b) ()

let unblock_pair t a b = Hashtbl.remove t.blocked (pair_key a b)

let clear_blocked t = Hashtbl.reset t.blocked

let pair_blocked t a b = Hashtbl.mem t.blocked (pair_key a b)

(* Sharded delivery: counters go to the destination port (owned by its
   shard), never to the segment-level fields several shards would race on. *)
let deliver_port t (dst : port) (pkt : Packet.t) =
  match Hashtbl.find_opt dst.handlers pkt.proto with
  | Some f ->
    dst.rx_delivered <- dst.rx_delivered + 1;
    f pkt
  | None ->
    dst.rx_unclaimed <- dst.rx_unclaimed + 1;
    Log.debug (fun m ->
        m "%s: no handler for %a at %a" t.name Packet.pp pkt Node.pp dst.node)

(* The sharded twin of the classic [send] body below: same egress
   serialization, loss, jitter and ingress-contention model, but virtual
   time comes from the source node's shard simulator, randomness from the
   source port's generator, and counters go to per-port cells. A frame
   whose destination lives on another shard crosses through [Shard.post]
   at its computed arrival time — which is >= now + the link's latency,
   the floor the conservative runtime's lookahead matrix is built from —
   and the destination-side ingress contention is resolved in the posted
   closure, on the shard that owns the receiving port. *)
let send_sharded t sh (pkt : Packet.t) (src : port) (dst : port) =
  let sim = Node.sim src.node in
  src.tx_sent <- src.tx_sent + 1;
  src.tx_bytes <- src.tx_bytes + pkt.size;
  if t.down || pair_blocked t pkt.src pkt.dst
     || not (Node.is_up src.node) || not (Node.is_up dst.node)
  then begin
    src.tx_faulted <- src.tx_faulted + 1;
    Log.debug (fun m -> m "%s: fault-dropped %a" t.name Packet.pp pkt)
  end
  else begin
    let prng = match src.prng with Some r -> r | None -> assert false in
    let now = Engine.Sim.now sim in
    let busy = src.egress_busy_until > now in
    let ser =
      Linkmodel.serialization_ns t.model pkt.size
      + (if busy then t.model.Linkmodel.turnaround_ns else 0)
    in
    let start = if busy then src.egress_busy_until else now in
    src.egress_busy_until <- start + ser;
    let loss = Float.min 1.0 (t.model.Linkmodel.loss +. t.extra_loss) in
    if Engine.Rng.bool prng loss then begin
      src.tx_lost <- src.tx_lost + 1;
      Log.debug (fun m -> m "%s: lost %a" t.name Packet.pp pkt)
    end
    else begin
      let jitter =
        if t.model.Linkmodel.jitter_ns = 0 then 0
        else Engine.Rng.int prng (t.model.Linkmodel.jitter_ns + 1)
      in
      let arrival =
        start + ser + t.model.Linkmodel.latency_ns + t.extra_latency_ns
        + jitter
      in
      let s_src = sh.shard_of pkt.src and s_dst = sh.shard_of pkt.dst in
      if s_src = s_dst then begin
        let rx_start =
          if dst.ingress_busy_until > arrival then dst.ingress_busy_until
          else arrival
        in
        dst.ingress_busy_until <- rx_start + ser;
        Engine.Sim.at sim rx_start (fun () -> deliver_port t dst pkt)
      end
      else
        sh.post ~src:s_src ~dst:s_dst ~ts:arrival (fun () ->
            let rx_start =
              if dst.ingress_busy_until > arrival then dst.ingress_busy_until
              else arrival
            in
            dst.ingress_busy_until <- rx_start + ser;
            if rx_start = arrival then deliver_port t dst pkt
            else
              Engine.Sim.at (Node.sim dst.node) rx_start (fun () ->
                  deliver_port t dst pkt))
    end
  end

let send t (pkt : Packet.t) =
  let src = port_exn t pkt.src "send source" in
  let dst = port_exn t pkt.dst "send destination" in
  if pkt.size > t.model.Linkmodel.mtu then
    invalid_arg
      (Printf.sprintf "Segment %s: frame of %d bytes exceeds MTU %d" t.name
         pkt.size t.model.Linkmodel.mtu);
  match t.sharding with
  | Some sh -> send_sharded t sh pkt src dst
  | None ->
  t.sent <- t.sent + 1;
  t.bytes <- t.bytes + pkt.size;
  if t.down || pair_blocked t pkt.src pkt.dst
     || not (Node.is_up src.node) || not (Node.is_up dst.node)
  then begin
    (* Fault overlay: the frame never reaches the wire. No egress time is
       charged (the NIC rejects immediately) and no randomness is consumed,
       so a healed link resumes with an unperturbed loss/jitter stream. *)
    t.faulted <- t.faulted + 1;
    Log.debug (fun m -> m "%s: fault-dropped %a" t.name Packet.pp pkt)
  end
  else begin
  let now = Engine.Sim.now t.sim in
  (* Back-to-back frames pay the port turnaround gap; an isolated frame on
     an idle port does not (see Linkmodel.turnaround_ns). *)
  let busy = src.egress_busy_until > now in
  let ser =
    Linkmodel.serialization_ns t.model pkt.size
    + (if busy then t.model.Linkmodel.turnaround_ns else 0)
  in
  let start = if busy then src.egress_busy_until else now in
  src.egress_busy_until <- start + ser;
  let loss = Float.min 1.0 (t.model.Linkmodel.loss +. t.extra_loss) in
  if Engine.Rng.bool t.rng loss then begin
    t.lost <- t.lost + 1;
    Log.debug (fun m -> m "%s: lost %a" t.name Packet.pp pkt)
  end
  else begin
    let jitter =
      if t.model.Linkmodel.jitter_ns = 0 then 0
      else Engine.Rng.int t.rng (t.model.Linkmodel.jitter_ns + 1)
    in
    let arrival =
      start + ser + t.model.Linkmodel.latency_ns + t.extra_latency_ns + jitter
    in
    (* Ingress contention: the receiving port absorbs at most one frame per
       serialization slot; concurrent senders queue behind each other. *)
    let rx_start =
      if dst.ingress_busy_until > arrival then dst.ingress_busy_until
      else arrival
    in
    dst.ingress_busy_until <- rx_start + ser;
    Engine.Sim.at t.sim rx_start (fun () -> deliver t dst pkt)
  end
  end

(* Accessors sum the classic segment-level fields (zero in sharded mode)
   with the per-port cells (zero in classic mode), so observers read the
   same totals in both modes. Read after the run for exact values. *)
let sum t f = Hashtbl.fold (fun _ p acc -> acc + f p) t.ports 0

let frames_sent t = t.sent + sum t (fun p -> p.tx_sent)
let frames_faulted t = t.faulted + sum t (fun p -> p.tx_faulted)
let frames_lost t = t.lost + sum t (fun p -> p.tx_lost)
let frames_delivered t = t.delivered + sum t (fun p -> p.rx_delivered)
let frames_unclaimed t = t.unclaimed + sum t (fun p -> p.rx_unclaimed)
let bytes_sent t = t.bytes + sum t (fun p -> p.tx_bytes)
