(** Grid topology container and knowledge base.

    A [Net.t] owns the nodes and segments of one simulated grid and answers
    the topology queries the selector needs ("which networks connect A and
    B, and of which class?") — the paper's "knowledge base of the network
    topology managed by PadicoTM". *)

type t

val create : ?seed:int -> ?clock:Engine.Clock.t -> ?shards:int -> unit -> t
(** [?clock] is the execution backend every node of this grid runs on
    (default: the grid's own simulator clock).

    [?shards] partitions the grid into that many slices, one simulator
    each, executed by the conservative parallel runtime ({!Engine.Shard})
    when {!run} is given [~domains]. The partition is chosen per node at
    {!add_node} and frozen by the first run. Outcomes are a function of
    the shard {e partition}, never of the domain count — the same sharded
    grid gives byte-identical results on 1 or N domains. Incompatible
    with [?clock] (the Host backend runs in real time; conservative
    synchronization needs simulated clocks). *)

val sim : t -> Engine.Sim.t
(** The root simulator — in a sharded grid, shard 0's. *)

val clock : t -> Engine.Clock.t
(** The grid's clock capability (shard 0's in a sharded grid; each node's
    own clock is [Node.clock]). *)

val shards : t -> int
(** Number of shards ([1] for a classic grid). *)

val shard_of : t -> Node.t -> int
(** The shard a node was placed on ([0] for a classic grid). *)

val shard_sim : t -> int -> Engine.Sim.t
(** Shard [i]'s simulator. Raises [Invalid_argument] out of range. *)

val shard_runtime : t -> Engine.Shard.t option
(** The conservative runtime of a sharded grid — built on first use
    (freezing the topology), [None] for a classic grid. Exposed for
    benches and tests ([Shard.executed] / [Shard.posted]). *)

val add_node : ?shard:int -> t -> string -> Node.t
(** Create a node. Each node automatically gets a private loopback
    segment. [?shard] (default 0) places the node on that slice of a
    sharded grid; raises [Invalid_argument] on a classic grid when
    non-zero, or once the sharded runtime is built. *)

val add_segment : t -> Linkmodel.t -> ?name:string -> Node.t list -> Segment.t
(** Create a segment over [model] and attach the given nodes. *)

val nodes : t -> Node.t list
val segments : t -> Segment.t list
val node_by_id : t -> int -> Node.t option

val loopback_of : t -> Node.t -> Segment.t
(** The node's private loopback segment. *)

val segments_of : t -> Node.t -> Segment.t list
(** Segments the node is attached to (its loopback included), in global
    insertion order. O(degree) — use this instead of filtering {!segments}
    when iterating per node: grid-scale topologies hold thousands of
    segments, but each node touches only a handful. *)

val links_between : t -> Node.t -> Node.t -> Segment.t list
(** All segments attached to both nodes (the loopback when they are the same
    node), ordered by decreasing bandwidth. *)

val best_link : t -> Node.t -> Node.t -> Segment.t option
(** Highest-bandwidth segment between the two nodes. *)

val run : ?until:int -> ?domains:int -> t -> unit
(** Run the grid. Classic: the underlying simulator ([~domains] beyond 1
    is rejected). Sharded: builds the runtime on first call (validating
    that every cross-shard segment has strictly positive latency) and
    executes all shards on [~domains] worker domains (default 1) under
    conservative synchronization. *)

val now : t -> int
(** Global virtual time: the simulator clock, or the maximum across shard
    clocks once a sharded run returns. *)

val spawn : t -> Node.t -> ?name:string -> (unit -> unit) -> Engine.Proc.handle
