(** Grid topology container and knowledge base.

    A [Net.t] owns the nodes and segments of one simulated grid and answers
    the topology queries the selector needs ("which networks connect A and
    B, and of which class?") — the paper's "knowledge base of the network
    topology managed by PadicoTM". *)

type t

val create : ?seed:int -> ?clock:Engine.Clock.t -> unit -> t
(** [?clock] is the execution backend every node of this grid runs on
    (default: the grid's own simulator clock). *)

val sim : t -> Engine.Sim.t

val clock : t -> Engine.Clock.t
(** The grid's clock capability (shared by all its nodes). *)

val add_node : t -> string -> Node.t
(** Create a node. Each node automatically gets a private loopback
    segment. *)

val add_segment : t -> Linkmodel.t -> ?name:string -> Node.t list -> Segment.t
(** Create a segment over [model] and attach the given nodes. *)

val nodes : t -> Node.t list
val segments : t -> Segment.t list
val node_by_id : t -> int -> Node.t option

val loopback_of : t -> Node.t -> Segment.t
(** The node's private loopback segment. *)

val segments_of : t -> Node.t -> Segment.t list
(** Segments the node is attached to (its loopback included), in global
    insertion order. O(degree) — use this instead of filtering {!segments}
    when iterating per node: grid-scale topologies hold thousands of
    segments, but each node touches only a handful. *)

val links_between : t -> Node.t -> Node.t -> Segment.t list
(** All segments attached to both nodes (the loopback when they are the same
    node), ordered by decreasing bandwidth. *)

val best_link : t -> Node.t -> Node.t -> Segment.t option
(** Highest-bandwidth segment between the two nodes. *)

val run : ?until:int -> t -> unit
(** Convenience: run the underlying simulator. *)

val spawn : t -> Node.t -> ?name:string -> (unit -> unit) -> Engine.Proc.handle
