type link_class = San | Lan | Wan | Lossy_wan | Loop

type t = {
  name : string;
  class_ : link_class;
  bandwidth_bps : float;
  latency_ns : int;
  jitter_ns : int;
  loss : float;
  mtu : int;
  frame_overhead : int;
  turnaround_ns : int;
  trusted : bool;
}

let validate m =
  let fail fmt =
    Printf.ksprintf
      (fun msg -> invalid_arg (Printf.sprintf "Linkmodel %s: %s" m.name msg))
      fmt
  in
  if not (m.loss >= 0.0 && m.loss <= 1.0) then
    fail "loss probability %g not in [0, 1]" m.loss;
  if m.mtu <= 0 then fail "mtu %d must be positive" m.mtu;
  if not (m.bandwidth_bps > 0.0) then
    fail "bandwidth %g B/s must be positive" m.bandwidth_bps;
  if m.latency_ns < 0 then fail "latency %d ns is negative" m.latency_ns;
  if m.jitter_ns < 0 then fail "jitter %d ns is negative" m.jitter_ns;
  if m.frame_overhead < 0 then
    fail "frame overhead %d is negative" m.frame_overhead;
  if m.turnaround_ns < 0 then
    fail "turnaround %d ns is negative" m.turnaround_ns;
  m

let serialization_ns m bytes =
  let wire_bytes = bytes + m.frame_overhead in
  int_of_float ((float_of_int wire_bytes /. m.bandwidth_bps *. 1e9) +. 0.5)

let class_to_string = function
  | San -> "SAN"
  | Lan -> "LAN"
  | Wan -> "WAN"
  | Lossy_wan -> "lossy-WAN"
  | Loop -> "loopback"

let pp fmt m =
  Format.fprintf fmt "%s(%s, %.1f MB/s, %a lat, %.2f%% loss, mtu %d)" m.name
    (class_to_string m.class_)
    (m.bandwidth_bps /. 1e6)
    Engine.Time.pp m.latency_ns (m.loss *. 100.0) m.mtu
