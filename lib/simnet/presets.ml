open Linkmodel

(* Every preset goes through [validate] so the invariants (loss in [0,1],
   positive mtu/bandwidth, non-negative delays) hold by construction. *)

let myrinet2000 =
  validate
    { name = "Myrinet-2000"; class_ = San; bandwidth_bps = 250e6;
      latency_ns = 1_500; jitter_ns = 0; loss = 0.0; mtu = 32_768;
      frame_overhead = 8; turnaround_ns = 5_400; trusted = true }

let sci =
  validate
    { name = "SCI"; class_ = San; bandwidth_bps = 85e6; latency_ns = 900;
      jitter_ns = 0; loss = 0.0; mtu = 8_192; frame_overhead = 16;
      turnaround_ns = 2_000; trusted = true }

let ethernet100 =
  validate
    { name = "Ethernet-100"; class_ = Lan; bandwidth_bps = 12.5e6;
      latency_ns = 30_000; jitter_ns = 2_000; loss = 0.0; mtu = 1_500;
      frame_overhead = 58; turnaround_ns = 960; trusted = true }

let gigabit_lan =
  validate
    { name = "Gigabit-LAN"; class_ = Lan; bandwidth_bps = 125e6;
      latency_ns = 15_000; jitter_ns = 1_000; loss = 0.0; mtu = 1_500;
      frame_overhead = 58; turnaround_ns = 960; trusted = true }

let vthd =
  validate
    { name = "VTHD"; class_ = Wan; bandwidth_bps = 12.5e6;
      latency_ns = 4_000_000; jitter_ns = 80_000; loss = 6e-4; mtu = 1_500;
      frame_overhead = 58; turnaround_ns = 0; trusted = false }

let transcontinental_loss loss =
  validate
    { name = "Transcontinental"; class_ = Lossy_wan; bandwidth_bps = 600e3;
      latency_ns = 25_000_000; jitter_ns = 2_000_000; loss; mtu = 1_500;
      frame_overhead = 58; turnaround_ns = 0; trusted = false }

let transcontinental = transcontinental_loss 0.05

let modem =
  validate
    { name = "Modem"; class_ = Lossy_wan; bandwidth_bps = 56e3 /. 8.0;
      latency_ns = 80_000_000; jitter_ns = 10_000_000; loss = 0.01; mtu = 576;
      frame_overhead = 48; turnaround_ns = 0; trusted = false }

let loopback =
  validate
    { name = "loopback"; class_ = Loop; bandwidth_bps = 4e9;
      latency_ns = 200; jitter_ns = 0; loss = 0.0; mtu = 65_536;
      frame_overhead = 0; turnaround_ns = 0; trusted = true }
