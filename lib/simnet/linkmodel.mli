(** Physical characteristics of a network segment.

    A link model charges virtual time for serialization (port bandwidth),
    propagation (latency), and drops frames with a fixed probability. It is
    the only place where "hardware" performance enters the simulation; all
    other costs come from the software layers above. *)

type link_class =
  | San  (** system-area network: Myrinet, SCI — parallel-oriented *)
  | Lan  (** local-area: switched Ethernet *)
  | Wan  (** wide-area: high bandwidth, high latency *)
  | Lossy_wan  (** slow Internet path with significant loss *)
  | Loop  (** intra-node loopback *)

type t = {
  name : string;
  class_ : link_class;
  bandwidth_bps : float;  (** per-port bandwidth, bytes per second *)
  latency_ns : int;  (** one-way propagation delay *)
  jitter_ns : int;  (** uniform jitter added to propagation *)
  loss : float;  (** independent frame-loss probability *)
  mtu : int;  (** maximum frame payload, bytes *)
  frame_overhead : int;  (** wire framing bytes added per frame *)
  turnaround_ns : int;
  (** extra egress-port gap between {e back-to-back} frames (DMA setup /
      link-level flow control); isolated frames do not pay it, so small-
      message latency is unaffected while streaming bandwidth is capped
      below the raw link rate (Myrinet-2000: 250 → ~240 MB/s). *)
  trusted : bool;  (** true when the selector may skip ciphering *)
}

val validate : t -> t
(** Check the model invariants (0 ≤ loss ≤ 1, mtu > 0, bandwidth > 0,
    non-negative delays/overheads) and return the model unchanged, or raise
    [Invalid_argument] naming the model and the violated bound. All
    {!Presets} go through this, so a mistyped custom model fails loudly at
    construction instead of silently misbehaving. *)

val serialization_ns : t -> int -> int
(** [serialization_ns m bytes] is the port occupancy time of a frame of
    [bytes] payload bytes (framing overhead included). *)

val pp : Format.formatter -> t -> unit
val class_to_string : link_class -> string
