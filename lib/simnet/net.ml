(* Sharded mode: the grid is partitioned into [shards] slices, one
   simulator heap each, run by [Engine.Shard] under conservative
   synchronization. Shard 0's simulator doubles as the grid's root [sim]
   so setup code that schedules through [Net.sim] keeps working. The
   partition is fixed at node creation (per-node [?shard]) and the
   runtime is built lazily on the first [run]: at that point every
   cross-shard segment's latency becomes the (i, j) lookahead floor. *)
type sharded = {
  sims : Engine.Sim.t array; (* sims.(0) == the grid's root sim *)
  shard_by_node : (int, int) Hashtbl.t;
  mutable runtime : Engine.Shard.t option;
}

type t = {
  sim : Engine.Sim.t;
  (* Insertion-order collections kept reversed so additions are O(1); the
     accessors re-reverse. Grid-scale scenarios (thousands of nodes) made
     the old [l @ [x]] appends and linear lookups quadratic. *)
  mutable nodes_rev : Node.t list;
  mutable segments_rev : Segment.t list;
  by_id : (int, Node.t) Hashtbl.t;
  loopbacks : (int, Segment.t) Hashtbl.t;
  (* Per-node adjacency (reversed, same relative order as the global
     segment list) so pair queries never scan every segment in the grid. *)
  adjacency : (int, Segment.t list ref) Hashtbl.t;
  mutable next_id : int;
  clock : Engine.Clock.t;
  sharded : sharded option;
}

let create ?seed ?clock ?shards () =
  let sim = Engine.Sim.create ?seed () in
  let sharded =
    match shards with
    | None -> None
    | Some n ->
      if n < 1 then invalid_arg "Net.create: shards must be >= 1";
      if clock <> None then
        invalid_arg
          "Net.create: a sharded grid runs on its own simulated clocks; \
           combining ~shards with a ?clock backend is not supported";
      (* Sibling shard seeds come from keyed (non-advancing) children of
         the root generator, so the root sim's own draw sequence is
         untouched by how many shards exist. *)
      let root = Engine.Sim.rng sim in
      let sims =
        Array.init n (fun i ->
            if i = 0 then sim
            else
              let r = Engine.Rng.stream root i in
              Engine.Sim.create ~seed:(Engine.Rng.int r 0x3FFFFFFF) ())
      in
      Some { sims; shard_by_node = Hashtbl.create 64; runtime = None }
  in
  let clock =
    match clock with Some c -> c | None -> Engine.Sim.clock sim
  in
  { sim; nodes_rev = []; segments_rev = []; by_id = Hashtbl.create 64;
    loopbacks = Hashtbl.create 64; adjacency = Hashtbl.create 64;
    next_id = 0; clock; sharded }

let sim t = t.sim
let clock t = t.clock

let shards t =
  match t.sharded with None -> 1 | Some s -> Array.length s.sims

let shard_of t node =
  match t.sharded with
  | None -> 0
  | Some s ->
    (match Hashtbl.find_opt s.shard_by_node (Node.id node) with
     | Some i -> i
     | None -> 0)

let shard_sim t i =
  match t.sharded with
  | None ->
    if i <> 0 then invalid_arg "Net.shard_sim: grid is not sharded";
    t.sim
  | Some s ->
    if i < 0 || i >= Array.length s.sims then
      invalid_arg "Net.shard_sim: no such shard";
    s.sims.(i)

let check_mutable t what =
  match t.sharded with
  | Some { runtime = Some _; _ } ->
    invalid_arg
      (Printf.sprintf
         "Net.%s: the sharded runtime is already built (topology is \
          frozen by the first run)" what)
  | _ -> ()

let adj t node =
  match Hashtbl.find_opt t.adjacency (Node.id node) with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.replace t.adjacency (Node.id node) l;
    l

let add_node ?(shard = 0) t name =
  check_mutable t "add_node";
  let sim =
    match t.sharded with
    | None ->
      if shard <> 0 then
        invalid_arg "Net.add_node: ~shard requires Net.create ~shards";
      t.sim
    | Some s ->
      if shard < 0 || shard >= Array.length s.sims then
        invalid_arg
          (Printf.sprintf "Net.add_node: shard %d out of range [0, %d)"
             shard (Array.length s.sims));
      s.sims.(shard)
  in
  let clock =
    match t.sharded with
    | None -> t.clock
    | Some _ -> Engine.Sim.clock sim
  in
  let node = Node.create ~clock sim ~id:t.next_id ~name in
  (match t.sharded with
   | Some s -> Hashtbl.replace s.shard_by_node t.next_id shard
   | None -> ());
  t.next_id <- t.next_id + 1;
  t.nodes_rev <- node :: t.nodes_rev;
  Hashtbl.replace t.by_id (Node.id node) node;
  let lo = Segment.create sim Presets.loopback ~name:(name ^ "/lo") in
  Segment.attach lo node;
  Hashtbl.replace t.loopbacks (Node.id node) lo;
  t.segments_rev <- lo :: t.segments_rev;
  let l = adj t node in
  l := lo :: !l;
  node

let add_segment t model ?name nodes =
  check_mutable t "add_segment";
  let name = match name with Some n -> n | None -> model.Linkmodel.name in
  (* The segment's home simulator (randomness ancestry, classic-mode
     scheduling) is its first node's shard; in sharded mode each send
     actually runs on the sending node's shard regardless. *)
  let home =
    match t.sharded, nodes with
    | Some _, node :: _ -> Node.sim node
    | _ -> t.sim
  in
  let seg = Segment.create home model ~name in
  List.iter
    (fun node ->
       if not (Segment.attached seg node) then begin
         Segment.attach seg node;
         let l = adj t node in
         l := seg :: !l
       end)
    nodes;
  t.segments_rev <- seg :: t.segments_rev;
  seg

let nodes t = List.rev t.nodes_rev
let segments t = List.rev t.segments_rev

let node_by_id t id = Hashtbl.find_opt t.by_id id

let loopback_of t node =
  match Hashtbl.find_opt t.loopbacks (Node.id node) with
  | Some s -> s
  | None -> invalid_arg "Net.loopback_of: unknown node"

let segments_of t node =
  match Hashtbl.find_opt t.adjacency (Node.id node) with
  | Some l -> List.rev !l
  | None -> []

let links_between t a b =
  if Node.id a = Node.id b then [ loopback_of t a ]
  else begin
    let links =
      List.filter (fun s -> Segment.attached s b) (segments_of t a)
    in
    List.sort
      (fun s1 s2 ->
         compare
           (Segment.model s2).Linkmodel.bandwidth_bps
           (Segment.model s1).Linkmodel.bandwidth_bps)
      links
  end

let best_link t a b =
  match links_between t a b with [] -> None | s :: _ -> Some s

(* Build the Shard runtime: lookahead(i, j) = the minimum latency of any
   segment spanning shards i and j. Every arrival computed by
   [Segment.send] is >= now + latency (serialization, jitter and fault
   spikes only add), so that minimum is a sound conservative bound — and
   it must be strictly positive, or the shards could never run ahead of
   each other. *)
let finalize t =
  match t.sharded with
  | None -> None
  | Some s ->
    (match s.runtime with
     | Some r -> Some r
     | None ->
       let n = Array.length s.sims in
       let lookahead = Array.make_matrix n n max_int in
       List.iter
         (fun seg ->
            let spans =
              List.sort_uniq compare
                (List.map (shard_of t) (Segment.nodes seg))
            in
            match spans with
            | [] | [ _ ] -> ()
            | many ->
              let lat = (Segment.model seg).Linkmodel.latency_ns in
              if lat <= 0 then
                invalid_arg
                  (Printf.sprintf
                     "Net: segment %s spans several shards but has zero \
                      latency — no lookahead for conservative \
                      synchronization (raise the latency or co-locate \
                      its nodes)"
                     (Segment.name seg));
              List.iter
                (fun i ->
                   List.iter
                     (fun j ->
                        if i <> j && lat < lookahead.(i).(j) then
                          lookahead.(i).(j) <- lat)
                     many)
                many)
         (segments t);
       let r = Engine.Shard.create ~lookahead s.sims in
       let shard_of_id id =
         match Hashtbl.find_opt s.shard_by_node id with
         | Some i -> i
         | None -> 0
       in
       let post = Engine.Shard.post r in
       List.iter
         (fun seg -> Segment.enable_sharding seg ~shard_of:shard_of_id ~post)
         (segments t);
       s.runtime <- Some r;
       Some r)

let shard_runtime t = finalize t

let run ?until ?domains t =
  match finalize t with
  | None ->
    (match domains with
     | Some d when d > 1 ->
       invalid_arg "Net.run: ~domains requires a sharded grid (Net.create \
                    ~shards)"
     | _ -> ());
    Engine.Sim.run ?until t.sim
  | Some r -> Engine.Shard.run ?domains ?until r

let now t =
  match t.sharded with
  | None -> Engine.Sim.now t.sim
  | Some s ->
    Array.fold_left (fun acc sim -> max acc (Engine.Sim.now sim)) 0 s.sims

let spawn t node ?name f =
  ignore t;
  Node.spawn node ?name f
