type t = {
  sim : Engine.Sim.t;
  (* Insertion-order collections kept reversed so additions are O(1); the
     accessors re-reverse. Grid-scale scenarios (thousands of nodes) made
     the old [l @ [x]] appends and linear lookups quadratic. *)
  mutable nodes_rev : Node.t list;
  mutable segments_rev : Segment.t list;
  by_id : (int, Node.t) Hashtbl.t;
  loopbacks : (int, Segment.t) Hashtbl.t;
  (* Per-node adjacency (reversed, same relative order as the global
     segment list) so pair queries never scan every segment in the grid. *)
  adjacency : (int, Segment.t list ref) Hashtbl.t;
  mutable next_id : int;
  clock : Engine.Clock.t;
}

let create ?seed ?clock () =
  let sim = Engine.Sim.create ?seed () in
  let clock =
    match clock with Some c -> c | None -> Engine.Sim.clock sim
  in
  { sim; nodes_rev = []; segments_rev = []; by_id = Hashtbl.create 64;
    loopbacks = Hashtbl.create 64; adjacency = Hashtbl.create 64;
    next_id = 0; clock }

let sim t = t.sim
let clock t = t.clock

let adj t node =
  match Hashtbl.find_opt t.adjacency (Node.id node) with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.replace t.adjacency (Node.id node) l;
    l

let add_node t name =
  let node = Node.create ~clock:t.clock t.sim ~id:t.next_id ~name in
  t.next_id <- t.next_id + 1;
  t.nodes_rev <- node :: t.nodes_rev;
  Hashtbl.replace t.by_id (Node.id node) node;
  let lo = Segment.create t.sim Presets.loopback ~name:(name ^ "/lo") in
  Segment.attach lo node;
  Hashtbl.replace t.loopbacks (Node.id node) lo;
  t.segments_rev <- lo :: t.segments_rev;
  let l = adj t node in
  l := lo :: !l;
  node

let add_segment t model ?name nodes =
  let name = match name with Some n -> n | None -> model.Linkmodel.name in
  let seg = Segment.create t.sim model ~name in
  List.iter
    (fun node ->
       if not (Segment.attached seg node) then begin
         Segment.attach seg node;
         let l = adj t node in
         l := seg :: !l
       end)
    nodes;
  t.segments_rev <- seg :: t.segments_rev;
  seg

let nodes t = List.rev t.nodes_rev
let segments t = List.rev t.segments_rev

let node_by_id t id = Hashtbl.find_opt t.by_id id

let loopback_of t node =
  match Hashtbl.find_opt t.loopbacks (Node.id node) with
  | Some s -> s
  | None -> invalid_arg "Net.loopback_of: unknown node"

let segments_of t node =
  match Hashtbl.find_opt t.adjacency (Node.id node) with
  | Some l -> List.rev !l
  | None -> []

let links_between t a b =
  if Node.id a = Node.id b then [ loopback_of t a ]
  else begin
    let links =
      List.filter (fun s -> Segment.attached s b) (segments_of t a)
    in
    List.sort
      (fun s1 s2 ->
         compare
           (Segment.model s2).Linkmodel.bandwidth_bps
           (Segment.model s1).Linkmodel.bandwidth_bps)
      links
  end

let best_link t a b =
  match links_between t a b with [] -> None | s :: _ -> Some s

let run ?until t = Engine.Sim.run ?until t.sim

let spawn t node ?name f =
  ignore t;
  Node.spawn node ?name f
