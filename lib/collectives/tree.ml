let lsb v = v land (-v)

let parent v =
  if v <= 0 then
    invalid_arg
      (Printf.sprintf "Tree.parent: vrank %d has no parent (root is 0)" v);
  v - lsb v

let iter_children ~m v f =
  let limit = if v = 0 then m else lsb v in
  let b = ref 1 in
  while !b < limit && v + !b < m do
    f (v + !b);
    b := !b * 2
  done

let child_count ~m v =
  let c = ref 0 in
  iter_children ~m v (fun _ -> incr c);
  !c

let subtree_last ~m v = if v = 0 then m else min m (v + lsb v)

let child_toward ~m v ~target =
  if target <= v || target >= subtree_last ~m v then
    invalid_arg
      (Printf.sprintf
         "Tree.child_toward: vrank %d is not a descendant of %d (m = %d)"
         target v m);
  let d = target - v in
  let b = ref 1 in
  while !b * 2 <= d do
    b := !b * 2
  done;
  v + !b
