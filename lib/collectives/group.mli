(** Group communicator: collective operations on a Circuit.

    A [Group.t] is one member's endpoint for MPI-style collectives —
    {!barrier}, {!bcast}, {!reduce}, {!allreduce}, {!gather}, {!scatter} —
    over the ranks of a {!Circuit.Ct} group. Two strategies:

    - [Flat]: topology-blind rank-0 star. Every operation is a direct
      exchange with the root, so a grid of SAN islands joined by a WAN pays
      one WAN crossing {e per rank} outside the root's island.
    - [Multilevel]: topology-aware, following MPICH-G2's multilevel scheme.
      The group's ranks are partitioned into clusters by {!Selector.Netdb}
      (connected components of the SAN/LAN adjacency); inside each cluster
      the operation runs over a binomial tree, and a single designated
      proxy rank per cluster (the Netdb leader, or the root in its own
      cluster) participates in a top-level binomial tree across clusters —
      so each WAN link is crossed exactly once per phase, [C - 1] crossings
      for [C] clusters instead of [N - island] for [N] ranks.

    Operations come in two forms. The [i]-prefixed forms are non-blocking:
    they start the collective and invoke a completion callback when the
    member's part is done (they rely on {!Circuit.Ct.end_packing}'s
    [on_sent] hook, so successive tree stages pipeline without suspending).
    The plain forms block the calling {!Engine.Proc} process. Every member
    must call the same operation with the same root — the group runs one
    collective at a time per member (no overlap), but members may be in
    consecutive operations simultaneously; late messages are buffered by
    sequence number.

    Per-member state is O(1)-allocated: flat-array membership and slots
    sized once at creation, one receive handler and one send-completion
    hook per member, and no per-round closure allocation — only the
    per-operation completion callback. This keeps thousand-rank simulated
    groups tractable.

    Reductions are byte-wise (every rank contributes an equal-length
    buffer), with associative-commutative operators so tree shape cannot
    change the result.

    {2 Self-healing membership}

    A group created with [?heal] is {e self-healing}: each member runs a
    {!Detect} phi-accrual failure detector (heartbeats piggybacked on the
    group's own frames; monitors are the member's cluster-ring neighbours
    plus, for cluster proxies, the other proxies) and the group survives
    member crashes. When a monitor confirms a member dead it floods an
    eviction to every live rank; each member marks the rank dead, bumps
    its membership {e epoch} (frames are tagged with the epoch and a
    digest of the dead set, so pre-eviction frames are discarded and
    divergent views re-converge by exchanging dead sets), re-partitions
    the {!Selector.Netdb} topology ([Netdb.evict] re-elects a cluster
    proxy if the dead rank was one), and transparently rewinds and
    retries the in-flight collective over the shrunken tree — each member
    keeps a pristine copy of its contribution until the operation
    commits, so a retried reduction refolds the correct value minus the
    dead rank. Members that had already committed the operation re-serve
    their committed record when a retrying neighbour pulls them.

    Rootless operations (barrier, allreduce) survive even the root's
    death (re-rooting to the lowest live rank); rooted operations whose
    root dies fail with a clean [Error] {e without} poisoning the group —
    the next operation proceeds over the survivors. A member that learns
    it was itself evicted (a false positive under extreme delay) poisons
    itself.

    Healing mode runs every operation in two phases (up-first ops gain an
    explicit commit broadcast, down-first ops an ack wave), costing one
    extra tree traversal of empty frames; without [?heal] nothing
    changes — the wire format, message counts and virtual-clock timings
    are byte-identical to a non-healing build. *)

exception Failed of string
(** Raised by the blocking forms when the operation fails (deadline
    exceeded, member disagreement, poisoned group). *)

type strategy = Flat | Multilevel

type redop =
  | Sum  (** byte-wise sum modulo 256 *)
  | Max  (** byte-wise maximum *)
  | Bxor  (** byte-wise exclusive or *)

type t
(** One member's view of the group (bound to its rank). *)

val create :
  ?strategy:strategy -> ?deadline_ns:int -> ?heal:Detect.config ->
  Padico.t -> name:string -> Simnet.Node.t list -> t array
(** Build a group over the nodes (rank = list position): one circuit via
    {!Padico.circuit}, one {!Selector.Netdb} partition, one member
    endpoint per rank. [strategy] defaults to [Multilevel]. [deadline_ns],
    when given, bounds every operation: a member whose operation has not
    completed after that much virtual time fails it with an [Error] (and
    poisons the group) instead of hanging — the fault-injection story for
    collectives. [heal], when given, makes the group self-healing (see
    above) with the detector tuned by the config; healing groups keep
    their detectors sweeping between operations, so call {!retire} when
    done with a group or a virtual-clock run will never quiesce. *)

val name : t -> string
val rank : t -> int
val size : t -> int
val strategy : t -> strategy
val netdb : t -> Selector.Netdb.t
(** The topology partition the multilevel trees are built from (shared by
    all members). *)

val poisoned : t -> string option
(** Once a member's operation fails, the member refuses further operations
    with this diagnostic (messages of the failed operation may still be in
    flight, so consistency cannot be re-established locally). *)

(** {1 Non-blocking operations}

    Callbacks fire exactly once, possibly synchronously (single-member
    groups, poisoned groups). *)

val ibarrier : t -> ((unit, string) result -> unit) -> unit

val ibcast :
  t -> root:int -> Engine.Bytebuf.t ->
  ((Engine.Bytebuf.t, string) result -> unit) -> unit
(** The payload argument is read at the root only; every member's callback
    receives the root's payload. *)

val ireduce :
  t -> root:int -> op:redop -> Engine.Bytebuf.t ->
  ((Engine.Bytebuf.t option, string) result -> unit) -> unit
(** Combine all members' equal-length contributions with [op]; the root's
    callback receives [Some] result, other members [None]. *)

val iallreduce :
  t -> op:redop -> Engine.Bytebuf.t ->
  ((Engine.Bytebuf.t, string) result -> unit) -> unit
(** Reduce to rank 0, then broadcast: every member receives the result. *)

val igather :
  t -> root:int -> Engine.Bytebuf.t ->
  ((Engine.Bytebuf.t array option, string) result -> unit) -> unit
(** The root's callback receives all contributions indexed by rank. *)

val iscatter :
  t -> root:int -> Engine.Bytebuf.t array ->
  ((Engine.Bytebuf.t, string) result -> unit) -> unit
(** The array (one payload per rank, read at the root only) is routed down
    the tree: each member's callback receives its own entry. *)

(** {1 Blocking operations}

    Process-context wrappers ({!Engine.Proc.suspend}); raise {!Failed} on
    error. *)

val barrier : t -> unit
val bcast : t -> root:int -> Engine.Bytebuf.t -> Engine.Bytebuf.t
val reduce :
  t -> root:int -> op:redop -> Engine.Bytebuf.t -> Engine.Bytebuf.t option
val allreduce : t -> op:redop -> Engine.Bytebuf.t -> Engine.Bytebuf.t
val gather :
  t -> root:int -> Engine.Bytebuf.t -> Engine.Bytebuf.t array option
val scatter : t -> root:int -> Engine.Bytebuf.t array -> Engine.Bytebuf.t

(** {1 Accounting}

    WAN crossings are counted whenever a collective message's source and
    destination ranks live in different Netdb clusters — the quantity the
    multilevel strategy exists to minimize. Shared by all members;
    registered as global metrics [coll.<name>.wan_msgs] / [.wan_bytes]. *)

val wan_messages : t -> int
val wan_bytes : t -> int

(** {1 Self-healing membership} *)

val healing : t -> bool
(** Whether the group was created with [?heal]. *)

val epoch : t -> int
(** Current membership epoch — the number of evicted ranks. 0 on a
    non-healing group. *)

val live_count : t -> int
(** Ranks not (yet) evicted. [size] on a non-healing group. *)

val dead_ranks : t -> int list
(** Evicted ranks, ascending. *)

val detector : t -> Detect.t option
(** This member's failure detector, for stats and phi inspection. *)

val restarts : t -> int
(** How many times this member rewound and retried an in-flight
    operation after an eviction. *)

val evictions : t -> int
(** How many member deaths this member has recorded. *)

val retire : t -> unit
(** Stop this member's failure detector and cancel any armed operation
    deadline. A healing group's detectors re-arm their sweep forever;
    a simulation (or a Hostio reactor) only quiesces once every member
    is retired. No-op on non-healing groups. *)
