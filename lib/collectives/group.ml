module Bb = Engine.Bytebuf
module Stats = Engine.Stats
module Clock = Engine.Clock
module Proc = Engine.Proc
module Ct = Circuit.Ct
module Node = Simnet.Node
module Netdb = Selector.Netdb
module Trace = Padico_obs.Trace
module Metrics = Padico_obs.Metrics
module Event = Padico_obs.Event

exception Failed of string

type strategy = Flat | Multilevel

type redop = Sum | Max | Bxor

type opkind = Barrier | Bcast | Reduce | Allreduce | Gather | Scatter

let op_name = function
  | Barrier -> "barrier"
  | Bcast -> "bcast"
  | Reduce -> "reduce"
  | Allreduce -> "allreduce"
  | Gather -> "gather"
  | Scatter -> "scatter"

let op_index = function
  | Barrier -> 0
  | Bcast -> 1
  | Reduce -> 2
  | Allreduce -> 3
  | Gather -> 4
  | Scatter -> 5

let op_of_index = function
  | 0 -> Barrier
  | 1 -> Bcast
  | 2 -> Reduce
  | 3 -> Allreduce
  | 4 -> Gather
  | 5 -> Scatter
  | i -> invalid_arg (Printf.sprintf "Group: unknown opcode %d" i)

(* Which phases an operation runs: "up" flows towards the root (reductions,
   gathers, barrier arrival), "down" away from it (broadcasts, scatters,
   barrier/allreduce release). *)
let has_up = function
  | Barrier | Reduce | Allreduce | Gather -> true
  | Bcast | Scatter -> false

let has_down = function
  | Barrier | Bcast | Allreduce | Scatter -> true
  | Reduce | Gather -> false

(* ---------- healing wire opcodes ----------

   Data frames use hdr 0..11 (opcode*2 + phase). Healing control frames
   use the codes above that range; they never appear on a non-healing
   group's wire. *)

let hdr_hb = 12 (* heartbeat: empty, keeps phi low on idle links *)
let hdr_evict = 13 (* eviction flood: body = [count; dead ranks...] *)
let hdr_pull = 14 (* pull: seq field = pulled op, empty body *)
let hdr_serve = 15 (* re-served down/commit record for a pulled op *)

let monitor_ring = 2 (* cluster-ring monitoring distance, each side *)

(* Self-healing state: present only when the group was created with
   [?heal]. Everything the eviction agreement and operation retry need —
   the detector, the dead set with its epoch tag, pristine copies of this
   member's contribution to the in-flight operation, and the committed
   record of the last finished operation (so committed members can re-serve
   results to retrying neighbours instead of going silent). *)
type hstate = {
  det : Detect.t;
  dead : bool array; (* confirmed-dead ranks, the agreement's object *)
  mutable epoch : int; (* |dead| — membership epoch, tags every frame *)
  mutable digest : int; (* FNV-1a over the dead ranks, detects divergence *)
  resynced : int array; (* last epoch we re-synced each rank at *)
  mutable inc : int; (* restart incarnation: invalidates stale closures *)
  mutable contrib : Bb.t option; (* pristine contribution to current op *)
  mutable centries : Bb.t array; (* pristine scatter payloads (root) *)
  mutable done_seq : int; (* last committed operation *)
  mutable done_op : opkind;
  mutable done_root : int;
  mutable drecord : Bb.t option; (* committed result, if the op had one *)
  mutable dentries : Bb.t array; (* committed scatter entries (root) *)
  mutable pulls : int list; (* ranks pulling the current op: serve at commit *)
  mutable deadline : Clock.timer option; (* cancellable op deadline *)
  mutable restarts : int;
  mutable evictions : int;
}

type t = {
  gname : string;
  strategy : strategy;
  deadline_ns : int option;
  clk : Clock.t; (* the member node's clock: virtual or monotonic *)
  ct : Ct.t;
  mutable db : Netdb.t; (* re-partitioned on each eviction *)
  rank : int;
  n : int;
  wmsgs : Stats.Counter.t; (* shared across members *)
  wbytes : Stats.Counter.t;
  (* Flat-array per-member state, allocated once at creation and reused by
     every operation — no per-round allocation beyond outgoing buffers. *)
  slots : Bb.t option array; (* gather contributions / scatter entries *)
  pending : (int * int * int * int * int * Bb.t) Queue.t;
  (* seq, src, hdr, epoch, digest, body *)
  mutable on_sent : unit -> unit; (* single hook, see create *)
  mutable heal : hstate option;
  mutable seq : int; (* operation sequence number, shared semantics *)
  mutable active : bool;
  mutable op : opkind;
  mutable root : int;
  mutable rop : redop;
  mutable expect_up : int; (* child messages still awaited *)
  mutable expect_down : int; (* parent messages still awaited: 0 or 1 *)
  mutable sends_pending : int; (* local adapter handoffs outstanding *)
  mutable acc : Bb.t option; (* reduction accumulator / payload / result *)
  mutable finish : (unit, string) result -> unit;
  mutable poisoned : string option;
  (* Tree coordinates of the current operation (root-dependent). *)
  mutable c_root : int; (* root's cluster *)
  mutable c_me : int; (* this member's cluster *)
  mutable mc : int; (* size of this member's cluster *)
  mutable base : int; (* cluster position of the cluster's tree root *)
  mutable v_me : int; (* intra-cluster virtual rank *)
  (* Stage-span bookkeeping for coll.stage trace events. *)
  mutable stage : string;
  mutable stage_since : int; (* -1 = no open stage *)
  mutable stage_bytes : int;
}

(* ---------- tree navigation ----------

   Multilevel: inside cluster [c], ranks form a binomial tree over virtual
   ranks obtained by rotating the cluster's member list so the cluster's
   tree root (the operation root in its own cluster, the Netdb leader
   elsewhere) sits at vrank 0. Across clusters, the operation root plus the
   other clusters' leaders form a top-level binomial tree over "top virtual
   ranks": the root is top-vrank 0 and the remaining clusters keep their
   Netdb order. All coordinates are integer arithmetic over Netdb's stored
   arrays — navigation allocates nothing. After an eviction the same
   arithmetic runs over the evicted partition, so the shrunken trees need
   no separate code path. *)

let croot t c = if c = t.c_root then t.root else Netdb.leader t.db c

let topv t c = if c = t.c_root then 0 else if c < t.c_root then c + 1 else c

let cluster_of_topv t u =
  if u = 0 then t.c_root else if u <= t.c_root then u - 1 else u

(* Actual rank at intra-cluster vrank [v] of this member's cluster. *)
let actual t v =
  let mems = Netdb.members t.db t.c_me in
  mems.((t.base + v) mod t.mc)

let parent_of t =
  if t.rank = t.root then -1
  else
    match t.strategy with
    | Flat -> t.root
    | Multilevel ->
      if t.v_me > 0 then actual t (Tree.parent t.v_me)
      else
        (* cluster tree root of a non-root cluster: top-level parent *)
        let pu = Tree.parent (topv t t.c_me) in
        croot t (cluster_of_topv t pu)

let iter_children_of t f =
  match t.strategy with
  | Flat ->
    if t.rank = t.root then
      for r = 0 to t.n - 1 do
        if
          r <> t.root
          && (match t.heal with Some h -> not h.dead.(r) | None -> true)
        then f r
      done
  | Multilevel ->
    (* Top-level (WAN) children first so inter-cluster messages leave the
       node before the intra-cluster fan-out — the stages pipeline. *)
    if t.v_me = 0 then begin
      let cc = Netdb.cluster_count t.db in
      Tree.iter_children ~m:cc (topv t t.c_me) (fun u ->
          f (croot t (cluster_of_topv t u)))
    end;
    Tree.iter_children ~m:t.mc t.v_me (fun v -> f (actual t v))

let child_count_of t =
  let c = ref 0 in
  iter_children_of t (fun _ -> incr c);
  !c

(* The child whose subtree contains [dst] — scatter routing. Only called
   with destinations inside this member's subtree. *)
let route_child t dst =
  match t.strategy with
  | Flat -> dst
  | Multilevel ->
    let c_dst = Netdb.cluster_of t.db dst in
    if c_dst = t.c_me then
      let v_dst = (Netdb.position t.db dst - t.base + t.mc) mod t.mc in
      actual t (Tree.child_toward ~m:t.mc t.v_me ~target:v_dst)
    else
      let cc = Netdb.cluster_count t.db in
      let u =
        Tree.child_toward ~m:cc (topv t t.c_me) ~target:(topv t c_dst)
      in
      croot t (cluster_of_topv t u)

(* ---------- observability ---------- *)

let level_label t =
  match t.strategy with
  | Flat -> "flat"
  | Multilevel ->
    if t.v_me = 0 && Netdb.cluster_count t.db > 1 then "wan"
    else Netdb.level_name (Netdb.cluster_level t.db t.c_me)

let open_stage t stage =
  t.stage <- stage;
  t.stage_since <- Clock.now t.clk;
  t.stage_bytes <- 0

let close_stage t =
  if t.stage_since >= 0 then begin
    if Trace.on () then
      Trace.complete (Ct.node t.ct) ~since:t.stage_since
        (Event.Coll_stage
           { group = t.gname; op = op_name t.op; stage = t.stage;
             level = level_label t; bytes = t.stage_bytes });
    t.stage_since <- -1
  end

let emit_member t action rank ~epoch =
  if Trace.on () then
    Trace.instant (Ct.node t.ct)
      (Event.Member { group = t.gname; action; rank; epoch })

(* ---------- failure ---------- *)

let cancel_deadline t =
  match t.heal with
  | Some h -> (
    match h.deadline with
    | Some tm ->
      Clock.cancel tm;
      h.deadline <- None
    | None -> ())
  | None -> ()

let fail t msg =
  let msg = Printf.sprintf "group %s rank %d: %s" t.gname t.rank msg in
  t.poisoned <- Some msg;
  cancel_deadline t;
  if t.active then begin
    t.active <- false;
    close_stage t;
    let k = t.finish in
    t.finish <- (fun _ -> ());
    k (Error msg)
  end

(* Abort the current operation with an [Error] but do NOT poison the
   member: the group stays usable for subsequent operations. Used when a
   rooted operation's root is evicted — the operation cannot produce its
   result, but membership agreement is intact. *)
let abort_op t msg =
  if t.active then begin
    t.active <- false;
    cancel_deadline t;
    close_stage t;
    let k = t.finish in
    t.finish <- (fun _ -> ());
    k (Error (Printf.sprintf "group %s rank %d: %s" t.gname t.rank msg))
  end

(* ---------- framing ----------

   Wire format: [seq; hdr; body] on a plain group — byte-identical to the
   pre-healing layout. A healing group inserts the membership epoch tag:
   [seq; hdr; epoch; digest; body]; receivers use the tag to discard
   frames from before an eviction and to detect divergent dead sets. Data
   frames use hdr = opcode*2 + phase; control frames the hdr_* codes.
   WAN crossings (source and destination in different Netdb clusters) feed
   the shared counters — the quantity the multilevel strategy minimizes;
   heartbeats are exempt ([wan] false) so an idle healing group does not
   inflate them. *)

let send_frame t ~dst ~seq ~hdr ~wan ?on_sent fill =
  let out = Ct.begin_packing t.ct ~dst in
  Ct.pack_int out seq;
  Ct.pack_int out hdr;
  let base =
    match t.heal with
    | None -> 16
    | Some h ->
      Ct.pack_int out h.epoch;
      Ct.pack_int out h.digest;
      Detect.sent h.det ~peer:dst;
      32
  in
  let body_bytes = fill out in
  let total = base + body_bytes in
  if wan && Netdb.cluster_of t.db t.rank <> Netdb.cluster_of t.db dst then begin
    Stats.Counter.incr t.wmsgs;
    Stats.Counter.add t.wbytes total;
    if Trace.on () then
      Trace.instant (Ct.node t.ct)
        (Event.Coll_wan
           { group = t.gname; op = op_name t.op; dst; bytes = total })
  end;
  Ct.end_packing ?on_sent out;
  total

(* Control frames: no completion tracking, no stage accounting. Eviction
   floods, pulls and serves do count as WAN crossings — they are the
   measurable price of a recovery. *)
let send_ctl t ~dst ~seq ~hdr ~wan fill =
  ignore (send_frame t ~dst ~seq ~hdr ~wan fill : int)

let send_hb t ~dst = send_ctl t ~dst ~seq:0 ~hdr:hdr_hb ~wan:false (fun _ -> 0)

let send_evict t h ~dst =
  send_ctl t ~dst ~seq:0 ~hdr:hdr_evict ~wan:true (fun out ->
      let cnt = ref 0 in
      for r = 0 to t.n - 1 do
        if h.dead.(r) then incr cnt
      done;
      Ct.pack_int out !cnt;
      for r = 0 to t.n - 1 do
        if h.dead.(r) then Ct.pack_int out r
      done;
      8 * (!cnt + 1))

let send_pull t ~dst ~pseq =
  send_ctl t ~dst ~seq:pseq ~hdr:hdr_pull ~wan:true (fun _ -> 0)

(* ---------- eviction agreement primitives ---------- *)

(* FNV-1a over the dead ranks ascending, masked into 62 bits (the full
   64-bit basis would overflow OCaml's boxed-free int). Two members whose
   tags carry the same epoch (dead count) but different digests have
   diverged: each sends the other its full dead set and the union wins. *)
let digest_of_dead dead =
  let h = ref 0xbf29ce484222325 in
  Array.iteri
    (fun r d ->
       if d then
         h := (!h lxor r) * 0x100000001b3 land 0x3FFF_FFFF_FFFF_FFFF)
    dead;
  !h

let empty_digest = digest_of_dead [||]

(* Who this member watches: its neighbours at ring distance 1..K over its
   cluster's member positions (wrapping), plus — when it is the cluster's
   leader — every other cluster's leader. Deterministic from the Netdb
   partition, so all members agree on who is responsible for confirming
   whom; recomputed after each eviction. *)
let monitor_set t (h : hstate) =
  let db = t.db in
  let c = Netdb.cluster_of db t.rank in
  let mems = Netdb.members db c in
  let m = Array.length mems in
  let pos = Netdb.position db t.rank in
  let acc = ref [] in
  let k = min monitor_ring (m - 1) in
  for d = 1 to k do
    acc :=
      mems.((pos + d) mod m) :: mems.((pos - d + (2 * m)) mod m) :: !acc
  done;
  if Netdb.leader db c = t.rank then begin
    let cc = Netdb.cluster_count db in
    for c' = 0 to cc - 1 do
      if c' <> c then acc := Netdb.leader db c' :: !acc
    done
  end;
  List.filter
    (fun r -> r <> t.rank && not h.dead.(r))
    (List.sort_uniq compare !acc)

(* Monitored peers in another cluster ride the WAN: give the detector the
   loss-tolerant mean floor for them. *)
let wan_monitors t peers =
  let c = Netdb.cluster_of t.db t.rank in
  List.filter (fun r -> Netdb.cluster_of t.db r <> c) peers

let lowest_live t h =
  let r = ref (-1) in
  (try
     for i = 0 to t.n - 1 do
       if not h.dead.(i) then begin
         r := i;
         raise Exit
       end
     done
   with Exit -> ());
  !r

(* Record the newly confirmed deaths: mark them, re-partition the topology
   (Netdb.evict re-elects cluster proxies), bump the epoch tag, retarget
   the detector. If this member itself is in the dead set it has been
   evicted by the others — there is no way back (frames from it are
   ignored group-wide), so poison. *)
let mark_and_heal t h newly =
  List.iter
    (fun r ->
       h.dead.(r) <- true;
       t.db <- Netdb.evict t.db r;
       h.evictions <- h.evictions + 1;
       emit_member t "evict" r ~epoch:h.epoch)
    newly;
  let cnt = ref 0 in
  Array.iter (fun d -> if d then incr cnt) h.dead;
  h.epoch <- !cnt;
  h.digest <- digest_of_dead h.dead;
  emit_member t "epoch" t.rank ~epoch:h.epoch;
  if h.dead.(t.rank) then begin
    Detect.stop h.det;
    fail t "evicted from the group"
  end
  else begin
    let mons = monitor_set t h in
    Detect.set_peers h.det ~wan:(wan_monitors t mons) mons
  end

(* ---------- committed-operation records ----------

   Liveness of a retry depends on members that already committed the
   operation: they will not re-send anything, so a retrying neighbour
   {e pulls} them and they re-serve the committed record. Because the root
   commits only after every live member contributed, live members' done
   sequence numbers can differ by at most one — retaining the single last
   record per member is enough. *)

let h_serve_record t h ~dst =
  send_ctl t ~dst ~seq:h.done_seq ~hdr:hdr_serve ~wan:true (fun out ->
      match h.done_op with
      | Barrier | Reduce | Gather -> 0
      | Allreduce | Bcast -> (
        match h.drecord with
        | Some p ->
          Ct.pack out p;
          Bb.length p
        | None -> 0)
      | Scatter ->
        if Array.length h.dentries = t.n && dst >= 0 && dst < t.n then begin
          let p = h.dentries.(dst) in
          Ct.pack_int out 1;
          Ct.pack_int out dst;
          Ct.pack_int out (Bb.length p);
          Ct.pack out p;
          24 + Bb.length p
        end
        else begin
          Ct.pack_int out 0;
          8
        end)

(* A pull for the already-committed op is served immediately; a pull for
   the op we are still running is queued and served at commit. Pulls from
   the future (we have not begun that op) are buffered by the caller. *)
let h_handle_pull t h ~src ~pseq =
  if pseq = h.done_seq then h_serve_record t h ~dst:src
  else if t.active && pseq = t.seq then begin
    if not (List.mem src h.pulls) then h.pulls <- src :: h.pulls
  end
(* other pseq: a pull for an op that failed locally — drop; the puller's
   own deadline is the backstop *)

let h_commit t h =
  h.done_seq <- t.seq;
  h.done_op <- t.op;
  h.done_root <- t.root;
  (match t.op with
   | Allreduce | Bcast -> h.drecord <- t.acc
   | Reduce -> h.drecord <- (if t.rank = t.root then t.acc else None)
   | Barrier | Gather | Scatter -> h.drecord <- None);
  (match t.op with
   | Scatter when t.rank = t.root -> h.dentries <- h.centries
   | _ -> h.dentries <- [||]);
  (match h.deadline with
   | Some tm ->
     Clock.cancel tm;
     h.deadline <- None
   | None -> ());
  let ps = h.pulls in
  h.pulls <- [];
  List.iter (fun src -> if not h.dead.(src) then h_serve_record t h ~dst:src) ps

(* ---------- completion ---------- *)

let maybe_complete t =
  if t.active && t.expect_up = 0 && t.expect_down = 0 && t.sends_pending = 0
  then begin
    t.active <- false;
    close_stage t;
    (match t.heal with Some h -> h_commit t h | None -> ());
    let k = t.finish in
    t.finish <- (fun _ -> ());
    k (Ok ())
  end

(* Byte-wise fold of a received contribution into the accumulator; the
   operators are associative and commutative so tree shape cannot change
   the result. *)
let apply_rop rop acc body =
  for i = 0 to Bb.length acc - 1 do
    let x = Bb.get_u8 acc i and y = Bb.get_u8 body i in
    Bb.set_u8 acc i
      (match rop with
       | Sum -> (x + y) land 0xff
       | Max -> if y > x then y else x
       | Bxor -> x lxor y)
  done

(* Body cursor for parsing stored message bodies. *)
let read_int body pos =
  let v = Int64.to_int (Bb.get_i64 body !pos) in
  pos := !pos + 8;
  v

let read_buf body pos len =
  let b = Bb.sub body !pos len in
  pos := !pos + len;
  b

let pack_entries t out keep =
  (* Pack the slot entries selected by [keep] as [count; (rank; len;
     payload)...]. Returns body bytes. *)
  let cnt = ref 0 in
  for r = 0 to t.n - 1 do
    match t.slots.(r) with Some _ when keep r -> incr cnt | _ -> ()
  done;
  Ct.pack_int out !cnt;
  let bytes = ref 8 in
  for r = 0 to t.n - 1 do
    match t.slots.(r) with
    | Some p when keep r ->
      Ct.pack_int out r;
      Ct.pack_int out (Bb.length p);
      Ct.pack out p;
      bytes := !bytes + 16 + Bb.length p
    | _ -> ()
  done;
  !bytes

(* ---------- phase machinery ----------

   The default (non-healing) machinery is verbatim PR-6 behaviour. The
   h_-prefixed healing variants run every operation in two phases regardless of
   kind — up-first ops (barrier/reduce/allreduce/gather) add an explicit
   commit broadcast down the tree; down-first ops (bcast/scatter) add an
   explicit ack wave up it — so every member knows when an operation has
   committed group-wide and can retain the pristine state a retry needs
   only until then. Stray duplicates after a retry are benign: expected
   counters are forced and extra frames ignore-match. *)

let rec send t ~dst ~phase fill =
  t.sends_pending <- t.sends_pending + 1;
  let on_sent =
    match t.heal with
    | None -> t.on_sent
    | Some h ->
      (* A restart zeroes sends_pending; completions of frames handed off
         before it must not double-decrement — the incarnation guards. *)
      let i = h.inc in
      fun () ->
        if h.inc = i then begin
          t.sends_pending <- t.sends_pending - 1;
          maybe_complete t
        end
  in
  let total =
    send_frame t ~dst ~seq:t.seq
      ~hdr:((op_index t.op * 2) + phase)
      ~wan:true ~on_sent fill
  in
  t.stage_bytes <- t.stage_bytes + total

and forward_down t =
  match t.op with
  | Barrier ->
    iter_children_of t (fun c -> send t ~dst:c ~phase:1 (fun _ -> 0))
  | Bcast | Allreduce -> (
    match t.acc with
    | Some p ->
      iter_children_of t (fun c ->
          send t ~dst:c ~phase:1 (fun out ->
              Ct.pack out p;
              Bb.length p))
    | None -> fail t "down phase without a payload")
  | Scatter ->
    iter_children_of t (fun child ->
        let any = ref false in
        for dst = 0 to t.n - 1 do
          match t.slots.(dst) with
          | Some _ when route_child t dst = child -> any := true
          | _ -> ()
        done;
        if !any then begin
          send t ~dst:child ~phase:1 (fun out ->
              pack_entries t out (fun dst -> route_child t dst = child));
          (* Entries now travel in the child's subtree: release them. *)
          for dst = 0 to t.n - 1 do
            match t.slots.(dst) with
            | Some _ when route_child t dst = child -> t.slots.(dst) <- None
            | _ -> ()
          done
        end)
  | Reduce | Gather -> assert false

and up_complete t =
  if t.rank <> t.root then begin
    let p = parent_of t in
    (match t.op with
     | Barrier -> send t ~dst:p ~phase:0 (fun _ -> 0)
     | Reduce | Allreduce -> (
       match t.acc with
       | Some acc ->
         send t ~dst:p ~phase:0 (fun out ->
             Ct.pack out acc;
             Bb.length acc)
       | None -> fail t "up phase without an accumulator")
     | Gather ->
       send t ~dst:p ~phase:0 (fun out -> pack_entries t out (fun _ -> true))
     | Bcast | Scatter -> assert false);
    if t.active then begin
      close_stage t;
      if has_down t.op then open_stage t "down"
    end
  end
  else begin
    close_stage t;
    if has_down t.op then begin
      open_stage t "down";
      forward_down t
    end
  end

and handle_up t src body =
  if (not (has_up t.op)) || t.expect_up <= 0 then
    fail t
      (Printf.sprintf "unexpected up-phase message from rank %d during %s"
         src (op_name t.op))
  else begin
    (match t.op with
     | Barrier -> ()
     | Reduce | Allreduce -> (
       match t.acc with
       | Some acc when Bb.length body = Bb.length acc ->
         apply_rop t.rop acc body
       | Some acc ->
         fail t
           (Printf.sprintf "rank %d contributed %d bytes to %s, expected %d"
              src (Bb.length body) (op_name t.op) (Bb.length acc))
       | None -> fail t "up phase without an accumulator")
     | Gather ->
       let pos = ref 0 in
       let cnt = read_int body pos in
       for _ = 1 to cnt do
         let r = read_int body pos in
         let len = read_int body pos in
         let p = read_buf body pos len in
         if r >= 0 && r < t.n then t.slots.(r) <- Some p
       done
     | Bcast | Scatter -> assert false);
    if t.active then begin
      t.expect_up <- t.expect_up - 1;
      if t.expect_up = 0 then up_complete t;
      maybe_complete t
    end
  end

and handle_down t src body =
  if (not (has_down t.op)) || t.expect_down <> 1 then
    fail t
      (Printf.sprintf "unexpected down-phase message from rank %d during %s"
         src (op_name t.op))
  else begin
    t.expect_down <- 0;
    (match t.op with
     | Barrier -> ()
     | Bcast | Allreduce -> t.acc <- Some body
     | Scatter ->
       let pos = ref 0 in
       let cnt = read_int body pos in
       for _ = 1 to cnt do
         let r = read_int body pos in
         let len = read_int body pos in
         let p = read_buf body pos len in
         if r = t.rank then t.acc <- Some p
         else if r >= 0 && r < t.n then t.slots.(r) <- Some p
       done
     | Reduce | Gather -> assert false);
    forward_down t;
    maybe_complete t
  end

and dispatch t src hdr body =
  let phase = hdr land 1 in
  let idx = hdr asr 1 in
  if idx <> op_index t.op then
    fail t
      (Printf.sprintf
         "rank %d sent a %s message during %s — members disagree on the \
          operation"
         src
         (op_name (op_of_index idx))
         (op_name t.op))
  else if phase = 0 then handle_up t src body
  else handle_down t src body

(* ----- healing phase machinery ----- *)

and h_forward_down t =
  (* Down phase of a healing op: data for bcast/scatter, the (possibly
     empty) commit broadcast for up-first ops. *)
  match t.op with
  | Reduce | Gather ->
    iter_children_of t (fun c -> send t ~dst:c ~phase:1 (fun _ -> 0))
  | Barrier | Bcast | Allreduce | Scatter -> forward_down t

and h_send_up t =
  let p = parent_of t in
  (match t.op with
   | Barrier | Bcast | Scatter -> send t ~dst:p ~phase:0 (fun _ -> 0)
   | Reduce | Allreduce -> (
     match t.acc with
     | Some acc ->
       send t ~dst:p ~phase:0 (fun out ->
           Ct.pack out acc;
           Bb.length acc)
     | None -> fail t "up phase without an accumulator")
   | Gather ->
     send t ~dst:p ~phase:0 (fun out -> pack_entries t out (fun _ -> true)));
  if t.active && t.expect_down = 1 then begin
    close_stage t;
    open_stage t "down"
  end

and h_up_complete t =
  (* All expected child frames are in: data for up-first ops, acks for
     down-first ones. *)
  if t.rank = t.root then begin
    if has_up t.op then begin
      close_stage t;
      open_stage t "down";
      h_forward_down t
    end
    (* down-first root: all acks collected, maybe_complete fires *)
  end
  else if has_up t.op then h_send_up t
  else if t.expect_down = 0 then
    (* down-first non-root: ack the parent only once our own data arrived
       and was forwarded AND every child acked *)
    h_send_up t

and h_handle_up t src body =
  if t.expect_up <= 0 then ()
    (* stray duplicate after an adopt-commit or a retry — benign *)
  else begin
    (match t.op with
     | Barrier | Bcast | Scatter -> () (* arrival / ack: empty *)
     | Reduce | Allreduce -> (
       match t.acc with
       | Some acc when Bb.length body = Bb.length acc ->
         apply_rop t.rop acc body
       | Some acc ->
         fail t
           (Printf.sprintf "rank %d contributed %d bytes to %s, expected %d"
              src (Bb.length body) (op_name t.op) (Bb.length acc))
       | None -> fail t "up phase without an accumulator")
     | Gather ->
       let pos = ref 0 in
       let cnt = read_int body pos in
       for _ = 1 to cnt do
         let r = read_int body pos in
         let len = read_int body pos in
         let p = read_buf body pos len in
         if r >= 0 && r < t.n then t.slots.(r) <- Some p
       done);
    if t.active then begin
      t.expect_up <- t.expect_up - 1;
      if t.expect_up = 0 then h_up_complete t;
      maybe_complete t
    end
  end

and h_handle_down t _src body =
  if t.expect_down <> 1 then () (* duplicate commit after a retry — benign *)
  else begin
    t.expect_down <- 0;
    if has_up t.op then begin
      (* up-first op: this is the commit broadcast. Adopt it even if some
         child data never arrived (the root proved it has the full
         contribution set): force the up count and relay. *)
      (match t.op with Allreduce -> t.acc <- Some body | _ -> ());
      t.expect_up <- 0;
      h_forward_down t;
      maybe_complete t
    end
    else begin
      (* down-first op: this is the data. *)
      (match t.op with
       | Bcast -> t.acc <- Some body
       | Scatter ->
         let pos = ref 0 in
         let cnt = read_int body pos in
         for _ = 1 to cnt do
           let r = read_int body pos in
           let len = read_int body pos in
           let p = read_buf body pos len in
           if r = t.rank then t.acc <- Some p
           else if r >= 0 && r < t.n then t.slots.(r) <- Some p
         done
       | _ -> ());
      h_forward_down t;
      if t.active && t.expect_up = 0 then h_up_complete t;
      maybe_complete t
    end
  end

and h_dispatch t src hdr body =
  let phase = hdr land 1 in
  let idx = hdr asr 1 in
  if idx <> op_index t.op then
    fail t
      (Printf.sprintf
         "rank %d sent a %s message during %s — members disagree on the \
          operation"
         src
         (op_name (op_of_index idx))
         (op_name t.op))
  else if phase = 0 then h_handle_up t src body
  else h_handle_down t src body

and h_handle_serve t body =
  (* A committed neighbour re-served the operation we are retrying: adopt
     its result, stop expecting anything, relay to our subtree (whose
     members may be waiting on us the same way) and complete. *)
  (match t.op with
   | Barrier | Reduce | Gather -> ()
   | Allreduce | Bcast -> t.acc <- Some body
   | Scatter ->
     let pos = ref 0 in
     let cnt = read_int body pos in
     for _ = 1 to cnt do
       let r = read_int body pos in
       let len = read_int body pos in
       let p = read_buf body pos len in
       if r = t.rank then t.acc <- Some p
     done);
  t.expect_up <- 0;
  t.expect_down <- 0;
  (match t.op with
   | Scatter -> () (* scatter pulls go to the root directly; no relay *)
   | _ ->
     iter_children_of t (fun c ->
         send_ctl t ~dst:c ~seq:t.seq ~hdr:hdr_serve ~wan:true (fun out ->
             match t.op with
             | Allreduce | Bcast -> (
               match t.acc with
               | Some p ->
                 Ct.pack out p;
                 Bb.length p
               | None -> 0)
             | _ -> 0)));
  maybe_complete t

(* Replay buffered messages that match the current operation. Dispatching
   may complete the operation and let the caller start the next one
   reentrantly, so the queue length is only a rotation bound. *)
and drain_pending t =
  let rounds = Queue.length t.pending in
  for _ = 1 to rounds do
    if not (Queue.is_empty t.pending) then begin
      let ((seq, src, hdr, ep, dg, body) as msg) = Queue.pop t.pending in
      match t.heal with
      | None ->
        if t.active && seq = t.seq then dispatch t src hdr body
        else if seq > t.seq then Queue.push msg t.pending
        (* seq < t.seq: leftover from a failed operation — drop *)
      | Some h ->
        if h.dead.(src) || ep < h.epoch then () (* pre-eviction frame *)
        else if ep > h.epoch then Queue.push msg t.pending
        else if dg <> h.digest then send_evict t h ~dst:src
        else if hdr = hdr_pull then begin
          if seq > t.seq then Queue.push msg t.pending
          else h_handle_pull t h ~src ~pseq:seq
        end
        else if t.active && seq = t.seq then begin
          if hdr = hdr_serve then h_handle_serve t body
          else h_dispatch t src hdr body
        end
        else if seq > t.seq then Queue.push msg t.pending
        else if seq = h.done_seq && hdr <> hdr_serve then
          (* a retrying neighbour re-sent data for an operation we already
             committed: re-serve our record so it can complete *)
          h_serve_record t h ~dst:src
    end
  done

(* Rewind and retry the in-flight operation over the shrunken membership:
   the heart of self-healing. The per-operation state is reset from the
   pristine contribution copies (the retry of a reduction must fold fresh,
   minus the dead rank), tree coordinates are recomputed over the evicted
   partition, and members that already committed are pulled so they
   re-serve their record instead of staying silent. *)
and restart_active t h =
  if t.active then begin
    h.inc <- h.inc + 1;
    t.sends_pending <- 0;
    (match h.deadline with
     | Some tm ->
       Clock.cancel tm;
       h.deadline <- None
     | None -> ());
    let rerooted = h.dead.(t.root) in
    if rerooted then begin
      match t.op with
      | Barrier | Allreduce ->
        (* rootless semantics: any agreed rank serves; take the lowest *)
        t.root <- lowest_live t h
      | Bcast | Reduce | Gather | Scatter ->
        abort_op t
          (Printf.sprintf "%s root (rank %d) died" (op_name t.op) t.root)
    end;
    if t.active then begin
      t.c_root <- Netdb.cluster_of t.db t.root;
      t.c_me <- Netdb.cluster_of t.db t.rank;
      t.mc <- Array.length (Netdb.members t.db t.c_me);
      t.base <- Netdb.position t.db (croot t t.c_me);
      t.v_me <- (Netdb.position t.db t.rank - t.base + t.mc) mod t.mc;
      Array.fill t.slots 0 t.n None;
      (match t.op with
       | Barrier -> t.acc <- None
       | Bcast ->
         t.acc <-
           (if t.rank = t.root then
              match h.contrib with Some p -> Some p | None -> t.acc
            else None)
       | Reduce | Allreduce -> (
         (* apply_rop scribbles on the accumulator: refold from a fresh
            copy of the pristine contribution *)
         match h.contrib with
         | Some p -> t.acc <- Some (Bb.copy p)
         | None -> t.acc <- None)
       | Gather ->
         t.acc <- None;
         (match h.contrib with
          | Some p -> t.slots.(t.rank) <- Some p
          | None -> ())
       | Scatter ->
         t.acc <- None;
         if t.rank = t.root && Array.length h.centries = t.n then
           for i = 0 to t.n - 1 do
             if i = t.rank then t.acc <- Some h.centries.(i)
             else if not h.dead.(i) then t.slots.(i) <- Some h.centries.(i)
           done);
      t.expect_up <- child_count_of t;
      t.expect_down <- (if t.rank = t.root then 0 else 1);
      h.restarts <- h.restarts + 1;
      emit_member t "restart" t.rank ~epoch:h.epoch;
      close_stage t;
      open_stage t "retry";
      (match t.deadline_ns with
       | None -> ()
       | Some d ->
         let s = t.seq and i = h.inc in
         h.deadline <-
           Some
             (Clock.arm t.clk d (fun () ->
                  if t.active && t.seq = s && h.inc = i then
                    fail t
                      (Printf.sprintf
                         "%s exceeded its %d ns deadline after eviction"
                         (op_name t.op) d))));
      (* kick the retry wave *)
      if has_up t.op then begin
        if t.expect_up = 0 then h_up_complete t
      end
      else if t.rank = t.root then h_forward_down t;
      (* pull members that may already have committed and gone quiet *)
      if t.active && t.rank <> t.root then begin
        let target =
          match t.op with Scatter -> t.root | _ -> parent_of t
        in
        send_pull t ~dst:target ~pseq:t.seq
      end;
      if t.active && rerooted && t.rank = t.root then
        (* a re-rooted, still-active root must learn whether the old root
           committed before dying (some member then holds the result):
           pull everyone, adopt the first serve *)
        for r = 0 to t.n - 1 do
          if (not h.dead.(r)) && r <> t.rank then send_pull t ~dst:r ~pseq:t.seq
        done
    end
  end

and h_handle_evict t h ~src body =
  let pos = ref 0 in
  let cnt = read_int body pos in
  let newly = ref [] in
  for _ = 1 to cnt do
    let r = read_int body pos in
    if r >= 0 && r < t.n && not h.dead.(r) then newly := r :: !newly
  done;
  let newly = List.sort_uniq compare !newly in
  if newly <> [] then begin
    mark_and_heal t h newly;
    if not h.dead.(t.rank) then begin
      (* reply with our union (the sender may be missing deaths we know)
         and relay inside our own cluster so the flood converges even if
         the confirmer's broadcast was cut short *)
      if not h.dead.(src) then send_evict t h ~dst:src;
      let c = Netdb.cluster_of t.db t.rank in
      Array.iter
        (fun r -> if r <> t.rank then send_evict t h ~dst:r)
        (Netdb.members t.db c);
      restart_active t h
    end
  end

and confirmed t h r =
  (* Detector verdict: [r] is dead. Evict it, flood the agreement to every
     live member, retry whatever was in flight. *)
  if r >= 0 && r < t.n && not h.dead.(r) then begin
    mark_and_heal t h [r];
    if not h.dead.(t.rank) then begin
      for dst = 0 to t.n - 1 do
        if (not h.dead.(dst)) && dst <> t.rank then send_evict t h ~dst
      done;
      restart_active t h
    end;
    drain_pending t;
    maybe_complete t
  end

(* ---------- operation start ---------- *)

let begin_op t op ~root finish =
  match t.poisoned with
  | Some msg ->
    finish (Error msg);
    false
  | None ->
    if t.active then
      invalid_arg
        (Printf.sprintf
           "Group %s rank %d: %s started while %s is still running (one \
            collective at a time)"
           t.gname t.rank (op_name op) (op_name t.op));
    if root < 0 || root >= t.n then
      invalid_arg
        (Printf.sprintf "Group %s: root %d out of range (size %d)" t.gname
           root t.n);
    (* A healing group may have evicted the requested root: rootless ops
       remap to the lowest live rank; rooted ops fail cleanly (without
       poisoning) but still consume the sequence number so all members
       stay aligned. *)
    let root, dead_root =
      match t.heal with
      | Some h when h.dead.(root) -> (
        match op with
        | Barrier | Allreduce -> (lowest_live t h, false)
        | Bcast | Reduce | Gather | Scatter -> (root, true))
      | _ -> (root, false)
    in
    t.seq <- t.seq + 1;
    if dead_root then begin
      finish
        (Error
           (Printf.sprintf "group %s rank %d: %s root (rank %d) was evicted"
              t.gname t.rank (op_name op) root));
      false
    end
    else begin
      t.active <- true;
      t.op <- op;
      t.root <- root;
      t.finish <- finish;
      t.c_root <- Netdb.cluster_of t.db root;
      t.c_me <- Netdb.cluster_of t.db t.rank;
      t.mc <- Array.length (Netdb.members t.db t.c_me);
      t.base <- Netdb.position t.db (croot t t.c_me);
      t.v_me <- (Netdb.position t.db t.rank - t.base + t.mc) mod t.mc;
      Array.fill t.slots 0 t.n None;
      t.acc <- None;
      (match t.heal with
       | None ->
         t.expect_up <- (if has_up op then child_count_of t else 0);
         t.expect_down <- (if has_down op && t.rank <> root then 1 else 0)
       | Some h ->
         (* two-phase shapes: every op acknowledges up and commits down *)
         h.contrib <- None;
         h.centries <- [||];
         t.expect_up <- child_count_of t;
         t.expect_down <- (if t.rank <> root then 1 else 0));
      open_stage t (if has_up op then "up" else "down");
      (match t.deadline_ns with
       | None -> ()
       | Some d -> (
         match t.heal with
         | None ->
           let s = t.seq in
           Clock.after t.clk d (fun () ->
               if t.active && t.seq = s then
                 fail t
                   (Printf.sprintf "%s exceeded its %d ns deadline"
                      (op_name op) d))
         | Some h ->
           (* cancellable: a healing group outlives deadlines routinely
              (commit cancels, restart re-arms) and on the wall clock a
              pending timer would pin the reactor *)
           let s = t.seq and i = h.inc in
           h.deadline <-
             Some
               (Clock.arm t.clk d (fun () ->
                    if t.active && t.seq = s && h.inc = i then
                      fail t
                        (Printf.sprintf "%s exceeded its %d ns deadline"
                           (op_name op) d)))));
      true
    end

let kickoff t =
  (match t.heal with
   | None ->
     if has_up t.op then begin
       if t.expect_up = 0 then up_complete t
     end
     else if t.rank = t.root then forward_down t
   | Some _ ->
     if has_up t.op then begin
       if t.expect_up = 0 then h_up_complete t
     end
     else if t.rank = t.root then h_forward_down t);
  drain_pending t;
  maybe_complete t

(* ---------- public operations ---------- *)

let ibarrier t k = if begin_op t Barrier ~root:0 (fun r -> k r) then kickoff t

let ibcast t ~root payload k =
  if
    begin_op t Bcast ~root (fun r ->
        match r with
        | Ok () -> (
          match t.acc with
          | Some p -> k (Ok p)
          | None -> k (Error "bcast completed without a payload"))
        | Error e -> k (Error e))
  then begin
    if t.rank = t.root then begin
      t.acc <- Some payload;
      match t.heal with Some h -> h.contrib <- Some payload | None -> ()
    end;
    kickoff t
  end

let ireduce t ~root ~op payload k =
  if
    begin_op t Reduce ~root (fun r ->
        match r with
        | Ok () -> k (Ok (if t.rank = t.root then t.acc else None))
        | Error e -> k (Error e))
  then begin
    t.rop <- op;
    (* Private accumulator: combining must not scribble on the caller's
       buffer. *)
    t.acc <- Some (Bb.copy payload);
    (match t.heal with Some h -> h.contrib <- Some payload | None -> ());
    kickoff t
  end

let iallreduce t ~op payload k =
  if
    begin_op t Allreduce ~root:0 (fun r ->
        match r with
        | Ok () -> (
          match t.acc with
          | Some p -> k (Ok p)
          | None -> k (Error "allreduce completed without a result"))
        | Error e -> k (Error e))
  then begin
    t.rop <- op;
    t.acc <- Some (Bb.copy payload);
    (match t.heal with Some h -> h.contrib <- Some payload | None -> ());
    kickoff t
  end

let igather t ~root payload k =
  if
    begin_op t Gather ~root (fun r ->
        match r with
        | Ok () ->
          if t.rank <> t.root then k (Ok None)
          else begin
            let is_dead i =
              match t.heal with Some h -> h.dead.(i) | None -> false
            in
            let missing = ref (-1) in
            for i = t.n - 1 downto 0 do
              if (not (is_dead i)) && t.slots.(i) = None then missing := i
            done;
            if !missing >= 0 then
              k
                (Error
                   (Printf.sprintf
                      "gather completed without rank %d's contribution"
                      !missing))
            else
              k
                (Ok
                   (Some
                      (Array.init t.n (fun i ->
                           match t.slots.(i) with
                           | Some p -> p
                           | None ->
                             (* evicted rank: zero-length placeholder *)
                             Bb.create 0))))
          end
        | Error e -> k (Error e))
  then begin
    t.slots.(t.rank) <- Some payload;
    (match t.heal with Some h -> h.contrib <- Some payload | None -> ());
    kickoff t
  end

let iscatter t ~root payloads k =
  if t.rank = root && Array.length payloads <> t.n then
    invalid_arg
      (Printf.sprintf "Group %s: scatter expects %d payloads, got %d" t.gname
         t.n (Array.length payloads));
  if
    begin_op t Scatter ~root (fun r ->
        match r with
        | Ok () -> (
          match t.acc with
          | Some p -> k (Ok p)
          | None -> k (Error "scatter completed without an entry"))
        | Error e -> k (Error e))
  then begin
    if t.rank = root then begin
      let is_dead i =
        match t.heal with Some h -> h.dead.(i) | None -> false
      in
      for i = 0 to t.n - 1 do
        if not (is_dead i) then
          if i = t.rank then t.acc <- Some payloads.(i)
          else t.slots.(i) <- Some payloads.(i)
      done;
      match t.heal with
      | Some h -> h.centries <- Array.copy payloads
      | None -> ()
    end;
    kickoff t
  end

(* ---------- blocking wrappers ---------- *)

(* Completion may be synchronous (single-member group, poisoned group):
   only suspend when the callback has not fired yet. *)
let await f =
  let cell = ref None in
  let waiting = ref None in
  f (fun r ->
      match !waiting with Some resume -> resume r | None -> cell := Some r);
  match !cell with
  | Some r -> r
  | None -> Proc.suspend (fun resume -> waiting := Some resume)

let ok = function Ok v -> v | Error e -> raise (Failed e)

let barrier t = ok (await (fun k -> ibarrier t k))
let bcast t ~root p = ok (await (fun k -> ibcast t ~root p k))
let reduce t ~root ~op p = ok (await (fun k -> ireduce t ~root ~op p k))
let allreduce t ~op p = ok (await (fun k -> iallreduce t ~op p k))
let gather t ~root p = ok (await (fun k -> igather t ~root p k))
let scatter t ~root ps = ok (await (fun k -> iscatter t ~root ps k))

(* ---------- construction ---------- *)

let create ?(strategy = Multilevel) ?deadline_ns ?heal padico ~name nodes =
  let cts = Padico.circuit padico ~name:("coll." ^ name) nodes in
  let group = Array.of_list nodes in
  let db0 = Netdb.build (Padico.net padico) group in
  let wmsgs =
    Metrics.fresh_counter Metrics.Global ("coll." ^ name ^ ".wan_msgs")
  in
  let wbytes =
    Metrics.fresh_counter Metrics.Global ("coll." ^ name ^ ".wan_bytes")
  in
  let n = Array.length group in
  Array.mapi
    (fun rank ct ->
       let node = Ct.node ct in
       let t =
         { gname = name; strategy; deadline_ns; clk = Node.clock node; ct;
           db = db0; rank; n; wmsgs; wbytes; slots = Array.make n None;
           pending = Queue.create (); on_sent = (fun () -> ()); heal = None;
           seq = 0; active = false; op = Barrier; root = 0; rop = Sum;
           expect_up = 0; expect_down = 0; sends_pending = 0; acc = None;
           finish = (fun _ -> ()); poisoned = None; c_root = 0; c_me = 0;
           mc = 1; base = 0; v_me = 0; stage = ""; stage_since = -1;
           stage_bytes = 0 }
       in
       t.on_sent <-
         (fun () ->
            t.sends_pending <- t.sends_pending - 1;
            maybe_complete t);
       (match heal with
        | None ->
          Ct.set_recv ct (fun inc ->
              let seq = Ct.unpack_int inc in
              let hdr = Ct.unpack_int inc in
              let src = Ct.incoming_src inc in
              let body = Ct.unpack inc (Ct.remaining inc) in
              if t.active && seq = t.seq then dispatch t src hdr body
              else if seq > t.seq then
                Queue.push (seq, src, hdr, 0, 0, body) t.pending
              (* seq <= t.seq while inactive: the operation failed locally
                 (deadline) — drop the late message *))
        | Some dcfg ->
          let det = Detect.create ~config:dcfg ~name:("coll." ^ name) node in
          let h =
            { det; dead = Array.make n false; epoch = 0;
              digest = empty_digest; resynced = Array.make n (-1); inc = 0;
              contrib = None; centries = [||]; done_seq = 0;
              done_op = Barrier; done_root = 0; drecord = None;
              dentries = [||]; pulls = []; deadline = None; restarts = 0;
              evictions = 0 }
          in
          t.heal <- Some h;
          let mons = monitor_set t h in
          Detect.set_peers det ~wan:(wan_monitors t mons) mons;
          (* real-socket death (TCP reset) short-circuits phi accrual *)
          Ct.set_on_peer_down ct (fun r ->
              if r >= 0 && r < n then Detect.link_dead det ~peer:r);
          Detect.start det
            ~send_hb:(fun p -> send_hb t ~dst:p)
            ~on_confirm:(fun r -> confirmed t h r)
            ();
          Ct.set_recv ct (fun inc ->
              let seq = Ct.unpack_int inc in
              let hdr = Ct.unpack_int inc in
              let ep = Ct.unpack_int inc in
              let dg = Ct.unpack_int inc in
              let src = Ct.incoming_src inc in
              let body = Ct.unpack inc (Ct.remaining inc) in
              if not h.dead.(src) then begin
                Detect.heard det ~peer:src;
                if hdr = hdr_hb then ()
                else if hdr = hdr_evict then begin
                  h_handle_evict t h ~src body;
                  drain_pending t;
                  maybe_complete t
                end
                else if ep > h.epoch then
                  (* the sender knows deaths we have not heard of yet; its
                     EVICT flood is coming — park the frame *)
                  Queue.push (seq, src, hdr, ep, dg, body) t.pending
                else if ep < h.epoch then begin
                  (* pre-eviction frame: drop, and re-sync the laggard
                     (once per epoch per rank) *)
                  if h.resynced.(src) < h.epoch then begin
                    h.resynced.(src) <- h.epoch;
                    send_evict t h ~dst:src
                  end
                end
                else if dg <> h.digest then
                  (* same death count, different dead sets: exchange *)
                  send_evict t h ~dst:src
                else if hdr = hdr_pull then begin
                  if seq > t.seq then
                    Queue.push (seq, src, hdr, ep, dg, body) t.pending
                  else h_handle_pull t h ~src ~pseq:seq
                end
                else if t.active && seq = t.seq then begin
                  if hdr = hdr_serve then h_handle_serve t body
                  else h_dispatch t src hdr body
                end
                else if seq > t.seq then
                  Queue.push (seq, src, hdr, ep, dg, body) t.pending
                else if seq = h.done_seq && hdr <> hdr_serve then
                  (* a retrying neighbour re-sent data for an operation we
                     already committed (its restart crossed our commit):
                     re-serve the record so it can complete *)
                  h_serve_record t h ~dst:src
                (* other seq <= t.seq while inactive: late frame — drop *)
              end));
       t)
    cts

(* ---------- accessors ---------- *)

let name t = t.gname
let rank t = t.rank
let size t = t.n
let strategy t = t.strategy
let netdb t = t.db
let poisoned t = t.poisoned
let wan_messages t = Stats.Counter.value t.wmsgs
let wan_bytes t = Stats.Counter.value t.wbytes

let healing t = match t.heal with Some _ -> true | None -> false
let epoch t = match t.heal with Some h -> h.epoch | None -> 0

let live_count t =
  match t.heal with
  | None -> t.n
  | Some h ->
    let c = ref 0 in
    Array.iter (fun d -> if not d then incr c) h.dead;
    !c

let dead_ranks t =
  match t.heal with
  | None -> []
  | Some h ->
    let acc = ref [] in
    for r = t.n - 1 downto 0 do
      if h.dead.(r) then acc := r :: !acc
    done;
    !acc

let detector t = match t.heal with Some h -> Some h.det | None -> None
let restarts t = match t.heal with Some h -> h.restarts | None -> 0
let evictions t = match t.heal with Some h -> h.evictions | None -> 0

let retire t =
  match t.heal with
  | Some h ->
    Detect.stop h.det;
    (match h.deadline with
     | Some tm ->
       Clock.cancel tm;
       h.deadline <- None
     | None -> ())
  | None -> ()
