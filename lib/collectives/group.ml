module Bb = Engine.Bytebuf
module Stats = Engine.Stats
module Sim = Engine.Sim
module Proc = Engine.Proc
module Ct = Circuit.Ct
module Netdb = Selector.Netdb
module Trace = Padico_obs.Trace
module Metrics = Padico_obs.Metrics
module Event = Padico_obs.Event

exception Failed of string

type strategy = Flat | Multilevel

type redop = Sum | Max | Bxor

type opkind = Barrier | Bcast | Reduce | Allreduce | Gather | Scatter

let op_name = function
  | Barrier -> "barrier"
  | Bcast -> "bcast"
  | Reduce -> "reduce"
  | Allreduce -> "allreduce"
  | Gather -> "gather"
  | Scatter -> "scatter"

let op_index = function
  | Barrier -> 0
  | Bcast -> 1
  | Reduce -> 2
  | Allreduce -> 3
  | Gather -> 4
  | Scatter -> 5

let op_of_index = function
  | 0 -> Barrier
  | 1 -> Bcast
  | 2 -> Reduce
  | 3 -> Allreduce
  | 4 -> Gather
  | 5 -> Scatter
  | i -> invalid_arg (Printf.sprintf "Group: unknown opcode %d" i)

(* Which phases an operation runs: "up" flows towards the root (reductions,
   gathers, barrier arrival), "down" away from it (broadcasts, scatters,
   barrier/allreduce release). *)
let has_up = function
  | Barrier | Reduce | Allreduce | Gather -> true
  | Bcast | Scatter -> false

let has_down = function
  | Barrier | Bcast | Allreduce | Scatter -> true
  | Reduce | Gather -> false

type t = {
  gname : string;
  strategy : strategy;
  deadline_ns : int option;
  sim : Sim.t;
  ct : Ct.t;
  db : Netdb.t;
  rank : int;
  n : int;
  wmsgs : Stats.Counter.t;  (* shared across members *)
  wbytes : Stats.Counter.t;
  (* Flat-array per-member state, allocated once at creation and reused by
     every operation — no per-round allocation beyond outgoing buffers. *)
  slots : Bb.t option array;  (* gather contributions / scatter entries *)
  pending : (int * int * int * Bb.t) Queue.t;  (* seq, src, hdr, body *)
  mutable on_sent : unit -> unit;  (* single hook, see create *)
  mutable seq : int;  (* operation sequence number, shared semantics *)
  mutable active : bool;
  mutable op : opkind;
  mutable root : int;
  mutable rop : redop;
  mutable expect_up : int;  (* child messages still awaited *)
  mutable expect_down : int;  (* parent messages still awaited: 0 or 1 *)
  mutable sends_pending : int;  (* local adapter handoffs outstanding *)
  mutable acc : Bb.t option;  (* reduction accumulator / payload / result *)
  mutable finish : (unit, string) result -> unit;
  mutable poisoned : string option;
  (* Tree coordinates of the current operation (root-dependent). *)
  mutable c_root : int;  (* root's cluster *)
  mutable c_me : int;  (* this member's cluster *)
  mutable mc : int;  (* size of this member's cluster *)
  mutable base : int;  (* cluster position of the cluster's tree root *)
  mutable v_me : int;  (* intra-cluster virtual rank *)
  (* Stage-span bookkeeping for coll.stage trace events. *)
  mutable stage : string;
  mutable stage_since : int;  (* -1 = no open stage *)
  mutable stage_bytes : int;
}

(* ---------- tree navigation ----------

   Multilevel: inside cluster [c], ranks form a binomial tree over virtual
   ranks obtained by rotating the cluster's member list so the cluster's
   tree root (the operation root in its own cluster, the Netdb leader
   elsewhere) sits at vrank 0. Across clusters, the operation root plus the
   other clusters' leaders form a top-level binomial tree over "top virtual
   ranks": the root is top-vrank 0 and the remaining clusters keep their
   Netdb order. All coordinates are integer arithmetic over Netdb's stored
   arrays — navigation allocates nothing. *)

let croot t c = if c = t.c_root then t.root else Netdb.leader t.db c

let topv t c = if c = t.c_root then 0 else if c < t.c_root then c + 1 else c

let cluster_of_topv t u =
  if u = 0 then t.c_root else if u <= t.c_root then u - 1 else u

(* Actual rank at intra-cluster vrank [v] of this member's cluster. *)
let actual t v =
  let mems = Netdb.members t.db t.c_me in
  mems.((t.base + v) mod t.mc)

let parent_of t =
  if t.rank = t.root then -1
  else
    match t.strategy with
    | Flat -> t.root
    | Multilevel ->
      if t.v_me > 0 then actual t (Tree.parent t.v_me)
      else
        (* cluster tree root of a non-root cluster: top-level parent *)
        let pu = Tree.parent (topv t t.c_me) in
        croot t (cluster_of_topv t pu)

let iter_children_of t f =
  match t.strategy with
  | Flat ->
    if t.rank = t.root then
      for r = 0 to t.n - 1 do
        if r <> t.root then f r
      done
  | Multilevel ->
    (* Top-level (WAN) children first so inter-cluster messages leave the
       node before the intra-cluster fan-out — the stages pipeline. *)
    if t.v_me = 0 then begin
      let cc = Netdb.cluster_count t.db in
      Tree.iter_children ~m:cc (topv t t.c_me) (fun u ->
          f (croot t (cluster_of_topv t u)))
    end;
    Tree.iter_children ~m:t.mc t.v_me (fun v -> f (actual t v))

let child_count_of t =
  let c = ref 0 in
  iter_children_of t (fun _ -> incr c);
  !c

(* The child whose subtree contains [dst] — scatter routing. Only called
   with destinations inside this member's subtree. *)
let route_child t dst =
  match t.strategy with
  | Flat -> dst
  | Multilevel ->
    let c_dst = Netdb.cluster_of t.db dst in
    if c_dst = t.c_me then
      let v_dst =
        (Netdb.position t.db dst - t.base + t.mc) mod t.mc
      in
      actual t (Tree.child_toward ~m:t.mc t.v_me ~target:v_dst)
    else
      let cc = Netdb.cluster_count t.db in
      let u =
        Tree.child_toward ~m:cc (topv t t.c_me) ~target:(topv t c_dst)
      in
      croot t (cluster_of_topv t u)

(* ---------- observability ---------- *)

let level_label t =
  match t.strategy with
  | Flat -> "flat"
  | Multilevel ->
    if t.v_me = 0 && Netdb.cluster_count t.db > 1 then "wan"
    else Netdb.level_name (Netdb.cluster_level t.db t.c_me)

let open_stage t stage =
  t.stage <- stage;
  t.stage_since <- Sim.now t.sim;
  t.stage_bytes <- 0

let close_stage t =
  if t.stage_since >= 0 then begin
    if Trace.on () then
      Trace.complete (Ct.node t.ct) ~since:t.stage_since
        (Event.Coll_stage
           { group = t.gname; op = op_name t.op; stage = t.stage;
             level = level_label t; bytes = t.stage_bytes });
    t.stage_since <- -1
  end

(* ---------- failure ---------- *)

let fail t msg =
  let msg = Printf.sprintf "group %s rank %d: %s" t.gname t.rank msg in
  t.poisoned <- Some msg;
  if t.active then begin
    t.active <- false;
    close_stage t;
    let k = t.finish in
    t.finish <- (fun _ -> ());
    k (Error msg)
  end

(* ---------- completion ---------- *)

let maybe_complete t =
  if
    t.active && t.expect_up = 0 && t.expect_down = 0 && t.sends_pending = 0
  then begin
    t.active <- false;
    close_stage t;
    let k = t.finish in
    t.finish <- (fun _ -> ());
    k (Ok ())
  end

(* ---------- sending ----------

   Wire format: [seq; opcode*2 + phase; body]. [fill] packs the body and
   returns its byte count. WAN crossings (source and destination in
   different Netdb clusters) feed the shared counters — the quantity the
   multilevel strategy minimizes. *)

let send t ~dst ~phase fill =
  t.sends_pending <- t.sends_pending + 1;
  let out = Ct.begin_packing t.ct ~dst in
  Ct.pack_int out t.seq;
  Ct.pack_int out ((op_index t.op * 2) + phase);
  let body_bytes = fill out in
  let total = 16 + body_bytes in
  t.stage_bytes <- t.stage_bytes + total;
  if Netdb.cluster_of t.db t.rank <> Netdb.cluster_of t.db dst then begin
    Stats.Counter.incr t.wmsgs;
    Stats.Counter.add t.wbytes total;
    if Trace.on () then
      Trace.instant (Ct.node t.ct)
        (Event.Coll_wan
           { group = t.gname; op = op_name t.op; dst; bytes = total })
  end;
  Ct.end_packing ~on_sent:t.on_sent out

(* Byte-wise fold of a received contribution into the accumulator; the
   operators are associative and commutative so tree shape cannot change
   the result. *)
let apply_rop rop acc body =
  for i = 0 to Bb.length acc - 1 do
    let x = Bb.get_u8 acc i and y = Bb.get_u8 body i in
    Bb.set_u8 acc i
      (match rop with
       | Sum -> (x + y) land 0xff
       | Max -> if y > x then y else x
       | Bxor -> x lxor y)
  done

(* Body cursor for parsing stored message bodies. *)
let read_int body pos =
  let v = Int64.to_int (Bb.get_i64 body !pos) in
  pos := !pos + 8;
  v

let read_buf body pos len =
  let b = Bb.sub body !pos len in
  pos := !pos + len;
  b

let pack_entries t out keep =
  (* Pack the slot entries selected by [keep] as [count; (rank; len;
     payload)...]. Returns body bytes. *)
  let cnt = ref 0 in
  for r = 0 to t.n - 1 do
    match t.slots.(r) with Some _ when keep r -> incr cnt | _ -> ()
  done;
  Ct.pack_int out !cnt;
  let bytes = ref 8 in
  for r = 0 to t.n - 1 do
    match t.slots.(r) with
    | Some p when keep r ->
      Ct.pack_int out r;
      Ct.pack_int out (Bb.length p);
      Ct.pack out p;
      bytes := !bytes + 16 + Bb.length p
    | _ -> ()
  done;
  !bytes

(* ---------- phase machinery ---------- *)

let forward_down t =
  match t.op with
  | Barrier ->
    iter_children_of t (fun c -> send t ~dst:c ~phase:1 (fun _ -> 0))
  | Bcast | Allreduce ->
    (match t.acc with
     | Some p ->
       iter_children_of t (fun c ->
           send t ~dst:c ~phase:1 (fun out ->
               Ct.pack out p;
               Bb.length p))
     | None -> fail t "down phase without a payload")
  | Scatter ->
    iter_children_of t (fun child ->
        let any = ref false in
        for dst = 0 to t.n - 1 do
          match t.slots.(dst) with
          | Some _ when route_child t dst = child -> any := true
          | _ -> ()
        done;
        if !any then begin
          send t ~dst:child ~phase:1 (fun out ->
              pack_entries t out (fun dst ->
                  route_child t dst = child));
          (* Entries now travel in the child's subtree: release them. *)
          for dst = 0 to t.n - 1 do
            match t.slots.(dst) with
            | Some _ when route_child t dst = child -> t.slots.(dst) <- None
            | _ -> ()
          done
        end)
  | Reduce | Gather -> assert false

let up_complete t =
  if t.rank <> t.root then begin
    let p = parent_of t in
    (match t.op with
     | Barrier -> send t ~dst:p ~phase:0 (fun _ -> 0)
     | Reduce | Allreduce ->
       (match t.acc with
        | Some acc ->
          send t ~dst:p ~phase:0 (fun out ->
              Ct.pack out acc;
              Bb.length acc)
        | None -> fail t "up phase without an accumulator")
     | Gather ->
       send t ~dst:p ~phase:0 (fun out -> pack_entries t out (fun _ -> true))
     | Bcast | Scatter -> assert false);
    if t.active then begin
      close_stage t;
      if has_down t.op then open_stage t "down"
    end
  end
  else begin
    close_stage t;
    if has_down t.op then begin
      open_stage t "down";
      forward_down t
    end
  end

let handle_up t src body =
  if (not (has_up t.op)) || t.expect_up <= 0 then
    fail t
      (Printf.sprintf "unexpected up-phase message from rank %d during %s"
         src (op_name t.op))
  else begin
    (match t.op with
     | Barrier -> ()
     | Reduce | Allreduce ->
       (match t.acc with
        | Some acc when Bb.length body = Bb.length acc ->
          apply_rop t.rop acc body
        | Some acc ->
          fail t
            (Printf.sprintf
               "rank %d contributed %d bytes to %s, expected %d" src
               (Bb.length body) (op_name t.op) (Bb.length acc))
        | None -> fail t "up phase without an accumulator")
     | Gather ->
       let pos = ref 0 in
       let cnt = read_int body pos in
       for _ = 1 to cnt do
         let r = read_int body pos in
         let len = read_int body pos in
         let p = read_buf body pos len in
         if r >= 0 && r < t.n then t.slots.(r) <- Some p
       done
     | Bcast | Scatter -> assert false);
    if t.active then begin
      t.expect_up <- t.expect_up - 1;
      if t.expect_up = 0 then up_complete t;
      maybe_complete t
    end
  end

let handle_down t src body =
  if (not (has_down t.op)) || t.expect_down <> 1 then
    fail t
      (Printf.sprintf "unexpected down-phase message from rank %d during %s"
         src (op_name t.op))
  else begin
    t.expect_down <- 0;
    (match t.op with
     | Barrier -> ()
     | Bcast | Allreduce -> t.acc <- Some body
     | Scatter ->
       let pos = ref 0 in
       let cnt = read_int body pos in
       for _ = 1 to cnt do
         let r = read_int body pos in
         let len = read_int body pos in
         let p = read_buf body pos len in
         if r = t.rank then t.acc <- Some p
         else if r >= 0 && r < t.n then t.slots.(r) <- Some p
       done
     | Reduce | Gather -> assert false);
    forward_down t;
    maybe_complete t
  end

let dispatch t src hdr body =
  let phase = hdr land 1 in
  let idx = hdr asr 1 in
  if idx <> op_index t.op then
    fail t
      (Printf.sprintf
         "rank %d sent a %s message during %s — members disagree on the \
          operation"
         src
         (op_name (op_of_index idx))
         (op_name t.op))
  else if phase = 0 then handle_up t src body
  else handle_down t src body

(* Replay buffered messages that match the current operation. Dispatching
   may complete the operation and let the caller start the next one
   reentrantly, so the queue length is only a rotation bound. *)
let drain_pending t =
  let rounds = Queue.length t.pending in
  for _ = 1 to rounds do
    if not (Queue.is_empty t.pending) then begin
      let ((seq, src, hdr, body) as msg) = Queue.pop t.pending in
      if t.active && seq = t.seq then dispatch t src hdr body
      else if seq > t.seq then Queue.push msg t.pending
      (* seq < t.seq: leftover from a failed operation — drop *)
    end
  done

(* ---------- operation start ---------- *)

let begin_op t op ~root finish =
  match t.poisoned with
  | Some msg ->
    finish (Error msg);
    false
  | None ->
    if t.active then
      invalid_arg
        (Printf.sprintf
           "Group %s rank %d: %s started while %s is still running (one \
            collective at a time)"
           t.gname t.rank (op_name op) (op_name t.op));
    if root < 0 || root >= t.n then
      invalid_arg
        (Printf.sprintf "Group %s: root %d out of range (size %d)" t.gname
           root t.n);
    t.seq <- t.seq + 1;
    t.active <- true;
    t.op <- op;
    t.root <- root;
    t.finish <- finish;
    t.c_root <- Netdb.cluster_of t.db root;
    t.c_me <- Netdb.cluster_of t.db t.rank;
    t.mc <- Array.length (Netdb.members t.db t.c_me);
    t.base <- Netdb.position t.db (croot t t.c_me);
    t.v_me <- (Netdb.position t.db t.rank - t.base + t.mc) mod t.mc;
    Array.fill t.slots 0 t.n None;
    t.acc <- None;
    t.expect_up <- (if has_up op then child_count_of t else 0);
    t.expect_down <- (if has_down op && t.rank <> root then 1 else 0);
    open_stage t (if has_up op then "up" else "down");
    (match t.deadline_ns with
     | None -> ()
     | Some d ->
       let s = t.seq in
       Sim.after t.sim d (fun () ->
           if t.active && t.seq = s then
             fail t
               (Printf.sprintf "%s exceeded its %d ns deadline" (op_name op)
                  d)));
    true

let kickoff t =
  if has_up t.op then begin
    if t.expect_up = 0 then up_complete t
  end
  else if t.rank = t.root then forward_down t;
  drain_pending t;
  maybe_complete t

(* ---------- public operations ---------- *)

let ibarrier t k =
  if begin_op t Barrier ~root:0 (fun r -> k r) then kickoff t

let ibcast t ~root payload k =
  if
    begin_op t Bcast ~root (fun r ->
        match r with
        | Ok () ->
          (match t.acc with
           | Some p -> k (Ok p)
           | None -> k (Error "bcast completed without a payload"))
        | Error e -> k (Error e))
  then begin
    if t.rank = root then t.acc <- Some payload;
    kickoff t
  end

let ireduce t ~root ~op payload k =
  if
    begin_op t Reduce ~root (fun r ->
        match r with
        | Ok () -> k (Ok (if t.rank = t.root then t.acc else None))
        | Error e -> k (Error e))
  then begin
    t.rop <- op;
    (* Private accumulator: combining must not scribble on the caller's
       buffer. *)
    t.acc <- Some (Bb.copy payload);
    kickoff t
  end

let iallreduce t ~op payload k =
  if
    begin_op t Allreduce ~root:0 (fun r ->
        match r with
        | Ok () ->
          (match t.acc with
           | Some p -> k (Ok p)
           | None -> k (Error "allreduce completed without a result"))
        | Error e -> k (Error e))
  then begin
    t.rop <- op;
    t.acc <- Some (Bb.copy payload);
    kickoff t
  end

let igather t ~root payload k =
  if
    begin_op t Gather ~root (fun r ->
        match r with
        | Ok () ->
          if t.rank <> t.root then k (Ok None)
          else begin
            let missing = ref (-1) in
            for i = t.n - 1 downto 0 do
              if t.slots.(i) = None then missing := i
            done;
            if !missing >= 0 then
              k
                (Error
                   (Printf.sprintf
                      "gather completed without rank %d's contribution"
                      !missing))
            else
              k
                (Ok
                   (Some
                      (Array.init t.n (fun i ->
                           match t.slots.(i) with
                           | Some p -> p
                           | None -> assert false))))
          end
        | Error e -> k (Error e))
  then begin
    t.slots.(t.rank) <- Some payload;
    kickoff t
  end

let iscatter t ~root payloads k =
  if t.rank = root && Array.length payloads <> t.n then
    invalid_arg
      (Printf.sprintf "Group %s: scatter expects %d payloads, got %d"
         t.gname t.n (Array.length payloads));
  if
    begin_op t Scatter ~root (fun r ->
        match r with
        | Ok () ->
          (match t.acc with
           | Some p -> k (Ok p)
           | None -> k (Error "scatter completed without an entry"))
        | Error e -> k (Error e))
  then begin
    if t.rank = root then
      for i = 0 to t.n - 1 do
        if i = t.rank then t.acc <- Some payloads.(i)
        else t.slots.(i) <- Some payloads.(i)
      done;
    kickoff t
  end

(* ---------- blocking wrappers ---------- *)

(* Completion may be synchronous (single-member group, poisoned group):
   only suspend when the callback has not fired yet. *)
let await f =
  let cell = ref None in
  let waiting = ref None in
  f (fun r ->
      match !waiting with
      | Some resume -> resume r
      | None -> cell := Some r);
  match !cell with
  | Some r -> r
  | None -> Proc.suspend (fun resume -> waiting := Some resume)

let ok = function Ok v -> v | Error e -> raise (Failed e)

let barrier t = ok (await (fun k -> ibarrier t k))
let bcast t ~root p = ok (await (fun k -> ibcast t ~root p k))
let reduce t ~root ~op p = ok (await (fun k -> ireduce t ~root ~op p k))
let allreduce t ~op p = ok (await (fun k -> iallreduce t ~op p k))
let gather t ~root p = ok (await (fun k -> igather t ~root p k))
let scatter t ~root ps = ok (await (fun k -> iscatter t ~root ps k))

(* ---------- construction ---------- *)

let create ?(strategy = Multilevel) ?deadline_ns padico ~name nodes =
  let cts = Padico.circuit padico ~name:("coll." ^ name) nodes in
  let group = Array.of_list nodes in
  let db = Netdb.build (Padico.net padico) group in
  let wmsgs =
    Metrics.fresh_counter Metrics.Global ("coll." ^ name ^ ".wan_msgs")
  in
  let wbytes =
    Metrics.fresh_counter Metrics.Global ("coll." ^ name ^ ".wan_bytes")
  in
  let n = Array.length group in
  Array.mapi
    (fun rank ct ->
       let t =
         { gname = name; strategy; deadline_ns; sim = Padico.sim padico; ct;
           db; rank; n; wmsgs; wbytes; slots = Array.make n None;
           pending = Queue.create (); on_sent = (fun () -> ()); seq = 0;
           active = false; op = Barrier; root = 0; rop = Sum; expect_up = 0;
           expect_down = 0; sends_pending = 0; acc = None;
           finish = (fun _ -> ()); poisoned = None; c_root = 0; c_me = 0;
           mc = 1; base = 0; v_me = 0; stage = ""; stage_since = -1;
           stage_bytes = 0 }
       in
       t.on_sent <-
         (fun () ->
            t.sends_pending <- t.sends_pending - 1;
            maybe_complete t);
       Ct.set_recv ct (fun inc ->
           let seq = Ct.unpack_int inc in
           let hdr = Ct.unpack_int inc in
           let src = Ct.incoming_src inc in
           let body = Ct.unpack inc (Ct.remaining inc) in
           if t.active && seq = t.seq then dispatch t src hdr body
           else if seq > t.seq then Queue.push (seq, src, hdr, body) t.pending
           (* seq <= t.seq while inactive: the operation failed locally
              (deadline) — drop the late message *));
       t)
    cts

let name t = t.gname
let rank t = t.rank
let size t = t.n
let strategy t = t.strategy
let netdb t = t.db
let poisoned t = t.poisoned
let wan_messages t = Stats.Counter.value t.wmsgs
let wan_bytes t = Stats.Counter.value t.wbytes
