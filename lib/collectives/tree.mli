(** Binomial-tree navigation over virtual ranks.

    A binomial tree over [m] virtual ranks rooted at vrank 0: the parent of
    [v > 0] drops the least-significant set bit of [v]; the children of [v]
    are [v + 1, v + 2, v + 4, ...] up to (exclusive) [v]'s own
    least-significant bit (every power of two below [m] for the root). The
    subtree of [v] is the contiguous vrank range [v, subtree_last v), which
    is what makes the tree convenient for routing scatter payloads: every
    destination lives in exactly one child's range.

    All functions are pure and allocation-free — collectives call them per
    message on the hot path. *)

val parent : int -> int
(** [parent v] for [v > 0]. Raises [Invalid_argument] on the root (or a
    negative vrank), which has no parent. *)

val iter_children : m:int -> int -> (int -> unit) -> unit
(** [iter_children ~m v f] applies [f] to each child of [v], in ascending
    vrank order. *)

val child_count : m:int -> int -> int

val subtree_last : m:int -> int -> int
(** Exclusive end of [v]'s subtree range: the subtree is
    [v, subtree_last ~m v). *)

val child_toward : m:int -> int -> target:int -> int
(** [child_toward ~m v ~target] is the child of [v] whose subtree contains
    [target]. Raises [Invalid_argument] when [target] is not a strict
    descendant of [v]. *)
