module Bytebuf = Engine.Bytebuf

type pack_mode = Send_safer | Send_later | Send_cheaper

type unpack_mode = Receive_express | Receive_cheaper

exception No_channel_left

exception Link_down of string

type channel = { mad : t; gm_chan : Drivers.Gm.channel }

and t = {
  gm : Drivers.Gm.t;
  mnode : Simnet.Node.t;
  seg : Simnet.Segment.t;
  mutable sent : int;
  mutable received : int;
}

type outgoing = {
  chan : channel;
  dst : int;
  mutable pieces : Bytebuf.t list; (* reversed *)
  mutable closed : bool;
}

type incoming = {
  payload : Bytebuf.t;
  src : int;
  mutable pos : int;
}

let instances : (int * int, t) Hashtbl.t = Hashtbl.create 16
let registry_lock = Mutex.create ()

let () =
  Engine.Lifecycle.on_reset (fun () ->
      Mutex.protect registry_lock (fun () -> Hashtbl.reset instances))

let init seg node =
  let key = (Simnet.Segment.uid seg, Simnet.Node.id node) in
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt instances key with
      | Some t -> t
      | None ->
        let t =
          { gm = Drivers.Gm.attach seg node; mnode = node; seg; sent = 0;
            received = 0 }
        in
        Hashtbl.replace instances key t;
        t)

let node t = t.mnode
let segment t = t.seg
let max_channels t = Drivers.Gm.max_channels t.gm

let open_channel t ~id =
  match Drivers.Gm.open_channel t.gm ~id with
  | gm_chan -> { mad = t; gm_chan }
  | exception Drivers.Gm.No_channel_left -> raise No_channel_left

let close_channel ch = Drivers.Gm.close_channel ch.gm_chan

let begin_packing ch ~dst = { chan = ch; dst; pieces = []; closed = false }

let pack out ?(mode = Send_cheaper) buf =
  if out.closed then invalid_arg "Mad.pack: message already sent";
  let piece =
    match mode with
    | Send_safer ->
      (* Caller may overwrite its buffer immediately: take a copy now and
         charge the memcpy. *)
      Simnet.Node.cpu_async (node out.chan.mad)
        (int_of_float
           (Calib.memcpy_per_byte_ns *. float_of_int (Bytebuf.length buf)))
        (fun () -> ());
      Bytebuf.copy buf
    | Send_later | Send_cheaper -> buf
  in
  out.pieces <- piece :: out.pieces

let end_packing ?on_tx out =
  if out.closed then invalid_arg "Mad.end_packing: message already sent";
  let t = out.chan.mad in
  (* Parallel-oriented fail-fast: a SAN either works or the job aborts.
     Detect a dead link synchronously at send time instead of letting the
     message vanish and the peer hang. The message is left unsent (not
     marked closed) so a caller that survives may retry after link-up. *)
  if Simnet.Segment.is_down t.seg then
    raise (Link_down (Simnet.Segment.name t.seg));
  out.closed <- true;
  t.sent <- t.sent + 1;
  Simnet.Node.cpu_async t.mnode Calib.mad_send_ns (fun () ->
      Drivers.Gm.sendv out.chan.gm_chan ~dst:out.dst (List.rev out.pieces);
      (* Send completion: the driver has consumed (DMA-gathered) every
         piece it does not reference by address, so callers reclaiming
         pooled buffers they packed may do it here. *)
      match on_tx with Some f -> f () | None -> ())

let begin_unpacking (_ : incoming) = ()

let unpack inc ?(mode = Receive_express) n =
  ignore mode;
  if n < 0 || inc.pos + n > Bytebuf.length inc.payload then
    invalid_arg
      (Printf.sprintf "Mad.unpack: %d bytes requested, %d remain" n
         (Bytebuf.length inc.payload - inc.pos));
  let piece = Bytebuf.sub inc.payload inc.pos n in
  inc.pos <- inc.pos + n;
  piece

let end_unpacking (_ : incoming) = ()

let remaining inc = Bytebuf.length inc.payload - inc.pos

let incoming_src inc = inc.src

let incoming_length inc = Bytebuf.length inc.payload

let set_recv ch f =
  let t = ch.mad in
  Drivers.Gm.set_recv ch.gm_chan (fun ~src payload ->
      Simnet.Node.cpu_async t.mnode Calib.mad_recv_ns (fun () ->
          t.received <- t.received + 1;
          f { payload; src; pos = 0 }))

let messages_sent t = t.sent
let messages_received t = t.received
