(** Madeleine-like portable high-performance communication library
    (Aumage et al., CLUSTER 2000) — the generic level the paper's MadIO
    arbitration builds on.

    Madeleine offers {e channels} over SAN hardware with {e incremental
    message packing}: a message is built piece by piece with per-piece
    semantics ([Send_safer]/[Send_later]/[Send_cheaper]) and read back with
    ([Receive_express]/[Receive_cheaper]); the library is free to aggregate
    pieces into the same wire packets — this is the mechanism MadIO's header
    combining relies on. The hardware channel budget (2 on Myrinet, 1 on
    SCI) is inherited from the GM driver. *)

type t
(** One node's Madeleine instance on one SAN segment. *)

type channel

type pack_mode =
  | Send_safer  (** the buffer may be reused right after [pack] *)
  | Send_later  (** the buffer must stay valid until [end_packing] *)
  | Send_cheaper  (** free choice of the library (default, fastest) *)

type unpack_mode =
  | Receive_express  (** needed immediately to interpret the message *)
  | Receive_cheaper  (** may be delayed until [end_unpacking] *)

exception No_channel_left

exception Link_down of string
(** Raised by {!end_packing} when the underlying segment's carrier is down
    (fault injection) — Madeleine is fail-fast, it never retries. The
    argument is the segment name. *)

val init : Simnet.Segment.t -> Simnet.Node.t -> t
(** Bring Madeleine up on a SAN (or loopback) segment. Idempotent. *)

val node : t -> Simnet.Node.t
val segment : t -> Simnet.Segment.t
val max_channels : t -> int

val open_channel : t -> id:int -> channel
(** Claims hardware channel [id]; raises {!No_channel_left} beyond the
    budget — the scarcity that motivates MadIO. *)

val close_channel : channel -> unit

(** {1 Sending} *)

type outgoing

val begin_packing : channel -> dst:int -> outgoing
val pack : outgoing -> ?mode:pack_mode -> Engine.Bytebuf.t -> unit
(** Append a piece to the message under construction. [Send_safer] pieces
    are copied (counted); other modes are referenced without copy. *)

val end_packing : ?on_tx:(unit -> unit) -> outgoing -> unit
(** Emit the message. The pieces travel as one gathered wire message.
    [on_tx] fires at send completion — once the driver has posted the
    message (DMA-gathering the pieces it does not keep by reference), on
    the send-side node's virtual timeline. Callers that packed pooled
    buffers and pass [Send_cheaper] reclaim them there. Note that a piece
    which exactly fills a driver fragment {e is} kept by reference until
    delivery; [on_tx]-reclaimed buffers must always be packed alongside
    other pieces in the same fragment (e.g. a small header followed by
    payload), which forces the gather copy. *)

(** {1 Receiving} *)

type incoming

val begin_unpacking : incoming -> unit
(** No-op marker, kept for API fidelity. *)

val unpack : incoming -> ?mode:unpack_mode -> int -> Engine.Bytebuf.t
(** Read the next [n] bytes of the message (no copy). Raises
    [Invalid_argument] when fewer bytes remain. *)

val end_unpacking : incoming -> unit
val remaining : incoming -> int
val incoming_src : incoming -> int
val incoming_length : incoming -> int

val set_recv : channel -> (incoming -> unit) -> unit
(** Message-arrival callback for this channel. *)

val messages_sent : t -> int
val messages_received : t -> int
