module Registry = Registry
module Net = Simnet.Net
module Node = Simnet.Node
module Segment = Simnet.Segment
module Linkmodel = Simnet.Linkmodel
module Sysio = Netaccess.Sysio
module Madio = Netaccess.Madio
module Vl = Vlink.Vl
module Ct = Circuit.Ct
module Prefs = Selector.Prefs
module Sel = Selector

let log = Logs.Src.create "padico"

module Log = (val Logs.src_log log : Logs.LOG)

type backend = Sim | Host

type t = {
  pnet : Net.t;
  pbackend : backend;
  ploop : Hostio.Loop.t option; (* the reactor when [pbackend = Host] *)
  mutable pprefs : Prefs.t;
  mutable next_lchan : int; (* MadIO logical channels for circuits *)
  mutable next_circuit_port : int;
  mutable relays : Node.t list; (* gateways running the relay service *)
}

let pstream_port_offset = 10_000

let vrp_port_offset = 20_000

let register_builtins () =
  let e name kind description paradigm =
    Registry.register { Registry.name; kind; description; paradigm }
  in
  e "gm" Registry.Driver "GM-like SAN message driver" `Parallel;
  e "tcp" Registry.Driver "TCP reliable stream" `Distributed;
  e "udp" Registry.Driver "UDP datagrams" `Distributed;
  e "madeleine" Registry.Driver "Madeleine portable SAN library" `Parallel;
  e "madio" Registry.Adapter "NetAccess multiplexed SAN access" `Both;
  e "sysio" Registry.Adapter "NetAccess arbitrated socket access" `Both;
  e "loopback" Registry.Adapter "intra-node adapter" `Both;
  e "pstream" Registry.Adapter "parallel TCP streams on WAN" `Distributed;
  e "adoc" Registry.Adapter "adaptive online compression" `Distributed;
  e "vrp" Registry.Adapter "tunable-loss datagram stream" `Distributed;
  e "crypto" Registry.Adapter "cipher on untrusted links" `Distributed;
  e "vio" Registry.Personality "socket-like API over VLink" `Distributed;
  e "syswrap" Registry.Personality "100% socket-compliant wrapper" `Distributed;
  e "aio" Registry.Personality "POSIX.2 asynchronous I/O" `Distributed;
  e "fm" Registry.Personality "FastMessage 2.0 API over Circuit" `Parallel;
  e "madpers" Registry.Personality "virtual Madeleine over Circuit" `Parallel

let create ?seed ?(prefs = Prefs.default) ?(backend = Sim) ?shards () =
  register_builtins ();
  (match backend, shards with
   | Host, Some _ ->
     invalid_arg
       "Padico.create: ~shards needs the simulated backend (the Host         reactor runs on one real clock; conservative synchronization         does not apply)"
   | _ -> ());
  let ploop, clock =
    match backend with
    | Sim -> (None, None)
    | Host ->
      let l = Hostio.Loop.create () in
      (Some l, Some (Hostio.Loop.clock l))
  in
  { pnet = Net.create ?seed ?clock ?shards (); pbackend = backend; ploop;
    pprefs = prefs; next_lchan = 1; next_circuit_port = 7_000; relays = [] }

let net t = t.pnet
let sim t = Net.sim t.pnet
let backend t = t.pbackend
let loop t = t.ploop
let prefs t = t.pprefs
let set_prefs t p = t.pprefs <- p

let add_node ?shard t name = Net.add_node ?shard t.pnet name

let add_segment t model ?name nodes = Net.add_segment t.pnet model ?name nodes

let sysio node = Sysio.get node

let madio _t node seg = Madio.init (Madeleine.Mad.init seg node)

let is_san seg =
  (Segment.model seg).Linkmodel.class_ = Linkmodel.San

let is_ip seg =
  match (Segment.model seg).Linkmodel.class_ with
  | Linkmodel.Lan | Linkmodel.Wan | Linkmodel.Lossy_wan -> true
  | Linkmodel.San | Linkmodel.Loop -> false

let node_segments t node = Net.segments_of t.pnet node

let wrap_by_policy t seg vl =
  let m = Segment.model seg in
  let p = t.pprefs in
  let vl =
    if p.Prefs.adoc_on_slow
       && m.Linkmodel.bandwidth_bps <= p.Prefs.adoc_threshold_bps
    then Vlink.Vl_adoc.wrap ~link_bandwidth_bps:m.Linkmodel.bandwidth_bps vl
    else vl
  in
  if p.Prefs.cipher_untrusted && not m.Linkmodel.trusted then
    Vlink.Vl_crypto.wrap ~key:(Methods.Crypto.key_of_string p.Prefs.cipher_key)
      vl
  else vl

let listen t node ~port accept =
  Vlink.Vl_loopback.listen node ~port accept;
  List.iter
    (fun seg ->
       (* On the host backend every non-loop segment carries real stream
          sockets: SANs have no MadIO rendezvous and datagrams no UDP
          driver, so both collapse onto SysIO. *)
       if is_san seg && t.pbackend = Sim then
         Vlink.Vl_madio.listen (madio t node seg) ~port accept
       else if is_ip seg || (is_san seg && t.pbackend = Host) then begin
         let sio = sysio node in
         let stack = Sysio.stack_on sio seg in
         let accept_wrapped vl = accept (wrap_by_policy t seg vl) in
         Vlink.Vl_sysio.listen sio stack ~port accept_wrapped;
         Vlink.Vl_pstream.listen sio stack ~port:(port + pstream_port_offset)
           accept_wrapped;
         if t.pbackend = Sim then begin
           let udp = Sysio.udp_on sio seg in
           try
             Vlink.Vl_vrp.listen sio udp ~port:(port + vrp_port_offset)
               ~tolerance:t.pprefs.Prefs.vrp_tolerance accept
           with Invalid_argument _ -> ()
         end
       end)
    (node_segments t node)

let connect_choice t ~src ~dst = Sel.choose ~prefs:t.pprefs t.pnet ~src ~dst

(* The selector reasons over the modelled topology; on the host backend
   the SAN driver (MadIO) and the datagram protocol (VRP) have no real
   transport, so their choices are re-targeted to SysIO streams on the
   same segment. Wrapping and striping decisions survive the remap. *)
let remap_for_backend t choice =
  match (t.pbackend, choice.Sel.driver) with
  | Sim, _ | Host, ("loopback" | "sysio" | "pstream") -> choice
  | Host, _ -> { choice with Sel.driver = "sysio" }

let connect_direct t ~src ~dst ~port choice =
  let choice = remap_for_backend t choice in
  Log.debug (fun m ->
      m "connect %s -> %s port %d: %a" (Node.name src) (Node.name dst) port
        Sel.pp_choice choice);
  match (choice.Sel.driver, choice.Sel.segment) with
  | "loopback", _ -> Vlink.Vl_loopback.connect src ~port
  | "madio", Some seg -> Vlink.Vl_madio.connect (madio t src seg) ~dst ~port
  | "pstream", Some seg ->
    let sio = sysio src in
    let stack = Sysio.stack_on sio seg in
    let vl =
      Vlink.Vl_pstream.connect sio stack ~dst:(Node.id dst)
        ~port:(port + pstream_port_offset) ~streams:choice.Sel.streams
    in
    let vl =
      if choice.Sel.wrap_adoc then
        Vlink.Vl_adoc.wrap
          ~link_bandwidth_bps:(Segment.model seg).Linkmodel.bandwidth_bps vl
      else vl
    in
    if choice.Sel.wrap_crypto then
      Vlink.Vl_crypto.wrap
        ~key:(Methods.Crypto.key_of_string t.pprefs.Prefs.cipher_key) vl
    else vl
  | "vrp", Some seg ->
    let sio = sysio src in
    let udp = Sysio.udp_on sio seg in
    Vlink.Vl_vrp.connect sio udp ~dst:(Node.id dst)
      ~port:(port + vrp_port_offset) ~tolerance:choice.Sel.vrp_tolerance
      ~rate_bps:((Segment.model seg).Linkmodel.bandwidth_bps *. 0.95)
  | "sysio", Some seg ->
    let sio = sysio src in
    let stack = Sysio.stack_on sio seg in
    let vl = Vlink.Vl_sysio.connect sio stack ~dst:(Node.id dst) ~port in
    let vl =
      if choice.Sel.wrap_adoc then
        Vlink.Vl_adoc.wrap
          ~link_bandwidth_bps:(Segment.model seg).Linkmodel.bandwidth_bps vl
      else vl
    in
    if choice.Sel.wrap_crypto then
      Vlink.Vl_crypto.wrap
        ~key:(Methods.Crypto.key_of_string t.pprefs.Prefs.cipher_key) vl
    else vl
  | driver, _ ->
    failwith (Printf.sprintf "Padico.connect: unknown driver %S" driver)

(* ---------- relay tunnels (the paper's future work: "tunnels for
   full-connectivity through firewalls") ---------- *)

let relay_port = 7

(* Copy bytes from [src] to [dst] until EOF, then close the sink. *)
let splice node src dst =
  ignore
    (Simnet.Node.spawn node ~name:"relay-pump" (fun () ->
         let buf = Engine.Bytebuf.create 65_536 in
         let rec pump () =
           match Vl.await (Vl.post_read src buf) with
           | Vl.Done n ->
             (match
                Vl.await (Vl.post_write dst (Engine.Bytebuf.sub buf 0 n))
              with
              | Vl.Done _ -> pump ()
              | Vl.Again | Vl.Eof | Vl.Error _ -> Vl.close src)
           | Vl.Again | Vl.Eof | Vl.Error _ -> Vl.close dst
         in
         pump ()))

let rec connect_via_relay t ~src ~dst ~port =
  let reaches r other =
    Node.uid r = Node.uid other
    || Net.links_between t.pnet r other <> []
  in
  match
    List.find_opt (fun r -> reaches r src && reaches r dst) t.relays
  with
  | None ->
    failwith
      (Printf.sprintf
         "Padico.connect: no common network and no relay between %s and %s"
         (Node.name src) (Node.name dst))
  | Some gateway ->
    let vl = connect t ~src ~dst:gateway ~port:relay_port in
    (* CONNECT preamble: target node id and port. *)
    let hdr = Engine.Bytebuf.create 8 in
    Engine.Bytebuf.set_u32 hdr 0 (Node.id dst);
    Engine.Bytebuf.set_u32 hdr 4 port;
    ignore (Vl.post_write vl hdr);
    vl

and start_relay t node =
  if not (List.exists (fun r -> Node.uid r = Node.uid node) t.relays) then begin
    t.relays <- node :: t.relays;
    listen t node ~port:relay_port (fun inbound ->
        ignore
          (Simnet.Node.spawn node ~name:"relay" (fun () ->
               let hdr = Engine.Bytebuf.create 8 in
               let rec read_hdr filled =
                 if filled >= 8 then true
                 else
                   match
                     Vl.await
                       (Vl.post_read inbound
                          (Engine.Bytebuf.sub hdr filled (8 - filled)))
                   with
                   | Vl.Done n -> read_hdr (filled + n)
                   | Vl.Again | Vl.Eof | Vl.Error _ -> false
               in
               if read_hdr 0 then begin
                 let dst_id = Engine.Bytebuf.get_u32 hdr 0 in
                 let dst_port = Engine.Bytebuf.get_u32 hdr 4 in
                 match Net.node_by_id t.pnet dst_id with
                 | None -> Vl.close inbound
                 | Some target ->
                   let outbound = connect t ~src:node ~dst:target ~port:dst_port in
                   (match Vl.await_connected outbound with
                    | Ok () ->
                      splice node inbound outbound;
                      splice node outbound inbound
                    | Error _ -> Vl.close inbound)
               end)))
  end

and connect t ~src ~dst ~port =
  match connect_choice t ~src ~dst with
  | choice -> connect_with_choice t ~src ~dst ~port choice
  | exception Failure _ -> connect_via_relay t ~src ~dst ~port

and connect_with_choice t ~src ~dst ~port choice =
  connect_direct t ~src ~dst ~port choice

(* ---------- circuits ---------- *)

let common_san t a b =
  List.find_opt
    (fun s -> is_san s)
    (Net.links_between t.pnet a b)

let circuit t ~name nodes =
  let group = Array.of_list nodes in
  let n = Array.length group in
  if n = 0 then invalid_arg "Padico.circuit: empty group";
  let lchan = t.next_lchan in
  t.next_lchan <- t.next_lchan + 1;
  if t.next_lchan >= 0xFFF0 then invalid_arg "Padico.circuit: out of channels";
  let port_base = t.next_circuit_port in
  (* one shared TCP port + one pstream port per directed pair *)
  t.next_circuit_port <- t.next_circuit_port + 1 + (n * n);
  let cts = Array.init n (fun rank -> Ct.create ~group ~rank ~name) in
  let pair_port i j = port_base + 1 + (i * n) + j in
  for i = 0 to n - 1 do
    let node_i = group.(i) in
    (* Group SAN-reachable peers per segment so MadIO binds once. *)
    let madio_ranks : (int, int list ref) Hashtbl.t = Hashtbl.create 4 in
    let sysio_ranks : (int, int list ref) Hashtbl.t = Hashtbl.create 4 in
    for j = 0 to n - 1 do
      if j <> i then begin
        let node_j = group.(j) in
        if Node.uid node_i = Node.uid node_j then
          Circuit.Ct_loopback.bind cts.(i) ~dst:j
        else
          match common_san t node_i node_j with
          | Some seg ->
            let key = Segment.uid seg in
            let ranks =
              (* Host backend: the SAN pair rides SysIO streams too. *)
              if t.pbackend = Sim then madio_ranks else sysio_ranks
            in
            (match Hashtbl.find_opt ranks key with
             | Some l -> l := j :: !l
             | None -> Hashtbl.replace ranks key (ref [ j ]))
          | None ->
            let best = Net.best_link t.pnet node_i node_j in
            (match best with
             | Some seg
               when (Segment.model seg).Linkmodel.class_ = Linkmodel.Wan
                    && t.pprefs.Prefs.pstream_on_wan ->
               (* WAN link: circuit over a parallel-streams VLink. The
                  lower rank connects, the higher accepts; the per-pair
                  port disambiguates. *)
               let sio = sysio node_i in
               let stack = Sysio.stack_on sio seg in
               if i < j then begin
                 let vl =
                   Vlink.Vl_pstream.connect sio stack ~dst:(Node.id node_j)
                     ~port:(pair_port i j) ~streams:t.pprefs.Prefs.pstream_streams
                 in
                 Circuit.Ct_vlink.bind_link cts.(i) ~dst:j vl
               end
               else
                 Vlink.Vl_pstream.listen sio stack ~port:(pair_port j i)
                   (fun vl -> Circuit.Ct_vlink.bind_link cts.(i) ~dst:j vl)
             | Some seg ->
               let key = Segment.uid seg in
               (match Hashtbl.find_opt sysio_ranks key with
                | Some l -> l := j :: !l
                | None -> Hashtbl.replace sysio_ranks key (ref [ j ]))
             | None ->
               failwith
                 (Printf.sprintf
                    "Padico.circuit: no common network between %s and %s"
                    (Node.name node_i) (Node.name node_j)))
      end
    done;
    (* Bind grouped adapters. *)
    (* The segment is attached to [node_i] by construction: resolve its uid
       through the node's own adjacency, not the whole grid. *)
    let seg_of_uid uid =
      List.find
        (fun s -> Segment.uid s = uid)
        (Net.segments_of t.pnet node_i)
    in
    Hashtbl.iter
      (fun seg_uid ranks ->
         Circuit.Ct_madio.bind cts.(i)
           (madio t node_i (seg_of_uid seg_uid))
           ~lchannel_id:lchan ~ranks:!ranks)
      madio_ranks;
    Hashtbl.iter
      (fun seg_uid ranks ->
         let sio = sysio node_i in
         Circuit.Ct_sysio.bind cts.(i) sio
           (Sysio.stack_on sio (seg_of_uid seg_uid))
           ~port:port_base ~ranks:!ranks)
      sysio_ranks
  done;
  cts

let run ?until ?domains t =
  match t.ploop with
  | None -> Net.run ?until ?domains t.pnet
  | Some l ->
    (match domains with
     | Some d when d > 1 ->
       invalid_arg "Padico.run: ~domains needs the simulated backend"
     | _ -> ());
    Hostio.Loop.run ?until_ns:until l

let now t =
  match t.ploop with
  | Some _ -> Engine.Clock.now (Net.clock t.pnet)
  | None -> Net.now t.pnet

let reset () = Engine.Lifecycle.reset_registries ()

let spawn t node ?name f = Net.spawn t.pnet node ?name f
