(** Padico runtime façade: brings a simulated grid, the NetAccess
    arbitration, the abstraction layer (VLink + Circuit) and the selector
    together behind one API. This is what examples, middleware bring-up and
    benchmarks use.

    {[
      let grid = Padico.create () in
      let a = Padico.add_node grid "a" in
      let b = Padico.add_node grid "b" in
      ignore (Padico.add_segment grid Simnet.Presets.myrinet2000 [ a; b ]);
      Padico.listen grid b ~port:4000 (fun vl -> ...);
      let vl = Padico.connect grid ~src:a ~dst:b ~port:4000 in
      ...
      Padico.run grid
    ]} *)

module Registry = Registry

type t

type backend =
  | Sim  (** discrete-event simulation on the virtual clock (default) *)
  | Host  (** real Unix sockets and wall-clock timers via {!Hostio} *)

val create :
  ?seed:int -> ?prefs:Selector.Prefs.t -> ?backend:backend -> ?shards:int ->
  unit -> t
(** [backend] selects the execution backend for the whole grid: [Sim]
    runs on the simulator's virtual clock; [Host] creates a
    {!Hostio.Loop} reactor whose monotonic clock every node runs on, so
    the same program does real socket I/O.

    [shards] partitions the grid for the conservative parallel engine
    (see [Simnet.Net.create]); place nodes with {!add_node}'s [?shard]
    and run with {!run}'s [?domains]. [Sim] backend only. *)

val net : t -> Simnet.Net.t
val sim : t -> Engine.Sim.t

val backend : t -> backend

val loop : t -> Hostio.Loop.t option
(** The reactor behind a [Host] grid ([None] on [Sim]). *)

val prefs : t -> Selector.Prefs.t
val set_prefs : t -> Selector.Prefs.t -> unit

(** {1 Topology} *)

val add_node : ?shard:int -> t -> string -> Simnet.Node.t
val add_segment :
  t -> Simnet.Linkmodel.t -> ?name:string -> Simnet.Node.t list ->
  Simnet.Segment.t

(** {1 Per-node resources} *)

val sysio : Simnet.Node.t -> Netaccess.Sysio.t
val madio : t -> Simnet.Node.t -> Simnet.Segment.t -> Netaccess.Madio.t
(** Raises if the segment is not a SAN/loopback or the node not attached. *)

(** {1 Distributed paradigm: VLink connections} *)

val listen : t -> Simnet.Node.t -> port:int -> (Vlink.Vl.t -> unit) -> unit
(** Register the service on every driver the node can be reached through:
    loopback, MadIO on each SAN, SysIO/pstream/VRP on each IP segment —
    with the selector's wrapping (AdOC on slow links, cipher on untrusted
    links) mirrored on the accept path. *)

val connect : t -> src:Simnet.Node.t -> dst:Simnet.Node.t -> port:int ->
  Vlink.Vl.t
(** Driver and methods chosen by the selector; returns immediately. *)

val connect_choice :
  t -> src:Simnet.Node.t -> dst:Simnet.Node.t -> Selector.choice
(** What [connect] would decide (introspection). *)

val connect_with_choice :
  t -> src:Simnet.Node.t -> dst:Simnet.Node.t -> port:int ->
  Selector.choice -> Vlink.Vl.t
(** Apply a specific selector decision — failover re-selection computes a
    choice under exclusions ({!Selector.choose}) and connects with it. *)

(** {1 Relay tunnels (future-work extension)} *)

val start_relay : t -> Simnet.Node.t -> unit
(** Run the tunnel relay service on a gateway node ("tunnels for
    full-connectivity through firewalls"): when [connect] finds no common
    network between two nodes, it tunnels through a registered relay that
    reaches both, transparently for the endpoints. *)

val relay_port : int

(** {1 Parallel paradigm: circuits} *)

val circuit : t -> name:string -> Simnet.Node.t list -> Circuit.Ct.t array
(** Build one circuit over the group; element [i] is rank [i]'s instance
    (live on node [i]). Links are bound per pair: loopback intra-node,
    MadIO on a common SAN, parallel-stream VLink on WAN (when enabled),
    SysIO/TCP otherwise. *)

(** {1 Execution} *)

val run : ?until:int -> ?domains:int -> t -> unit
(** Drive the grid until quiescence. [until] bounds execution: virtual ns
    on [Sim], wall-clock ns since reactor creation on [Host]. [domains]
    (sharded [Sim] grids only) sets the worker-domain count for the
    parallel engine. *)

val now : t -> int
(** Current time on the grid's clock: virtual ns ([Sim]; the maximum
    across shard clocks on a sharded grid) or monotonic wall ns
    ([Host]). *)

val reset : unit -> unit
(** Drop every module-level registry (TCP stacks, NetAccess dispatchers,
    adapter instances, metrics, ...) left behind by previous grids.
    Grids are never reused across scenarios, but the uid-keyed registry
    tables keep each one reachable; a process that runs many scenarios
    back to back (bench runner, conformance kit, capacity sweeps) calls
    this between them so dead grids stop occupying the heap. Must not
    be called while any grid is still in use. *)

val spawn :
  t -> Simnet.Node.t -> ?name:string -> (unit -> unit) -> Engine.Proc.handle

val pstream_port_offset : int
val vrp_port_offset : int
