(* Reusable measurement scenarios over the Padico runtime: grids, latency
   ping-pongs and bandwidth streams for each middleware. Used by the
   benchmark harness (bench/) and the CLI (bin/padico_cli). All numbers
   are virtual-time measurements from the simulator. *)

module Gridgen = Gridgen

module Bb = Engine.Bytebuf
module Vio = Personalities.Vio
module Mpi = Mw_mpi.Mpi
module Orb = Mw_corba.Orb
module Cdr = Mw_corba.Cdr
module Jsock = Mw_java.Jsock

let fail_on_error h =
  match Engine.Proc.result h with
  | Some (Error e) ->
    Printf.eprintf "bench process %s failed: %s\n%!" (Engine.Proc.name h)
      (Printexc.to_string e);
    exit 1
  | Some (Ok ()) | None -> ()

let run grid = Padico.run grid ~until:(Engine.Time.sec 3600)

(* Number of messages for a bandwidth point: enough traffic to reach steady
   state at every size. *)
let count_for size = max 32 (min 2048 (8_000_000 / size))

let mb_s bytes ns = Engine.Stats.bandwidth_mb_s ~bytes_transferred:bytes ~elapsed_ns:ns

(* A Myrinet pair grid (the paper's testbed). *)
let myrinet_pair () =
  let grid = Padico.create () in
  let a = Padico.add_node grid "a" in
  let b = Padico.add_node grid "b" in
  ignore (Padico.add_segment grid Simnet.Presets.myrinet2000 [ a; b ]);
  (grid, a, b)

let pair model ?prefs ?backend () =
  let grid = Padico.create ?prefs ?backend () in
  let a = Padico.add_node grid "a" in
  let b = Padico.add_node grid "b" in
  ignore (Padico.add_segment grid model [ a; b ]);
  (grid, a, b)

(* ---------- generic VLink (Vio) streams ---------- *)

(* One-way bulk: client streams [total] bytes in [chunk]-sized writes;
   returns receiver-side MB/s. *)
let vio_stream_bw grid ~src ~dst ~port ~total ~chunk =
  let t0 = ref 0 and t1 = ref 0 in
  let received = ref 0 in
  let skipped = ref 0 in
  Padico.listen grid dst ~port (fun vl ->
      ignore
        (Padico.spawn grid dst ~name:"sink" (fun () ->
             let buf = Bb.create 65_536 in
             let rec loop () =
               let n = Vio.read vl buf in
               if n > 0 then begin
                 (* Start the clock at the first read; its bytes are not
                    counted in the timed window. *)
                 if !received = 0 then begin
                   t0 := Padico.now grid;
                   skipped := n
                 end;
                 received := !received + n;
                 if !received >= total then t1 := Padico.now grid else loop ()
               end
             in
             loop ();
             (* Release the descriptor: the host reactor only quiesces
                once no active sockets remain. *)
             Vio.close vl)));
  let h =
    Padico.spawn grid src ~name:"source" (fun () ->
        let vl = Padico.connect grid ~src ~dst ~port in
        (match Vio.connect_wait vl with
         | Ok () -> ()
         | Error e -> failwith e);
        let payload = Bb.create chunk in
        let sent = ref 0 in
        while !sent < total do
          let n = min chunk (total - !sent) in
          ignore (Vio.write vl (Bb.sub payload 0 n));
          sent := !sent + n
        done;
        Vio.close vl)
  in
  run grid;
  fail_on_error h;
  if !received < total then nan else mb_s (total - !skipped) (!t1 - !t0)

(* Ping-pong one-way latency in microseconds over Vio. *)
let vio_latency grid ~src ~dst ~port ~size ~iters =
  Padico.listen grid dst ~port (fun vl ->
      ignore
        (Padico.spawn grid dst ~name:"echo" (fun () ->
             let buf = Bb.create size in
             let rec loop () =
               if Vio.read_exact vl buf then begin
                 ignore (Vio.write vl buf);
                 loop ()
               end
             in
             loop ();
             Vio.close vl)));
  let result = ref nan in
  let h =
    Padico.spawn grid src ~name:"pinger" (fun () ->
        let vl = Padico.connect grid ~src ~dst ~port in
        (match Vio.connect_wait vl with
         | Ok () -> ()
         | Error e -> failwith e);
        let buf = Bb.create size in
        (* Warmup. *)
        for _ = 1 to 10 do
          ignore (Vio.write vl buf);
          ignore (Vio.read_exact vl buf)
        done;
        let t0 = Padico.now grid in
        for _ = 1 to iters do
          ignore (Vio.write vl buf);
          ignore (Vio.read_exact vl buf)
        done;
        let t1 = Padico.now grid in
        result := float_of_int (t1 - t0) /. float_of_int iters /. 2.0 /. 1e3;
        Vio.close vl)
  in
  run grid;
  fail_on_error h;
  !result

(* ---------- MPI ---------- *)

let mpi_pair grid a b =
  let cts = Padico.circuit grid ~name:"bench-mpi" [ a; b ] in
  Mpi.init cts

let mpi_stream_bw grid comms ~a ~b ~size ~count =
  let t0 = ref 0 and t1 = ref 0 in
  let h =
    Padico.spawn grid b ~name:"mpi-sink" (fun () ->
        for i = 0 to count - 1 do
          let _ = Mpi.recv comms.(1) ~tag:1 () in
          if i = 0 then t0 := Padico.now grid
        done;
        t1 := Padico.now grid)
  in
  ignore
    (Padico.spawn grid a ~name:"mpi-source" (fun () ->
         let payload = Bb.create size in
         for _ = 1 to count do
           Mpi.send comms.(0) ~dst:1 ~tag:1 payload
         done));
  run grid;
  fail_on_error h;
  mb_s (size * (count - 1)) (!t1 - !t0)

let mpi_latency grid comms ~a ~b ~iters =
  let result = ref nan in
  ignore
    (Padico.spawn grid b ~name:"mpi-echo" (fun () ->
         for _ = 1 to iters + 10 do
           let _, _, m = Mpi.recv comms.(1) ~tag:1 () in
           Mpi.send comms.(1) ~dst:0 ~tag:2 m
         done));
  let h =
    Padico.spawn grid a ~name:"mpi-ping" (fun () ->
        let payload = Bb.create 4 in
        for _ = 1 to 10 do
          Mpi.send comms.(0) ~dst:1 ~tag:1 payload;
          ignore (Mpi.recv comms.(0) ~tag:2 ())
        done;
        let t0 = Padico.now grid in
        for _ = 1 to iters do
          Mpi.send comms.(0) ~dst:1 ~tag:1 payload;
          ignore (Mpi.recv comms.(0) ~tag:2 ())
        done;
        let t1 = Padico.now grid in
        result := float_of_int (t1 - t0) /. float_of_int iters /. 2.0 /. 1e3)
  in
  run grid;
  fail_on_error h;
  !result

(* ---------- CORBA ---------- *)

(* Oneway invocation stream carrying [size] octets, server-side goodput. *)
let corba_stream_bw ~profile grid ~a ~b ~port ~size ~count =
  let orb_a = Orb.init ~profile grid a in
  let orb_b = Orb.init ~profile grid b in
  let t0 = ref 0 and t1 = ref 0 in
  let got = ref 0 in
  Orb.activate orb_b ~key:"sink" (fun ~op:_ v ->
      (match v with
       | Cdr.VOctets data ->
         if !got = 0 then t0 := Padico.now grid;
         got := !got + Bb.length data;
         if !got >= size * count then t1 := Padico.now grid
       | _ -> ());
      Ok Cdr.VNull);
  Orb.serve orb_b ~port;
  let h =
    Padico.spawn grid a ~name:"corba-source" (fun () ->
        let p = Orb.resolve orb_a { Orb.ior_node = b; ior_port = port; ior_key = "sink" } in
        let payload = Cdr.VOctets (Bb.create size) in
        for _ = 1 to count do
          Orb.invoke_oneway p ~op:"push" payload
        done)
  in
  run grid;
  fail_on_error h;
  if !got < size * count then nan
  else mb_s (size * count - size) (!t1 - !t0)

let corba_latency ~profile grid ~a ~b ~port ~iters =
  let orb_a = Orb.init ~profile grid a in
  let orb_b = Orb.init ~profile grid b in
  Orb.activate orb_b ~key:"echo" (fun ~op:_ v -> Ok v);
  Orb.serve orb_b ~port;
  let result = ref nan in
  let h =
    Padico.spawn grid a ~name:"corba-ping" (fun () ->
        let p = Orb.resolve orb_a { Orb.ior_node = b; ior_port = port; ior_key = "echo" } in
        for _ = 1 to 10 do
          ignore (Orb.invoke p ~op:"e" Cdr.VNull)
        done;
        let t0 = Padico.now grid in
        for _ = 1 to iters do
          ignore (Orb.invoke p ~op:"e" Cdr.VNull)
        done;
        let t1 = Padico.now grid in
        result := float_of_int (t1 - t0) /. float_of_int iters /. 2.0 /. 1e3)
  in
  run grid;
  fail_on_error h;
  !result

(* ---------- Java sockets ---------- *)

let java_stream_bw grid ~a ~b ~port ~size ~count =
  let total = size * count in
  let t0 = ref 0 and t1 = ref 0 in
  let timed_bytes = ref total in
  let server = Jsock.server_socket grid b ~port in
  ignore
    (Padico.spawn grid b ~name:"java-sink" (fun () ->
         let s = Jsock.accept server in
         let buf = Bb.create 65_536 in
         let received = ref 0 in
         let skipped = ref 0 in
         let rec loop () =
           let n = Jsock.input_read s buf in
           if n > 0 then begin
             if !received = 0 then begin
               t0 := Padico.now grid;
               skipped := n
             end;
             received := !received + n;
             if !received >= total then begin
               t1 := Padico.now grid;
               timed_bytes := total - !skipped
             end
             else loop ()
           end
         in
         loop ()));
  let h =
    Padico.spawn grid a ~name:"java-source" (fun () ->
        let s = Jsock.connect grid ~src:a ~dst:b ~port in
        let payload = Bb.create size in
        for _ = 1 to count do
          Jsock.output_write s payload
        done)
  in
  run grid;
  fail_on_error h;
  if !t1 = 0 then nan else mb_s !timed_bytes (!t1 - !t0)

let java_latency grid ~a ~b ~port ~iters =
  let server = Jsock.server_socket grid b ~port in
  ignore
    (Padico.spawn grid b ~name:"java-echo" (fun () ->
         let s = Jsock.accept server in
         let buf = Bb.create 4 in
         while Jsock.input_read_fully s buf do
           Jsock.output_write s buf
         done));
  let result = ref nan in
  let h =
    Padico.spawn grid a ~name:"java-ping" (fun () ->
        let s = Jsock.connect grid ~src:a ~dst:b ~port in
        let buf = Bb.create 4 in
        for _ = 1 to 10 do
          Jsock.output_write s buf;
          ignore (Jsock.input_read_fully s buf)
        done;
        let t0 = Padico.now grid in
        for _ = 1 to iters do
          Jsock.output_write s buf;
          ignore (Jsock.input_read_fully s buf)
        done;
        let t1 = Padico.now grid in
        result := float_of_int (t1 - t0) /. float_of_int iters /. 2.0 /. 1e3)
  in
  run grid;
  fail_on_error h;
  !result

(* ---------- table printing ---------- *)

let print_header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let print_row fmt = Printf.printf fmt

let pp_mb v = if Float.is_nan v then "   n/a " else Printf.sprintf "%7.1f" v

let pp_us v = if Float.is_nan v then "   n/a " else Printf.sprintf "%7.2f" v
