(* Multi-cluster grid topology generator: [clusters] SAN islands of
   [nodes_per_cluster] nodes each, every node also attached to one shared
   WAN segment (the vthd/transcontinental backbone of the paper's testbed).
   This is the scaled-up stage for topology-aware collectives — thousands
   of simulated nodes in a shape where flat and multilevel strategies
   differ by an order of magnitude in WAN crossings. *)

type t = {
  grid : Padico.t;
  nodes : Simnet.Node.t list;  (* cluster-major rank order *)
  clusters : Simnet.Node.t list list;
  wan : Simnet.Segment.t;
}

(* [sharded] places every SAN island on its own shard of the conservative
   parallel engine — the natural cut: intra-island traffic (the SAN, the
   loopbacks) stays shard-local and only WAN frames cross, with the WAN
   latency as lookahead. Run with [Padico.run ~domains]. *)
let generate ?seed ?prefs ?backend ?(sharded = false)
    ?(san = Simnet.Presets.myrinet2000)
    ?(wan = Simnet.Presets.vthd) ~clusters ~nodes_per_cluster () =
  if clusters < 1 then invalid_arg "Gridgen.generate: clusters < 1";
  if nodes_per_cluster < 1 then
    invalid_arg "Gridgen.generate: nodes_per_cluster < 1";
  let grid =
    Padico.create ?seed ?prefs ?backend
      ?shards:(if sharded then Some clusters else None) ()
  in
  let islands =
    List.init clusters (fun c ->
        List.init nodes_per_cluster (fun i ->
            Padico.add_node
              ?shard:(if sharded then Some c else None)
              grid (Printf.sprintf "c%d-n%d" c i)))
  in
  List.iteri
    (fun c island ->
       ignore
         (Padico.add_segment grid san ~name:(Printf.sprintf "san%d" c) island))
    islands;
  let nodes = List.concat islands in
  let wan_seg = Padico.add_segment grid wan ~name:"wan" nodes in
  { grid; nodes; clusters = islands; wan = wan_seg }

let size t = List.length t.nodes

(* ---------- edge-gateway scenario (experiment E15) ---------- *)

module Sysio = Netaccess.Sysio
module Bytebuf = Engine.Bytebuf
module Rng = Engine.Rng
module Clock = Engine.Clock

(* An edge gateway: [shards] frontend nodes accepting WAN clients, the
   client population hosted on [client_nodes] nodes (the sim TCP stack
   keys connections by (local port, peer, peer port), so one node carries
   thousands of client connections on distinct ephemeral ports). *)
type edge = {
  e_grid : Padico.t;
  e_shards : Simnet.Node.t list;
  e_clients : Simnet.Node.t list;
  e_wan : Simnet.Segment.t;
  e_port : int;  (* every shard listens on this logical port *)
  e_nclients : int;
  e_churn : float;
  e_tail : float;
  e_seed : int;
  e_bufsize : int;  (* per-connection snd/rcv buffer budget *)
  e_sharded : bool;
}

type edge_stats = {
  es_established : int;
  es_requests : int;  (* requests fully acked *)
  es_reconnects : int;  (* churn: closed then re-dialed the same port *)
  es_aborted : int;  (* mid-handshake aborts *)
  es_resets : int;
  es_served : int;  (* requests parsed and acked by the shards *)
}

let edge_port = 7100

(* [sharded] gives every node — frontend and client host alike — its own
   shard: the topology is one flat WAN, so there is no island structure to
   exploit and per-node shards expose the maximum parallelism the
   conservative engine can find in it. *)
let edge ?(seed = 42) ?prefs ?backend ?(sharded = false)
    ?(wan = Simnet.Presets.vthd)
    ?(shards = 4) ?(client_nodes = 16) ?(bufsize = 4096) ?(capacity = true)
    ~clients ~churn ~tail () =
  if clients < 1 then invalid_arg "Gridgen.edge: clients < 1";
  if shards < 1 then invalid_arg "Gridgen.edge: shards < 1";
  if client_nodes < 1 then invalid_arg "Gridgen.edge: client_nodes < 1";
  if churn < 0.0 || churn > 1.0 then
    invalid_arg "Gridgen.edge: churn not in [0, 1]";
  if tail <= 1.0 then invalid_arg "Gridgen.edge: tail must exceed 1.0";
  let grid =
    Padico.create ~seed ?prefs ?backend
      ?shards:(if sharded then Some (shards + client_nodes) else None) ()
  in
  let place i = if sharded then Some i else None in
  let sh =
    List.init shards (fun i ->
        Padico.add_node ?shard:(place i) grid (Printf.sprintf "edge-s%d" i))
  in
  let cl =
    List.init client_nodes (fun i ->
        Padico.add_node ?shard:(place (shards + i)) grid
          (Printf.sprintf "edge-c%d" i))
  in
  let wan_seg = Padico.add_segment grid wan ~name:"edge-wan" (sh @ cl) in
  if capacity then
    List.iter (fun n -> Sysio.set_edge (Sysio.get n)) (sh @ cl);
  { e_grid = grid; e_shards = sh; e_clients = cl; e_wan = wan_seg;
    e_port = edge_port; e_nclients = clients; e_churn = churn; e_tail = tail;
    e_seed = seed; e_bufsize = bufsize; e_sharded = sharded }

(* Heavy-tailed request sizes: Pareto(xm = 64, alpha = tail) clamped to
   [64 B, 64 KB] — most requests tiny, the tail real. *)
let pareto_size rng ~tail =
  let u = 1.0 -. Rng.float rng 1.0 in
  let s = 64.0 *. (u ** (-1.0 /. tail)) in
  max 64 (min 65_536 (int_of_float s))

(* The wire protocol: 4-byte big-endian payload length, payload, and a
   4-byte ack back. Chunks are composed on the fly (a zero payload byte is
   as expensive to simulate as a real one), so 100k in-flight requests
   never materialise whole messages. *)
let header_len = 4

let chunk ~total ~off n =
  let b = Bytebuf.create n in
  Bytebuf.fill_zero b;
  for k = 0 to n - 1 do
    let pos = off + k in
    if pos < header_len then
      Bytebuf.set_u8 b k ((total lsr (8 * (header_len - 1 - pos))) land 0xff)
  done;
  b

(* Per-shard server: incremental length-prefix parser per accepted
   connection, acks owed flushed under backpressure. *)
let serve_shard e served node =
  let sio = Sysio.get node in
  let stack = Sysio.stack_on sio e.e_wan in
  Sysio.listen ~sndbuf:e.e_bufsize ~rcvbuf:e.e_bufsize sio stack
    ~port:e.e_port (fun conn ->
        let hgot = ref 0 and need = ref 0 and body = ref 0 in
        let ack_owed = ref 0 in
        let flush_acks () =
          let continue = ref true in
          while !continue && !ack_owed > 0 do
            let b = Bytebuf.create (min !ack_owed 4) in
            Bytebuf.fill_zero b;
            let w = Sysio.write conn b in
            if w = 0 then continue := false else ack_owed := !ack_owed - w
          done
        in
        let consume b =
          let len = Bytebuf.length b in
          let pos = ref 0 in
          while !pos < len do
            if !body > 0 then begin
              let take = min !body (len - !pos) in
              body := !body - take;
              pos := !pos + take;
              if !body = 0 then begin
                Atomic.incr served;
                ack_owed := !ack_owed + 4;
                flush_acks ()
              end
            end
            else begin
              need := (!need lsl 8) lor Bytebuf.get_u8 b !pos;
              incr pos;
              incr hgot;
              if !hgot = header_len then begin
                body := !need;
                hgot := 0;
                need := 0;
                if !body = 0 then begin
                  Atomic.incr served;
                  ack_owed := !ack_owed + 4;
                  flush_acks ()
                end
              end
            end
          done
        in
        let on_readable () =
          let continue = ref true in
          while !continue do
            match Sysio.read conn ~max:65_536 with
            | None -> continue := false
            | Some b -> consume b
          done
        in
        Sysio.watch sio conn (fun ev ->
            match ev with
            | Drivers.Tcp.Readable -> on_readable ()
            | Drivers.Tcp.Writable -> flush_acks ()
            | Drivers.Tcp.Peer_closed ->
              Sysio.unwatch sio conn;
              Sysio.close conn
            | Drivers.Tcp.Reset -> Sysio.unwatch sio conn
            | Drivers.Tcp.Established -> ());
        (* The accept callback runs a dispatch round after [Established]:
           request bytes (or a FIN) may already be in — the edge-triggered
           events fired into the pre-watch no-op callback. Catch up by
           polling, the documented idiom. *)
        if Sysio.readable_bytes conn > 0 then on_readable ();
        if Sysio.peer_closed conn then begin
          Sysio.unwatch sio conn;
          Sysio.close conn
        end)

let run_edge ?(ramp_ns = 5_000) ?active ?until ?domains e =
  (* Atomic tallies: in a sharded run the server-side [served] bumps on
     frontend shards race the client-side counters; the snapshot into
     [edge_stats] happens after the run returns. Single-domain cost is
     negligible next to the TCP machinery per request. *)
  let established = Atomic.make 0 and requests = Atomic.make 0 in
  let reconnects = Atomic.make 0 and aborted = Atomic.make 0 in
  let resets = Atomic.make 0 and served = Atomic.make 0 in
  List.iter (serve_shard e served) e.e_shards;
  let rng = Rng.create (e.e_seed lxor 0x5eed) in
  let shards = Array.of_list e.e_shards in
  let cnodes = Array.of_list e.e_clients in
  let nshards = Array.length shards in
  let active = match active with Some a -> min a e.e_nclients | None -> e.e_nclients in
  let starts = Array.make (max 1 e.e_nclients) (fun () -> ()) in
  for i = 0 to e.e_nclients - 1 do
    let cnode = cnodes.(i mod Array.length cnodes) in
    let shard = shards.(i mod nshards) in
    let sio = Sysio.get cnode in
    let stack = Sysio.stack_on sio e.e_wan in
    let clk = Simnet.Node.clock cnode in
    let sends_request = i < active in
    let abort_handshake = e.e_churn > 0.0 && Rng.bool rng (e.e_churn /. 4.0) in
    let churns = e.e_churn > 0.0 && Rng.bool rng e.e_churn in
    let size1 = pareto_size rng ~tail:e.e_tail in
    let size2 = pareto_size rng ~tail:e.e_tail in
    let start () =
      (* [rounds] requests left on the current connection (0 on the idle
         population); churners close after the first ack and re-dial the
         same logical port. *)
      let rec dial ~rounds ~reconnect =
        let total = ref (header_len + if rounds = 2 then size1 else size2) in
        let sent = ref 0 and ack = ref 0 in
        let conn = ref None in
        let push () =
          match !conn with
          | None -> ()
          | Some c ->
            let continue = ref true in
            while !continue && !sent < !total do
              let space = Sysio.write_space c in
              if space = 0 then continue := false
              else begin
                let n = min space (min (!total - !sent) 4096) in
                let w = Sysio.write c (chunk ~total:(!total - header_len) ~off:!sent n) in
                sent := !sent + w;
                if w = 0 then continue := false
              end
            done
        in
        let c =
          Sysio.connect ~sndbuf:e.e_bufsize ~rcvbuf:e.e_bufsize sio stack
            ~dst:(Simnet.Node.id shard) ~port:e.e_port
            (fun c ev ->
               match ev with
               | Drivers.Tcp.Established ->
                 Atomic.incr established;
                 if reconnect then Atomic.incr reconnects;
                 if rounds > 0 then push ()
               | Drivers.Tcp.Writable -> push ()
               | Drivers.Tcp.Readable ->
                 let continue = ref true in
                 while !continue do
                   match Sysio.read c ~max:4096 with
                   | None -> continue := false
                   | Some b -> ack := !ack + Bytebuf.length b
                 done;
                 if !ack >= 4 && !sent >= !total then begin
                   Atomic.incr requests;
                   if rounds >= 2 then begin
                     (* Churn: tear the connection down and come back to
                        the same logical port on a fresh ephemeral one. *)
                     Sysio.unwatch sio c;
                     Sysio.close c;
                     dial ~rounds:1 ~reconnect:true
                   end
                 end
               | Drivers.Tcp.Peer_closed ->
                 Sysio.unwatch sio c;
                 Sysio.close c
               | Drivers.Tcp.Reset ->
                 Atomic.incr resets;
                 Sysio.unwatch sio c)
        in
        conn := Some c
      in
      if abort_handshake then begin
        (* A client that gives up mid-handshake (SYN sent, then gone) and
           re-dials: the accept path must survive half-open churn. *)
        let c =
          Sysio.connect ~sndbuf:e.e_bufsize ~rcvbuf:e.e_bufsize sio stack
            ~dst:(Simnet.Node.id shard) ~port:e.e_port (fun _ _ -> ())
        in
        Clock.after clk 1_000 (fun () ->
            Sysio.abort c;
            Sysio.unwatch sio c;
            Atomic.incr aborted;
            dial ~rounds:(if sends_request then if churns then 2 else 1 else 0)
              ~reconnect:true)
      end
      else
        dial ~rounds:(if sends_request then if churns then 2 else 1 else 0)
          ~reconnect:false
    in
    starts.(i) <- start
  done;
  (* Ramped arrivals: a flash crowd is modelled by a short ramp, steady
     load by a long one. The ramp is a cascade — each start schedules the
     next — so the engine heap holds one pending arrival at a time
     instead of the whole population (100k up-front events would tax
     every heap operation with the population's log factor). *)
  if e.e_nclients > 0 then begin
    if e.e_sharded then
      (* The cascade below hops nodes — client [i]'s start would run on
         client 0's shard and dial through a foreign TCP stack. Sharded
         runs pre-schedule every arrival on its own node's clock instead;
         setup is single-threaded, so seeding every shard's heap here is
         safe, and the arrival times are identical to the cascade's. *)
      for i = 0 to e.e_nclients - 1 do
        let clk = Simnet.Node.clock cnodes.(i mod Array.length cnodes) in
        Clock.after clk (i * ramp_ns) starts.(i)
      done
    else begin
      let clk0 = Simnet.Node.clock (Array.get cnodes 0) in
      let rec kick i =
        if i < e.e_nclients then begin
          starts.(i) ();
          Clock.after clk0 ramp_ns (fun () -> kick (i + 1))
        end
      in
      kick 0
    end
  end;
  (match until with
   | Some u -> Padico.run e.e_grid ~until:u ?domains
   | None -> Padico.run e.e_grid ?domains);
  { es_established = Atomic.get established;
    es_requests = Atomic.get requests;
    es_reconnects = Atomic.get reconnects;
    es_aborted = Atomic.get aborted;
    es_resets = Atomic.get resets;
    es_served = Atomic.get served }
