(* Multi-cluster grid topology generator: [clusters] SAN islands of
   [nodes_per_cluster] nodes each, every node also attached to one shared
   WAN segment (the vthd/transcontinental backbone of the paper's testbed).
   This is the scaled-up stage for topology-aware collectives — thousands
   of simulated nodes in a shape where flat and multilevel strategies
   differ by an order of magnitude in WAN crossings. *)

type t = {
  grid : Padico.t;
  nodes : Simnet.Node.t list;  (* cluster-major rank order *)
  clusters : Simnet.Node.t list list;
  wan : Simnet.Segment.t;
}

let generate ?seed ?prefs ?backend ?(san = Simnet.Presets.myrinet2000)
    ?(wan = Simnet.Presets.vthd) ~clusters ~nodes_per_cluster () =
  if clusters < 1 then invalid_arg "Gridgen.generate: clusters < 1";
  if nodes_per_cluster < 1 then
    invalid_arg "Gridgen.generate: nodes_per_cluster < 1";
  let grid = Padico.create ?seed ?prefs ?backend () in
  let islands =
    List.init clusters (fun c ->
        List.init nodes_per_cluster (fun i ->
            Padico.add_node grid (Printf.sprintf "c%d-n%d" c i)))
  in
  List.iteri
    (fun c island ->
       ignore
         (Padico.add_segment grid san ~name:(Printf.sprintf "san%d" c) island))
    islands;
  let nodes = List.concat islands in
  let wan_seg = Padico.add_segment grid wan ~name:"wan" nodes in
  { grid; nodes; clusters = islands; wan = wan_seg }

let size t = List.length t.nodes
