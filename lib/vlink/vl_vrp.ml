module Bytebuf = Engine.Bytebuf
module Vrp = Methods.Vrp
module Trace = Padico_obs.Trace

let driver_name = "vrp"

let trace_adapter node dir bytes =
  if Trace.on () then
    Trace.instant node
      (Padico_obs.Event.Adapter { adapter = driver_name; dir; bytes })

(* Descriptor → protocol-instance associations for stats introspection
   (physical equality; streams are few). *)
let senders : (Vl.t * Vrp.sender) list ref = ref []

let receivers : (Vl.t * Vrp.receiver) list ref = ref []

let () =
  Engine.Lifecycle.on_reset (fun () -> senders := []; receivers := [])

let sender_of vl =
  List.find_opt (fun (v, _) -> v == vl) !senders |> Option.map snd

let receiver_of vl =
  List.find_opt (fun (v, _) -> v == vl) !receivers |> Option.map snd

let trace_flow node action bytes =
  if Trace.on () then
    Trace.instant node
      (Padico_obs.Event.Flow { action; place = driver_name; bytes })

let connect ?(sndbuf = 262_144) sio udp ~dst ~port ~tolerance ~rate_bps =
  if sndbuf < 1 then invalid_arg "Vl_vrp.connect: sndbuf must be positive";
  let sender =
    Vrp.create_sender sio udp ~dst ~dst_port:port ~tolerance ~rate_bps
  in
  let closed = ref false in
  let vl_cell = ref None in
  let space () =
    if !closed then 0 else Stdlib.max 0 (sndbuf - Vrp.backlog_bytes sender)
  in
  let ops =
    { Vl.o_write =
        (fun buf ->
           if !closed then 0
           else begin
             (* The pacer, not the wire, is the bottleneck: accept only up
                to [sndbuf] unpaced bytes, then resurface as [Writable]
                when the pacer drains — the classic rate-limited-sender
                backpressure, instead of an unbounded protocol queue. *)
             let n = min (Bytebuf.length buf) (space ()) in
             if n <= 0 then begin
               trace_flow (Drivers.Udp.node udp) "pause"
                 (Vrp.backlog_bytes sender);
               Vrp.on_backlog_drain sender (fun () ->
                   match !vl_cell with
                   | Some vl when not !closed ->
                     trace_flow (Drivers.Udp.node udp) "resume"
                       (Vrp.backlog_bytes sender);
                     Vl.notify vl Vl.Writable
                   | _ -> ());
               0
             end
             else begin
               trace_adapter (Drivers.Udp.node udp) Padico_obs.Event.Wrap n;
               Vrp.send sender
                 (if n = Bytebuf.length buf then buf else Bytebuf.sub buf 0 n);
               n
             end
           end);
      (* A VRP stream is unidirectional: the connecting side only writes. *)
      o_read = (fun ~max:_ -> None);
      o_readable = (fun () -> 0);
      o_write_space = space;
      o_close =
        (fun () ->
           closed := true;
           Vrp.finish sender);
      o_driver = driver_name }
  in
  let vl = Vl.create_connected (Drivers.Udp.node udp) ops in
  vl_cell := Some vl;
  senders := (vl, sender) :: !senders;
  vl

let listen sio udp ~port ~tolerance accept =
  ignore tolerance; (* the budget is enforced by the sender *)
  let rxq = Streamq.create () in
  let vl_cell = ref None in
  let ops =
    { Vl.o_write = (fun _ -> 0);
      o_read = (fun ~max -> Streamq.pop rxq ~max);
      o_readable = (fun () -> Streamq.length rxq);
      o_write_space = (fun () -> 0);
      o_close = (fun () -> ());
      o_driver = driver_name }
  in
  (* Datagram semantics: the stream "connects" when the first datagram
     arrives — accepting earlier would hand servers a dead descriptor. *)
  let receiver_cell = ref None in
  let ensure_accepted () =
    match !vl_cell with
    | Some vl -> vl
    | None ->
      let vl = Vl.create_connected (Drivers.Udp.node udp) ops in
      vl_cell := Some vl;
      (match !receiver_cell with
       | Some r -> receivers := (vl, r) :: !receivers
       | None -> ());
      accept vl;
      vl
  in
  let receiver =
    Vrp.create_receiver sio udp ~port
      ~on_chunk:(fun ~offset:_ chunk ->
        let vl = ensure_accepted () in
        trace_adapter (Drivers.Udp.node udp) Padico_obs.Event.Unwrap
          (Bytebuf.length chunk);
        Streamq.push rxq chunk;
        Vl.notify vl Vl.Readable)
      ~on_complete:(fun () -> Vl.notify (ensure_accepted ()) Vl.Peer_closed)
      ()
  in
  receiver_cell := Some receiver
