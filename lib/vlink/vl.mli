(** VLink: the distributed-oriented abstract interface.

    Client/server-oriented, dynamic connections, streaming. The API is a
    flexible asynchronous one, as in the paper: five primitives — [read],
    [write], [connect], [accept], [close] — that {e post} an operation and
    may return before completion; completion is observed by polling the
    descriptor or through a completion handler. Both synchronous (VIO,
    SysWrap) and asynchronous (AIO) personalities are thin wrappers over
    this interface.

    Concrete transports are {e VLink drivers} (Vl_sysio, Vl_madio,
    {!Vl_loopback}, {!Vl_pstream}, {!Vl_adoc}, {!Vl_vrp}, {!Vl_crypto}):
    they provide the byte-stream [ops] and raise events; this module owns
    request queues and completion logic. *)

type t

(** Connection lifecycle events visible on the descriptor. *)
type event =
  | Connected
  | Readable
  | Writable
  | Peer_closed
  | Failed of string

(** Byte-stream operations a driver implements. All non-blocking. *)
type ops = {
  o_write : Engine.Bytebuf.t -> int;  (** bytes accepted (0 = full) *)
  o_read : max:int -> Engine.Bytebuf.t option;
  o_readable : unit -> int;
  o_write_space : unit -> int;
  o_close : unit -> unit;
  o_driver : string;  (** driver name, for introspection *)
}

(** {1 Driver-side interface} *)

val create : Simnet.Node.t -> t
(** Fresh descriptor in connecting state (driver side). *)

val create_connected : Simnet.Node.t -> ops -> t
(** Fresh descriptor already connected (accept path). *)

val attach_ops : t -> ops -> unit
(** Complete the connection establishment (fires pending [Connect]). *)

val notify : t -> event -> unit
(** Drivers signal progress here; this module turns events into request
    completions. *)

(** {1 Application-side asynchronous interface} *)

type req
(** One posted asynchronous operation. *)

type completion =
  | Done of int  (** bytes transferred *)
  | Eof
  | Again
      (** Would block: only produced by [post_write ~nonblock:true] when
          the driver has no write space (or the link is still connecting).
          Nothing was queued — retry after {!on_writable} fires. *)
  | Error of string

val post_read : ?timeout_ns:int -> t -> Engine.Bytebuf.t -> req
(** Post a read into the buffer. Completes with [Done n] (1 ≤ n ≤ length,
    partial reads allowed, POSIX-style), [Eof] at end of stream.

    [timeout_ns] arms a deadline on the per-simulator {!Padico_fault}
    timeout wheel: if the request has not completed after at least that
    long, it completes with [Error "timeout"] (and a [vl.timeout] trace
    event). Raises [Invalid_argument] when non-positive. *)

val post_write :
  ?timeout_ns:int -> ?nonblock:bool -> t -> Engine.Bytebuf.t -> req
(** Post a write of the whole buffer; completes when fully accepted by the
    driver. [timeout_ns] as for {!post_read}.

    With [~nonblock:true] (default [false]) the request is {e never
    queued}: the driver gets one shot, and the returned request is already
    complete — [Done n] for the [n] bytes accepted (possibly fewer than
    posted), or [Again] when the driver is full or the link still
    connecting. This is the EAGAIN building block for flow-control-aware
    senders: combine with {!on_writable} to retry without buffering. *)

val on_writable : t -> (unit -> unit) -> unit
(** One-shot readiness hook: run [f] once the driver reports write space
    {e and} no earlier queued write is waiting for it — immediately if that
    already holds. Also fired (spuriously) on close/failure/peer-close so a
    parked writer re-polls and observes the terminal state instead of
    hanging: treat a callback as "re-try", not "guaranteed space". *)

val poll : req -> completion option
(** Non-blocking completion test. *)

val set_handler : req -> (completion -> unit) -> unit
(** Completion handler; called immediately if already complete. *)

val await : req -> completion
(** Blocking wait (process context) — convenience for personalities. *)

val close : t -> unit
val is_connected : t -> bool
val is_closed : t -> bool

val on_event : t -> (event -> unit) -> unit
(** Observe lifecycle events (e.g. [Connected], [Peer_closed]). Handlers
    stack; all registered handlers run. *)

val await_connected : t -> (unit, string) result
(** Blocking wait for [Connected] / [Failed] (process context). *)

val node : t -> Simnet.Node.t
val driver_name : t -> string
(** "(connecting)" until ops are attached. *)

val readable_bytes : t -> int
val write_space : t -> int
