module Bytebuf = Engine.Bytebuf
module Madio = Netaccess.Madio

let log = Logs.Src.create "vlink.madio"

module Log = (val Logs.src_log log : Logs.LOG)

let driver_name = "madio"

let control_lchannel = 0xFFF0

(* Control/data messages, all on the reserved logical channel:
   SYN    [u8 1 | u32 conn | u32 port]
   SYNACK [u8 2 | u32 conn | u32 peer-conn]
   RST    [u8 3 | u32 conn]
   DATA   [u8 4 | u32 conn | bytes]
   CLOSE  [u8 5 | u32 conn]
   where [conn] is always the {e receiver's} connection id (except SYN,
   where it is the initiator's). *)

type conn = {
  vl : Vl.t;
  local_id : int;
  mutable peer_node : int;
  mutable peer_id : int; (* -1 until SYNACK *)
  rx : Streamq.t;
  mutable closed : bool;
  mutable rx_released : bool;
      (* remaining rx credits returned in bulk at teardown *)
}

type inst = {
  mio : Madio.t;
  lchan : Madio.lchannel;
  conns : (int, conn) Hashtbl.t;
  listeners : (int, Vl.t -> unit) Hashtbl.t;
  mutable next_id : int;
}

let instances : (int * int, inst) Hashtbl.t = Hashtbl.create 16
let registry_lock = Mutex.create ()

let () =
  Engine.Lifecycle.on_reset (fun () ->
      Mutex.protect registry_lock (fun () -> Hashtbl.reset instances))

(* Every message on the control lchannel starts with this header; under
   credit flow control its cost is granted back the moment the dispatcher
   runs, while DATA payload bytes are granted only when the application
   drains them from the connection's rx queue (manual-grant mode: the
   dispatcher is not the real consumer here). *)
let ctl_header_len = 9

let header ~kind ~conn_id ~extra =
  let b = Bytebuf.create 9 in
  Bytebuf.set_u8 b 0 kind;
  Bytebuf.set_u32 b 1 conn_id;
  Bytebuf.set_u32 b 5 extra;
  b

let send_ctl t ~dst ~kind ~conn_id ~extra =
  (* Control frames may be triggered from the receive dispatcher (an
     incoming SYN answered while the carrier just dropped): swallow the
     fail-fast signal here — connection teardown is driven by the link
     watcher, not by a lost control frame. *)
  try
    Madio.send t.lchan ~dst (header ~kind ~conn_id ~extra);
    (* Handshake/teardown frames are latency-critical: when small-message
       aggregation is coalescing this channel, push the frame out now
       instead of waiting out the batch budget. DATA frames (sent by
       o_write, not through here) stay eligible for batching. *)
    Madio.flush t.lchan ~dst
  with Madeleine.Mad.Link_down _ -> ()

(* Teardown: whatever sits unread in the rx queue will never be drained
   through o_read's grant path, so return those credits in one go —
   otherwise the per-peer window (shared by every conn on this node pair)
   shrinks permanently. *)
let release_rx t c =
  if not c.rx_released then begin
    c.rx_released <- true;
    if c.peer_node >= 0 then
      Madio.grant t.lchan ~src:c.peer_node (Streamq.length c.rx)
  end

(* Bytes of credit one payload byte costs on the wire. *)
let data_space t c =
  if c.closed then 0
  else
    let s = Madio.send_space t.lchan ~dst:c.peer_node in
    if s = max_int then max_int else Stdlib.max 0 (s - ctl_header_len)

let ops_of_conn t c =
  { Vl.o_write =
      (fun buf ->
         if c.closed then 0
         else begin
           (* SAN is reliable and fast: a write becomes one MadIO message
              carrying the 9-byte data header combined with the payload.
              Under credit flow control accept only what the per-peer
              window covers; when the window is shut, park until the
              receiver's grant arrives and resurface as [Writable]. *)
           let n = min (Bytebuf.length buf) (data_space t c) in
           if n <= 0 then begin
             (* Wake only once a payload byte fits past the data header. *)
             Madio.on_credit t.lchan ~dst:c.peer_node
               ~min_space:(ctl_header_len + 1) (fun () ->
                 if not c.closed then Vl.notify c.vl Vl.Writable);
             0
           end
           else
             match
               Madio.sendv t.lchan ~dst:c.peer_node
                 [ header ~kind:4 ~conn_id:c.peer_id ~extra:0;
                   (if n = Bytebuf.length buf then buf else Bytebuf.sub buf 0 n) ]
             with
             | () -> n
             | exception Madeleine.Mad.Link_down _ ->
               (* Carrier just dropped; accept nothing — the link watcher
                  is about to fail this connection. *)
               0
         end);
    o_read =
      (fun ~max ->
         match Streamq.pop c.rx ~max with
         | Some b as r ->
           (* The application consumed payload bytes: hand the credits
              back to the sender (manual-grant mode). *)
           if not c.rx_released then
             Madio.grant t.lchan ~src:c.peer_node (Bytebuf.length b);
           r
         | None -> None);
    o_readable = (fun () -> Streamq.length c.rx);
    o_write_space = (fun () -> data_space t c);
    o_close =
      (fun () ->
         if not c.closed then begin
           c.closed <- true;
           release_rx t c;
           if c.peer_id >= 0 then
             send_ctl t ~dst:c.peer_node ~kind:5 ~conn_id:c.peer_id ~extra:0
         end);
    o_driver = driver_name }

let fresh_conn t ~vl ~peer_node ~peer_id =
  let local_id = t.next_id in
  t.next_id <- local_id + 1;
  let c =
    { vl; local_id; peer_node; peer_id; rx = Streamq.create ();
      closed = false; rx_released = false }
  in
  Hashtbl.replace t.conns local_id c;
  c

let handle t ~src (msg : Bytebuf.t) =
  let kind = Bytebuf.get_u8 msg 0 in
  let conn_id = Bytebuf.get_u32 msg 1 in
  (* Manual-grant mode: return the control-header cost now; DATA payload
     credits come back from o_read as the application drains. *)
  Madio.grant t.lchan ~src (min ctl_header_len (Bytebuf.length msg));
  match kind with
  | 1 ->
    (* SYN: conn_id is the initiator's id, extra is the port. *)
    let port = Bytebuf.get_u32 msg 5 in
    (match Hashtbl.find_opt t.listeners port with
     | None -> send_ctl t ~dst:src ~kind:3 ~conn_id ~extra:0
     | Some accept ->
       let vl = Vl.create (Madio.node t.mio) in
       let c = fresh_conn t ~vl ~peer_node:src ~peer_id:conn_id in
       send_ctl t ~dst:src ~kind:2 ~conn_id ~extra:c.local_id;
       Vl.attach_ops vl (ops_of_conn t c);
       accept vl)
  | 2 ->
    (* SYNACK: conn_id is ours, extra is the peer's. *)
    (match Hashtbl.find_opt t.conns conn_id with
     | Some c when c.peer_id < 0 ->
       c.peer_id <- Bytebuf.get_u32 msg 5;
       Vl.attach_ops c.vl (ops_of_conn t c)
     | _ -> ())
  | 3 ->
    (match Hashtbl.find_opt t.conns conn_id with
     | Some c ->
       Hashtbl.remove t.conns conn_id;
       release_rx t c;
       Vl.notify c.vl (Vl.Failed "connection refused")
     | None -> ())
  | 4 ->
    let payload = Bytebuf.sub msg 9 (Bytebuf.length msg - 9) in
    (match Hashtbl.find_opt t.conns conn_id with
     | Some c when not c.rx_released ->
       Streamq.push c.rx payload;
       Vl.notify c.vl Vl.Readable
     | _ ->
       (* No live consumer: the payload is dropped, so its credits go
          straight back. *)
       Madio.grant t.lchan ~src (Bytebuf.length payload))
  | 5 ->
    (match Hashtbl.find_opt t.conns conn_id with
     | Some c ->
       c.closed <- true;
       Vl.notify c.vl Vl.Peer_closed
     | None -> ())
  | k -> Log.err (fun m -> m "vl_madio: unknown message kind %d" k)

let get mio =
  let key =
    ( Simnet.Node.uid (Madio.node mio),
      Simnet.Segment.uid (Madeleine.Mad.segment (Madio.mad mio)) )
  in
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt instances key with
      | Some t -> t
      | None ->
        let lchan = Madio.open_lchannel mio ~id:control_lchannel in
        (* The dispatcher only parks payload in per-connection queues; the
           real consumer is the application above, so credits are granted
           manually (header now, payload on drain). *)
        Madio.set_manual_grant lchan true;
        let t =
          { mio; lchan; conns = Hashtbl.create 16; listeners = Hashtbl.create 8;
            next_id = 0 }
        in
        Madio.set_recv lchan (fun ~src msg -> handle t ~src msg);
        (* Simulated NIC link-status interrupt: MadIO stays fail-fast — when
           the carrier drops, every open connection dies immediately (the
           resilience layer above may then re-select another adapter) instead
           of hanging on a silent link. *)
        Simnet.Segment.on_link_state (Madeleine.Mad.segment (Madio.mad mio))
          (fun up ->
             if not up then
               Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []
               |> List.sort (fun a b -> compare a.local_id b.local_id)
               |> List.iter (fun c ->
                   if not c.closed then begin
                     c.closed <- true;
                     release_rx t c;
                     Vl.notify c.vl (Vl.Failed "link down")
                   end));
        Hashtbl.replace instances key t;
        t)

let connect mio ~dst ~port =
  let t = get mio in
  let vl = Vl.create (Madio.node mio) in
  let c = fresh_conn t ~vl ~peer_node:(Simnet.Node.id dst) ~peer_id:(-1) in
  send_ctl t ~dst:(Simnet.Node.id dst) ~kind:1 ~conn_id:c.local_id ~extra:port;
  vl

let listen mio ~port accept =
  let t = get mio in
  if Hashtbl.mem t.listeners port then
    invalid_arg (Printf.sprintf "Vl_madio.listen: port %d already bound" port);
  Hashtbl.replace t.listeners port accept

let unlisten mio ~port =
  let t = get mio in
  Hashtbl.remove t.listeners port
